#include "sim/gemm_core.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mixq {

GemmFixedCore::GemmFixedCore(size_t bat, size_t blk_in, size_t blk_out)
    : bat_(bat), blkIn_(blk_in), blkOut_(blk_out),
      acc_(bat * blk_out, 0)
{
}

void
GemmFixedCore::clear()
{
    std::fill(acc_.begin(), acc_.end(), 0);
}

void
GemmFixedCore::step(const int8_t* weights, const int8_t* acts)
{
    for (size_t b = 0; b < bat_; ++b) {
        const int8_t* a = acts + b * blkIn_;
        for (size_t o = 0; o < blkOut_; ++o) {
            const int8_t* w = weights + o * blkIn_;
            int32_t s = 0;
            for (size_t j = 0; j < blkIn_; ++j)
                s += int32_t(w[j]) * int32_t(a[j]);
            acc_[b * blkOut_ + o] += s;
        }
    }
}

GemmSp2Core::GemmSp2Core(size_t bat, size_t blk_in, size_t blk_out)
    : bat_(bat), blkIn_(blk_in), blkOut_(blk_out),
      acc_(bat * blk_out, 0)
{
}

void
GemmSp2Core::clear()
{
    std::fill(acc_.begin(), acc_.end(), 0);
}

void
GemmSp2Core::step(const Sp2Code* weights, const int8_t* acts)
{
    for (size_t b = 0; b < bat_; ++b) {
        const int8_t* a = acts + b * blkIn_;
        for (size_t o = 0; o < blkOut_; ++o) {
            const Sp2Code* w = weights + o * blkIn_;
            int32_t s = 0;
            for (size_t j = 0; j < blkIn_; ++j) {
                // Two shifts and an add (Table I); Sp2Code::apply
                // contains no multiplication.
                s += w[j].apply(int32_t(a[j]));
            }
            acc_[b * blkOut_ + o] += s;
        }
    }
}

} // namespace mixq
