/**
 * @file
 * Functional models of the two heterogeneous GEMM cores of Fig. 3(c).
 * GemmFixedCore models the DSP datapath: a signed integer
 * multiply-accumulate per weight lane. GemmSp2Core models the LUT
 * datapath: per Table I, each product is two logic shifts of the
 * activation plus one addition — the class contains no multiply on
 * the weight path by construction.
 *
 * These integer cores intentionally do not route through the float
 * nn/gemm_backend.hh dispatcher: they model datapath semantics
 * (shift-add vs MAC), not host throughput.
 */

#ifndef MIXQ_SIM_GEMM_CORE_HH
#define MIXQ_SIM_GEMM_CORE_HH

#include <cstdint>
#include <vector>

#include "quant/sp2_codec.hh"

namespace mixq {

/** DSP-backed fixed-point core: acc[b][o] += w[o][j] * a[b][j]. */
class GemmFixedCore
{
  public:
    GemmFixedCore(size_t bat, size_t blk_in, size_t blk_out);

    /** Zero all accumulators. */
    void clear();

    /**
     * One k-step: weights is a [blkOut x blkIn] tile of sign-magnitude
     * integers, acts a [bat x blkIn] tile of unsigned activations.
     */
    void step(const int8_t* weights, const int8_t* acts);

    const std::vector<int32_t>& acc() const { return acc_; }
    size_t bat() const { return bat_; }
    size_t blkOut() const { return blkOut_; }

  private:
    size_t bat_, blkIn_, blkOut_;
    std::vector<int32_t> acc_; //!< [bat x blkOut]
};

/** LUT-backed SP2 core: shift-shift-add per product (no multiplier). */
class GemmSp2Core
{
  public:
    GemmSp2Core(size_t bat, size_t blk_in, size_t blk_out);

    void clear();

    /** One k-step over a [blkOut x blkIn] tile of Sp2Code weights. */
    void step(const Sp2Code* weights, const int8_t* acts);

    const std::vector<int32_t>& acc() const { return acc_; }
    size_t bat() const { return bat_; }
    size_t blkOut() const { return blkOut_; }

  private:
    size_t bat_, blkIn_, blkOut_;
    std::vector<int32_t> acc_;
};

} // namespace mixq

#endif // MIXQ_SIM_GEMM_CORE_HH
