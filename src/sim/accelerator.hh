/**
 * @file
 * The accelerator simulator: three concurrent pipelines (Load,
 * Compute with the two heterogeneous GEMM cores + TensorALU, Store)
 * around double-buffered SRAMs, synchronized by dependency-token
 * semaphores, with an event-driven timing engine and an optional
 * functional data path (bit-exact integer arithmetic).
 *
 * Timing model:
 *   LOAD/STORE: dramLatencyCycles + ceil(bytes / dramBytesPerCycle)
 *   GEMM:       gemmPipeFill + groups * kTiles   (one k-step/cycle,
 *               all bat*blkIn*blkOutTotal MACs retire per step)
 *   ALU:        groups * ceil(bat*blkOutTotal / aluOpsPerCycle)
 */

#ifndef MIXQ_SIM_ACCELERATOR_HH
#define MIXQ_SIM_ACCELERATOR_HH

#include <cstdint>
#include <vector>

#include "fpga/design_point.hh"
#include "sim/gemm_core.hh"
#include "sim/isa.hh"

namespace mixq {

/** Static configuration of one accelerator instance. */
struct AccelConfig
{
    DesignPoint dp;

    // On-chip buffer capacities in tile rows.
    size_t inputBufRows = 8192;
    size_t wgtFixedRows = 4096;
    size_t wgtSp2Rows = 4096;
    size_t outBufRows = 4096;

    // DRAM interface.
    double bytesPerAct = 0.5;  //!< 4-bit packed activations
    double bytesPerWgt = 0.5;  //!< 4-bit packed weights (both schemes)
    double bytesPerOut = 0.5;  //!< requantized 4-bit outputs
    size_t dramBytesPerCycle = 8;
    size_t dramLatencyCycles = 30;

    size_t gemmPipeFill = 4;

    /**
     * Execute the data path. Timing-only runs (functional = false)
     * skip all buffer traffic so huge networks can be scheduled
     * cheaply; functional runs require GEMM/ALU groups == 1.
     */
    bool functional = true;

    int weightBits = 4; //!< for the Sp2 codec in the functional path
};

/** DRAM-side tile arrays (only used by functional runs). */
struct DramModel
{
    std::vector<int8_t> inputs;    //!< [row][bat * blkIn]
    std::vector<int8_t> wgtFixed;  //!< [row][blkFixed * blkIn]
    std::vector<Sp2Code> wgtSp2;   //!< [row][blkSp2 * blkIn]
    std::vector<int32_t> outputs;  //!< [row][bat * blkOutTotal]
};

/** Counters produced by one run. */
struct RunStats
{
    uint64_t cycles = 0;
    uint64_t loadBusy = 0;
    uint64_t computeBusy = 0;
    uint64_t storeBusy = 0;
    uint64_t dramBytesRead = 0;
    uint64_t dramBytesWritten = 0;
    size_t instructions = 0;

    /** Achieved throughput for a workload of `ops` operations. */
    double achievedGops(double freq_mhz, double ops) const
    {
        return cycles == 0
            ? 0.0 : ops * freq_mhz / (double(cycles) * 1000.0);
    }
};

/** The simulator. */
class Accelerator
{
  public:
    explicit Accelerator(AccelConfig cfg);

    DramModel& dram() { return dram_; }
    const AccelConfig& config() const { return cfg_; }

    /** Row widths (elements per tile row) for each array. */
    size_t inputRowElems() const;
    size_t wgtFixedRowElems() const;
    size_t wgtSp2RowElems() const;
    size_t outputRowElems() const;

    /**
     * Run a program to completion; returns the timing counters.
     * Calls panic() on token deadlock (malformed program).
     */
    RunStats run(const Program& prog);

  private:
    uint64_t instrCycles(const Instruction& insn) const;
    double instrBytes(const Instruction& insn) const;
    void execute(const Instruction& insn);

    AccelConfig cfg_;
    DramModel dram_;
    std::vector<int8_t> inpBuf_;
    std::vector<int8_t> wgtFixedBuf_;
    std::vector<Sp2Code> wgtSp2Buf_;
    std::vector<int32_t> outBuf_;
    GemmFixedCore fixedCore_;
    GemmSp2Core sp2Core_;
};

} // namespace mixq

#endif // MIXQ_SIM_ACCELERATOR_HH
