#include "sim/accelerator.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.hh"

namespace mixq {

Accelerator::Accelerator(AccelConfig cfg)
    : cfg_(std::move(cfg)),
      fixedCore_(cfg_.dp.bat, cfg_.dp.blkIn, cfg_.dp.blkFixed),
      sp2Core_(cfg_.dp.bat, cfg_.dp.blkIn, cfg_.dp.blkSp2)
{
    if (cfg_.functional) {
        inpBuf_.assign(cfg_.inputBufRows * inputRowElems(), 0);
        wgtFixedBuf_.assign(cfg_.wgtFixedRows * wgtFixedRowElems(), 0);
        wgtSp2Buf_.assign(cfg_.wgtSp2Rows * wgtSp2RowElems(),
                          Sp2Code{});
        outBuf_.assign(cfg_.outBufRows * outputRowElems(), 0);
    }
}

size_t
Accelerator::inputRowElems() const
{
    return cfg_.dp.bat * cfg_.dp.blkIn;
}

size_t
Accelerator::wgtFixedRowElems() const
{
    return cfg_.dp.blkFixed * cfg_.dp.blkIn;
}

size_t
Accelerator::wgtSp2RowElems() const
{
    return cfg_.dp.blkSp2 * cfg_.dp.blkIn;
}

size_t
Accelerator::outputRowElems() const
{
    return cfg_.dp.bat * cfg_.dp.blkOutTotal();
}

double
Accelerator::instrBytes(const Instruction& insn) const
{
    switch (insn.op) {
      case Opcode::Load: {
        double row_bytes = 0.0;
        switch (insn.buf) {
          case BufKind::Input:
            row_bytes = double(inputRowElems()) * cfg_.bytesPerAct;
            break;
          case BufKind::WgtFixed:
            row_bytes = double(wgtFixedRowElems()) * cfg_.bytesPerWgt;
            break;
          case BufKind::WgtSp2:
            row_bytes = double(wgtSp2RowElems()) * cfg_.bytesPerWgt;
            break;
        }
        return double(insn.rows) * row_bytes;
      }
      case Opcode::Store:
        return double(insn.rows) * double(outputRowElems()) *
               cfg_.bytesPerOut;
      default:
        return 0.0;
    }
}

uint64_t
Accelerator::instrCycles(const Instruction& insn) const
{
    switch (insn.op) {
      case Opcode::Load:
      case Opcode::Store: {
        double bytes = instrBytes(insn);
        return cfg_.dramLatencyCycles +
               uint64_t(std::ceil(bytes /
                                  double(cfg_.dramBytesPerCycle)));
      }
      case Opcode::Gemm:
        return cfg_.gemmPipeFill +
               uint64_t(insn.groups) * uint64_t(insn.kTiles);
      case Opcode::Alu:
        // Requant/ReLU is fused with the accumulator drain: one
        // issue cycle per output group (the TensorALU's throughput
        // is already accounted in DesignPoint::aluOpsPerCycle()).
        return std::max<uint64_t>(1, insn.groups);
    }
    panic("unknown opcode");
}

void
Accelerator::execute(const Instruction& insn)
{
    if (!cfg_.functional)
        return;
    switch (insn.op) {
      case Opcode::Load: {
        switch (insn.buf) {
          case BufKind::Input: {
            size_t w = inputRowElems();
            MIXQ_ASSERT((insn.sramRow + insn.rows) * w <=
                        inpBuf_.size(), "input buffer overflow");
            MIXQ_ASSERT((insn.dramRow + insn.rows) * w <=
                        dram_.inputs.size(), "input DRAM overrun");
            std::memcpy(inpBuf_.data() + insn.sramRow * w,
                        dram_.inputs.data() + insn.dramRow * w,
                        insn.rows * w * sizeof(int8_t));
            break;
          }
          case BufKind::WgtFixed: {
            size_t w = wgtFixedRowElems();
            MIXQ_ASSERT((insn.sramRow + insn.rows) * w <=
                        wgtFixedBuf_.size(), "wgtF buffer overflow");
            std::memcpy(wgtFixedBuf_.data() + insn.sramRow * w,
                        dram_.wgtFixed.data() + insn.dramRow * w,
                        insn.rows * w * sizeof(int8_t));
            break;
          }
          case BufKind::WgtSp2: {
            size_t w = wgtSp2RowElems();
            MIXQ_ASSERT((insn.sramRow + insn.rows) * w <=
                        wgtSp2Buf_.size(), "wgtS buffer overflow");
            std::memcpy(wgtSp2Buf_.data() + insn.sramRow * w,
                        dram_.wgtSp2.data() + insn.dramRow * w,
                        insn.rows * w * sizeof(Sp2Code));
            break;
          }
        }
        break;
      }
      case Opcode::Gemm: {
        MIXQ_ASSERT(insn.groups == 1,
                    "functional GEMM requires groups == 1");
        fixedCore_.clear();
        sp2Core_.clear();
        for (uint32_t k = 0; k < insn.kTiles; ++k) {
            const int8_t* acts =
                inpBuf_.data() + (insn.inpBase + k) * inputRowElems();
            if (insn.useFixed && cfg_.dp.blkFixed > 0) {
                fixedCore_.step(wgtFixedBuf_.data() +
                                    (insn.wgtFixedBase + k) *
                                        wgtFixedRowElems(),
                                acts);
            }
            if (insn.useSp2 && cfg_.dp.blkSp2 > 0) {
                sp2Core_.step(wgtSp2Buf_.data() +
                                  (insn.wgtSp2Base + k) *
                                      wgtSp2RowElems(),
                              acts);
            }
        }
        break;
      }
      case Opcode::Alu: {
        MIXQ_ASSERT(insn.groups == 1,
                    "functional ALU requires groups == 1");
        size_t w = outputRowElems();
        MIXQ_ASSERT((insn.outBase + 1) * w <= outBuf_.size(),
                    "output buffer overflow");
        int32_t* out = outBuf_.data() + insn.outBase * w;
        size_t bf = cfg_.dp.blkFixed, bs = cfg_.dp.blkSp2;
        for (size_t b = 0; b < cfg_.dp.bat; ++b) {
            for (size_t o = 0; o < bf; ++o) {
                int32_t v = fixedCore_.acc()[b * bf + o];
                if (insn.relu)
                    v = std::max(v, 0);
                out[b * (bf + bs) + o] = v;
            }
            for (size_t o = 0; o < bs; ++o) {
                int32_t v = sp2Core_.acc()[b * bs + o];
                if (insn.relu)
                    v = std::max(v, 0);
                out[b * (bf + bs) + bf + o] = v;
            }
        }
        break;
      }
      case Opcode::Store: {
        size_t w = outputRowElems();
        MIXQ_ASSERT((insn.dramRow + insn.rows) * w <=
                    dram_.outputs.size(), "output DRAM overrun");
        std::memcpy(dram_.outputs.data() + insn.dramRow * w,
                    outBuf_.data() + insn.outBase * w,
                    insn.rows * w * sizeof(int32_t));
        break;
      }
    }
}

RunStats
Accelerator::run(const Program& prog)
{
    struct SemState
    {
        std::vector<uint64_t> pushTimes;
        size_t popped = 0;
    };
    std::vector<SemState> sems(size_t(Sem::NumSems));

    const std::vector<Instruction>* queues[3] = {&prog.load,
                                                 &prog.compute,
                                                 &prog.store};
    size_t idx[3] = {0, 0, 0};
    uint64_t fu_free[3] = {0, 0, 0};
    uint64_t busy[3] = {0, 0, 0};

    RunStats stats;
    stats.instructions = prog.totalInstructions();

    auto pops_ready = [&](const Instruction& insn) {
        for (const TokenOp& t : insn.pops) {
            const SemState& s = sems[size_t(t.sem)];
            if (s.pushTimes.size() - s.popped < t.count)
                return false;
        }
        return true;
    };

    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (int fu = 0; fu < 3; ++fu) {
            while (idx[fu] < queues[fu]->size()) {
                const Instruction& insn = (*queues[fu])[idx[fu]];
                if (!pops_ready(insn))
                    break;
                uint64_t start = fu_free[fu];
                for (const TokenOp& t : insn.pops) {
                    SemState& s = sems[size_t(t.sem)];
                    s.popped += t.count;
                    start = std::max(start, s.pushTimes[s.popped - 1]);
                }
                uint64_t dur = instrCycles(insn);
                uint64_t end = start + dur;
                fu_free[fu] = end;
                busy[fu] += dur;
                if (insn.op == Opcode::Load)
                    stats.dramBytesRead +=
                        uint64_t(std::ceil(instrBytes(insn)));
                else if (insn.op == Opcode::Store)
                    stats.dramBytesWritten +=
                        uint64_t(std::ceil(instrBytes(insn)));
                execute(insn);
                for (const TokenOp& t : insn.pushes) {
                    SemState& s = sems[size_t(t.sem)];
                    for (uint16_t c = 0; c < t.count; ++c)
                        s.pushTimes.push_back(end);
                }
                ++idx[fu];
                progressed = true;
            }
        }
    }
    for (int fu = 0; fu < 3; ++fu) {
        MIXQ_ASSERT(idx[fu] == queues[fu]->size(),
                    "token deadlock in instruction streams");
    }
    stats.cycles = std::max({fu_free[0], fu_free[1], fu_free[2]});
    stats.loadBusy = busy[0];
    stats.computeBusy = busy[1];
    stats.storeBusy = busy[2];
    return stats;
}

} // namespace mixq
