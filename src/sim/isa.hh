/**
 * @file
 * Instruction set of the heterogeneous-GEMM accelerator (Fig. 3).
 * Like VTA, the machine has three concurrent pipelines — Load,
 * Compute, Store — that synchronize through dependency-token
 * semaphores; unlike VTA's four single-bit flags we keep one
 * semaphore per hazard pair (documented deviation, same semantics)
 * so the heterogeneous weight buffers can be tracked independently.
 *
 * Data moves in tile rows:
 *   Input row:    bat x blkIn activations
 *   WgtFixed row: blkFixed x blkIn sign-magnitude integers
 *   WgtSp2 row:   blkSp2 x blkIn Sp2Code entries
 *   Output row:   bat x blkOutTotal accumulators
 *
 * A GEMM instruction performs `groups` consecutive output-tile
 * reductions of `kTiles` steps each; every step all
 * bat x blkIn x blkOutTotal MACs retire in one cycle (the DSP core
 * multiplies, the LUT core shifts and adds; see Table I).
 */

#ifndef MIXQ_SIM_ISA_HH
#define MIXQ_SIM_ISA_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mixq {

/** Pipeline operations. */
enum class Opcode : uint8_t { Load, Gemm, Alu, Store };

/** On-chip buffer targets for Load. */
enum class BufKind : uint8_t { Input, WgtFixed, WgtSp2 };

/** Dependency-token semaphores. */
enum class Sem : uint8_t
{
    L2C,      //!< load -> compute (data ready)
    C2S,      //!< compute -> store (output ready)
    S2C,      //!< store -> compute (output slot free)
    C2LInp,   //!< compute -> load (input slot free)
    C2LWgtF,  //!< compute -> load (fixed-weight slot free)
    C2LWgtS,  //!< compute -> load (SP2-weight slot free)
    NumSems
};

/** One semaphore operation attached to an instruction. */
struct TokenOp
{
    Sem sem;
    uint16_t count;
};

/** One instruction of any pipeline. */
struct Instruction
{
    Opcode op = Opcode::Load;

    // Load / Store fields.
    BufKind buf = BufKind::Input;
    uint32_t dramRow = 0;  //!< first tile row in DRAM
    uint32_t sramRow = 0;  //!< first tile row in the target buffer
    uint32_t rows = 0;     //!< rows moved

    // Gemm fields.
    uint32_t kTiles = 0;       //!< reduction steps per group
    uint32_t groups = 1;       //!< consecutive output tiles computed
    uint32_t inpBase = 0;      //!< input buffer row of (group 0, k 0)
    uint32_t wgtFixedBase = 0; //!< fixed weight buffer row of k 0
    uint32_t wgtSp2Base = 0;   //!< SP2 weight buffer row of k 0
    bool useFixed = true;      //!< fixed core participates
    bool useSp2 = true;        //!< SP2 core participates

    // Alu fields (accumulator -> output buffer).
    uint32_t outBase = 0;      //!< output buffer row written / stored
    bool relu = false;         //!< clamp negatives to zero

    /** Tokens consumed before issue / produced at completion. */
    std::vector<TokenOp> pops;
    std::vector<TokenOp> pushes;

    /** Pretty printer for traces and tests. */
    std::string str() const;
};

/** The three instruction queues of one kernel invocation. */
struct Program
{
    std::vector<Instruction> load;
    std::vector<Instruction> compute;
    std::vector<Instruction> store;

    size_t totalInstructions() const
    {
        return load.size() + compute.size() + store.size();
    }
};

const char* toString(Opcode op);
const char* toString(Sem s);

} // namespace mixq

#endif // MIXQ_SIM_ISA_HH
