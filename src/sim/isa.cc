#include "sim/isa.hh"

#include <sstream>

namespace mixq {

const char*
toString(Opcode op)
{
    switch (op) {
      case Opcode::Load:  return "LOAD";
      case Opcode::Gemm:  return "GEMM";
      case Opcode::Alu:   return "ALU";
      case Opcode::Store: return "STORE";
    }
    return "?";
}

const char*
toString(Sem s)
{
    switch (s) {
      case Sem::L2C:     return "l2c";
      case Sem::C2S:     return "c2s";
      case Sem::S2C:     return "s2c";
      case Sem::C2LInp:  return "c2l.inp";
      case Sem::C2LWgtF: return "c2l.wf";
      case Sem::C2LWgtS: return "c2l.ws";
      default:           return "?";
    }
}

std::string
Instruction::str() const
{
    std::ostringstream oss;
    oss << toString(op);
    switch (op) {
      case Opcode::Load:
        oss << " buf=" << int(buf) << " dram=" << dramRow
            << " sram=" << sramRow << " rows=" << rows;
        break;
      case Opcode::Gemm:
        oss << " k=" << kTiles << " groups=" << groups
            << " inp=" << inpBase << " wf=" << wgtFixedBase
            << " ws=" << wgtSp2Base;
        break;
      case Opcode::Alu:
        oss << " out=" << outBase << " groups=" << groups
            << (relu ? " relu" : "");
        break;
      case Opcode::Store:
        oss << " out=" << outBase << " dram=" << dramRow
            << " rows=" << rows;
        break;
    }
    for (const TokenOp& t : pops)
        oss << " pop(" << toString(t.sem) << "," << t.count << ")";
    for (const TokenOp& t : pushes)
        oss << " push(" << toString(t.sem) << "," << t.count << ")";
    return oss.str();
}

} // namespace mixq
