#include "fpga/characterize.hh"

#include "util/logging.hh"

namespace mixq {

DesignPoint
characterize(const FpgaDevice& dev, size_t bat, size_t blk_in,
             const CharacterizeCfg& cfg)
{
    MIXQ_ASSERT(bat >= 1 && blk_in >= 1, "bad geometry");

    DesignPoint dp;
    dp.name = "opt-" + dev.name;
    dp.device = dev.name;
    dp.bat = bat;
    dp.blkIn = blk_in;
    dp.freqMhz = cfg.freqMhz;

    // Smallest Blkout_fixed (multiple of 8) saturating the DSPs.
    size_t blk_fixed = 8;
    while (bat * blk_in * blk_fixed < dev.dsps)
        blk_fixed += 8;
    dp.blkFixed = blk_fixed;
    dp.blkSp2 = 0;

    double budget_frac = cfg.lutBudgetFrac;
    if (dev.luts < cfg.smallDeviceLuts)
        budget_frac -= cfg.smallDeviceReserve;
    double budget = budget_frac * double(dev.luts);

    ResourceUsage base = estimateResources(dp, dev);
    if (base.luts > budget) {
        warn("characterize: base design already exceeds LUT budget on " +
             dev.name);
        return dp;
    }

    while (dp.blkSp2 + cfg.blkSp2Step <= cfg.maxBlkSp2) {
        DesignPoint next = dp;
        next.blkSp2 += cfg.blkSp2Step;
        if (estimateResources(next, dev).luts > budget)
            break;
        dp = next;
    }
    return dp;
}

} // namespace mixq
