/**
 * @file
 * A design point of the heterogeneous-GEMM architecture (Section V):
 * the device, the GEMM array geometry (Bat, Blkin, Blkout per core)
 * and the clock. peakGops() reproduces the Table VII arithmetic:
 * every cycle the two GEMM cores retire Bat*Blkin*Blkout_total MACs
 * (2 ops each) and the TensorALU retires ceil(Bat/2)*Blkout_total
 * element ops.
 */

#ifndef MIXQ_FPGA_DESIGN_POINT_HH
#define MIXQ_FPGA_DESIGN_POINT_HH

#include <string>
#include <vector>

namespace mixq {

/** One hardware configuration (a row of Table VII). */
struct DesignPoint
{
    std::string name;    //!< e.g. "D1-3"
    std::string device;  //!< e.g. "XC7Z020"
    size_t bat = 1;      //!< batch rows processed in parallel
    size_t blkIn = 16;   //!< input-channel block (K tile)
    size_t blkFixed = 16; //!< fixed-point core output lanes
    size_t blkSp2 = 0;   //!< SP2 core output lanes
    double freqMhz = 100.0;

    size_t blkOutTotal() const { return blkFixed + blkSp2; }

    /** SP2 fraction of output lanes (the PR_SP2 sent to Alg. 2). */
    double sp2Fraction() const;

    /** GEMM MACs retired per cycle across both cores. */
    size_t macsPerCycle() const { return bat * blkIn * blkOutTotal(); }

    /** TensorALU element operations retired per cycle. */
    size_t aluOpsPerCycle() const
    {
        return ((bat + 1) / 2) * blkOutTotal();
    }

    /** Peak throughput in GOPS (Table VII's "Peak Thrpt."). */
    double peakGops() const;

    /** Ratio label in the paper's "1:1.5" style. */
    std::string ratioLabel() const;
};

/** The six implementations D1-1..D2-3 of Table VII. */
const std::vector<DesignPoint>& paperDesignPoints();

/** Lookup by name; fatal() on unknown. */
const DesignPoint& designPointByName(const std::string& name);

} // namespace mixq

#endif // MIXQ_FPGA_DESIGN_POINT_HH
