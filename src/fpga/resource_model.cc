#include "fpga/resource_model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mixq {

// Calibration notes (defaults in ResourceModelParams):
//
// The paper's Table VIII lists absolute post-synthesis counts for the
// six design points. Per device the LUT counts are exactly linear in
// Blkout_sp2:
//   XC7Z020 (Bat=1): 12160 + 672   * Blkout_sp2
//   XC7Z045 (Bat=4): 41830 + 3225.6* Blkout_sp2
// 672 = 42 LUT/MAC * 16 MACs/lane; 3225.6 = 42*64 + 134.4*4, i.e. the
// same 42-LUT shift-shift-add MAC plus a LUTRAM register-file term
// that only appears for multi-batch accumulation. The s=0 intercepts
// fit controlBaseLut + fixedMacLut * (Bat*Blkin*BlkFixed) with
// controlBaseLut = 2269 and fixedMacLut = 38.63. FF and BRAM columns
// are fit with the same component structure but are only accurate to
// ~10-25% (the paper's FF growth is super-linear at the largest
// design; see EXPERIMENTS.md).

size_t
dspDemand(const DesignPoint& dp)
{
    return dp.bat * dp.blkIn * dp.blkFixed;
}

ResourceUsage
estimateResources(const DesignPoint& dp, const FpgaDevice& dev,
                  const ResourceModelParams& p)
{
    MIXQ_ASSERT(dp.device == dev.name, "design/device mismatch");
    ResourceUsage use;

    double fixed_macs = double(dp.bat * dp.blkIn * dp.blkFixed);
    double sp2_macs = double(dp.bat * dp.blkIn * dp.blkSp2);

    // LUTs: control base + fixed-core fabric + SP2 core.
    double sp2_regfile =
        dp.bat > 1 ? p.sp2RegfileLut * double(dp.bat * dp.blkSp2) : 0.0;
    use.luts = p.controlBaseLut + p.fixedMacLut * fixed_macs +
               p.sp2MacLut * sp2_macs + sp2_regfile;

    // FFs.
    double pipe_ff = dp.bat > 1
        ? p.sp2LanePipeFf * double((dp.bat - 1) * dp.blkSp2) : 0.0;
    use.ffs = p.baseFf + p.fixedMacFf * fixed_macs +
              p.sp2MacFf * sp2_macs + pipe_ff;

    // BRAM: input/uop buffers scale with Bat; weight/output buffers
    // scale with output lanes (both cores) and batch.
    double per_lane = p.bramPerLaneBase +
                      (dp.bat > 1 ? p.bramPerLaneBat * double(dp.bat - 1)
                                  : 0.0);
    use.bram36 = p.bramBase + p.bramPerBat * double(dp.bat) +
                 per_lane * double(dp.blkOutTotal());

    // DSP demand beyond the inventory spills into fabric (costed via
    // fixedMacLut); the reported usage saturates at the inventory.
    use.dsps = std::min(double(dspDemand(dp)), double(dev.dsps));
    return use;
}

ResourceUtil
utilization(const ResourceUsage& use, const FpgaDevice& dev)
{
    ResourceUtil u;
    u.lut = use.luts / double(dev.luts);
    u.ff = use.ffs / double(dev.ffs);
    u.bram = use.bram36 / double(dev.bram36);
    u.dsp = use.dsps / double(dev.dsps);
    return u;
}

} // namespace mixq
