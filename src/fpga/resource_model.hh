/**
 * @file
 * Post-synthesis resource estimation for a design point. The
 * component model follows the architecture of Fig. 3 — a control/
 * load/store base, DSP-backed fixed-point MACs with fabric overhead,
 * 2-shifter+adder SP2 MACs in LUTs (Table I), a LUTRAM register file
 * for multi-batch accumulation, and BRAM buffers — with constants
 * calibrated against the absolute LUT/FF/BRAM/DSP counts the paper
 * reports in Table VIII (LUT fits within ~0.1%, FF/BRAM are
 * approximate; see DESIGN.md on the Fig. 4 / Table VIII
 * inconsistency).
 */

#ifndef MIXQ_FPGA_RESOURCE_MODEL_HH
#define MIXQ_FPGA_RESOURCE_MODEL_HH

#include "fpga/design_point.hh"
#include "fpga/device.hh"

namespace mixq {

/** Absolute resource usage of one design. */
struct ResourceUsage
{
    double luts = 0.0;
    double ffs = 0.0;
    double bram36 = 0.0;
    double dsps = 0.0;
};

/** Usage as a fraction of a device's inventory. */
struct ResourceUtil
{
    double lut = 0.0;
    double ff = 0.0;
    double bram = 0.0;
    double dsp = 0.0;
};

/** Calibration constants (defaults fit Table VIII; see the .cc). */
struct ResourceModelParams
{
    // LUTs.
    double controlBaseLut = 2269.0;   //!< fetch/load/store control
    double fixedMacLut = 38.63;       //!< fabric around each fixed MAC
    double sp2MacLut = 42.0;          //!< 2 shifters + adder (Table I)
    double sp2RegfileLut = 134.4;     //!< LUTRAM per lane per batch
                                      //!< (multi-batch designs only)
    // FFs.
    double baseFf = 2101.0;
    double fixedMacFf = 28.5;
    double sp2MacFf = 20.0;
    double sp2LanePipeFf = 300.0;     //!< per lane per extra batch
    // BRAM.
    double bramBase = -3.3;           //!< affine fit intercept
    double bramPerBat = 32.3;         //!< input/uop buffers scale w/ Bat
    double bramPerLaneBase = 0.625;   //!< weight+output buffer per lane
    double bramPerLaneBat = 0.5;      //!< extra per lane per batch > 1
};

/** Estimate absolute resource usage of a design point. */
ResourceUsage estimateResources(const DesignPoint& dp,
                                const FpgaDevice& dev,
                                const ResourceModelParams& p = {});

/** Usage normalized by the device inventory (clamped to [0, 1+]). */
ResourceUtil utilization(const ResourceUsage& use,
                         const FpgaDevice& dev);

/**
 * DSP slices demanded by the fixed-point core (Bat*Blkin*BlkFixed
 * multipliers). Demand beyond the inventory is absorbed by the
 * fabric (already costed in fixedMacLut), which is how the paper's
 * designs keep DSP utilization pinned at 100%.
 */
size_t dspDemand(const DesignPoint& dp);

} // namespace mixq

#endif // MIXQ_FPGA_RESOURCE_MODEL_HH
