#include "fpga/device.hh"

#include "util/logging.hh"

namespace mixq {

const std::vector<FpgaDevice>&
allDevices()
{
    // LUT / FF / BRAM36 / DSP from the Xilinx Zynq-7000 (DS190) and
    // Zynq UltraScale+ (DS891) product tables.
    static const std::vector<FpgaDevice> devices = {
        {"XC7Z045", 218600, 437200, 545, 900},
        {"XC7Z020", 53200, 106400, 140, 220},
        {"XCZU2CG", 47232, 94464, 150, 240},
        {"XCZU3CG", 70560, 141120, 216, 360},
        {"XCZU4CG", 87840, 175680, 128, 728},
        {"XCZU5CG", 117120, 234240, 144, 1248},
        {"XCZU3EG", 70560, 141120, 216, 360},
    };
    return devices;
}

const FpgaDevice&
deviceByName(const std::string& name)
{
    for (const FpgaDevice& d : allDevices()) {
        if (d.name == name)
            return d;
    }
    fatal("unknown FPGA device: " + name);
}

} // namespace mixq
