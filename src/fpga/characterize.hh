/**
 * @file
 * The paper's Section V-A/VI-A resource-characterization flow: pick
 * Bat/Blkin/Blkout_fixed so DSP utilization reaches its maximum,
 * then progressively grow the SP2 core (Blkout_sp2 in steps) until
 * the LUT budget is exhausted. The resulting SP2:fixed lane ratio is
 * the partition ratio handed to Algorithm 2 (QConfig::prSp2).
 */

#ifndef MIXQ_FPGA_CHARACTERIZE_HH
#define MIXQ_FPGA_CHARACTERIZE_HH

#include "fpga/design_point.hh"
#include "fpga/device.hh"
#include "fpga/resource_model.hh"

namespace mixq {

/** Knobs of the characterization search. */
struct CharacterizeCfg
{
    /**
     * Fraction of the device LUT inventory the design may occupy.
     * Real designs cannot use 100% of LUTs (routing congestion and
     * timing closure); the default reproduces the paper's choices.
     */
    double lutBudgetFrac = 0.67;
    /**
     * Extra LUT fraction reserved for Load/Store on small devices
     * (< smallDeviceLuts): the paper notes a portion of LUTs is
     * consumed accommodating the GEMM_sp2 core on the XC7Z020.
     */
    double smallDeviceReserve = 0.07;
    size_t smallDeviceLuts = 100000;
    size_t blkSp2Step = 8;    //!< lane-growth granularity
    size_t maxBlkSp2 = 512;
    double freqMhz = 100.0;
};

/**
 * Derive the optimal design point for a device: Blkout_fixed is the
 * smallest multiple of 8 whose multiplier demand covers the DSP
 * inventory (DSP util = 100%), then Blkout_sp2 grows until the LUT
 * budget would be exceeded.
 */
DesignPoint characterize(const FpgaDevice& dev, size_t bat,
                         size_t blk_in,
                         const CharacterizeCfg& cfg = {});

} // namespace mixq

#endif // MIXQ_FPGA_CHARACTERIZE_HH
