#include "fpga/design_point.hh"

#include <cstdio>

#include "util/logging.hh"

namespace mixq {

double
DesignPoint::sp2Fraction() const
{
    return double(blkSp2) / double(blkOutTotal());
}

double
DesignPoint::peakGops() const
{
    double ops_per_cycle =
        2.0 * double(macsPerCycle()) + double(aluOpsPerCycle());
    return ops_per_cycle * freqMhz / 1000.0;
}

std::string
DesignPoint::ratioLabel() const
{
    double r = double(blkSp2) / double(blkFixed);
    char buf[32];
    if (r == double(long(r)))
        std::snprintf(buf, sizeof(buf), "1:%ld", long(r));
    else
        std::snprintf(buf, sizeof(buf), "1:%.1f", r);
    return buf;
}

const std::vector<DesignPoint>&
paperDesignPoints()
{
    static const std::vector<DesignPoint> points = {
        {"D1-1", "XC7Z020", 1, 16, 16, 0, 100.0},
        {"D1-2", "XC7Z020", 1, 16, 16, 16, 100.0},
        {"D1-3", "XC7Z020", 1, 16, 16, 24, 100.0},
        {"D2-1", "XC7Z045", 4, 16, 16, 0, 100.0},
        {"D2-2", "XC7Z045", 4, 16, 16, 16, 100.0},
        {"D2-3", "XC7Z045", 4, 16, 16, 32, 100.0},
    };
    return points;
}

const DesignPoint&
designPointByName(const std::string& name)
{
    for (const DesignPoint& p : paperDesignPoints()) {
        if (p.name == name)
            return p;
    }
    fatal("unknown design point: " + name);
}

} // namespace mixq
