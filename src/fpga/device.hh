/**
 * @file
 * FPGA device inventory database. The resource counts are the public
 * Xilinx datasheet numbers for the Zynq-7000 and Zynq UltraScale+
 * parts the paper characterizes in Fig. 2 (LUT, FF, BRAM36, DSP);
 * Fig. 2's ratio bars are reproduced exactly from these values.
 */

#ifndef MIXQ_FPGA_DEVICE_HH
#define MIXQ_FPGA_DEVICE_HH

#include <string>
#include <vector>

namespace mixq {

/** Resource inventory of one device. */
struct FpgaDevice
{
    std::string name;
    size_t luts;
    size_t ffs;
    size_t bram36; //!< number of 36 Kb block RAMs
    size_t dsps;

    /** LUT count per DSP slice (the ratio driving the PE split). */
    double lutPerDsp() const { return double(luts) / double(dsps); }
    /** FF count per DSP slice. */
    double ffPerDsp() const { return double(ffs) / double(dsps); }
    /** BRAM capacity in Kb per DSP slice (Fig. 2's metric). */
    double bramKbPerDsp() const
    {
        return double(bram36) * 36.0 / double(dsps);
    }
};

/** The devices of Fig. 2 plus the XCZU3EG used in Table IX. */
const std::vector<FpgaDevice>& allDevices();

/** Lookup by name ("XC7Z020", ...); fatal() on unknown name. */
const FpgaDevice& deviceByName(const std::string& name);

} // namespace mixq

#endif // MIXQ_FPGA_DEVICE_HH
