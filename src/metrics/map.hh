/**
 * @file
 * Object-detection evaluation: IoU, per-class average precision with
 * all-point interpolation, and mAP averaged over IoU thresholds —
 * the mAP@0.5 and mAP@0.5:0.95 metrics of the paper's Table V.
 */

#ifndef MIXQ_METRICS_MAP_HH
#define MIXQ_METRICS_MAP_HH

#include <cstddef>
#include <vector>

namespace mixq {

/** A detection in corner format with confidence, class and image id. */
struct DetBox
{
    float x1, y1, x2, y2;
    float score;
    int cls;
    int img;
};

/** A ground-truth box in corner format with class and image id. */
struct GtBox
{
    float x1, y1, x2, y2;
    int cls;
    int img;
};

/** Intersection-over-union of two corner-format boxes. */
double iou(float ax1, float ay1, float ax2, float ay2,
           float bx1, float by1, float bx2, float by2);

/** IoU of a detection and a ground truth box. */
double iou(const DetBox& a, const GtBox& b);

/**
 * Average precision for one class at one IoU threshold, using
 * all-point interpolation (COCO style). Detections are greedily
 * matched to the highest-IoU unmatched ground truth of the same
 * image; duplicates count as false positives.
 */
double averagePrecision(std::vector<DetBox> dets,
                        const std::vector<GtBox>& gts,
                        double iou_thresh);

/** Mean AP over classes at a single IoU threshold (mAP@t). */
double meanAp(const std::vector<DetBox>& dets,
              const std::vector<GtBox>& gts, int num_classes,
              double iou_thresh);

/** Mean AP averaged over IoU 0.50:0.05:0.95 (mAP@0.5:0.95). */
double meanApRange(const std::vector<DetBox>& dets,
                   const std::vector<GtBox>& gts, int num_classes);

} // namespace mixq

#endif // MIXQ_METRICS_MAP_HH
