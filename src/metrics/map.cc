#include "metrics/map.hh"

#include <algorithm>
#include <map>

#include "util/logging.hh"

namespace mixq {

double
iou(float ax1, float ay1, float ax2, float ay2,
    float bx1, float by1, float bx2, float by2)
{
    float ix1 = std::max(ax1, bx1);
    float iy1 = std::max(ay1, by1);
    float ix2 = std::min(ax2, bx2);
    float iy2 = std::min(ay2, by2);
    double iw = std::max(0.0f, ix2 - ix1);
    double ih = std::max(0.0f, iy2 - iy1);
    double inter = iw * ih;
    double area_a = double(std::max(0.0f, ax2 - ax1)) *
                    double(std::max(0.0f, ay2 - ay1));
    double area_b = double(std::max(0.0f, bx2 - bx1)) *
                    double(std::max(0.0f, by2 - by1));
    double uni = area_a + area_b - inter;
    return uni <= 0.0 ? 0.0 : inter / uni;
}

double
iou(const DetBox& a, const GtBox& b)
{
    return iou(a.x1, a.y1, a.x2, a.y2, b.x1, b.y1, b.x2, b.y2);
}

double
averagePrecision(std::vector<DetBox> dets, const std::vector<GtBox>& gts,
                 double iou_thresh)
{
    if (gts.empty())
        return dets.empty() ? 1.0 : 0.0;
    std::sort(dets.begin(), dets.end(),
              [](const DetBox& a, const DetBox& b) {
                  return a.score > b.score;
              });

    // Ground truths grouped per image, with matched flags.
    std::map<int, std::vector<size_t>> gt_by_img;
    for (size_t i = 0; i < gts.size(); ++i)
        gt_by_img[gts[i].img].push_back(i);
    std::vector<bool> matched(gts.size(), false);

    std::vector<int> tp(dets.size(), 0);
    for (size_t d = 0; d < dets.size(); ++d) {
        auto it = gt_by_img.find(dets[d].img);
        if (it == gt_by_img.end())
            continue;
        double best = iou_thresh;
        long best_g = -1;
        for (size_t g : it->second) {
            if (matched[g])
                continue;
            double v = iou(dets[d], gts[g]);
            if (v >= best) {
                best = v;
                best_g = long(g);
            }
        }
        if (best_g >= 0) {
            matched[size_t(best_g)] = true;
            tp[d] = 1;
        }
    }

    // Precision-recall curve with all-point interpolation.
    double ap = 0.0;
    size_t cum_tp = 0;
    std::vector<double> precision(dets.size()), recall(dets.size());
    for (size_t d = 0; d < dets.size(); ++d) {
        cum_tp += size_t(tp[d]);
        precision[d] = double(cum_tp) / double(d + 1);
        recall[d] = double(cum_tp) / double(gts.size());
    }
    // Make precision monotone non-increasing from the right.
    for (size_t d = dets.size(); d-- > 1;)
        precision[d - 1] = std::max(precision[d - 1], precision[d]);
    double prev_recall = 0.0;
    for (size_t d = 0; d < dets.size(); ++d) {
        ap += (recall[d] - prev_recall) * precision[d];
        prev_recall = recall[d];
    }
    return ap;
}

double
meanAp(const std::vector<DetBox>& dets, const std::vector<GtBox>& gts,
       int num_classes, double iou_thresh)
{
    MIXQ_ASSERT(num_classes > 0, "meanAp: need classes");
    double sum = 0.0;
    int counted = 0;
    for (int c = 0; c < num_classes; ++c) {
        std::vector<DetBox> dc;
        std::vector<GtBox> gc;
        for (const DetBox& d : dets) {
            if (d.cls == c)
                dc.push_back(d);
        }
        for (const GtBox& g : gts) {
            if (g.cls == c)
                gc.push_back(g);
        }
        if (gc.empty())
            continue; // class absent from the ground truth
        sum += averagePrecision(std::move(dc), gc, iou_thresh);
        ++counted;
    }
    return counted == 0 ? 0.0 : sum / double(counted);
}

double
meanApRange(const std::vector<DetBox>& dets,
            const std::vector<GtBox>& gts, int num_classes)
{
    double sum = 0.0;
    int n = 0;
    for (double t = 0.50; t <= 0.951; t += 0.05) {
        sum += meanAp(dets, gts, num_classes, t);
        ++n;
    }
    return sum / double(n);
}

} // namespace mixq
