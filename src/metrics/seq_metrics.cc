#include "metrics/seq_metrics.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace mixq {

size_t
editDistance(const std::vector<int>& a, const std::vector<int>& b)
{
    size_t n = a.size(), m = b.size();
    std::vector<size_t> prev(m + 1), cur(m + 1);
    for (size_t j = 0; j <= m; ++j)
        prev[j] = j;
    for (size_t i = 1; i <= n; ++i) {
        cur[0] = i;
        for (size_t j = 1; j <= m; ++j) {
            size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[m];
}

std::vector<int>
collapseRuns(const std::vector<int>& frames)
{
    std::vector<int> out;
    for (int f : frames) {
        if (out.empty() || out.back() != f)
            out.push_back(f);
    }
    return out;
}

double
phonemeErrorRate(const std::vector<std::vector<int>>& refs,
                 const std::vector<std::vector<int>>& hyps)
{
    MIXQ_ASSERT(refs.size() == hyps.size(), "PER: sequence count");
    size_t dist = 0, len = 0;
    for (size_t i = 0; i < refs.size(); ++i) {
        dist += editDistance(refs[i], hyps[i]);
        len += refs[i].size();
    }
    MIXQ_ASSERT(len > 0, "PER: empty reference");
    return double(dist) / double(len);
}

double
perplexity(double nll_sum, size_t tokens)
{
    MIXQ_ASSERT(tokens > 0, "perplexity: no tokens");
    return std::exp(nll_sum / double(tokens));
}

} // namespace mixq
