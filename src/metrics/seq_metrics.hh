/**
 * @file
 * Sequence-task metrics: Levenshtein edit distance, phoneme error
 * rate (Table VI's PER for the TIMIT stand-in) and perplexity
 * (Table VI's PPL for the PTB stand-in).
 */

#ifndef MIXQ_METRICS_SEQ_METRICS_HH
#define MIXQ_METRICS_SEQ_METRICS_HH

#include <cstddef>
#include <vector>

namespace mixq {

/** Levenshtein distance between two label sequences. */
size_t editDistance(const std::vector<int>& a, const std::vector<int>& b);

/** Merge consecutive duplicate frame labels ("greedy collapse"). */
std::vector<int> collapseRuns(const std::vector<int>& frames);

/**
 * Phoneme error rate: sum of edit distances between collapsed
 * hypothesis and reference sequences divided by total reference
 * length.
 */
double phonemeErrorRate(const std::vector<std::vector<int>>& refs,
                        const std::vector<std::vector<int>>& hyps);

/** Perplexity from a summed negative log likelihood over tokens. */
double perplexity(double nll_sum, size_t tokens);

} // namespace mixq

#endif // MIXQ_METRICS_SEQ_METRICS_HH
