#include "data/synth_seq.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace mixq {

LmCorpus
makeLmCorpus(size_t vocab, size_t length, uint64_t seed)
{
    MIXQ_ASSERT(vocab >= 4, "LM corpus needs a few symbols");
    // Transition table derived from a fixed structural seed so that
    // train/valid corpora (different walk seeds) share the chain.
    Rng structure(0xC0FFEE);
    std::vector<std::vector<double>> trans(vocab * vocab);
    for (auto& row : trans) {
        row.resize(vocab);
        // Sparse-ish peaked distribution: 3 likely successors.
        for (size_t j = 0; j < vocab; ++j)
            row[j] = 0.05;
        for (int k = 0; k < 3; ++k)
            row[size_t(structure.randint(0, int64_t(vocab) - 1))] +=
                3.0 * structure.uniform(0.5, 1.0);
    }

    Rng rng(seed);
    LmCorpus corpus;
    corpus.vocab = vocab;
    corpus.tokens.resize(length);
    int prev2 = 0, prev1 = 1;
    for (size_t i = 0; i < length; ++i) {
        const auto& row =
            trans[size_t(prev2) * vocab + size_t(prev1)];
        int next = int(rng.categorical(row));
        corpus.tokens[i] = next;
        prev2 = prev1;
        prev1 = next;
    }
    return corpus;
}

std::vector<LmBatch>
makeLmBatches(const LmCorpus& corpus, size_t t, size_t n)
{
    MIXQ_ASSERT(corpus.tokens.size() > (t + 1) * n,
                "corpus too small for batch shape");
    // Split the corpus into n parallel streams (standard BPTT
    // batching), then cut streams into length-t windows.
    size_t stream_len = corpus.tokens.size() / n;
    size_t windows = (stream_len - 1) / t;
    std::vector<LmBatch> batches(windows);
    for (size_t w = 0; w < windows; ++w) {
        LmBatch& b = batches[w];
        b.t = t;
        b.n = n;
        b.input.resize(t * n);
        b.target.resize(t * n);
        for (size_t s = 0; s < t; ++s) {
            for (size_t j = 0; j < n; ++j) {
                size_t pos = j * stream_len + w * t + s;
                b.input[s * n + j] = corpus.tokens[pos];
                b.target[s * n + j] = corpus.tokens[pos + 1];
            }
        }
    }
    return batches;
}

PhonemeDataset
makePhonemeDataset(size_t batches, size_t t, size_t n, size_t phonemes,
                   size_t feat, uint64_t seed)
{
    MIXQ_ASSERT(feat >= phonemes / 2 + 1, "feature dim too small");
    // Fixed per-phoneme prototype patterns.
    Rng proto_rng(0xFEED);
    std::vector<std::vector<double>> proto(phonemes,
                                           std::vector<double>(feat));
    for (size_t p = 0; p < phonemes; ++p)
        for (size_t f = 0; f < feat; ++f)
            proto[p][f] = proto_rng.normal(0.0, 1.0);

    Rng rng(seed);
    PhonemeDataset ds;
    ds.numPhonemes = phonemes;
    ds.featDim = feat;
    for (size_t b = 0; b < batches; ++b) {
        Tensor x({t, n, feat});
        std::vector<int> y(t * n);
        for (size_t j = 0; j < n; ++j) {
            size_t s = 0;
            while (s < t) {
                int p = int(rng.randint(0, int64_t(phonemes) - 1));
                size_t dur = size_t(rng.randint(2, 4));
                for (size_t d = 0; d < dur && s < t; ++d, ++s) {
                    y[s * n + j] = p;
                    for (size_t f = 0; f < feat; ++f) {
                        x.data()[(s * n + j) * feat + f] =
                            float(proto[size_t(p)][f] +
                                  rng.normal(0.0, 0.45));
                    }
                }
            }
        }
        ds.features.push_back(std::move(x));
        ds.labels.push_back(std::move(y));
    }
    return ds;
}

SentimentDataset
makeSentimentDataset(size_t batches, size_t t, size_t n, size_t vocab,
                     uint64_t seed)
{
    MIXQ_ASSERT(vocab >= 8, "sentiment vocab too small");
    Rng rng(seed);
    SentimentDataset ds;
    ds.t = t;
    ds.n = n;
    ds.vocab = vocab;
    // Token sentiment: first third positive, second third negative,
    // rest neutral.
    size_t third = vocab / 3;
    for (size_t b = 0; b < batches; ++b) {
        std::vector<int> seq(t * n);
        std::vector<int> lab(n);
        for (size_t j = 0; j < n; ++j) {
            double bias = rng.uniform(-1.0, 1.0);
            double score = 0.0;
            for (size_t s = 0; s < t; ++s) {
                double draw = rng.uniform(-1.0, 1.0) + 0.8 * bias;
                int tok;
                if (draw > 0.35) {
                    tok = int(rng.randint(0, int64_t(third) - 1));
                } else if (draw < -0.35) {
                    tok = int(rng.randint(int64_t(third),
                                          int64_t(2 * third) - 1));
                } else {
                    tok = int(rng.randint(int64_t(2 * third),
                                          int64_t(vocab) - 1));
                }
                seq[s * n + j] = tok;
                // Recency weighting: late tokens matter more.
                double w = 0.5 + double(s) / double(t);
                if (tok < int(third))
                    score += w;
                else if (tok < int(2 * third))
                    score -= w;
            }
            lab[j] = score >= 0.0 ? 1 : 0;
        }
        ds.seqs.push_back(std::move(seq));
        ds.labels.push_back(std::move(lab));
    }
    return ds;
}

} // namespace mixq
