/**
 * @file
 * Synthetic sequence datasets for the three RNN tasks of Table VI:
 * an order-2 Markov corpus (PTB stand-in for language modeling),
 * noisy phoneme frame streams (TIMIT stand-in for PER), and
 * sentiment-style token sequences (IMDB stand-in for accuracy).
 */

#ifndef MIXQ_DATA_SYNTH_SEQ_HH
#define MIXQ_DATA_SYNTH_SEQ_HH

#include <cstdint>
#include <vector>

#include "nn/rnn_models.hh"
#include "nn/tensor.hh"

namespace mixq {

/**
 * Markov language-model corpus. The transition structure is
 * deterministic in the seed; train/valid splits are different walks
 * of the same chain, so a model that learns the chain generalizes.
 */
struct LmCorpus
{
    size_t vocab = 0;
    std::vector<int> tokens;
};

/** Generate a corpus of @p length tokens over @p vocab symbols. */
LmCorpus makeLmCorpus(size_t vocab, size_t length, uint64_t seed);

/** Cut a corpus into BPTT batches of [T, N] id grids. */
std::vector<LmBatch> makeLmBatches(const LmCorpus& corpus, size_t t,
                                   size_t n);

/** A phoneme-tagging dataset: features [T, N, F] + frame labels. */
struct PhonemeDataset
{
    std::vector<Tensor> features;            //!< each [T, N, F]
    std::vector<std::vector<int>> labels;    //!< each [T * N]
    size_t numPhonemes = 0;
    size_t featDim = 0;
};

/**
 * Generate phoneme streams: each utterance is a random phoneme
 * sequence; each phoneme persists 2-4 frames; frame features are a
 * noisy class embedding (formant-like pattern).
 */
PhonemeDataset makePhonemeDataset(size_t batches, size_t t, size_t n,
                                  size_t phonemes, size_t feat,
                                  uint64_t seed);

/** Sentiment dataset: token sequences + binary labels. */
struct SentimentDataset
{
    std::vector<std::vector<int>> seqs; //!< each [T * N] grid
    std::vector<std::vector<int>> labels; //!< each [N]
    size_t t = 0, n = 0;
    size_t vocab = 0;
};

/**
 * Generate sentiment sequences: vocabulary contains positive,
 * negative and neutral tokens; the label is decided by which
 * sentiment class dominates, with late tokens weighted higher
 * (forcing actual recurrence, not bag-of-words).
 */
SentimentDataset makeSentimentDataset(size_t batches, size_t t,
                                      size_t n, size_t vocab,
                                      uint64_t seed);

} // namespace mixq

#endif // MIXQ_DATA_SYNTH_SEQ_HH
