/**
 * @file
 * Synthetic class-conditional image generator standing in for
 * CIFAR-10 / CIFAR-100 / ImageNet (see DESIGN.md substitutions).
 * Each class is a combination of an oriented grating, a color tint
 * and a blob position; samples add noise, brightness jitter and
 * random translation so the task needs a real (small) CNN and leaves
 * headroom for quantization schemes to separate.
 */

#ifndef MIXQ_DATA_SYNTH_IMAGES_HH
#define MIXQ_DATA_SYNTH_IMAGES_HH

#include <cstdint>

#include "nn/trainer.hh"

namespace mixq {

/** Difficulty presets (stand-ins for the paper's three datasets). */
enum class ImageTask
{
    Easy,  //!< 10 classes, 12x12 (CIFAR-10 stand-in)
    Mid,   //!< 20 classes, 12x12, more noise (CIFAR-100 stand-in)
    Hard   //!< 32 classes, 16x16, most variation (ImageNet stand-in)
};

/** Parameters of a generated image task. */
struct ImageTaskSpec
{
    size_t classes;
    size_t imgSize;
    double noise;      //!< additive Gaussian sigma
    double jitter;     //!< brightness jitter amplitude
    size_t maxShift;   //!< random translation in pixels
};

/** Preset lookup. */
ImageTaskSpec imageTaskSpec(ImageTask task);

/** Short name for tables ("synth-easy", ...). */
const char* imageTaskName(ImageTask task);

/**
 * Generate @p n labeled images for a task preset. Deterministic in
 * (task, seed); train/test splits use different seeds.
 */
LabeledImages makeImageDataset(ImageTask task, size_t n, uint64_t seed);

} // namespace mixq

#endif // MIXQ_DATA_SYNTH_IMAGES_HH
