#include "data/synth_detect.hh"

#include <cmath>

#include "util/rng.hh"

namespace mixq {

DetectDataset
makeDetectDataset(size_t n, size_t img_size, uint64_t seed)
{
    Rng rng(seed);
    DetectDataset ds;
    ds.images = Tensor({n, 3, img_size, img_size});
    ds.boxes.resize(n);
    double s = double(img_size);

    for (size_t i = 0; i < n; ++i) {
        // Textured background.
        for (size_t c = 0; c < 3; ++c)
            for (size_t y = 0; y < img_size; ++y)
                for (size_t x = 0; x < img_size; ++x)
                    ds.images.at4(i, c, y, x) =
                        float(0.2 + 0.05 * rng.normal());

        size_t objs = size_t(rng.randint(1, 3));
        for (size_t o = 0; o < objs; ++o) {
            int cls = int(rng.randint(0, 2));
            double bw = rng.uniform(0.25, 0.45);
            double bh = bw; // square-ish objects
            double cx = rng.uniform(bw / 2, 1.0 - bw / 2);
            double cy = rng.uniform(bh / 2, 1.0 - bh / 2);
            ObjBox box{float(cx), float(cy), float(bw), float(bh), cls};
            ds.boxes[i].push_back(box);

            // Per-class color bias.
            double col[3] = {cls == 0 ? 0.9 : 0.3,
                             cls == 1 ? 0.9 : 0.3,
                             cls == 2 ? 0.9 : 0.3};
            long x1 = long((cx - bw / 2) * s);
            long y1 = long((cy - bh / 2) * s);
            long x2 = long((cx + bw / 2) * s);
            long y2 = long((cy + bh / 2) * s);
            double rx = (bw / 2) * s, ry = (bh / 2) * s;
            double ox = cx * s, oy = cy * s;
            for (long y = std::max(0L, y1);
                 y < std::min(long(img_size), y2); ++y) {
                for (long x = std::max(0L, x1);
                     x < std::min(long(img_size), x2); ++x) {
                    bool inside = false;
                    double ux = (double(x) - ox) / rx;
                    double uy = (double(y) - oy) / ry;
                    switch (cls) {
                      case 0: // square
                        inside = true;
                        break;
                      case 1: // disc
                        inside = ux * ux + uy * uy <= 1.0;
                        break;
                      case 2: // cross
                        inside = std::fabs(ux) < 0.35 ||
                                 std::fabs(uy) < 0.35;
                        break;
                    }
                    if (!inside)
                        continue;
                    for (size_t c = 0; c < 3; ++c)
                        ds.images.at4(i, c, size_t(y), size_t(x)) =
                            float(col[c]);
                }
            }
        }
    }
    return ds;
}

} // namespace mixq
