#include "data/synth_images.hh"

#include <cmath>
#include <numbers>

#include "util/logging.hh"
#include "util/rng.hh"

namespace mixq {

ImageTaskSpec
imageTaskSpec(ImageTask task)
{
    switch (task) {
      case ImageTask::Easy: return {10, 12, 0.32, 0.15, 1};
      case ImageTask::Mid:  return {20, 12, 0.42, 0.20, 1};
      case ImageTask::Hard: return {32, 16, 0.48, 0.25, 2};
    }
    panic("unknown image task");
}

const char*
imageTaskName(ImageTask task)
{
    switch (task) {
      case ImageTask::Easy: return "synth-easy";
      case ImageTask::Mid:  return "synth-mid";
      case ImageTask::Hard: return "synth-hard";
    }
    panic("unknown image task");
}

LabeledImages
makeImageDataset(ImageTask task, size_t n, uint64_t seed)
{
    ImageTaskSpec spec = imageTaskSpec(task);
    Rng rng(seed);
    size_t s = spec.imgSize;
    LabeledImages data;
    data.numClasses = spec.classes;
    data.images = Tensor({n, 3, s, s});
    data.labels.resize(n);

    for (size_t i = 0; i < n; ++i) {
        int cls = int(rng.randint(0, int64_t(spec.classes) - 1));
        data.labels[i] = cls;

        // Class factors: orientation, spatial frequency, color tint,
        // and a blob quadrant. Derived deterministically from cls.
        // 16 orientation bins (11.25 degrees apart) keep adjacent
        // classes confusable under noise.
        double angle =
            std::numbers::pi * double(cls % 16) / 16.0;
        double freq = 1.0 + double((cls / 16) % 2);
        double tint[3] = {0.5 + 0.5 * double(cls % 3 == 0),
                          0.5 + 0.5 * double(cls % 3 == 1),
                          0.5 + 0.5 * double(cls % 3 == 2)};
        size_t quad = size_t(cls) % 4;

        double bright = 1.0 + rng.uniform(-spec.jitter, spec.jitter);
        long dx = rng.randint(-int64_t(spec.maxShift),
                              int64_t(spec.maxShift));
        long dy = rng.randint(-int64_t(spec.maxShift),
                              int64_t(spec.maxShift));
        double phase = rng.uniform(0.0, std::numbers::pi / 2.0);

        double bx = (quad % 2 == 0 ? 0.25 : 0.75) * double(s);
        double by = (quad / 2 == 0 ? 0.25 : 0.75) * double(s);

        for (size_t y = 0; y < s; ++y) {
            for (size_t x = 0; x < s; ++x) {
                double xr = double(long(x) + dx);
                double yr = double(long(y) + dy);
                double u = std::cos(angle) * xr + std::sin(angle) * yr;
                double g = 0.5 +
                           0.5 * std::sin(2.0 * std::numbers::pi *
                                          freq * u / double(s) + phase);
                double d2 = (xr - bx) * (xr - bx) +
                            (yr - by) * (yr - by);
                double blob =
                    std::exp(-d2 / (0.08 * double(s) * double(s)));
                for (size_t c = 0; c < 3; ++c) {
                    double v = bright * tint[c] * (0.4 * g + 0.4 * blob);
                    v += rng.normal(0.0, spec.noise);
                    data.images.at4(i, c, y, x) =
                        float(std::clamp(v, 0.0, 1.0));
                }
            }
        }
    }
    return data;
}

} // namespace mixq
