/**
 * @file
 * Synthetic object-detection dataset (COCO stand-in for Table V):
 * images containing 1-3 geometric objects (filled square, disc,
 * cross) on textured backgrounds, with normalized center-format
 * ground-truth boxes.
 */

#ifndef MIXQ_DATA_SYNTH_DETECT_HH
#define MIXQ_DATA_SYNTH_DETECT_HH

#include <cstdint>
#include <vector>

#include "nn/detect.hh"
#include "nn/tensor.hh"

namespace mixq {

/** A detection dataset: images plus per-image box lists. */
struct DetectDataset
{
    Tensor images;                          //!< [N, 3, S, S]
    std::vector<std::vector<ObjBox>> boxes; //!< one list per image
    size_t classes = 3;

    size_t size() const { return boxes.size(); }
};

/**
 * Generate @p n images of size @p img_size with 1..3 objects each.
 * Object classes: 0 = square, 1 = disc, 2 = cross, each with a
 * distinct color bias so classification is learnable.
 */
DetectDataset makeDetectDataset(size_t n, size_t img_size,
                                uint64_t seed);

} // namespace mixq

#endif // MIXQ_DATA_SYNTH_DETECT_HH
