/**
 * @file
 * Dense row-major float tensor used throughout the training substrate.
 * Rank is dynamic (vectors, matrices, NCHW image batches, TNC
 * sequences). Deliberately minimal: contiguous storage, shape algebra,
 * a few elementwise helpers — all heavy math lives in gemm.hh and the
 * layers.
 */

#ifndef MIXQ_NN_TENSOR_HH
#define MIXQ_NN_TENSOR_HH

#include <cstddef>
#include <span>
#include <vector>

namespace mixq {

class Rng;

/** Contiguous row-major float tensor. */
class Tensor
{
  public:
    Tensor() = default;

    /** Construct zero-filled with the given shape. */
    explicit Tensor(std::vector<size_t> shape);

    /** Build from shape and explicit data (sizes must agree). */
    Tensor(std::vector<size_t> shape, std::vector<float> data);

    /** Zero-filled tensor. */
    static Tensor zeros(std::vector<size_t> shape);

    /** Constant-filled tensor. */
    static Tensor full(std::vector<size_t> shape, float v);

    /** I.i.d. normal entries with the given standard deviation. */
    static Tensor randn(std::vector<size_t> shape, Rng& rng,
                        double stddev = 1.0);

    const std::vector<size_t>& shape() const { return shape_; }
    size_t ndim() const { return shape_.size(); }
    size_t dim(size_t i) const;
    size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float* data() { return data_.data(); }
    const float* data() const { return data_.data(); }
    std::span<float> span() { return {data_.data(), data_.size()}; }
    std::span<const float> span() const
    {
        return {data_.data(), data_.size()};
    }

    float& operator[](size_t i) { return data_[i]; }
    float operator[](size_t i) const { return data_[i]; }

    /** 2-D access helper (matrix layout [d0, d1]). */
    float& at2(size_t i, size_t j);
    float at2(size_t i, size_t j) const;

    /** 4-D access helper (NCHW layout). */
    float& at4(size_t n, size_t c, size_t h, size_t w);
    float at4(size_t n, size_t c, size_t h, size_t w) const;

    /** Reshape in place; the element count must be preserved. */
    void reshape(std::vector<size_t> shape);

    /** Set every element to v. */
    void fill(float v);

    /** this += other (same size). */
    void add(const Tensor& other);

    /** this += s * other (same size). */
    void addScaled(const Tensor& other, float s);

    /** Multiply every element by s. */
    void scale(float s);

    /** Sum of all elements. */
    double sum() const;

  private:
    std::vector<size_t> shape_;
    std::vector<float> data_;
};

/** Product of all dims. */
size_t shapeSize(const std::vector<size_t>& shape);

/**
 * Non-owning view of externally placed tensor storage — the handle
 * the plan-execution forwards (serve/executor.hh) pass around.
 * `data` points at `shapeSize(shape)` floats the caller placed (a
 * planner-assigned offset inside the serving slab); the view never
 * allocates, frees, or reshapes.
 */
struct TensorView
{
    float* data = nullptr;
    std::vector<size_t> shape;

    size_t size() const { return shapeSize(shape); }
    size_t dim(size_t i) const { return shape[i]; }
    size_t ndim() const { return shape.size(); }
};

} // namespace mixq

#endif // MIXQ_NN_TENSOR_HH
