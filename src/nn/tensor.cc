#include "nn/tensor.hh"

#include "util/logging.hh"
#include "util/rng.hh"

namespace mixq {

size_t
shapeSize(const std::vector<size_t>& shape)
{
    size_t n = 1;
    for (size_t d : shape)
        n *= d;
    return n;
}

Tensor::Tensor(std::vector<size_t> shape)
    : shape_(std::move(shape)), data_(shapeSize(shape_), 0.0f)
{
}

Tensor::Tensor(std::vector<size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data))
{
    MIXQ_ASSERT(data_.size() == shapeSize(shape_),
                "tensor data/shape mismatch");
}

Tensor
Tensor::zeros(std::vector<size_t> shape)
{
    return Tensor(std::move(shape));
}

Tensor
Tensor::full(std::vector<size_t> shape, float v)
{
    Tensor t(std::move(shape));
    t.fill(v);
    return t;
}

Tensor
Tensor::randn(std::vector<size_t> shape, Rng& rng, double stddev)
{
    Tensor t(std::move(shape));
    for (float& v : t.data_)
        v = float(rng.normal(0.0, stddev));
    return t;
}

size_t
Tensor::dim(size_t i) const
{
    MIXQ_ASSERT(i < shape_.size(), "dim index out of range");
    return shape_[i];
}

float&
Tensor::at2(size_t i, size_t j)
{
    return data_[i * shape_[1] + j];
}

float
Tensor::at2(size_t i, size_t j) const
{
    return data_[i * shape_[1] + j];
}

float&
Tensor::at4(size_t n, size_t c, size_t h, size_t w)
{
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float
Tensor::at4(size_t n, size_t c, size_t h, size_t w) const
{
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

void
Tensor::reshape(std::vector<size_t> shape)
{
    MIXQ_ASSERT(shapeSize(shape) == data_.size(),
                "reshape changes element count");
    shape_ = std::move(shape);
}

void
Tensor::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

void
Tensor::add(const Tensor& other)
{
    MIXQ_ASSERT(other.size() == size(), "add size mismatch");
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
}

void
Tensor::addScaled(const Tensor& other, float s)
{
    MIXQ_ASSERT(other.size() == size(), "addScaled size mismatch");
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] += s * other.data_[i];
}

void
Tensor::scale(float s)
{
    for (float& v : data_)
        v *= s;
}

double
Tensor::sum() const
{
    double s = 0.0;
    for (float v : data_)
        s += v;
    return s;
}

} // namespace mixq
