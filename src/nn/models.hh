/**
 * @file
 * Miniature CNN builders mirroring the structure of the paper's
 * evaluation models: MiniResNet (residual basic blocks, standing in
 * for ResNet-18) and MiniMobileNet (inverted residual blocks with
 * depthwise convolutions, standing in for MobileNet-v2). Sized for
 * the synthetic datasets so a full quantization experiment runs in
 * seconds on a CPU.
 */

#ifndef MIXQ_NN_MODELS_HH
#define MIXQ_NN_MODELS_HH

#include <memory>

#include "nn/blocks.hh"
#include "nn/layers.hh"

namespace mixq {

/**
 * conv3x3 -> BN -> ReLU -> BasicBlock(b) -> BasicBlock(b->2b, s2)
 * -> BasicBlock(2b) -> GAP -> FC.
 */
std::unique_ptr<Sequential>
makeMiniResNet(size_t classes, Rng& rng, size_t base = 8,
               size_t in_ch = 3);

/**
 * conv3x3 -> BN -> ReLU6 -> IR(b,b,e) -> IR(b,2b,e,s2) -> IR(2b,2b,e)
 * -> GAP -> FC, with expansion factor e (default 4; MobileNet-v2
 * uses 6 at full scale).
 */
std::unique_ptr<Sequential>
makeMiniMobileNet(size_t classes, Rng& rng, size_t base = 8,
                  size_t in_ch = 3, size_t expand = 4);

/** Small plain ConvNet used by unit tests. */
std::unique_ptr<Sequential>
makeTinyConvNet(size_t classes, Rng& rng, size_t base = 4,
                size_t in_ch = 3);

} // namespace mixq

#endif // MIXQ_NN_MODELS_HH
