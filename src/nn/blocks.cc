#include "nn/blocks.hh"

#include "util/logging.hh"

namespace mixq {

BasicBlock::BasicBlock(size_t in_ch, size_t out_ch, size_t stride,
                       Rng& rng)
    : conv1_(in_ch, out_ch, 3, stride, 1, rng),
      bn1_(out_ch),
      conv2_(out_ch, out_ch, 3, 1, 1, rng),
      bn2_(out_ch)
{
    if (stride != 1 || in_ch != out_ch) {
        downConv_ =
            std::make_unique<Conv2d>(in_ch, out_ch, 1, stride, 0, rng);
        downBn_ = std::make_unique<BatchNorm2d>(out_ch);
    }
}

std::vector<Module*>
BasicBlock::children()
{
    std::vector<Module*> v = {&conv1_, &bn1_, &relu1_, &conv2_, &bn2_,
                              &reluOut_};
    if (downConv_) {
        v.push_back(downConv_.get());
        v.push_back(downBn_.get());
    }
    return v;
}

std::vector<NamedChild>
BasicBlock::namedChildren()
{
    std::vector<NamedChild> v = {{"conv1", &conv1_}, {"bn1", &bn1_},
                                 {"relu1", &relu1_}, {"conv2", &conv2_},
                                 {"bn2", &bn2_},
                                 {"reluOut", &reluOut_}};
    if (downConv_) {
        v.push_back({"downConv", downConv_.get()});
        v.push_back({"downBn", downBn_.get()});
    }
    return v;
}

Tensor
BasicBlock::forward(const Tensor& x, bool train)
{
    Tensor h = conv1_.forward(x, train);
    h = bn1_.forward(h, train);
    h = relu1_.forward(h, train);
    h = conv2_.forward(h, train);
    h = bn2_.forward(h, train);

    Tensor s = x;
    if (downConv_) {
        s = downConv_->forward(x, train);
        s = downBn_->forward(s, train);
    }
    h.add(s);
    return reluOut_.forward(h, train);
}

Tensor
BasicBlock::backward(const Tensor& gy)
{
    Tensor g = reluOut_.backward(gy);

    // Main branch.
    Tensor gm = bn2_.backward(g);
    gm = conv2_.backward(gm);
    gm = relu1_.backward(gm);
    gm = bn1_.backward(gm);
    gm = conv1_.backward(gm);

    // Shortcut branch.
    if (downConv_) {
        Tensor gs = downBn_->backward(g);
        gs = downConv_->backward(gs);
        gm.add(gs);
    } else {
        gm.add(g);
    }
    return gm;
}

InvertedResidual::InvertedResidual(size_t in_ch, size_t out_ch,
                                   size_t expand, size_t stride,
                                   Rng& rng)
    : skip_(stride == 1 && in_ch == out_ch),
      expandConv_(in_ch, in_ch * expand, 1, 1, 0, rng),
      bn1_(in_ch * expand),
      relu1_(6.0),
      dw_(in_ch * expand, 3, stride, 1, rng),
      bn2_(in_ch * expand),
      relu2_(6.0),
      projectConv_(in_ch * expand, out_ch, 1, 1, 0, rng),
      bn3_(out_ch)
{
    MIXQ_ASSERT(expand >= 1, "expansion factor must be >= 1");
}

std::vector<Module*>
InvertedResidual::children()
{
    return {&expandConv_, &bn1_, &relu1_, &dw_, &bn2_, &relu2_,
            &projectConv_, &bn3_};
}

std::vector<NamedChild>
InvertedResidual::namedChildren()
{
    return {{"expand", &expandConv_}, {"bn1", &bn1_},
            {"relu1", &relu1_},       {"dw", &dw_},
            {"bn2", &bn2_},           {"relu2", &relu2_},
            {"project", &projectConv_}, {"bn3", &bn3_}};
}

Tensor
InvertedResidual::forward(const Tensor& x, bool train)
{
    Tensor h = expandConv_.forward(x, train);
    h = bn1_.forward(h, train);
    h = relu1_.forward(h, train);
    h = dw_.forward(h, train);
    h = bn2_.forward(h, train);
    h = relu2_.forward(h, train);
    h = projectConv_.forward(h, train);
    h = bn3_.forward(h, train);
    if (skip_)
        h.add(x);
    return h;
}

Tensor
InvertedResidual::backward(const Tensor& gy)
{
    Tensor g = bn3_.backward(gy);
    g = projectConv_.backward(g);
    g = relu2_.backward(g);
    g = bn2_.backward(g);
    g = dw_.backward(g);
    g = relu1_.backward(g);
    g = bn1_.backward(g);
    g = expandConv_.backward(g);
    if (skip_)
        g.add(gy);
    return g;
}

} // namespace mixq
