#include "nn/rnn_models.hh"

#include <cstring>

#include "util/logging.hh"

namespace mixq {

namespace {

/** Decode a [T, N] float grid of token ids back to the int vector the
    primary forward consumes (exact for ids below 2^24). */
std::vector<int>
gridToIds(const Tensor& x)
{
    MIXQ_ASSERT(x.ndim() == 2, "id grid must be [T, N]");
    std::vector<int> ids(x.size());
    for (size_t i = 0; i < ids.size(); ++i)
        ids[i] = int(x.data()[i]);
    return ids;
}

} // namespace

// --------------------------------------------------------------- LstmLm

LstmLm::LstmLm(size_t vocab, size_t embed, size_t hidden, size_t layers,
               Rng& rng)
    : vocab_(vocab), emb_(vocab, embed, rng),
      head_(hidden, vocab, rng, true, /*signed_act=*/true)
{
    MIXQ_ASSERT(layers >= 1, "LstmLm needs at least one layer");
    size_t in = embed;
    for (size_t l = 0; l < layers; ++l) {
        lstm_.push_back(std::make_unique<Lstm>(in, hidden, rng));
        in = hidden;
    }
}

Tensor
LstmLm::forward(const std::vector<int>& ids, size_t t, size_t n,
                bool train)
{
    t_ = t;
    n_ = n;
    Tensor h = emb_.forward(ids, t, n);
    for (auto& l : lstm_)
        h = l->forward(h, train);
    h.reshape({t * n, h.dim(2)});
    return head_.forward(h, train);
}

Tensor
LstmLm::forward(const Tensor& x, bool train)
{
    return forward(gridToIds(x), x.dim(0), x.dim(1), train);
}

Tensor
LstmLm::backward(const Tensor& dlogits)
{
    Tensor g = head_.backward(dlogits);
    g.reshape({t_, n_, g.size() / (t_ * n_)});
    for (size_t i = lstm_.size(); i-- > 0;)
        g = lstm_[i]->backward(g);
    return emb_.backward(g);
}

std::vector<Module*>
LstmLm::children()
{
    std::vector<Module*> v = {&emb_};
    for (auto& l : lstm_)
        v.push_back(l.get());
    v.push_back(&head_);
    return v;
}

std::vector<NamedChild>
LstmLm::namedChildren()
{
    std::vector<NamedChild> v = {{"emb", &emb_}};
    for (size_t i = 0; i < lstm_.size(); ++i)
        v.push_back({"lstm" + std::to_string(i), lstm_[i].get()});
    v.push_back({"head", &head_});
    return v;
}

// ------------------------------------------------------------ GruTagger

GruTagger::GruTagger(size_t features, size_t hidden, size_t layers,
                     size_t phonemes, Rng& rng)
    : phonemes_(phonemes),
      head_(hidden, phonemes, rng, true, /*signed_act=*/true)
{
    MIXQ_ASSERT(layers >= 1, "GruTagger needs at least one layer");
    size_t in = features;
    for (size_t l = 0; l < layers; ++l) {
        gru_.push_back(std::make_unique<Gru>(in, hidden, rng));
        in = hidden;
    }
}

Tensor
GruTagger::forward(const Tensor& x, bool train)
{
    t_ = x.dim(0);
    n_ = x.dim(1);
    Tensor h = x;
    for (auto& l : gru_)
        h = l->forward(h, train);
    h.reshape({t_ * n_, h.size() / (t_ * n_)});
    return head_.forward(h, train);
}

Tensor
GruTagger::backward(const Tensor& dlogits)
{
    Tensor g = head_.backward(dlogits);
    g.reshape({t_, n_, g.size() / (t_ * n_)});
    for (size_t i = gru_.size(); i-- > 0;)
        g = gru_[i]->backward(g);
    return g;
}

std::vector<Module*>
GruTagger::children()
{
    std::vector<Module*> v;
    for (auto& l : gru_)
        v.push_back(l.get());
    v.push_back(&head_);
    return v;
}

std::vector<NamedChild>
GruTagger::namedChildren()
{
    std::vector<NamedChild> v;
    for (size_t i = 0; i < gru_.size(); ++i)
        v.push_back({"gru" + std::to_string(i), gru_[i].get()});
    v.push_back({"head", &head_});
    return v;
}

// ------------------------------------------------------- LstmClassifier

LstmClassifier::LstmClassifier(size_t vocab, size_t embed, size_t hidden,
                               size_t layers, size_t classes, Rng& rng)
    : emb_(vocab, embed, rng),
      head_(hidden, classes, rng, true, /*signed_act=*/true)
{
    MIXQ_ASSERT(layers >= 1, "LstmClassifier needs at least one layer");
    size_t in = embed;
    for (size_t l = 0; l < layers; ++l) {
        lstm_.push_back(std::make_unique<Lstm>(in, hidden, rng));
        in = hidden;
    }
}

Tensor
LstmClassifier::forward(const std::vector<int>& ids, size_t t, size_t n,
                        bool train)
{
    t_ = t;
    n_ = n;
    Tensor h = emb_.forward(ids, t, n);
    for (auto& l : lstm_)
        h = l->forward(h, train);
    // Final-step hidden state: h[t-1] is [N, H].
    size_t hd = h.dim(2);
    Tensor last({n, hd});
    std::memcpy(last.data(), h.data() + (t - 1) * n * hd,
                n * hd * sizeof(float));
    return head_.forward(last, train);
}

Tensor
LstmClassifier::forward(const Tensor& x, bool train)
{
    return forward(gridToIds(x), x.dim(0), x.dim(1), train);
}

Tensor
LstmClassifier::backward(const Tensor& dlogits)
{
    Tensor glast = head_.backward(dlogits);
    size_t hd = glast.dim(1);
    Tensor g({t_, n_, hd});
    std::memcpy(g.data() + (t_ - 1) * n_ * hd, glast.data(),
                n_ * hd * sizeof(float));
    for (size_t i = lstm_.size(); i-- > 0;)
        g = lstm_[i]->backward(g);
    return emb_.backward(g);
}

std::vector<Module*>
LstmClassifier::children()
{
    std::vector<Module*> v = {&emb_};
    for (auto& l : lstm_)
        v.push_back(l.get());
    v.push_back(&head_);
    return v;
}

std::vector<NamedChild>
LstmClassifier::namedChildren()
{
    std::vector<NamedChild> v = {{"emb", &emb_}};
    for (size_t i = 0; i < lstm_.size(); ++i)
        v.push_back({"lstm" + std::to_string(i), lstm_[i].get()});
    v.push_back({"head", &head_});
    return v;
}

} // namespace mixq
