#include "nn/rnn_models.hh"

#include <cstring>

#include "infer/session.hh"
#include "util/logging.hh"

namespace mixq {

// --------------------------------------------------------------- LstmLm

LstmLm::LstmLm(size_t vocab, size_t embed, size_t hidden, size_t layers,
               Rng& rng)
    : vocab_(vocab), emb_(vocab, embed, rng),
      head_(hidden, vocab, rng, true, /*signed_act=*/true)
{
    MIXQ_ASSERT(layers >= 1, "LstmLm needs at least one layer");
    size_t in = embed;
    for (size_t l = 0; l < layers; ++l) {
        lstm_.push_back(std::make_unique<Lstm>(in, hidden, rng));
        in = hidden;
    }
}

Tensor
LstmLm::forward(const std::vector<int>& ids, size_t t, size_t n,
                bool train)
{
    t_ = t;
    n_ = n;
    Tensor h = emb_.forward(ids, t, n);
    for (auto& l : lstm_)
        h = l->forward(h, train);
    h.reshape({t * n, h.dim(2)});
    return head_.forward(h, train);
}

void
LstmLm::backward(const Tensor& dlogits)
{
    Tensor g = head_.backward(dlogits);
    g.reshape({t_, n_, g.dim(1) / 1});
    g.reshape({t_, n_, g.size() / (t_ * n_)});
    for (size_t i = lstm_.size(); i-- > 0;)
        g = lstm_[i]->backward(g);
    emb_.backward(g);
}

std::vector<Param*>
LstmLm::params()
{
    std::vector<Param*> v;
    emb_.ownParams(v);
    for (auto& l : lstm_)
        l->ownParams(v);
    head_.ownParams(v);
    return v;
}

void
LstmLm::setActQuant(int bits, bool enable)
{
    for (auto& l : lstm_)
        l->configureOwnActQuant(bits, enable);
    head_.configureOwnActQuant(bits, enable);
}

void
LstmLm::applyInferBackend(InferBackend backend, const QatContext* qat)
{
    // The embedding is a lookup, not a GEMM — it stays float on
    // every backend (its rows are not weight-quantized).
    for (auto& l : lstm_)
        applyInferBackendLstm(*l, backend, qat);
    applyInferBackendLinear(head_, backend, qat);
}

// ------------------------------------------------------------ GruTagger

GruTagger::GruTagger(size_t features, size_t hidden, size_t layers,
                     size_t phonemes, Rng& rng)
    : phonemes_(phonemes),
      head_(hidden, phonemes, rng, true, /*signed_act=*/true)
{
    MIXQ_ASSERT(layers >= 1, "GruTagger needs at least one layer");
    size_t in = features;
    for (size_t l = 0; l < layers; ++l) {
        gru_.push_back(std::make_unique<Gru>(in, hidden, rng));
        in = hidden;
    }
}

Tensor
GruTagger::forward(const Tensor& x, bool train)
{
    t_ = x.dim(0);
    n_ = x.dim(1);
    Tensor h = x;
    for (auto& l : gru_)
        h = l->forward(h, train);
    h.reshape({t_ * n_, h.size() / (t_ * n_)});
    return head_.forward(h, train);
}

void
GruTagger::backward(const Tensor& dlogits)
{
    Tensor g = head_.backward(dlogits);
    g.reshape({t_, n_, g.size() / (t_ * n_)});
    for (size_t i = gru_.size(); i-- > 0;)
        g = gru_[i]->backward(g);
}

std::vector<Param*>
GruTagger::params()
{
    std::vector<Param*> v;
    for (auto& l : gru_)
        l->ownParams(v);
    head_.ownParams(v);
    return v;
}

void
GruTagger::setActQuant(int bits, bool enable)
{
    for (auto& l : gru_)
        l->configureOwnActQuant(bits, enable);
    head_.configureOwnActQuant(bits, enable);
}

void
GruTagger::applyInferBackend(InferBackend backend,
                             const QatContext* qat)
{
    for (auto& l : gru_)
        applyInferBackendGru(*l, backend, qat);
    applyInferBackendLinear(head_, backend, qat);
}

// ------------------------------------------------------- LstmClassifier

LstmClassifier::LstmClassifier(size_t vocab, size_t embed, size_t hidden,
                               size_t layers, size_t classes, Rng& rng)
    : emb_(vocab, embed, rng),
      head_(hidden, classes, rng, true, /*signed_act=*/true)
{
    MIXQ_ASSERT(layers >= 1, "LstmClassifier needs at least one layer");
    size_t in = embed;
    for (size_t l = 0; l < layers; ++l) {
        lstm_.push_back(std::make_unique<Lstm>(in, hidden, rng));
        in = hidden;
    }
}

Tensor
LstmClassifier::forward(const std::vector<int>& ids, size_t t, size_t n,
                        bool train)
{
    t_ = t;
    n_ = n;
    Tensor h = emb_.forward(ids, t, n);
    for (auto& l : lstm_)
        h = l->forward(h, train);
    // Final-step hidden state: h[t-1] is [N, H].
    size_t hd = h.dim(2);
    Tensor last({n, hd});
    std::memcpy(last.data(), h.data() + (t - 1) * n * hd,
                n * hd * sizeof(float));
    return head_.forward(last, train);
}

void
LstmClassifier::backward(const Tensor& dlogits)
{
    Tensor glast = head_.backward(dlogits);
    size_t hd = glast.dim(1);
    Tensor g({t_, n_, hd});
    std::memcpy(g.data() + (t_ - 1) * n_ * hd, glast.data(),
                n_ * hd * sizeof(float));
    for (size_t i = lstm_.size(); i-- > 0;)
        g = lstm_[i]->backward(g);
    emb_.backward(g);
}

std::vector<Param*>
LstmClassifier::params()
{
    std::vector<Param*> v;
    emb_.ownParams(v);
    for (auto& l : lstm_)
        l->ownParams(v);
    head_.ownParams(v);
    return v;
}

void
LstmClassifier::setActQuant(int bits, bool enable)
{
    for (auto& l : lstm_)
        l->configureOwnActQuant(bits, enable);
    head_.configureOwnActQuant(bits, enable);
}

void
LstmClassifier::applyInferBackend(InferBackend backend,
                                  const QatContext* qat)
{
    for (auto& l : lstm_)
        applyInferBackendLstm(*l, backend, qat);
    applyInferBackendLinear(head_, backend, qat);
}

} // namespace mixq
