/**
 * @file
 * Float matrix-multiply kernels and im2col/col2im transforms — the
 * computational backbone of the training substrate. The layouts are
 * plain row-major; kernels are OpenMP-parallel over output rows.
 */

#ifndef MIXQ_NN_GEMM_HH
#define MIXQ_NN_GEMM_HH

#include <cstddef>

namespace mixq {

/** C[MxN] += A[MxK] * B[KxN] (row-major). */
void gemmAcc(const float* a, const float* b, float* c,
             size_t m, size_t n, size_t k);

/** C[MxN] = A[MxK] * B[KxN] (row-major, overwrite). */
void gemm(const float* a, const float* b, float* c,
          size_t m, size_t n, size_t k);

/** C[MxN] += A[MxK] * B[NxK]^T. */
void gemmBTAcc(const float* a, const float* b, float* c,
               size_t m, size_t n, size_t k);

/** C[MxN] = A[MxK] * B[NxK]^T. */
void gemmBT(const float* a, const float* b, float* c,
            size_t m, size_t n, size_t k);

/** C[MxN] += A[KxM]^T * B[KxN]. */
void gemmATAcc(const float* a, const float* b, float* c,
               size_t m, size_t n, size_t k);

/**
 * im2col for one image: input [C, H, W] to columns
 * [C*kh*kw, OH*OW] for a kh x kw kernel with the given stride and
 * symmetric zero padding.
 */
void im2col(const float* img, size_t c, size_t h, size_t w,
            size_t kh, size_t kw, size_t stride, size_t pad,
            float* cols);

/** Reverse of im2col: scatter-add columns back into an image. */
void col2im(const float* cols, size_t c, size_t h, size_t w,
            size_t kh, size_t kw, size_t stride, size_t pad,
            float* img);

/** Convolution output size for one spatial dim. */
size_t convOut(size_t in, size_t kernel, size_t stride, size_t pad);

} // namespace mixq

#endif // MIXQ_NN_GEMM_HH
