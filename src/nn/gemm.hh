/**
 * @file
 * Float matrix-multiply entry points and im2col/col2im transforms —
 * the computational backbone of the training substrate. The layouts
 * are plain row-major. Each GEMM call dispatches at runtime through
 * nn/gemm_backend.hh: problems with m*n*k above kGemmBlockThreshold
 * and at least kGemmMR output rows run the cache-blocked,
 * register-tiled kernel; small or row-skinny problems run the naive
 * OpenMP-over-rows reference kernel. See gemm_backend.hh for the
 * dispatch rules and the MIXQ_GEMM_KERNEL override.
 */

#ifndef MIXQ_NN_GEMM_HH
#define MIXQ_NN_GEMM_HH

#include <cstddef>

namespace mixq {

/** C[MxN] += A[MxK] * B[KxN] (row-major). */
void gemmAcc(const float* a, const float* b, float* c,
             size_t m, size_t n, size_t k);

/** C[MxN] = A[MxK] * B[KxN] (row-major, overwrite). */
void gemm(const float* a, const float* b, float* c,
          size_t m, size_t n, size_t k);

/** C[MxN] += A[MxK] * B[NxK]^T. */
void gemmBTAcc(const float* a, const float* b, float* c,
               size_t m, size_t n, size_t k);

/** C[MxN] = A[MxK] * B[NxK]^T. */
void gemmBT(const float* a, const float* b, float* c,
            size_t m, size_t n, size_t k);

/** C[MxN] += A[KxM]^T * B[KxN]. */
void gemmATAcc(const float* a, const float* b, float* c,
               size_t m, size_t n, size_t k);

/**
 * im2col for one image: input [C, H, W] to columns
 * [C*kh*kw, OH*OW] for a kh x kw kernel with the given stride and
 * symmetric zero padding.
 */
void im2col(const float* img, size_t c, size_t h, size_t w,
            size_t kh, size_t kw, size_t stride, size_t pad,
            float* cols);

/** Reverse of im2col: scatter-add columns back into an image. */
void col2im(const float* cols, size_t c, size_t h, size_t w,
            size_t kh, size_t kw, size_t stride, size_t pad,
            float* img);

/** Convolution output size for one spatial dim. */
size_t convOut(size_t in, size_t kernel, size_t stride, size_t pad);

} // namespace mixq

#endif // MIXQ_NN_GEMM_HH
