/**
 * @file
 * Module/Param abstractions of the training substrate. A Module owns
 * parameters and implements forward/backward; composite modules
 * expose children so parameter collection and activation-quantizer
 * configuration recurse automatically.
 */

#ifndef MIXQ_NN_MODULE_HH
#define MIXQ_NN_MODULE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hh"

namespace mixq {

/**
 * A trainable parameter tensor plus its gradient. qRows/qCols describe
 * the 2-D GEMM-matrix view used by weight quantization (rows = output
 * channels / gate units); qRows == 0 marks the parameter as not
 * weight-quantized (biases, BN affine parameters, embeddings).
 *
 * `version` tracks weight rewrites for the pre-packed GEMM plans
 * (nn/gemm_backend.hh PackedMat): every code path that mutates `w`
 * after construction — optimizer steps, quantizer projections,
 * latent save/restore, test-side perturbation — must call
 * noteUpdated() afterwards, or plans packed from the old weights
 * stay silently stale.
 */
struct Param
{
    std::string name;
    Tensor w;
    Tensor grad;
    size_t qRows = 0;
    size_t qCols = 0;
    bool decay = true;    //!< participates in weight decay
    uint64_t version = 1; //!< bumped on every rewrite of w

    Param() = default;
    Param(std::string name, Tensor init, size_t q_rows = 0,
          size_t q_cols = 0, bool decay = true);

    void zeroGrad();
    bool quantizable() const { return qRows > 0; }

    /** Record that w was rewritten (invalidates packed GEMM plans). */
    void noteUpdated() { ++version; }
};

/** Base class of all layers and blocks. */
class Module
{
  public:
    virtual ~Module() = default;

    /**
     * Run the layer. @p train selects training behaviour (batch-norm
     * statistics, cached activations for backward).
     */
    virtual Tensor forward(const Tensor& x, bool train) = 0;

    /**
     * Back-propagate. Accumulates parameter gradients and returns the
     * gradient with respect to the forward input. Must be called after
     * a forward with train == true.
     */
    virtual Tensor backward(const Tensor& gy) = 0;

    /** Direct sub-modules (for recursion); leaves return {}. */
    virtual std::vector<Module*> children() { return {}; }

    /** Parameters owned directly by this module (not children's). */
    virtual void ownParams(std::vector<Param*>& out);

    /**
     * Configure/enable activation fake-quantization. The default
     * implementation recurses into children; leaf layers with
     * quantized inputs (conv/linear/RNN cells) override
     * configureOwnActQuant().
     */
    void setActQuant(int bits, bool enable);

    /** Hook for leaves; default no-op. */
    virtual void configureOwnActQuant(int bits, bool enable);

    /** All parameters in the subtree, depth-first. */
    std::vector<Param*> params();

    /** Collect subtree parameters into @p out. */
    void collectParams(std::vector<Param*>& out);
};

/** Total number of scalar parameters in a param set. */
size_t numParams(const std::vector<Param*>& ps);

} // namespace mixq

#endif // MIXQ_NN_MODULE_HH
