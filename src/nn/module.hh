/**
 * @file
 * Module/Param abstractions of the training substrate. A Module owns
 * parameters and implements forward/backward; composite modules
 * expose children so parameter collection and activation-quantizer
 * configuration recurse automatically.
 *
 * On top of the anonymous children() recursion sits the *named state
 * tree*: namedChildren() gives every sub-module a stable name
 * (semantic for hand-written blocks, positional for containers), and
 * the namedParams()/forEachNamedModule() traversals join those names
 * into dotted paths ("blocks.2.conv1.w") that identify every Param —
 * and every piece of quant state hanging off it — across processes.
 * The serialization layer (serial/checkpoint.hh, serial/deploy.hh)
 * keys its records on these paths, so a checkpoint written by one
 * binary loads into a structurally matching model built by another.
 */

#ifndef MIXQ_NN_MODULE_HH
#define MIXQ_NN_MODULE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hh"

namespace mixq {

/**
 * A trainable parameter tensor plus its gradient. qRows/qCols describe
 * the 2-D GEMM-matrix view used by weight quantization (rows = output
 * channels / gate units); qRows == 0 marks the parameter as not
 * weight-quantized (biases, BN affine parameters, embeddings).
 *
 * `version` tracks weight rewrites for the pre-packed GEMM plans
 * (nn/gemm_backend.hh PackedMat): every code path that mutates `w`
 * after construction — optimizer steps, quantizer projections,
 * latent save/restore, test-side perturbation — must call
 * noteUpdated() afterwards, or plans packed from the old weights
 * stay silently stale.
 */
struct Param
{
    std::string name;
    Tensor w;
    Tensor grad;
    size_t qRows = 0;
    size_t qCols = 0;
    bool decay = true;    //!< participates in weight decay
    uint64_t version = 1; //!< bumped on every rewrite of w

    Param() = default;
    Param(std::string name, Tensor init, size_t q_rows = 0,
          size_t q_cols = 0, bool decay = true);

    void zeroGrad();
    bool quantizable() const { return qRows > 0; }

    /** Record that w was rewritten (invalidates packed GEMM plans). */
    void noteUpdated() { ++version; }
};

class Module;

/** One edge of the named state tree: a sub-module and its name. */
struct NamedChild
{
    std::string name;
    Module* mod = nullptr;
};

/** Base class of all layers and blocks. */
class Module
{
  public:
    virtual ~Module() = default;

    /**
     * Run the layer. @p train selects training behaviour (batch-norm
     * statistics, cached activations for backward).
     */
    virtual Tensor forward(const Tensor& x, bool train) = 0;

    /**
     * Back-propagate. Accumulates parameter gradients and returns the
     * gradient with respect to the forward input. Must be called after
     * a forward with train == true.
     */
    virtual Tensor backward(const Tensor& gy) = 0;

    /** Direct sub-modules (for recursion); leaves return {}. */
    virtual std::vector<Module*> children() { return {}; }

    /**
     * Direct sub-modules with their tree names. The default wraps
     * children() with positional names "0", "1", ... (the natural
     * naming for Sequential-style containers); hand-written composite
     * blocks override it with semantic names ("conv1", "bn1", ...).
     * Overrides must list the same modules in the same order as
     * children() — the named tree is a naming of the recursion, not a
     * second topology.
     */
    virtual std::vector<NamedChild> namedChildren();

    /** Parameters owned directly by this module (not children's). */
    virtual void ownParams(std::vector<Param*>& out);

    /**
     * Configure/enable activation fake-quantization. The default
     * implementation recurses into children; leaf layers with
     * quantized inputs (conv/linear/RNN cells) override
     * configureOwnActQuant().
     */
    void setActQuant(int bits, bool enable);

    /** Hook for leaves; default no-op. */
    virtual void configureOwnActQuant(int bits, bool enable);

    /** All parameters in the subtree, depth-first. */
    std::vector<Param*> params();

    /** Collect subtree parameters into @p out. */
    void collectParams(std::vector<Param*>& out);
};

/** Total number of scalar parameters in a param set. */
size_t numParams(const std::vector<Param*>& ps);

/** One parameter of the named state tree with its dotted path. */
struct NamedParam
{
    std::string path;
    Param* p = nullptr;
};

/**
 * Leaf name of a parameter inside its owning module: the segment
 * after the last '.' of Param::name ("lstm.wx" -> "wx"). Layer
 * constructors keep these leaves unique per module by convention;
 * namedParams() panics if a module breaks it.
 */
std::string paramLeafName(const Param& p);

/**
 * Every parameter under @p root with its stable dotted path: the
 * namedChildren() names joined with '.', ending in the param's leaf
 * name ("blocks.2.conv1.w"). Paths are the identity mechanism of the
 * serialization layer — same architecture, same paths, in any
 * process. Enumeration order matches Module::params().
 */
std::vector<NamedParam> namedParams(Module& root);

/** Find a parameter by its dotted path; null when absent. */
Param* findParam(Module& root, const std::string& path);

/**
 * Depth-first walk of the named module tree. @p fn receives each
 * module's dotted path ("" for @p root itself) and the module;
 * parents are visited before their children, in namedChildren()
 * order.
 */
void forEachNamedModule(
    Module& root,
    const std::function<void(const std::string&, Module&)>& fn);

} // namespace mixq

#endif // MIXQ_NN_MODULE_HH
