#include "nn/gemm_backend.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "util/logging.hh"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace mixq {

namespace {

// Cache-block sizes: a KC x NR sliver of B lives in L1 across one
// microkernel call, the MC x KC block of A lives in L2, the KC x NC
// panel of B in the outer cache. MC is a multiple of MR.
constexpr size_t kMC = 72;
constexpr size_t kKC = 256;
constexpr size_t kNC = 1024;

GemmKernel
initialForcedKernel()
{
    const char* env = std::getenv("MIXQ_GEMM_KERNEL");
    if (!env)
        return GemmKernel::Auto;
    std::string s(env);
    if (s == "naive")
        return GemmKernel::Naive;
    if (s == "blocked")
        return GemmKernel::Blocked;
    return GemmKernel::Auto;
}

GemmKernel gForced = initialForcedKernel();

// ------------------------------------------------------------ packing

// Pack an mc x kc block of A into microkernel order: consecutive
// MR-row panels, each laid out [p][i] so the microkernel reads one
// contiguous MR-vector per k step. Rows past mc are zero-filled, so
// edge tiles need no bounds checks in the inner loop. transA means A
// is stored [K x M] and we pack its transpose.
void
packA(const float* a, size_t lda, bool transA, size_t mc, size_t kc,
      float* buf)
{
    for (size_t ir = 0; ir < mc; ir += kGemmMR) {
        size_t mr = std::min(kGemmMR, mc - ir);
        float* panel = buf + ir * kc;
        for (size_t p = 0; p < kc; ++p) {
            float* dst = panel + p * kGemmMR;
            for (size_t i = 0; i < mr; ++i)
                dst[i] = transA ? a[p * lda + (ir + i)]
                                : a[(ir + i) * lda + p];
            for (size_t i = mr; i < kGemmMR; ++i)
                dst[i] = 0.0f;
        }
    }
}

// Pack a kc x nc panel of B into consecutive NR-column panels laid
// out [p][j]. transB means B is stored [N x K] and we pack its
// transpose. Columns past nc are zero-filled.
void
packB(const float* b, size_t ldb, bool transB, size_t kc, size_t nc,
      float* buf)
{
    for (size_t jr = 0; jr < nc; jr += kGemmNR) {
        size_t nr = std::min(kGemmNR, nc - jr);
        float* panel = buf + jr * kc;
        for (size_t p = 0; p < kc; ++p) {
            float* dst = panel + p * kGemmNR;
            for (size_t j = 0; j < nr; ++j)
                dst[j] = transB ? b[(jr + j) * ldb + p]
                                : b[p * ldb + (jr + j)];
            for (size_t j = nr; j < kGemmNR; ++j)
                dst[j] = 0.0f;
        }
    }
}

// -------------------------------------------------------- microkernel

// MR x NR register tile: six NR-wide accumulators live in vector
// registers across the whole k loop, which then runs
// load-broadcast-fma with no C traffic. The packed operands are
// zero-padded, so the full tile is always computed; only the valid
// mr x nr corner is written back. GCC/Clang get explicit vector
// types — the equivalent scalar accumulator array defeats their
// register allocators and runs ~30x slower.
#if defined(__GNUC__) || defined(__clang__)

typedef float VecNR
    __attribute__((vector_size(kGemmNR * sizeof(float))));

void
microKernel(const float* apanel, const float* bpanel, size_t kc,
            float* c, size_t ldc, size_t mr, size_t nr)
{
    static_assert(kGemmMR == 6, "accumulator count is hand-unrolled");
    VecNR acc0{}, acc1{}, acc2{}, acc3{}, acc4{}, acc5{};
    for (size_t p = 0; p < kc; ++p) {
        VecNR bv;
        std::memcpy(&bv, bpanel + p * kGemmNR, sizeof bv);
        const float* av = apanel + p * kGemmMR;
        acc0 += av[0] * bv;
        acc1 += av[1] * bv;
        acc2 += av[2] * bv;
        acc3 += av[3] * bv;
        acc4 += av[4] * bv;
        acc5 += av[5] * bv;
    }
    const VecNR* accs[kGemmMR] = {&acc0, &acc1, &acc2,
                                  &acc3, &acc4, &acc5};
    if (mr == kGemmMR && nr == kGemmNR) {
        for (size_t i = 0; i < kGemmMR; ++i) {
            float* crow = c + i * ldc;
            const float* t = reinterpret_cast<const float*>(accs[i]);
            for (size_t j = 0; j < kGemmNR; ++j)
                crow[j] += t[j];
        }
    } else {
        for (size_t i = 0; i < mr; ++i) {
            float* crow = c + i * ldc;
            const float* t = reinterpret_cast<const float*>(accs[i]);
            for (size_t j = 0; j < nr; ++j)
                crow[j] += t[j];
        }
    }
}

#else // portable fallback for compilers without vector extensions

void
microKernel(const float* apanel, const float* bpanel, size_t kc,
            float* c, size_t ldc, size_t mr, size_t nr)
{
    float acc[kGemmMR][kGemmNR] = {};
    for (size_t p = 0; p < kc; ++p) {
        const float* av = apanel + p * kGemmMR;
        const float* bv = bpanel + p * kGemmNR;
        for (size_t i = 0; i < kGemmMR; ++i)
            for (size_t j = 0; j < kGemmNR; ++j)
                acc[i][j] += av[i] * bv[j];
    }
    for (size_t i = 0; i < mr; ++i)
        for (size_t j = 0; j < nr; ++j)
            c[i * ldc + j] += acc[i][j];
}

#endif

// ------------------------------------------------------------- driver

// Row-block size: kMC fills L2, but fixed 72-row chunks starve
// threads on small-m shapes (m=64 would run serial where the old
// row-parallel naive kernel used every core). Shrink blocks —
// MR-aligned — until each thread gets one.
size_t
rowBlockSize(size_t m)
{
    size_t mcBlock = kMC;
#ifdef _OPENMP
    size_t nthreads = size_t(omp_get_max_threads());
    if (nthreads > 1) {
        size_t per = (m + nthreads - 1) / nthreads;
        per = (per + kGemmMR - 1) / kGemmMR * kGemmMR;
        mcBlock = std::clamp(per, size_t(kGemmMR), kMC);
    }
#endif
    return mcBlock;
}

// One (jc, pc) super-block against an already-packed B panel: packs
// MR-row blocks of op(A) per row chunk and streams them through the
// microkernel. Shared by the per-call driver (B packed just before)
// and the packed-B plan path (B packed once, long ago) — keeping the
// two paths on one sweep makes their results bit-identical.
void
sweepRowBlocks(const float* a, size_t lda, bool transA,
               const float* bpacked, float* c, size_t m, size_t n,
               size_t jc, size_t pc, size_t nc, size_t kc,
               size_t mcBlock)
{
    #pragma omp parallel for schedule(dynamic) \
        if (m > mcBlock && m * nc * kc > kGemmBlockThreshold)
    for (long icl = 0; icl < long((m + mcBlock - 1) / mcBlock);
         ++icl) {
        size_t ic = size_t(icl) * mcBlock;
        size_t mc = std::min(mcBlock, m - ic);
        size_t mcPad = (mc + kGemmMR - 1) / kGemmMR * kGemmMR;
        static thread_local std::vector<float> abuf;
        abuf.resize(mcPad * kc);
        const float* asrc =
            transA ? a + pc * lda + ic : a + ic * lda + pc;
        packA(asrc, lda, transA, mc, kc, abuf.data());
        for (size_t ir = 0; ir < mc; ir += kGemmMR) {
            size_t mr = std::min(kGemmMR, mc - ir);
            const float* apanel = abuf.data() + ir * kc;
            for (size_t jr = 0; jr < nc; jr += kGemmNR) {
                size_t nr = std::min(kGemmNR, nc - jr);
                microKernel(apanel, bpacked + jr * kc, kc,
                            c + (ic + ir) * n + jc + jr, n, mr, nr);
            }
        }
    }
}

// Same sweep with op(A) pre-packed: apacked is one KC-deep block
// holding all m rows as MR panels, so the row-panel for row r sits
// at r * kc (r MR-aligned; rowBlockSize keeps chunks MR-aligned).
void
sweepPackedRowBlocks(const float* apacked, const float* bpacked,
                     float* c, size_t m, size_t n, size_t jc,
                     size_t nc, size_t kc, size_t mcBlock)
{
    #pragma omp parallel for schedule(dynamic) \
        if (m > mcBlock && m * nc * kc > kGemmBlockThreshold)
    for (long icl = 0; icl < long((m + mcBlock - 1) / mcBlock);
         ++icl) {
        size_t ic = size_t(icl) * mcBlock;
        size_t mc = std::min(mcBlock, m - ic);
        for (size_t ir = 0; ir < mc; ir += kGemmMR) {
            size_t mr = std::min(kGemmMR, mc - ir);
            const float* apanel = apacked + (ic + ir) * kc;
            for (size_t jr = 0; jr < nc; jr += kGemmNR) {
                size_t nr = std::min(kGemmNR, nc - jr);
                microKernel(apanel, bpacked + jr * kc, kc,
                            c + (ic + ir) * n + jc + jr, n, mr, nr);
            }
        }
    }
}

// C[MxN] += op(A) * op(B) with both operands repacked; the packing
// step absorbs the transposes, so one driver serves all variants.
void
blockedDriver(const float* a, const float* b, float* c,
              size_t m, size_t n, size_t k, bool transA, bool transB)
{
    size_t lda = transA ? m : k;
    size_t ldb = transB ? k : n;
    // Sized to the problem, reused across calls: a fixed kKC x kNC
    // allocation would cost more than a small GEMM computes.
    size_t ncMax = std::min(kNC, (n + kGemmNR - 1) / kGemmNR * kGemmNR);
    size_t kcMax = std::min(kKC, k);
    static thread_local std::vector<float> bbuf;
    bbuf.resize(ncMax * kcMax);
    size_t mcBlock = rowBlockSize(m);
    for (size_t jc = 0; jc < n; jc += kNC) {
        size_t nc = std::min(kNC, n - jc);
        for (size_t pc = 0; pc < k; pc += kKC) {
            size_t kc = std::min(kKC, k - pc);
            const float* bsrc =
                transB ? b + jc * ldb + pc : b + pc * ldb + jc;
            packB(bsrc, ldb, transB, kc, nc, bbuf.data());
            // Capture the packed panel before the parallel region:
            // bbuf is thread_local (so concurrent callers don't
            // race), and OpenMP workers would otherwise resolve it
            // to their own empty per-thread copies. A plain pointer
            // is shared by default and refers to the caller's panel.
            const float* bpacked = bbuf.data();
            sweepRowBlocks(a, lda, transA, bpacked, c, m, n, jc, pc,
                           nc, kc, mcBlock);
        }
    }
}

} // namespace

GemmKernel
chooseGemmKernel(size_t m, size_t n, size_t k)
{
    if (m * n * k <= kGemmBlockThreshold)
        return GemmKernel::Naive;
    if (m < kGemmMR)
        return GemmKernel::Naive;
    return GemmKernel::Blocked;
}

void
setGemmKernel(GemmKernel kernel)
{
    gForced = kernel;
}

GemmKernel
forcedGemmKernel()
{
    return gForced;
}

GemmKernel
activeGemmKernel(size_t m, size_t n, size_t k)
{
    if (gForced != GemmKernel::Auto)
        return gForced;
    return chooseGemmKernel(m, n, k);
}

GemmKernel
activePackedGemmKernel(size_t m, size_t n, size_t k)
{
    if (gForced != GemmKernel::Auto)
        return gForced;
    if (m * n * k <= kGemmBlockThreshold)
        return GemmKernel::Naive;
    return GemmKernel::Blocked;
}

void
gemmNaiveAcc(const float* a, const float* b, float* c,
             size_t m, size_t n, size_t k)
{
    #pragma omp parallel for schedule(static) \
        if (m * n * k > kGemmBlockThreshold)
    for (long i = 0; i < long(m); ++i) {
        float* crow = c + size_t(i) * n;
        const float* arow = a + size_t(i) * k;
        for (size_t p = 0; p < k; ++p) {
            float av = arow[p];
            if (av == 0.0f)
                continue;
            const float* brow = b + p * n;
            for (size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
gemmNaiveBTAcc(const float* a, const float* b, float* c,
               size_t m, size_t n, size_t k)
{
    #pragma omp parallel for schedule(static) \
        if (m * n * k > kGemmBlockThreshold)
    for (long i = 0; i < long(m); ++i) {
        const float* arow = a + size_t(i) * k;
        float* crow = c + size_t(i) * n;
        for (size_t j = 0; j < n; ++j) {
            const float* brow = b + j * k;
            float s = 0.0f;
            for (size_t p = 0; p < k; ++p)
                s += arow[p] * brow[p];
            crow[j] += s;
        }
    }
}

void
gemmNaiveATAcc(const float* a, const float* b, float* c,
               size_t m, size_t n, size_t k)
{
    // A is [K x M]; C[i][j] += sum_p A[p][i] * B[p][j].
    #pragma omp parallel for schedule(static) \
        if (m * n * k > kGemmBlockThreshold)
    for (long i = 0; i < long(m); ++i) {
        float* crow = c + size_t(i) * n;
        for (size_t p = 0; p < k; ++p) {
            float av = a[p * m + size_t(i)];
            if (av == 0.0f)
                continue;
            const float* brow = b + p * n;
            for (size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
gemmBlockedAcc(const float* a, const float* b, float* c,
               size_t m, size_t n, size_t k)
{
    blockedDriver(a, b, c, m, n, k, false, false);
}

void
gemmBlockedBTAcc(const float* a, const float* b, float* c,
                 size_t m, size_t n, size_t k)
{
    blockedDriver(a, b, c, m, n, k, false, true);
}

void
gemmBlockedATAcc(const float* a, const float* b, float* c,
                 size_t m, size_t n, size_t k)
{
    blockedDriver(a, b, c, m, n, k, true, false);
}

// ------------------------------------- deterministic batch reduction

std::vector<size_t>
deterministicBatchChunks(size_t rows, size_t minRows,
                        size_t maxChunks)
{
    MIXQ_ASSERT(minRows > 0 && maxChunks > 0,
                "deterministicBatchChunks: bad arguments");
    if (rows == 0)
        return {0, 0}; // one empty chunk: callers' loops no-op
    size_t count = std::clamp(rows / minRows, size_t(1), maxChunks);
    size_t base = rows / count;
    size_t rem = rows % count;
    std::vector<size_t> bounds(count + 1);
    bounds[0] = 0;
    for (size_t i = 0; i < count; ++i)
        bounds[i + 1] = bounds[i] + base + (i < rem ? 1 : 0);
    return bounds;
}

void
treeReduceParts(float* const* parts, size_t count, size_t len)
{
    // Stride-doubling pairwise merge: parts[i] += parts[i + s].
    // Every pair add is elementwise-independent, so parallelizing
    // over the pairs of one level cannot change any accumulation
    // order; levels are separated by the loop's implicit barrier.
    for (size_t stride = 1; stride < count; stride *= 2) {
        size_t step = 2 * stride;
        size_t pairs = (count > stride) ? (count - stride + step - 1) /
                                              step
                                        : 0;
        #pragma omp parallel for schedule(static) \
            if (pairs > 1 && len > 4096)
        for (long p = 0; p < long(pairs); ++p) {
            float* dst = parts[size_t(p) * step];
            const float* src = parts[size_t(p) * step + stride];
            for (size_t j = 0; j < len; ++j)
                dst[j] += src[j];
        }
    }
}

void
treeReduceAcc(float* const* parts, size_t count, size_t len,
              float* dst)
{
    if (count == 0)
        return;
    treeReduceParts(parts, count, len);
    const float* total = parts[0];
    #pragma omp parallel for schedule(static) if (len > 65536)
    for (long j = 0; j < long(len); ++j)
        dst[size_t(j)] += total[size_t(j)];
}

// --------------------------------------------------- pre-packed plans

void
PackedMat::ensureA(const float* src, size_t m, size_t k, bool trans,
                   uint64_t version)
{
    if (packed_ && side_ == Side::A && src_ == src && rows_ == m &&
        cols_ == k && trans_ == trans && version_ == version)
        return;
    side_ = Side::A;
    src_ = src;
    rows_ = m;
    cols_ = k;
    trans_ = trans;
    version_ = version;
    repack();
}

void
PackedMat::ensureB(const float* src, size_t k, size_t n, bool trans,
                   uint64_t version)
{
    if (packed_ && side_ == Side::B && src_ == src && rows_ == k &&
        cols_ == n && trans_ == trans && version_ == version)
        return;
    side_ = Side::B;
    src_ = src;
    rows_ = k;
    cols_ = n;
    trans_ = trans;
    version_ = version;
    repack();
}

void
PackedMat::repack()
{
    MIXQ_ASSERT(src_ && rows_ > 0 && cols_ > 0,
                "PackedMat: empty source");
    off_.clear();
    if (side_ == Side::A) {
        // op(A) [m x k]: one block per KC slice of k, each holding
        // all m rows as MR panels (mPad * kc floats). Blocks are
        // ordered by pc, so block pcIdx starts at mPad * pc.
        size_t m = rows_, k = cols_;
        size_t lda = trans_ ? m : k;
        size_t mPad = (m + kGemmMR - 1) / kGemmMR * kGemmMR;
        buf_.resize(mPad * k);
        for (size_t pc = 0; pc < k; pc += kKC) {
            size_t kc = std::min(kKC, k - pc);
            off_.push_back(mPad * pc);
            const float* asrc = trans_ ? src_ + pc * lda : src_ + pc;
            packA(asrc, lda, trans_, m, kc, buf_.data() + mPad * pc);
        }
    } else {
        // op(B) [k x n]: blocks ordered (jc, pc) exactly as the
        // per-call driver walks them, each an NC x KC panel of
        // NR-wide slivers (ncPad * kc floats).
        size_t k = rows_, n = cols_;
        size_t ldb = trans_ ? k : n;
        size_t total = 0;
        for (size_t jc = 0; jc < n; jc += kNC) {
            size_t nc = std::min(kNC, n - jc);
            size_t ncPad = (nc + kGemmNR - 1) / kGemmNR * kGemmNR;
            for (size_t pc = 0; pc < k; pc += kKC) {
                size_t kc = std::min(kKC, k - pc);
                off_.push_back(total);
                total += ncPad * kc;
            }
        }
        buf_.resize(total);
        size_t blk = 0;
        for (size_t jc = 0; jc < n; jc += kNC) {
            size_t nc = std::min(kNC, n - jc);
            for (size_t pc = 0; pc < k; pc += kKC) {
                size_t kc = std::min(kKC, k - pc);
                const float* bsrc = trans_ ? src_ + jc * ldb + pc
                                           : src_ + pc * ldb + jc;
                packB(bsrc, ldb, trans_, kc, nc,
                      buf_.data() + off_[blk++]);
            }
        }
    }
    packed_ = true;
    ++packCount_;
}

void
gemmPackedBAcc(const float* a, const PackedMat& pb, float* c,
               size_t m, size_t n, size_t k)
{
    MIXQ_ASSERT(pb.packed_ && pb.side_ == PackedMat::Side::B &&
                pb.rows_ == k && pb.cols_ == n,
                "gemmPackedBAcc: plan/shape mismatch");
    // Relaxed packed dispatch: only sub-threshold volumes fall back
    // to the naive kernel, read straight off the plan's source
    // matrix; skinny-m shapes stay on the padded microkernel since
    // the plan already paid the pack.
    if (activePackedGemmKernel(m, n, k) == GemmKernel::Naive) {
        if (pb.trans_)
            gemmNaiveBTAcc(a, pb.src_, c, m, n, k);
        else
            gemmNaiveAcc(a, pb.src_, c, m, n, k);
        return;
    }
    size_t mcBlock = rowBlockSize(m);
    size_t numPc = (k + kKC - 1) / kKC;
    size_t jci = 0;
    for (size_t jc = 0; jc < n; jc += kNC, ++jci) {
        size_t nc = std::min(kNC, n - jc);
        size_t pci = 0;
        for (size_t pc = 0; pc < k; pc += kKC, ++pci) {
            size_t kc = std::min(kKC, k - pc);
            const float* bpacked =
                pb.buf_.data() + pb.off_[jci * numPc + pci];
            sweepRowBlocks(a, k, false, bpacked, c, m, n, jc, pc, nc,
                           kc, mcBlock);
        }
    }
}

void
gemmPackedB(const float* a, const PackedMat& pb, float* c,
            size_t m, size_t n, size_t k)
{
    std::memset(c, 0, m * n * sizeof(float));
    gemmPackedBAcc(a, pb, c, m, n, k);
}

void
gemmPackedAAcc(const PackedMat& pa, const float* b, float* c,
               size_t m, size_t n, size_t k)
{
    MIXQ_ASSERT(pa.packed_ && pa.side_ == PackedMat::Side::A &&
                pa.rows_ == m && pa.cols_ == k,
                "gemmPackedAAcc: plan/shape mismatch");
    if (activePackedGemmKernel(m, n, k) == GemmKernel::Naive) {
        if (pa.trans_)
            gemmNaiveATAcc(pa.src_, b, c, m, n, k);
        else
            gemmNaiveAcc(pa.src_, b, c, m, n, k);
        return;
    }
    size_t ncMax = std::min(kNC, (n + kGemmNR - 1) / kGemmNR * kGemmNR);
    size_t kcMax = std::min(kKC, k);
    static thread_local std::vector<float> bbuf;
    bbuf.resize(ncMax * kcMax);
    size_t mcBlock = rowBlockSize(m);
    for (size_t jc = 0; jc < n; jc += kNC) {
        size_t nc = std::min(kNC, n - jc);
        size_t pci = 0;
        for (size_t pc = 0; pc < k; pc += kKC, ++pci) {
            size_t kc = std::min(kKC, k - pc);
            packB(b + pc * n + jc, n, false, kc, nc, bbuf.data());
            const float* bpacked = bbuf.data();
            const float* apacked = pa.buf_.data() + pa.off_[pci];
            sweepPackedRowBlocks(apacked, bpacked, c, m, n, jc, nc,
                                 kc, mcBlock);
        }
    }
}

void
gemmPackedA(const PackedMat& pa, const float* b, float* c,
            size_t m, size_t n, size_t k)
{
    std::memset(c, 0, m * n * sizeof(float));
    gemmPackedAAcc(pa, b, c, m, n, k);
}

} // namespace mixq
