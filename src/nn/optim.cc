#include "nn/optim.hh"

#include <cmath>
#include <numbers>

#include "util/logging.hh"

namespace mixq {

Sgd::Sgd(std::vector<Param*> params, double lr, double momentum,
         double weight_decay)
    : params_(std::move(params)), lr_(lr), momentum_(momentum),
      wd_(weight_decay)
{
    vel_.reserve(params_.size());
    for (Param* p : params_)
        vel_.push_back(Tensor::zeros(p->w.shape()));
}

void
Sgd::step()
{
    for (size_t i = 0; i < params_.size(); ++i) {
        Param* p = params_[i];
        Tensor& v = vel_[i];
        float lr = float(lr_), mu = float(momentum_);
        float wd = p->decay ? float(wd_) : 0.0f;
        for (size_t j = 0; j < p->w.size(); ++j) {
            float g = p->grad[j] + wd * p->w[j];
            v[j] = mu * v[j] - lr * g;
            p->w[j] += v[j];
        }
        p->noteUpdated();
    }
}

void
Sgd::zeroGrad()
{
    for (Param* p : params_)
        p->zeroGrad();
}

double
cosineLr(double base, int epoch, int total_epochs)
{
    MIXQ_ASSERT(total_epochs > 0, "cosineLr: bad schedule");
    double t = double(epoch) / double(total_epochs);
    return base * 0.5 * (1.0 + std::cos(std::numbers::pi * t));
}

double
stepLr(double base, int epoch, int every, double gamma)
{
    MIXQ_ASSERT(every > 0, "stepLr: bad schedule");
    return base * std::pow(gamma, double(epoch / every));
}

} // namespace mixq
