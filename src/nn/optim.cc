#include "nn/optim.hh"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "nn/gemm_backend.hh"
#include "util/logging.hh"

namespace mixq {

namespace {

/** Elements per parallel block of Sgd::step. The update is purely
    elementwise — every block computes the same bits wherever it
    runs — so the block size only bounds scheduling overhead; small
    tensors (biases, BN affine params) stay serial. */
constexpr size_t kSgdBlockElems = 4096;

} // namespace

Sgd::Sgd(std::vector<Param*> params, double lr, double momentum,
         double weight_decay)
    : params_(std::move(params)), lr_(lr), momentum_(momentum),
      wd_(weight_decay)
{
    vel_.reserve(params_.size());
    for (Param* p : params_)
        vel_.push_back(Tensor::zeros(p->w.shape()));
}

void
Sgd::step()
{
    for (size_t i = 0; i < params_.size(); ++i) {
        Param* p = params_[i];
        float lr = float(lr_), mu = float(momentum_);
        float wd = p->decay ? float(wd_) : 0.0f;
        size_t n = p->w.size();
        float* w = p->w.data();
        const float* g = p->grad.data();
        float* v = vel_[i].data();
        long blocks = long((n + kSgdBlockElems - 1) / kSgdBlockElems);
        #pragma omp parallel for schedule(static) \
            if (blocks > 1 && !inOmpParallel())
        for (long b = 0; b < blocks; ++b) {
            size_t j0 = size_t(b) * kSgdBlockElems;
            size_t j1 = std::min(n, j0 + kSgdBlockElems);
            #pragma omp simd
            for (size_t j = j0; j < j1; ++j) {
                float gj = g[j] + wd * w[j];
                v[j] = mu * v[j] - lr * gj;
                w[j] += v[j];
            }
        }
        p->noteUpdated();
    }
}

void
Sgd::zeroGrad()
{
    for (Param* p : params_)
        p->zeroGrad();
}

double
cosineLr(double base, int epoch, int total_epochs)
{
    MIXQ_ASSERT(total_epochs > 0, "cosineLr: bad schedule");
    double t = double(epoch) / double(total_epochs);
    return base * 0.5 * (1.0 + std::cos(std::numbers::pi * t));
}

double
stepLr(double base, int epoch, int every, double gamma)
{
    MIXQ_ASSERT(every > 0, "stepLr: bad schedule");
    return base * std::pow(gamma, double(epoch / every));
}

} // namespace mixq
