/**
 * @file
 * RNN task models for Table VI's three applications: an LSTM language
 * model (perplexity, PTB stand-in), a GRU frame tagger (PER, TIMIT
 * stand-in) and an LSTM sequence classifier (accuracy, IMDB
 * stand-in). All three are Modules: their cells and heads register in
 * the named state tree ("emb", "lstm0"..., "head"), so parameter
 * collection, activation-quantizer setup, backend selection
 * (infer/session.hh) and serialization (serial/) run the same
 * tree walks as the CNN models instead of per-model helpers.
 */

#ifndef MIXQ_NN_RNN_MODELS_HH
#define MIXQ_NN_RNN_MODELS_HH

#include <memory>
#include <vector>

#include "nn/layers.hh"
#include "nn/rnn.hh"

namespace mixq {

/** One BPTT batch of a language-model corpus: ids are [T, N] grids. */
struct LmBatch
{
    std::vector<int> input;  //!< [T * N] token ids
    std::vector<int> target; //!< [T * N] next-token ids
    size_t t = 0, n = 0;
};

/** Word-level LSTM language model: Embedding -> LSTM stack -> FC. */
class LstmLm : public Module
{
  public:
    LstmLm(size_t vocab, size_t embed, size_t hidden, size_t layers,
           Rng& rng);

    /** Returns logits [T*N, V]. */
    Tensor forward(const std::vector<int>& ids, size_t t, size_t n,
                   bool train);

    /** Module entry point: @p x is a [T, N] float grid of token ids. */
    Tensor forward(const Tensor& x, bool train) override;
    Tensor backward(const Tensor& dlogits) override;
    std::vector<Module*> children() override;
    std::vector<NamedChild> namedChildren() override;

    size_t vocab() const { return vocab_; }

  private:
    size_t vocab_;
    Embedding emb_;
    std::vector<std::unique_ptr<Lstm>> lstm_;
    Linear head_;
    size_t t_ = 0, n_ = 0;
};

/** GRU frame tagger over real-valued feature streams. */
class GruTagger : public Module
{
  public:
    GruTagger(size_t features, size_t hidden, size_t layers,
              size_t phonemes, Rng& rng);

    /** x is [T, N, F]; returns frame logits [T*N, P]. */
    Tensor forward(const Tensor& x, bool train) override;
    Tensor backward(const Tensor& dlogits) override;
    std::vector<Module*> children() override;
    std::vector<NamedChild> namedChildren() override;

    size_t phonemes() const { return phonemes_; }

  private:
    size_t phonemes_;
    std::vector<std::unique_ptr<Gru>> gru_;
    Linear head_;
    size_t t_ = 0, n_ = 0;
};

/** LSTM sequence classifier (final hidden state -> FC). */
class LstmClassifier : public Module
{
  public:
    LstmClassifier(size_t vocab, size_t embed, size_t hidden,
                   size_t layers, size_t classes, Rng& rng);

    /** Returns logits [N, classes]. */
    Tensor forward(const std::vector<int>& ids, size_t t, size_t n,
                   bool train);

    /** Module entry point: @p x is a [T, N] float grid of token ids. */
    Tensor forward(const Tensor& x, bool train) override;
    Tensor backward(const Tensor& dlogits) override;
    std::vector<Module*> children() override;
    std::vector<NamedChild> namedChildren() override;

  private:
    Embedding emb_;
    std::vector<std::unique_ptr<Lstm>> lstm_;
    Linear head_;
    size_t t_ = 0, n_ = 0;
};

} // namespace mixq

#endif // MIXQ_NN_RNN_MODELS_HH
