/**
 * @file
 * Loss functions. Each returns the mean loss and fills the gradient
 * with respect to the logits (already divided by the batch size, so
 * the backward pass propagates mean-loss gradients).
 */

#ifndef MIXQ_NN_LOSS_HH
#define MIXQ_NN_LOSS_HH

#include <vector>

#include "nn/tensor.hh"

namespace mixq {

/**
 * Mean softmax cross-entropy over a [N, C] logit matrix.
 * @param ignore_index  labels equal to this value contribute neither
 *                      loss nor gradient (use -1 for "none ignored").
 */
double softmaxCrossEntropy(const Tensor& logits,
                           const std::vector<int>& labels,
                           Tensor& dlogits, int ignore_index = -1);

/** Row-wise softmax probabilities of a [N, C] logit matrix. */
Tensor softmax(const Tensor& logits);

/** Mean squared error between prediction and target (same shape). */
double mseLoss(const Tensor& pred, const Tensor& target, Tensor& dpred);

/** Numerically stable sigmoid. */
float sigmoidf(float x);

} // namespace mixq

#endif // MIXQ_NN_LOSS_HH
