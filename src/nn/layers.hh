/**
 * @file
 * Leaf layers of the CNN substrate: Linear, Conv2d, DwConv2d,
 * BatchNorm2d, activations, pooling, Flatten, and the Sequential
 * container. Convolution weights are stored in their GEMM-matrix
 * layout [Cout, Cin*kh*kw] — the same row view that MSQ partitions.
 * All matrix compute (Linear forward/backward, conv via im2col)
 * funnels through nn/gemm.hh and inherits its shape-based dispatch
 * onto the cache-blocked backend. The weight-side operand of each
 * GEMM is held as a pre-packed PackedMat plan (one per weight view),
 * refreshed against Param::version so weights repack only after an
 * optimizer step or quantizer projection, not on every call.
 */

#ifndef MIXQ_NN_LAYERS_HH
#define MIXQ_NN_LAYERS_HH

#include <memory>
#include <vector>

#include "infer/qpack.hh"
#include "nn/gemm_backend.hh"
#include "nn/module.hh"
#include "quant/act_quant.hh"
#include "quant/quantizer.hh"

namespace mixq {

class Rng;

// ------------------------------------------------------------------
// Plan-execution scratch. The serving executor (serve/executor.hh)
// runs eval forwards that read and write planner-placed TensorViews
// instead of allocating activations; everything a forward would
// otherwise allocate per call lives in one of these per-replica
// structs, sized once at the plan's maximum batch by the layer's
// prepareServe(). The layer itself stays immutable during
// forwardServe() (const), so n replicas share one model — packed
// weight panels, folded BN, float weights — and own only their
// scratch. Each struct's bytes() prices that per-replica state for
// the serving memory report.
// ------------------------------------------------------------------

/** Scratch of Linear::forwardServe (both float and int backends). */
struct LinearServeScratch
{
    std::vector<float> xq;      //!< quantized input copy (float path)
    std::vector<int16_t> qT16;  //!< transposed act codes (halfword)
    std::vector<int32_t> qT32;  //!< transposed act codes (fallback)
    std::vector<int32_t> qAcc;  //!< int accumulators
    std::vector<double> f;      //!< per-row rescale factors

    size_t bytes() const
    {
        return xq.size() * sizeof(float) +
               qT16.size() * sizeof(int16_t) +
               qT32.size() * sizeof(int32_t) +
               qAcc.size() * sizeof(int32_t) +
               f.size() * sizeof(double);
    }
};

/** Scratch of Conv2d::forwardServe and DwConv2d::forwardServe. */
struct ConvServeScratch
{
    std::vector<float> xq;   //!< quantized input copy (float path)
    std::vector<float> cols; //!< im2col columns (float path)
    std::vector<int16_t> qIn16, qCols16; //!< halfword code pipeline
    std::vector<int32_t> qIn32, qCols32; //!< int32 code pipeline
    std::vector<int32_t> qAcc;           //!< int accumulators

    size_t bytes() const
    {
        return (xq.size() + cols.size()) * sizeof(float) +
               (qIn16.size() + qCols16.size()) * sizeof(int16_t) +
               (qIn32.size() + qCols32.size() + qAcc.size()) *
                   sizeof(int32_t);
    }
};

/** Scratch of BatchNorm2d::forwardServe (unfolded eval affine). */
struct BnServeScratch
{
    std::vector<double> mean, var;
    std::vector<float> istd;

    size_t bytes() const
    {
        return (mean.size() + var.size()) * sizeof(double) +
               istd.size() * sizeof(float);
    }
};

/** Fully connected layer: y = x W^T + b, x is [N, in]. */
class Linear : public Module
{
  public:
    Linear(size_t in, size_t out, Rng& rng, bool bias = true,
           bool signed_act = false);

    Tensor forward(const Tensor& x, bool train) override;
    Tensor backward(const Tensor& gy) override;
    void ownParams(std::vector<Param*>& out) override;
    void configureOwnActQuant(int bits, bool enable) override;

    Param& weight() { return w_; }
    ActFakeQuant& actQuant() { return actq_; }
    size_t inFeatures() const { return in_; }
    size_t outFeatures() const { return out_; }

    /**
     * Route eval-time forwards onto the integer shift-add backend:
     * pack the (already hard-projected) weights per @p proj and run
     * quantize -> int accumulate -> rescale instead of the float
     * GEMM. Training forwards are unaffected. The activation
     * quantizer must be enabled and calibrated by the first int call.
     */
    void enableIntInference(const MatrixQuantResult& proj, int wbits);
    void disableIntInference() { intBackend_ = false; }
    bool intInferenceEnabled() const { return intBackend_; }
    /** Packed panels of the int backend (test introspection). */
    const PackedQMat& packedQWeights() const { return qpack_; }

    /**
     * Adopt deploy-artifact weight panels (serial/deploy.hh): eval
     * forwards run the int backend on @p pack directly — the float
     * Param never has to hold trained weights. @p pack must be locked
     * (loadFromCodes) and match the layer's [out x in] shape.
     */
    void adoptDeployedWeights(PackedQMat pack, int wbits);

    /**
     * Pack the active backend's weight plan and size @p s for eval
     * batches of up to @p maxRows input rows. Must run on the
     * orchestrating thread before any forwardServe call (PackedMat /
     * PackedQMat ensure discipline); idempotent per weight version.
     */
    void prepareServe(LinearServeScratch& s, size_t maxRows);

    /**
     * Plan-executed eval forward: read x [rows, in], write y [rows,
     * out], both placed by the caller, allocating nothing —
     * bit-identical to forward(x, false) on the active backend. The
     * layer is immutable here (replica-shared); all mutable state is
     * in @p s.
     */
    void forwardServe(const TensorView& x, const TensorView& y,
                      LinearServeScratch& s) const;

  private:
    Tensor intForward(const Tensor& x);

    size_t in_, out_;
    Param w_;
    Param b_;
    bool hasBias_;
    ActFakeQuant actq_;
    Tensor xPre_;   //!< pre-quantization input (STE mask)
    Tensor xq_;     //!< quantized input (gradient computation)
    PackedMat wPlanFwd_; //!< packed W^T (forward x W^T)
    PackedMat wPlanBwd_; //!< packed W (backward gy W)
    bool intBackend_ = false;
    int qBits_ = 0;
    MatrixQuantResult qProj_; //!< row schemes/alphas of the projection
    PackedQMat qpack_;        //!< int backend weight panels
    std::vector<int16_t> qT16_; //!< transposed act codes (halfword)
    std::vector<int32_t> qT32_; //!< transposed act codes (fallback)
    std::vector<int32_t> qAcc_; //!< int accumulators scratch
};

/** 2-D convolution via im2col; weight is [Cout, Cin*kh*kw]. */
class Conv2d : public Module
{
  public:
    Conv2d(size_t in_ch, size_t out_ch, size_t kernel, size_t stride,
           size_t pad, Rng& rng, bool bias = false);

    Tensor forward(const Tensor& x, bool train) override;
    Tensor backward(const Tensor& gy) override;
    void ownParams(std::vector<Param*>& out) override;
    void configureOwnActQuant(int bits, bool enable) override;

    Param& weight() { return w_; }
    size_t inChannels() const { return inCh_; }
    size_t outChannels() const { return outCh_; }
    size_t kernel() const { return k_; }
    size_t stride() const { return stride_; }
    size_t pad() const { return pad_; }
    ActFakeQuant& actQuant() { return actq_; }

    /** Int-backend switch; see Linear::enableIntInference. */
    void enableIntInference(const MatrixQuantResult& proj, int wbits);
    void disableIntInference() { intBackend_ = false; }
    bool intInferenceEnabled() const { return intBackend_; }
    const PackedQMat& packedQWeights() const { return qpack_; }

    /** Adopt deploy-artifact panels; see Linear. */
    void adoptDeployedWeights(PackedQMat pack, int wbits);

    /**
     * Inference-only BatchNorm fold (serve/bn_fold.hh): after the
     * conv epilogue (rescale + bias), apply the *exact* per-element
     * affine of BatchNorm2d's eval path — xh = (y - mean) * invStd;
     * y = gamma * xh + beta — per output channel. Replicating the
     * operation order keeps folded eval forwards bit-identical to
     * conv-then-BN on every backend. Eval forwards only; training
     * forwards ignore the epilogue (the fold is a rewrite of a
     * frozen model).
     */
    void setBnEvalEpilogue(std::vector<float> mean,
                           std::vector<float> invStd,
                           std::vector<float> gamma,
                           std::vector<float> beta);
    void clearBnEvalEpilogue() { bnFold_ = false; }
    bool bnEvalFolded() const { return bnFold_; }

    /** Pack + size scratch for batches up to @p inShape (the plan's
        max-batch input shape); see Linear::prepareServe. */
    void prepareServe(ConvServeScratch& s,
                      const std::vector<size_t>& inShape);

    /** Plan-executed eval forward (see Linear::forwardServe):
        x [n, Cin, H, W] -> y [n, Cout, OH, OW]. */
    void forwardServe(const TensorView& x, const TensorView& y,
                      ConvServeScratch& s) const;

  private:
    Tensor intForward(const Tensor& x);
    /** Apply the folded BN affine to one [outCh, ohow] image slice. */
    void applyBnEpilogue(float* y, size_t ohow) const;

    size_t inCh_, outCh_, k_, stride_, pad_;
    Param w_;
    Param b_;
    bool hasBias_;
    ActFakeQuant actq_;
    Tensor xPre_;
    Tensor cols_;   //!< cached im2col of the quantized input [N,CKK,OHOW]
    PackedMat wPlanFwd_; //!< packed W (forward W * cols)
    PackedMat wPlanBwd_; //!< packed W^T (backward W^T * gy)
    std::vector<size_t> inShape_;
    bool intBackend_ = false;
    int qBits_ = 0;
    MatrixQuantResult qProj_;
    PackedQMat qpack_;
    // Persistent scratch of the int path (cols_-style allocation
    // cache): whole-batch code, im2col and accumulator buffers,
    // resized on shape change only — steady-state eval batches rerun
    // the content (activations change per call) without heap churn.
    std::vector<int16_t> qIn16_, qCols16_;
    std::vector<int32_t> qIn32_, qCols32_, qAccI_;
    std::vector<float> bnM_, bnIs_, bnG_, bnB_; //!< folded BN affine
    bool bnFold_ = false;
};

/** Depthwise 3x3-style convolution; weight is [C, kh*kw]. */
class DwConv2d : public Module
{
  public:
    DwConv2d(size_t channels, size_t kernel, size_t stride, size_t pad,
             Rng& rng);

    Tensor forward(const Tensor& x, bool train) override;
    Tensor backward(const Tensor& gy) override;
    void ownParams(std::vector<Param*>& out) override;
    void configureOwnActQuant(int bits, bool enable) override;

    Param& weight() { return w_; }
    ActFakeQuant& actQuant() { return actq_; }
    size_t channels() const { return ch_; }
    size_t kernel() const { return k_; }
    size_t stride() const { return stride_; }
    size_t pad() const { return pad_; }

    /**
     * Int-backend switch (see Linear::enableIntInference). The
     * depthwise weight packs as a [C, kh*kw] PackedQMat — each
     * channel's kernel is one row — and eval forwards run
     * quantize -> per-channel shift-add row kernel -> rescale over
     * single-channel im2col columns.
     */
    void enableIntInference(const MatrixQuantResult& proj, int wbits);
    void disableIntInference() { intBackend_ = false; }
    bool intInferenceEnabled() const { return intBackend_; }
    const PackedQMat& packedQWeights() const { return qpack_; }

    /** Adopt deploy-artifact panels; see Linear. */
    void adoptDeployedWeights(PackedQMat pack, int wbits);

    /** Pack + size scratch for batches up to @p inShape; see
        Linear::prepareServe. */
    void prepareServe(ConvServeScratch& s,
                      const std::vector<size_t>& inShape);

    /** Plan-executed eval forward (see Linear::forwardServe):
        x [n, C, H, W] -> y [n, C, OH, OW]. */
    void forwardServe(const TensorView& x, const TensorView& y,
                      ConvServeScratch& s) const;

  private:
    Tensor intForward(const Tensor& x);

    size_t ch_, k_, stride_, pad_;
    Param w_;
    ActFakeQuant actq_;
    Tensor xPre_;
    Tensor xq_;
    std::vector<size_t> inShape_;
    bool intBackend_ = false;
    int qBits_ = 0;
    MatrixQuantResult qProj_;
    PackedQMat qpack_;
    // Persistent int-path scratch (see Conv2d): whole-batch codes,
    // per-image single-channel columns and one accumulator row.
    std::vector<int16_t> qIn16_, qCols16_;
    std::vector<int32_t> qIn32_, qCols32_, qAccI_;
};

/** Batch normalization over NCHW channels with running statistics. */
class BatchNorm2d : public Module
{
  public:
    explicit BatchNorm2d(size_t channels, double momentum = 0.1,
                         double eps = 1e-5);

    Tensor forward(const Tensor& x, bool train) override;
    Tensor backward(const Tensor& gy) override;
    void ownParams(std::vector<Param*>& out) override;

    /** Running statistics (for export / folding). */
    const Tensor& runningMean() const { return runMean_; }
    const Tensor& runningVar() const { return runVar_; }

    /** Restore serialized running statistics (checkpoint/artifact
        load); sizes must match the channel count. */
    void restoreRunningStats(std::span<const float> mean,
                             std::span<const float> var);

    size_t channels() const { return ch_; }
    double eps() const { return eps_; }
    const Tensor& gamma() const { return gamma_.w; }
    const Tensor& beta() const { return beta_.w; }

    /**
     * Folded-identity mode (serve/bn_fold.hh): the layer's eval
     * affine has been fused into the preceding convolution's
     * epilogue, so eval forwards pass the input through unchanged.
     * Training forwards are a hard error while folded — the fold is
     * an inference-only rewrite of a frozen model.
     */
    void setFoldedEval(bool on) { foldedEval_ = on; }
    bool foldedEval() const { return foldedEval_; }

    /** Size @p s for the eval affine (per-channel staging). */
    void prepareServe(BnServeScratch& s);

    /** Plan-executed eval forward: the running-stat affine (or a
        pass-through copy when folded); see Linear::forwardServe. */
    void forwardServe(const TensorView& x, const TensorView& y,
                      BnServeScratch& s) const;

  private:
    size_t ch_;
    double momentum_, eps_;
    Param gamma_, beta_;
    Tensor runMean_, runVar_;
    Tensor xhat_;       //!< cached normalized input
    Tensor invStd_;     //!< cached per-channel 1/std
    std::vector<size_t> inShape_;
    bool foldedEval_ = false;
};

/** ReLU, optionally capped at 6 (ReLU6 for the MobileNet blocks). */
class ReLU : public Module
{
  public:
    explicit ReLU(double cap = 0.0) : cap_(cap) {}

    Tensor forward(const Tensor& x, bool train) override;
    Tensor backward(const Tensor& gy) override;

    /** Plan-executed eval forward: clamp x into y without touching
        the STE mask; see Linear::forwardServe. */
    void forwardServe(const TensorView& x, const TensorView& y) const;

  private:
    double cap_;
    std::vector<uint8_t> mask_;
};

/** 2-D max pooling with square window and stride == window. */
class MaxPool2d : public Module
{
  public:
    explicit MaxPool2d(size_t k) : k_(k) {}

    Tensor forward(const Tensor& x, bool train) override;
    Tensor backward(const Tensor& gy) override;

    size_t window() const { return k_; }

    /** Plan-executed eval forward (skips the argmax cache). */
    void forwardServe(const TensorView& x, const TensorView& y) const;

  private:
    size_t k_;
    std::vector<size_t> argmax_;
    std::vector<size_t> inShape_;
};

/** Global average pooling [N,C,H,W] -> [N,C]. */
class GlobalAvgPool : public Module
{
  public:
    Tensor forward(const Tensor& x, bool train) override;
    Tensor backward(const Tensor& gy) override;

    /** Plan-executed eval forward. */
    void forwardServe(const TensorView& x, const TensorView& y) const;

  private:
    std::vector<size_t> inShape_;
};

/** Flatten to [N, rest]. */
class Flatten : public Module
{
  public:
    Tensor forward(const Tensor& x, bool train) override;
    Tensor backward(const Tensor& gy) override;

  private:
    std::vector<size_t> inShape_;
};

/** Ordered container running children in sequence. */
class Sequential : public Module
{
  public:
    Sequential() = default;

    /** Append a layer; returns a reference for chaining. */
    Sequential& add(std::unique_ptr<Module> m);

    Tensor forward(const Tensor& x, bool train) override;
    Tensor backward(const Tensor& gy) override;
    std::vector<Module*> children() override;

    size_t size() const { return mods_.size(); }
    Module& at(size_t i) { return *mods_[i]; }

  private:
    std::vector<std::unique_ptr<Module>> mods_;
};

} // namespace mixq

#endif // MIXQ_NN_LAYERS_HH
