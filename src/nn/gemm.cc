#include "nn/gemm.hh"

#include <cstring>

#include "nn/gemm_backend.hh"
#include "util/logging.hh"

namespace mixq {

void
gemmAcc(const float* a, const float* b, float* c,
        size_t m, size_t n, size_t k)
{
    if (activeGemmKernel(m, n, k) == GemmKernel::Blocked)
        gemmBlockedAcc(a, b, c, m, n, k);
    else
        gemmNaiveAcc(a, b, c, m, n, k);
}

void
gemm(const float* a, const float* b, float* c,
     size_t m, size_t n, size_t k)
{
    std::memset(c, 0, m * n * sizeof(float));
    gemmAcc(a, b, c, m, n, k);
}

void
gemmBTAcc(const float* a, const float* b, float* c,
          size_t m, size_t n, size_t k)
{
    if (activeGemmKernel(m, n, k) == GemmKernel::Blocked)
        gemmBlockedBTAcc(a, b, c, m, n, k);
    else
        gemmNaiveBTAcc(a, b, c, m, n, k);
}

void
gemmBT(const float* a, const float* b, float* c,
       size_t m, size_t n, size_t k)
{
    std::memset(c, 0, m * n * sizeof(float));
    gemmBTAcc(a, b, c, m, n, k);
}

void
gemmATAcc(const float* a, const float* b, float* c,
          size_t m, size_t n, size_t k)
{
    if (activeGemmKernel(m, n, k) == GemmKernel::Blocked)
        gemmBlockedATAcc(a, b, c, m, n, k);
    else
        gemmNaiveATAcc(a, b, c, m, n, k);
}

size_t
convOut(size_t in, size_t kernel, size_t stride, size_t pad)
{
    // Everything is unsigned: a kernel larger than the padded input
    // would wrap to a huge "output size" instead of failing.
    MIXQ_ASSERT(stride > 0, "convOut: stride must be positive");
    MIXQ_ASSERT(in + 2 * pad >= kernel,
                "convOut: kernel exceeds padded input");
    return (in + 2 * pad - kernel) / stride + 1;
}

void
im2col(const float* img, size_t c, size_t h, size_t w,
       size_t kh, size_t kw, size_t stride, size_t pad,
       float* cols)
{
    size_t oh = convOut(h, kh, stride, pad);
    size_t ow = convOut(w, kw, stride, pad);
    size_t ncols = oh * ow;
    size_t row = 0;
    for (size_t ch = 0; ch < c; ++ch) {
        for (size_t ki = 0; ki < kh; ++ki) {
            for (size_t kj = 0; kj < kw; ++kj, ++row) {
                float* dst = cols + row * ncols;
                for (size_t oy = 0; oy < oh; ++oy) {
                    long iy = long(oy * stride + ki) - long(pad);
                    for (size_t ox = 0; ox < ow; ++ox) {
                        long ix = long(ox * stride + kj) - long(pad);
                        float v = 0.0f;
                        if (iy >= 0 && iy < long(h) && ix >= 0 &&
                            ix < long(w)) {
                            v = img[(ch * h + size_t(iy)) * w +
                                    size_t(ix)];
                        }
                        dst[oy * ow + ox] = v;
                    }
                }
            }
        }
    }
}

void
col2im(const float* cols, size_t c, size_t h, size_t w,
       size_t kh, size_t kw, size_t stride, size_t pad,
       float* img)
{
    size_t oh = convOut(h, kh, stride, pad);
    size_t ow = convOut(w, kw, stride, pad);
    size_t ncols = oh * ow;
    size_t row = 0;
    for (size_t ch = 0; ch < c; ++ch) {
        for (size_t ki = 0; ki < kh; ++ki) {
            for (size_t kj = 0; kj < kw; ++kj, ++row) {
                const float* src = cols + row * ncols;
                for (size_t oy = 0; oy < oh; ++oy) {
                    long iy = long(oy * stride + ki) - long(pad);
                    if (iy < 0 || iy >= long(h))
                        continue;
                    for (size_t ox = 0; ox < ow; ++ox) {
                        long ix = long(ox * stride + kj) - long(pad);
                        if (ix < 0 || ix >= long(w))
                            continue;
                        img[(ch * h + size_t(iy)) * w + size_t(ix)] +=
                            src[oy * ow + ox];
                    }
                }
            }
        }
    }
}

} // namespace mixq
