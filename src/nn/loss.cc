#include "nn/loss.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace mixq {

float
sigmoidf(float x)
{
    if (x >= 0.0f) {
        float e = std::exp(-x);
        return 1.0f / (1.0f + e);
    }
    float e = std::exp(x);
    return e / (1.0f + e);
}

Tensor
softmax(const Tensor& logits)
{
    MIXQ_ASSERT(logits.ndim() == 2, "softmax expects [N, C]");
    size_t n = logits.dim(0), c = logits.dim(1);
    Tensor p(logits.shape());
    for (size_t i = 0; i < n; ++i) {
        const float* row = logits.data() + i * c;
        float m = *std::max_element(row, row + c);
        double z = 0.0;
        for (size_t j = 0; j < c; ++j)
            z += std::exp(double(row[j] - m));
        for (size_t j = 0; j < c; ++j)
            p.at2(i, j) =
                float(std::exp(double(row[j] - m)) / z);
    }
    return p;
}

double
softmaxCrossEntropy(const Tensor& logits, const std::vector<int>& labels,
                    Tensor& dlogits, int ignore_index)
{
    MIXQ_ASSERT(logits.ndim() == 2 && labels.size() == logits.dim(0),
                "cross-entropy shape mismatch");
    size_t n = logits.dim(0), c = logits.dim(1);
    dlogits = Tensor(logits.shape());
    Tensor p = softmax(logits);

    size_t valid = 0;
    for (int y : labels) {
        if (y != ignore_index)
            ++valid;
    }
    MIXQ_ASSERT(valid > 0, "cross-entropy: all labels ignored");

    double loss = 0.0;
    for (size_t i = 0; i < n; ++i) {
        int y = labels[i];
        if (y == ignore_index)
            continue;
        MIXQ_ASSERT(y >= 0 && size_t(y) < c, "label out of range");
        loss -= std::log(std::max(double(p.at2(i, size_t(y))), 1e-12));
        for (size_t j = 0; j < c; ++j) {
            dlogits.at2(i, j) =
                (p.at2(i, j) - (j == size_t(y) ? 1.0f : 0.0f)) /
                float(valid);
        }
    }
    return loss / double(valid);
}

double
mseLoss(const Tensor& pred, const Tensor& target, Tensor& dpred)
{
    MIXQ_ASSERT(pred.size() == target.size(), "mse shape mismatch");
    dpred = Tensor(pred.shape());
    double loss = 0.0;
    double n = double(pred.size());
    for (size_t i = 0; i < pred.size(); ++i) {
        double d = double(pred[i]) - double(target[i]);
        loss += d * d;
        dpred[i] = float(2.0 * d / n);
    }
    return loss / n;
}

} // namespace mixq
