#include "nn/loss.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "nn/gemm_backend.hh"
#include "util/logging.hh"

namespace mixq {

float
sigmoidf(float x)
{
    if (x >= 0.0f) {
        float e = std::exp(-x);
        return 1.0f / (1.0f + e);
    }
    float e = std::exp(x);
    return e / (1.0f + e);
}

Tensor
softmax(const Tensor& logits)
{
    MIXQ_ASSERT(logits.ndim() == 2, "softmax expects [N, C]");
    size_t n = logits.dim(0), c = logits.dim(1);
    Tensor p(logits.shape());
    for (size_t i = 0; i < n; ++i) {
        const float* row = logits.data() + i * c;
        float m = *std::max_element(row, row + c);
        double z = 0.0;
        for (size_t j = 0; j < c; ++j)
            z += std::exp(double(row[j] - m));
        for (size_t j = 0; j < c; ++j)
            p.at2(i, j) =
                float(std::exp(double(row[j] - m)) / z);
    }
    return p;
}

double
softmaxCrossEntropy(const Tensor& logits, const std::vector<int>& labels,
                    Tensor& dlogits, int ignore_index)
{
    MIXQ_ASSERT(logits.ndim() == 2 && labels.size() == logits.dim(0),
                "cross-entropy shape mismatch");
    size_t n = logits.dim(0), c = logits.dim(1);
    dlogits = Tensor(logits.shape()); // zero-filled (ignored rows)

    size_t valid = 0;
    for (int y : labels) {
        if (y == ignore_index)
            continue;
        MIXQ_ASSERT(y >= 0 && size_t(y) < c, "label out of range");
        ++valid;
    }
    MIXQ_ASSERT(valid > 0, "cross-entropy: all labels ignored");
    float validf = float(valid);

    // Fused pass: softmax, dlogits and the per-row loss term in one
    // row-parallel walk — no materialized softmax tensor. Rows are
    // independent, so the parallel loop is trivially deterministic;
    // the per-row loss terms are merged by the fixed reduction tree
    // (a function of the batch size alone), so the total is
    // bit-identical across OMP_NUM_THREADS. Per-element math matches
    // the softmax()-based implementation: probabilities round through
    // float before the log and the subtraction, exactly as the
    // materialized tensor did.
    std::vector<double> row_loss(n, 0.0);
    #pragma omp parallel for schedule(static) \
        if (n > 1 && !inOmpParallel())
    for (long i = 0; i < long(n); ++i) {
        int y = labels[size_t(i)];
        if (y == ignore_index)
            continue;
        const float* row = logits.data() + size_t(i) * c;
        float* drow = dlogits.data() + size_t(i) * c;
        float m = *std::max_element(row, row + c);
        double z = 0.0;
        for (size_t j = 0; j < c; ++j)
            z += std::exp(double(row[j] - m));
        for (size_t j = 0; j < c; ++j) {
            float pj = float(std::exp(double(row[j] - m)) / z);
            drow[j] = (pj - (j == size_t(y) ? 1.0f : 0.0f)) /
                      validf;
        }
        float py = float(std::exp(double(row[size_t(y)] - m)) / z);
        row_loss[size_t(i)] =
            -std::log(std::max(double(py), 1e-12));
    }
    double loss = treeReduceValues(std::span<double>(row_loss));
    return loss / double(valid);
}

double
mseLoss(const Tensor& pred, const Tensor& target, Tensor& dpred)
{
    MIXQ_ASSERT(pred.size() == target.size(), "mse shape mismatch");
    dpred = Tensor(pred.shape());
    double loss = 0.0;
    double n = double(pred.size());
    for (size_t i = 0; i < pred.size(); ++i) {
        double d = double(pred[i]) - double(target[i]);
        loss += d * d;
        dpred[i] = float(2.0 * d / n);
    }
    return loss / n;
}

} // namespace mixq
