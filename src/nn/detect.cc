#include "nn/detect.hh"

#include <algorithm>
#include <cmath>

#include "nn/loss.hh"
#include "util/logging.hh"

namespace mixq {

size_t
detectChannels(const DetectConfig& cfg)
{
    return 5 + cfg.classes;
}

namespace {

/** Flattened channel-plane index helper for [N, CH, S, S]. */
inline size_t
idx4(size_t n, size_t ch, size_t y, size_t x, size_t chs, size_t s)
{
    return ((n * chs + ch) * s + y) * s + x;
}

} // namespace

double
detectionLoss(const Tensor& out,
              const std::vector<std::vector<ObjBox>>& gts,
              Tensor& dout, const DetectConfig& cfg)
{
    size_t n = out.dim(0), chs = out.dim(1), s = out.dim(2);
    MIXQ_ASSERT(chs == detectChannels(cfg) && out.dim(3) == s,
                "detection head shape");
    MIXQ_ASSERT(gts.size() == n, "one GT list per image");
    dout = Tensor(out.shape());

    double loss = 0.0;
    double count = double(n * s * s);
    // Per-cell responsibility map: which GT (if any) owns the cell.
    for (size_t i = 0; i < n; ++i) {
        std::vector<long> owner(s * s, -1);
        for (size_t g = 0; g < gts[i].size(); ++g) {
            const ObjBox& b = gts[i][g];
            size_t cx = std::min(size_t(b.cx * float(s)), s - 1);
            size_t cy = std::min(size_t(b.cy * float(s)), s - 1);
            owner[cy * s + cx] = long(g);
        }
        for (size_t y = 0; y < s; ++y) {
            for (size_t x = 0; x < s; ++x) {
                long g = owner[y * s + x];
                float conf_logit = out[idx4(i, 4, y, x, chs, s)];
                float conf = sigmoidf(conf_logit);
                if (g < 0) {
                    // No object: push confidence to zero (BCE).
                    loss += -double(cfg.lambdaNoobj) *
                            std::log(std::max(1.0f - conf, 1e-7f)) /
                            count;
                    dout[idx4(i, 4, y, x, chs, s)] =
                        cfg.lambdaNoobj * conf / float(count);
                    continue;
                }
                const ObjBox& b = gts[i][size_t(g)];
                // Box regression: predictions squash through sigmoid.
                float tx = sigmoidf(out[idx4(i, 0, y, x, chs, s)]);
                float ty = sigmoidf(out[idx4(i, 1, y, x, chs, s)]);
                float tw = sigmoidf(out[idx4(i, 2, y, x, chs, s)]);
                float th = sigmoidf(out[idx4(i, 3, y, x, chs, s)]);
                float gx = b.cx * float(s) - float(x); // offset in cell
                float gy = b.cy * float(s) - float(y);
                float targets[4] = {gx, gy, b.w, b.h};
                float preds[4] = {tx, ty, tw, th};
                for (int k = 0; k < 4; ++k) {
                    float d = preds[k] - targets[k];
                    loss += double(cfg.lambdaBox) * d * d / count;
                    // d/dlogit = 2*lambda*d * sigmoid'(logit)
                    dout[idx4(i, size_t(k), y, x, chs, s)] =
                        2.0f * cfg.lambdaBox * d * preds[k] *
                        (1.0f - preds[k]) / float(count);
                }
                // Objectness: BCE toward 1.
                loss += -std::log(std::max(conf, 1e-7f)) / count;
                dout[idx4(i, 4, y, x, chs, s)] =
                    (conf - 1.0f) / float(count);
                // Class cross-entropy over the class logits.
                double zmax = -1e30;
                for (size_t c = 0; c < cfg.classes; ++c)
                    zmax = std::max(
                        zmax, double(out[idx4(i, 5 + c, y, x, chs, s)]));
                double zsum = 0.0;
                for (size_t c = 0; c < cfg.classes; ++c)
                    zsum += std::exp(
                        double(out[idx4(i, 5 + c, y, x, chs, s)]) -
                        zmax);
                for (size_t c = 0; c < cfg.classes; ++c) {
                    double p = std::exp(double(out[idx4(i, 5 + c, y, x,
                                                        chs, s)]) -
                                        zmax) / zsum;
                    bool is_y = long(c) == long(b.cls);
                    if (is_y)
                        loss += -std::log(std::max(p, 1e-12)) / count;
                    dout[idx4(i, 5 + c, y, x, chs, s)] =
                        float((p - (is_y ? 1.0 : 0.0)) / count);
                }
            }
        }
    }
    return loss;
}

std::vector<DetBox>
nms(std::vector<DetBox> dets, float iou_thresh)
{
    std::sort(dets.begin(), dets.end(),
              [](const DetBox& a, const DetBox& b) {
                  return a.score > b.score;
              });
    std::vector<DetBox> keep;
    for (const DetBox& d : dets) {
        bool ok = true;
        for (const DetBox& k : keep) {
            if (k.cls != d.cls)
                continue;
            double v = iou(d.x1, d.y1, d.x2, d.y2, k.x1, k.y1, k.x2,
                           k.y2);
            if (v > iou_thresh) {
                ok = false;
                break;
            }
        }
        if (ok)
            keep.push_back(d);
    }
    return keep;
}

std::vector<DetBox>
decodeDetections(const Tensor& out, size_t n, const DetectConfig& cfg,
                 float conf_thresh, float nms_iou)
{
    size_t chs = out.dim(1), s = out.dim(2);
    std::vector<DetBox> dets;
    for (size_t y = 0; y < s; ++y) {
        for (size_t x = 0; x < s; ++x) {
            float conf = sigmoidf(out[idx4(n, 4, y, x, chs, s)]);
            if (conf < conf_thresh)
                continue;
            float tx = sigmoidf(out[idx4(n, 0, y, x, chs, s)]);
            float ty = sigmoidf(out[idx4(n, 1, y, x, chs, s)]);
            float tw = sigmoidf(out[idx4(n, 2, y, x, chs, s)]);
            float th = sigmoidf(out[idx4(n, 3, y, x, chs, s)]);
            float cx = (float(x) + tx) / float(s);
            float cy = (float(y) + ty) / float(s);
            int best_c = 0;
            float best_v = -1e30f;
            for (size_t c = 0; c < cfg.classes; ++c) {
                float v = out[idx4(n, 5 + c, y, x, chs, s)];
                if (v > best_v) {
                    best_v = v;
                    best_c = int(c);
                }
            }
            DetBox d;
            d.x1 = cx - tw / 2.0f;
            d.y1 = cy - th / 2.0f;
            d.x2 = cx + tw / 2.0f;
            d.y2 = cy + th / 2.0f;
            d.score = conf;
            d.cls = best_c;
            d.img = int(n);
            dets.push_back(d);
        }
    }
    return nms(std::move(dets), nms_iou);
}

GtBox
toGtBox(const ObjBox& b, int img)
{
    GtBox g;
    g.x1 = b.cx - b.w / 2.0f;
    g.y1 = b.cy - b.h / 2.0f;
    g.x2 = b.cx + b.w / 2.0f;
    g.y2 = b.cy + b.h / 2.0f;
    g.cls = b.cls;
    g.img = img;
    return g;
}

std::unique_ptr<Sequential>
makeTinyDet(const DetectConfig& cfg, size_t img_size, Rng& rng,
            size_t base)
{
    // Downsample from img_size to cfg.grid with stride-2 stages.
    MIXQ_ASSERT(img_size % cfg.grid == 0, "image/grid mismatch");
    size_t down = img_size / cfg.grid;
    auto net = std::make_unique<Sequential>();
    size_t ch = 3;
    size_t width = base;
    net->add(std::make_unique<Conv2d>(ch, width, 3, 1, 1, rng));
    net->add(std::make_unique<BatchNorm2d>(width));
    net->add(std::make_unique<ReLU>());
    ch = width;
    while (down > 1) {
        size_t next = std::min<size_t>(width * 2, 4 * base);
        net->add(std::make_unique<Conv2d>(ch, next, 3, 2, 1, rng));
        net->add(std::make_unique<BatchNorm2d>(next));
        net->add(std::make_unique<ReLU>());
        ch = next;
        width = next;
        down /= 2;
    }
    net->add(std::make_unique<Conv2d>(ch, ch, 3, 1, 1, rng));
    net->add(std::make_unique<BatchNorm2d>(ch));
    net->add(std::make_unique<ReLU>());
    net->add(std::make_unique<Conv2d>(ch, detectChannels(cfg), 1, 1, 0,
                                      rng, true));
    return net;
}

} // namespace mixq
