/**
 * @file
 * SGD with momentum and weight decay, plus the step / cosine learning
 * rate schedules used by the paper's quantization training recipes.
 */

#ifndef MIXQ_NN_OPTIM_HH
#define MIXQ_NN_OPTIM_HH

#include <vector>

#include "nn/module.hh"

namespace mixq {

/** Classic SGD: v = mu*v - lr*(g + wd*w); w += v. */
class Sgd
{
  public:
    Sgd(std::vector<Param*> params, double lr, double momentum = 0.9,
        double weight_decay = 0.0);

    /** Apply one update using the accumulated gradients. */
    void step();

    /** Zero every parameter gradient. */
    void zeroGrad();

    void setLr(double lr) { lr_ = lr; }
    double lr() const { return lr_; }

    /** Tracked parameters in registration order (serialization). */
    const std::vector<Param*>& params() const { return params_; }
    /** Momentum buffer of parameter @p i (checkpoint save/restore —
        serial/checkpoint.hh carries these so a resumed run reproduces
        the uninterrupted trajectory bit for bit). */
    const Tensor& velocity(size_t i) const { return vel_[i]; }
    Tensor& velocity(size_t i) { return vel_[i]; }

  private:
    std::vector<Param*> params_;
    std::vector<Tensor> vel_;
    double lr_, momentum_, wd_;
};

/** Cosine annealing from base to ~0 across total epochs. */
double cosineLr(double base, int epoch, int total_epochs);

/** Step decay: base * gamma^(epoch / every). */
double stepLr(double base, int epoch, int every, double gamma = 0.1);

} // namespace mixq

#endif // MIXQ_NN_OPTIM_HH
