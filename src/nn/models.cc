#include "nn/models.hh"

namespace mixq {

std::unique_ptr<Sequential>
makeMiniResNet(size_t classes, Rng& rng, size_t base, size_t in_ch)
{
    auto net = std::make_unique<Sequential>();
    net->add(std::make_unique<Conv2d>(in_ch, base, 3, 1, 1, rng));
    net->add(std::make_unique<BatchNorm2d>(base));
    net->add(std::make_unique<ReLU>());
    net->add(std::make_unique<BasicBlock>(base, base, 1, rng));
    net->add(std::make_unique<BasicBlock>(base, 2 * base, 2, rng));
    net->add(std::make_unique<BasicBlock>(2 * base, 2 * base, 1, rng));
    net->add(std::make_unique<GlobalAvgPool>());
    net->add(std::make_unique<Linear>(2 * base, classes, rng, true));
    return net;
}

std::unique_ptr<Sequential>
makeMiniMobileNet(size_t classes, Rng& rng, size_t base, size_t in_ch,
                  size_t expand)
{
    auto net = std::make_unique<Sequential>();
    net->add(std::make_unique<Conv2d>(in_ch, base, 3, 1, 1, rng));
    net->add(std::make_unique<BatchNorm2d>(base));
    net->add(std::make_unique<ReLU>(6.0));
    net->add(std::make_unique<InvertedResidual>(base, base, expand, 1,
                                                rng));
    net->add(std::make_unique<InvertedResidual>(base, 2 * base, expand,
                                                2, rng));
    net->add(std::make_unique<InvertedResidual>(2 * base, 2 * base,
                                                expand, 1, rng));
    net->add(std::make_unique<GlobalAvgPool>());
    net->add(std::make_unique<Linear>(2 * base, classes, rng, true));
    return net;
}

std::unique_ptr<Sequential>
makeTinyConvNet(size_t classes, Rng& rng, size_t base, size_t in_ch)
{
    auto net = std::make_unique<Sequential>();
    net->add(std::make_unique<Conv2d>(in_ch, base, 3, 1, 1, rng, true));
    net->add(std::make_unique<ReLU>());
    net->add(std::make_unique<MaxPool2d>(2));
    net->add(std::make_unique<Conv2d>(base, 2 * base, 3, 1, 1, rng,
                                      true));
    net->add(std::make_unique<ReLU>());
    net->add(std::make_unique<GlobalAvgPool>());
    net->add(std::make_unique<Linear>(2 * base, classes, rng, true));
    return net;
}

} // namespace mixq
