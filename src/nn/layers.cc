#include "nn/layers.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>

#include "infer/qkernels.hh"
#include "nn/gemm.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace mixq {

namespace {

/** Kaiming-style init std for a fan-in. */
double
kaimingStd(size_t fan_in)
{
    return std::sqrt(2.0 / double(std::max<size_t>(fan_in, 1)));
}

/**
 * Upper bound on Conv2d backward batch chunks: each chunk carries a
 * private copy of the weight gradient until the tree merge, so this
 * bounds that memory at 16 weight-sized buffers while still feeding
 * every core on the batch sizes the models train with.
 */
constexpr size_t kConvMaxGradChunks = 16;

/**
 * Upper bound on batch chunks of the DwConv2d backward and the Linear
 * bias-gradient reduction: like kConvMaxGradChunks, each chunk holds
 * a private gradient partial until the fixed-order tree merge, so the
 * cap bounds that scratch while the chunk boundaries stay a pure
 * function of the batch size (bit-identical gradients across
 * OMP_NUM_THREADS; tests/layers_mt_test.cc pins both layers).
 */
constexpr size_t kLayerMaxGradChunks = 16;

/**
 * Quantize-or-freeze for an activation quantizer at a layer input:
 * training forwards observe (EMA calibration) then quantize; eval
 * forwards quantize against the frozen clip range only. Eval must
 * never mutate calibration state — the int inference backend snapshots
 * the same frozen alpha, so the float fake-quant forward it is
 * tolerance-tested against has to be a pure function of the weights.
 */
void
actQuantForward(ActFakeQuant& aq, std::span<float> x, bool train)
{
    if (!aq.enabled())
        return;
    if (train)
        aq.forward(x);
    else
        aq.quantizeOnly(x);
}

/**
 * Upper bound on BatchNorm2d statistics chunks: each chunk carries
 * one double accumulator per channel per statistic, merged by the
 * fixed reduction tree. Like the Conv2d chunking, the boundaries are
 * a pure function of the batch size, so the batch statistics — and
 * with them every normalized activation and gradient — are
 * bit-identical across OMP_NUM_THREADS.
 */
constexpr size_t kBnMaxStatChunks = 16;

/**
 * Chunk-parallel per-channel accumulation for BatchNorm2d: run
 * fn(i, c, acc) over every batch item i of each chunk and channel c,
 * where acc points at NStats per-(statistic, channel, chunk) double
 * accumulators, then tree-merge the chunk partials per statistic and
 * channel into out[s][c]. The merge order depends only on (n, chunk
 * cap), never the thread count.
 */
template <size_t NStats, class Fn>
void
bnChunkedReduce(size_t n, size_t ch,
                std::array<std::vector<double>, NStats>& out, Fn&& fn)
{
    std::vector<size_t> bounds =
        deterministicBatchChunks(n, 1, kBnMaxStatChunks);
    size_t chunks = bounds.size() - 1;
    std::vector<double> part(NStats * ch * chunks, 0.0);
    #pragma omp parallel for schedule(static)
    for (long k = 0; k < long(chunks); ++k) {
        for (size_t i = bounds[size_t(k)]; i < bounds[size_t(k) + 1];
             ++i) {
            for (size_t c = 0; c < ch; ++c) {
                double* acc[NStats];
                for (size_t s = 0; s < NStats; ++s)
                    acc[s] =
                        &part[(s * ch + c) * chunks + size_t(k)];
                fn(i, c, acc);
            }
        }
    }
    for (size_t s = 0; s < NStats; ++s) {
        out[s].resize(ch);
        for (size_t c = 0; c < ch; ++c)
            out[s][c] = treeReduceValues(std::span<double>(
                part.data() + (s * ch + c) * chunks, chunks));
    }
}

} // namespace

// ---------------------------------------------------------------- Linear

Linear::Linear(size_t in, size_t out, Rng& rng, bool bias,
               bool signed_act)
    : in_(in), out_(out),
      w_("linear.w", Tensor::randn({out, in}, rng, kaimingStd(in)),
         out, in),
      b_("linear.b", Tensor::zeros({out}), 0, 0, false),
      hasBias_(bias), actq_(4, signed_act)
{
}

void
Linear::ownParams(std::vector<Param*>& out)
{
    out.push_back(&w_);
    if (hasBias_)
        out.push_back(&b_);
}

void
Linear::configureOwnActQuant(int bits, bool enable)
{
    actq_ = ActFakeQuant(bits, actq_.isSigned());
    actq_.setEnabled(enable);
}

Tensor
Linear::forward(const Tensor& x, bool train)
{
    MIXQ_ASSERT(x.ndim() == 2 && x.dim(1) == in_, "Linear shape");
    if (intBackend_ && !train)
        return intForward(x);
    size_t n = x.dim(0);
    xq_ = x;
    if (train)
        xPre_ = x;
    actQuantForward(actq_, xq_.span(), train);
    Tensor y({n, out_});
    wPlanFwd_.ensureB(w_.w.data(), in_, out_, /*trans=*/true,
                      w_.version);
    gemmPackedB(xq_.data(), wPlanFwd_, y.data(), n, out_, in_);
    if (hasBias_) {
        // Disjoint per-row writes: thread split cannot change a bit.
        #pragma omp parallel for schedule(static) if (!inOmpParallel())
        for (long i = 0; i < long(n); ++i)
            for (size_t j = 0; j < out_; ++j)
                y.at2(size_t(i), j) += b_.w[j];
    }
    return y;
}

void
Linear::enableIntInference(const MatrixQuantResult& proj, int wbits)
{
    MIXQ_ASSERT(proj.rowScheme.size() == out_ &&
                proj.rowAlpha.size() == out_,
                "Linear: projection record does not match the layer");
    qProj_ = proj;
    qBits_ = wbits;
    intBackend_ = true;
}

void
Linear::adoptDeployedWeights(PackedQMat pack, int wbits)
{
    MIXQ_ASSERT(pack.locked() && pack.rows() == out_ &&
                    pack.cols() == in_,
                "Linear: deployed panels do not match the layer");
    qpack_ = std::move(pack);
    qBits_ = wbits;
    intBackend_ = true;
}

Tensor
Linear::intForward(const Tensor& x)
{
    size_t n = x.dim(0);
    // Pack once per weight version (PackedMat plan discipline); the
    // panels then serve every eval batch unchanged.
    qpack_.ensure(w_.w.data(), out_, in_, w_.version, qProj_.rowScheme,
                  qProj_.rowAlpha, qBits_);
    ActQuantParams ap = actQuantParams(actq_);
    qAcc_.resize(out_ * n);
    if (halfwordSafe(ap, in_)) {
        qT16_.resize(in_ * n);
        quantizeTransposeActs(x.data(), n, in_, ap, qT16_.data());
        qgemm16(qpack_, qT16_.data(), n, qAcc_.data());
    } else {
        qT32_.resize(in_ * n);
        quantizeTransposeActs(x.data(), n, in_, ap, qT32_.data());
        qgemm(qpack_, qT32_.data(), n, qAcc_.data());
    }
    Tensor y({n, out_});
    rescaleLinear(qpack_, qAcc_.data(), n, ap.invScale,
                  hasBias_ ? b_.w.data() : nullptr, y.data());
    return y;
}

void
Linear::prepareServe(LinearServeScratch& s, size_t maxRows)
{
    MIXQ_ASSERT(maxRows > 0, "Linear: empty serve batch");
    if (intBackend_) {
        qpack_.ensure(w_.w.data(), out_, in_, w_.version,
                      qProj_.rowScheme, qProj_.rowAlpha, qBits_);
        ActQuantParams ap = actQuantParams(actq_);
        if (halfwordSafe(ap, in_))
            s.qT16.resize(in_ * maxRows);
        else
            s.qT32.resize(in_ * maxRows);
        s.qAcc.resize(out_ * maxRows);
        s.f.resize(out_);
        return;
    }
    wPlanFwd_.ensureB(w_.w.data(), in_, out_, /*trans=*/true,
                      w_.version);
    if (actq_.enabled())
        s.xq.resize(maxRows * in_);
}

void
Linear::forwardServe(const TensorView& x, const TensorView& y,
                     LinearServeScratch& s) const
{
    // The planner hands RNN-shaped inputs [T, n, in] to a head Linear
    // as flat rows (rnn_models reshape in place), so the row count is
    // whatever the view holds, not dim(0).
    size_t n = x.size() / in_;
    MIXQ_ASSERT(n * in_ == x.size() && y.size() == n * out_,
                "Linear: serve view shape");
    if (intBackend_) {
        ActQuantParams ap = actQuantParams(actq_);
        if (halfwordSafe(ap, in_)) {
            quantizeTransposeActs(x.data, n, in_, ap, s.qT16.data());
            qgemm16(qpack_, s.qT16.data(), n, s.qAcc.data());
        } else {
            quantizeTransposeActs(x.data, n, in_, ap, s.qT32.data());
            qgemm(qpack_, s.qT32.data(), n, s.qAcc.data());
        }
        rescaleLinear(qpack_, s.qAcc.data(), n, ap.invScale,
                      hasBias_ ? b_.w.data() : nullptr, y.data,
                      s.f.data());
        return;
    }
    // Quantize into replica scratch, never the plan buffer: residual
    // consumers may re-read the input view after this layer runs.
    const float* src = x.data;
    if (actq_.enabled()) {
        std::memcpy(s.xq.data(), x.data, n * in_ * sizeof(float));
        actq_.quantizeOnly({s.xq.data(), n * in_});
        src = s.xq.data();
    }
    gemmPackedB(src, wPlanFwd_, y.data, n, out_, in_);
    if (hasBias_) {
        #pragma omp parallel for schedule(static) if (!inOmpParallel())
        for (long i = 0; i < long(n); ++i) {
            float* yr = y.data + size_t(i) * out_;
            for (size_t j = 0; j < out_; ++j)
                yr[j] += b_.w[j];
        }
    }
}

Tensor
Linear::backward(const Tensor& gy)
{
    size_t n = gy.dim(0);
    MIXQ_ASSERT(gy.ndim() == 2 && gy.dim(1) == out_, "Linear grad shape");
    // gW += gy^T x  (A = gy [N x out] read as [K x M], B = xq [N x in])
    gemmATAcc(gy.data(), xq_.data(), w_.grad.data(), out_, in_, n);
    if (hasBias_) {
        // Bias gradient over deterministic batch chunks with private
        // partials, merged by the fixed-order tree — same scheme as
        // the Conv2d weight gradient, bit-identical across threads.
        std::vector<size_t> bounds =
            deterministicBatchChunks(n, 1, kLayerMaxGradChunks);
        size_t chunks = bounds.size() - 1;
        std::vector<float> buf(chunks * out_, 0.0f);
        std::vector<float*> bp(chunks);
        for (size_t ci = 0; ci < chunks; ++ci)
            bp[ci] = buf.data() + ci * out_;
        #pragma omp parallel for schedule(static)
        for (long ci = 0; ci < long(chunks); ++ci) {
            float* gb = bp[size_t(ci)];
            for (size_t i = bounds[size_t(ci)];
                 i < bounds[size_t(ci) + 1]; ++i)
                for (size_t j = 0; j < out_; ++j)
                    gb[j] += gy.at2(i, j);
        }
        treeReduceAcc(bp.data(), chunks, out_, b_.grad.data());
    }
    Tensor gx({n, in_});
    wPlanBwd_.ensureB(w_.w.data(), out_, in_, /*trans=*/false,
                      w_.version);
    gemmPackedB(gy.data(), wPlanBwd_, gx.data(), n, in_, out_);
    if (actq_.enabled())
        actq_.backwardSte(xPre_.span(), gx.span());
    return gx;
}

// ---------------------------------------------------------------- Conv2d

Conv2d::Conv2d(size_t in_ch, size_t out_ch, size_t kernel,
               size_t stride, size_t pad, Rng& rng, bool bias)
    : inCh_(in_ch), outCh_(out_ch), k_(kernel), stride_(stride),
      pad_(pad),
      w_("conv.w",
         Tensor::randn({out_ch, in_ch * kernel * kernel}, rng,
                       kaimingStd(in_ch * kernel * kernel)),
         out_ch, in_ch * kernel * kernel),
      b_("conv.b", Tensor::zeros({out_ch}), 0, 0, false),
      hasBias_(bias), actq_(4, false)
{
}

void
Conv2d::ownParams(std::vector<Param*>& out)
{
    out.push_back(&w_);
    if (hasBias_)
        out.push_back(&b_);
}

void
Conv2d::configureOwnActQuant(int bits, bool enable)
{
    actq_ = ActFakeQuant(bits, false);
    actq_.setEnabled(enable);
}

Tensor
Conv2d::forward(const Tensor& x, bool train)
{
    MIXQ_ASSERT(x.ndim() == 4 && x.dim(1) == inCh_, "Conv2d shape");
    if (intBackend_ && !train)
        return intForward(x);
    inShape_ = x.shape();
    size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
    size_t oh = convOut(h, k_, stride_, pad_);
    size_t ow = convOut(w, k_, stride_, pad_);
    size_t ckk = inCh_ * k_ * k_;
    size_t ohow = oh * ow;

    Tensor xq = x;
    if (train)
        xPre_ = x;
    actQuantForward(actq_, xq.span(), train);

    cols_ = Tensor({n, ckk, ohow});
    Tensor y({n, outCh_, oh, ow});
    // Pack the weight once for the whole batch (and every batch
    // until the optimizer/quantizer bumps w_.version). Must happen
    // before the parallel region: ensure mutates the plan.
    wPlanFwd_.ensureA(w_.w.data(), outCh_, ckk, /*trans=*/false,
                      w_.version);
    #pragma omp parallel for schedule(static)
    for (long i = 0; i < long(n); ++i) {
        const float* img = xq.data() + size_t(i) * inCh_ * h * w;
        float* col = cols_.data() + size_t(i) * ckk * ohow;
        im2col(img, inCh_, h, w, k_, k_, stride_, pad_, col);
        float* out = y.data() + size_t(i) * outCh_ * ohow;
        // y = W [outCh x ckk] * col [ckk x ohow]
        gemmPackedA(wPlanFwd_, col, out, outCh_, ohow, ckk);
        if (hasBias_) {
            for (size_t r = 0; r < outCh_; ++r) {
                float* yrow = out + r * ohow;
                for (size_t q = 0; q < ohow; ++q)
                    yrow[q] += b_.w[r];
            }
        }
        if (!train && bnFold_)
            applyBnEpilogue(out, ohow);
    }
    (void)train;
    return y;
}

void
Conv2d::enableIntInference(const MatrixQuantResult& proj, int wbits)
{
    MIXQ_ASSERT(proj.rowScheme.size() == outCh_ &&
                proj.rowAlpha.size() == outCh_,
                "Conv2d: projection record does not match the layer");
    qProj_ = proj;
    qBits_ = wbits;
    intBackend_ = true;
}

void
Conv2d::adoptDeployedWeights(PackedQMat pack, int wbits)
{
    MIXQ_ASSERT(pack.locked() && pack.rows() == outCh_ &&
                    pack.cols() == inCh_ * k_ * k_,
                "Conv2d: deployed panels do not match the layer");
    qpack_ = std::move(pack);
    qBits_ = wbits;
    intBackend_ = true;
}

void
Conv2d::setBnEvalEpilogue(std::vector<float> mean,
                          std::vector<float> invStd,
                          std::vector<float> gamma,
                          std::vector<float> beta)
{
    MIXQ_ASSERT(mean.size() == outCh_ && invStd.size() == outCh_ &&
                    gamma.size() == outCh_ && beta.size() == outCh_,
                "Conv2d: BN epilogue channel mismatch");
    bnM_ = std::move(mean);
    bnIs_ = std::move(invStd);
    bnG_ = std::move(gamma);
    bnB_ = std::move(beta);
    bnFold_ = true;
}

void
Conv2d::applyBnEpilogue(float* y, size_t ohow) const
{
    // Exactly BatchNorm2d's eval elementwise pass (same operation
    // order per element), so folding cannot change a bit.
    for (size_t c = 0; c < outCh_; ++c) {
        float m = bnM_[c], is = bnIs_[c];
        float g = bnG_[c], b = bnB_[c];
        float* row = y + c * ohow;
        for (size_t q = 0; q < ohow; ++q) {
            float xh = (row[q] - m) * is;
            row[q] = g * xh + b;
        }
    }
}

Tensor
Conv2d::intForward(const Tensor& x)
{
    size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
    size_t oh = convOut(h, k_, stride_, pad_);
    size_t ow = convOut(w, k_, stride_, pad_);
    size_t ckk = inCh_ * k_ * k_;
    size_t ohow = oh * ow;
    size_t chw = inCh_ * h * w;

    qpack_.ensure(w_.w.data(), outCh_, ckk, w_.version,
                  qProj_.rowScheme, qProj_.rowAlpha, qBits_);
    ActQuantParams ap = actQuantParams(actq_);

    Tensor y({n, outCh_, oh, ow});
    // Quantize the whole batch to integer codes once; im2col then
    // gathers codes, so padding zeros stay exact code zeros. Codes
    // ride the halfword pipeline whenever the reduction depth admits
    // it (halfwordSafe) — bit-identical accumulators, half the
    // traffic. The code, im2col and accumulator buffers are
    // persistent members (cols_-style) sliced per batch item: the
    // weight panels already key on shape + Param::version via
    // qpack_.ensure, and these buffers key on the same shape, so a
    // steady-state eval loop re-fills storage allocated once instead
    // of re-allocating per call. Item-parallel over disjoint slices:
    // every output element is a pure function of its own image, so
    // the split never changes a bit. qgemm detects the enclosing
    // region and stays serial.
    qAccI_.resize(n * outCh_ * ohow);
    if (halfwordSafe(ap, ckk)) {
        qIn16_.resize(n * chw);
        qCols16_.resize(n * ckk * ohow);
        quantizeActsInt(x.data(), qIn16_.data(), n * chw, ap);
        #pragma omp parallel for schedule(static)
        for (long i = 0; i < long(n); ++i) {
            int16_t* colsI = qCols16_.data() + size_t(i) * ckk * ohow;
            int32_t* acc = qAccI_.data() + size_t(i) * outCh_ * ohow;
            im2colInt(qIn16_.data() + size_t(i) * chw, inCh_, h, w,
                      k_, k_, stride_, pad_, colsI);
            qgemm16(qpack_, colsI, ohow, acc);
            rescaleConv(qpack_, acc, ohow, ap.invScale,
                        hasBias_ ? b_.w.data() : nullptr,
                        y.data() + size_t(i) * outCh_ * ohow);
            if (bnFold_)
                applyBnEpilogue(y.data() + size_t(i) * outCh_ * ohow,
                                ohow);
        }
        return y;
    }
    qIn32_.resize(n * chw);
    qCols32_.resize(n * ckk * ohow);
    quantizeActsInt(x.data(), qIn32_.data(), n * chw, ap);
    #pragma omp parallel for schedule(static)
    for (long i = 0; i < long(n); ++i) {
        int32_t* colsI = qCols32_.data() + size_t(i) * ckk * ohow;
        int32_t* acc = qAccI_.data() + size_t(i) * outCh_ * ohow;
        im2colInt(qIn32_.data() + size_t(i) * chw, inCh_, h, w, k_,
                  k_, stride_, pad_, colsI);
        qgemm(qpack_, colsI, ohow, acc);
        rescaleConv(qpack_, acc, ohow, ap.invScale,
                    hasBias_ ? b_.w.data() : nullptr,
                    y.data() + size_t(i) * outCh_ * ohow);
        if (bnFold_)
            applyBnEpilogue(y.data() + size_t(i) * outCh_ * ohow,
                            ohow);
    }
    return y;
}

void
Conv2d::prepareServe(ConvServeScratch& s,
                     const std::vector<size_t>& inShape)
{
    MIXQ_ASSERT(inShape.size() == 4 && inShape[1] == inCh_,
                "Conv2d: serve input shape");
    size_t n = inShape[0], h = inShape[2], w = inShape[3];
    size_t oh = convOut(h, k_, stride_, pad_);
    size_t ow = convOut(w, k_, stride_, pad_);
    size_t ckk = inCh_ * k_ * k_;
    size_t ohow = oh * ow;
    size_t chw = inCh_ * h * w;
    if (intBackend_) {
        qpack_.ensure(w_.w.data(), outCh_, ckk, w_.version,
                      qProj_.rowScheme, qProj_.rowAlpha, qBits_);
        ActQuantParams ap = actQuantParams(actq_);
        s.qAcc.resize(n * outCh_ * ohow);
        if (halfwordSafe(ap, ckk)) {
            s.qIn16.resize(n * chw);
            s.qCols16.resize(n * ckk * ohow);
        } else {
            s.qIn32.resize(n * chw);
            s.qCols32.resize(n * ckk * ohow);
        }
        return;
    }
    wPlanFwd_.ensureA(w_.w.data(), outCh_, ckk, /*trans=*/false,
                      w_.version);
    if (actq_.enabled())
        s.xq.resize(n * chw);
    s.cols.resize(n * ckk * ohow);
}

void
Conv2d::forwardServe(const TensorView& x, const TensorView& y,
                     ConvServeScratch& s) const
{
    MIXQ_ASSERT(x.ndim() == 4 && x.dim(1) == inCh_,
                "Conv2d: serve view shape");
    size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
    size_t oh = convOut(h, k_, stride_, pad_);
    size_t ow = convOut(w, k_, stride_, pad_);
    size_t ckk = inCh_ * k_ * k_;
    size_t ohow = oh * ow;
    size_t chw = inCh_ * h * w;
    MIXQ_ASSERT(y.size() == n * outCh_ * ohow,
                "Conv2d: serve out shape");
    if (intBackend_) {
        ActQuantParams ap = actQuantParams(actq_);
        if (halfwordSafe(ap, ckk)) {
            quantizeActsInt(x.data, s.qIn16.data(), n * chw, ap);
            #pragma omp parallel for schedule(static)
            for (long i = 0; i < long(n); ++i) {
                int16_t* colsI =
                    s.qCols16.data() + size_t(i) * ckk * ohow;
                int32_t* acc =
                    s.qAcc.data() + size_t(i) * outCh_ * ohow;
                im2colInt(s.qIn16.data() + size_t(i) * chw, inCh_, h,
                          w, k_, k_, stride_, pad_, colsI);
                qgemm16(qpack_, colsI, ohow, acc);
                rescaleConv(qpack_, acc, ohow, ap.invScale,
                            hasBias_ ? b_.w.data() : nullptr,
                            y.data + size_t(i) * outCh_ * ohow);
                if (bnFold_)
                    applyBnEpilogue(
                        y.data + size_t(i) * outCh_ * ohow, ohow);
            }
            return;
        }
        quantizeActsInt(x.data, s.qIn32.data(), n * chw, ap);
        #pragma omp parallel for schedule(static)
        for (long i = 0; i < long(n); ++i) {
            int32_t* colsI = s.qCols32.data() + size_t(i) * ckk * ohow;
            int32_t* acc = s.qAcc.data() + size_t(i) * outCh_ * ohow;
            im2colInt(s.qIn32.data() + size_t(i) * chw, inCh_, h, w,
                      k_, k_, stride_, pad_, colsI);
            qgemm(qpack_, colsI, ohow, acc);
            rescaleConv(qpack_, acc, ohow, ap.invScale,
                        hasBias_ ? b_.w.data() : nullptr,
                        y.data + size_t(i) * outCh_ * ohow);
            if (bnFold_)
                applyBnEpilogue(y.data + size_t(i) * outCh_ * ohow,
                                ohow);
        }
        return;
    }
    // Quantize into replica scratch, never the plan buffer (residual
    // consumers may re-read the input view).
    const float* src = x.data;
    if (actq_.enabled()) {
        std::memcpy(s.xq.data(), x.data, n * chw * sizeof(float));
        actq_.quantizeOnly({s.xq.data(), n * chw});
        src = s.xq.data();
    }
    #pragma omp parallel for schedule(static)
    for (long i = 0; i < long(n); ++i) {
        const float* img = src + size_t(i) * chw;
        float* col = s.cols.data() + size_t(i) * ckk * ohow;
        im2col(img, inCh_, h, w, k_, k_, stride_, pad_, col);
        float* out = y.data + size_t(i) * outCh_ * ohow;
        gemmPackedA(wPlanFwd_, col, out, outCh_, ohow, ckk);
        if (hasBias_) {
            for (size_t r = 0; r < outCh_; ++r) {
                float* yrow = out + r * ohow;
                for (size_t q = 0; q < ohow; ++q)
                    yrow[q] += b_.w[r];
            }
        }
        if (bnFold_)
            applyBnEpilogue(out, ohow);
    }
}

Tensor
Conv2d::backward(const Tensor& gy)
{
    size_t n = inShape_[0], h = inShape_[2], w = inShape_[3];
    size_t oh = convOut(h, k_, stride_, pad_);
    size_t ow = convOut(w, k_, stride_, pad_);
    size_t ckk = inCh_ * k_ * k_;
    size_t ohow = oh * ow;
    MIXQ_ASSERT(gy.ndim() == 4 && gy.dim(1) == outCh_ &&
                gy.dim(2) == oh && gy.dim(3) == ow, "Conv2d grad shape");

    Tensor gx(inShape_);
    wPlanBwd_.ensureA(w_.w.data(), ckk, outCh_, /*trans=*/true,
                      w_.version);
    // Input gradient: parallel over every batch item — disjoint
    // writes, no reduction, so full item-parallelism costs nothing
    // in determinism. gcols is per-thread scratch sized once, not a
    // fresh heap allocation per batch item.
    #pragma omp parallel
    {
        std::vector<float> gcols(ckk * ohow);
        #pragma omp for schedule(static)
        for (long i = 0; i < long(n); ++i) {
            const float* g = gy.data() + size_t(i) * outCh_ * ohow;
            // gcols = W^T [ckk x outCh] * g [outCh x ohow]
            gemmPackedA(wPlanBwd_, g, gcols.data(), ckk, ohow,
                        outCh_);
            float* gimg = gx.data() + size_t(i) * inCh_ * h * w;
            col2im(gcols.data(), inCh_, h, w, k_, k_, stride_, pad_,
                   gimg);
        }
    }
    // Weight gradient: parallel over fixed batch chunks, one
    // private partial per chunk, merged by the fixed-order tree
    // reduction. The chunking depends only on n — never on the
    // thread count — so unlike the old per-thread gw_parts (whose
    // merge followed thread scheduling order) the gradient is
    // bit-identical for any OMP_NUM_THREADS. Only this reduction
    // needs the chunk cap: each chunk carries a weight-sized buffer.
    size_t wLen = w_.grad.size();
    std::vector<size_t> bounds =
        deterministicBatchChunks(n, 1, kConvMaxGradChunks);
    size_t chunks = bounds.size() - 1;
    std::vector<float> gwBuf(chunks * wLen, 0.0f);
    std::vector<float*> gwP(chunks);
    for (size_t ci = 0; ci < chunks; ++ci)
        gwP[ci] = gwBuf.data() + ci * wLen;
    #pragma omp parallel for schedule(static)
    for (long ci = 0; ci < long(chunks); ++ci) {
        float* gw = gwP[size_t(ci)];
        for (size_t i = bounds[size_t(ci)];
             i < bounds[size_t(ci) + 1]; ++i) {
            const float* g = gy.data() + i * outCh_ * ohow;
            const float* col = cols_.data() + i * ckk * ohow;
            // gW += g [outCh x ohow] * col^T [ohow x ckk]
            gemmBTAcc(g, col, gw, outCh_, ckk, ohow);
        }
    }
    treeReduceAcc(gwP.data(), chunks, wLen, w_.grad.data());

    if (hasBias_) {
        for (size_t i = 0; i < n; ++i)
            for (size_t r = 0; r < outCh_; ++r)
                for (size_t q = 0; q < ohow; ++q)
                    b_.grad[r] += gy.data()[(i * outCh_ + r) * ohow + q];
    }
    if (actq_.enabled())
        actq_.backwardSte(xPre_.span(), gx.span());
    return gx;
}

// -------------------------------------------------------------- DwConv2d

DwConv2d::DwConv2d(size_t channels, size_t kernel, size_t stride,
                   size_t pad, Rng& rng)
    : ch_(channels), k_(kernel), stride_(stride), pad_(pad),
      w_("dwconv.w",
         Tensor::randn({channels, kernel * kernel}, rng,
                       kaimingStd(kernel * kernel)),
         channels, kernel * kernel),
      actq_(4, false)
{
}

void
DwConv2d::ownParams(std::vector<Param*>& out)
{
    out.push_back(&w_);
}

void
DwConv2d::configureOwnActQuant(int bits, bool enable)
{
    actq_ = ActFakeQuant(bits, false);
    actq_.setEnabled(enable);
}

Tensor
DwConv2d::forward(const Tensor& x, bool train)
{
    MIXQ_ASSERT(x.ndim() == 4 && x.dim(1) == ch_, "DwConv2d shape");
    if (intBackend_ && !train)
        return intForward(x);
    inShape_ = x.shape();
    size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
    size_t oh = convOut(h, k_, stride_, pad_);
    size_t ow = convOut(w, k_, stride_, pad_);

    xq_ = x;
    if (train)
        xPre_ = x;
    actQuantForward(actq_, xq_.span(), train);

    Tensor y({n, ch_, oh, ow});
    #pragma omp parallel for schedule(static)
    for (long idx = 0; idx < long(n * ch_); ++idx) {
        size_t i = size_t(idx) / ch_;
        size_t c = size_t(idx) % ch_;
        const float* img = xq_.data() + (i * ch_ + c) * h * w;
        const float* ker = w_.w.data() + c * k_ * k_;
        float* out = y.data() + (i * ch_ + c) * oh * ow;
        for (size_t oy = 0; oy < oh; ++oy) {
            for (size_t ox = 0; ox < ow; ++ox) {
                float s = 0.0f;
                for (size_t ki = 0; ki < k_; ++ki) {
                    long iy = long(oy * stride_ + ki) - long(pad_);
                    if (iy < 0 || iy >= long(h))
                        continue;
                    for (size_t kj = 0; kj < k_; ++kj) {
                        long ix = long(ox * stride_ + kj) - long(pad_);
                        if (ix < 0 || ix >= long(w))
                            continue;
                        s += ker[ki * k_ + kj] *
                             img[size_t(iy) * w + size_t(ix)];
                    }
                }
                out[oy * ow + ox] = s;
            }
        }
    }
    (void)train;
    return y;
}

void
DwConv2d::enableIntInference(const MatrixQuantResult& proj, int wbits)
{
    MIXQ_ASSERT(proj.rowScheme.size() == ch_ &&
                proj.rowAlpha.size() == ch_,
                "DwConv2d: projection record does not match the layer");
    qProj_ = proj;
    qBits_ = wbits;
    intBackend_ = true;
}

void
DwConv2d::adoptDeployedWeights(PackedQMat pack, int wbits)
{
    MIXQ_ASSERT(pack.locked() && pack.rows() == ch_ &&
                    pack.cols() == k_ * k_,
                "DwConv2d: deployed panels do not match the layer");
    qpack_ = std::move(pack);
    qBits_ = wbits;
    intBackend_ = true;
}

Tensor
DwConv2d::intForward(const Tensor& x)
{
    size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
    size_t oh = convOut(h, k_, stride_, pad_);
    size_t ow = convOut(w, k_, stride_, pad_);
    size_t kk = k_ * k_;
    size_t ohow = oh * ow;
    size_t chw = ch_ * h * w;

    // One [C, kh*kw] pack: each channel's kernel is one code row, so
    // the depthwise product reuses the row microkernel over a
    // single-channel im2col — the same shift-add datapath as Conv2d,
    // one row at a time.
    qpack_.ensure(w_.w.data(), ch_, kk, w_.version, qProj_.rowScheme,
                  qProj_.rowAlpha, qBits_);
    ActQuantParams ap = actQuantParams(actq_);

    Tensor y({n, ch_, oh, ow});
    // Whole-batch quantize once; per-image columns and one
    // accumulator row are persistent members (cols_-style) sliced per
    // batch item. Item-parallel over disjoint outputs — every output
    // element is a pure function of its own image and channel, so the
    // split never changes a bit.
    qAccI_.resize(n * ohow);
    if (halfwordSafe(ap, kk)) {
        qIn16_.resize(n * chw);
        qCols16_.resize(n * kk * ohow);
        quantizeActsInt(x.data(), qIn16_.data(), n * chw, ap);
        #pragma omp parallel for schedule(static)
        for (long i = 0; i < long(n); ++i) {
            int16_t* cols = qCols16_.data() + size_t(i) * kk * ohow;
            int32_t* acc = qAccI_.data() + size_t(i) * ohow;
            for (size_t c = 0; c < ch_; ++c) {
                im2colInt(qIn16_.data() + (size_t(i) * ch_ + c) * h * w,
                          1, h, w, k_, k_, stride_, pad_, cols);
                qgemmRow16(qpack_, c, cols, ohow, acc);
                double f = qpack_.rowDequant(c) * double(ap.invScale);
                float* out = y.data() + (size_t(i) * ch_ + c) * ohow;
                #pragma omp simd
                for (size_t q = 0; q < ohow; ++q)
                    out[q] = float(double(acc[q]) * f);
            }
        }
        return y;
    }
    qIn32_.resize(n * chw);
    qCols32_.resize(n * kk * ohow);
    quantizeActsInt(x.data(), qIn32_.data(), n * chw, ap);
    #pragma omp parallel for schedule(static)
    for (long i = 0; i < long(n); ++i) {
        int32_t* cols = qCols32_.data() + size_t(i) * kk * ohow;
        int32_t* acc = qAccI_.data() + size_t(i) * ohow;
        for (size_t c = 0; c < ch_; ++c) {
            im2colInt(qIn32_.data() + (size_t(i) * ch_ + c) * h * w,
                      1, h, w, k_, k_, stride_, pad_, cols);
            qgemmRow(qpack_, c, cols, ohow, acc);
            double f = qpack_.rowDequant(c) * double(ap.invScale);
            float* out = y.data() + (size_t(i) * ch_ + c) * ohow;
            #pragma omp simd
            for (size_t q = 0; q < ohow; ++q)
                out[q] = float(double(acc[q]) * f);
        }
    }
    return y;
}

void
DwConv2d::prepareServe(ConvServeScratch& s,
                       const std::vector<size_t>& inShape)
{
    MIXQ_ASSERT(inShape.size() == 4 && inShape[1] == ch_,
                "DwConv2d: serve input shape");
    size_t n = inShape[0], h = inShape[2], w = inShape[3];
    size_t oh = convOut(h, k_, stride_, pad_);
    size_t ow = convOut(w, k_, stride_, pad_);
    size_t kk = k_ * k_;
    size_t ohow = oh * ow;
    size_t chw = ch_ * h * w;
    if (intBackend_) {
        qpack_.ensure(w_.w.data(), ch_, kk, w_.version,
                      qProj_.rowScheme, qProj_.rowAlpha, qBits_);
        ActQuantParams ap = actQuantParams(actq_);
        s.qAcc.resize(n * ohow);
        if (halfwordSafe(ap, kk)) {
            s.qIn16.resize(n * chw);
            s.qCols16.resize(n * kk * ohow);
        } else {
            s.qIn32.resize(n * chw);
            s.qCols32.resize(n * kk * ohow);
        }
        return;
    }
    if (actq_.enabled())
        s.xq.resize(n * chw);
}

void
DwConv2d::forwardServe(const TensorView& x, const TensorView& y,
                       ConvServeScratch& s) const
{
    MIXQ_ASSERT(x.ndim() == 4 && x.dim(1) == ch_,
                "DwConv2d: serve view shape");
    size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
    size_t oh = convOut(h, k_, stride_, pad_);
    size_t ow = convOut(w, k_, stride_, pad_);
    size_t kk = k_ * k_;
    size_t ohow = oh * ow;
    size_t chw = ch_ * h * w;
    MIXQ_ASSERT(y.size() == n * ch_ * ohow,
                "DwConv2d: serve out shape");
    if (intBackend_) {
        ActQuantParams ap = actQuantParams(actq_);
        if (halfwordSafe(ap, kk)) {
            quantizeActsInt(x.data, s.qIn16.data(), n * chw, ap);
            #pragma omp parallel for schedule(static)
            for (long i = 0; i < long(n); ++i) {
                int16_t* cols =
                    s.qCols16.data() + size_t(i) * kk * ohow;
                int32_t* acc = s.qAcc.data() + size_t(i) * ohow;
                for (size_t c = 0; c < ch_; ++c) {
                    im2colInt(s.qIn16.data() +
                                  (size_t(i) * ch_ + c) * h * w,
                              1, h, w, k_, k_, stride_, pad_, cols);
                    qgemmRow16(qpack_, c, cols, ohow, acc);
                    double f =
                        qpack_.rowDequant(c) * double(ap.invScale);
                    float* out =
                        y.data + (size_t(i) * ch_ + c) * ohow;
                    #pragma omp simd
                    for (size_t q = 0; q < ohow; ++q)
                        out[q] = float(double(acc[q]) * f);
                }
            }
            return;
        }
        quantizeActsInt(x.data, s.qIn32.data(), n * chw, ap);
        #pragma omp parallel for schedule(static)
        for (long i = 0; i < long(n); ++i) {
            int32_t* cols = s.qCols32.data() + size_t(i) * kk * ohow;
            int32_t* acc = s.qAcc.data() + size_t(i) * ohow;
            for (size_t c = 0; c < ch_; ++c) {
                im2colInt(s.qIn32.data() +
                              (size_t(i) * ch_ + c) * h * w,
                          1, h, w, k_, k_, stride_, pad_, cols);
                qgemmRow(qpack_, c, cols, ohow, acc);
                double f = qpack_.rowDequant(c) * double(ap.invScale);
                float* out = y.data + (size_t(i) * ch_ + c) * ohow;
                #pragma omp simd
                for (size_t q = 0; q < ohow; ++q)
                    out[q] = float(double(acc[q]) * f);
            }
        }
        return;
    }
    const float* src = x.data;
    if (actq_.enabled()) {
        std::memcpy(s.xq.data(), x.data, n * chw * sizeof(float));
        actq_.quantizeOnly({s.xq.data(), n * chw});
        src = s.xq.data();
    }
    #pragma omp parallel for schedule(static)
    for (long idx = 0; idx < long(n * ch_); ++idx) {
        size_t i = size_t(idx) / ch_;
        size_t c = size_t(idx) % ch_;
        const float* img = src + (i * ch_ + c) * h * w;
        const float* ker = w_.w.data() + c * kk;
        float* out = y.data + (i * ch_ + c) * ohow;
        for (size_t oy = 0; oy < oh; ++oy) {
            for (size_t ox = 0; ox < ow; ++ox) {
                float sum = 0.0f;
                for (size_t ki = 0; ki < k_; ++ki) {
                    long iy = long(oy * stride_ + ki) - long(pad_);
                    if (iy < 0 || iy >= long(h))
                        continue;
                    for (size_t kj = 0; kj < k_; ++kj) {
                        long ix = long(ox * stride_ + kj) - long(pad_);
                        if (ix < 0 || ix >= long(w))
                            continue;
                        sum += ker[ki * k_ + kj] *
                               img[size_t(iy) * w + size_t(ix)];
                    }
                }
                out[oy * ow + ox] = sum;
            }
        }
    }
}

Tensor
DwConv2d::backward(const Tensor& gy)
{
    size_t n = inShape_[0], h = inShape_[2], w = inShape_[3];
    size_t oh = convOut(h, k_, stride_, pad_);
    size_t ow = convOut(w, k_, stride_, pad_);
    Tensor gx(inShape_);

    // Batch-chunked weight gradient: every chunk accumulates its own
    // kernel-gradient partial in the serial image order, then the
    // partials collapse through the fixed reduction tree — identical
    // sums at any thread count. gx rows are disjoint per image, so
    // they go straight to the output.
    size_t wLen = w_.grad.size();
    std::vector<size_t> bounds =
        deterministicBatchChunks(n, 1, kLayerMaxGradChunks);
    size_t nc = bounds.size() - 1;
    std::vector<float> gkBuf(nc * wLen, 0.0f);
    std::vector<float*> gkP(nc);
    for (size_t t = 0; t < nc; ++t)
        gkP[t] = gkBuf.data() + t * wLen;

    #pragma omp parallel for schedule(static) if (!inOmpParallel())
    for (long t = 0; t < long(nc); ++t) {
        float* gkAll = gkP[size_t(t)];
        for (size_t i = bounds[size_t(t)];
             i < bounds[size_t(t) + 1]; ++i) {
            for (size_t c = 0; c < ch_; ++c) {
                const float* img = xq_.data() + (i * ch_ + c) * h * w;
                const float* g = gy.data() + (i * ch_ + c) * oh * ow;
                const float* ker = w_.w.data() + c * k_ * k_;
                float* gk = gkAll + c * k_ * k_;
                float* gi = gx.data() + (i * ch_ + c) * h * w;
                for (size_t oy = 0; oy < oh; ++oy) {
                    for (size_t ox = 0; ox < ow; ++ox) {
                        float gv = g[oy * ow + ox];
                        if (gv == 0.0f)
                            continue;
                        for (size_t ki = 0; ki < k_; ++ki) {
                            long iy =
                                long(oy * stride_ + ki) - long(pad_);
                            if (iy < 0 || iy >= long(h))
                                continue;
                            for (size_t kj = 0; kj < k_; ++kj) {
                                long ix = long(ox * stride_ + kj) -
                                          long(pad_);
                                if (ix < 0 || ix >= long(w))
                                    continue;
                                size_t ii =
                                    size_t(iy) * w + size_t(ix);
                                gk[ki * k_ + kj] += gv * img[ii];
                                gi[ii] += gv * ker[ki * k_ + kj];
                            }
                        }
                    }
                }
            }
        }
    }
    treeReduceAcc(gkP.data(), nc, wLen, w_.grad.data());
    if (actq_.enabled())
        actq_.backwardSte(xPre_.span(), gx.span());
    return gx;
}

// ----------------------------------------------------------- BatchNorm2d

BatchNorm2d::BatchNorm2d(size_t channels, double momentum, double eps)
    : ch_(channels), momentum_(momentum), eps_(eps),
      gamma_("bn.gamma", Tensor::full({channels}, 1.0f), 0, 0, false),
      beta_("bn.beta", Tensor::zeros({channels}), 0, 0, false),
      runMean_(Tensor::zeros({channels})),
      runVar_(Tensor::full({channels}, 1.0f))
{
}

void
BatchNorm2d::ownParams(std::vector<Param*>& out)
{
    out.push_back(&gamma_);
    out.push_back(&beta_);
}

void
BatchNorm2d::restoreRunningStats(std::span<const float> mean,
                                 std::span<const float> var)
{
    MIXQ_ASSERT(mean.size() == ch_ && var.size() == ch_,
                "BatchNorm2d: running-stat size mismatch");
    std::memcpy(runMean_.data(), mean.data(), ch_ * sizeof(float));
    std::memcpy(runVar_.data(), var.data(), ch_ * sizeof(float));
}

Tensor
BatchNorm2d::forward(const Tensor& x, bool train)
{
    MIXQ_ASSERT(x.ndim() == 4 && x.dim(1) == ch_, "BatchNorm2d shape");
    if (foldedEval_) {
        MIXQ_ASSERT(!train, "BatchNorm2d: training forward while "
                            "folded for eval (serve/bn_fold.hh)");
        return x;
    }
    inShape_ = x.shape();
    size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
    size_t plane = h * w;
    size_t count = n * plane;

    Tensor y(x.shape());
    if (train) {
        xhat_ = Tensor(x.shape());
        invStd_ = Tensor({ch_});
    }

    // Per-channel statistics: two chunk-parallel passes over the
    // batch (sum, then squared deviation about the mean — same
    // two-pass formula as the serial implementation) with the chunk
    // partials tree-merged, so the statistics are bit-identical
    // across OMP_NUM_THREADS.
    std::vector<double> mean(ch_), var(ch_);
    if (train) {
        std::array<std::vector<double>, 1> sum;
        bnChunkedReduce<1>(
            n, ch_, sum, [&](size_t i, size_t c, double* const* acc) {
                const float* p = x.data() + (i * ch_ + c) * plane;
                double s = *acc[0];
                for (size_t q = 0; q < plane; ++q)
                    s += p[q];
                *acc[0] = s;
            });
        for (size_t c = 0; c < ch_; ++c)
            mean[c] = sum[0][c] / double(count);

        std::array<std::vector<double>, 1> sqdev;
        bnChunkedReduce<1>(
            n, ch_, sqdev,
            [&](size_t i, size_t c, double* const* acc) {
                const float* p = x.data() + (i * ch_ + c) * plane;
                double m = mean[c];
                double s = *acc[0];
                for (size_t q = 0; q < plane; ++q) {
                    double d = p[q] - m;
                    s += d * d;
                }
                *acc[0] = s;
            });
        for (size_t c = 0; c < ch_; ++c) {
            var[c] = sqdev[0][c] / double(count);
            runMean_[c] = float((1.0 - momentum_) * runMean_[c] +
                                momentum_ * mean[c]);
            runVar_[c] = float((1.0 - momentum_) * runVar_[c] +
                               momentum_ * var[c]);
        }
    } else {
        for (size_t c = 0; c < ch_; ++c) {
            mean[c] = runMean_[c];
            var[c] = runVar_[c];
        }
    }

    // Normalize: purely elementwise, parallel over (item, channel)
    // planes — disjoint writes, no reduction, determinism is free.
    std::vector<float> istd(ch_);
    for (size_t c = 0; c < ch_; ++c) {
        istd[c] = float(1.0 / std::sqrt(var[c] + eps_));
        if (train)
            invStd_[c] = istd[c];
    }
    #pragma omp parallel for schedule(static)
    for (long ic = 0; ic < long(n * ch_); ++ic) {
        size_t c = size_t(ic) % ch_;
        float m = float(mean[c]);
        float is = istd[c];
        float g = gamma_.w[c], b = beta_.w[c];
        size_t base = size_t(ic) * plane;
        for (size_t q = 0; q < plane; ++q) {
            float xh = (x.data()[base + q] - m) * is;
            if (train)
                xhat_[base + q] = xh;
            y[base + q] = g * xh + b;
        }
    }
    return y;
}

void
BatchNorm2d::prepareServe(BnServeScratch& s)
{
    if (foldedEval_)
        return;
    // Stage the frozen eval affine exactly as forward(eval) stages it
    // per call: running stats widened to double, then the float
    // inverse-std — identical rounding chain, computed once.
    s.mean.resize(ch_);
    s.var.resize(ch_);
    s.istd.resize(ch_);
    for (size_t c = 0; c < ch_; ++c) {
        s.mean[c] = runMean_[c];
        s.var[c] = runVar_[c];
        s.istd[c] = float(1.0 / std::sqrt(s.var[c] + eps_));
    }
}

void
BatchNorm2d::forwardServe(const TensorView& x, const TensorView& y,
                          BnServeScratch& s) const
{
    MIXQ_ASSERT(x.ndim() == 4 && x.dim(1) == ch_,
                "BatchNorm2d: serve view shape");
    if (foldedEval_) {
        std::memcpy(y.data, x.data, x.size() * sizeof(float));
        return;
    }
    size_t n = x.dim(0), plane = x.dim(2) * x.dim(3);
    #pragma omp parallel for schedule(static)
    for (long ic = 0; ic < long(n * ch_); ++ic) {
        size_t c = size_t(ic) % ch_;
        float m = float(s.mean[c]);
        float is = s.istd[c];
        float g = gamma_.w[c], b = beta_.w[c];
        const float* xin = x.data + size_t(ic) * plane;
        float* yout = y.data + size_t(ic) * plane;
        for (size_t q = 0; q < plane; ++q) {
            float xh = (xin[q] - m) * is;
            yout[q] = g * xh + b;
        }
    }
}

Tensor
BatchNorm2d::backward(const Tensor& gy)
{
    size_t n = inShape_[0], h = inShape_[2], w = inShape_[3];
    size_t plane = h * w;
    double count = double(n * plane);
    Tensor gx(inShape_);

    // One chunk-parallel walk accumulates both reductions (sum of gy
    // and of gy * xhat per channel); tree-merged as in forward.
    std::array<std::vector<double>, 2> sums;
    bnChunkedReduce<2>(
        n, ch_, sums, [&](size_t i, size_t c, double* const* acc) {
            size_t base = (i * ch_ + c) * plane;
            double s0 = *acc[0];
            double s1 = *acc[1];
            for (size_t q = 0; q < plane; ++q) {
                double g = gy[base + q];
                s0 += g;
                s1 += g * double(xhat_[base + q]);
            }
            *acc[0] = s0;
            *acc[1] = s1;
        });

    std::vector<float> mean_gy(ch_), mean_gy_xh(ch_);
    for (size_t c = 0; c < ch_; ++c) {
        beta_.grad[c] += float(sums[0][c]);
        gamma_.grad[c] += float(sums[1][c]);
        mean_gy[c] = float(sums[0][c] / count);
        mean_gy_xh[c] = float(sums[1][c] / count);
    }

    #pragma omp parallel for schedule(static)
    for (long ic = 0; ic < long(n * ch_); ++ic) {
        size_t c = size_t(ic) % ch_;
        float g = gamma_.w[c];
        float istd = invStd_[c];
        float mg = mean_gy[c];
        float mgxh = mean_gy_xh[c];
        size_t base = size_t(ic) * plane;
        for (size_t q = 0; q < plane; ++q) {
            gx[base + q] =
                g * istd *
                (gy[base + q] - mg - xhat_[base + q] * mgxh);
        }
    }
    return gx;
}

// -------------------------------------------------------------- ReLU

Tensor
ReLU::forward(const Tensor& x, bool train)
{
    Tensor y = x;
    mask_.assign(x.size(), 0);
    float cap = float(cap_);
    for (size_t i = 0; i < y.size(); ++i) {
        bool pass = y[i] > 0.0f && (cap_ == 0.0 || y[i] < cap);
        mask_[i] = pass ? 1 : 0;
        if (y[i] < 0.0f)
            y[i] = 0.0f;
        else if (cap_ != 0.0 && y[i] > cap)
            y[i] = cap;
    }
    (void)train;
    return y;
}

void
ReLU::forwardServe(const TensorView& x, const TensorView& y) const
{
    float cap = float(cap_);
    size_t len = x.size();
    for (size_t i = 0; i < len; ++i) {
        float v = x.data[i];
        if (v < 0.0f)
            v = 0.0f;
        else if (cap_ != 0.0 && v > cap)
            v = cap;
        y.data[i] = v;
    }
}

Tensor
ReLU::backward(const Tensor& gy)
{
    MIXQ_ASSERT(gy.size() == mask_.size(), "ReLU grad size");
    Tensor gx = gy;
    for (size_t i = 0; i < gx.size(); ++i) {
        if (!mask_[i])
            gx[i] = 0.0f;
    }
    return gx;
}

// ----------------------------------------------------------- MaxPool2d

Tensor
MaxPool2d::forward(const Tensor& x, bool train)
{
    MIXQ_ASSERT(x.ndim() == 4, "MaxPool2d shape");
    inShape_ = x.shape();
    size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
    size_t oh = h / k_, ow = w / k_;
    Tensor y({n, c, oh, ow});
    argmax_.assign(n * c * oh * ow, 0);
    for (size_t i = 0; i < n * c; ++i) {
        const float* img = x.data() + i * h * w;
        float* out = y.data() + i * oh * ow;
        size_t* am = argmax_.data() + i * oh * ow;
        for (size_t oy = 0; oy < oh; ++oy) {
            for (size_t ox = 0; ox < ow; ++ox) {
                float best = -1e30f;
                size_t bi = 0;
                for (size_t ki = 0; ki < k_; ++ki) {
                    for (size_t kj = 0; kj < k_; ++kj) {
                        size_t idx =
                            (oy * k_ + ki) * w + (ox * k_ + kj);
                        if (img[idx] > best) {
                            best = img[idx];
                            bi = idx;
                        }
                    }
                }
                out[oy * ow + ox] = best;
                am[oy * ow + ox] = bi;
            }
        }
    }
    (void)train;
    return y;
}

void
MaxPool2d::forwardServe(const TensorView& x, const TensorView& y) const
{
    MIXQ_ASSERT(x.ndim() == 4, "MaxPool2d: serve view shape");
    size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
    size_t oh = h / k_, ow = w / k_;
    MIXQ_ASSERT(y.size() == n * c * oh * ow,
                "MaxPool2d: serve out shape");
    for (size_t i = 0; i < n * c; ++i) {
        const float* img = x.data + i * h * w;
        float* out = y.data + i * oh * ow;
        for (size_t oy = 0; oy < oh; ++oy) {
            for (size_t ox = 0; ox < ow; ++ox) {
                float best = -1e30f;
                for (size_t ki = 0; ki < k_; ++ki) {
                    for (size_t kj = 0; kj < k_; ++kj) {
                        size_t idx =
                            (oy * k_ + ki) * w + (ox * k_ + kj);
                        if (img[idx] > best)
                            best = img[idx];
                    }
                }
                out[oy * ow + ox] = best;
            }
        }
    }
}

Tensor
MaxPool2d::backward(const Tensor& gy)
{
    size_t n = inShape_[0], c = inShape_[1], h = inShape_[2],
           w = inShape_[3];
    size_t oh = h / k_, ow = w / k_;
    Tensor gx(inShape_);
    for (size_t i = 0; i < n * c; ++i) {
        const float* g = gy.data() + i * oh * ow;
        const size_t* am = argmax_.data() + i * oh * ow;
        float* gi = gx.data() + i * h * w;
        for (size_t p = 0; p < oh * ow; ++p)
            gi[am[p]] += g[p];
    }
    return gx;
}

// -------------------------------------------------------- GlobalAvgPool

Tensor
GlobalAvgPool::forward(const Tensor& x, bool train)
{
    MIXQ_ASSERT(x.ndim() == 4, "GlobalAvgPool shape");
    inShape_ = x.shape();
    size_t n = x.dim(0), c = x.dim(1), plane = x.dim(2) * x.dim(3);
    Tensor y({n, c});
    for (size_t i = 0; i < n * c; ++i) {
        const float* img = x.data() + i * plane;
        double s = 0.0;
        for (size_t p = 0; p < plane; ++p)
            s += img[p];
        y[i] = float(s / double(plane));
    }
    (void)train;
    return y;
}

void
GlobalAvgPool::forwardServe(const TensorView& x,
                            const TensorView& y) const
{
    MIXQ_ASSERT(x.ndim() == 4, "GlobalAvgPool: serve view shape");
    size_t n = x.dim(0), c = x.dim(1), plane = x.dim(2) * x.dim(3);
    MIXQ_ASSERT(y.size() == n * c, "GlobalAvgPool: serve out shape");
    for (size_t i = 0; i < n * c; ++i) {
        const float* img = x.data + i * plane;
        double s = 0.0;
        for (size_t p = 0; p < plane; ++p)
            s += img[p];
        y.data[i] = float(s / double(plane));
    }
}

Tensor
GlobalAvgPool::backward(const Tensor& gy)
{
    size_t plane = inShape_[2] * inShape_[3];
    Tensor gx(inShape_);
    for (size_t i = 0; i < gy.size(); ++i) {
        float g = gy[i] / float(plane);
        float* gi = gx.data() + i * plane;
        for (size_t p = 0; p < plane; ++p)
            gi[p] = g;
    }
    return gx;
}

// ------------------------------------------------------------- Flatten

Tensor
Flatten::forward(const Tensor& x, bool train)
{
    inShape_ = x.shape();
    Tensor y = x;
    y.reshape({x.dim(0), x.size() / x.dim(0)});
    (void)train;
    return y;
}

Tensor
Flatten::backward(const Tensor& gy)
{
    Tensor gx = gy;
    gx.reshape(inShape_);
    return gx;
}

// ---------------------------------------------------------- Sequential

Sequential&
Sequential::add(std::unique_ptr<Module> m)
{
    mods_.push_back(std::move(m));
    return *this;
}

Tensor
Sequential::forward(const Tensor& x, bool train)
{
    Tensor h = x;
    for (auto& m : mods_)
        h = m->forward(h, train);
    return h;
}

Tensor
Sequential::backward(const Tensor& gy)
{
    Tensor g = gy;
    for (size_t i = mods_.size(); i > 0; --i)
        g = mods_[i - 1]->backward(g);
    return g;
}

std::vector<Module*>
Sequential::children()
{
    std::vector<Module*> v;
    v.reserve(mods_.size());
    for (auto& m : mods_)
        v.push_back(m.get());
    return v;
}

} // namespace mixq
