/**
 * @file
 * Recurrent layers with manual BPTT: LSTM and GRU cells unrolled over
 * [T, N, F] sequence tensors, and an Embedding lookup. The gate
 * weight matrices are the quantization targets of the paper's RNN
 * experiments (Table VI); their rows (gate units) are what MSQ
 * partitions. Hidden/input activations are fake-quantized with a
 * symmetric signed range because tanh outputs are in [-1, 1].
 *
 * The gate weight matrices are packed once per sequence into
 * PackedMat plans (nn/gemm_backend.hh) and reused across all T
 * timesteps of forward and backward — the host-side mirror of the
 * paper's weight-stationary buffers, and the difference between
 * packing wx/wh twice per sequence and 2T times.
 *
 * Batch-parallel training path: the timestep recurrence serializes T
 * but not the batch — each sequence evolves independently — so
 * forward and backward split the batch into fixed-size chunks
 * (deterministicBatchChunks) and run the full timestep loop per chunk
 * under OpenMP, every worker streaming activations past the same
 * shared read-only plans. Each backward chunk accumulates private
 * weight-gradient partials that are merged by the fixed-order tree
 * reduction (treeReduceAcc), so gradients are bit-identical for any
 * OMP_NUM_THREADS. See docs/ARCHITECTURE.md "Threading model".
 */

#ifndef MIXQ_NN_RNN_HH
#define MIXQ_NN_RNN_HH

#include <vector>

#include "infer/qpack.hh"
#include "nn/gemm_backend.hh"
#include "nn/module.hh"
#include "quant/act_quant.hh"
#include "quant/quantizer.hh"

namespace mixq {

class Rng;

/**
 * Upper bound on batch chunks per RNN layer pass. Caps the memory
 * spent on per-chunk weight-gradient partials (each chunk holds a
 * private copy of the gate-weight gradients until the tree merge).
 */
constexpr size_t kRnnMaxBatchChunks = 16;

/**
 * Per-replica scratch of the plan-executed LSTM/GRU forwards
 * (serve/executor.hh). prepareServe() sizes one Slot per possible
 * batch chunk at the plan's maximum batch, precomputes the per-row
 * rescale factors and the chunk bounds for every batch size up to the
 * maximum, so forwardServe() touches the heap exactly never: the
 * chunk partition a live batch uses is a table lookup, and each
 * chunk's code/accumulator/state buffers are pre-sized slices of its
 * Slot. The layer itself stays immutable (const forwardServe), so
 * replicas share the packed gate panels and own only this scratch.
 */
struct RnnServeScratch
{
    /** Buffers of one batch chunk (indexed by chunk position). */
    struct Slot
    {
        std::vector<int32_t> qx, qxT;   //!< input codes / transposed
        std::vector<int32_t> qh, qhT;   //!< hidden codes / transposed
        std::vector<int32_t> accX, accH; //!< gate accumulators
        std::vector<float> hprev;        //!< running hidden state
        std::vector<float> cprev;        //!< running cell state (LSTM)
    };

    std::vector<Slot> slots;
    std::vector<double> fx, fh; //!< per-gate-row rescale factors
    /** boundsByN[n] = chunk bounds for a batch of n sequences. */
    std::vector<std::vector<size_t>> boundsByN;

    size_t bytes() const
    {
        size_t b = (fx.size() + fh.size()) * sizeof(double);
        for (const Slot& s : slots)
            b += (s.qx.size() + s.qxT.size() + s.qh.size() +
                  s.qhT.size() + s.accX.size() + s.accH.size()) *
                     sizeof(int32_t) +
                 (s.hprev.size() + s.cprev.size()) * sizeof(float);
        for (const auto& v : boundsByN)
            b += v.size() * sizeof(size_t);
        return b;
    }
};

/**
 * Toggle the batch-parallel LSTM/GRU training path (default on).
 * Off runs the single-sweep path: one timestep loop over the whole
 * batch, gradients accumulated straight into Param::grad. With
 * activation quantization disabled the two paths differ only in
 * float summation order (per-chunk partials + tree merge vs one
 * running sum), i.e. to rounding. With it enabled they also differ
 * in calibration cadence: the serial path updates the hidden-state
 * EMA clip range every timestep (and starts quantizing mid-sequence
 * on the very first call), while the parallel path quantizes the
 * whole sequence against the alpha frozen at sequence start and
 * replays the EMA afterwards — up to a full quantization step of
 * divergence, by design. Each path is individually
 * bit-deterministic across thread counts. Not thread-safe against
 * concurrent forward/backward calls — bench/test setup only.
 */
void setRnnBatchParallel(bool on);

/** Current batch-parallel setting. */
bool rnnBatchParallel();

/**
 * Token embedding: ids [T*N] -> [T, N, E]. A Module so the lookup
 * table registers in the named state tree ("emb.w" in the task
 * models); the Tensor-based Module::forward accepts a [T, N] grid of
 * integer ids carried as floats (exact below 2^24) and is what the
 * tree-walking callers use — the id-vector overload stays the primary
 * training API.
 */
class Embedding : public Module
{
  public:
    Embedding(size_t vocab, size_t dim, Rng& rng);

    /** Look up a [T, N] id grid into a [T, N, E] tensor. */
    Tensor forward(const std::vector<int>& ids, size_t t, size_t n);

    /** Module entry point: @p x is a [T, N] float grid of ids. */
    Tensor forward(const Tensor& x, bool train) override;

    /** Scatter-add gradient for the last forward; returns {} (the
        lookup has no input gradient). */
    Tensor backward(const Tensor& gy) override;

    void ownParams(std::vector<Param*>& out) override
    {
        out.push_back(&w_);
    }
    size_t dim() const { return dim_; }

    /** Plan-executed eval lookup: x is a [T, N] float id grid, y a
        [T, N, E] view; allocation-free and const (replica-shared). */
    void forwardServe(const TensorView& x, const TensorView& y) const;

  private:
    size_t vocab_, dim_;
    Param w_;
    std::vector<int> ids_;
    size_t t_ = 0, n_ = 0;
};

/** Unrolled LSTM layer, gate order (i, f, g, o). */
class Lstm : public Module
{
  public:
    Lstm(size_t input, size_t hidden, Rng& rng);

    /** x is [T, N, I]; returns hidden states [T, N, H]. */
    Tensor forward(const Tensor& x, bool train) override;

    /** gy is [T, N, H]; returns [T, N, I]. */
    Tensor backward(const Tensor& gy) override;

    void ownParams(std::vector<Param*>& out) override;
    void configureOwnActQuant(int bits, bool enable) override;

    size_t hidden() const { return h_; }

    /**
     * Route eval-time forwards onto the integer shift-add backend:
     * both gate matrices are packed per their projection records and
     * every timestep runs quantize -> int accumulate -> rescale for
     * the x and h paths. Training forwards are unaffected.
     */
    void enableIntInference(const MatrixQuantResult& projWx,
                            const MatrixQuantResult& projWh,
                            int wbits);
    void disableIntInference() { intBackend_ = false; }
    bool intInferenceEnabled() const { return intBackend_; }
    ActFakeQuant& inputQuant() { return axq_; }
    ActFakeQuant& hiddenQuant() { return ahq_; }
    Param& wxParam() { return wx_; }
    Param& whParam() { return wh_; }
    const PackedQMat& packedQWx() const { return wxQ_; }
    const PackedQMat& packedQWh() const { return whQ_; }

    /** Adopt deploy-artifact gate panels; see
        Linear::adoptDeployedWeights. */
    void adoptDeployedWeights(PackedQMat wx, PackedQMat wh, int wbits);

    /**
     * Pack the gate panels and size @p s for sequences of up to
     * @p maxN batch rows. Panics unless the int backend is active:
     * the float train-path forward mutates member caches per call
     * and cannot run replica-shared. Orchestrating thread only.
     */
    void prepareServe(RnnServeScratch& s, size_t maxN);

    /**
     * Plan-executed eval forward: x [T, n, I] -> y [T, n, H] with
     * n <= the prepared maximum, allocating nothing — bit-identical
     * to forward(x, false) on the int backend. The layer is
     * immutable here; all mutable state is in @p s.
     */
    void forwardServe(const TensorView& x, const TensorView& y,
                      RnnServeScratch& s) const;

  private:
    Tensor intForward(const Tensor& x);

    /**
     * Full timestep loop (forward) for batch rows [b0, b1). With
     * @p frozenQuant the hidden-state quantizer applies its current
     * clip range without observing (the const path parallel workers
     * share); the orchestrator replays calibration afterwards.
     */
    void forwardSlice(size_t b0, size_t b1, Tensor& hOut,
                      bool frozenQuant);

    /**
     * Full reverse timestep loop for batch rows [b0, b1),
     * accumulating weight/bias gradients into the caller's buffers
     * (Param::grad on the serial path, a private per-chunk partial
     * on the parallel path) and input gradients into @p gx.
     */
    void backwardSlice(size_t b0, size_t b1, const Tensor& gy,
                       Tensor& gx, float* gwx, float* gwh, float* gb);

    size_t i_, h_;
    Param wx_;   //!< [4H, I]
    Param wh_;   //!< [4H, H]
    Param b_;    //!< [4H]
    ActFakeQuant axq_, ahq_;
    PackedMat wxPlanFwd_, whPlanFwd_; //!< packed Wx^T / Wh^T
    PackedMat wxPlanBwd_, whPlanBwd_; //!< packed Wx / Wh

    // Caches (train forward).
    size_t t_ = 0, n_ = 0;
    Tensor xq_, xPre_;   //!< quantized / raw input
    Tensor hq_;          //!< quantized h_{t-1} per step [T, N, H]
    Tensor hPre_;        //!< raw h_{t-1} per step
    Tensor gates_;       //!< post-activation (i,f,g,o) [T, N, 4H]
    Tensor c_;           //!< cell states [T, N, H]
    Tensor tanhc_;       //!< tanh(c_t)

    bool intBackend_ = false;
    int qBits_ = 0;
    MatrixQuantResult qProjWx_, qProjWh_;
    PackedQMat wxQ_, whQ_; //!< int backend gate-weight panels
};

/** Unrolled GRU layer, gate order (z, r, n); bias applied on the
 *  input path (the "v3" GRU variant: n = tanh(Wn x + bn + r .* Un h)).
 */
class Gru : public Module
{
  public:
    Gru(size_t input, size_t hidden, Rng& rng);

    Tensor forward(const Tensor& x, bool train) override;
    Tensor backward(const Tensor& gy) override;
    void ownParams(std::vector<Param*>& out) override;
    void configureOwnActQuant(int bits, bool enable) override;

    size_t hidden() const { return h_; }

    /** Int-backend switch; see Lstm::enableIntInference. */
    void enableIntInference(const MatrixQuantResult& projWx,
                            const MatrixQuantResult& projWh,
                            int wbits);
    void disableIntInference() { intBackend_ = false; }
    bool intInferenceEnabled() const { return intBackend_; }
    ActFakeQuant& inputQuant() { return axq_; }
    ActFakeQuant& hiddenQuant() { return ahq_; }
    Param& wxParam() { return wx_; }
    Param& whParam() { return wh_; }
    const PackedQMat& packedQWx() const { return wxQ_; }
    const PackedQMat& packedQWh() const { return whQ_; }

    /** Adopt deploy-artifact gate panels; see
        Linear::adoptDeployedWeights. */
    void adoptDeployedWeights(PackedQMat wx, PackedQMat wh, int wbits);

    /** Pack + size scratch for serve batches up to @p maxN; see
        Lstm::prepareServe. */
    void prepareServe(RnnServeScratch& s, size_t maxN);

    /** Plan-executed eval forward x [T, n, I] -> y [T, n, H]; see
        Lstm::forwardServe. */
    void forwardServe(const TensorView& x, const TensorView& y,
                      RnnServeScratch& s) const;

  private:
    Tensor intForward(const Tensor& x);

    /** Forward timestep loop for batch rows [b0, b1) (see Lstm). */
    void forwardSlice(size_t b0, size_t b1, bool frozenQuant);

    /** Reverse timestep loop for batch rows [b0, b1) (see Lstm). */
    void backwardSlice(size_t b0, size_t b1, const Tensor& gy,
                       Tensor& gx, float* gwx, float* gwh, float* gb);

    size_t i_, h_;
    Param wx_;   //!< [3H, I]
    Param wh_;   //!< [3H, H]
    Param b_;    //!< [3H]
    ActFakeQuant axq_, ahq_;
    PackedMat wxPlanFwd_, whPlanFwd_; //!< packed Wx^T / Wh^T
    PackedMat wxPlanBwd_, whPlanBwd_; //!< packed Wx / Wh

    size_t t_ = 0, n_ = 0;
    Tensor xq_, xPre_;
    Tensor hq_, hPre_;
    Tensor gates_;   //!< post-activation (z, r, n~) [T, N, 3H]
    Tensor ahn_;     //!< cached Un * h term [T, N, H]
    Tensor hOut_;    //!< produced hidden states [T, N, H]

    bool intBackend_ = false;
    int qBits_ = 0;
    MatrixQuantResult qProjWx_, qProjWh_;
    PackedQMat wxQ_, whQ_;
};

} // namespace mixq

#endif // MIXQ_NN_RNN_HH
