#include "nn/module.hh"

#include <string>

#include "util/logging.hh"

namespace mixq {

Param::Param(std::string name, Tensor init, size_t q_rows,
             size_t q_cols, bool decay)
    : name(std::move(name)), w(std::move(init)),
      grad(Tensor::zeros(w.shape())), qRows(q_rows), qCols(q_cols),
      decay(decay)
{
}

void
Param::zeroGrad()
{
    grad.fill(0.0f);
}

void
Module::ownParams(std::vector<Param*>&)
{
}

void
Module::configureOwnActQuant(int, bool)
{
}

void
Module::setActQuant(int bits, bool enable)
{
    configureOwnActQuant(bits, enable);
    for (Module* c : children())
        c->setActQuant(bits, enable);
}

std::vector<Param*>
Module::params()
{
    std::vector<Param*> out;
    collectParams(out);
    return out;
}

void
Module::collectParams(std::vector<Param*>& out)
{
    ownParams(out);
    for (Module* c : children())
        c->collectParams(out);
}

std::vector<NamedChild>
Module::namedChildren()
{
    std::vector<NamedChild> out;
    size_t i = 0;
    for (Module* c : children())
        out.push_back({std::to_string(i++), c});
    return out;
}

size_t
numParams(const std::vector<Param*>& ps)
{
    size_t n = 0;
    for (const Param* p : ps)
        n += p->w.size();
    return n;
}

std::string
paramLeafName(const Param& p)
{
    size_t dot = p.name.rfind('.');
    std::string leaf =
        dot == std::string::npos ? p.name : p.name.substr(dot + 1);
    MIXQ_ASSERT(!leaf.empty(), "parameter has no leaf name");
    return leaf;
}

namespace {

void
collectNamed(Module& m, const std::string& prefix,
             std::vector<NamedParam>& out)
{
    std::vector<Param*> own;
    m.ownParams(own);
    size_t first = out.size();
    for (Param* p : own) {
        std::string leaf = paramLeafName(*p);
        for (size_t i = first; i < out.size(); ++i)
            MIXQ_ASSERT(out[i].path != prefix + leaf,
                        "duplicate parameter leaf name in one module");
        out.push_back({prefix + leaf, p});
    }
    for (const NamedChild& c : m.namedChildren())
        collectNamed(*c.mod, prefix + c.name + ".", out);
}

} // namespace

std::vector<NamedParam>
namedParams(Module& root)
{
    std::vector<NamedParam> out;
    collectNamed(root, "", out);
    return out;
}

Param*
findParam(Module& root, const std::string& path)
{
    for (NamedParam& np : namedParams(root))
        if (np.path == path)
            return np.p;
    return nullptr;
}

void
forEachNamedModule(
    Module& root,
    const std::function<void(const std::string&, Module&)>& fn)
{
    struct Rec
    {
        static void walk(
            Module& m, const std::string& path,
            const std::function<void(const std::string&, Module&)>& f)
        {
            f(path, m);
            for (const NamedChild& c : m.namedChildren())
                walk(*c.mod,
                     path.empty() ? c.name : path + "." + c.name, f);
        }
    };
    Rec::walk(root, "", fn);
}

} // namespace mixq
