#include "nn/module.hh"

namespace mixq {

Param::Param(std::string name, Tensor init, size_t q_rows,
             size_t q_cols, bool decay)
    : name(std::move(name)), w(std::move(init)),
      grad(Tensor::zeros(w.shape())), qRows(q_rows), qCols(q_cols),
      decay(decay)
{
}

void
Param::zeroGrad()
{
    grad.fill(0.0f);
}

void
Module::ownParams(std::vector<Param*>&)
{
}

void
Module::configureOwnActQuant(int, bool)
{
}

void
Module::setActQuant(int bits, bool enable)
{
    configureOwnActQuant(bits, enable);
    for (Module* c : children())
        c->setActQuant(bits, enable);
}

std::vector<Param*>
Module::params()
{
    std::vector<Param*> out;
    collectParams(out);
    return out;
}

void
Module::collectParams(std::vector<Param*>& out)
{
    ownParams(out);
    for (Module* c : children())
        c->collectParams(out);
}

size_t
numParams(const std::vector<Param*>& ps)
{
    size_t n = 0;
    for (const Param* p : ps)
        n += p->w.size();
    return n;
}

} // namespace mixq
