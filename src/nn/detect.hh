/**
 * @file
 * TinyDet: a single-scale, single-anchor convolutional detector used
 * as the YOLO-v3 stand-in for Table V. The head predicts, per grid
 * cell, (tx, ty, tw, th, conf, class logits); the loss combines box
 * regression (responsible cells), objectness BCE and class CE. The
 * decode path emits corner-format DetBox records for the mAP
 * evaluator.
 */

#ifndef MIXQ_NN_DETECT_HH
#define MIXQ_NN_DETECT_HH

#include <memory>
#include <vector>

#include "metrics/map.hh"
#include "nn/layers.hh"

namespace mixq {

/** Ground truth in center format, normalized to [0, 1]. */
struct ObjBox
{
    float cx, cy, w, h;
    int cls;
};

/** Detection head/loss configuration. */
struct DetectConfig
{
    size_t grid = 4;          //!< S x S output cells
    size_t classes = 3;
    float lambdaNoobj = 0.5f; //!< weight of no-object confidence loss
    float lambdaBox = 5.0f;   //!< weight of box regression loss
};

/** Channels of the head output per cell: 5 + classes. */
size_t detectChannels(const DetectConfig& cfg);

/**
 * Detection loss over a batch. @p out is the raw head output
 * [N, 5+C, S, S]; @p gts has one box list per image. Fills @p dout
 * with the gradient and returns the mean loss.
 */
double detectionLoss(const Tensor& out,
                     const std::vector<std::vector<ObjBox>>& gts,
                     Tensor& dout, const DetectConfig& cfg);

/**
 * Decode one image's raw head output (index @p n of the batch) into
 * corner-format detections above the confidence threshold, with
 * class-wise non-maximum suppression.
 */
std::vector<DetBox> decodeDetections(const Tensor& out, size_t n,
                                     const DetectConfig& cfg,
                                     float conf_thresh = 0.3f,
                                     float nms_iou = 0.45f);

/** Greedy NMS on a detection list (class-aware). */
std::vector<DetBox> nms(std::vector<DetBox> dets, float iou_thresh);

/** Convert an ObjBox to a corner-format GtBox for the evaluator. */
GtBox toGtBox(const ObjBox& b, int img);

/** Backbone + head builder; output is [N, 5+C, S, S]. */
std::unique_ptr<Sequential>
makeTinyDet(const DetectConfig& cfg, size_t img_size, Rng& rng,
            size_t base = 8);

} // namespace mixq

#endif // MIXQ_NN_DETECT_HH
