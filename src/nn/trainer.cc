#include "nn/trainer.hh"

#include <algorithm>
#include <cstring>
#include <memory>
#include <numeric>
#include <sstream>

#include "nn/loss.hh"
#include "nn/optim.hh"
#include "nn/rnn.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace mixq {

namespace {

/** Gather batch images/labels by shuffled index range. Row copies are
    disjoint, so the parallel gather is trivially deterministic; tiny
    batches stay serial to skip the region overhead. */
void
gatherBatch(const LabeledImages& data, const std::vector<size_t>& order,
            size_t b0, size_t b1, Tensor& x, std::vector<int>& y)
{
    size_t n = b1 - b0;
    std::vector<size_t> shape = data.images.shape();
    size_t item = data.images.size() / shape[0];
    shape[0] = n;
    x = Tensor(shape);
    y.resize(n);
    #pragma omp parallel for schedule(static) \
        if (n > 1 && n * item > 16384)
    for (long i = 0; i < long(n); ++i) {
        size_t src = order[b0 + size_t(i)];
        std::memcpy(x.data() + size_t(i) * item,
                    data.images.data() + src * item,
                    item * sizeof(float));
        y[size_t(i)] = data.labels[src];
    }
}

/**
 * The one quantize-in-place helper behind QatContext::finalize and
 * hardQuantize: hard-project the parameter's weights onto its
 * constraint set and bump the plan-invalidation version. Keeping both
 * callers on this helper means the projection call and the
 * noteUpdated() bump (the packed-GEMM staleness contract) cannot
 * drift apart.
 */
MatrixQuantResult
quantizeParamInPlace(Param& p, const QConfig& cfg)
{
    MatrixQuantResult res = quantizeMatrix(p.w.data(), p.w.data(),
                                           p.qRows, p.qCols, cfg);
    p.noteUpdated();
    return res;
}

} // namespace

AdmmState::ProjectFn
QatContext::makeProj(Entry* e)
{
    size_t rows = e->p->qRows;
    size_t cols = e->p->qCols;
    const QConfig* cfg = &cfg_;
    return [e, rows, cols, cfg](std::span<const float> in,
                                std::span<float> out) {
        MIXQ_ASSERT(in.size() == rows * cols && out.size() == in.size(),
                    "projection size mismatch");
        e->proj = quantizeMatrix(in.data(), out.data(), rows, cols,
                                 *cfg);
    };
}

AdmmState::BiasedProjectFn
QatContext::makeBiasedProj(Entry* e)
{
    size_t rows = e->p->qRows;
    size_t cols = e->p->qCols;
    const QConfig* cfg = &cfg_;
    return [e, rows, cols, cfg](std::span<const float> w,
                                std::span<float> u,
                                std::span<float> z) {
        MIXQ_ASSERT(w.size() == rows * cols && u.size() == w.size() &&
                        z.size() == w.size(),
                    "projection size mismatch");
        e->proj = quantizeMatrixBiased(w.data(), u.data(), z.data(),
                                       rows, cols, *cfg);
    };
}

void
QatContext::registerEntries(const std::vector<Param*>& params)
{
    MIXQ_ASSERT(entries_.empty(), "QatContext: already attached");
    for (Param* p : params) {
        if (!p->quantizable())
            continue;
        MIXQ_ASSERT(p->qRows * p->qCols == p->w.size(),
                    "quantizable param has inconsistent matrix view");
        entries_.push_back(Entry{p, AdmmState{}, MatrixQuantResult{}});
    }
    MIXQ_ASSERT(!entries_.empty(), "QatContext: nothing to quantize");
    // Warm the LevelSet cache for every scheme this run can touch
    // before the first projection: the one-time boundary bisection
    // then never runs inside an epochUpdate/finalize hot path.
    if (cfg_.scheme == QuantScheme::Mixed) {
        levelSet(QuantScheme::Fixed, cfg_.bits);
        levelSet(QuantScheme::Sp2, cfg_.bits);
    } else {
        levelSet(cfg_.scheme, cfg_.bits);
    }
}

void
QatContext::attach(const std::vector<Param*>& params)
{
    registerEntries(params);
    for (Entry& e : entries_)
        e.admm.init(e.p->w.span(), makeProj(&e), cfg_.rho);
}

void
QatContext::attachForRestore(const std::vector<Param*>& params)
{
    registerEntries(params);
}

void
QatContext::restoreEntryState(Param* p, std::span<const float> z,
                              std::span<const float> u,
                              MatrixQuantResult proj)
{
    for (Entry& e : entries_) {
        if (e.p != p)
            continue;
        MIXQ_ASSERT(z.size() == p->w.size() && u.size() == z.size(),
                    "QatContext: restored ADMM state size mismatch");
        e.admm.restore(z, u, cfg_.rho);
        e.proj = std::move(proj);
        return;
    }
    panic("QatContext: restoring state for an unregistered parameter");
}

void
QatContext::epochUpdate()
{
    for (Entry& e : entries_)
        e.admm.epochUpdate(e.p->w.span(), makeBiasedProj(&e));
}

double
QatContext::addPenaltyGradsAndPenalty()
{
    double s = 0.0;
    for (Entry& e : entries_)
        s += e.admm.addPenaltyGradAndPenalty(e.p->w.span(),
                                             e.p->grad.span());
    return s;
}

void
QatContext::addPenaltyGrads()
{
    for (Entry& e : entries_)
        e.admm.addPenaltyGrad(e.p->w.span(), e.p->grad.span());
}

double
QatContext::penaltyTotal() const
{
    double s = 0.0;
    for (const Entry& e : entries_)
        s += e.admm.penalty(e.p->w.span());
    return s;
}

void
QatContext::finalize()
{
    for (Entry& e : entries_)
        e.proj = quantizeParamInPlace(*e.p, cfg_);
    finalized_ = true;
}

void
trainClassifier(Module& model, const LabeledImages& train,
                const TrainCfg& cfg, QatContext* qat, Sgd* opt)
{
    MIXQ_ASSERT(train.size() > 0, "empty training set");
    setRnnBatchParallel(cfg.rnnBatchParallel);
    if (qat) {
        model.setActQuant(qat->config().quantizeActivations
                              ? qat->config().actBits : 8,
                          qat->config().quantizeActivations);
    }

    // A caller-owned optimizer carries momentum across resume
    // boundaries; otherwise the run owns a fresh one.
    std::unique_ptr<Sgd> owned;
    if (!opt) {
        owned = std::make_unique<Sgd>(model.params(), cfg.lr,
                                      cfg.momentum, cfg.weightDecay);
        opt = owned.get();
    }
    Sgd& sgd = *opt;
    Rng rng(cfg.seed);
    std::vector<size_t> order(train.size());
    std::iota(order.begin(), order.end(), 0);

    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        double lr = cfg.cosine
            ? cosineLr(cfg.lr, epoch, cfg.epochs)
            : stepLr(cfg.lr, epoch, cfg.stepEvery);
        sgd.setLr(lr);
        if (qat)
            qat->epochUpdate();
        rng.shuffle(order);

        double loss_sum = 0.0;
        size_t batches = 0;
        for (size_t b0 = 0; b0 < train.size(); b0 += cfg.batch) {
            size_t b1 = std::min(b0 + cfg.batch, train.size());
            Tensor x;
            std::vector<int> y;
            gatherBatch(train, order, b0, b1, x, y);

            sgd.zeroGrad();
            Tensor logits = model.forward(x, true);
            Tensor dlogits;
            double loss = softmaxCrossEntropy(logits, y, dlogits);
            model.backward(dlogits);
            if (qat)
                loss += qat->addPenaltyGradsAndPenalty();
            sgd.step();
            loss_sum += loss;
            ++batches;
        }
        double mean_loss =
            loss_sum / double(std::max<size_t>(batches, 1));
        if (cfg.epochLoss)
            cfg.epochLoss->push_back(mean_loss);
        if (cfg.verbose) {
            std::ostringstream oss;
            oss << "epoch " << epoch << " lr " << lr << " loss "
                << mean_loss;
            inform(oss.str());
        }
    }
    if (qat)
        qat->finalize();
}

namespace {

double
evalTopK(Module& model, const LabeledImages& data, size_t k,
         size_t batch)
{
    MIXQ_ASSERT(data.size() > 0 && k >= 1, "bad eval arguments");
    std::vector<size_t> order(data.size());
    std::iota(order.begin(), order.end(), 0);
    size_t correct = 0;
    for (size_t b0 = 0; b0 < data.size(); b0 += batch) {
        size_t b1 = std::min(b0 + batch, data.size());
        Tensor x;
        std::vector<int> y;
        gatherBatch(data, order, b0, b1, x, y);
        Tensor logits = model.forward(x, false);
        size_t c = logits.dim(1);
        for (size_t i = 0; i < y.size(); ++i) {
            const float* row = logits.data() + i * c;
            float truth = row[size_t(y[i])];
            size_t better = 0;
            for (size_t j = 0; j < c; ++j) {
                if (row[j] > truth)
                    ++better;
            }
            if (better < k)
                ++correct;
        }
    }
    return double(correct) / double(data.size());
}

} // namespace

double
evalClassifier(Module& model, const LabeledImages& data, size_t batch)
{
    return evalTopK(model, data, 1, batch);
}

double
evalClassifierTopK(Module& model, const LabeledImages& data, size_t k,
                   size_t batch)
{
    return evalTopK(model, data, k, batch);
}

std::vector<MatrixQuantResult>
hardQuantize(const std::vector<Param*>& params, const QConfig& cfg)
{
    std::vector<MatrixQuantResult> out;
    for (Param* p : params) {
        if (!p->quantizable())
            continue;
        out.push_back(quantizeParamInPlace(*p, cfg));
    }
    return out;
}

} // namespace mixq
