/**
 * @file
 * GEMM backend dispatch layer: naive reference kernels and
 * cache-blocked (MC/KC/NC tiled, MR x NR register-tiled) kernels
 * behind a runtime shape-based selector.
 *
 * The public entry points in gemm.hh (`gemm`, `gemmAcc`, `gemmBT`,
 * `gemmBTAcc`, `gemmATAcc`) keep their signatures and route through
 * this layer, so the float-compute consumers — nn/layers (conv and
 * linear, forward and backward) and nn/rnn (cell gates) — pick the
 * tuned path up transparently. The simulator's integer cores
 * (sim/gemm_core) model datapath semantics and deliberately stay
 * off this dispatcher.
 *
 * Dispatch rules (see chooseGemmKernel):
 *   - problems with m*n*k <= kGemmBlockThreshold run the naive
 *     kernel: packing overhead dominates below that size;
 *   - row-skinny problems (m < kGemmMR) run the naive kernel: with
 *     one or two output rows its row-broadcast saxpy wins, while a
 *     mostly-padded register tile wastes its FLOPs (column-skinny
 *     problems measure faster blocked, so n has no such rule);
 *   - everything else runs the blocked kernel.
 * `setGemmKernel` (or the MIXQ_GEMM_KERNEL environment variable,
 * read once at startup: "naive", "blocked", "auto") overrides the
 * heuristic globally, which the tests and benches use to pin a path.
 */

#ifndef MIXQ_NN_GEMM_BACKEND_HH
#define MIXQ_NN_GEMM_BACKEND_HH

#include <cstddef>

namespace mixq {

/** Which kernel family services a GEMM call. */
enum class GemmKernel {
    Auto,    ///< pick per call from the problem shape (default)
    Naive,   ///< seed triple-loop kernels, OpenMP over output rows
    Blocked, ///< packed cache-blocked kernels with register tiling
};

/** Register-tile rows of the blocked microkernel. */
constexpr size_t kGemmMR = 6;
/** Register-tile columns of the blocked microkernel. */
constexpr size_t kGemmNR = 16;
/** Problems at or below this m*n*k volume stay on the naive path. */
constexpr size_t kGemmBlockThreshold = 16384;

/**
 * Pick the kernel for an m x n x k problem under the rules above.
 * Only consulted when the forced kernel is GemmKernel::Auto.
 */
GemmKernel chooseGemmKernel(size_t m, size_t n, size_t k);

/**
 * Force every subsequent GEMM call onto one kernel family
 * (GemmKernel::Auto restores shape-based dispatch). Not thread-safe
 * against concurrent GEMM calls; intended for test/bench setup.
 */
void setGemmKernel(GemmKernel kernel);

/** Currently forced kernel (GemmKernel::Auto unless overridden). */
GemmKernel forcedGemmKernel();

/** Kernel that will actually service an m x n x k call right now. */
GemmKernel activeGemmKernel(size_t m, size_t n, size_t k);

// ------------------------------------------------------------------
// Naive reference kernels (the seed's triple loops, kept both as the
// small-problem fast path and as the ground truth the blocked
// kernels are tested against).
// ------------------------------------------------------------------

/** C[MxN] += A[MxK] * B[KxN], naive row-saxpy kernel. */
void gemmNaiveAcc(const float* a, const float* b, float* c,
                  size_t m, size_t n, size_t k);

/** C[MxN] += A[MxK] * B[NxK]^T, naive dot-product kernel. */
void gemmNaiveBTAcc(const float* a, const float* b, float* c,
                    size_t m, size_t n, size_t k);

/** C[MxN] += A[KxM]^T * B[KxN], naive row-saxpy kernel. */
void gemmNaiveATAcc(const float* a, const float* b, float* c,
                    size_t m, size_t n, size_t k);

// ------------------------------------------------------------------
// Cache-blocked kernels. All three share one driver that packs
// KC x NC panels of B and MC x KC blocks of A into contiguous,
// zero-padded buffers (the packing step absorbs either transpose),
// then runs an MR x NR register-tiled microkernel over the panels.
// ------------------------------------------------------------------

/** C[MxN] += A[MxK] * B[KxN], cache-blocked kernel. */
void gemmBlockedAcc(const float* a, const float* b, float* c,
                    size_t m, size_t n, size_t k);

/** C[MxN] += A[MxK] * B[NxK]^T, cache-blocked kernel. */
void gemmBlockedBTAcc(const float* a, const float* b, float* c,
                      size_t m, size_t n, size_t k);

/** C[MxN] += A[KxM]^T * B[KxN], cache-blocked kernel. */
void gemmBlockedATAcc(const float* a, const float* b, float* c,
                      size_t m, size_t n, size_t k);

} // namespace mixq

#endif // MIXQ_NN_GEMM_BACKEND_HH
