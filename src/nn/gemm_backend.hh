/**
 * @file
 * GEMM backend dispatch layer: naive reference kernels and
 * cache-blocked (MC/KC/NC tiled, MR x NR register-tiled) kernels
 * behind a runtime shape-based selector.
 *
 * The public entry points in gemm.hh (`gemm`, `gemmAcc`, `gemmBT`,
 * `gemmBTAcc`, `gemmATAcc`) keep their signatures and route through
 * this layer, so the float-compute consumers — nn/layers (conv and
 * linear, forward and backward) and nn/rnn (cell gates) — pick the
 * tuned path up transparently. The simulator's integer cores
 * (sim/gemm_core) model datapath semantics and deliberately stay
 * off this dispatcher.
 *
 * Dispatch rules (see chooseGemmKernel):
 *   - problems with m*n*k <= kGemmBlockThreshold run the naive
 *     kernel: packing overhead dominates below that size;
 *   - row-skinny problems (m < kGemmMR) run the naive kernel: with
 *     one or two output rows its row-broadcast saxpy wins, while a
 *     mostly-padded register tile wastes its FLOPs (column-skinny
 *     problems measure faster blocked, so n has no such rule);
 *   - everything else runs the blocked kernel.
 * `setGemmKernel` (or the MIXQ_GEMM_KERNEL environment variable,
 * read once at startup: "naive", "blocked", "auto") overrides the
 * heuristic globally, which the tests and benches use to pin a path.
 *
 * Pre-packed weight plans (PackedMat): the blocked kernels normally
 * repack both operands on every call, which wastes work when one
 * operand is a weight matrix reused across calls — every Linear/Conv
 * batch, and every timestep of an LSTM/GRU sequence. This mirrors
 * the paper's weight-stationary accelerator (Fig. 3), where
 * quantized weights are packed once into on-chip buffers and
 * activations stream past them. A PackedMat packs one operand of
 * C = op(A) * op(B) into the panel layout once (the pack absorbs
 * the transpose, exactly like the per-call path) and the
 * gemmPacked{A,B}[Acc] entry points reuse it.
 *
 * Plan lifecycle and invalidation contract:
 *   - the consumer (a layer) owns the PackedMat and calls
 *     ensureA()/ensureB() before use with the source pointer, the
 *     logical op() shape, and a version number;
 *   - ensure*() repacks only when the source pointer, shape,
 *     transpose flag, or version changed — otherwise it is O(1);
 *   - every code path that rewrites a Param's weights must bump
 *     Param::version via Param::noteUpdated() (optimizer steps,
 *     quantizer projections, test-side perturbation). A mutation
 *     without a bump leaves plans silently stale — that is the
 *     contract, enforced by the packed-vs-naive equivalence tests.
 *
 * The packed entry points use a *relaxed* dispatch
 * (activePackedGemmKernel): sub-threshold volumes are serviced by
 * the naive kernel reading the plan's source matrix directly (the
 * plan keeps the pointer), so small problems keep the row-saxpy fast
 * path — but the per-call skinny-m rule is dropped, because with the
 * pack already paid the padded microkernel beats the naive
 * scalar-reduction BT dot kernel by ~20x on skinny-m weight shapes
 * (m=4, n=1024, k=256). Packed results therefore match the *blocked*
 * kernel bit for bit wherever the packed dispatch is blocked, and
 * the naive kernel bit for bit below the volume threshold
 * (tests/gemm_test.cc pins this contract).
 */

#ifndef MIXQ_NN_GEMM_BACKEND_HH
#define MIXQ_NN_GEMM_BACKEND_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace mixq {

/**
 * True when the caller already executes inside an OpenMP parallel
 * region. The deterministic-parallel passes (quantizer fits, the
 * fused ADMM penalty walk, SGD blocks, the loss rows) use this as
 * their `if` clause so they never nest parallel regions — the chunk
 * specs stay fixed either way, only the execution goes serial.
 */
inline bool
inOmpParallel()
{
#ifdef _OPENMP
    return omp_in_parallel() != 0;
#else
    return false;
#endif
}

/** Which kernel family services a GEMM call. */
enum class GemmKernel {
    Auto,    ///< pick per call from the problem shape (default)
    Naive,   ///< seed triple-loop kernels, OpenMP over output rows
    Blocked, ///< packed cache-blocked kernels with register tiling
};

/** Register-tile rows of the blocked microkernel. */
constexpr size_t kGemmMR = 6;
/** Register-tile columns of the blocked microkernel. */
constexpr size_t kGemmNR = 16;
/** Problems at or below this m*n*k volume stay on the naive path. */
constexpr size_t kGemmBlockThreshold = 16384;

/**
 * Pick the kernel for an m x n x k problem under the rules above.
 * Only consulted when the forced kernel is GemmKernel::Auto.
 */
GemmKernel chooseGemmKernel(size_t m, size_t n, size_t k);

/**
 * Force every subsequent GEMM call onto one kernel family
 * (GemmKernel::Auto restores shape-based dispatch). Not thread-safe
 * against concurrent GEMM calls; intended for test/bench setup.
 */
void setGemmKernel(GemmKernel kernel);

/** Currently forced kernel (GemmKernel::Auto unless overridden). */
GemmKernel forcedGemmKernel();

/** Kernel that will actually service an m x n x k call right now. */
GemmKernel activeGemmKernel(size_t m, size_t n, size_t k);

/**
 * Kernel that services an m x n x k call through a *pre-packed* plan
 * (gemmPackedA/gemmPackedB). Pre-packed plans already paid the pack,
 * so the per-call skinny-m rule does not apply: the padded
 * microkernel beats the naive BT dot kernel by an order of magnitude
 * even at m < kGemmMR once packing is free. Only sub-threshold
 * volumes (and a forced kernel) fall back to naive.
 */
GemmKernel activePackedGemmKernel(size_t m, size_t n, size_t k);

// ------------------------------------------------------------------
// Naive reference kernels (the seed's triple loops, kept both as the
// small-problem fast path and as the ground truth the blocked
// kernels are tested against).
// ------------------------------------------------------------------

/** C[MxN] += A[MxK] * B[KxN], naive row-saxpy kernel. */
void gemmNaiveAcc(const float* a, const float* b, float* c,
                  size_t m, size_t n, size_t k);

/** C[MxN] += A[MxK] * B[NxK]^T, naive dot-product kernel. */
void gemmNaiveBTAcc(const float* a, const float* b, float* c,
                    size_t m, size_t n, size_t k);

/** C[MxN] += A[KxM]^T * B[KxN], naive row-saxpy kernel. */
void gemmNaiveATAcc(const float* a, const float* b, float* c,
                    size_t m, size_t n, size_t k);

// ------------------------------------------------------------------
// Cache-blocked kernels. All three share one driver that packs
// KC x NC panels of B and MC x KC blocks of A into contiguous,
// zero-padded buffers (the packing step absorbs either transpose),
// then runs an MR x NR register-tiled microkernel over the panels.
// ------------------------------------------------------------------

/** C[MxN] += A[MxK] * B[KxN], cache-blocked kernel. */
void gemmBlockedAcc(const float* a, const float* b, float* c,
                    size_t m, size_t n, size_t k);

/** C[MxN] += A[MxK] * B[NxK]^T, cache-blocked kernel. */
void gemmBlockedBTAcc(const float* a, const float* b, float* c,
                      size_t m, size_t n, size_t k);

/** C[MxN] += A[KxM]^T * B[KxN], cache-blocked kernel. */
void gemmBlockedATAcc(const float* a, const float* b, float* c,
                      size_t m, size_t n, size_t k);

// ------------------------------------------------------------------
// Pre-packed weight plans. A PackedMat holds one operand of
// C = op(A) * op(B) in the blocked kernels' panel layout, packed
// once and reused across calls (see the file comment for the
// lifecycle and invalidation contract).
// ------------------------------------------------------------------

class PackedMat;

/** C[MxN] += A[MxK] * packedB, A row-major, plan holds op(B) [KxN]. */
void gemmPackedBAcc(const float* a, const PackedMat& pb, float* c,
                    size_t m, size_t n, size_t k);

/** C[MxN] = A[MxK] * packedB (overwrite). */
void gemmPackedB(const float* a, const PackedMat& pb, float* c,
                 size_t m, size_t n, size_t k);

/** C[MxN] += packedA * B[KxN], B row-major, plan holds op(A) [MxK]. */
void gemmPackedAAcc(const PackedMat& pa, const float* b, float* c,
                    size_t m, size_t n, size_t k);

/** C[MxN] = packedA * B[KxN] (overwrite). */
void gemmPackedA(const PackedMat& pa, const float* b, float* c,
                 size_t m, size_t n, size_t k);

// ------------------------------------------------------------------
// Deterministic batch partitioning and tree-shaped gradient merge.
// The training layers parallelize over the batch dimension and give
// every worker chunk a private partial weight gradient. Both the
// chunk boundaries and the merge order are pure functions of the
// problem shape — never of the thread count — so the floating-point
// accumulation order, and therefore every gradient bit, is identical
// for any OMP_NUM_THREADS. tests/rnn_mt_test.cc pins that guarantee.
// ------------------------------------------------------------------

/**
 * Contiguous partition of @p rows batch rows for parallel workers:
 * returns chunk boundaries 0 = b[0] < b[1] < ... < b[count] = rows.
 * Every chunk has at least @p minRows rows — floor division plus
 * remainder spread, never a skinny tail, so per-chunk GEMMs with
 * minRows = kGemmMR all stay on the blocked/packed path (a sub-MR
 * tail would fall onto the naive BT dot kernel, whose scalar
 * reduction is an order of magnitude slower); the one exception is
 * rows < minRows, which yields a single chunk of all rows (and
 * rows == 0 the degenerate {0, 0}) — and there are at
 * most @p maxChunks chunks (bounding the memory spent on per-chunk
 * gradient partials). Depends only on the arguments — deliberately
 * not on omp_get_max_threads() — so the partition is reproducible
 * across thread counts.
 */
std::vector<size_t> deterministicBatchChunks(size_t rows,
                                             size_t minRows,
                                             size_t maxChunks);

/**
 * Pairwise tree reduction over @p count equally-sized partial
 * buffers of @p len floats: parts[i] += parts[i + s] for
 * s = 1, 2, 4, ... in a fixed stride-doubling order, leaving the
 * total in parts[0]. O(log count) merge depth, and the summation
 * tree is a function of count alone, so the result is bit-identical
 * no matter how many threads execute it. count == 0 is a no-op.
 */
void treeReduceParts(float* const* parts, size_t count, size_t len);

/**
 * treeReduceParts followed by dst[j] += parts[0][j] — the one-call
 * merge of per-chunk weight-gradient partials into a Param::grad.
 * Leaves parts[0] holding the tree total; count == 0 leaves dst
 * untouched.
 */
void treeReduceAcc(float* const* parts, size_t count, size_t len,
                   float* dst);

/**
 * In-place pairwise tree reduction over a span of scalar partials:
 * v[i] += v[i + s] for s = 1, 2, 4, ... (the treeReduceParts merge
 * shape applied to single values), returning the total left in v[0].
 * Used by the quantizer's fitAlpha to merge per-chunk num/den
 * accumulators in an order that depends only on the chunk count —
 * never on the thread count — so the fitted alpha is bit-identical
 * for any OMP_NUM_THREADS. Returns T{} for an empty span.
 */
template <typename T>
T
treeReduceValues(std::span<T> v)
{
    if (v.empty())
        return T{};
    for (size_t stride = 1; stride < v.size(); stride *= 2)
        for (size_t i = 0; i + stride < v.size(); i += 2 * stride)
            v[i] += v[i + stride];
    return v[0];
}

/**
 * One operand of a GEMM, packed into the blocked kernels' MR/NR
 * panel layout. Side::B plans hold op(B) [K x N] as KC x NC panels
 * of NR-wide slivers; Side::A plans hold op(A) [M x K] as KC-deep
 * blocks of MR-row panels. Packing absorbs the source transpose, so
 * one plan type serves the BT/AT weight views used by the layers.
 *
 * Not thread-safe to ensure*() concurrently; concurrent *reads*
 * (gemmPacked* from parallel workers) are safe. Call ensure*() from
 * the orchestrating thread before any parallel region.
 */
class PackedMat
{
  public:
    /** Which operand of C = op(A) * op(B) this plan packs. */
    enum class Side { A, B };

    PackedMat() = default;

    /**
     * Make the plan hold op(A) [m x k]; src is stored [m x k]
     * row-major, or [k x m] when trans is true. Repacks only when
     * src/shape/trans/version differ from the current pack.
     */
    void ensureA(const float* src, size_t m, size_t k, bool trans,
                 uint64_t version);

    /**
     * Make the plan hold op(B) [k x n]; src is stored [k x n]
     * row-major, or [n x k] when trans is true. Repacks only when
     * src/shape/trans/version differ from the current pack.
     */
    void ensureB(const float* src, size_t k, size_t n, bool trans,
                 uint64_t version);

    bool packed() const { return packed_; }
    Side side() const { return side_; }
    /** Rows of the logical op() matrix (m for A plans, k for B). */
    size_t rows() const { return rows_; }
    /** Columns of the logical op() matrix (k for A plans, n for B). */
    size_t cols() const { return cols_; }
    /** Times the source was actually packed (reuse observability). */
    uint64_t packCount() const { return packCount_; }

  private:
    friend void gemmPackedBAcc(const float*, const PackedMat&, float*,
                               size_t, size_t, size_t);
    friend void gemmPackedAAcc(const PackedMat&, const float*, float*,
                               size_t, size_t, size_t);

    void repack();

    Side side_ = Side::B;
    const float* src_ = nullptr;
    size_t rows_ = 0, cols_ = 0; //!< logical op() dims
    bool trans_ = false;
    uint64_t version_ = 0;
    bool packed_ = false;
    uint64_t packCount_ = 0;
    std::vector<float> buf_;
    std::vector<size_t> off_; //!< per cache-block offsets into buf_
};

} // namespace mixq

#endif // MIXQ_NN_GEMM_BACKEND_HH
