#include "nn/rnn.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "infer/qkernels.hh"
#include "nn/gemm.hh"
#include "nn/loss.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace mixq {

namespace {

double
rnnInitStd(size_t fan_in)
{
    return 1.0 / std::sqrt(double(std::max<size_t>(fan_in, 1)));
}

bool gRnnBatchParallel = true;

/**
 * Batch partition for one sequence pass. Every chunk has at least
 * kGemmMR rows so the per-chunk gate GEMMs all stay on the
 * blocked/packed path (a skinnier M would fall back to the naive
 * kernel and stop using the sequence-level plans); at most
 * kRnnMaxBatchChunks chunks so the per-chunk gradient partials stay
 * bounded.
 */
std::vector<size_t>
rnnBatchChunks(size_t n)
{
    return deterministicBatchChunks(n, kGemmMR, kRnnMaxBatchChunks);
}

/**
 * Chunked-forward orchestration shared by Lstm and Gru: the slice
 * callback over the fixed chunks in parallel, or one plain call for
 * a single chunk. The caller passes the same frozenQuant decision
 * either way — QAT semantics must follow the mode toggle, never the
 * batch size.
 */
template <class SliceFn>
void
chunkedForward(const std::vector<size_t>& bounds, SliceFn&& slice)
{
    size_t chunks = bounds.size() - 1;
    if (chunks > 1) {
        #pragma omp parallel for schedule(static)
        for (long ci = 0; ci < long(chunks); ++ci)
            slice(bounds[size_t(ci)], bounds[size_t(ci) + 1]);
    } else {
        slice(bounds[0], bounds[chunks]);
    }
}

/**
 * Gather a batch slice [b0, b0 + nb) of every timestep of a
 * [T, N, width] tensor into a contiguous [T*nb, width] buffer — the
 * layout the batched weight-gradient GEMMs consume.
 */
void
gatherSliceRows(float* dst, const float* src, size_t t, size_t n,
                size_t b0, size_t nb, size_t width)
{
    for (size_t s = 0; s < t; ++s)
        std::memcpy(dst + s * nb * width,
                    src + (s * n + b0) * width,
                    nb * width * sizeof(float));
}

/**
 * Chunked-backward orchestration shared by Lstm and Gru: private
 * (wx, wh, b) gradient partials per chunk, the slice callback run
 * over the fixed chunks in parallel, then the fixed-order tree
 * merge into the gradient buffers.
 */
template <class SliceFn>
void
chunkedBackward(const std::vector<size_t>& bounds, size_t wxLen,
                size_t whLen, size_t bLen, float* gwx, float* gwh,
                float* gb, SliceFn&& slice)
{
    size_t chunks = bounds.size() - 1;
    std::vector<float> wxBuf(chunks * wxLen, 0.0f);
    std::vector<float> whBuf(chunks * whLen, 0.0f);
    std::vector<float> bBuf(chunks * bLen, 0.0f);
    std::vector<float*> wxP(chunks), whP(chunks), bP(chunks);
    for (size_t ci = 0; ci < chunks; ++ci) {
        wxP[ci] = wxBuf.data() + ci * wxLen;
        whP[ci] = whBuf.data() + ci * whLen;
        bP[ci] = bBuf.data() + ci * bLen;
    }
    #pragma omp parallel for schedule(static)
    for (long ci = 0; ci < long(chunks); ++ci)
        slice(bounds[size_t(ci)], bounds[size_t(ci) + 1],
              wxP[size_t(ci)], whP[size_t(ci)], bP[size_t(ci)]);
    treeReduceAcc(wxP.data(), chunks, wxLen, gwx);
    treeReduceAcc(whP.data(), chunks, whLen, gwh);
    treeReduceAcc(bP.data(), chunks, bLen, gb);
}

/**
 * Sequence-input quantizer step shared by the cells: training
 * observes + quantizes (EMA calibration), eval applies the frozen
 * clip range only, so eval outputs are a pure function of weights.
 */
void
seqActQuant(ActFakeQuant& aq, std::span<float> x, bool train)
{
    if (!aq.enabled())
        return;
    if (train)
        aq.forward(x);
    else
        aq.quantizeOnly(x);
}

} // namespace

void
setRnnBatchParallel(bool on)
{
    gRnnBatchParallel = on;
}

bool
rnnBatchParallel()
{
    return gRnnBatchParallel;
}

// ------------------------------------------------------------ Embedding

Embedding::Embedding(size_t vocab, size_t dim, Rng& rng)
    : vocab_(vocab), dim_(dim),
      w_("embed.w", Tensor::randn({vocab, dim}, rng, 0.1))
{
}

Tensor
Embedding::forward(const std::vector<int>& ids, size_t t, size_t n)
{
    MIXQ_ASSERT(ids.size() == t * n, "Embedding: id grid mismatch");
    ids_ = ids;
    t_ = t;
    n_ = n;
    Tensor y({t, n, dim_});
    for (size_t i = 0; i < ids.size(); ++i) {
        int id = ids[i];
        MIXQ_ASSERT(id >= 0 && size_t(id) < vocab_,
                    "Embedding: id out of range");
        std::memcpy(y.data() + i * dim_, w_.w.data() + size_t(id) * dim_,
                    dim_ * sizeof(float));
    }
    return y;
}

Tensor
Embedding::forward(const Tensor& x, bool train)
{
    (void)train;
    MIXQ_ASSERT(x.ndim() == 2, "Embedding: id grid must be [T, N]");
    std::vector<int> ids(x.size());
    for (size_t i = 0; i < ids.size(); ++i)
        ids[i] = int(x.data()[i]);
    return forward(ids, x.dim(0), x.dim(1));
}

void
Embedding::forwardServe(const TensorView& x, const TensorView& y) const
{
    MIXQ_ASSERT(x.ndim() == 2, "Embedding: serve id grid must be [T, N]");
    size_t count = x.size();
    MIXQ_ASSERT(y.size() == count * dim_,
                "Embedding: serve out shape");
    for (size_t i = 0; i < count; ++i) {
        int id = int(x.data[i]);
        MIXQ_ASSERT(id >= 0 && size_t(id) < vocab_,
                    "Embedding: id out of range");
        std::memcpy(y.data + i * dim_,
                    w_.w.data() + size_t(id) * dim_,
                    dim_ * sizeof(float));
    }
}

Tensor
Embedding::backward(const Tensor& gy)
{
    MIXQ_ASSERT(gy.size() == ids_.size() * dim_,
                "Embedding: grad mismatch");
    for (size_t i = 0; i < ids_.size(); ++i) {
        float* g = w_.grad.data() + size_t(ids_[i]) * dim_;
        const float* src = gy.data() + i * dim_;
        for (size_t d = 0; d < dim_; ++d)
            g[d] += src[d];
    }
    return {};
}

// ----------------------------------------------------------------- Lstm

Lstm::Lstm(size_t input, size_t hidden, Rng& rng)
    : i_(input), h_(hidden),
      wx_("lstm.wx", Tensor::randn({4 * hidden, input}, rng,
                                   rnnInitStd(input)),
          4 * hidden, input),
      wh_("lstm.wh", Tensor::randn({4 * hidden, hidden}, rng,
                                   rnnInitStd(hidden)),
          4 * hidden, hidden),
      b_("lstm.b", Tensor::zeros({4 * hidden}), 0, 0, false),
      axq_(4, true), ahq_(4, true)
{
    // Forget-gate bias of 1 helps early training stability.
    for (size_t j = hidden; j < 2 * hidden; ++j)
        b_.w[j] = 1.0f;
}

void
Lstm::ownParams(std::vector<Param*>& out)
{
    out.push_back(&wx_);
    out.push_back(&wh_);
    out.push_back(&b_);
}

void
Lstm::configureOwnActQuant(int bits, bool enable)
{
    axq_ = ActFakeQuant(bits, true);
    ahq_ = ActFakeQuant(bits, true);
    axq_.setEnabled(enable);
    ahq_.setEnabled(enable);
}

Tensor
Lstm::forward(const Tensor& x, bool train)
{
    MIXQ_ASSERT(x.ndim() == 3 && x.dim(2) == i_, "Lstm input shape");
    if (intBackend_ && !train)
        return intForward(x);
    t_ = x.dim(0);
    n_ = x.dim(1);
    size_t t = t_, n = n_;

    xq_ = x;
    if (train)
        xPre_ = x;
    seqActQuant(axq_, xq_.span(), train);

    hq_ = Tensor({t, n, h_});
    hPre_ = Tensor({t, n, h_});
    gates_ = Tensor({t, n, 4 * h_});
    c_ = Tensor({t, n, h_});
    tanhc_ = Tensor({t, n, h_});
    Tensor hOut({t, n, h_});

    // Pack the gate weights once for all T timesteps (and all later
    // sequences until the optimizer/quantizer bumps the versions).
    // Must happen before the parallel region: ensure mutates the
    // plan, while the workers only read it.
    wxPlanFwd_.ensureB(wx_.w.data(), i_, 4 * h_, /*trans=*/true,
                       wx_.version);
    whPlanFwd_.ensureB(wh_.w.data(), h_, 4 * h_, /*trans=*/true,
                       wh_.version);

    if (gRnnBatchParallel) {
        // Frozen-alpha quantization + calibration replay even when
        // the batch yields a single chunk, so the QAT semantics
        // depend only on the toggle, never on the batch size (a
        // ragged final batch must not quantize differently).
        chunkedForward(rnnBatchChunks(n),
                       [&](size_t b0, size_t b1) {
                           forwardSlice(b0, b1, hOut,
                                        /*frozenQuant=*/true);
                       });
        // The slices quantized h_{t-1} against a frozen clip range;
        // replay the EMA calibration they skipped in timestep order
        // over the raw h values, so alpha evolves deterministically.
        // Eval never observes — the clip range stays frozen.
        if (train && ahq_.enabled()) {
            for (size_t s = 0; s < t; ++s)
                ahq_.observe(std::span<const float>(
                    hPre_.data() + s * n * h_, n * h_));
        }
    } else {
        forwardSlice(0, n, hOut, /*frozenQuant=*/!train);
    }
    return hOut;
}

void
Lstm::forwardSlice(size_t b0, size_t b1, Tensor& hOut,
                   bool frozenQuant)
{
    size_t t = t_, n = n_, nb = b1 - b0;
    std::vector<float> a(nb * 4 * h_);
    for (size_t s = 0; s < t; ++s) {
        // h_{t-1}: zero at s == 0, else previous output.
        float* hprev = hPre_.data() + (s * n + b0) * h_;
        if (s == 0) {
            std::memset(hprev, 0, nb * h_ * sizeof(float));
        } else {
            std::memcpy(hprev, hOut.data() + ((s - 1) * n + b0) * h_,
                        nb * h_ * sizeof(float));
        }
        float* hqs = hq_.data() + (s * n + b0) * h_;
        std::memcpy(hqs, hprev, nb * h_ * sizeof(float));
        if (ahq_.enabled()) {
            std::span<float> hspan(hqs, nb * h_);
            if (frozenQuant)
                ahq_.quantizeOnly(hspan);
            else
                ahq_.forward(hspan);
        }

        // Pre-activations a = xq Wx^T + hq Wh^T + b.
        const float* xs = xq_.data() + (s * n + b0) * i_;
        gemmPackedB(xs, wxPlanFwd_, a.data(), nb, 4 * h_, i_);
        gemmPackedBAcc(hqs, whPlanFwd_, a.data(), nb, 4 * h_, h_);

        float* g = gates_.data() + (s * n + b0) * 4 * h_;
        float* cs = c_.data() + (s * n + b0) * h_;
        const float* cprev =
            s == 0 ? nullptr : c_.data() + ((s - 1) * n + b0) * h_;
        float* th = tanhc_.data() + (s * n + b0) * h_;
        float* ho = hOut.data() + (s * n + b0) * h_;
        for (size_t b = 0; b < nb; ++b) {
            const float* ab = a.data() + b * 4 * h_;
            float* gb = g + b * 4 * h_;
            for (size_t j = 0; j < h_; ++j) {
                float iv = sigmoidf(ab[j] + b_.w[j]);
                float fv = sigmoidf(ab[h_ + j] + b_.w[h_ + j]);
                float gv = std::tanh(ab[2 * h_ + j] + b_.w[2 * h_ + j]);
                float ov = sigmoidf(ab[3 * h_ + j] + b_.w[3 * h_ + j]);
                gb[j] = iv;
                gb[h_ + j] = fv;
                gb[2 * h_ + j] = gv;
                gb[3 * h_ + j] = ov;
                float cp = cprev ? cprev[b * h_ + j] : 0.0f;
                float cv = fv * cp + iv * gv;
                cs[b * h_ + j] = cv;
                float tv = std::tanh(cv);
                th[b * h_ + j] = tv;
                ho[b * h_ + j] = ov * tv;
            }
        }
    }
}

void
Lstm::enableIntInference(const MatrixQuantResult& projWx,
                         const MatrixQuantResult& projWh, int wbits)
{
    MIXQ_ASSERT(projWx.rowScheme.size() == 4 * h_ &&
                projWh.rowScheme.size() == 4 * h_,
                "Lstm: projection records do not match the gates");
    qProjWx_ = projWx;
    qProjWh_ = projWh;
    qBits_ = wbits;
    intBackend_ = true;
}

void
Lstm::adoptDeployedWeights(PackedQMat wx, PackedQMat wh, int wbits)
{
    MIXQ_ASSERT(wx.locked() && wx.rows() == 4 * h_ && wx.cols() == i_ &&
                    wh.locked() && wh.rows() == 4 * h_ &&
                    wh.cols() == h_,
                "Lstm: deployed panels do not match the gates");
    wxQ_ = std::move(wx);
    whQ_ = std::move(wh);
    qBits_ = wbits;
    intBackend_ = true;
}

Tensor
Lstm::intForward(const Tensor& x)
{
    size_t t = x.dim(0), n = x.dim(1);
    size_t rows = 4 * h_;
    wxQ_.ensure(wx_.w.data(), rows, i_, wx_.version,
                qProjWx_.rowScheme, qProjWx_.rowAlpha, qBits_);
    whQ_.ensure(wh_.w.data(), rows, h_, wh_.version,
                qProjWh_.rowScheme, qProjWh_.rowAlpha, qBits_);
    ActQuantParams px = actQuantParams(axq_);
    ActQuantParams ph = actQuantParams(ahq_);
    // Per-gate-row rescale factors, carried in double like the
    // Linear rescale so the only float rounding is at the gate
    // pre-activation itself.
    std::vector<double> fx(rows), fh(rows);
    for (size_t r = 0; r < rows; ++r) {
        fx[r] = wxQ_.rowDequant(r) * double(px.invScale);
        fh[r] = whQ_.rowDequant(r) * double(ph.invScale);
    }

    Tensor hOut({t, n, h_});
    // Sequences evolve independently, so the batch splits into the
    // same fixed chunks as training; all state is per-slice, every
    // output element a pure function of its own sequence — bitwise
    // identical at any thread count. qgemm goes serial inside the
    // region.
    auto slice = [&](size_t b0, size_t b1) {
        size_t nb = b1 - b0;
        std::vector<int32_t> qx(nb * i_), qxT(i_ * nb);
        std::vector<int32_t> qh(nb * h_), qhT(h_ * nb);
        std::vector<int32_t> accX(rows * nb), accH(rows * nb);
        std::vector<float> hprev(nb * h_, 0.0f);
        std::vector<float> cprev(nb * h_, 0.0f);
        for (size_t s = 0; s < t; ++s) {
            const float* xs = x.data() + (s * n + b0) * i_;
            quantizeActsInt(xs, qx.data(), nb * i_, px);
            transposeInt32(qx.data(), qxT.data(), nb, i_);
            qgemm(wxQ_, qxT.data(), nb, accX.data());
            quantizeActsInt(hprev.data(), qh.data(), nb * h_, ph);
            transposeInt32(qh.data(), qhT.data(), nb, h_);
            qgemm(whQ_, qhT.data(), nb, accH.data());

            float* ho = hOut.data() + (s * n + b0) * h_;
            for (size_t b = 0; b < nb; ++b) {
                for (size_t j = 0; j < h_; ++j) {
                    auto pre = [&](size_t r) {
                        return float(
                            double(accX[r * nb + b]) * fx[r] +
                            double(accH[r * nb + b]) * fh[r]);
                    };
                    float iv = sigmoidf(pre(j) + b_.w[j]);
                    float fv = sigmoidf(pre(h_ + j) + b_.w[h_ + j]);
                    float gv = std::tanh(pre(2 * h_ + j) +
                                         b_.w[2 * h_ + j]);
                    float ov = sigmoidf(pre(3 * h_ + j) +
                                        b_.w[3 * h_ + j]);
                    float cv = fv * cprev[b * h_ + j] + iv * gv;
                    cprev[b * h_ + j] = cv;
                    float hv = ov * std::tanh(cv);
                    hprev[b * h_ + j] = hv;
                    ho[b * h_ + j] = hv;
                }
            }
        }
    };
    chunkedForward(rnnBatchChunks(n), slice);
    return hOut;
}

void
Lstm::prepareServe(RnnServeScratch& s, size_t maxN)
{
    MIXQ_ASSERT(intBackend_,
                "Lstm: planned serving requires the int inference "
                "backend — the float train-path forward mutates "
                "member caches and cannot run replica-shared");
    MIXQ_ASSERT(maxN > 0, "Lstm: empty serve batch");
    size_t rows = 4 * h_;
    wxQ_.ensure(wx_.w.data(), rows, i_, wx_.version,
                qProjWx_.rowScheme, qProjWx_.rowAlpha, qBits_);
    whQ_.ensure(wh_.w.data(), rows, h_, wh_.version,
                qProjWh_.rowScheme, qProjWh_.rowAlpha, qBits_);
    ActQuantParams px = actQuantParams(axq_);
    ActQuantParams ph = actQuantParams(ahq_);
    s.fx.resize(rows);
    s.fh.resize(rows);
    for (size_t r = 0; r < rows; ++r) {
        s.fx[r] = wxQ_.rowDequant(r) * double(px.invScale);
        s.fh[r] = whQ_.rowDequant(r) * double(ph.invScale);
    }
    // Chunk bounds are a pure function of n; tabulating every batch
    // size up to the maximum keeps the live path free of even the
    // bounds vector's allocation.
    s.boundsByN.assign(maxN + 1, {});
    for (size_t nn = 1; nn <= maxN; ++nn)
        s.boundsByN[nn] = rnnBatchChunks(nn);
    // Slots sized for the widest chunk (a chunk never exceeds the
    // whole batch); live batches index with their actual nb.
    s.slots.resize(kRnnMaxBatchChunks);
    for (auto& sl : s.slots) {
        sl.qx.resize(maxN * i_);
        sl.qxT.resize(i_ * maxN);
        sl.qh.resize(maxN * h_);
        sl.qhT.resize(h_ * maxN);
        sl.accX.resize(rows * maxN);
        sl.accH.resize(rows * maxN);
        sl.hprev.resize(maxN * h_);
        sl.cprev.resize(maxN * h_);
    }
}

void
Lstm::forwardServe(const TensorView& x, const TensorView& y,
                   RnnServeScratch& s) const
{
    MIXQ_ASSERT(x.ndim() == 3 && x.dim(2) == i_,
                "Lstm: serve view shape");
    size_t t = x.dim(0), n = x.dim(1);
    MIXQ_ASSERT(n > 0 && n < s.boundsByN.size() &&
                    !s.boundsByN[n].empty(),
                "Lstm: serve batch exceeds the prepared plan");
    MIXQ_ASSERT(y.size() == t * n * h_, "Lstm: serve out shape");
    ActQuantParams px = actQuantParams(axq_);
    ActQuantParams ph = actQuantParams(ahq_);

    // Same chunked slice as intForward, with every per-slice buffer a
    // pre-sized Slot of the replica scratch; arithmetic and chunk
    // partition are identical, so outputs match the eval path bit for
    // bit at any thread count.
    const std::vector<size_t>& bounds = s.boundsByN[n];
    size_t chunks = bounds.size() - 1;
    auto slice = [&](size_t ci, size_t b0, size_t b1) {
        size_t nb = b1 - b0;
        RnnServeScratch::Slot& sl = s.slots[ci];
        std::fill_n(sl.hprev.data(), nb * h_, 0.0f);
        std::fill_n(sl.cprev.data(), nb * h_, 0.0f);
        for (size_t st = 0; st < t; ++st) {
            const float* xs = x.data + (st * n + b0) * i_;
            quantizeActsInt(xs, sl.qx.data(), nb * i_, px);
            transposeInt32(sl.qx.data(), sl.qxT.data(), nb, i_);
            qgemm(wxQ_, sl.qxT.data(), nb, sl.accX.data());
            quantizeActsInt(sl.hprev.data(), sl.qh.data(), nb * h_,
                            ph);
            transposeInt32(sl.qh.data(), sl.qhT.data(), nb, h_);
            qgemm(whQ_, sl.qhT.data(), nb, sl.accH.data());

            float* ho = y.data + (st * n + b0) * h_;
            for (size_t b = 0; b < nb; ++b) {
                for (size_t j = 0; j < h_; ++j) {
                    auto pre = [&](size_t r) {
                        return float(
                            double(sl.accX[r * nb + b]) * s.fx[r] +
                            double(sl.accH[r * nb + b]) * s.fh[r]);
                    };
                    float iv = sigmoidf(pre(j) + b_.w[j]);
                    float fv = sigmoidf(pre(h_ + j) + b_.w[h_ + j]);
                    float gv = std::tanh(pre(2 * h_ + j) +
                                         b_.w[2 * h_ + j]);
                    float ov = sigmoidf(pre(3 * h_ + j) +
                                        b_.w[3 * h_ + j]);
                    float cv = fv * sl.cprev[b * h_ + j] + iv * gv;
                    sl.cprev[b * h_ + j] = cv;
                    float hv = ov * std::tanh(cv);
                    sl.hprev[b * h_ + j] = hv;
                    ho[b * h_ + j] = hv;
                }
            }
        }
    };
    if (chunks > 1) {
        #pragma omp parallel for schedule(static)
        for (long ci = 0; ci < long(chunks); ++ci)
            slice(size_t(ci), bounds[size_t(ci)],
                  bounds[size_t(ci) + 1]);
    } else {
        slice(0, bounds[0], bounds[chunks]);
    }
}

Tensor
Lstm::backward(const Tensor& gy)
{
    size_t t = t_, n = n_;
    MIXQ_ASSERT(gy.ndim() == 3 && gy.dim(0) == t && gy.dim(1) == n &&
                gy.dim(2) == h_, "Lstm grad shape");

    Tensor gx({t, n, i_});
    // Backward streams da against the un-transposed weights; the
    // plans again pack once for all T steps, before any workers run.
    wxPlanBwd_.ensureB(wx_.w.data(), 4 * h_, i_, /*trans=*/false,
                       wx_.version);
    whPlanBwd_.ensureB(wh_.w.data(), 4 * h_, h_, /*trans=*/false,
                       wh_.version);

    std::vector<size_t> bounds = rnnBatchChunks(n);
    if (gRnnBatchParallel && bounds.size() > 2) {
        // Private weight-gradient partials per chunk, merged in the
        // fixed tree order — never via concurrent accumulate.
        chunkedBackward(bounds, 4 * h_ * i_, 4 * h_ * h_, 4 * h_,
                        wx_.grad.data(), wh_.grad.data(),
                        b_.grad.data(),
                        [&](size_t b0, size_t b1, float* gwx,
                            float* gwh, float* gb) {
                            backwardSlice(b0, b1, gy, gx, gwx, gwh,
                                          gb);
                        });
    } else {
        backwardSlice(0, n, gy, gx, wx_.grad.data(), wh_.grad.data(),
                      b_.grad.data());
    }
    if (axq_.enabled())
        axq_.backwardSte(xPre_.span(), gx.span());
    return gx;
}

void
Lstm::backwardSlice(size_t b0, size_t b1, const Tensor& gy, Tensor& gx,
                    float* gwx, float* gwh, float* gb)
{
    size_t t = t_, n = n_, nb = b1 - b0;
    std::vector<float> dh_next(nb * h_, 0.0f);
    std::vector<float> dc_next(nb * h_, 0.0f);
    // da for every timestep of the slice, kept for the batched
    // weight-gradient GEMM below (same order of magnitude as the
    // forward caches already held per sequence).
    std::vector<float> daAll(t * nb * 4 * h_);

    for (size_t s = t; s-- > 0;) {
        const float* g = gates_.data() + (s * n + b0) * 4 * h_;
        const float* th = tanhc_.data() + (s * n + b0) * h_;
        const float* cprev =
            s == 0 ? nullptr : c_.data() + ((s - 1) * n + b0) * h_;
        const float* gys = gy.data() + (s * n + b0) * h_;
        float* da = daAll.data() + s * nb * 4 * h_;

        for (size_t b = 0; b < nb; ++b) {
            const float* gbv = g + b * 4 * h_;
            float* dab = da + b * 4 * h_;
            for (size_t j = 0; j < h_; ++j) {
                float dh = gys[b * h_ + j] + dh_next[b * h_ + j];
                float iv = gbv[j], fv = gbv[h_ + j];
                float gv = gbv[2 * h_ + j], ov = gbv[3 * h_ + j];
                float tv = th[b * h_ + j];
                float dct = dh * ov * (1.0f - tv * tv) +
                            dc_next[b * h_ + j];
                float cp = cprev ? cprev[b * h_ + j] : 0.0f;
                dab[j] = dct * gv * iv * (1.0f - iv);
                dab[h_ + j] = dct * cp * fv * (1.0f - fv);
                dab[2 * h_ + j] = dct * iv * (1.0f - gv * gv);
                dab[3 * h_ + j] = dh * tv * ov * (1.0f - ov);
                dc_next[b * h_ + j] = dct * fv;
            }
        }

        // Bias gradient (into the caller's buffer).
        for (size_t b = 0; b < nb; ++b)
            for (size_t j = 0; j < 4 * h_; ++j)
                gb[j] += da[b * 4 * h_ + j];

        // Input and recurrent gradients.
        float* gxs = gx.data() + (s * n + b0) * i_;
        gemmPackedB(da, wxPlanBwd_, gxs, nb, i_, 4 * h_);
        gemmPackedB(da, whPlanBwd_, dh_next.data(), nb, h_,
                    4 * h_);
        if (ahq_.enabled()) {
            const float* hp = hPre_.data() + (s * n + b0) * h_;
            ahq_.backwardSte(std::span<const float>(hp, nb * h_),
                             std::span<float>(dh_next.data(),
                                              nb * h_));
        }
    }

    // Weight gradients, batched over the whole slice: gather the
    // slice's strided xq/hq rows into contiguous [T*nb, ...] views
    // and run one GEMM with k = T*nb instead of T GEMMs with k = nb.
    // The reduction dimension is tiny per step, so per-step calls
    // pay a full C-matrix pass per timestep; one call pays it once.
    std::vector<float> xbuf(t * nb * i_);
    std::vector<float> hbuf(t * nb * h_);
    gatherSliceRows(xbuf.data(), xq_.data(), t, n, b0, nb, i_);
    gatherSliceRows(hbuf.data(), hq_.data(), t, n, b0, nb, h_);
    gemmATAcc(daAll.data(), xbuf.data(), gwx, 4 * h_, i_, t * nb);
    gemmATAcc(daAll.data(), hbuf.data(), gwh, 4 * h_, h_, t * nb);
}

// ------------------------------------------------------------------ Gru

Gru::Gru(size_t input, size_t hidden, Rng& rng)
    : i_(input), h_(hidden),
      wx_("gru.wx", Tensor::randn({3 * hidden, input}, rng,
                                  rnnInitStd(input)),
          3 * hidden, input),
      wh_("gru.wh", Tensor::randn({3 * hidden, hidden}, rng,
                                  rnnInitStd(hidden)),
          3 * hidden, hidden),
      b_("gru.b", Tensor::zeros({3 * hidden}), 0, 0, false),
      axq_(4, true), ahq_(4, true)
{
}

void
Gru::ownParams(std::vector<Param*>& out)
{
    out.push_back(&wx_);
    out.push_back(&wh_);
    out.push_back(&b_);
}

void
Gru::configureOwnActQuant(int bits, bool enable)
{
    axq_ = ActFakeQuant(bits, true);
    ahq_ = ActFakeQuant(bits, true);
    axq_.setEnabled(enable);
    ahq_.setEnabled(enable);
}

Tensor
Gru::forward(const Tensor& x, bool train)
{
    MIXQ_ASSERT(x.ndim() == 3 && x.dim(2) == i_, "Gru input shape");
    if (intBackend_ && !train)
        return intForward(x);
    t_ = x.dim(0);
    n_ = x.dim(1);
    size_t t = t_, n = n_;

    xq_ = x;
    if (train)
        xPre_ = x;
    seqActQuant(axq_, xq_.span(), train);

    hq_ = Tensor({t, n, h_});
    hPre_ = Tensor({t, n, h_});
    gates_ = Tensor({t, n, 3 * h_});
    ahn_ = Tensor({t, n, h_});
    hOut_ = Tensor({t, n, h_});

    wxPlanFwd_.ensureB(wx_.w.data(), i_, 3 * h_, /*trans=*/true,
                       wx_.version);
    whPlanFwd_.ensureB(wh_.w.data(), h_, 3 * h_, /*trans=*/true,
                       wh_.version);

    if (gRnnBatchParallel) {
        // Frozen-alpha + replay regardless of chunk count, so QAT
        // semantics follow the toggle, not the batch size (see
        // Lstm::forward).
        chunkedForward(rnnBatchChunks(n),
                       [&](size_t b0, size_t b1) {
                           forwardSlice(b0, b1,
                                        /*frozenQuant=*/true);
                       });
        if (train && ahq_.enabled()) {
            for (size_t s = 0; s < t; ++s)
                ahq_.observe(std::span<const float>(
                    hPre_.data() + s * n * h_, n * h_));
        }
    } else {
        forwardSlice(0, n, /*frozenQuant=*/!train);
    }
    return hOut_;
}

void
Gru::forwardSlice(size_t b0, size_t b1, bool frozenQuant)
{
    size_t t = t_, n = n_, nb = b1 - b0;
    std::vector<float> ax(nb * 3 * h_);
    std::vector<float> ah(nb * 3 * h_);
    for (size_t s = 0; s < t; ++s) {
        float* hprev = hPre_.data() + (s * n + b0) * h_;
        if (s == 0) {
            std::memset(hprev, 0, nb * h_ * sizeof(float));
        } else {
            std::memcpy(hprev, hOut_.data() + ((s - 1) * n + b0) * h_,
                        nb * h_ * sizeof(float));
        }
        float* hqs = hq_.data() + (s * n + b0) * h_;
        std::memcpy(hqs, hprev, nb * h_ * sizeof(float));
        if (ahq_.enabled()) {
            std::span<float> hspan(hqs, nb * h_);
            if (frozenQuant)
                ahq_.quantizeOnly(hspan);
            else
                ahq_.forward(hspan);
        }

        const float* xs = xq_.data() + (s * n + b0) * i_;
        gemmPackedB(xs, wxPlanFwd_, ax.data(), nb, 3 * h_, i_);
        gemmPackedB(hqs, whPlanFwd_, ah.data(), nb, 3 * h_, h_);

        float* g = gates_.data() + (s * n + b0) * 3 * h_;
        float* hu = ahn_.data() + (s * n + b0) * h_;
        float* ho = hOut_.data() + (s * n + b0) * h_;
        for (size_t b = 0; b < nb; ++b) {
            const float* axb = ax.data() + b * 3 * h_;
            const float* ahb = ah.data() + b * 3 * h_;
            float* gb = g + b * 3 * h_;
            for (size_t j = 0; j < h_; ++j) {
                float zv = sigmoidf(axb[j] + ahb[j] + b_.w[j]);
                float rv = sigmoidf(axb[h_ + j] + ahb[h_ + j] +
                                    b_.w[h_ + j]);
                float huv = ahb[2 * h_ + j];
                float nv = std::tanh(axb[2 * h_ + j] + b_.w[2 * h_ + j] +
                                     rv * huv);
                gb[j] = zv;
                gb[h_ + j] = rv;
                gb[2 * h_ + j] = nv;
                hu[b * h_ + j] = huv;
                float hp = hprev[b * h_ + j];
                ho[b * h_ + j] = (1.0f - zv) * nv + zv * hp;
            }
        }
    }
}

void
Gru::enableIntInference(const MatrixQuantResult& projWx,
                        const MatrixQuantResult& projWh, int wbits)
{
    MIXQ_ASSERT(projWx.rowScheme.size() == 3 * h_ &&
                projWh.rowScheme.size() == 3 * h_,
                "Gru: projection records do not match the gates");
    qProjWx_ = projWx;
    qProjWh_ = projWh;
    qBits_ = wbits;
    intBackend_ = true;
}

void
Gru::adoptDeployedWeights(PackedQMat wx, PackedQMat wh, int wbits)
{
    MIXQ_ASSERT(wx.locked() && wx.rows() == 3 * h_ && wx.cols() == i_ &&
                    wh.locked() && wh.rows() == 3 * h_ &&
                    wh.cols() == h_,
                "Gru: deployed panels do not match the gates");
    wxQ_ = std::move(wx);
    whQ_ = std::move(wh);
    qBits_ = wbits;
    intBackend_ = true;
}

Tensor
Gru::intForward(const Tensor& x)
{
    size_t t = x.dim(0), n = x.dim(1);
    size_t rows = 3 * h_;
    wxQ_.ensure(wx_.w.data(), rows, i_, wx_.version,
                qProjWx_.rowScheme, qProjWx_.rowAlpha, qBits_);
    whQ_.ensure(wh_.w.data(), rows, h_, wh_.version,
                qProjWh_.rowScheme, qProjWh_.rowAlpha, qBits_);
    ActQuantParams px = actQuantParams(axq_);
    ActQuantParams ph = actQuantParams(ahq_);
    std::vector<double> fx(rows), fh(rows);
    for (size_t r = 0; r < rows; ++r) {
        fx[r] = wxQ_.rowDequant(r) * double(px.invScale);
        fh[r] = whQ_.rowDequant(r) * double(ph.invScale);
    }

    Tensor hOut({t, n, h_});
    // Same batch-chunk shape as Lstm::intForward; the x and h
    // contributions stay separate through rescale because the n~
    // gate couples them through r, not by a plain sum.
    auto slice = [&](size_t b0, size_t b1) {
        size_t nb = b1 - b0;
        std::vector<int32_t> qx(nb * i_), qxT(i_ * nb);
        std::vector<int32_t> qh(nb * h_), qhT(h_ * nb);
        std::vector<int32_t> accX(rows * nb), accH(rows * nb);
        std::vector<float> hprev(nb * h_, 0.0f);
        for (size_t s = 0; s < t; ++s) {
            const float* xs = x.data() + (s * n + b0) * i_;
            quantizeActsInt(xs, qx.data(), nb * i_, px);
            transposeInt32(qx.data(), qxT.data(), nb, i_);
            qgemm(wxQ_, qxT.data(), nb, accX.data());
            quantizeActsInt(hprev.data(), qh.data(), nb * h_, ph);
            transposeInt32(qh.data(), qhT.data(), nb, h_);
            qgemm(whQ_, qhT.data(), nb, accH.data());

            float* ho = hOut.data() + (s * n + b0) * h_;
            for (size_t b = 0; b < nb; ++b) {
                for (size_t j = 0; j < h_; ++j) {
                    auto preX = [&](size_t r) {
                        return float(double(accX[r * nb + b]) *
                                     fx[r]);
                    };
                    auto preH = [&](size_t r) {
                        return float(double(accH[r * nb + b]) *
                                     fh[r]);
                    };
                    float zv = sigmoidf(preX(j) + preH(j) + b_.w[j]);
                    float rv = sigmoidf(preX(h_ + j) +
                                        preH(h_ + j) + b_.w[h_ + j]);
                    float huv = preH(2 * h_ + j);
                    float nv = std::tanh(preX(2 * h_ + j) +
                                         b_.w[2 * h_ + j] + rv * huv);
                    float hp = hprev[b * h_ + j];
                    float hv = (1.0f - zv) * nv + zv * hp;
                    hprev[b * h_ + j] = hv;
                    ho[b * h_ + j] = hv;
                }
            }
        }
    };
    chunkedForward(rnnBatchChunks(n), slice);
    return hOut;
}

void
Gru::prepareServe(RnnServeScratch& s, size_t maxN)
{
    MIXQ_ASSERT(intBackend_,
                "Gru: planned serving requires the int inference "
                "backend — the float train-path forward mutates "
                "member caches and cannot run replica-shared");
    MIXQ_ASSERT(maxN > 0, "Gru: empty serve batch");
    size_t rows = 3 * h_;
    wxQ_.ensure(wx_.w.data(), rows, i_, wx_.version,
                qProjWx_.rowScheme, qProjWx_.rowAlpha, qBits_);
    whQ_.ensure(wh_.w.data(), rows, h_, wh_.version,
                qProjWh_.rowScheme, qProjWh_.rowAlpha, qBits_);
    ActQuantParams px = actQuantParams(axq_);
    ActQuantParams ph = actQuantParams(ahq_);
    s.fx.resize(rows);
    s.fh.resize(rows);
    for (size_t r = 0; r < rows; ++r) {
        s.fx[r] = wxQ_.rowDequant(r) * double(px.invScale);
        s.fh[r] = whQ_.rowDequant(r) * double(ph.invScale);
    }
    s.boundsByN.assign(maxN + 1, {});
    for (size_t nn = 1; nn <= maxN; ++nn)
        s.boundsByN[nn] = rnnBatchChunks(nn);
    s.slots.resize(kRnnMaxBatchChunks);
    for (auto& sl : s.slots) {
        sl.qx.resize(maxN * i_);
        sl.qxT.resize(i_ * maxN);
        sl.qh.resize(maxN * h_);
        sl.qhT.resize(h_ * maxN);
        sl.accX.resize(rows * maxN);
        sl.accH.resize(rows * maxN);
        sl.hprev.resize(maxN * h_);
    }
}

void
Gru::forwardServe(const TensorView& x, const TensorView& y,
                  RnnServeScratch& s) const
{
    MIXQ_ASSERT(x.ndim() == 3 && x.dim(2) == i_,
                "Gru: serve view shape");
    size_t t = x.dim(0), n = x.dim(1);
    MIXQ_ASSERT(n > 0 && n < s.boundsByN.size() &&
                    !s.boundsByN[n].empty(),
                "Gru: serve batch exceeds the prepared plan");
    MIXQ_ASSERT(y.size() == t * n * h_, "Gru: serve out shape");
    ActQuantParams px = actQuantParams(axq_);
    ActQuantParams ph = actQuantParams(ahq_);

    // intForward's chunked slice over pre-sized Slot buffers; see
    // Lstm::forwardServe.
    const std::vector<size_t>& bounds = s.boundsByN[n];
    size_t chunks = bounds.size() - 1;
    auto slice = [&](size_t ci, size_t b0, size_t b1) {
        size_t nb = b1 - b0;
        RnnServeScratch::Slot& sl = s.slots[ci];
        std::fill_n(sl.hprev.data(), nb * h_, 0.0f);
        for (size_t st = 0; st < t; ++st) {
            const float* xs = x.data + (st * n + b0) * i_;
            quantizeActsInt(xs, sl.qx.data(), nb * i_, px);
            transposeInt32(sl.qx.data(), sl.qxT.data(), nb, i_);
            qgemm(wxQ_, sl.qxT.data(), nb, sl.accX.data());
            quantizeActsInt(sl.hprev.data(), sl.qh.data(), nb * h_,
                            ph);
            transposeInt32(sl.qh.data(), sl.qhT.data(), nb, h_);
            qgemm(whQ_, sl.qhT.data(), nb, sl.accH.data());

            float* ho = y.data + (st * n + b0) * h_;
            for (size_t b = 0; b < nb; ++b) {
                for (size_t j = 0; j < h_; ++j) {
                    auto preX = [&](size_t r) {
                        return float(double(sl.accX[r * nb + b]) *
                                     s.fx[r]);
                    };
                    auto preH = [&](size_t r) {
                        return float(double(sl.accH[r * nb + b]) *
                                     s.fh[r]);
                    };
                    float zv = sigmoidf(preX(j) + preH(j) + b_.w[j]);
                    float rv = sigmoidf(preX(h_ + j) +
                                        preH(h_ + j) + b_.w[h_ + j]);
                    float huv = preH(2 * h_ + j);
                    float nv = std::tanh(preX(2 * h_ + j) +
                                         b_.w[2 * h_ + j] + rv * huv);
                    float hp = sl.hprev[b * h_ + j];
                    float hv = (1.0f - zv) * nv + zv * hp;
                    sl.hprev[b * h_ + j] = hv;
                    ho[b * h_ + j] = hv;
                }
            }
        }
    };
    if (chunks > 1) {
        #pragma omp parallel for schedule(static)
        for (long ci = 0; ci < long(chunks); ++ci)
            slice(size_t(ci), bounds[size_t(ci)],
                  bounds[size_t(ci) + 1]);
    } else {
        slice(0, bounds[0], bounds[chunks]);
    }
}

Tensor
Gru::backward(const Tensor& gy)
{
    size_t t = t_, n = n_;
    MIXQ_ASSERT(gy.ndim() == 3 && gy.dim(0) == t && gy.dim(1) == n &&
                gy.dim(2) == h_, "Gru grad shape");

    Tensor gx({t, n, i_});
    wxPlanBwd_.ensureB(wx_.w.data(), 3 * h_, i_, /*trans=*/false,
                       wx_.version);
    whPlanBwd_.ensureB(wh_.w.data(), 3 * h_, h_, /*trans=*/false,
                       wh_.version);

    std::vector<size_t> bounds = rnnBatchChunks(n);
    if (gRnnBatchParallel && bounds.size() > 2) {
        chunkedBackward(bounds, 3 * h_ * i_, 3 * h_ * h_, 3 * h_,
                        wx_.grad.data(), wh_.grad.data(),
                        b_.grad.data(),
                        [&](size_t b0, size_t b1, float* gwx,
                            float* gwh, float* gb) {
                            backwardSlice(b0, b1, gy, gx, gwx, gwh,
                                          gb);
                        });
    } else {
        backwardSlice(0, n, gy, gx, wx_.grad.data(), wh_.grad.data(),
                      b_.grad.data());
    }
    if (axq_.enabled())
        axq_.backwardSte(xPre_.span(), gx.span());
    return gx;
}

void
Gru::backwardSlice(size_t b0, size_t b1, const Tensor& gy, Tensor& gx,
                   float* gwx, float* gwh, float* gb)
{
    size_t t = t_, n = n_, nb = b1 - b0;
    std::vector<float> dh_next(nb * h_, 0.0f);
    // dax/dah for every timestep of the slice, kept for the batched
    // weight-gradient GEMMs below.
    std::vector<float> daxAll(t * nb * 3 * h_);
    std::vector<float> dahAll(t * nb * 3 * h_);
    // Per-step scratch hoisted out of the timestep loop: dh_prev is
    // re-zeroed each step (accumulated below); dh_rec is overwritten
    // by gemmPackedB.
    std::vector<float> dh_prev(nb * h_);
    std::vector<float> dh_rec(nb * h_);

    for (size_t s = t; s-- > 0;) {
        const float* g = gates_.data() + (s * n + b0) * 3 * h_;
        const float* hu = ahn_.data() + (s * n + b0) * h_;
        const float* hprev = hPre_.data() + (s * n + b0) * h_;
        const float* gys = gy.data() + (s * n + b0) * h_;
        float* dax = daxAll.data() + s * nb * 3 * h_;
        float* dah = dahAll.data() + s * nb * 3 * h_;

        std::fill(dh_prev.begin(), dh_prev.end(), 0.0f);
        for (size_t b = 0; b < nb; ++b) {
            const float* gbv = g + b * 3 * h_;
            float* daxb = dax + b * 3 * h_;
            float* dahb = dah + b * 3 * h_;
            for (size_t j = 0; j < h_; ++j) {
                float dh = gys[b * h_ + j] + dh_next[b * h_ + j];
                float zv = gbv[j], rv = gbv[h_ + j];
                float nv = gbv[2 * h_ + j];
                float hp = hprev[b * h_ + j];
                float huv = hu[b * h_ + j];

                float dz = dh * (hp - nv);
                float dn = dh * (1.0f - zv);
                dh_prev[b * h_ + j] += dh * zv;

                float da_z = dz * zv * (1.0f - zv);
                float da_n = dn * (1.0f - nv * nv);
                float dr = da_n * huv;
                float da_r = dr * rv * (1.0f - rv);
                float dhu = da_n * rv;

                daxb[j] = da_z;
                daxb[h_ + j] = da_r;
                daxb[2 * h_ + j] = da_n;
                dahb[j] = da_z;
                dahb[h_ + j] = da_r;
                dahb[2 * h_ + j] = dhu;
            }
        }

        // Bias gradient (applied on the input path).
        for (size_t b = 0; b < nb; ++b)
            for (size_t j = 0; j < 3 * h_; ++j)
                gb[j] += dax[b * 3 * h_ + j];

        float* gxs = gx.data() + (s * n + b0) * i_;
        gemmPackedB(dax, wxPlanBwd_, gxs, nb, i_, 3 * h_);
        // Recurrent gradient through the three Uh paths.
        gemmPackedB(dah, whPlanBwd_, dh_rec.data(), nb, h_,
                    3 * h_);
        if (ahq_.enabled()) {
            ahq_.backwardSte(std::span<const float>(hprev, nb * h_),
                             std::span<float>(dh_rec.data(),
                                              nb * h_));
        }
        for (size_t k = 0; k < nb * h_; ++k)
            dh_next[k] = dh_prev[k] + dh_rec[k];
    }

    // Batched weight gradients over the whole slice (see Lstm): one
    // GEMM with k = T*nb pays the C-matrix pass once, not T times.
    std::vector<float> xbuf(t * nb * i_);
    std::vector<float> hbuf(t * nb * h_);
    gatherSliceRows(xbuf.data(), xq_.data(), t, n, b0, nb, i_);
    gatherSliceRows(hbuf.data(), hq_.data(), t, n, b0, nb, h_);
    gemmATAcc(daxAll.data(), xbuf.data(), gwx, 3 * h_, i_, t * nb);
    gemmATAcc(dahAll.data(), hbuf.data(), gwh, 3 * h_, h_, t * nb);
}

} // namespace mixq
