#include "nn/rnn.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "nn/gemm.hh"
#include "nn/loss.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace mixq {

namespace {

double
rnnInitStd(size_t fan_in)
{
    return 1.0 / std::sqrt(double(std::max<size_t>(fan_in, 1)));
}

} // namespace

// ------------------------------------------------------------ Embedding

Embedding::Embedding(size_t vocab, size_t dim, Rng& rng)
    : vocab_(vocab), dim_(dim),
      w_("embed.w", Tensor::randn({vocab, dim}, rng, 0.1))
{
}

Tensor
Embedding::forward(const std::vector<int>& ids, size_t t, size_t n)
{
    MIXQ_ASSERT(ids.size() == t * n, "Embedding: id grid mismatch");
    ids_ = ids;
    t_ = t;
    n_ = n;
    Tensor y({t, n, dim_});
    for (size_t i = 0; i < ids.size(); ++i) {
        int id = ids[i];
        MIXQ_ASSERT(id >= 0 && size_t(id) < vocab_,
                    "Embedding: id out of range");
        std::memcpy(y.data() + i * dim_, w_.w.data() + size_t(id) * dim_,
                    dim_ * sizeof(float));
    }
    return y;
}

void
Embedding::backward(const Tensor& gy)
{
    MIXQ_ASSERT(gy.size() == ids_.size() * dim_,
                "Embedding: grad mismatch");
    for (size_t i = 0; i < ids_.size(); ++i) {
        float* g = w_.grad.data() + size_t(ids_[i]) * dim_;
        const float* src = gy.data() + i * dim_;
        for (size_t d = 0; d < dim_; ++d)
            g[d] += src[d];
    }
}

// ----------------------------------------------------------------- Lstm

Lstm::Lstm(size_t input, size_t hidden, Rng& rng)
    : i_(input), h_(hidden),
      wx_("lstm.wx", Tensor::randn({4 * hidden, input}, rng,
                                   rnnInitStd(input)),
          4 * hidden, input),
      wh_("lstm.wh", Tensor::randn({4 * hidden, hidden}, rng,
                                   rnnInitStd(hidden)),
          4 * hidden, hidden),
      b_("lstm.b", Tensor::zeros({4 * hidden}), 0, 0, false),
      axq_(4, true), ahq_(4, true)
{
    // Forget-gate bias of 1 helps early training stability.
    for (size_t j = hidden; j < 2 * hidden; ++j)
        b_.w[j] = 1.0f;
}

void
Lstm::ownParams(std::vector<Param*>& out)
{
    out.push_back(&wx_);
    out.push_back(&wh_);
    out.push_back(&b_);
}

void
Lstm::configureOwnActQuant(int bits, bool enable)
{
    axq_ = ActFakeQuant(bits, true);
    ahq_ = ActFakeQuant(bits, true);
    axq_.setEnabled(enable);
    ahq_.setEnabled(enable);
}

Tensor
Lstm::forward(const Tensor& x, bool train)
{
    MIXQ_ASSERT(x.ndim() == 3 && x.dim(2) == i_, "Lstm input shape");
    t_ = x.dim(0);
    n_ = x.dim(1);
    size_t t = t_, n = n_;

    xPre_ = x;
    xq_ = x;
    if (axq_.enabled())
        axq_.forward(xq_.span());

    hq_ = Tensor({t, n, h_});
    hPre_ = Tensor({t, n, h_});
    gates_ = Tensor({t, n, 4 * h_});
    c_ = Tensor({t, n, h_});
    tanhc_ = Tensor({t, n, h_});
    Tensor hOut({t, n, h_});

    // Pack the gate weights once for all T timesteps (and all later
    // sequences until the optimizer/quantizer bumps the versions).
    wxPlanFwd_.ensureB(wx_.w.data(), i_, 4 * h_, /*trans=*/true,
                       wx_.version);
    whPlanFwd_.ensureB(wh_.w.data(), h_, 4 * h_, /*trans=*/true,
                       wh_.version);

    std::vector<float> a(n * 4 * h_);
    for (size_t s = 0; s < t; ++s) {
        // h_{t-1}: zero at s == 0, else previous output.
        float* hprev = hPre_.data() + s * n * h_;
        if (s == 0) {
            std::memset(hprev, 0, n * h_ * sizeof(float));
        } else {
            std::memcpy(hprev, hOut.data() + (s - 1) * n * h_,
                        n * h_ * sizeof(float));
        }
        float* hqs = hq_.data() + s * n * h_;
        std::memcpy(hqs, hprev, n * h_ * sizeof(float));
        if (ahq_.enabled())
            ahq_.forward(std::span<float>(hqs, n * h_));

        // Pre-activations a = xq Wx^T + hq Wh^T + b.
        const float* xs = xq_.data() + s * n * i_;
        gemmPackedB(xs, wxPlanFwd_, a.data(), n, 4 * h_, i_);
        gemmPackedBAcc(hqs, whPlanFwd_, a.data(), n, 4 * h_, h_);

        float* g = gates_.data() + s * n * 4 * h_;
        float* cs = c_.data() + s * n * h_;
        const float* cprev =
            s == 0 ? nullptr : c_.data() + (s - 1) * n * h_;
        float* th = tanhc_.data() + s * n * h_;
        float* ho = hOut.data() + s * n * h_;
        for (size_t b = 0; b < n; ++b) {
            const float* ab = a.data() + b * 4 * h_;
            float* gb = g + b * 4 * h_;
            for (size_t j = 0; j < h_; ++j) {
                float iv = sigmoidf(ab[j] + b_.w[j]);
                float fv = sigmoidf(ab[h_ + j] + b_.w[h_ + j]);
                float gv = std::tanh(ab[2 * h_ + j] + b_.w[2 * h_ + j]);
                float ov = sigmoidf(ab[3 * h_ + j] + b_.w[3 * h_ + j]);
                gb[j] = iv;
                gb[h_ + j] = fv;
                gb[2 * h_ + j] = gv;
                gb[3 * h_ + j] = ov;
                float cp = cprev ? cprev[b * h_ + j] : 0.0f;
                float cv = fv * cp + iv * gv;
                cs[b * h_ + j] = cv;
                float tv = std::tanh(cv);
                th[b * h_ + j] = tv;
                ho[b * h_ + j] = ov * tv;
            }
        }
    }
    (void)train;
    return hOut;
}

Tensor
Lstm::backward(const Tensor& gy)
{
    size_t t = t_, n = n_;
    MIXQ_ASSERT(gy.ndim() == 3 && gy.dim(0) == t && gy.dim(1) == n &&
                gy.dim(2) == h_, "Lstm grad shape");

    Tensor gx({t, n, i_});
    // Backward streams da against the un-transposed weights; the
    // plans again pack once for all T steps.
    wxPlanBwd_.ensureB(wx_.w.data(), 4 * h_, i_, /*trans=*/false,
                       wx_.version);
    whPlanBwd_.ensureB(wh_.w.data(), 4 * h_, h_, /*trans=*/false,
                       wh_.version);
    std::vector<float> dh_next(n * h_, 0.0f);
    std::vector<float> dc_next(n * h_, 0.0f);
    std::vector<float> da(n * 4 * h_);

    for (size_t s = t; s-- > 0;) {
        const float* g = gates_.data() + s * n * 4 * h_;
        const float* th = tanhc_.data() + s * n * h_;
        const float* cprev =
            s == 0 ? nullptr : c_.data() + (s - 1) * n * h_;
        const float* gys = gy.data() + s * n * h_;

        for (size_t b = 0; b < n; ++b) {
            const float* gb = g + b * 4 * h_;
            float* dab = da.data() + b * 4 * h_;
            for (size_t j = 0; j < h_; ++j) {
                float dh = gys[b * h_ + j] + dh_next[b * h_ + j];
                float iv = gb[j], fv = gb[h_ + j];
                float gv = gb[2 * h_ + j], ov = gb[3 * h_ + j];
                float tv = th[b * h_ + j];
                float dct = dh * ov * (1.0f - tv * tv) +
                            dc_next[b * h_ + j];
                float cp = cprev ? cprev[b * h_ + j] : 0.0f;
                dab[j] = dct * gv * iv * (1.0f - iv);
                dab[h_ + j] = dct * cp * fv * (1.0f - fv);
                dab[2 * h_ + j] = dct * iv * (1.0f - gv * gv);
                dab[3 * h_ + j] = dh * tv * ov * (1.0f - ov);
                dc_next[b * h_ + j] = dct * fv;
            }
        }

        // Parameter gradients.
        const float* xs = xq_.data() + s * n * i_;
        const float* hqs = hq_.data() + s * n * h_;
        gemmATAcc(da.data(), xs, wx_.grad.data(), 4 * h_, i_, n);
        gemmATAcc(da.data(), hqs, wh_.grad.data(), 4 * h_, h_, n);
        for (size_t b = 0; b < n; ++b)
            for (size_t j = 0; j < 4 * h_; ++j)
                b_.grad[j] += da[b * 4 * h_ + j];

        // Input and recurrent gradients.
        float* gxs = gx.data() + s * n * i_;
        gemmPackedB(da.data(), wxPlanBwd_, gxs, n, i_, 4 * h_);
        gemmPackedB(da.data(), whPlanBwd_, dh_next.data(), n, h_,
                    4 * h_);
        if (ahq_.enabled()) {
            const float* hp = hPre_.data() + s * n * h_;
            ahq_.backwardSte(std::span<const float>(hp, n * h_),
                             std::span<float>(dh_next.data(), n * h_));
        }
    }
    if (axq_.enabled())
        axq_.backwardSte(xPre_.span(), gx.span());
    return gx;
}

// ------------------------------------------------------------------ Gru

Gru::Gru(size_t input, size_t hidden, Rng& rng)
    : i_(input), h_(hidden),
      wx_("gru.wx", Tensor::randn({3 * hidden, input}, rng,
                                  rnnInitStd(input)),
          3 * hidden, input),
      wh_("gru.wh", Tensor::randn({3 * hidden, hidden}, rng,
                                  rnnInitStd(hidden)),
          3 * hidden, hidden),
      b_("gru.b", Tensor::zeros({3 * hidden}), 0, 0, false),
      axq_(4, true), ahq_(4, true)
{
}

void
Gru::ownParams(std::vector<Param*>& out)
{
    out.push_back(&wx_);
    out.push_back(&wh_);
    out.push_back(&b_);
}

void
Gru::configureOwnActQuant(int bits, bool enable)
{
    axq_ = ActFakeQuant(bits, true);
    ahq_ = ActFakeQuant(bits, true);
    axq_.setEnabled(enable);
    ahq_.setEnabled(enable);
}

Tensor
Gru::forward(const Tensor& x, bool train)
{
    MIXQ_ASSERT(x.ndim() == 3 && x.dim(2) == i_, "Gru input shape");
    t_ = x.dim(0);
    n_ = x.dim(1);
    size_t t = t_, n = n_;

    xPre_ = x;
    xq_ = x;
    if (axq_.enabled())
        axq_.forward(xq_.span());

    hq_ = Tensor({t, n, h_});
    hPre_ = Tensor({t, n, h_});
    gates_ = Tensor({t, n, 3 * h_});
    ahn_ = Tensor({t, n, h_});
    hOut_ = Tensor({t, n, h_});

    wxPlanFwd_.ensureB(wx_.w.data(), i_, 3 * h_, /*trans=*/true,
                       wx_.version);
    whPlanFwd_.ensureB(wh_.w.data(), h_, 3 * h_, /*trans=*/true,
                       wh_.version);

    std::vector<float> ax(n * 3 * h_);
    std::vector<float> ah(n * 3 * h_);
    for (size_t s = 0; s < t; ++s) {
        float* hprev = hPre_.data() + s * n * h_;
        if (s == 0) {
            std::memset(hprev, 0, n * h_ * sizeof(float));
        } else {
            std::memcpy(hprev, hOut_.data() + (s - 1) * n * h_,
                        n * h_ * sizeof(float));
        }
        float* hqs = hq_.data() + s * n * h_;
        std::memcpy(hqs, hprev, n * h_ * sizeof(float));
        if (ahq_.enabled())
            ahq_.forward(std::span<float>(hqs, n * h_));

        const float* xs = xq_.data() + s * n * i_;
        gemmPackedB(xs, wxPlanFwd_, ax.data(), n, 3 * h_, i_);
        gemmPackedB(hqs, whPlanFwd_, ah.data(), n, 3 * h_, h_);

        float* g = gates_.data() + s * n * 3 * h_;
        float* hu = ahn_.data() + s * n * h_;
        float* ho = hOut_.data() + s * n * h_;
        for (size_t b = 0; b < n; ++b) {
            const float* axb = ax.data() + b * 3 * h_;
            const float* ahb = ah.data() + b * 3 * h_;
            float* gb = g + b * 3 * h_;
            for (size_t j = 0; j < h_; ++j) {
                float zv = sigmoidf(axb[j] + ahb[j] + b_.w[j]);
                float rv = sigmoidf(axb[h_ + j] + ahb[h_ + j] +
                                    b_.w[h_ + j]);
                float huv = ahb[2 * h_ + j];
                float nv = std::tanh(axb[2 * h_ + j] + b_.w[2 * h_ + j] +
                                     rv * huv);
                gb[j] = zv;
                gb[h_ + j] = rv;
                gb[2 * h_ + j] = nv;
                hu[b * h_ + j] = huv;
                float hp = hprev[b * h_ + j];
                ho[b * h_ + j] = (1.0f - zv) * nv + zv * hp;
            }
        }
    }
    (void)train;
    return hOut_;
}

Tensor
Gru::backward(const Tensor& gy)
{
    size_t t = t_, n = n_;
    MIXQ_ASSERT(gy.ndim() == 3 && gy.dim(0) == t && gy.dim(1) == n &&
                gy.dim(2) == h_, "Gru grad shape");

    Tensor gx({t, n, i_});
    wxPlanBwd_.ensureB(wx_.w.data(), 3 * h_, i_, /*trans=*/false,
                       wx_.version);
    whPlanBwd_.ensureB(wh_.w.data(), 3 * h_, h_, /*trans=*/false,
                       wh_.version);
    std::vector<float> dh_next(n * h_, 0.0f);
    std::vector<float> dax(n * 3 * h_);
    std::vector<float> dah(n * 3 * h_);
    // Per-step scratch hoisted out of the timestep loop: dh_prev is
    // re-zeroed each step (accumulated below); dh_rec is overwritten
    // by gemmPackedB.
    std::vector<float> dh_prev(n * h_);
    std::vector<float> dh_rec(n * h_);

    for (size_t s = t; s-- > 0;) {
        const float* g = gates_.data() + s * n * 3 * h_;
        const float* hu = ahn_.data() + s * n * h_;
        const float* hprev = hPre_.data() + s * n * h_;
        const float* gys = gy.data() + s * n * h_;

        std::fill(dh_prev.begin(), dh_prev.end(), 0.0f);
        for (size_t b = 0; b < n; ++b) {
            const float* gb = g + b * 3 * h_;
            float* daxb = dax.data() + b * 3 * h_;
            float* dahb = dah.data() + b * 3 * h_;
            for (size_t j = 0; j < h_; ++j) {
                float dh = gys[b * h_ + j] + dh_next[b * h_ + j];
                float zv = gb[j], rv = gb[h_ + j], nv = gb[2 * h_ + j];
                float hp = hprev[b * h_ + j];
                float huv = hu[b * h_ + j];

                float dz = dh * (hp - nv);
                float dn = dh * (1.0f - zv);
                dh_prev[b * h_ + j] += dh * zv;

                float da_z = dz * zv * (1.0f - zv);
                float da_n = dn * (1.0f - nv * nv);
                float dr = da_n * huv;
                float da_r = dr * rv * (1.0f - rv);
                float dhu = da_n * rv;

                daxb[j] = da_z;
                daxb[h_ + j] = da_r;
                daxb[2 * h_ + j] = da_n;
                dahb[j] = da_z;
                dahb[h_ + j] = da_r;
                dahb[2 * h_ + j] = dhu;
            }
        }

        const float* xs = xq_.data() + s * n * i_;
        const float* hqs = hq_.data() + s * n * h_;
        gemmATAcc(dax.data(), xs, wx_.grad.data(), 3 * h_, i_, n);
        gemmATAcc(dah.data(), hqs, wh_.grad.data(), 3 * h_, h_, n);
        for (size_t b = 0; b < n; ++b)
            for (size_t j = 0; j < 3 * h_; ++j)
                b_.grad[j] += dax[b * 3 * h_ + j];

        float* gxs = gx.data() + s * n * i_;
        gemmPackedB(dax.data(), wxPlanBwd_, gxs, n, i_, 3 * h_);
        // Recurrent gradient through the three Uh paths.
        gemmPackedB(dah.data(), whPlanBwd_, dh_rec.data(), n, h_,
                    3 * h_);
        if (ahq_.enabled()) {
            ahq_.backwardSte(std::span<const float>(hprev, n * h_),
                             std::span<float>(dh_rec.data(), n * h_));
        }
        for (size_t k = 0; k < n * h_; ++k)
            dh_next[k] = dh_prev[k] + dh_rec[k];
    }
    if (axq_.enabled())
        axq_.backwardSte(xPre_.span(), gx.span());
    return gx;
}

} // namespace mixq
