/**
 * @file
 * Training loops. trainClassifier() runs plain FP32 training; handing
 * it a QatContext turns it into the paper's Algorithm 1/2: ADMM dual
 * updates every epoch (with the MSQ per-row partition refreshed from
 * the current weights), the rho/2 ||W - Z + U||^2 penalty gradient
 * every batch, STE-quantized activations, and a final hard projection
 * of every quantizable parameter.
 */

#ifndef MIXQ_NN_TRAINER_HH
#define MIXQ_NN_TRAINER_HH

#include <vector>

#include "nn/module.hh"
#include "quant/admm.hh"
#include "quant/qconfig.hh"
#include "quant/quantizer.hh"

namespace mixq {

/** Simple in-memory labeled image set ([N,C,H,W] + labels). */
struct LabeledImages
{
    Tensor images;
    std::vector<int> labels;
    size_t numClasses = 0;

    size_t size() const { return labels.size(); }
};

/** Hyper-parameters of one training run. */
struct TrainCfg
{
    int epochs = 10;
    size_t batch = 32;
    double lr = 0.05;
    double momentum = 0.9;
    double weightDecay = 5e-4;
    bool cosine = true;        //!< cosine schedule (else step decay)
    int stepEvery = 10;        //!< step-decay period when !cosine
    uint64_t seed = 1;
    bool verbose = false;
    /**
     * Batch-parallel LSTM/GRU forward/backward (nn/rnn.hh
     * setRnnBatchParallel). Applied for the whole run before the
     * first batch; the deterministic tree-merged gradients make runs
     * reproducible across OMP_NUM_THREADS either way.
     */
    bool rnnBatchParallel = true;
    /**
     * Optional sink for the mean training loss of every epoch
     * (appended in epoch order). The whole training step is
     * thread-count deterministic, so the recorded trajectory is
     * bit-identical across OMP_NUM_THREADS — which is exactly what
     * tests/trainer_mt_test.cc pins with it.
     */
    std::vector<double>* epochLoss = nullptr;
};

/**
 * ADMM quantization-training state over a set of parameters
 * (Algorithm 1; Algorithm 2 when cfg.scheme == Mixed). The context is
 * model-agnostic: CNNs pass Module::params(), the RNN task models
 * pass their own parameter lists.
 */
class QatContext
{
  public:
    explicit QatContext(QConfig cfg) : cfg_(std::move(cfg)) {}

    /** Register all quantizable params and initialize Z = proj(W). */
    void attach(const std::vector<Param*>& params);

    /**
     * Checkpoint-restore variant of attach(): register the
     * quantizable params and warm the level-set caches, but run no
     * initial projection — every entry's Z/U/projection is expected
     * to arrive through restoreEntryState() from serialized records
     * (serial/checkpoint.hh).
     */
    void attachForRestore(const std::vector<Param*>& params);

    /** Fill one registered entry's serialized ADMM/projection state. */
    void restoreEntryState(Param* p, std::span<const float> z,
                           std::span<const float> u,
                           MatrixQuantResult proj);

    /** Restore the finalized flag (checkpoint load). */
    void setFinalized(bool finalized) { finalized_ = finalized; }

    /**
     * Per-epoch dual update (re-partitions rows under MSQ). Runs the
     * fused quantizeMatrixBiased pipeline per parameter: W + U
     * assembly, projection and the scaled-dual update in one parallel
     * pass with no matrix-sized scratch.
     */
    void epochUpdate();

    /**
     * Fused per-batch penalty pass: adds rho (W - Z + U) to every
     * attached parameter gradient and returns the summed penalty
     * terms, one chunk-parallel walk per parameter (the trainer's
     * replacement for addPenaltyGrads() + penaltyTotal(), which each
     * re-walk every weight).
     */
    double addPenaltyGradsAndPenalty();

    /** Add rho (W - Z + U) to every attached parameter gradient. */
    void addPenaltyGrads();

    /** Sum of the ADMM penalty terms (for loss reporting). */
    double penaltyTotal() const;

    /** Hard-project every parameter onto its constraint set. */
    void finalize();

    /** Per-parameter record kept by the context. */
    struct Entry
    {
        Param* p;
        AdmmState admm;
        MatrixQuantResult proj; //!< result of the latest projection
    };

    const std::vector<Entry>& entries() const { return entries_; }
    const QConfig& config() const { return cfg_; }
    bool finalized() const { return finalized_; }

  private:
    AdmmState::ProjectFn makeProj(Entry* e);
    AdmmState::BiasedProjectFn makeBiasedProj(Entry* e);
    /** Shared registration half of attach()/attachForRestore(). */
    void registerEntries(const std::vector<Param*>& params);

    QConfig cfg_;
    std::vector<Entry> entries_;
    bool finalized_ = false;
};

class Sgd;

/**
 * Train a classifier on a labeled image set. With @p qat non-null the
 * loop runs quantization-aware: activation quantizers are enabled,
 * ADMM penalties applied, and weights hard-projected at the end.
 *
 * With @p opt non-null the loop drives that optimizer (which must
 * track this model's params()) instead of constructing its own —
 * the caller keeps the momentum state across save/restore
 * boundaries, so a resumed run continues the velocity trajectory
 * instead of restarting it from zero (serial/checkpoint.hh).
 */
void trainClassifier(Module& model, const LabeledImages& train,
                     const TrainCfg& cfg, QatContext* qat = nullptr,
                     Sgd* opt = nullptr);

/** Top-1 accuracy of a classifier on a labeled image set. */
double evalClassifier(Module& model, const LabeledImages& data,
                      size_t batch = 128);

/** Top-k accuracy (k >= 1). */
double evalClassifierTopK(Module& model, const LabeledImages& data,
                          size_t k, size_t batch = 128);

/**
 * Post-training hard quantization of a parameter list (no retraining).
 * Returns the per-parameter projection records.
 */
std::vector<MatrixQuantResult>
hardQuantize(const std::vector<Param*>& params, const QConfig& cfg);

} // namespace mixq

#endif // MIXQ_NN_TRAINER_HH
