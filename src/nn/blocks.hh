/**
 * @file
 * Composite CNN blocks: the ResNet BasicBlock (two 3x3 convolutions
 * with identity or projection shortcut) and the MobileNet-v2
 * InvertedResidual (1x1 expand, 3x3 depthwise, 1x1 project with
 * linear bottleneck). These mirror the structures the paper quantizes
 * (ResNet-18 / MobileNet-v2) at miniature scale.
 */

#ifndef MIXQ_NN_BLOCKS_HH
#define MIXQ_NN_BLOCKS_HH

#include <memory>

#include "nn/layers.hh"

namespace mixq {

/** ResNet basic residual block. */
class BasicBlock : public Module
{
  public:
    BasicBlock(size_t in_ch, size_t out_ch, size_t stride, Rng& rng);

    Tensor forward(const Tensor& x, bool train) override;
    Tensor backward(const Tensor& gy) override;
    std::vector<Module*> children() override;
    std::vector<NamedChild> namedChildren() override;

  private:
    Conv2d conv1_;
    BatchNorm2d bn1_;
    ReLU relu1_;
    Conv2d conv2_;
    BatchNorm2d bn2_;
    ReLU reluOut_;
    std::unique_ptr<Conv2d> downConv_;
    std::unique_ptr<BatchNorm2d> downBn_;
};

/** MobileNet-v2 inverted residual block with linear bottleneck. */
class InvertedResidual : public Module
{
  public:
    InvertedResidual(size_t in_ch, size_t out_ch, size_t expand,
                     size_t stride, Rng& rng);

    Tensor forward(const Tensor& x, bool train) override;
    Tensor backward(const Tensor& gy) override;
    std::vector<Module*> children() override;
    std::vector<NamedChild> namedChildren() override;

    bool hasSkip() const { return skip_; }

  private:
    bool skip_;
    Conv2d expandConv_;
    BatchNorm2d bn1_;
    ReLU relu1_;
    DwConv2d dw_;
    BatchNorm2d bn2_;
    ReLU relu2_;
    Conv2d projectConv_;
    BatchNorm2d bn3_;
};

} // namespace mixq

#endif // MIXQ_NN_BLOCKS_HH
