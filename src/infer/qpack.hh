/**
 * @file
 * Packed integer weight panels for the deployable inference backend.
 *
 * A PackedQMat is the inference-side mirror of the float PackedMat
 * plan (nn/gemm_backend.hh): one weight matrix, hard-projected by the
 * quantizer, bit-packed once into its hardware encoding and reused
 * across every forward call until the Param's version bumps. Rows
 * keep the per-row scheme/alpha assignment of the MatrixQuantResult
 * that projected them:
 *
 *  - SP2 rows encode as Sp2Code (sign, j1, j2) triples — the LUT
 *    datapath form of Table I, two shifts and an add per product;
 *  - Fixed rows encode as sign-magnitude int8 levels — the DSP
 *    datapath form, one integer multiply per product.
 *
 * Two representations are kept per matrix:
 *
 *  - the *canonical codes* (sp2Codes()/fixedCodes()): the compact
 *    deploy form, byte-comparable across packs of the same weights
 *    (tests/infer_mt_test.cc pins pack -> run -> repack idempotence)
 *    and the form the sim cores (sim/gemm_core.hh) consume directly;
 *  - the *execution panels* (shift1/shift2/mask1/mask2/signMask):
 *    the SP2 codes expanded to structure-of-arrays int32 lanes so a
 *    per-code shift-add traversal is branch-free over the activation
 *    dimension. A j = -1 zero term expands to an all-zero mask,
 *    never a conditional.
 *
 * On top of those, the pack builds the *code-class panels* the
 * microkernel actually runs on: an n-bit row holds at most
 * 2 * (2^(n-1) - 1) distinct non-zero codes, so each row's columns
 * are grouped by code value at pack time (rowClasses()/colIdx()).
 * The kernel then sums the activation columns of one class with
 * plain adds and applies the class's shift-add (or fixed multiply)
 * ONCE per class instead of once per weight — the weight-stationary
 * LUT-sharing form of the datapath. Zero codes appear in no class
 * and cost nothing at run time. Integer addition is associative, so
 * the regrouped traversal stays bit-exact against the sim cores'
 * per-code order.
 *
 * Plan lifecycle follows the PackedMat contract: ensure() repacks
 * only when the source pointer, shape, version, or bit width changed;
 * concurrent reads are safe, ensure() must run on the orchestrating
 * thread before any parallel region.
 *
 * A pack can also be built straight from canonical codes with
 * loadFromCodes() — the deploy-artifact path (serial/deploy.hh),
 * where no float weights exist in the process. Such a pack is
 * *locked*: ensure() only validates the shape and never re-reads the
 * (absent) float source, so the layers' intForward runs unchanged on
 * top of it.
 */

#ifndef MIXQ_INFER_QPACK_HH
#define MIXQ_INFER_QPACK_HH

#include <cstdint>
#include <span>
#include <vector>

#include "quant/quantizer.hh"
#include "quant/sp2_codec.hh"

namespace mixq {

/**
 * One code class of a packed row: every column of the row that
 * carries the same non-zero code. SP2 classes apply two masked
 * shifts and a sign flip to the class's activation sum; Fixed
 * classes apply one signed multiply (the DSP datapath). begin/end
 * index into PackedQMat::colIdx().
 */
struct QCodeClass
{
    int32_t s1 = 0;      //!< first term shift (0 when absent)
    int32_t s2 = 0;      //!< second term shift (0 when absent)
    uint32_t m1 = 0;     //!< first term mask (~0u when present)
    uint32_t m2 = 0;     //!< second term mask (~0u when present)
    uint32_t neg = 0;    //!< sign mask (~0u for negative codes)
    int32_t fixedMag = 0; //!< signed level for Fixed classes
    uint32_t begin = 0;  //!< first column-index slot
    uint32_t end = 0;    //!< one past the last column-index slot
};

/** One weight matrix packed into its integer inference encoding. */
class PackedQMat
{
  public:
    PackedQMat() = default;

    /**
     * Pack (or reuse) the hard-projected weight matrix @p src
     * [rows x cols, row-major]. @p rowScheme / @p rowAlpha come from
     * the MatrixQuantResult of the projection that produced src and
     * must resolve every row to QuantScheme::Sp2 or QuantScheme::Fixed
     * (Mixed is a per-matrix policy, never a per-row encoding; Pow2
     * has no packed form). Repacks only when src, shape, @p version,
     * or @p bits differ from the current pack — O(1) otherwise.
     * Values off the row's quantization grid panic inside the codec:
     * packing un-projected weights is a caller bug, not a rounding
     * concern.
     */
    void ensure(const float* src, size_t rows, size_t cols,
                uint64_t version, std::span<const QuantScheme> rowScheme,
                std::span<const float> rowAlpha, int bits);

    /**
     * Build the pack directly from canonical codes (the deploy
     * artifact's payload): SP2 rows read @p sp2, Fixed rows read
     * @p fixed, both [rows x cols] row-major with the other scheme's
     * slots ignored. The execution and code-class panels are derived
     * from the codes exactly as repacking from floats would derive
     * them, so a loadFromCodes() of codes saved from an ensure()-built
     * pack reproduces that pack byte for byte. The result is locked:
     * later ensure() calls only validate the shape (there is no float
     * source to watch for staleness).
     */
    void loadFromCodes(size_t rows, size_t cols, int bits,
                       std::span<const QuantScheme> rowScheme,
                       std::span<const float> rowAlpha,
                       std::span<const Sp2Code> sp2,
                       std::span<const int8_t> fixed);

    bool packed() const { return packed_; }
    /** True for packs adopted from a deploy artifact. */
    bool locked() const { return locked_; }
    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    int bits() const { return bits_; }
    /** log2 of the SP2 denominator (K1 of the codec). */
    int denomLog2() const { return denomLog2_; }
    /** Times the source was actually packed (reuse observability). */
    uint64_t packCount() const { return packCount_; }

    /**
     * Total bytes of the pack's owned storage (canonical codes,
     * execution panels, code classes, column indices). The serving
     * memory report sums this over a model's panels to price the
     * shared immutable state replicas reuse.
     */
    size_t byteSize() const;

    QuantScheme rowScheme(size_t r) const { return scheme_[r]; }
    float rowAlpha(size_t r) const { return alpha_[r]; }
    /** Number of SP2-encoded rows. */
    size_t numSp2() const { return numSp2_; }

    /**
     * Dequantization factor of one accumulator row: the integer
     * accumulator times this factor is the real-valued partial
     * product sum (before the activation scale). alpha / 2^K1 for
     * SP2 rows, alpha / (2^(bits-1) - 1) for Fixed rows.
     */
    double rowDequant(size_t r) const;

    /**
     * Canonical SP2 codes, [rows x cols] row-major; Fixed rows hold
     * all-zero codes. This is the span the sim's GemmSp2Core consumes.
     */
    std::span<const Sp2Code> sp2Codes() const { return sp2_; }

    /**
     * Canonical fixed-point levels, [rows x cols] row-major; SP2 rows
     * hold zeros. This is the span GemmFixedCore consumes.
     */
    std::span<const int8_t> fixedCodes() const { return fixed_; }

    // Execution panels ([rows x cols] int32 lanes; see file comment).
    std::span<const int32_t> shift1() const { return s1_; }
    std::span<const int32_t> shift2() const { return s2_; }
    /** 0 when the term is absent (j = -1), ~0u otherwise. */
    std::span<const int32_t> mask1() const { return m1_; }
    std::span<const int32_t> mask2() const { return m2_; }
    /** 0 for positive codes, ~0u for negative (two's-complement flip). */
    std::span<const int32_t> signMask() const { return neg_; }

    // Code-class panels (see file comment) — what qgemm traverses.
    /** Classes of row @p r, in first-appearance column order. */
    std::span<const QCodeClass> rowClasses(size_t r) const
    {
        return {classes_.data() + classOfs_[r],
                classOfs_[r + 1] - classOfs_[r]};
    }
    /** All classes, row-major (byte-comparable across packs). */
    std::span<const QCodeClass> codeClasses() const { return classes_; }
    /** Column indices, grouped per class per row. */
    std::span<const uint32_t> colIdx() const { return colIdx_; }

  private:
    void repack(const float* src,
                std::span<const QuantScheme> rowScheme,
                std::span<const float> rowAlpha);

    /** Derive the SoA and code-class panels from the canonical codes
        (sp2_/fixed_/scheme_ must already be in place). */
    void buildPanels();

    const float* src_ = nullptr;
    size_t rows_ = 0, cols_ = 0;
    uint64_t version_ = 0;
    int bits_ = 0;
    int denomLog2_ = 0;
    bool packed_ = false;
    bool locked_ = false;
    uint64_t packCount_ = 0;
    size_t numSp2_ = 0;

    std::vector<QuantScheme> scheme_; //!< per-row scheme
    std::vector<float> alpha_;        //!< per-row scale
    std::vector<Sp2Code> sp2_;        //!< canonical SP2 codes
    std::vector<int8_t> fixed_;       //!< canonical fixed levels
    std::vector<int32_t> s1_, s2_, m1_, m2_, neg_; //!< SoA panels
    std::vector<QCodeClass> classes_; //!< row-major code classes
    std::vector<size_t> classOfs_;    //!< [rows+1] class offsets
    std::vector<uint32_t> colIdx_;    //!< class-grouped column indices
};

} // namespace mixq

#endif // MIXQ_INFER_QPACK_HH
