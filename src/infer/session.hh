/**
 * @file
 * Backend selection for deployment-style inference: walk a trained
 * module tree and route every quantized layer onto one of three
 * execution paths —
 *
 *  - Float: activation quantizers off, float GEMMs over whatever the
 *    weights currently hold (hard-projected values after finalize).
 *  - FakeQuant: the QAT eval path — float GEMMs over projected
 *    weights with activations fake-quantized through the frozen
 *    clip ranges.
 *  - Int: the real thing — weights bit-packed into PackedQMat
 *    panels, activations quantized to integer codes, shift-add /
 *    int-MAC accumulation and a final rescale (infer/qkernels.hh).
 *
 * Switching backends never re-runs calibration: Float merely
 * disables the activation quantizers (their observed alphas are
 * kept), so a session can flip between all three backends on the
 * same trained model and compare outputs.
 *
 * A session can also be built from a deploy artifact
 * (serial/deploy.hh) and a freshly constructed model of the same
 * architecture: the packed codes load directly into locked PackedQMat
 * panels and the session is pinned to the Int backend — no float
 * weights, quantizer, or QatContext exist in the process.
 */

#ifndef MIXQ_INFER_SESSION_HH
#define MIXQ_INFER_SESSION_HH

#include <cstddef>

#include "nn/module.hh"
#include "nn/trainer.hh"

namespace mixq {

class Linear;
class Conv2d;
class DwConv2d;
class Lstm;
class Gru;

/** Inference execution path (see file comment). */
enum class InferBackend
{
    Float,     //!< float GEMMs, activation quantizers disabled
    FakeQuant, //!< float GEMMs, fake-quantized activations
    Int,       //!< packed shift-add integer backend
};

/**
 * Find the QAT record of @p p, or null if the parameter was never
 * attached (e.g. a bias). The Int backend needs the projection
 * record (row schemes and alphas) that hard quantization produced.
 */
const QatContext::Entry* findQatEntry(const QatContext& qat,
                                      const Param* p);

/**
 * Recursively apply @p backend to every quantized layer under
 * @p root (Linear, Conv2d, DwConv2d, Lstm, Gru). Returns the number
 * of layers switched onto the requested backend.
 *
 * Int requires @p qat non-null and finalized — the packed panels
 * encode the projection's row schemes/alphas, so the weights must
 * already hold their hard-projected values. Panics if a quantizable
 * layer has no QAT record.
 */
size_t applyInferBackend(Module& root, InferBackend backend,
                         const QatContext* qat);

/** Per-layer appliers (used by the recursion and the RNN models). */
void applyInferBackendLinear(Linear& l, InferBackend backend,
                             const QatContext* qat);
void applyInferBackendConv(Conv2d& c, InferBackend backend,
                           const QatContext* qat);
void applyInferBackendDwConv(DwConv2d& d, InferBackend backend,
                             const QatContext* qat);
void applyInferBackendLstm(Lstm& l, InferBackend backend,
                           const QatContext* qat);
void applyInferBackendGru(Gru& g, InferBackend backend,
                          const QatContext* qat);

/**
 * A trained model plus a selected execution backend. Construction
 * applies the backend; setBackend re-applies on the fly. run() is an
 * eval forward (train == false), which on the Int backend executes
 * the integer pipeline end to end.
 */
class InferenceSession
{
  public:
    InferenceSession(Module& model, const QatContext* qat,
                     InferBackend backend);

    /**
     * Serve-from-artifact construction: load the deploy artifact at
     * @p artifactPath into the freshly built @p model
     * (serial/deploy.hh loadDeployArtifact) and pin the session to
     * the Int backend. layersSwitched() reports the number of packed
     * weight matrices adopted. The session cannot leave Int — the
     * process holds no float weights to fall back to.
     */
    InferenceSession(Module& model, const std::string& artifactPath);

    /** Re-route the model onto @p backend (fatal when
        artifact-backed and @p backend is not Int). */
    void setBackend(InferBackend backend);
    InferBackend backend() const { return backend_; }

    /** Quantized layers switched by the last backend application. */
    size_t layersSwitched() const { return switched_; }

    /** Eval forward through the selected backend. */
    Tensor run(const Tensor& x);

  private:
    Module* model_;
    const QatContext* qat_;
    InferBackend backend_;
    size_t switched_ = 0;
    bool artifactBacked_ = false;
};

} // namespace mixq

#endif // MIXQ_INFER_SESSION_HH
