#include "infer/session.hh"

#include "nn/layers.hh"
#include "nn/rnn.hh"
#include "serial/deploy.hh"
#include "util/logging.hh"

namespace mixq {

namespace {

/**
 * Resolve the projection record a layer's weight must have for the
 * Int backend; panics when the model and the QAT context disagree.
 */
const MatrixQuantResult&
requireProj(const QatContext* qat, const Param& p)
{
    MIXQ_ASSERT(qat != nullptr,
                "Int backend needs the QatContext that projected the "
                "weights");
    MIXQ_ASSERT(qat->finalized(),
                "Int backend needs hard-projected weights: call "
                "QatContext::finalize() first");
    const QatContext::Entry* e = findQatEntry(*qat, &p);
    MIXQ_ASSERT(e != nullptr, "no QAT record for quantized weight");
    return e->proj;
}

} // namespace

const QatContext::Entry*
findQatEntry(const QatContext& qat, const Param* p)
{
    for (const QatContext::Entry& e : qat.entries())
        if (e.p == p)
            return &e;
    return nullptr;
}

void
applyInferBackendLinear(Linear& l, InferBackend backend,
                        const QatContext* qat)
{
    switch (backend) {
    case InferBackend::Float:
        l.disableIntInference();
        l.actQuant().setEnabled(false);
        break;
    case InferBackend::FakeQuant:
        l.disableIntInference();
        l.actQuant().setEnabled(true);
        break;
    case InferBackend::Int:
        l.actQuant().setEnabled(true);
        l.enableIntInference(requireProj(qat, l.weight()),
                             qat->config().bits);
        break;
    }
}

void
applyInferBackendConv(Conv2d& c, InferBackend backend,
                      const QatContext* qat)
{
    switch (backend) {
    case InferBackend::Float:
        c.disableIntInference();
        c.actQuant().setEnabled(false);
        break;
    case InferBackend::FakeQuant:
        c.disableIntInference();
        c.actQuant().setEnabled(true);
        break;
    case InferBackend::Int:
        c.actQuant().setEnabled(true);
        c.enableIntInference(requireProj(qat, c.weight()),
                             qat->config().bits);
        break;
    }
}

void
applyInferBackendDwConv(DwConv2d& d, InferBackend backend,
                        const QatContext* qat)
{
    switch (backend) {
    case InferBackend::Float:
        d.disableIntInference();
        d.actQuant().setEnabled(false);
        break;
    case InferBackend::FakeQuant:
        d.disableIntInference();
        d.actQuant().setEnabled(true);
        break;
    case InferBackend::Int:
        d.actQuant().setEnabled(true);
        d.enableIntInference(requireProj(qat, d.weight()),
                             qat->config().bits);
        break;
    }
}

void
applyInferBackendLstm(Lstm& l, InferBackend backend,
                      const QatContext* qat)
{
    switch (backend) {
    case InferBackend::Float:
        l.disableIntInference();
        l.inputQuant().setEnabled(false);
        l.hiddenQuant().setEnabled(false);
        break;
    case InferBackend::FakeQuant:
        l.disableIntInference();
        l.inputQuant().setEnabled(true);
        l.hiddenQuant().setEnabled(true);
        break;
    case InferBackend::Int:
        l.inputQuant().setEnabled(true);
        l.hiddenQuant().setEnabled(true);
        l.enableIntInference(requireProj(qat, l.wxParam()),
                             requireProj(qat, l.whParam()),
                             qat->config().bits);
        break;
    }
}

void
applyInferBackendGru(Gru& g, InferBackend backend,
                     const QatContext* qat)
{
    switch (backend) {
    case InferBackend::Float:
        g.disableIntInference();
        g.inputQuant().setEnabled(false);
        g.hiddenQuant().setEnabled(false);
        break;
    case InferBackend::FakeQuant:
        g.disableIntInference();
        g.inputQuant().setEnabled(true);
        g.hiddenQuant().setEnabled(true);
        break;
    case InferBackend::Int:
        g.inputQuant().setEnabled(true);
        g.hiddenQuant().setEnabled(true);
        g.enableIntInference(requireProj(qat, g.wxParam()),
                             requireProj(qat, g.whParam()),
                             qat->config().bits);
        break;
    }
}

size_t
applyInferBackend(Module& root, InferBackend backend,
                  const QatContext* qat)
{
    size_t switched = 0;
    if (auto* l = dynamic_cast<Linear*>(&root)) {
        applyInferBackendLinear(*l, backend, qat);
        ++switched;
    } else if (auto* c = dynamic_cast<Conv2d*>(&root)) {
        applyInferBackendConv(*c, backend, qat);
        ++switched;
    } else if (auto* lstm = dynamic_cast<Lstm*>(&root)) {
        applyInferBackendLstm(*lstm, backend, qat);
        ++switched;
    } else if (auto* gru = dynamic_cast<Gru*>(&root)) {
        applyInferBackendGru(*gru, backend, qat);
        ++switched;
    } else if (auto* dw = dynamic_cast<DwConv2d*>(&root)) {
        applyInferBackendDwConv(*dw, backend, qat);
        ++switched;
    }
    for (Module* child : root.children())
        switched += applyInferBackend(*child, backend, qat);
    return switched;
}

InferenceSession::InferenceSession(Module& model, const QatContext* qat,
                                   InferBackend backend)
    : model_(&model), qat_(qat), backend_(backend)
{
    switched_ = applyInferBackend(*model_, backend_, qat_);
}

InferenceSession::InferenceSession(Module& model,
                                   const std::string& artifactPath)
    : model_(&model), qat_(nullptr), backend_(InferBackend::Int),
      artifactBacked_(true)
{
    // loadDeployArtifact adopts every packed matrix into its layer's
    // locked panels and restores the activation calibrations — the
    // layers already run the integer path, no backend walk needed.
    switched_ = loadDeployArtifact(artifactPath, *model_);
}

void
InferenceSession::setBackend(InferBackend backend)
{
    if (artifactBacked_ && backend != InferBackend::Int)
        fatal("artifact-backed session is pinned to the Int backend: "
              "the process holds packed integer codes only, no float "
              "weights to serve " + std::string(backend ==
              InferBackend::Float ? "Float" : "FakeQuant") + " from");
    backend_ = backend;
    if (artifactBacked_)
        return;
    switched_ = applyInferBackend(*model_, backend_, qat_);
}

Tensor
InferenceSession::run(const Tensor& x)
{
    return model_->forward(x, /*train=*/false);
}

} // namespace mixq
