/**
 * @file
 * Integer microkernels of the inference backend: the
 * quantize-activations -> int-accumulate -> rescale pipeline that
 * executes the paper's arithmetic for real.
 *
 * The accumulate step mirrors the simulator cores bit for bit
 * (sim/gemm_core.hh): SP2 rows compute every product as two logic
 * shifts and an add — there is no multiply on the SP2 weight path in
 * this translation unit by construction — and Fixed rows run a plain
 * signed MAC. The kernel walks each row's code classes (qpack.hh):
 * the activation columns of one class are summed with plain adds and
 * the class's shift-add (or fixed multiply) applies once to the sum.
 * Integer wraparound addition is associative and commutative, so the
 * regrouped order produces accumulators bit-identical to the sim
 * cores' ascending-j order, and bit-identical across any
 * OMP_NUM_THREADS split. tests/infer_test.cc pins both properties.
 *
 * All shift/negate arithmetic runs in uint32 and is reinterpreted to
 * int32: identical bits to the sim cores' signed ops on every
 * non-overflowing input, with fully defined wraparound under
 * ASan/UBSan for the rest.
 *
 * Activations enter as integer *codes* — the
 * nearbyint(clamp(x) * scale) that ActFakeQuant::quantizeOnly rounds
 * to before dequantizing — laid out transposed, [k x P] with the
 * reduction dimension outer. P (batch for Linear/RNN steps, OH*OW for
 * conv) is then the contiguous inner loop, so the shift amounts are
 * loop-invariant per weight and the kernel vectorizes over the
 * activation lanes. Codes are carried as int32, or as int16
 * *halfwords* on the fast path (qgemm16): when
 * maxAbs * cols <= INT16_MAX (halfwordSafe) no class sum can leave
 * int16, the packed lanes halve the load traffic and double the
 * vector width, and widening the exact class sum to int32 for the
 * apply step reproduces the int32 path bit for bit.
 */

#ifndef MIXQ_INFER_QKERNELS_HH
#define MIXQ_INFER_QKERNELS_HH

#include <cstdint>
#include <cstddef>

#include "infer/qpack.hh"

namespace mixq {

class ActFakeQuant;

/**
 * Frozen snapshot of one ActFakeQuant's quantization transfer
 * function, precomputed with the exact float32 scale/clip values
 * quantizeOnly uses — integer codes times invScale reproduce the
 * fake-quantized floats bit for bit.
 */
struct ActQuantParams
{
    float lo = 0.0f;       //!< clip low (0 unsigned, -alpha signed)
    float hi = 0.0f;       //!< clip high (alpha)
    float scale = 0.0f;    //!< float(levels / alpha)
    float invScale = 0.0f; //!< float(alpha / levels)
    int32_t maxAbs = 0;    //!< largest |code| the clip range admits
};

/**
 * Snapshot @p aq for the integer pipeline. Panics unless the
 * quantizer is enabled and calibrated — an uncalibrated quantizer has
 * no clip range, and quantizeOnly's silent pass-through has no
 * integer analogue.
 */
ActQuantParams actQuantParams(const ActFakeQuant& aq);

/** q[i] = round-to-nearest-even integer code of x[i] under @p p. */
void quantizeActsInt(const float* x, int32_t* q, size_t n,
                     const ActQuantParams& p);
void quantizeActsInt(const float* x, int16_t* q, size_t n,
                     const ActQuantParams& p);

/**
 * True when every possible class sum over @p cols codes fits int16,
 * i.e. the halfword pipeline (int16 codes + qgemm16) is exact.
 */
bool halfwordSafe(const ActQuantParams& p, size_t cols);

/** Transpose a [rows x cols] int32 matrix into dst [cols x rows]. */
void transposeInt32(const int32_t* src, int32_t* dst, size_t rows,
                    size_t cols);

/**
 * Fused quantize + transpose: x [n x k] floats straight into the
 * transposed code layout qT [k x n], one pass, no intermediate
 * buffer. Both code widths; the int16 overload requires
 * halfwordSafe (codes themselves always fit int16, the bound is
 * about downstream class sums).
 */
void quantizeTransposeActs(const float* x, size_t n, size_t k,
                           const ActQuantParams& p, int32_t* qT);
void quantizeTransposeActs(const float* x, size_t n, size_t k,
                           const ActQuantParams& p, int16_t* qT);

/**
 * im2col over an integer-code image: input [C, H, W] codes to
 * columns [C*kh*kw, OH*OW] — the transposed-activation layout qgemm
 * consumes directly. Identical index arithmetic to the float im2col
 * (nn/gemm.hh); zero padding emits code 0, which is exactly the
 * quantized code of input 0 for both signed and unsigned ranges.
 * Both code widths.
 */
void im2colInt(const int32_t* img, size_t c, size_t h, size_t w,
               size_t kh, size_t kw, size_t stride, size_t pad,
               int32_t* cols);
void im2colInt(const int16_t* img, size_t c, size_t h, size_t w,
               size_t kh, size_t kw, size_t stride, size_t pad,
               int16_t* cols);

/**
 * acc[r][p] = sum_j w[r][j] (x) actsT[j][p] over the whole reduction
 * dimension, int32 accumulators, [rows x P] row-major. SP2 rows use
 * the shift-add path (accumulators are in the codec's 2^K1-scaled
 * units), Fixed rows the MAC path. Parallelizes over output rows
 * unless already inside an OpenMP region; row results are
 * independent, so the split never changes a bit.
 */
void qgemm(const PackedQMat& w, const int32_t* actsT, size_t p,
           int32_t* acc);

/**
 * Halfword fast path of qgemm: identical contract and bit-identical
 * accumulators, activations carried as int16 codes. Caller must
 * check halfwordSafe(params, w.cols()) — class sums overflowing
 * int16 would silently wrap.
 */
void qgemm16(const PackedQMat& w, const int16_t* actsT, size_t p,
             int32_t* acc);

/** One output row of qgemm (overwrites accRow[0..p)). */
void qgemmRow(const PackedQMat& w, size_t r, const int32_t* actsT,
              size_t p, int32_t* accRow);

/** One output row of qgemm16 (overwrites accRow[0..p)). */
void qgemmRow16(const PackedQMat& w, size_t r, const int16_t* actsT,
                size_t p, int32_t* accRow);

/**
 * Rescale Linear-shaped accumulators [rows x P] into floats
 * y [P x rows]: y[q][r] = float(acc[r][q] * rowDequant(r) *
 * actInvScale) + bias[r] (bias optional). The per-row factor is
 * carried in double so the only float roundings are the ones the
 * fake-quant float path also pays at its output.
 */
void rescaleLinear(const PackedQMat& w, const int32_t* acc, size_t p,
                   float actInvScale, const float* bias, float* y);

/**
 * Allocation-free rescaleLinear: @p fScratch must hold w.rows()
 * doubles (the per-row dequant factors are staged there instead of a
 * per-call vector). Bit-identical to the allocating overload — the
 * serving executor's steady-state path.
 */
void rescaleLinear(const PackedQMat& w, const int32_t* acc, size_t p,
                   float actInvScale, const float* bias, float* y,
                   double* fScratch);

/**
 * Rescale conv-shaped accumulators [rows x P] into channel-major
 * floats y [rows x P] (rows = output channels, P = OH*OW).
 */
void rescaleConv(const PackedQMat& w, const int32_t* acc, size_t p,
                 float actInvScale, const float* bias, float* y);

} // namespace mixq

#endif // MIXQ_INFER_QKERNELS_HH
