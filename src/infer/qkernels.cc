#include "infer/qkernels.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "nn/gemm.hh"
#include "nn/gemm_backend.hh"
#include "quant/act_quant.hh"
#include "util/logging.hh"

namespace mixq {

ActQuantParams
actQuantParams(const ActFakeQuant& aq)
{
    MIXQ_ASSERT(aq.enabled() && aq.calibrated(),
                "int backend needs an enabled, calibrated activation "
                "quantizer (run a calibration forward pass first)");
    // Same double-to-float conversion sequence as quantizeOnly, so
    // code * invScale reproduces the fake-quantized float exactly.
    double levels = aq.isSigned()
                        ? double((1 << (aq.bits() - 1)) - 1)
                        : double((1 << aq.bits()) - 1);
    ActQuantParams p;
    p.hi = float(aq.alpha());
    p.lo = aq.isSigned() ? -p.hi : 0.0f;
    p.scale = float(levels / aq.alpha());
    p.invScale = float(aq.alpha() / levels);
    p.maxAbs = int32_t(levels);
    return p;
}

bool
halfwordSafe(const ActQuantParams& p, size_t cols)
{
    MIXQ_ASSERT(p.maxAbs > 0, "halfwordSafe: empty code range");
    return size_t(p.maxAbs) * cols <= size_t(INT16_MAX);
}

void
quantizeActsInt(const float* x, int32_t* q, size_t n,
                const ActQuantParams& p)
{
    const float lo = p.lo, hi = p.hi, scale = p.scale;
    #pragma omp simd
    for (size_t i = 0; i < n; ++i) {
        float c = std::clamp(x[i], lo, hi);
        q[i] = int32_t(std::nearbyint(c * scale));
    }
}

void
quantizeActsInt(const float* x, int16_t* q, size_t n,
                const ActQuantParams& p)
{
    const float lo = p.lo, hi = p.hi, scale = p.scale;
    #pragma omp simd
    for (size_t i = 0; i < n; ++i) {
        float c = std::clamp(x[i], lo, hi);
        q[i] = int16_t(int32_t(std::nearbyint(c * scale)));
    }
}

void
transposeInt32(const int32_t* src, int32_t* dst, size_t rows,
               size_t cols)
{
    for (size_t i = 0; i < rows; ++i)
        for (size_t j = 0; j < cols; ++j)
            dst[j * rows + i] = src[i * cols + j];
}

namespace {

template <typename T>
void
quantizeTransposeActsT(const float* x, size_t n, size_t k,
                       const ActQuantParams& p, T* qT)
{
    const float lo = p.lo, hi = p.hi, scale = p.scale;
    for (size_t i = 0; i < n; ++i) {
        const float* xi = x + i * k;
        for (size_t j = 0; j < k; ++j) {
            float c = std::clamp(xi[j], lo, hi);
            qT[j * n + i] = T(int32_t(std::nearbyint(c * scale)));
        }
    }
}

template <typename T>
void
im2colIntT(const T* img, size_t c, size_t h, size_t w, size_t kh,
           size_t kw, size_t stride, size_t pad, T* cols)
{
    size_t oh = convOut(h, kh, stride, pad);
    size_t ow = convOut(w, kw, stride, pad);
    size_t ncols = oh * ow;
    size_t row = 0;
    for (size_t ch = 0; ch < c; ++ch) {
        for (size_t ki = 0; ki < kh; ++ki) {
            for (size_t kj = 0; kj < kw; ++kj, ++row) {
                T* dst = cols + row * ncols;
                for (size_t oy = 0; oy < oh; ++oy) {
                    long iy = long(oy * stride + ki) - long(pad);
                    for (size_t ox = 0; ox < ow; ++ox) {
                        long ix = long(ox * stride + kj) - long(pad);
                        T v = 0;
                        if (iy >= 0 && iy < long(h) && ix >= 0 &&
                            ix < long(w)) {
                            v = img[(ch * h + size_t(iy)) * w +
                                    size_t(ix)];
                        }
                        dst[oy * ow + ox] = v;
                    }
                }
            }
        }
    }
}

} // namespace

void
quantizeTransposeActs(const float* x, size_t n, size_t k,
                      const ActQuantParams& p, int32_t* qT)
{
    quantizeTransposeActsT(x, n, k, p, qT);
}

void
quantizeTransposeActs(const float* x, size_t n, size_t k,
                      const ActQuantParams& p, int16_t* qT)
{
    quantizeTransposeActsT(x, n, k, p, qT);
}

void
im2colInt(const int16_t* img, size_t c, size_t h, size_t w,
          size_t kh, size_t kw, size_t stride, size_t pad,
          int16_t* cols)
{
    im2colIntT(img, c, h, w, kh, kw, stride, pad, cols);
}

void
im2colInt(const int32_t* img, size_t c, size_t h, size_t w,
          size_t kh, size_t kw, size_t stride, size_t pad,
          int32_t* cols)
{
    im2colIntT(img, c, h, w, kh, kw, stride, pad, cols);
}

namespace {

/**
 * One register-resident lane tile of the class traversal: P batch
 * lanes of one output row. P is a compile-time width so the class
 * sum and the row accumulator never leave registers — the column
 * loop is then one vector load + one vector add per code. @p lda is
 * the full batch stride of the transposed activations.
 */
template <size_t P>
void
qgemmRowTile(std::span<const QCodeClass> classes, const uint32_t* idx,
             bool sp2, const int32_t* actsT, size_t lda,
             int32_t* accRow)
{
    int32_t acc[P] = {};
    for (const QCodeClass& c : classes) {
        // Two interleaved partial sums keep both load ports busy;
        // wrap-around integer addition is commutative, so merging
        // them preserves bit-exactness. The simd pragmas pin
        // vectorization to the P contiguous lanes (one vector load +
        // add per column); without them the auto-vectorizer targets
        // the column loop and emits per-lane gathers, an order of
        // magnitude slower.
        int32_t sum[P] = {}, sumB[P] = {};
        uint32_t t = c.begin;
        for (; t + 2 <= c.end; t += 2) {
            const int32_t* a0 = actsT + size_t(idx[t]) * lda;
            const int32_t* a1 = actsT + size_t(idx[t + 1]) * lda;
            #pragma omp simd
            for (size_t q = 0; q < P; ++q) {
                sum[q] = int32_t(uint32_t(sum[q]) + uint32_t(a0[q]));
                sumB[q] =
                    int32_t(uint32_t(sumB[q]) + uint32_t(a1[q]));
            }
        }
        if (t < c.end) {
            const int32_t* a0 = actsT + size_t(idx[t]) * lda;
            #pragma omp simd
            for (size_t q = 0; q < P; ++q)
                sum[q] = int32_t(uint32_t(sum[q]) + uint32_t(a0[q]));
        }
        #pragma omp simd
        for (size_t q = 0; q < P; ++q)
            sum[q] = int32_t(uint32_t(sum[q]) + uint32_t(sumB[q]));
        if (sp2) {
            uint32_t sh1 = uint32_t(c.s1);
            uint32_t sh2 = uint32_t(c.s2);
            for (size_t q = 0; q < P; ++q) {
                uint32_t u = uint32_t(sum[q]);
                uint32_t v =
                    ((u << sh1) & c.m1) + ((u << sh2) & c.m2);
                acc[q] = int32_t(uint32_t(acc[q]) +
                                 ((v ^ c.neg) - c.neg));
            }
        } else {
            uint32_t uw = uint32_t(c.fixedMag);
            for (size_t q = 0; q < P; ++q)
                acc[q] = int32_t(uint32_t(acc[q]) +
                                 uw * uint32_t(sum[q]));
        }
    }
    for (size_t q = 0; q < P; ++q)
        accRow[q] = acc[q];
}

/**
 * Halfword lane tile: same traversal as qgemmRowTile with the class
 * sums carried in int16 — half the load traffic, twice the lanes per
 * vector op. The caller guarantees (halfwordSafe) that no class sum
 * can overflow int16; the exact sum then widens to int32 for the
 * apply step, bit-identical to the int32 tile. The int16 adds go
 * through int promotion and truncate back, which is wraparound-
 * defined and never wraps under the caller's bound.
 */
template <size_t P>
void
qgemmRowTile16(std::span<const QCodeClass> classes,
               const uint32_t* idx, bool sp2, const int16_t* actsT,
               size_t lda, int32_t* accRow)
{
    int32_t acc[P] = {};
    for (const QCodeClass& c : classes) {
        int16_t sum[P] = {}, sumB[P] = {};
        uint32_t t = c.begin;
        for (; t + 2 <= c.end; t += 2) {
            const int16_t* a0 = actsT + size_t(idx[t]) * lda;
            const int16_t* a1 = actsT + size_t(idx[t + 1]) * lda;
            #pragma omp simd
            for (size_t q = 0; q < P; ++q) {
                sum[q] = int16_t(sum[q] + a0[q]);
                sumB[q] = int16_t(sumB[q] + a1[q]);
            }
        }
        if (t < c.end) {
            const int16_t* a0 = actsT + size_t(idx[t]) * lda;
            #pragma omp simd
            for (size_t q = 0; q < P; ++q)
                sum[q] = int16_t(sum[q] + a0[q]);
        }
        // Widen the exact int16 class sum in its own pass: mixing
        // the short->word conversion into the shift/mask apply loop
        // defeats the vectorizer ("relevant stmt not supported"),
        // while a lone conversion loop and the int32-only apply
        // loops below each vectorize at full width.
        int32_t wide[P];
        #pragma omp simd
        for (size_t q = 0; q < P; ++q)
            wide[q] = int32_t(int16_t(sum[q] + sumB[q]));
        if (sp2) {
            uint32_t sh1 = uint32_t(c.s1);
            uint32_t sh2 = uint32_t(c.s2);
            #pragma omp simd
            for (size_t q = 0; q < P; ++q) {
                uint32_t u = uint32_t(wide[q]);
                uint32_t v =
                    ((u << sh1) & c.m1) + ((u << sh2) & c.m2);
                acc[q] = int32_t(uint32_t(acc[q]) +
                                 ((v ^ c.neg) - c.neg));
            }
        } else {
            uint32_t uw = uint32_t(c.fixedMag);
            #pragma omp simd
            for (size_t q = 0; q < P; ++q)
                acc[q] = int32_t(uint32_t(acc[q]) +
                                 uw * uint32_t(wide[q]));
        }
    }
    for (size_t q = 0; q < P; ++q)
        accRow[q] = acc[q];
}

} // namespace

void
qgemmRow(const PackedQMat& w, size_t r, const int32_t* actsT,
         size_t p, int32_t* accRow)
{
    // Weight-stationary class traversal (see qpack.hh): sum the
    // activation columns of one code class with plain adds, then
    // apply that class's code ONCE to the sum — two masked shifts
    // and a sign flip for SP2 classes (Sp2Code::apply's value, no
    // multiply), one signed multiply for Fixed classes (the DSP
    // datapath). Integer addition is associative, so the regrouped,
    // tiled traversal is bit-exact against the sim cores' per-code
    // order for every lane split.
    auto classes = w.rowClasses(r);
    const uint32_t* idx = w.colIdx().data();
    bool sp2 = w.rowScheme(r) == QuantScheme::Sp2;
    size_t q0 = 0;
    while (p - q0 >= 32) {
        qgemmRowTile<32>(classes, idx, sp2, actsT + q0, p,
                         accRow + q0);
        q0 += 32;
    }
    if (p - q0 >= 16) {
        qgemmRowTile<16>(classes, idx, sp2, actsT + q0, p,
                         accRow + q0);
        q0 += 16;
    }
    if (p - q0 >= 8) {
        qgemmRowTile<8>(classes, idx, sp2, actsT + q0, p, accRow + q0);
        q0 += 8;
    }
    if (p - q0 >= 4) {
        qgemmRowTile<4>(classes, idx, sp2, actsT + q0, p, accRow + q0);
        q0 += 4;
    }
    if (p - q0 >= 2) {
        qgemmRowTile<2>(classes, idx, sp2, actsT + q0, p, accRow + q0);
        q0 += 2;
    }
    if (p - q0 >= 1)
        qgemmRowTile<1>(classes, idx, sp2, actsT + q0, p, accRow + q0);
}

void
qgemmRow16(const PackedQMat& w, size_t r, const int16_t* actsT,
           size_t p, int32_t* accRow)
{
    auto classes = w.rowClasses(r);
    const uint32_t* idx = w.colIdx().data();
    bool sp2 = w.rowScheme(r) == QuantScheme::Sp2;
    size_t q0 = 0;
    while (p - q0 >= 32) {
        qgemmRowTile16<32>(classes, idx, sp2, actsT + q0, p,
                           accRow + q0);
        q0 += 32;
    }
    if (p - q0 >= 16) {
        qgemmRowTile16<16>(classes, idx, sp2, actsT + q0, p,
                           accRow + q0);
        q0 += 16;
    }
    if (p - q0 >= 8) {
        qgemmRowTile16<8>(classes, idx, sp2, actsT + q0, p,
                          accRow + q0);
        q0 += 8;
    }
    if (p - q0 >= 4) {
        qgemmRowTile16<4>(classes, idx, sp2, actsT + q0, p,
                          accRow + q0);
        q0 += 4;
    }
    if (p - q0 >= 2) {
        qgemmRowTile16<2>(classes, idx, sp2, actsT + q0, p,
                          accRow + q0);
        q0 += 2;
    }
    if (p - q0 >= 1)
        qgemmRowTile16<1>(classes, idx, sp2, actsT + q0, p,
                          accRow + q0);
}

void
qgemm(const PackedQMat& w, const int32_t* actsT, size_t p,
      int32_t* acc)
{
    MIXQ_ASSERT(w.packed(), "qgemm: weight matrix not packed");
    long rows = long(w.rows());
    #pragma omp parallel for schedule(static) if (!inOmpParallel())
    for (long r = 0; r < rows; ++r)
        qgemmRow(w, size_t(r), actsT, p, acc + size_t(r) * p);
}

void
qgemm16(const PackedQMat& w, const int16_t* actsT, size_t p,
        int32_t* acc)
{
    MIXQ_ASSERT(w.packed(), "qgemm16: weight matrix not packed");
    long rows = long(w.rows());
    #pragma omp parallel for schedule(static) if (!inOmpParallel())
    for (long r = 0; r < rows; ++r)
        qgemmRow16(w, size_t(r), actsT, p, acc + size_t(r) * p);
}

void
rescaleLinear(const PackedQMat& w, const int32_t* acc, size_t p,
              float actInvScale, const float* bias, float* y)
{
    size_t rows = w.rows();
    std::vector<double> f(rows);
    rescaleLinear(w, acc, p, actInvScale, bias, y, f.data());
}

void
rescaleLinear(const PackedQMat& w, const int32_t* acc, size_t p,
              float actInvScale, const float* bias, float* y,
              double* fScratch)
{
    size_t rows = w.rows();
    double* f = fScratch;
    for (size_t r = 0; r < rows; ++r)
        f[r] = w.rowDequant(r) * double(actInvScale);
    #pragma omp parallel for schedule(static) if (!inOmpParallel())
    for (long q = 0; q < long(p); ++q) {
        float* yq = y + size_t(q) * rows;
        for (size_t r = 0; r < rows; ++r) {
            float v = float(double(acc[r * p + size_t(q)]) * f[r]);
            yq[r] = bias ? v + bias[r] : v;
        }
    }
}

void
rescaleConv(const PackedQMat& w, const int32_t* acc, size_t p,
            float actInvScale, const float* bias, float* y)
{
    size_t rows = w.rows();
    for (size_t r = 0; r < rows; ++r) {
        double f = w.rowDequant(r) * double(actInvScale);
        float b = bias ? bias[r] : 0.0f;
        const int32_t* ar = acc + r * p;
        float* yr = y + r * p;
        #pragma omp simd
        for (size_t q = 0; q < p; ++q)
            yr[q] = float(double(ar[q]) * f) + b;
    }
}

} // namespace mixq
