#include "infer/qpack.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mixq {

void
PackedQMat::ensure(const float* src, size_t rows, size_t cols,
                   uint64_t version,
                   std::span<const QuantScheme> rowScheme,
                   std::span<const float> rowAlpha, int bits)
{
    MIXQ_ASSERT(rows > 0 && cols > 0, "PackedQMat: empty matrix");
    MIXQ_ASSERT(bits >= 2 && bits <= 8,
                "PackedQMat: weight bits out of the int8 deploy range");
    if (locked_) {
        // Deploy-loaded panels have no float source: the Param behind
        // @p src carries no trained weights, so the only meaningful
        // check is that the caller's layer still has the artifact's
        // shape.
        MIXQ_ASSERT(rows_ == rows && cols_ == cols && bits_ == bits,
                    "PackedQMat: locked pack reused with a different "
                    "shape");
        return;
    }
    MIXQ_ASSERT(rowScheme.size() == rows && rowAlpha.size() == rows,
                "PackedQMat: projection metadata does not match rows");
    if (packed_ && src_ == src && rows_ == rows && cols_ == cols &&
        version_ == version && bits_ == bits)
        return;
    src_ = src;
    rows_ = rows;
    cols_ = cols;
    version_ = version;
    bits_ = bits;
    repack(src, rowScheme, rowAlpha);
    packed_ = true;
    ++packCount_;
}

void
PackedQMat::loadFromCodes(size_t rows, size_t cols, int bits,
                          std::span<const QuantScheme> rowScheme,
                          std::span<const float> rowAlpha,
                          std::span<const Sp2Code> sp2,
                          std::span<const int8_t> fixed)
{
    MIXQ_ASSERT(rows > 0 && cols > 0, "PackedQMat: empty matrix");
    MIXQ_ASSERT(bits >= 2 && bits <= 8,
                "PackedQMat: weight bits out of the int8 deploy range");
    MIXQ_ASSERT(rowScheme.size() == rows && rowAlpha.size() == rows,
                "PackedQMat: code metadata does not match rows");
    MIXQ_ASSERT(sp2.size() == rows * cols &&
                    fixed.size() == rows * cols,
                "PackedQMat: code panel size mismatch");
    src_ = nullptr;
    rows_ = rows;
    cols_ = cols;
    version_ = 0;
    bits_ = bits;
    denomLog2_ = Sp2Codec(bits).denomLog2();
    scheme_.assign(rowScheme.begin(), rowScheme.end());
    alpha_.assign(rowAlpha.begin(), rowAlpha.end());
    sp2_.assign(sp2.begin(), sp2.end());
    fixed_.assign(fixed.begin(), fixed.end());
    numSp2_ = 0;
    for (size_t r = 0; r < rows_; ++r) {
        MIXQ_ASSERT(alpha_[r] > 0.0f,
                    "PackedQMat: non-positive row alpha");
        if (scheme_[r] == QuantScheme::Sp2)
            ++numSp2_;
        else
            MIXQ_ASSERT(scheme_[r] == QuantScheme::Fixed,
                        "PackedQMat: row scheme must be Sp2 or Fixed");
    }
    buildPanels();
    packed_ = true;
    locked_ = true;
    ++packCount_;
}

void
PackedQMat::repack(const float* src,
                   std::span<const QuantScheme> rowScheme,
                   std::span<const float> rowAlpha)
{
    Sp2Codec codec(bits_);
    denomLog2_ = codec.denomLog2();
    size_t len = rows_ * cols_;
    scheme_.assign(rowScheme.begin(), rowScheme.end());
    alpha_.assign(rowAlpha.begin(), rowAlpha.end());
    sp2_.assign(len, Sp2Code{});
    fixed_.assign(len, 0);
    numSp2_ = 0;

    // Encode the canonical codes; the execution panels are derived
    // from them afterwards (buildPanels), exactly as a deploy-loaded
    // pack derives them — one code -> panel function for both paths.
    for (size_t r = 0; r < rows_; ++r) {
        float a = alpha_[r];
        MIXQ_ASSERT(a > 0.0f, "PackedQMat: non-positive row alpha");
        const float* w = src + r * cols_;
        if (rowScheme[r] == QuantScheme::Sp2) {
            ++numSp2_;
            for (size_t j = 0; j < cols_; ++j)
                sp2_[r * cols_ + j] = codec.encode(w[j], a);
        } else if (rowScheme[r] == QuantScheme::Fixed) {
            for (size_t j = 0; j < cols_; ++j)
                fixed_[r * cols_ + j] =
                    int8_t(encodeFixed(w[j], a, bits_));
        } else {
            fatal("PackedQMat: row scheme must be Sp2 or Fixed");
        }
    }
    buildPanels();
}

void
PackedQMat::buildPanels()
{
    size_t len = rows_ * cols_;
    s1_.assign(len, 0);
    s2_.assign(len, 0);
    m1_.assign(len, 0);
    m2_.assign(len, 0);
    neg_.assign(len, 0);
    classes_.clear();
    classOfs_.assign(rows_ + 1, 0);
    colIdx_.clear();
    MIXQ_ASSERT(cols_ <= size_t(UINT32_MAX),
                "PackedQMat: column index overflow");

    // Per-row class grouping scratch: class key -> columns. Classes
    // keep first-appearance order so the pack is a pure function of
    // the codes (pack -> run -> repack byte-idempotence).
    std::vector<QCodeClass> cls;
    std::vector<std::vector<uint32_t>> clsCols;

    for (size_t r = 0; r < rows_; ++r) {
        cls.clear();
        clsCols.clear();
        if (scheme_[r] == QuantScheme::Sp2) {
            for (size_t j = 0; j < cols_; ++j) {
                size_t e = r * cols_ + j;
                const Sp2Code& c = sp2_[e];
                // Expand to the branch-free SoA form: an absent term
                // (j = -1) becomes shift 0 under an all-zero mask, so
                // a per-code (act << s) & m contributes exactly 0.
                s1_[e] = c.j1 >= 0 ? c.j1 : 0;
                s2_[e] = c.j2 >= 0 ? c.j2 : 0;
                m1_[e] = c.j1 >= 0 ? int32_t(-1) : 0;
                m2_[e] = c.j2 >= 0 ? int32_t(-1) : 0;
                neg_[e] = c.sign < 0 ? int32_t(-1) : 0;
                if (c.j1 < 0 && c.j2 < 0)
                    continue; // zero code: in no class
                size_t hit = cls.size();
                for (size_t t = 0; t < cls.size(); ++t) {
                    if (cls[t].s1 == s1_[e] && cls[t].s2 == s2_[e] &&
                        cls[t].m1 == uint32_t(m1_[e]) &&
                        cls[t].m2 == uint32_t(m2_[e]) &&
                        cls[t].neg == uint32_t(neg_[e])) {
                        hit = t;
                        break;
                    }
                }
                if (hit == cls.size()) {
                    QCodeClass nc;
                    nc.s1 = s1_[e];
                    nc.s2 = s2_[e];
                    nc.m1 = uint32_t(m1_[e]);
                    nc.m2 = uint32_t(m2_[e]);
                    nc.neg = uint32_t(neg_[e]);
                    cls.push_back(nc);
                    clsCols.emplace_back();
                }
                clsCols[hit].push_back(uint32_t(j));
            }
        } else {
            for (size_t j = 0; j < cols_; ++j) {
                int32_t k = fixed_[r * cols_ + j];
                if (k == 0)
                    continue;
                size_t hit = cls.size();
                for (size_t t = 0; t < cls.size(); ++t) {
                    if (cls[t].fixedMag == k) {
                        hit = t;
                        break;
                    }
                }
                if (hit == cls.size()) {
                    QCodeClass nc;
                    nc.fixedMag = k;
                    cls.push_back(nc);
                    clsCols.emplace_back();
                }
                clsCols[hit].push_back(uint32_t(j));
            }
        }
        for (size_t t = 0; t < cls.size(); ++t) {
            cls[t].begin = uint32_t(colIdx_.size());
            colIdx_.insert(colIdx_.end(), clsCols[t].begin(),
                           clsCols[t].end());
            cls[t].end = uint32_t(colIdx_.size());
            classes_.push_back(cls[t]);
        }
        classOfs_[r + 1] = classes_.size();
    }
}

double
PackedQMat::rowDequant(size_t r) const
{
    MIXQ_ASSERT(packed_ && r < rows_, "PackedQMat: row out of range");
    if (scheme_[r] == QuantScheme::Sp2)
        return double(alpha_[r]) / double(1 << denomLog2_);
    int levels = (1 << (bits_ - 1)) - 1;
    return double(alpha_[r]) / double(levels);
}

size_t
PackedQMat::byteSize() const
{
    auto bytes = [](const auto& v) {
        return v.size() * sizeof(v[0]);
    };
    return bytes(scheme_) + bytes(alpha_) + bytes(sp2_) +
           bytes(fixed_) + bytes(s1_) + bytes(s2_) + bytes(m1_) +
           bytes(m2_) + bytes(neg_) + bytes(classes_) +
           bytes(classOfs_) + bytes(colIdx_);
}

} // namespace mixq
