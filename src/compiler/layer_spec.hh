/**
 * @file
 * Dimension-level network description consumed by the performance
 * simulator. Every layer is reduced to its GEMM form: convolutions
 * via implicit im2col (M = OH*OW, K = Cin*kh*kw, N = Cout), depthwise
 * convolutions as thin GEMMs (K = kh*kw, N = C, mapped channel-
 * parallel across the input lanes), fully-connected and recurrent
 * gate GEMMs directly. `repeat` expresses sequentially dependent
 * repetitions (RNN timesteps).
 */

#ifndef MIXQ_COMPILER_LAYER_SPEC_HH
#define MIXQ_COMPILER_LAYER_SPEC_HH

#include <string>
#include <vector>

namespace mixq {

/** Layer category (informational; all lower to GEMM). */
enum class LayerKind { Conv, DwConv, Linear, RnnGemm };

/** One GEMM-form layer. */
struct LayerSpec
{
    std::string name;
    LayerKind kind = LayerKind::Conv;
    size_t m = 1; //!< output rows (spatial positions or batch)
    size_t k = 1; //!< reduction length
    size_t n = 1; //!< output channels / units
    size_t repeat = 1; //!< sequentially dependent repetitions

    double macs() const
    {
        return double(m) * double(k) * double(n) * double(repeat);
    }
    double ops() const { return 2.0 * macs(); }
};

/** A whole network as an ordered layer list. */
struct NetworkSpec
{
    std::string name;
    std::vector<LayerSpec> layers;

    double macs() const;
    double ops() const;
};

/** Convolution helper; pad defaults to (kernel-1)/2 ("same"). */
LayerSpec convLayer(const std::string& name, size_t in_ch,
                    size_t out_ch, size_t kernel, size_t stride,
                    size_t in_h, size_t in_w);

/** Depthwise convolution helper. */
LayerSpec dwLayer(const std::string& name, size_t channels,
                  size_t kernel, size_t stride, size_t in_h,
                  size_t in_w);

/** Fully-connected helper (M = batch). */
LayerSpec fcLayer(const std::string& name, size_t in, size_t out,
                  size_t batch = 1);

/** Batched (time-parallel) RNN input GEMM. */
LayerSpec rnnInputGemm(const std::string& name, size_t in,
                       size_t gates_out, size_t steps, size_t batch);

/** Sequential (per-step) RNN recurrent GEMM. */
LayerSpec rnnRecurrentGemm(const std::string& name, size_t hidden,
                           size_t gates_out, size_t steps,
                           size_t batch);

} // namespace mixq

#endif // MIXQ_COMPILER_LAYER_SPEC_HH
