#include "compiler/tiler.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace mixq {

namespace {

size_t
ceilDiv(size_t a, size_t b)
{
    return (a + b - 1) / b;
}

} // namespace

std::pair<size_t, size_t>
splitChannels(const DesignPoint& dp, size_t n)
{
    if (dp.blkSp2 == 0)
        return {n, 0};
    size_t nf = size_t(std::llround(double(n) * double(dp.blkFixed) /
                                    double(dp.blkOutTotal())));
    nf = std::min(nf, n);
    if (nf == 0 && n > 0)
        nf = std::min<size_t>(n, 1); // keep the DSP core non-idle
    return {nf, n - nf};
}

GemmTilePlan
planGemm(const DesignPoint& dp, size_t m, size_t k, size_t nf,
         size_t ns, size_t max_instr, size_t wgt_buf_bytes)
{
    MIXQ_ASSERT(m > 0 && k > 0 && nf + ns > 0, "degenerate GEMM");
    MIXQ_ASSERT(ns == 0 || dp.blkSp2 > 0,
                "SP2 channels on a design without an SP2 core");
    GemmTilePlan p;
    p.m = m;
    p.k = k;
    p.nf = nf;
    p.ns = ns;
    p.mTiles = ceilDiv(m, dp.bat);
    p.kTiles = ceilDiv(k, dp.blkIn);
    p.nfTiles = nf == 0 ? 0 : ceilDiv(nf, dp.blkFixed);
    p.nsTiles = ns == 0 ? 0 : ceilDiv(ns, dp.blkSp2);
    p.nTiles = std::max(p.nfTiles, p.nsTiles);
    MIXQ_ASSERT(p.nTiles > 0, "no output tiles");

    // Chunk size: n-tiles whose weights (both cores, 4-bit packed)
    // fit the weight-buffer budget together.
    p.chunkTiles = p.nTiles;
    if (wgt_buf_bytes > 0) {
        double bytes_per_ntile =
            double(p.kTiles * dp.blkIn *
                   (dp.blkFixed + dp.blkSp2)) * 0.5;
        size_t fit = std::max<size_t>(
            1, size_t(double(wgt_buf_bytes) / bytes_per_ntile));
        p.chunkTiles = std::min(p.nTiles, fit);
    }

    p.mGroup = 1;
    if (max_instr > 0) {
        // ~4 instructions per (n-tile, m-group). Prefer few, large
        // groups: each GEMM instruction pays one pipeline fill and
        // each load one DMA issue, so VTA-style long micro-op loops
        // (<= 64 groups along m) keep the overhead marginal.
        size_t groups_budget = std::clamp<size_t>(
            max_instr / (4 * p.nTiles), 1, 64);
        p.mGroup = std::max<size_t>(1,
                                    ceilDiv(p.mTiles, groups_budget));
    }
    return p;
}

Program
emitGemm(const DesignPoint& dp, const GemmTilePlan& p, bool relu)
{
    Program prog;
    size_t inp_slot_rows = p.mGroup * p.kTiles;
    size_t wgt_slot_rows = p.kTiles; // per n-tile within the chunk

    size_t inp_load_idx = 0; // global input-group counter
    size_t out_idx = 0;      // global output-group counter
    size_t mgroups = p.mGroups();
    size_t chunks = p.nChunks();

    for (size_t ch = 0; ch < chunks; ++ch) {
        size_t nt0 = ch * p.chunkTiles;
        size_t nt1 = std::min(nt0 + p.chunkTiles, p.nTiles);
        size_t wgt_loads = 0;
        bool first_wgt_load = true;

        // Resident weights of the chunk (both cores).
        for (size_t nt = nt0; nt < nt1; ++nt) {
            for (int core = 0; core < 2; ++core) {
                bool active = core == 0 ? nt < p.nfTiles
                                        : (nt < p.nsTiles &&
                                           dp.blkSp2 > 0);
                if (!active)
                    continue;
                Instruction ld;
                ld.op = Opcode::Load;
                ld.buf = core == 0 ? BufKind::WgtFixed
                                   : BufKind::WgtSp2;
                ld.dramRow = uint32_t(nt * p.kTiles);
                ld.sramRow = uint32_t((nt - nt0) * wgt_slot_rows);
                ld.rows = uint32_t(p.kTiles);
                if (ch > 0 && first_wgt_load) {
                    // Wait for the previous chunk to finish before
                    // overwriting the resident weights.
                    ld.pops.push_back({Sem::C2LWgtF, 1});
                    first_wgt_load = false;
                }
                ld.pushes.push_back({Sem::L2C, 1});
                prog.load.push_back(ld);
                ++wgt_loads;
            }
        }

        for (size_t mg = 0; mg < mgroups; ++mg) {
            size_t g = std::min(p.mGroup, p.mTiles - mg * p.mGroup);
            size_t inp_slot = (inp_load_idx % 2) * inp_slot_rows;

            Instruction ld;
            ld.op = Opcode::Load;
            ld.buf = BufKind::Input;
            ld.dramRow = uint32_t(mg * p.mGroup * p.kTiles);
            ld.sramRow = uint32_t(inp_slot);
            ld.rows = uint32_t(g * p.kTiles);
            if (inp_load_idx >= 2)
                ld.pops.push_back({Sem::C2LInp, 1});
            ld.pushes.push_back({Sem::L2C, 1});
            prog.load.push_back(ld);

            for (size_t nt = nt0; nt < nt1; ++nt) {
                bool has_f = nt < p.nfTiles;
                bool has_s = nt < p.nsTiles && dp.blkSp2 > 0;

                Instruction gm;
                gm.op = Opcode::Gemm;
                gm.kTiles = uint32_t(p.kTiles);
                gm.groups = uint32_t(g);
                gm.inpBase = uint32_t(inp_slot);
                gm.wgtFixedBase =
                    uint32_t((nt - nt0) * wgt_slot_rows);
                gm.wgtSp2Base = gm.wgtFixedBase;
                gm.useFixed = has_f;
                gm.useSp2 = has_s;
                if (nt == nt0) {
                    // Wait for this m-group's input, plus (on the
                    // first group of the chunk) the chunk weights.
                    uint16_t l2c =
                        uint16_t(1 + (mg == 0 ? wgt_loads : 0));
                    gm.pops.push_back({Sem::L2C, l2c});
                }
                if (nt + 1 == nt1) {
                    // Input group fully consumed by the chunk.
                    gm.pushes.push_back({Sem::C2LInp, 1});
                    if (mg + 1 == mgroups && ch + 1 < chunks) {
                        // Weights may be overwritten by next chunk.
                        gm.pushes.push_back({Sem::C2LWgtF, 1});
                    }
                }
                prog.compute.push_back(gm);

                Instruction alu;
                alu.op = Opcode::Alu;
                alu.groups = uint32_t(g);
                alu.outBase =
                    uint32_t((out_idx % 2) * p.outBufRows() / 2);
                alu.relu = relu;
                if (out_idx >= 2)
                    alu.pops.push_back({Sem::S2C, 1});
                alu.pushes.push_back({Sem::C2S, 1});
                prog.compute.push_back(alu);

                Instruction st;
                st.op = Opcode::Store;
                st.outBase = alu.outBase;
                st.dramRow =
                    uint32_t(nt * p.mTiles + mg * p.mGroup);
                st.rows = uint32_t(g);
                st.pops.push_back({Sem::C2S, 1});
                st.pushes.push_back({Sem::S2C, 1});
                prog.store.push_back(st);
                ++out_idx;
            }
            ++inp_load_idx;
        }
    }
    return prog;
}

} // namespace mixq
