#include "compiler/runner.hh"

#include <algorithm>

#include "fpga/device.hh"
#include "util/logging.hh"

namespace mixq {

namespace {

size_t
autoDramBytes(const DesignPoint& dp, const SimKnobs& knobs)
{
    if (knobs.dramBytesPerCycle > 0)
        return knobs.dramBytesPerCycle;
    return 16 * dp.bat;
}

size_t
autoWgtBufBytes(const DesignPoint& dp, const SimKnobs& knobs)
{
    if (knobs.wgtBufBytes > 0)
        return knobs.wgtBufBytes;
    const FpgaDevice& dev = deviceByName(dp.device);
    return dev.bram36 * 4608 / 2; // half the BRAM, in bytes
}

AccelConfig
makeConfig(const DesignPoint& dp, const GemmTilePlan& plan,
           const SimKnobs& knobs, bool functional)
{
    AccelConfig cfg;
    cfg.dp = dp;
    cfg.inputBufRows = plan.inputBufRows();
    cfg.wgtFixedRows = plan.wgtBufRows();
    cfg.wgtSp2Rows = plan.wgtBufRows();
    cfg.outBufRows = plan.outBufRows();
    cfg.dramBytesPerCycle = autoDramBytes(dp, knobs);
    cfg.dramLatencyCycles = knobs.dramLatencyCycles;
    cfg.gemmPipeFill = knobs.gemmPipeFill;
    cfg.functional = functional;
    return cfg;
}

} // namespace

NetworkPerf
simulateNetwork(const NetworkSpec& net, const DesignPoint& dp,
                const SimKnobs& knobs)
{
    NetworkPerf perf;
    perf.network = net.name;
    perf.design = dp.name;

    for (const LayerSpec& layer : net.layers) {
        auto [nf, ns] = splitChannels(dp, layer.n);
        GemmTilePlan plan = planGemm(dp, layer.m, layer.k, nf, ns,
                                     knobs.maxInstrPerLayer,
                                     autoWgtBufBytes(dp, knobs));
        Program prog = emitGemm(dp, plan);
        Accelerator accel(makeConfig(dp, plan, knobs, false));
        RunStats stats = accel.run(prog);

        LayerPerf lp;
        lp.name = layer.name;
        lp.ops = layer.ops();
        lp.cycles = stats.cycles * layer.repeat;
        lp.gops = lp.cycles == 0
            ? 0.0
            : lp.ops * dp.freqMhz / (double(lp.cycles) * 1000.0);
        perf.layers.push_back(lp);
        perf.ops += lp.ops;
        perf.cycles += lp.cycles;
    }
    perf.gops = perf.cycles == 0
        ? 0.0
        : perf.ops * dp.freqMhz / (double(perf.cycles) * 1000.0);
    perf.latencyMs = double(perf.cycles) / (dp.freqMhz * 1000.0);
    perf.peUtil = perf.gops / dp.peakGops();
    return perf;
}

std::vector<int32_t>
referenceGemmInt(const QuantizedGemm& q)
{
    MIXQ_ASSERT(q.acts.size() == q.m * q.k, "acts size");
    MIXQ_ASSERT(q.wF.size() == q.nf * q.k, "fixed weight size");
    MIXQ_ASSERT(q.wS.size() == q.ns * q.k, "sp2 weight size");
    std::vector<int32_t> out(q.m * (q.nf + q.ns), 0);
    for (size_t i = 0; i < q.m; ++i) {
        const int8_t* a = q.acts.data() + i * q.k;
        for (size_t c = 0; c < q.nf; ++c) {
            const int8_t* w = q.wF.data() + c * q.k;
            int32_t s = 0;
            for (size_t j = 0; j < q.k; ++j)
                s += int32_t(w[j]) * int32_t(a[j]);
            out[i * (q.nf + q.ns) + c] = s;
        }
        for (size_t c = 0; c < q.ns; ++c) {
            const Sp2Code* w = q.wS.data() + c * q.k;
            int32_t s = 0;
            for (size_t j = 0; j < q.k; ++j)
                s += w[j].apply(int32_t(a[j]));
            out[i * (q.nf + q.ns) + q.nf + c] = s;
        }
    }
    return out;
}

QuantizedGemm
packedToQuantizedGemm(const PackedQMat& w,
                      std::span<const int8_t> acts, size_t m,
                      std::vector<size_t>& rowOrder)
{
    MIXQ_ASSERT(w.packed(), "packedToQuantizedGemm: not packed");
    size_t k = w.cols();
    MIXQ_ASSERT(acts.size() == m * k,
                "packedToQuantizedGemm: acts size");
    QuantizedGemm q;
    q.m = m;
    q.k = k;
    q.ns = w.numSp2();
    q.nf = w.rows() - q.ns;
    q.acts.assign(acts.begin(), acts.end());
    q.wF.reserve(q.nf * k);
    q.wS.reserve(q.ns * k);
    rowOrder.clear();
    rowOrder.reserve(w.rows());
    // Fixed-core channels first (the reference's output layout),
    // each scheme group in packed row order.
    for (size_t r = 0; r < w.rows(); ++r) {
        if (w.rowScheme(r) == QuantScheme::Fixed) {
            const int8_t* row = w.fixedCodes().data() + r * k;
            q.wF.insert(q.wF.end(), row, row + k);
            rowOrder.push_back(r);
        }
    }
    for (size_t r = 0; r < w.rows(); ++r) {
        if (w.rowScheme(r) == QuantScheme::Sp2) {
            const Sp2Code* row = w.sp2Codes().data() + r * k;
            q.wS.insert(q.wS.end(), row, row + k);
            rowOrder.push_back(r);
        }
    }
    return q;
}

std::vector<int32_t>
runGemmFunctional(const QuantizedGemm& q, const DesignPoint& dp,
                  RunStats* stats, const SimKnobs& knobs)
{
    GemmTilePlan plan = planGemm(dp, q.m, q.k, q.nf, q.ns, 0);
    Program prog = emitGemm(dp, plan);
    Accelerator accel(makeConfig(dp, plan, knobs, true));

    size_t bat = dp.bat, bin = dp.blkIn;
    size_t bf = dp.blkFixed, bs = dp.blkSp2;

    // Lay out the DRAM tile arrays with zero padding.
    DramModel& dram = accel.dram();
    dram.inputs.assign(plan.mTiles * plan.kTiles * bat * bin, 0);
    for (size_t mt = 0; mt < plan.mTiles; ++mt) {
        for (size_t kt = 0; kt < plan.kTiles; ++kt) {
            int8_t* row = dram.inputs.data() +
                          (mt * plan.kTiles + kt) * bat * bin;
            for (size_t b = 0; b < bat; ++b) {
                size_t i = mt * bat + b;
                if (i >= q.m)
                    continue;
                for (size_t j = 0; j < bin; ++j) {
                    size_t kk = kt * bin + j;
                    if (kk < q.k)
                        row[b * bin + j] = q.acts[i * q.k + kk];
                }
            }
        }
    }
    dram.wgtFixed.assign(
        std::max<size_t>(plan.nfTiles, 1) * plan.kTiles * bf * bin, 0);
    for (size_t nt = 0; nt < plan.nfTiles; ++nt) {
        for (size_t kt = 0; kt < plan.kTiles; ++kt) {
            int8_t* row = dram.wgtFixed.data() +
                          (nt * plan.kTiles + kt) * bf * bin;
            for (size_t o = 0; o < bf; ++o) {
                size_t c = nt * bf + o;
                if (c >= q.nf)
                    continue;
                for (size_t j = 0; j < bin; ++j) {
                    size_t kk = kt * bin + j;
                    if (kk < q.k)
                        row[o * bin + j] = q.wF[c * q.k + kk];
                }
            }
        }
    }
    dram.wgtSp2.assign(
        std::max<size_t>(plan.nsTiles, 1) * plan.kTiles * bs * bin,
        Sp2Code{});
    for (size_t nt = 0; nt < plan.nsTiles; ++nt) {
        for (size_t kt = 0; kt < plan.kTiles; ++kt) {
            Sp2Code* row = dram.wgtSp2.data() +
                           (nt * plan.kTiles + kt) * bs * bin;
            for (size_t o = 0; o < bs; ++o) {
                size_t c = nt * bs + o;
                if (c >= q.ns)
                    continue;
                for (size_t j = 0; j < bin; ++j) {
                    size_t kk = kt * bin + j;
                    if (kk < q.k)
                        row[o * bin + j] = q.wS[c * q.k + kk];
                }
            }
        }
    }
    dram.outputs.assign(plan.nTiles * plan.mTiles * bat *
                            dp.blkOutTotal(), 0);

    RunStats st = accel.run(prog);
    if (stats)
        *stats = st;

    // Gather [m][nf+ns] from the output tile rows.
    std::vector<int32_t> out(q.m * (q.nf + q.ns), 0);
    size_t bo = dp.blkOutTotal();
    for (size_t c = 0; c < q.nf; ++c) {
        size_t nt = c / bf, o = c % bf;
        for (size_t i = 0; i < q.m; ++i) {
            size_t mt = i / bat, b = i % bat;
            out[i * (q.nf + q.ns) + c] =
                dram.outputs[(nt * plan.mTiles + mt) * bat * bo +
                             b * bo + o];
        }
    }
    for (size_t c = 0; c < q.ns; ++c) {
        size_t nt = c / bs, o = c % bs;
        for (size_t i = 0; i < q.m; ++i) {
            size_t mt = i / bat, b = i % bat;
            out[i * (q.nf + q.ns) + q.nf + c] =
                dram.outputs[(nt * plan.mTiles + mt) * bat * bo +
                             b * bo + bf + o];
        }
    }
    return out;
}

} // namespace mixq
