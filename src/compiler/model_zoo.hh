/**
 * @file
 * Published layer dimensions of the networks in the paper's Table
 * VIII: ResNet-18 and MobileNet-v2 at 224x224 (ImageNet), YOLO-v3 at
 * 320/640 (COCO), and the three RNNs (PTB LSTM, TIMIT GRU, IMDB
 * LSTM). Throughput simulation needs only these shapes — weights are
 * irrelevant to Table VIII/IX — so the real architectures are used
 * here even though the accuracy experiments run miniature models.
 */

#ifndef MIXQ_COMPILER_MODEL_ZOO_HH
#define MIXQ_COMPILER_MODEL_ZOO_HH

#include "compiler/layer_spec.hh"

namespace mixq {

/** ResNet-18, 224x224x3 input, 1000 classes (~1.8 GMAC). */
NetworkSpec resnet18Spec();

/** MobileNet-v2, 224x224x3 input, 1000 classes (~0.3 GMAC). */
NetworkSpec mobilenetV2Spec();

/** YOLO-v3 (Darknet-53 + 3 heads) at a given square input size. */
NetworkSpec yolov3Spec(size_t img = 320);

/** 2-layer 256-unit LSTM LM on PTB (batch 16, 35 steps). */
NetworkSpec lstmPtbSpec(size_t batch = 16, size_t steps = 35);

/** 2-layer 1024-unit GRU on TIMIT frames (batch 16, 100 steps). */
NetworkSpec gruTimitSpec(size_t batch = 16, size_t steps = 100);

/** 3-layer 512-unit LSTM on IMDB (batch 16, 200 steps). */
NetworkSpec lstmImdbSpec(size_t batch = 16, size_t steps = 200);

} // namespace mixq

#endif // MIXQ_COMPILER_MODEL_ZOO_HH
