/**
 * @file
 * Lowering of a GEMM-form layer onto a design point: tile counts,
 * output-channel partition across the two cores, and emission of the
 * token-wired three-queue instruction program.
 *
 * Schedule: output channels are processed in chunks whose weights fit
 * the on-chip weight buffers (weight-stationary); within a chunk the
 * input stripes stream once per m-group and are reused by every
 * n-tile of the chunk. Inputs are double buffered; chunk transitions
 * serialize on a weights-resident token.
 */

#ifndef MIXQ_COMPILER_TILER_HH
#define MIXQ_COMPILER_TILER_HH

#include <cstddef>
#include <utility>

#include "fpga/design_point.hh"
#include "sim/isa.hh"

namespace mixq {

/** Tile geometry of one lowered GEMM. */
struct GemmTilePlan
{
    size_t m = 0, k = 0, nf = 0, ns = 0; //!< problem dims
    size_t mTiles = 0;   //!< ceil(m / bat)
    size_t kTiles = 0;   //!< ceil(k / blkIn)
    size_t nfTiles = 0;  //!< ceil(nf / blkFixed)
    size_t nsTiles = 0;  //!< ceil(ns / blkSp2)
    size_t nTiles = 0;   //!< max(nfTiles, nsTiles): cores in lockstep
    size_t mGroup = 1;   //!< m-tiles fused per instruction (timing)
    size_t chunkTiles = 0; //!< n-tiles whose weights are co-resident

    size_t mGroups() const { return (mTiles + mGroup - 1) / mGroup; }
    size_t nChunks() const
    {
        return (nTiles + chunkTiles - 1) / chunkTiles;
    }

    /** Buffer rows required. */
    size_t inputBufRows() const { return 2 * mGroup * kTiles; }
    size_t wgtBufRows() const { return chunkTiles * kTiles; }
    size_t outBufRows() const { return 2 * mGroup; }
};

/**
 * Plan a GEMM: split N into nf/ns per the core lane ratio, compute
 * tile counts, pick the chunk size from the weight-buffer byte
 * budget, and pick an m-group size keeping the instruction count
 * under @p max_instr (functional lowering passes max_instr = 0 to
 * force mGroup = 1).
 *
 * @param wgt_buf_bytes  on-chip weight buffer capacity (per design,
 *                       across both cores); 0 means unbounded.
 */
GemmTilePlan planGemm(const DesignPoint& dp, size_t m, size_t k,
                      size_t nf, size_t ns, size_t max_instr,
                      size_t wgt_buf_bytes = 0);

/**
 * Split output channels across the cores proportionally to the lane
 * counts (the paper matches PR_SP2 to the PE ratio). Returns
 * {nFixed, nSp2} with nFixed + nSp2 == n.
 */
std::pair<size_t, size_t> splitChannels(const DesignPoint& dp,
                                        size_t n);

/**
 * Emit the three instruction queues for a planned GEMM. DRAM layout
 * convention (functional runs):
 *   input row  (mt, kt) at  mt * kTiles + kt
 *   fixed wgt  (nt, kt) at  nt * kTiles + kt
 *   sp2 wgt    (nt, kt) at  nt * kTiles + kt
 *   output row (nt, mt) at  nt * mTiles + mt
 */
Program emitGemm(const DesignPoint& dp, const GemmTilePlan& plan,
                 bool relu = false);

} // namespace mixq

#endif // MIXQ_COMPILER_TILER_HH
