/**
 * @file
 * Network-level drivers of the simulator. simulateNetwork() is the
 * timing path behind Tables VII/VIII/IX: every layer of a
 * NetworkSpec is planned, emitted and run on the event-driven
 * engine, and per-layer/aggregate throughput reported.
 * runGemmFunctional() is the bit-exact path used by integration
 * tests and examples: a quantized GEMM is laid out in DRAM tiles,
 * executed through both heterogeneous cores, and gathered back.
 */

#ifndef MIXQ_COMPILER_RUNNER_HH
#define MIXQ_COMPILER_RUNNER_HH

#include <cstdint>
#include <span>
#include <vector>

#include "compiler/layer_spec.hh"
#include "compiler/tiler.hh"
#include "infer/qpack.hh"
#include "sim/accelerator.hh"

namespace mixq {

/** Simulator knobs shared across layers. */
struct SimKnobs
{
    size_t maxInstrPerLayer = 4096;
    /** DRAM bytes per cycle; 0 = auto (16 per batch lane, modeling
     *  one 64-bit HP port pair per parallel batch). */
    size_t dramBytesPerCycle = 0;
    /** Per-request issue overhead; the DMA queues outstanding
     *  transactions, so latency is mostly hidden. */
    size_t dramLatencyCycles = 8;
    size_t gemmPipeFill = 4;
    /** Weight-buffer capacity in bytes; 0 = auto (half the device
     *  BRAM capacity reserved for resident weights). */
    size_t wgtBufBytes = 0;
};

/** Per-layer result of a timing run. */
struct LayerPerf
{
    std::string name;
    double ops = 0.0;
    uint64_t cycles = 0;
    double gops = 0.0;
};

/** Whole-network result of a timing run. */
struct NetworkPerf
{
    std::string network;
    std::string design;
    double ops = 0.0;
    uint64_t cycles = 0;
    double gops = 0.0;      //!< achieved throughput
    double latencyMs = 0.0; //!< one inference (batch) latency
    double peUtil = 0.0;    //!< achieved / peak
    std::vector<LayerPerf> layers;
};

/** Simulate a network's layer list on a design point (timing only). */
NetworkPerf simulateNetwork(const NetworkSpec& net,
                            const DesignPoint& dp,
                            const SimKnobs& knobs = {});

/** A fully quantized GEMM problem for the functional path. */
struct QuantizedGemm
{
    size_t m = 0, k = 0, nf = 0, ns = 0;
    std::vector<int8_t> acts;  //!< [m][k] unsigned activations
    std::vector<int8_t> wF;    //!< [nf][k] sign-magnitude integers
    std::vector<Sp2Code> wS;   //!< [ns][k] SP2 codes
};

/**
 * Reference integer GEMM (plain C++ loops). Output is [m][nf+ns]
 * with the fixed-core channels first. The SP2 outputs are in units of
 * act * 2^K1-scaled weight (the codec denominator).
 */
std::vector<int32_t> referenceGemmInt(const QuantizedGemm& q);

/**
 * Run the same problem through the accelerator simulator (functional
 * mode, mGroup = 1) and gather the outputs in the same layout;
 * the result must equal referenceGemmInt() exactly.
 */
std::vector<int32_t> runGemmFunctional(const QuantizedGemm& q,
                                       const DesignPoint& dp,
                                       RunStats* stats = nullptr,
                                       const SimKnobs& knobs = {});

/**
 * Bridge a deploy-packed weight matrix (infer/qpack.hh) into the
 * simulator's mixed-core problem layout: Fixed rows become the
 * fixed-core channels (in packed row order), SP2 rows the SP2-core
 * channels, and @p rowOrder records, for each output column c of
 * referenceGemmInt/runGemmFunctional, the packed row it came from —
 * the permutation the differential tests invert. @p acts are [m][k]
 * activation codes within int8 range. Both sides accumulate SP2
 * products in the same 2^K1-scaled units, so the outputs compare
 * against qgemm accumulators with ==.
 *
 * The pack may equally be one adopted from a deploy artifact
 * (serial/deploy.hh, a locked loadFromCodes pack): the bridge reads
 * only the canonical codes, which the artifact round-trips byte for
 * byte, so the sim cores vet served models exactly like in-process
 * ones.
 */
QuantizedGemm packedToQuantizedGemm(const PackedQMat& w,
                                    std::span<const int8_t> acts,
                                    size_t m,
                                    std::vector<size_t>& rowOrder);

} // namespace mixq

#endif // MIXQ_COMPILER_RUNNER_HH
