#include "compiler/layer_spec.hh"

#include "util/logging.hh"

namespace mixq {

double
NetworkSpec::macs() const
{
    double s = 0.0;
    for (const LayerSpec& l : layers)
        s += l.macs();
    return s;
}

double
NetworkSpec::ops() const
{
    return 2.0 * macs();
}

namespace {

size_t
outDim(size_t in, size_t kernel, size_t stride)
{
    size_t pad = (kernel - 1) / 2;
    return (in + 2 * pad - kernel) / stride + 1;
}

} // namespace

LayerSpec
convLayer(const std::string& name, size_t in_ch, size_t out_ch,
          size_t kernel, size_t stride, size_t in_h, size_t in_w)
{
    LayerSpec l;
    l.name = name;
    l.kind = LayerKind::Conv;
    l.m = outDim(in_h, kernel, stride) * outDim(in_w, kernel, stride);
    l.k = in_ch * kernel * kernel;
    l.n = out_ch;
    return l;
}

LayerSpec
dwLayer(const std::string& name, size_t channels, size_t kernel,
        size_t stride, size_t in_h, size_t in_w)
{
    LayerSpec l;
    l.name = name;
    l.kind = LayerKind::DwConv;
    l.m = outDim(in_h, kernel, stride) * outDim(in_w, kernel, stride);
    l.k = kernel * kernel;
    l.n = channels;
    return l;
}

LayerSpec
fcLayer(const std::string& name, size_t in, size_t out, size_t batch)
{
    LayerSpec l;
    l.name = name;
    l.kind = LayerKind::Linear;
    l.m = batch;
    l.k = in;
    l.n = out;
    return l;
}

LayerSpec
rnnInputGemm(const std::string& name, size_t in, size_t gates_out,
             size_t steps, size_t batch)
{
    LayerSpec l;
    l.name = name;
    l.kind = LayerKind::RnnGemm;
    l.m = steps * batch;
    l.k = in;
    l.n = gates_out;
    return l;
}

LayerSpec
rnnRecurrentGemm(const std::string& name, size_t hidden,
                 size_t gates_out, size_t steps, size_t batch)
{
    LayerSpec l;
    l.name = name;
    l.kind = LayerKind::RnnGemm;
    l.m = batch;
    l.k = hidden;
    l.n = gates_out;
    l.repeat = steps;
    return l;
}

} // namespace mixq
