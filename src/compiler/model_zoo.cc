#include "compiler/model_zoo.hh"

#include <cstdio>

namespace mixq {

namespace {

std::string
tag(const char* base, int i)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s%d", base, i);
    return buf;
}

} // namespace

NetworkSpec
resnet18Spec()
{
    NetworkSpec net;
    net.name = "ResNet-18";
    net.layers.push_back(convLayer("conv1", 3, 64, 7, 2, 224, 224));
    // After 3x3/2 max-pool: 56x56.
    for (int b = 0; b < 2; ++b) {
        net.layers.push_back(
            convLayer(tag("l1b", b) + ".c1", 64, 64, 3, 1, 56, 56));
        net.layers.push_back(
            convLayer(tag("l1b", b) + ".c2", 64, 64, 3, 1, 56, 56));
    }
    net.layers.push_back(convLayer("l2b0.c1", 64, 128, 3, 2, 56, 56));
    net.layers.push_back(convLayer("l2b0.c2", 128, 128, 3, 1, 28, 28));
    net.layers.push_back(convLayer("l2b0.down", 64, 128, 1, 2, 56, 56));
    net.layers.push_back(convLayer("l2b1.c1", 128, 128, 3, 1, 28, 28));
    net.layers.push_back(convLayer("l2b1.c2", 128, 128, 3, 1, 28, 28));
    net.layers.push_back(convLayer("l3b0.c1", 128, 256, 3, 2, 28, 28));
    net.layers.push_back(convLayer("l3b0.c2", 256, 256, 3, 1, 14, 14));
    net.layers.push_back(convLayer("l3b0.down", 128, 256, 1, 2, 28,
                                   28));
    net.layers.push_back(convLayer("l3b1.c1", 256, 256, 3, 1, 14, 14));
    net.layers.push_back(convLayer("l3b1.c2", 256, 256, 3, 1, 14, 14));
    net.layers.push_back(convLayer("l4b0.c1", 256, 512, 3, 2, 14, 14));
    net.layers.push_back(convLayer("l4b0.c2", 512, 512, 3, 1, 7, 7));
    net.layers.push_back(convLayer("l4b0.down", 256, 512, 1, 2, 14,
                                   14));
    net.layers.push_back(convLayer("l4b1.c1", 512, 512, 3, 1, 7, 7));
    net.layers.push_back(convLayer("l4b1.c2", 512, 512, 3, 1, 7, 7));
    net.layers.push_back(fcLayer("fc", 512, 1000));
    return net;
}

NetworkSpec
mobilenetV2Spec()
{
    NetworkSpec net;
    net.name = "MobileNet-v2";
    net.layers.push_back(convLayer("conv1", 3, 32, 3, 2, 224, 224));

    struct Stage { size_t t, c, n, s; };
    // The (expansion, channels, blocks, stride) table of the paper.
    const Stage stages[] = {
        {1, 16, 1, 1}, {6, 24, 2, 2}, {6, 32, 3, 2}, {6, 64, 4, 2},
        {6, 96, 3, 1}, {6, 160, 3, 2}, {6, 320, 1, 1},
    };
    size_t in_ch = 32;
    size_t res = 112;
    int blk = 0;
    for (const Stage& st : stages) {
        for (size_t i = 0; i < st.n; ++i, ++blk) {
            size_t stride = i == 0 ? st.s : 1;
            size_t exp_ch = in_ch * st.t;
            std::string b = tag("ir", blk);
            if (st.t != 1) {
                net.layers.push_back(convLayer(b + ".expand", in_ch,
                                               exp_ch, 1, 1, res,
                                               res));
            }
            net.layers.push_back(
                dwLayer(b + ".dw", exp_ch, 3, stride, res, res));
            size_t out_res = stride == 2 ? res / 2 : res;
            net.layers.push_back(convLayer(b + ".project", exp_ch,
                                           st.c, 1, 1, out_res,
                                           out_res));
            in_ch = st.c;
            res = out_res;
        }
    }
    net.layers.push_back(convLayer("conv_last", 320, 1280, 1, 1, 7, 7));
    net.layers.push_back(fcLayer("fc", 1280, 1000));
    return net;
}

NetworkSpec
yolov3Spec(size_t img)
{
    NetworkSpec net;
    net.name = "YOLO-v3-" + std::to_string(img);
    size_t res = img;
    net.layers.push_back(convLayer("d0", 3, 32, 3, 1, res, res));

    // Darknet-53 residual stages: (out channels, residual blocks).
    struct Stage { size_t c; size_t blocks; };
    const Stage stages[] = {
        {64, 1}, {128, 2}, {256, 8}, {512, 8}, {1024, 4},
    };
    size_t in_ch = 32;
    int li = 0;
    for (const Stage& st : stages) {
        net.layers.push_back(convLayer(tag("down", li), in_ch, st.c, 3,
                                       2, res, res));
        res /= 2;
        for (size_t b = 0; b < st.blocks; ++b) {
            net.layers.push_back(convLayer(tag("r", li) + "a", st.c,
                                           st.c / 2, 1, 1, res, res));
            net.layers.push_back(convLayer(tag("r", li) + "b",
                                           st.c / 2, st.c, 3, 1, res,
                                           res));
            ++li;
        }
        in_ch = st.c;
    }

    // Detection heads at strides 32, 16, 8 (bottom-up).
    size_t r32 = img / 32, r16 = img / 16, r8 = img / 8;
    auto head = [&](const char* nm, size_t cin, size_t mid, size_t res_h)
    {
        for (int i = 0; i < 2; ++i) {
            net.layers.push_back(convLayer(std::string(nm) +
                                               tag(".a", i),
                                           cin, mid, 1, 1, res_h,
                                           res_h));
            net.layers.push_back(convLayer(std::string(nm) +
                                               tag(".b", i),
                                           mid, mid * 2, 3, 1, res_h,
                                           res_h));
            cin = mid * 2;
        }
        net.layers.push_back(convLayer(std::string(nm) + ".c", cin,
                                       mid, 1, 1, res_h, res_h));
        net.layers.push_back(convLayer(std::string(nm) + ".out1", mid,
                                       mid * 2, 3, 1, res_h, res_h));
        net.layers.push_back(convLayer(std::string(nm) + ".out2",
                                       mid * 2, 255, 1, 1, res_h,
                                       res_h));
    };
    head("h32", 1024, 512, r32);
    net.layers.push_back(convLayer("up16", 512, 256, 1, 1, r32, r32));
    head("h16", 256 + 512, 256, r16);
    net.layers.push_back(convLayer("up8", 256, 128, 1, 1, r16, r16));
    head("h8", 128 + 256, 128, r8);
    return net;
}

namespace {

NetworkSpec
lstmStack(const std::string& name, size_t input, size_t hidden,
          size_t layers, size_t vocab_out, size_t batch, size_t steps)
{
    NetworkSpec net;
    net.name = name;
    size_t in = input;
    for (size_t l = 0; l < layers; ++l) {
        net.layers.push_back(rnnInputGemm(tag("l", int(l)) + ".wx", in,
                                          4 * hidden, steps, batch));
        net.layers.push_back(rnnRecurrentGemm(tag("l", int(l)) + ".wh",
                                              hidden, 4 * hidden,
                                              steps, batch));
        in = hidden;
    }
    if (vocab_out > 0) {
        net.layers.push_back(
            fcLayer("head", hidden, vocab_out, batch * steps));
    }
    return net;
}

} // namespace

NetworkSpec
lstmPtbSpec(size_t batch, size_t steps)
{
    // 2x256-unit LSTM LM, 10k vocabulary, per the paper's Section
    // IV-C1 description of [58] on PTB.
    NetworkSpec net = lstmStack("LSTM-PTB", 256, 256, 2, 10000, batch,
                                steps);
    return net;
}

NetworkSpec
gruTimitSpec(size_t batch, size_t steps)
{
    NetworkSpec net;
    net.name = "GRU-TIMIT";
    size_t hidden = 1024;
    size_t in = 39; // MFCC features
    for (size_t l = 0; l < 2; ++l) {
        net.layers.push_back(rnnInputGemm(tag("l", int(l)) + ".wx", in,
                                          3 * hidden, steps, batch));
        net.layers.push_back(rnnRecurrentGemm(tag("l", int(l)) + ".wh",
                                              hidden, 3 * hidden,
                                              steps, batch));
        in = hidden;
    }
    net.layers.push_back(fcLayer("head", hidden, 39, batch * steps));
    return net;
}

NetworkSpec
lstmImdbSpec(size_t batch, size_t steps)
{
    return lstmStack("LSTM-IMDB", 512, 512, 3, 2, batch, steps);
}

} // namespace mixq
