/**
 * @file
 * Integer encodings of quantized weights — the exact arithmetic
 * contract between the quantizer and the simulator's GEMM cores.
 *
 * Fixed rows encode as sign-magnitude integers in
 * [-(2^(m-1)-1), +(2^(m-1)-1)]; the DSP core multiplies them directly.
 *
 * SP2 rows encode as (sign, j1, j2) where the weight magnitude is
 * (2^j1 + 2^j2) / 2^K1 with K1 = 2^m1 - 1; a shift field of -1 means
 * that term is zero. The LUT core computes (a << j1) + (a << j2) —
 * two shifts and one add, never a multiply (Table I of the paper).
 */

#ifndef MIXQ_QUANT_SP2_CODEC_HH
#define MIXQ_QUANT_SP2_CODEC_HH

#include <cstdint>
#include <vector>

#include "quant/scheme.hh"

namespace mixq {

/** Hardware encoding of one SP2 weight. */
struct Sp2Code
{
    int8_t sign = 1;   //!< +1 or -1
    int8_t j1 = -1;    //!< shift of term 1, -1 encodes a zero term
    int8_t j2 = -1;    //!< shift of term 2, -1 encodes a zero term

    /** Integer magnitude (2^j1 + 2^j2, with -1 terms contributing 0). */
    int32_t intMagnitude() const;

    /**
     * Multiply an activation by this weight using only shifts and an
     * add; the result is scaled by 2^K1 relative to the real product.
     */
    int32_t apply(int32_t act) const;

    bool operator==(const Sp2Code&) const = default;
};

/**
 * Codec for one (scheme, bits) configuration of SP2. Builds the
 * magnitude/code correspondence once and encodes/decodes values.
 */
class Sp2Codec
{
  public:
    explicit Sp2Codec(int bits);

    /** log2 of the common denominator, K1 = 2^m1 - 1. */
    int denomLog2() const { return denomLog2_; }

    /** Sorted distinct integer magnitudes representable by the codec. */
    const std::vector<int32_t>& intMagnitudes() const { return ints_; }

    /**
     * Canonical (positive-sign) code of intMagnitudes()[idx]. The
     * deploy artifact stores SP2 weights as sign + magnitude-index
     * fields; this is the decode side of that packing, returning the
     * same code encode() would pick for the dequantized value.
     */
    Sp2Code codeForMagnitude(size_t idx) const;

    /**
     * Index of @p intMag in intMagnitudes(); panics when the
     * magnitude is not representable (the encode side of the deploy
     * artifact's sign + magnitude-index packing).
     */
    size_t magnitudeIndex(int32_t intMag) const;

    /**
     * Encode a dequantized weight value (must be alpha * level for a
     * level of the m-bit SP2 set, within tolerance). Routed through
     * the cached LevelSet's branchless boundary search (the same
     * kernel the quantizer projects with), then validated against the
     * integer magnitude table; calls panic() on a value outside the
     * level set. Bit-identical to encodeRef on every representable
     * value.
     */
    Sp2Code encode(float value, float alpha) const;

    /**
     * Retained reference encoder: round value/alpha to the integer
     * grid and find the magnitude by lower_bound over the integer
     * table. encode() is cross-checked against it in
     * tests/sp2_codec_test.cc.
     */
    Sp2Code encodeRef(float value, float alpha) const;

    /** Decode a code back to a dequantized float weight. */
    float decode(const Sp2Code& code, float alpha) const;

    /** Maximum shift amount of term 1 (2^m1 - 2, per Table I). */
    int maxShift1() const { return maxShift1_; }
    /** Maximum shift amount of term 2. */
    int maxShift2() const { return maxShift2_; }

  private:
    int bits_;
    int denomLog2_;
    int maxShift1_;
    int maxShift2_;
    std::vector<int32_t> ints_;      //!< sorted distinct magnitudes
    std::vector<Sp2Code> codeForInt_; //!< parallel to ints_
    const LevelSet* levels_;          //!< cached SP2 level set
};

/**
 * Encode a dequantized fixed-point weight (alpha * k / L with
 * L = 2^(m-1)-1) as the signed integer k. Calls panic() when the value
 * is not on the fixed grid.
 */
int32_t encodeFixed(float value, float alpha, int bits);

/** Decode a fixed sign-magnitude integer back to a float weight. */
float decodeFixed(int32_t code, float alpha, int bits);

} // namespace mixq

#endif // MIXQ_QUANT_SP2_CODEC_HH
