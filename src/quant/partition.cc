#include "quant/partition.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace mixq {

namespace {

/**
 * Population variance of the biased row float(w[i] + b[i]),
 * bit-identical to materializing the float sums into a buffer and
 * calling variance(): the bias add happens in float, every
 * accumulation in double, in the same order.
 */
double
rowVarianceBiased(const float* w, const float* b, size_t n)
{
    if (n == 0)
        return 0.0;
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) {
        float x = w[i] + b[i];
        s += x;
    }
    double m = s / double(n);
    double sv = 0.0;
    for (size_t i = 0; i < n; ++i) {
        float x = w[i] + b[i];
        sv += (x - m) * (x - m);
    }
    return sv / double(n);
}

} // namespace

PartitionResult
partitionRows(const float* w, size_t rows, size_t cols, double pr_sp2,
              PartitionPolicy policy, uint64_t rng_seed)
{
    return partitionRows(w, nullptr, rows, cols, pr_sp2, policy,
                         rng_seed);
}

PartitionResult
partitionRows(const float* w, const float* bias, size_t rows,
              size_t cols, double pr_sp2, PartitionPolicy policy,
              uint64_t rng_seed)
{
    MIXQ_ASSERT(rows > 0 && cols > 0, "partition: empty matrix");
    MIXQ_ASSERT(pr_sp2 >= 0.0 && pr_sp2 <= 1.0,
                "partition: pr_sp2 must be a fraction in [0,1]");

    PartitionResult res;
    res.rowScheme.assign(rows, QuantScheme::Fixed);
    res.rowVariance.resize(rows);
    // Each row's variance is computed serially by one worker, so the
    // values (and the sort below) are thread-count invariant.
    #pragma omp parallel for schedule(static) \
        if (rows > 1 && rows * cols > 16384)
    for (long r = 0; r < long(rows); ++r) {
        res.rowVariance[size_t(r)] =
            bias ? rowVarianceBiased(w + size_t(r) * cols,
                                     bias + size_t(r) * cols, cols)
                 : variance(std::span<const float>(
                       w + size_t(r) * cols, cols));
    }

    size_t n_sp2 =
        size_t(std::llround(pr_sp2 * double(rows)));
    n_sp2 = std::min(n_sp2, rows);
    res.numSp2 = n_sp2;
    if (n_sp2 == 0)
        return res;

    std::vector<size_t> order(rows);
    std::iota(order.begin(), order.end(), 0);

    switch (policy) {
      case PartitionPolicy::Variance:
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                             return res.rowVariance[a] <
                                    res.rowVariance[b];
                         });
        break;
      case PartitionPolicy::Inverted:
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                             return res.rowVariance[a] >
                                    res.rowVariance[b];
                         });
        break;
      case PartitionPolicy::Random: {
        Rng rng(rng_seed);
        rng.shuffle(order);
        break;
      }
    }

    for (size_t i = 0; i < n_sp2; ++i)
        res.rowScheme[order[i]] = QuantScheme::Sp2;

    if (policy == PartitionPolicy::Variance) {
        // theta: the variance separating the two groups (Alg. 2).
        res.threshold = n_sp2 < rows
            ? res.rowVariance[order[n_sp2]]
            : res.rowVariance[order[rows - 1]] + 1.0;
    }
    return res;
}

} // namespace mixq
