#include "quant/act_quant.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/stats.hh"

namespace mixq {

ActFakeQuant::ActFakeQuant(int bits, bool is_signed)
    : bits_(bits), signed_(is_signed)
{
    MIXQ_ASSERT(bits >= 2 && bits <= 16, "activation bits out of range");
}

void
ActFakeQuant::observe(std::span<const float> x)
{
    double m = maxAbs(x);
    if (m == 0.0)
        return;
    if (!calibrated_) {
        alpha_ = m;
        calibrated_ = true;
    } else {
        alpha_ = ema_ * alpha_ + (1.0 - ema_) * m;
    }
}

void
ActFakeQuant::forward(std::span<float> x)
{
    if (!enabled_)
        return;
    observe(x);
    quantizeOnly(x);
}

void
ActFakeQuant::quantizeOnly(std::span<float> x) const
{
    if (!enabled_ || !calibrated_)
        return;
    // Unsigned: L = 2^n - 1 levels over [0, alpha].
    // Signed: L = 2^(n-1) - 1 magnitudes over [-alpha, alpha].
    // This runs on every activation tensor of every forward pass, so
    // the per-element double divides are hoisted into two precomputed
    // float scales; clamp + mul + round + mul vectorizes cleanly.
    double levels = signed_ ? double((1 << (bits_ - 1)) - 1)
                            : double((1 << bits_) - 1);
    const float a = float(alpha_);
    const float lo = signed_ ? -a : 0.0f;
    const float scale = float(levels / alpha_);
    const float invScale = float(alpha_ / levels);
    float* p = x.data();
    size_t n = x.size();
    #pragma omp simd
    for (size_t i = 0; i < n; ++i) {
        float c = std::clamp(p[i], lo, a);
        p[i] = std::nearbyint(c * scale) * invScale;
    }
}

void
ActFakeQuant::backwardSte(std::span<const float> x_pre,
                          std::span<float> grad) const
{
    if (!enabled_ || !calibrated_)
        return;
    MIXQ_ASSERT(x_pre.size() == grad.size(), "STE size mismatch");
    float a = float(alpha_);
    float lo = signed_ ? -a : 0.0f;
    for (size_t i = 0; i < grad.size(); ++i) {
        if (x_pre[i] < lo || x_pre[i] > a)
            grad[i] = 0.0f;
    }
}

} // namespace mixq
