#include "quant/scheme.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <numeric>
#include <utility>

#include "util/logging.hh"

namespace mixq {

std::string
toString(QuantScheme s)
{
    switch (s) {
      case QuantScheme::Fixed: return "Fixed";
      case QuantScheme::Pow2:  return "P2";
      case QuantScheme::Sp2:   return "SP2";
      case QuantScheme::Mixed: return "MSQ";
    }
    panic("unknown scheme");
}

double
QConfig::fractionFromRatio(double sp2, double fixed)
{
    MIXQ_ASSERT(sp2 >= 0.0 && fixed >= 0.0 && sp2 + fixed > 0.0,
                "bad SP2:Fixed ratio");
    return sp2 / (sp2 + fixed);
}

Sp2Split
sp2Split(int bits)
{
    MIXQ_ASSERT(bits >= 2, "SP2 needs at least 2 bits");
    int payload = bits - 1; // one sign bit
    int m1 = (payload + 1) / 2;
    int m2 = payload - m1;
    return {m1, m2};
}

std::vector<double>
fixedMagnitudes(int bits)
{
    MIXQ_ASSERT(bits >= 2 && bits <= 16, "fixed bits out of range");
    int levels = (1 << (bits - 1)) - 1; // max integer magnitude
    std::vector<double> v;
    v.reserve(levels + 1);
    for (int k = 0; k <= levels; ++k)
        v.push_back(double(k) / double(levels));
    return v;
}

std::vector<double>
pow2Magnitudes(int bits)
{
    MIXQ_ASSERT(bits >= 2 && bits <= 8, "pow2 bits out of range");
    std::vector<double> v;
    v.push_back(0.0);
    int max_exp = (1 << (bits - 1)) - 2; // Eq. (4)
    for (int k = max_exp; k >= 0; --k)
        v.push_back(std::ldexp(1.0, -k));
    std::sort(v.begin(), v.end());
    return v;
}

namespace {

/** The q-term magnitude set {0} + {2^-k : k = 1..2^mi - 1}. */
std::vector<double>
sp2TermSet(int mi)
{
    std::vector<double> v;
    v.push_back(0.0);
    int kmax = (1 << mi) - 1;
    for (int k = 1; k <= kmax; ++k)
        v.push_back(std::ldexp(1.0, -k));
    return v;
}

} // namespace

std::vector<double>
sp2Magnitudes(int bits)
{
    MIXQ_ASSERT(bits >= 2 && bits <= 8, "sp2 bits out of range");
    Sp2Split sp = sp2Split(bits);
    std::vector<double> q1 = sp2TermSet(sp.m1);
    std::vector<double> q2 = sp2TermSet(sp.m2);
    std::vector<double> v;
    v.reserve(q1.size() * q2.size());
    for (double a : q1) {
        for (double b : q2)
            v.push_back(a + b);
    }
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return v;
}

std::vector<double>
magnitudes(QuantScheme s, int bits)
{
    switch (s) {
      case QuantScheme::Fixed: return fixedMagnitudes(bits);
      case QuantScheme::Pow2:  return pow2Magnitudes(bits);
      case QuantScheme::Sp2:   return sp2Magnitudes(bits);
      case QuantScheme::Mixed:
        fatal("Mixed has no single level set; use per-row schemes");
    }
    panic("unknown scheme");
}

namespace {

/**
 * Smallest double t in (lo, hi] for which the scalar reference rule
 * `(t - lo) <= (hi - t) ? lo : hi` picks hi. The predicate is
 * monotone in t (t - lo rounds monotonically up, hi - t down), so
 * the flip point is well defined and bisection over doubles finds it
 * exactly: at t = lo the rule picks lo, at t = hi it picks hi.
 */
double
flipPoint(double lo, double hi)
{
    double a = lo;
    double b = hi;
    while (std::nextafter(a, b) < b) {
        double m = std::midpoint(a, b);
        if ((m - lo) <= (hi - m))
            a = m;
        else
            b = m;
    }
    return b;
}

} // namespace

LevelSet::LevelSet(QuantScheme s, int bits)
    : scheme_(s), bits_(bits), mags_(magnitudes(s, bits))
{
    MIXQ_ASSERT(mags_.size() >= 2, "level set needs >= 2 magnitudes");
    magsF_.reserve(mags_.size());
    for (double m : mags_)
        magsF_.push_back(float(m));

    bnd_.reserve(mags_.size() - 1);
    for (size_t i = 0; i + 1 < mags_.size(); ++i)
        bnd_.push_back(flipPoint(mags_[i], mags_[i + 1]));

    // Pad to a power of two strictly greater than the boundary count
    // so the predicated binary search can return any index in
    // [0, mags-1]; +inf entries never compare <= t.
    size_t p = 1;
    while (p <= bnd_.size())
        p *= 2;
    pad_.assign(p, std::numeric_limits<double>::infinity());
    std::copy(bnd_.begin(), bnd_.end(), pad_.begin());
    search_ = p / 2;
    maxIdx_ = mags_.size() - 1;

    // Mode selection (all modes exact — this is purely measured
    // cost): a predicated linear sweep wins on small sets (its
    // compares are independent, the search's cmov chain is not), the
    // binary search on mid-size sets, and the verified closed-form
    // guess only once the search would need ~7 dependent steps.
    mode_ = bnd_.size() <= 16 ? LevelProjector::Linear
                              : LevelProjector::Search;

    if (s == QuantScheme::Fixed) {
        // The uniform grid admits the closed-form guess
        // k0 = floor(t * L + 0.5); LevelProjector::index corrects it
        // with two predicated comparisons against the exact
        // thresholds, which is only sound when the guess is within
        // one index of the reference assignment. Verify that at
        // every threshold, one ulp below it, and at both ends of
        // [0, 1]: the guess is monotone in t and the true index is a
        // monotone step function flipping only at the thresholds, so
        // the guess error on each constant-index interval is
        // extremal at these checked points.
        levels_ = double(mags_.size() - 1);
        auto guess = [&](double t) {
            return long(t * levels_ + 0.5);
        };
        auto within1 = [&](double t, long want) {
            long g = guess(t);
            return g >= want - 1 && g <= want + 1 && g >= 0 &&
                   g <= long(maxIdx_);
        };
        bool ok = within1(0.0, 0) && within1(1.0, long(maxIdx_));
        for (size_t i = 0; i < bnd_.size(); ++i) {
            ok &= within1(bnd_[i], long(i) + 1);
            ok &= within1(std::nextafter(bnd_[i], 0.0), long(i));
        }
        if (ok && bnd_.size() > 64)
            mode_ = LevelProjector::Uniform;
    }
}

const LevelSet&
levelSet(QuantScheme s, int bits)
{
    MIXQ_ASSERT(s != QuantScheme::Mixed,
                "Mixed has no single level set; use per-row schemes");
    static std::mutex mu;
    static std::map<std::pair<int, int>, LevelSet> cache;
    std::lock_guard<std::mutex> lock(mu);
    auto key = std::make_pair(int(s), bits);
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache.emplace(std::piecewise_construct,
                           std::forward_as_tuple(key),
                           std::forward_as_tuple(s, bits))
                 .first;
    }
    return it->second;
}

std::vector<double>
signedLevels(QuantScheme s, int bits)
{
    std::vector<double> mags = magnitudes(s, bits);
    std::vector<double> v;
    v.reserve(mags.size() * 2);
    for (double m : mags) {
        v.push_back(m);
        if (m != 0.0)
            v.push_back(-m);
    }
    std::sort(v.begin(), v.end());
    return v;
}

} // namespace mixq
