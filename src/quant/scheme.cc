#include "quant/scheme.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace mixq {

std::string
toString(QuantScheme s)
{
    switch (s) {
      case QuantScheme::Fixed: return "Fixed";
      case QuantScheme::Pow2:  return "P2";
      case QuantScheme::Sp2:   return "SP2";
      case QuantScheme::Mixed: return "MSQ";
    }
    panic("unknown scheme");
}

double
QConfig::fractionFromRatio(double sp2, double fixed)
{
    MIXQ_ASSERT(sp2 >= 0.0 && fixed >= 0.0 && sp2 + fixed > 0.0,
                "bad SP2:Fixed ratio");
    return sp2 / (sp2 + fixed);
}

Sp2Split
sp2Split(int bits)
{
    MIXQ_ASSERT(bits >= 2, "SP2 needs at least 2 bits");
    int payload = bits - 1; // one sign bit
    int m1 = (payload + 1) / 2;
    int m2 = payload - m1;
    return {m1, m2};
}

std::vector<double>
fixedMagnitudes(int bits)
{
    MIXQ_ASSERT(bits >= 2 && bits <= 16, "fixed bits out of range");
    int levels = (1 << (bits - 1)) - 1; // max integer magnitude
    std::vector<double> v;
    v.reserve(levels + 1);
    for (int k = 0; k <= levels; ++k)
        v.push_back(double(k) / double(levels));
    return v;
}

std::vector<double>
pow2Magnitudes(int bits)
{
    MIXQ_ASSERT(bits >= 2 && bits <= 8, "pow2 bits out of range");
    std::vector<double> v;
    v.push_back(0.0);
    int max_exp = (1 << (bits - 1)) - 2; // Eq. (4)
    for (int k = max_exp; k >= 0; --k)
        v.push_back(std::ldexp(1.0, -k));
    std::sort(v.begin(), v.end());
    return v;
}

namespace {

/** The q-term magnitude set {0} + {2^-k : k = 1..2^mi - 1}. */
std::vector<double>
sp2TermSet(int mi)
{
    std::vector<double> v;
    v.push_back(0.0);
    int kmax = (1 << mi) - 1;
    for (int k = 1; k <= kmax; ++k)
        v.push_back(std::ldexp(1.0, -k));
    return v;
}

} // namespace

std::vector<double>
sp2Magnitudes(int bits)
{
    MIXQ_ASSERT(bits >= 2 && bits <= 8, "sp2 bits out of range");
    Sp2Split sp = sp2Split(bits);
    std::vector<double> q1 = sp2TermSet(sp.m1);
    std::vector<double> q2 = sp2TermSet(sp.m2);
    std::vector<double> v;
    v.reserve(q1.size() * q2.size());
    for (double a : q1) {
        for (double b : q2)
            v.push_back(a + b);
    }
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return v;
}

std::vector<double>
magnitudes(QuantScheme s, int bits)
{
    switch (s) {
      case QuantScheme::Fixed: return fixedMagnitudes(bits);
      case QuantScheme::Pow2:  return pow2Magnitudes(bits);
      case QuantScheme::Sp2:   return sp2Magnitudes(bits);
      case QuantScheme::Mixed:
        fatal("Mixed has no single level set; use per-row schemes");
    }
    panic("unknown scheme");
}

std::vector<double>
signedLevels(QuantScheme s, int bits)
{
    std::vector<double> mags = magnitudes(s, bits);
    std::vector<double> v;
    v.reserve(mags.size() * 2);
    for (double m : mags) {
        v.push_back(m);
        if (m != 0.0)
            v.push_back(-m);
    }
    std::sort(v.begin(), v.end());
    return v;
}

} // namespace mixq
