#include "quant/admm.hh"

#include "nn/gemm_backend.hh"
#include "util/logging.hh"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace mixq {

namespace {

// Chunk specification of the fused penalty pass: like the quantizer's
// fitAlpha chunks, the boundaries are a pure function of the element
// count — never the thread count — and the per-chunk penalty partials
// merge in the fixed treeReduceValues order, so the returned penalty
// is bit-identical for any OMP_NUM_THREADS.
constexpr size_t kPenaltyChunkElems = 4096;
constexpr size_t kPenaltyMaxChunks = 64;

} // namespace

void
AdmmState::init(std::span<const float> w, const ProjectFn& proj,
                double rho)
{
    rho_ = rho;
    z_.assign(w.size(), 0.0f);
    u_.assign(w.size(), 0.0f);
    proj(w, z_);
}

void
AdmmState::restore(std::span<const float> z, std::span<const float> u,
                   double rho)
{
    MIXQ_ASSERT(z.size() == u.size() && !z.empty(),
                "AdmmState: restore size mismatch");
    rho_ = rho;
    z_.assign(z.begin(), z.end());
    u_.assign(u.begin(), u.end());
}

void
AdmmState::epochUpdate(std::span<const float> w,
                       const BiasedProjectFn& proj)
{
    MIXQ_ASSERT(w.size() == z_.size(), "AdmmState: size changed");
    // The projector owns the whole fused pass: W + U assembly, the
    // projection into Z, and the scaled-dual update of U. Nothing is
    // allocated here — no wu scratch, no extra walks.
    proj(w, u_, z_);
}

void
AdmmState::epochUpdateRef(std::span<const float> w,
                          const ProjectFn& proj)
{
    MIXQ_ASSERT(w.size() == z_.size(), "AdmmState: size changed");
    std::vector<float> wu(w.size());
    for (size_t i = 0; i < w.size(); ++i)
        wu[i] = w[i] + u_[i];
    proj(wu, z_);
    for (size_t i = 0; i < w.size(); ++i)
        u_[i] = w[i] - z_[i] + u_[i];
}

double
AdmmState::addPenaltyGradAndPenalty(std::span<const float> w,
                                    std::span<float> grad) const
{
    MIXQ_ASSERT(w.size() == z_.size() && grad.size() == z_.size(),
                "AdmmState: size mismatch");
    const float* wp = w.data();
    float* gp = grad.data();
    const float* zp = z_.data();
    const float* up = u_.data();
    float rho = float(rho_);

    // One walk computes both halves: the float gradient update uses
    // exactly addPenaltyGrad's expression, the double penalty term
    // exactly penalty()'s. The simd reduction reorders only within a
    // chunk — a function of the vector width, not the thread count.
    auto runChunk = [&](size_t i0, size_t i1) {
        double s = 0.0;
        #pragma omp simd reduction(+ : s)
        for (size_t i = i0; i < i1; ++i) {
            gp[i] += rho * (wp[i] - zp[i] + up[i]);
            double d = double(wp[i]) - double(zp[i]) + double(up[i]);
            s += d * d;
        }
        return s;
    };

    std::vector<size_t> bounds = deterministicBatchChunks(
        w.size(), kPenaltyChunkElems, kPenaltyMaxChunks);
    long nchunks = long(bounds.size()) - 1;
    if (nchunks <= 1)
        return 0.5 * rho_ * runChunk(0, w.size());

    std::vector<double> part(size_t(nchunks), 0.0);
    #pragma omp parallel for schedule(static) if (!inOmpParallel())
    for (long c = 0; c < nchunks; ++c)
        part[size_t(c)] =
            runChunk(bounds[size_t(c)], bounds[size_t(c) + 1]);
    return 0.5 * rho_ * treeReduceValues(std::span<double>(part));
}

void
AdmmState::addPenaltyGrad(std::span<const float> w,
                          std::span<float> grad) const
{
    MIXQ_ASSERT(w.size() == z_.size() && grad.size() == z_.size(),
                "AdmmState: size mismatch");
    float rho = float(rho_);
    for (size_t i = 0; i < w.size(); ++i)
        grad[i] += rho * (w[i] - z_[i] + u_[i]);
}

double
AdmmState::penalty(std::span<const float> w) const
{
    MIXQ_ASSERT(w.size() == z_.size(), "AdmmState: size mismatch");
    double s = 0.0;
    for (size_t i = 0; i < w.size(); ++i) {
        double d = double(w[i]) - double(z_[i]) + double(u_[i]);
        s += d * d;
    }
    return 0.5 * rho_ * s;
}

} // namespace mixq
