#include "quant/admm.hh"

#include "util/logging.hh"

namespace mixq {

void
AdmmState::init(std::span<const float> w, const ProjectFn& proj,
                double rho)
{
    rho_ = rho;
    z_.assign(w.size(), 0.0f);
    u_.assign(w.size(), 0.0f);
    proj(w, z_);
}

void
AdmmState::epochUpdate(std::span<const float> w, const ProjectFn& proj)
{
    MIXQ_ASSERT(w.size() == z_.size(), "AdmmState: size changed");
    std::vector<float> wu(w.size());
    for (size_t i = 0; i < w.size(); ++i)
        wu[i] = w[i] + u_[i];
    proj(wu, z_);
    for (size_t i = 0; i < w.size(); ++i)
        u_[i] = w[i] - z_[i] + u_[i];
}

void
AdmmState::addPenaltyGrad(std::span<const float> w,
                          std::span<float> grad) const
{
    MIXQ_ASSERT(w.size() == z_.size() && grad.size() == z_.size(),
                "AdmmState: size mismatch");
    float rho = float(rho_);
    for (size_t i = 0; i < w.size(); ++i)
        grad[i] += rho * (w[i] - z_[i] + u_[i]);
}

double
AdmmState::penalty(std::span<const float> w) const
{
    MIXQ_ASSERT(w.size() == z_.size(), "AdmmState: size mismatch");
    double s = 0.0;
    for (size_t i = 0; i < w.size(); ++i) {
        double d = double(w[i]) - double(z_[i]) + double(u_[i]);
        s += d * d;
    }
    return 0.5 * rho_ * s;
}

} // namespace mixq
