/**
 * @file
 * Projection of float weights onto a quantization level set with
 * optimized scale alpha, plus the matrix-level MSQ projection that
 * combines the row partitioner with per-group or per-row scales.
 * This is the proj_S(.) operator used by Algorithms 1 and 2.
 *
 * Two implementations share one numeric specification:
 *
 *  - the *kernel* path (fitAlpha over a LevelSet, quantizeMatrix):
 *    branchless cached-LevelSet projection fused into a single
 *    num/den accumulation pass, rows/chunks parallelized with
 *    OpenMP; and
 *  - the *retained scalar reference* (projectValue, the mags-span
 *    fitAlpha overload, quantizeMatrixRef): serial, per-element
 *    lower_bound nearest-magnitude search, kept as the obvious
 *    implementation the kernels are tested against.
 *
 * The two are bit-identical by construction: the LevelSet's
 * precomputed boundaries reproduce the reference's lo-on-tie
 * assignment exactly (see quant/scheme.hh), and both sides
 * accumulate fitAlpha's num/den sums over the same deterministic
 * element chunks merged in the same fixed tree order
 * (deterministicBatchChunks + treeReduceValues from
 * nn/gemm_backend.hh), which also makes every alpha, scheme
 * assignment and projected weight bit-identical across
 * OMP_NUM_THREADS. tests/quant_mt_test.cc pins both guarantees.
 */

#ifndef MIXQ_QUANT_QUANTIZER_HH
#define MIXQ_QUANT_QUANTIZER_HH

#include <span>
#include <vector>

#include "quant/qconfig.hh"
#include "quant/scheme.hh"

namespace mixq {

/**
 * Retained scalar reference of the single-value projection: clip
 * |x| / alpha to [0, 1] per Eq. (3) (computed as |x| * (1 / alpha),
 * matching the kernels), assign the nearest magnitude by lower_bound
 * with the lo-on-tie rule, keep the sign. @p mags must be sorted
 * ascending with mags.front() == 0. LevelSet::projectValue is the
 * kernel equivalent and bit-identical.
 */
double projectValue(double x, std::span<const double> mags, double alpha);

/**
 * Retained scalar reference of the alpha fit: alternate nearest-level
 * assignment and the closed-form least-squares scale
 * alpha = sum(|w| q) / sum(q^2) for @p iters rounds (early exit on
 * relative change <= 1e-7). The num/den sums are accumulated per
 * deterministic element chunk and tree-merged — the shared numeric
 * spec — but each chunk is walked with the scalar projector, serially.
 * Returns the fitted alpha (strictly positive; 1.0 for an all-zero
 * group).
 */
double fitAlpha(std::span<const float> w, std::span<const double> mags,
                int iters = 8);

/**
 * Kernel alpha fit over a cached LevelSet: same specification as the
 * reference overload — bit-identical result — with the projection
 * fused into the accumulation pass (no per-element re-search) and
 * the chunks computed in parallel.
 */
double fitAlpha(std::span<const float> w, const LevelSet& ls,
                int iters = 8);

/**
 * Project every element of @p w onto alpha * ls.mags() into @p out
 * (may alias w), using the branchless kernel projector. Bit-identical
 * to calling the scalar projectValue per element.
 */
void projectGroup(std::span<const float> w, std::span<float> out,
                  const LevelSet& ls, double alpha);

/**
 * Quantize a flat group of weights with one scheme and one alpha via
 * the cached LevelSet registry and the fused kernels. Writes the
 * dequantized values (alpha * level) into @p out and returns the
 * fitted alpha.
 */
double quantizeGroup(std::span<const float> w, std::span<float> out,
                     QuantScheme scheme, int bits);

/** Result of a matrix (per-layer) quantization. */
struct MatrixQuantResult
{
    /** Scheme assigned to each row (all identical unless Mixed). */
    std::vector<QuantScheme> rowScheme;
    /** Effective scale used for each row. */
    std::vector<float> rowAlpha;
    /** Variance threshold theta chosen by the partitioner (Mixed). */
    double threshold = 0.0;
    /** Number of rows assigned to SP2. */
    size_t numSp2 = 0;
};

/**
 * Quantize a rows x cols weight matrix per the QConfig: single-scheme
 * configs project every row with that scheme; Mixed runs Algorithm 2's
 * variance partition and projects each row group with its own scheme.
 * Granularity selects one alpha per scheme group or one per row.
 *
 * Kernel path: PerRow parallelizes across rows (each row fitted and
 * projected serially by one worker), PerGroup fits each scheme
 * group's joint alpha over parallel deterministic chunks of an index
 * view (no gather copy) and projects the group's rows in parallel.
 * Results are bit-identical to quantizeMatrixRef and across
 * OMP_NUM_THREADS.
 *
 * @param w     input weights, row-major rows x cols
 * @param out   output dequantized weights, same layout (may alias w)
 * @param rng_seed  seed for the Random partition policy
 */
MatrixQuantResult quantizeMatrix(const float* w, float* out, size_t rows,
                                 size_t cols, const QConfig& cfg,
                                 uint64_t rng_seed = 1);

/**
 * Fused ADMM epoch-update kernel: quantize the *biased* matrix
 * W + U (assembled on the fly, never materialized) into @p z, then
 * update the scaled dual in place, u[i] = (w[i] - z[i]) + u[i], in
 * the same parallel pass. Performs no heap allocation proportional
 * to the matrix. Bit-identical to gathering wu = w + u into a buffer
 * and running quantizeMatrix(wu, z, ...) followed by the serial dual
 * update (the reference's float evaluation order is preserved
 * operation for operation), and bit-identical across
 * OMP_NUM_THREADS. @p z must not alias @p w or @p u.
 */
MatrixQuantResult quantizeMatrixBiased(const float* w, float* u,
                                       float* z, size_t rows,
                                       size_t cols, const QConfig& cfg,
                                       uint64_t rng_seed = 1);

/**
 * Retained scalar reference of quantizeMatrix: same partition, same
 * chunked fitAlpha specification, but serial throughout with the
 * per-element lower_bound projector. The kernels are benchmarked
 * (BM_QuantizeMatrix* in bench_micro_quant) and tested against it.
 */
MatrixQuantResult quantizeMatrixRef(const float* w, float* out,
                                    size_t rows, size_t cols,
                                    const QConfig& cfg,
                                    uint64_t rng_seed = 1);

/** Mean squared quantization error between two equal-size spans. */
double quantMse(std::span<const float> a, std::span<const float> b);

} // namespace mixq

#endif // MIXQ_QUANT_QUANTIZER_HH
