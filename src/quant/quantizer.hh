/**
 * @file
 * Projection of float weights onto a quantization level set with
 * optimized scale alpha, plus the matrix-level MSQ projection that
 * combines the row partitioner with per-group or per-row scales.
 * This is the proj_S(.) operator used by Algorithms 1 and 2.
 */

#ifndef MIXQ_QUANT_QUANTIZER_HH
#define MIXQ_QUANT_QUANTIZER_HH

#include <span>
#include <vector>

#include "quant/qconfig.hh"
#include "quant/scheme.hh"

namespace mixq {

/**
 * Project one value onto alpha * (sorted magnitude set), preserving
 * sign and clipping to [-alpha, alpha] per Eq. (3). @p mags must be
 * sorted ascending with mags.front() == 0 and mags.back() == max.
 */
double projectValue(double x, std::span<const double> mags, double alpha);

/**
 * Fit the scale alpha for a weight group by alternating nearest-level
 * assignment and the closed-form least-squares scale
 * alpha = sum(|w| q) / sum(q^2). Returns the fitted alpha
 * (strictly positive; 1.0 for an all-zero group).
 */
double fitAlpha(std::span<const float> w, std::span<const double> mags,
                int iters = 8);

/**
 * Quantize a flat group of weights with one scheme and one alpha.
 * Writes the dequantized values (alpha * level) into @p out and
 * returns the fitted alpha.
 */
double quantizeGroup(std::span<const float> w, std::span<float> out,
                     QuantScheme scheme, int bits);

/** Result of a matrix (per-layer) quantization. */
struct MatrixQuantResult
{
    /** Scheme assigned to each row (all identical unless Mixed). */
    std::vector<QuantScheme> rowScheme;
    /** Effective scale used for each row. */
    std::vector<float> rowAlpha;
    /** Variance threshold theta chosen by the partitioner (Mixed). */
    double threshold = 0.0;
    /** Number of rows assigned to SP2. */
    size_t numSp2 = 0;
};

/**
 * Quantize a rows x cols weight matrix per the QConfig: single-scheme
 * configs project every row with that scheme; Mixed runs Algorithm 2's
 * variance partition and projects each row group with its own scheme.
 * Granularity selects one alpha per scheme group or one per row.
 *
 * @param w     input weights, row-major rows x cols
 * @param out   output dequantized weights, same layout (may alias w)
 * @param rng_seed  seed for the Random partition policy
 */
MatrixQuantResult quantizeMatrix(const float* w, float* out, size_t rows,
                                 size_t cols, const QConfig& cfg,
                                 uint64_t rng_seed = 1);

/** Mean squared quantization error between two equal-size spans. */
double quantMse(std::span<const float> a, std::span<const float> b);

} // namespace mixq

#endif // MIXQ_QUANT_QUANTIZER_HH
