#include "quant/sp2_codec.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace mixq {

int32_t
Sp2Code::intMagnitude() const
{
    int32_t v = 0;
    if (j1 >= 0)
        v += int32_t(1) << j1;
    if (j2 >= 0)
        v += int32_t(1) << j2;
    return v;
}

int32_t
Sp2Code::apply(int32_t act) const
{
    int32_t v = 0;
    if (j1 >= 0)
        v += act << j1;
    if (j2 >= 0)
        v += act << j2;
    return sign < 0 ? -v : v;
}

Sp2Codec::Sp2Codec(int bits)
    : bits_(bits), levels_(&levelSet(QuantScheme::Sp2, bits))
{
    Sp2Split sp = sp2Split(bits);
    int k1 = (1 << sp.m1) - 1;
    int k2 = (1 << sp.m2) - 1;
    denomLog2_ = k1;
    maxShift1_ = k1 - 1;               // exponents k=1..K1 -> j=K1-k
    maxShift2_ = k1 - 1;               // term-2 shifts live in the
                                       // high end of the same range
    int min_shift2 = k1 - k2;          // smallest term-2 shift

    // Enumerate all (q1, q2) combinations; for duplicate integer
    // magnitudes keep the first code found (canonical form).
    std::vector<std::pair<int32_t, Sp2Code>> all;
    for (int k1v = 0; k1v <= k1; ++k1v) {       // 0 encodes q1 = 0
        for (int k2v = 0; k2v <= k2; ++k2v) {   // 0 encodes q2 = 0
            Sp2Code c;
            c.sign = 1;
            c.j1 = k1v == 0 ? -1 : int8_t(k1 - k1v);
            c.j2 = k2v == 0 ? -1 : int8_t(k1 - k2v);
            if (c.j2 >= 0)
                MIXQ_ASSERT(c.j2 >= min_shift2, "term-2 shift range");
            all.emplace_back(c.intMagnitude(), c);
        }
    }
    std::sort(all.begin(), all.end(),
              [](const auto& a, const auto& b) {
                  return a.first < b.first;
              });
    for (const auto& [mag, code] : all) {
        if (!ints_.empty() && ints_.back() == mag)
            continue;
        ints_.push_back(mag);
        codeForInt_.push_back(code);
    }

    // Cross-check against the float level set.
    std::vector<double> mags = sp2Magnitudes(bits);
    MIXQ_ASSERT(mags.size() == ints_.size(),
                "codec/level-set cardinality mismatch");
    for (size_t i = 0; i < mags.size(); ++i) {
        double expect = double(ints_[i]) / double(1 << denomLog2_);
        MIXQ_ASSERT(std::fabs(mags[i] - expect) < 1e-12,
                    "codec/level-set value mismatch");
    }
}

Sp2Code
Sp2Codec::encode(float value, float alpha) const
{
    MIXQ_ASSERT(alpha > 0.0f, "encode: non-positive alpha");
    double t = double(std::fabs(value)) / double(alpha);
    // The cached LevelSet's boundary search assigns the nearest level
    // index directly (codeForInt_ is parallel to the level set's
    // magnitudes — the constructor cross-checks the correspondence);
    // t > 1 can only be float32 rounding of alpha * 1.0 / alpha, so
    // clipping it lands on the top level exactly like the reference's
    // llround.
    size_t idx = levels_->nearestIndex(std::min(t, 1.0));
    // Levels are integers >= 1 apart on the 2^K1 grid; tolerate
    // float32 rounding of value/alpha (relative 2^-23 scaled by the
    // denominator) but reject values off the level set.
    double scaled = t * double(1 << denomLog2_);
    MIXQ_ASSERT(std::fabs(scaled - double(ints_[idx])) < 0.02,
                "encode: value is not an SP2 level multiple");
    Sp2Code code = codeForInt_[idx];
    code.sign = value < 0.0f ? -1 : 1;
    return code;
}

Sp2Code
Sp2Codec::encodeRef(float value, float alpha) const
{
    MIXQ_ASSERT(alpha > 0.0f, "encode: non-positive alpha");
    double t = double(std::fabs(value)) / double(alpha);
    double scaled = t * double(1 << denomLog2_);
    int32_t target = int32_t(std::llround(scaled));
    MIXQ_ASSERT(std::fabs(scaled - double(target)) < 0.02,
                "encode: value is not an SP2 level multiple");
    auto it = std::lower_bound(ints_.begin(), ints_.end(), target);
    MIXQ_ASSERT(it != ints_.end() && *it == target,
                "encode: integer magnitude not representable");
    Sp2Code code = codeForInt_[size_t(it - ints_.begin())];
    code.sign = value < 0.0f ? -1 : 1;
    return code;
}

Sp2Code
Sp2Codec::codeForMagnitude(size_t idx) const
{
    MIXQ_ASSERT(idx < codeForInt_.size(),
                "codeForMagnitude: index out of range");
    return codeForInt_[idx];
}

size_t
Sp2Codec::magnitudeIndex(int32_t intMag) const
{
    auto it = std::lower_bound(ints_.begin(), ints_.end(), intMag);
    MIXQ_ASSERT(it != ints_.end() && *it == intMag,
                "magnitudeIndex: magnitude not representable");
    return size_t(it - ints_.begin());
}

float
Sp2Codec::decode(const Sp2Code& code, float alpha) const
{
    double mag = double(code.intMagnitude()) / double(1 << denomLog2_);
    return float((code.sign < 0 ? -mag : mag) * double(alpha));
}

int32_t
encodeFixed(float value, float alpha, int bits)
{
    MIXQ_ASSERT(alpha > 0.0f, "encodeFixed: non-positive alpha");
    int levels = (1 << (bits - 1)) - 1;
    double t = double(value) / double(alpha) * double(levels);
    int32_t k = int32_t(std::llround(t));
    // Grid tolerance must scale with the code magnitude: the input
    // is float32, so a legitimate grid value k * alpha / levels
    // carries up to ~|k| * 2^-24 relative error, which rescaled by
    // levels exceeds a fixed 1e-3 once |k| is large (bits >= 14 in
    // the worst case). Off-grid inputs are still caught — the
    // nearest-code distance is 0.5.
    double tol = std::max(1e-3, double(levels) * 5e-7);
    MIXQ_ASSERT(std::fabs(t - double(k)) < tol,
                "encodeFixed: value is not on the fixed grid");
    MIXQ_ASSERT(std::abs(k) <= levels, "encodeFixed: magnitude overflow");
    return k;
}

float
decodeFixed(int32_t code, float alpha, int bits)
{
    int levels = (1 << (bits - 1)) - 1;
    return float(double(code) / double(levels) * double(alpha));
}

} // namespace mixq
