/**
 * @file
 * Algorithm 2's row partitioner: compute the variance of every row of
 * a layer's weight matrix, pick the threshold theta at the PR_SP2
 * percentile, and assign low-variance (Gaussian-like) rows to SP2 and
 * the rest to fixed-point. Random/Inverted policies support the
 * assignment ablation.
 */

#ifndef MIXQ_QUANT_PARTITION_HH
#define MIXQ_QUANT_PARTITION_HH

#include <cstdint>
#include <vector>

#include "quant/qconfig.hh"

namespace mixq {

/** Outcome of a row partition. */
struct PartitionResult
{
    std::vector<QuantScheme> rowScheme; //!< Fixed or Sp2 per row
    std::vector<double> rowVariance;    //!< variance of each row
    double threshold = 0.0;             //!< theta (Variance policy)
    size_t numSp2 = 0;                  //!< rows assigned to SP2
};

/**
 * Partition the rows of a rows x cols matrix so that a fraction
 * pr_sp2 of rows (rounded to the nearest row count) is assigned SP2.
 *
 * Variance policy: the pr_sp2 lowest-variance rows -> SP2 (paper).
 * Inverted: the highest-variance rows -> SP2 (ablation).
 * Random: uniformly random rows -> SP2 (ablation), seeded.
 */
PartitionResult partitionRows(const float* w, size_t rows, size_t cols,
                              double pr_sp2,
                              PartitionPolicy policy =
                                  PartitionPolicy::Variance,
                              uint64_t rng_seed = 1);

/**
 * Biased overload: partitions the logical matrix whose element (r, c)
 * is float(w[r,c] + bias[r,c]) — the ADMM W + U view — without
 * materializing it. Row variances (and therefore the assignment and
 * theta) are bit-identical to gathering wu = w + bias into a buffer
 * and calling the plain overload. bias == nullptr degrades to the
 * plain overload.
 */
PartitionResult partitionRows(const float* w, const float* bias,
                              size_t rows, size_t cols, double pr_sp2,
                              PartitionPolicy policy =
                                  PartitionPolicy::Variance,
                              uint64_t rng_seed = 1);

} // namespace mixq

#endif // MIXQ_QUANT_PARTITION_HH
