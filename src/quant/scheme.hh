/**
 * @file
 * Quantization level-set construction for the three schemes of the
 * paper: m-bit fixed-point (Eq. 1), power-of-2 (Eq. 4) and the novel
 * sum-of-power-of-2 (Eq. 8). Level sets are expressed as sorted,
 * de-duplicated non-negative magnitudes in [0, 1]; the sign bit is
 * applied at projection time (sign-magnitude representation).
 */

#ifndef MIXQ_QUANT_SCHEME_HH
#define MIXQ_QUANT_SCHEME_HH

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "quant/qconfig.hh"

namespace mixq {

/**
 * The (m1, m2) bit split used by SP2: one sign bit plus two power-of-2
 * exponent fields, m1 + m2 + 1 = m with m1 >= m2 (Section III-A).
 */
struct Sp2Split
{
    int m1;
    int m2;
};

/** Compute the SP2 bit split for an m-bit representation (m >= 2). */
Sp2Split sp2Split(int bits);

/**
 * Non-negative magnitudes of the m-bit fixed-point scheme:
 * { k / (2^(m-1) - 1) : k = 0 .. 2^(m-1) - 1 }.
 */
std::vector<double> fixedMagnitudes(int bits);

/**
 * Non-negative magnitudes of the m-bit power-of-2 scheme:
 * { 0 } + { 2^-k : k = 0 .. 2^(m-1) - 2 }.
 */
std::vector<double> pow2Magnitudes(int bits);

/**
 * Non-negative magnitudes of the m-bit SP2 scheme: all distinct sums
 * q1 + q2 with q1 in {0} + {2^-k : k=1..2^m1-1} and q2 likewise for
 * m2. Note: Eq. (8) counts 2^m - 1 signed levels assuming all sums are
 * distinct; collisions (e.g. 0 + 1/2 = 1/2 + 0) make the distinct
 * count smaller for some m — this function returns the de-duplicated
 * set (see DESIGN.md).
 */
std::vector<double> sp2Magnitudes(int bits);

/** Magnitude set for any non-Mixed scheme. */
std::vector<double> magnitudes(QuantScheme s, int bits);

/**
 * Full signed level set (for plots and tests): the union of
 * +magnitudes and -magnitudes with the shared zero de-duplicated.
 */
std::vector<double> signedLevels(QuantScheme s, int bits);

/**
 * The by-value projection kernel of a LevelSet: a small POD holding
 * the table pointers and search constants, so hot loops that copy it
 * keep everything in registers instead of re-reading LevelSet
 * members through a pointer each element.
 */
struct LevelProjector
{
    /** How index() counts the thresholds <= t. All three are exact;
        construction picks the fastest for the set's size/shape. */
    enum Mode : int {
        Linear,  //!< predicated sweep: independent compares, tiny sets
        Search,  //!< fixed-depth predicated binary search
        Uniform, //!< verified round(t * L) guess + 2 predicated fixups
    };

    const double* mags;   //!< sorted magnitudes
    const double* bnd;    //!< exact thresholds
    const double* pad;    //!< thresholds padded to pow2 with +inf
    size_t nbnd;          //!< threshold count (Linear sweep bound)
    size_t search;        //!< first step of the predicated search
    size_t maxIdx;        //!< mags count - 1
    double levels;        //!< grid density L of the Uniform guess
    int mode;             //!< one of Mode

    /**
     * Index of the magnitude nearest to t in [0, 1] (lo on tie),
     * bit-identical to the scalar lower_bound reference: the true
     * index is the number of exact thresholds <= t. No
     * data-dependent branches in any mode.
     */
    size_t index(double t) const
    {
        if (mode == Linear) {
            // Independent compares: the superscalar core retires
            // several per cycle, beating the search's serially
            // dependent cmov chain on small sets.
            size_t idx = 0;
            for (size_t i = 0; i < nbnd; ++i)
                idx += bnd[i] <= t ? 1 : 0;
            return idx;
        }
        if (mode == Uniform) {
            // The >= 1.0 gate keeps NaN out of the float-to-long
            // conversion (undefined behavior): NaN fails it, takes
            // k = 0, fails both fixup compares, and lands on the
            // zero magnitude — exactly where the scalar reference's
            // lower_bound sends NaN, and what Linear/Search compute.
            double g = t * levels + 0.5;
            long k = g >= 1.0 ? long(g) : 0;
            k -= long(k > 0 && t < bnd[k - 1]);
            k += long(k < long(maxIdx) && t >= bnd[k]);
            return size_t(k);
        }
        size_t idx = 0;
        for (size_t step = search; step > 0; step >>= 1)
            idx += pad[idx + step - 1] <= t ? step : 0;
        return idx;
    }

    /** Magnitude value nearest to t (lo on tie), t in [0, 1]. */
    double mag(double t) const { return mags[index(t)]; }
};

/**
 * Immutable, cached level set of one (scheme, bits) pair, built once
 * by levelSet() and shared by every projection call. Besides the
 * sorted magnitudes (double, plus a float32 copy for float-domain
 * consumers) it precomputes the *decision boundaries* of the
 * nearest-magnitude assignment: boundary b[i] between mags[i] and
 * mags[i+1] is the smallest double t for which the scalar reference
 * rule `(t - lo) <= (hi - t) ? lo : hi` (lo wins ties at midpoints)
 * picks hi, found by bisection over doubles at construction. The
 * LevelProjector's predicated threshold counts therefore reproduce
 * the reference assignment bit for bit — including ties — without
 * per-element branches.
 *
 * For deep uniform Fixed grids, the projector uses the closed form
 * round(t * L) as a *guess* and corrects it against the exact
 * boundary array with two predicated comparisons. Construction
 * verifies the guess lands within one index of the reference
 * assignment at every threshold (both functions are monotone in t,
 * so checking the thresholds bounds the error everywhere) and falls
 * back to the boundary search if not — exactness is never traded
 * for the shortcut.
 */
class LevelSet
{
  public:
    LevelSet(QuantScheme s, int bits);

    QuantScheme scheme() const { return scheme_; }
    int bits() const { return bits_; }
    /** Sorted magnitudes in [0, 1], identical to magnitudes(). */
    std::span<const double> mags() const { return mags_; }
    /** Float32 copies of mags() for float-domain consumers. */
    std::span<const float> magsF() const { return magsF_; }
    /** Exact assignment thresholds; boundaries()[i] is the smallest
        t assigned to mags()[i + 1]. Size mags().size() - 1. */
    std::span<const double> boundaries() const { return bnd_; }
    /** The projector mode construction picked for this set. */
    LevelProjector::Mode mode() const { return mode_; }
    /** Grid density L = mags().size() - 1 of the Uniform guess. */
    double levels() const { return levels_; }

    /** The register-resident projection kernel for hot loops. */
    LevelProjector projector() const
    {
        return {mags_.data(), bnd_.data(), pad_.data(), bnd_.size(),
                search_,      maxIdx_,     levels_,     int(mode_)};
    }

    /** Index of the magnitude nearest to t (lo on tie), t in [0, 1],
        bit-identical to the scalar lower_bound reference. */
    size_t nearestIndex(double t) const { return projector().index(t); }

    /** Magnitude value nearest to t (lo on tie), t in [0, 1]. */
    double nearestMag(double t) const { return mags_[nearestIndex(t)]; }

    /**
     * Project one value onto alpha * mags() per Eq. (3): clip to
     * [-alpha, alpha], assign the nearest magnitude, keep the sign.
     * Bit-identical to the retained scalar projectValue() reference.
     */
    double projectValue(double x, double alpha) const
    {
        double t = std::min(double(std::fabs(x)) * (1.0 / alpha), 1.0);
        return (x < 0.0 ? -1.0 : 1.0) * alpha * mags_[nearestIndex(t)];
    }

  private:
    QuantScheme scheme_;
    int bits_;
    std::vector<double> mags_;
    std::vector<float> magsF_;
    std::vector<double> bnd_;  //!< exact thresholds, size mags-1
    std::vector<double> pad_;  //!< bnd_ padded to pow2 with +inf
    size_t search_ = 0;        //!< first step of the binary search
    size_t maxIdx_ = 0;        //!< mags count - 1
    LevelProjector::Mode mode_ = LevelProjector::Search;
    double levels_ = 0.0;
};

/**
 * The process-wide LevelSet cache: one immutable instance per
 * (scheme, bits), built on first use and shared forever after
 * (references stay valid for the process lifetime). Thread-safe.
 * Mixed has no single level set and is rejected.
 */
const LevelSet& levelSet(QuantScheme s, int bits);

} // namespace mixq

#endif // MIXQ_QUANT_SCHEME_HH
