/**
 * @file
 * Quantization level-set construction for the three schemes of the
 * paper: m-bit fixed-point (Eq. 1), power-of-2 (Eq. 4) and the novel
 * sum-of-power-of-2 (Eq. 8). Level sets are expressed as sorted,
 * de-duplicated non-negative magnitudes in [0, 1]; the sign bit is
 * applied at projection time (sign-magnitude representation).
 */

#ifndef MIXQ_QUANT_SCHEME_HH
#define MIXQ_QUANT_SCHEME_HH

#include <cstdint>
#include <vector>

#include "quant/qconfig.hh"

namespace mixq {

/**
 * The (m1, m2) bit split used by SP2: one sign bit plus two power-of-2
 * exponent fields, m1 + m2 + 1 = m with m1 >= m2 (Section III-A).
 */
struct Sp2Split
{
    int m1;
    int m2;
};

/** Compute the SP2 bit split for an m-bit representation (m >= 2). */
Sp2Split sp2Split(int bits);

/**
 * Non-negative magnitudes of the m-bit fixed-point scheme:
 * { k / (2^(m-1) - 1) : k = 0 .. 2^(m-1) - 1 }.
 */
std::vector<double> fixedMagnitudes(int bits);

/**
 * Non-negative magnitudes of the m-bit power-of-2 scheme:
 * { 0 } + { 2^-k : k = 0 .. 2^(m-1) - 2 }.
 */
std::vector<double> pow2Magnitudes(int bits);

/**
 * Non-negative magnitudes of the m-bit SP2 scheme: all distinct sums
 * q1 + q2 with q1 in {0} + {2^-k : k=1..2^m1-1} and q2 likewise for
 * m2. Note: Eq. (8) counts 2^m - 1 signed levels assuming all sums are
 * distinct; collisions (e.g. 0 + 1/2 = 1/2 + 0) make the distinct
 * count smaller for some m — this function returns the de-duplicated
 * set (see DESIGN.md).
 */
std::vector<double> sp2Magnitudes(int bits);

/** Magnitude set for any non-Mixed scheme. */
std::vector<double> magnitudes(QuantScheme s, int bits);

/**
 * Full signed level set (for plots and tests): the union of
 * +magnitudes and -magnitudes with the shared zero de-duplicated.
 */
std::vector<double> signedLevels(QuantScheme s, int bits);

} // namespace mixq

#endif // MIXQ_QUANT_SCHEME_HH
