/**
 * @file
 * Activation fake-quantization with a straight-through estimator
 * (Eq. 7). Activations use n-bit fixed-point: unsigned after ReLU
 * (Table I's assumption), or symmetric signed for tanh-style ranges
 * in the RNN cells. The clip range alpha is calibrated with an EMA
 * of the observed batch maxima, as is standard for STE training.
 */

#ifndef MIXQ_QUANT_ACT_QUANT_HH
#define MIXQ_QUANT_ACT_QUANT_HH

#include <span>

namespace mixq {

/**
 * One fake-quantizer instance per activation site. forward() quantizes
 * in place; backwardSte() masks the incoming gradient outside the clip
 * range (clipped STE). When `enabled` is false both are no-ops, so the
 * same network code runs the FP32 baseline.
 */
class ActFakeQuant
{
  public:
    ActFakeQuant() = default;

    /**
     * @param bits      activation bit width n
     * @param is_signed symmetric signed range [-alpha, alpha] instead
     *                  of unsigned [0, alpha]
     */
    ActFakeQuant(int bits, bool is_signed);

    /** Enable/disable quantization (disabled passes values through). */
    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /** Update the EMA clip range from a batch of activations. */
    void observe(std::span<const float> x);

    /** Quantize in place; also records x for the STE mask. */
    void forward(std::span<float> x);

    /**
     * Quantize in place with the current clip range, without updating
     * the EMA. This is the const (thread-safe) path for parallel
     * workers: each batch chunk quantizes against a frozen alpha, and
     * the orchestrating thread replays observe() over the cached
     * activations in timestep order afterwards, keeping calibration
     * deterministic across thread counts. Uncalibrated quantizers
     * pass values through, exactly like forward() before the first
     * nonzero observation.
     */
    void quantizeOnly(std::span<float> x) const;

    /**
     * Apply the clipped-STE mask to a gradient: entries whose forward
     * input fell outside the clip range are zeroed. @p x_pre must be
     * the pre-quantization input saved by the caller.
     */
    void backwardSte(std::span<const float> x_pre,
                     std::span<float> grad) const;

    /**
     * Restore a serialized calibration snapshot (serial/checkpoint,
     * serial/deploy): set the enable flag and the EMA state directly
     * instead of replaying observations. Bits and signedness come
     * from the constructor — they are architecture, not calibration.
     */
    void restore(bool enabled, bool calibrated, double alpha)
    {
        enabled_ = enabled;
        calibrated_ = calibrated;
        alpha_ = alpha;
    }

    double alpha() const { return alpha_; }
    int bits() const { return bits_; }
    bool isSigned() const { return signed_; }
    /** True once observe() has seen a nonzero batch (alpha is live).
     *  The integer inference backend requires a calibrated quantizer:
     *  its activation codes are only meaningful against a real clip
     *  range, while quantizeOnly() would silently pass floats through. */
    bool calibrated() const { return calibrated_; }

  private:
    int bits_ = 4;
    bool signed_ = false;
    bool enabled_ = false;
    bool calibrated_ = false;
    double alpha_ = 1.0;
    double ema_ = 0.95;
};

} // namespace mixq

#endif // MIXQ_QUANT_ACT_QUANT_HH
