/**
 * @file
 * Quantization configuration shared across the library: which scheme,
 * how many bits, how scales are grouped, and the MSQ partition knobs
 * (Algorithm 2 of the paper).
 */

#ifndef MIXQ_QUANT_QCONFIG_HH
#define MIXQ_QUANT_QCONFIG_HH

#include <string>

namespace mixq {

/**
 * Weight quantization scheme. Fixed/Pow2/Sp2 follow Eqs. (1), (4) and
 * (8) of the paper; Mixed is the paper's MSQ — an intra-layer ensemble
 * where each weight-matrix row uses either Fixed or Sp2.
 */
enum class QuantScheme { Fixed, Pow2, Sp2, Mixed };

/** Human-readable scheme name as used in the paper's tables. */
std::string toString(QuantScheme s);

/**
 * How Algorithm 2 assigns rows to schemes under Mixed.
 * Variance is the paper's rule (lowest-variance rows get SP2, which
 * suits Gaussian-like rows); Random and Inverted exist for the
 * assignment ablation.
 */
enum class PartitionPolicy { Variance, Random, Inverted };

/** Scale (alpha) granularity for weight quantization. */
enum class Granularity {
    PerGroup,   //!< one alpha per scheme group per layer (paper default)
    PerRow      //!< one alpha per weight-matrix row (per-channel style)
};

/**
 * Full quantization recipe for a training run. Defaults mirror the
 * paper's main configuration: 4-bit weights and activations, MSQ with
 * the FPGA-derived SP2:Fixed = 2:1 ratio, variance partitioning.
 */
struct QConfig
{
    QuantScheme scheme = QuantScheme::Mixed;
    int bits = 4;                   //!< weight bits (sign included)
    /** Fraction of rows assigned to SP2 under Mixed (2:1 -> 2/3). */
    double prSp2 = 2.0 / 3.0;
    PartitionPolicy policy = PartitionPolicy::Variance;
    /**
     * Per-row scales by default: one alpha per output channel folds
     * into the (per-channel) batch-norm constants on the FPGA, costs
     * nothing at inference, and markedly lowers projection error.
     */
    Granularity granularity = Granularity::PerRow;

    bool quantizeActivations = true;
    int actBits = 4;                //!< activation bits (unsigned)

    double rho = 1e-2;              //!< ADMM penalty coefficient

    /** Build the SP2:Fixed fraction from a ratio like 2:1. */
    static double fractionFromRatio(double sp2, double fixed);
};

} // namespace mixq

#endif // MIXQ_QUANT_QCONFIG_HH
