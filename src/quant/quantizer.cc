#include "quant/quantizer.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "nn/gemm_backend.hh"
#include "quant/partition.hh"
#include "util/logging.hh"
#include "util/stats.hh"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace mixq {

namespace {

// Chunk specification shared by the kernel and reference fitAlpha
// paths. The num/den accumulation order is part of the numeric
// contract: sums are formed per chunk and tree-merged, with the
// chunk boundaries a pure function of the element count (never the
// thread count), so kernel == reference == any OMP_NUM_THREADS,
// bit for bit.
constexpr size_t kFitChunkElems = 4096;
constexpr size_t kFitMaxChunks = 64;

/** Nearest magnitude (by absolute distance) in a sorted set, lo on
    tie — the retained scalar reference the LevelSet boundaries are
    bisected against. */
double
nearestMagRef(double t, std::span<const double> mags)
{
    auto it = std::lower_bound(mags.begin(), mags.end(), t);
    if (it == mags.end())
        return mags.back();
    if (it == mags.begin())
        return mags.front();
    double hi = *it;
    double lo = *(it - 1);
    return (t - lo) <= (hi - t) ? lo : hi;
}

// ------------------------------------------------------- element views

/**
 * A group of elements: either a contiguous span (rows == nullptr) or
 * the concatenation of whole matrix rows selected by an index list —
 * the PerGroup index view that replaces the old per-call heap gather.
 * An optional bias array (same layout as w) makes the view's logical
 * element float(w[i] + bias[i]) — the ADMM W + U assembly folded into
 * whatever pass walks the view, instead of a materialized wu buffer.
 */
struct GroupView
{
    const float* w = nullptr;
    const float* bias = nullptr;
    size_t cols = 0;
    const uint32_t* rows = nullptr;
    size_t total = 0;

    static GroupView
    contiguous(const float* w, size_t n, const float* bias = nullptr)
    {
        return GroupView{w, bias, 0, nullptr, n};
    }

    static GroupView
    rowList(const float* w, size_t cols, const uint32_t* rows,
            size_t nrows, const float* bias = nullptr)
    {
        return GroupView{w, bias, cols, rows, nrows * cols};
    }
};

/** Invoke fn(ptr, biasPtr, len) on each contiguous run of elements in
    the global element range [e0, e1) of the view, in order. biasPtr
    is null for unbiased views, else aligned with ptr. */
template <class Fn>
void
forEachRun(const GroupView& v, size_t e0, size_t e1, Fn&& fn)
{
    if (!v.rows) {
        fn(v.w + e0, v.bias ? v.bias + e0 : nullptr, e1 - e0);
        return;
    }
    size_t c0 = e0 % v.cols;
    size_t e = e0;
    for (size_t ri = e0 / v.cols; e < e1; ++ri) {
        size_t take = std::min(v.cols - c0, e1 - e);
        size_t off = size_t(v.rows[ri]) * v.cols + c0;
        fn(v.w + off, v.bias ? v.bias + off : nullptr, take);
        e += take;
        c0 = 0;
    }
}

// ------------------------------------------------- per-run inner loops

/**
 * Reference num/den accumulation over one run of prepared |x|
 * values (the fit driver materializes them once per fit; storing
 * and reloading a double is exact, so this changes nothing).
 */
void
accumRunRef(const double* ax, size_t n, std::span<const double> mags,
            double invAlpha, double& num, double& den)
{
    for (size_t i = 0; i < n; ++i) {
        double a = ax[i];
        double t = std::min(a * invAlpha, 1.0);
        double q = nearestMagRef(t, mags);
        num += a * q;
        den += q * q;
    }
}

/**
 * Fused kernel accumulation: the branchless LevelProjector replaces
 * the per-element lower_bound re-search, everything else matches
 * accumRunRef operation for operation. The sums stay strictly in
 * element order — a SIMD reduction would reorder them — but the
 * projections of consecutive elements are independent, so the
 * out-of-order core overlaps their predicated compare chains.
 */
void
accumRunLs(const double* ax, size_t n, const LevelProjector lp,
           double invAlpha, double& num, double& den)
{
    double lnum = num;
    double lden = den;
    for (size_t i = 0; i < n; ++i) {
        double a = ax[i];
        double q = lp.mags[lp.index(std::min(a * invAlpha, 1.0))];
        lnum += a * q;
        lden += q * q;
    }
    num = lnum;
    den = lden;
}

/**
 * Kernel projection of one contiguous run (out may alias x).
 * Elements are independent, so no ordering care is needed. For the
 * usual small level sets the per-element double multiply and float
 * conversion are hoisted into a per-call output table:
 * tab[k] = float(alpha * mags[k]) is exactly the reference's
 * float((+-1) * alpha * q) because negation commutes with rounding.
 */
void
projectRunLs(const float* x, float* out, size_t n,
             const LevelProjector lp, double alpha, double invAlpha)
{
    constexpr size_t kTabMax = 256;
    size_t nmags = lp.maxIdx + 1;
    if (nmags <= kTabMax) {
        float tab[kTabMax];
        for (size_t k = 0; k < nmags; ++k)
            tab[k] = float(alpha * lp.mags[k]);
        for (size_t i = 0; i < n; ++i) {
            float xi = x[i];
            double t =
                std::min(double(std::fabs(xi)) * invAlpha, 1.0);
            float f = tab[lp.index(t)];
            out[i] = xi < 0.0f ? -f : f;
        }
        return;
    }
    for (size_t i = 0; i < n; ++i) {
        double xi = double(x[i]);
        double t = std::min(double(std::fabs(x[i])) * invAlpha, 1.0);
        double q = lp.mags[lp.index(t)];
        out[i] = float((xi < 0.0 ? -1.0 : 1.0) * alpha * q);
    }
}

/**
 * Fused ADMM projection + scaled-dual update over one contiguous run:
 * z[i] = project(w[i] + u[i]) exactly as projectRunLs would project a
 * materialized wu buffer (same float add, same table, same sign
 * handling), then u[i] = (w[i] - z[i]) + u[i] with the reference's
 * left-to-right float evaluation order — so both outputs are
 * bit-identical to the retained two-pass epochUpdate. z must not
 * alias w or u.
 */
void
projectRunLsBiasedDual(const float* w, float* u, float* z, size_t n,
                       const LevelProjector lp, double alpha,
                       double invAlpha)
{
    constexpr size_t kTabMax = 256;
    size_t nmags = lp.maxIdx + 1;
    if (nmags <= kTabMax) {
        float tab[kTabMax];
        for (size_t k = 0; k < nmags; ++k)
            tab[k] = float(alpha * lp.mags[k]);
        for (size_t i = 0; i < n; ++i) {
            float xi = w[i] + u[i];
            double t =
                std::min(double(std::fabs(xi)) * invAlpha, 1.0);
            float f = tab[lp.index(t)];
            float zi = xi < 0.0f ? -f : f;
            z[i] = zi;
            u[i] = (w[i] - zi) + u[i];
        }
        return;
    }
    for (size_t i = 0; i < n; ++i) {
        float xf = w[i] + u[i];
        double xi = double(xf);
        double t = std::min(double(std::fabs(xf)) * invAlpha, 1.0);
        double q = lp.mags[lp.index(t)];
        float zi = float((xi < 0.0 ? -1.0 : 1.0) * alpha * q);
        z[i] = zi;
        u[i] = (w[i] - zi) + u[i];
    }
}

// --------------------------------------------------- shared fit driver

/** One alpha update from the merged num/den sums; returns true to
    stop iterating. Shared convergence logic of every fit path. */
bool
alphaStep(double num, double den, double& alpha)
{
    if (den == 0.0) {
        // alpha so large everything collapsed to the zero level
        alpha *= 0.5;
        return false;
    }
    double next = num / den;
    bool converged = std::fabs(next - alpha) <= 1e-7 * alpha;
    alpha = next;
    return converged;
}

/**
 * The alpha fit shared by the kernel and reference paths: chunked
 * max-abs initialization, then alternating assignment / closed-form
 * scale rounds with per-chunk num/den partials tree-merged in fixed
 * order. @p accum walks one contiguous run; everything around it —
 * chunking, merge order, convergence logic — is identical between
 * the two paths, which is what makes them bit-identical.
 *
 * Groups of at most one chunk (every PerRow fit) take a dedicated
 * serial path: a one-chunk tree merge is the plain serial sum, and
 * skipping the chunk bookkeeping and OpenMP region entirely matters
 * when the caller runs one fit per matrix row. The serial path and
 * the chunked path at one chunk compute identical sums, and the
 * branch depends only on the element count, so kernel and reference
 * always take the same one.
 */
template <class Accum>
double
fitDriver(const GroupView& v, int iters, bool parallel, Accum&& accum)
{
    if (v.total == 0)
        return 1.0;

    // One prep pass materializes |x| (an exact store/reload) into a
    // reused scratch buffer and finds alpha0 = max|x| on the way, so
    // the fit rounds touch a flat double array instead of re-walking
    // the view. Workers only read their own chunk's slice through a
    // captured pointer (thread_local resolves to *their* empty
    // buffers inside the parallel region, like the GEMM pack
    // buffers).
    static thread_local std::vector<double> scratch;
    scratch.resize(v.total);
    double* ax = scratch.data();

    // Prep inner loops: kept as two branch-free variants so the
    // bias add (the fused W + U assembly — a float add *first*,
    // identical to prepping a materialized float wu buffer)
    // vectorizes as cleanly as the plain walk.
    auto prepRun = [](const float* x, const float* b, double* dst,
                      size_t n) {
        double m = 0.0;
        if (b) {
            for (size_t i = 0; i < n; ++i) {
                double a = double(std::fabs(x[i] + b[i]));
                dst[i] = a;
                m = std::max(m, a);
            }
        } else {
            for (size_t i = 0; i < n; ++i) {
                double a = double(std::fabs(x[i]));
                dst[i] = a;
                m = std::max(m, a);
            }
        }
        return m;
    };

    if (v.total <= kFitChunkElems) {
        double amax = 0.0;
        size_t off = 0;
        forEachRun(v, 0, v.total,
                   [&](const float* x, const float* b, size_t n) {
            amax = std::max(amax, prepRun(x, b, ax + off, n));
            off += n;
        });
        if (amax == 0.0)
            return 1.0;
        double alpha = amax;
        for (int i = 0; i < iters; ++i) {
            double num = 0.0;
            double den = 0.0;
            accum(ax, v.total, 1.0 / alpha, num, den);
            if (alphaStep(num, den, alpha))
                break;
        }
        return std::max(alpha, 1e-12);
    }

    std::vector<size_t> bounds =
        deterministicBatchChunks(v.total, kFitChunkElems, kFitMaxChunks);
    long nchunks = long(bounds.size()) - 1;
    bool par = parallel && nchunks > 1 && !inOmpParallel();

    std::vector<double> pnum(bounds.size() - 1);
    std::vector<double> pden(bounds.size() - 1);

    // Prep + alpha0 = max|w| per chunk. max is exact and
    // associative, so the chunked merge equals the serial scan.
    auto prepChunk = [&, ax](long c) {
        double m = 0.0;
        size_t off = bounds[size_t(c)];
        forEachRun(v, bounds[size_t(c)], bounds[size_t(c) + 1],
                   [&](const float* x, const float* b, size_t n) {
                       m = std::max(m, prepRun(x, b, ax + off, n));
                       off += n;
                   });
        pnum[size_t(c)] = m;
    };
    if (par) {
        #pragma omp parallel for schedule(static)
        for (long c = 0; c < nchunks; ++c)
            prepChunk(c);
    } else {
        for (long c = 0; c < nchunks; ++c)
            prepChunk(c);
    }
    double amax = 0.0;
    for (long c = 0; c < nchunks; ++c)
        amax = std::max(amax, pnum[size_t(c)]);
    if (amax == 0.0)
        return 1.0;

    double alpha = amax;
    for (int i = 0; i < iters; ++i) {
        double invAlpha = 1.0 / alpha;
        auto accumChunk = [&, ax](long c) {
            double num = 0.0;
            double den = 0.0;
            accum(ax + bounds[size_t(c)],
                  bounds[size_t(c) + 1] - bounds[size_t(c)], invAlpha,
                  num, den);
            pnum[size_t(c)] = num;
            pden[size_t(c)] = den;
        };
        if (par) {
            #pragma omp parallel for schedule(static)
            for (long c = 0; c < nchunks; ++c)
                accumChunk(c);
        } else {
            for (long c = 0; c < nchunks; ++c)
                accumChunk(c);
        }
        double num = treeReduceValues(std::span<double>(pnum));
        double den = treeReduceValues(std::span<double>(pden));
        if (alphaStep(num, den, alpha))
            break;
    }
    return std::max(alpha, 1e-12);
}

double
fitAlphaView(const GroupView& v, const LevelSet& ls, int iters)
{
    LevelProjector lp = ls.projector();
    return fitDriver(v, iters, /*parallel=*/true,
                     [lp](const double* ax, size_t n, double invAlpha,
                          double& num, double& den) {
                         accumRunLs(ax, n, lp, invAlpha, num, den);
                     });
}

} // namespace

double
projectValue(double x, std::span<const double> mags, double alpha)
{
    MIXQ_ASSERT(alpha > 0.0, "projectValue: non-positive alpha");
    double t = std::min(std::fabs(x) * (1.0 / alpha), 1.0); // Eq. (3)
    double q = nearestMagRef(t, mags);
    return (x < 0.0 ? -1.0 : 1.0) * alpha * q;
}

double
fitAlpha(std::span<const float> w, std::span<const double> mags,
         int iters)
{
    return fitDriver(GroupView::contiguous(w.data(), w.size()), iters,
                     /*parallel=*/false,
                     [&](const double* ax, size_t n, double invAlpha,
                         double& num, double& den) {
                         accumRunRef(ax, n, mags, invAlpha, num, den);
                     });
}

double
fitAlpha(std::span<const float> w, const LevelSet& ls, int iters)
{
    return fitAlphaView(GroupView::contiguous(w.data(), w.size()), ls,
                        iters);
}

void
projectGroup(std::span<const float> w, std::span<float> out,
             const LevelSet& ls, double alpha)
{
    MIXQ_ASSERT(w.size() == out.size(), "projectGroup size mismatch");
    MIXQ_ASSERT(alpha > 0.0, "projectGroup: non-positive alpha");
    double invAlpha = 1.0 / alpha;
    LevelProjector lp = ls.projector();
    long blocks = long((w.size() + kFitChunkElems - 1) / kFitChunkElems);
    if (blocks <= 1 || inOmpParallel()) {
        projectRunLs(w.data(), out.data(), w.size(), lp, alpha,
                     invAlpha);
        return;
    }
    // Elementwise-independent, so parallel blocks cannot change any
    // value; the block size only bounds scheduling overhead.
    #pragma omp parallel for schedule(static)
    for (long b = 0; b < blocks; ++b) {
        size_t i0 = size_t(b) * kFitChunkElems;
        size_t i1 = std::min(w.size(), i0 + kFitChunkElems);
        projectRunLs(w.data() + i0, out.data() + i0, i1 - i0, lp,
                     alpha, invAlpha);
    }
}

double
quantizeGroup(std::span<const float> w, std::span<float> out,
              QuantScheme scheme, int bits)
{
    MIXQ_ASSERT(w.size() == out.size(), "quantizeGroup size mismatch");
    const LevelSet& ls = levelSet(scheme, bits);
    double alpha = fitAlpha(w, ls);
    projectGroup(w, out, ls, alpha);
    return alpha;
}

namespace {

/** Partition + result scaffolding shared by the kernel and reference
    matrix paths (the partitioner itself is already deterministic).
    A non-null bias partitions the W + U view without gathering it. */
MatrixQuantResult
initMatrixResult(const float* w, const float* bias, size_t rows,
                 size_t cols, const QConfig& cfg, uint64_t rng_seed)
{
    MatrixQuantResult res;
    res.rowScheme.assign(rows, cfg.scheme);
    res.rowAlpha.assign(rows, 1.0f);
    if (cfg.scheme == QuantScheme::Mixed) {
        PartitionResult part = partitionRows(
            w, bias, rows, cols, cfg.prSp2, cfg.policy, rng_seed);
        res.rowScheme = std::move(part.rowScheme);
        res.threshold = part.threshold;
        res.numSp2 = part.numSp2;
    }
    return res;
}

} // namespace

MatrixQuantResult
quantizeMatrix(const float* w, float* out, size_t rows, size_t cols,
               const QConfig& cfg, uint64_t rng_seed)
{
    MIXQ_ASSERT(rows > 0 && cols > 0, "empty matrix");
    MatrixQuantResult res =
        initMatrixResult(w, nullptr, rows, cols, cfg, rng_seed);

    // Resolve the (at most two) cached level sets before any parallel
    // region: levelSet() takes a lock the workers should not contend
    // on.
    const LevelSet* sets[3] = {};
    for (QuantScheme s : res.rowScheme) {
        const LevelSet*& p = sets[int(s)];
        if (!p)
            p = &levelSet(s, cfg.bits);
    }

    if (cfg.granularity == Granularity::PerRow) {
        // One worker owns each row end to end; per-row math is
        // serial, so the outputs are bit-identical for any thread
        // count and any schedule.
        #pragma omp parallel for schedule(static) \
            if (rows > 1 && !inOmpParallel())
        for (long r = 0; r < long(rows); ++r) {
            const float* row = w + size_t(r) * cols;
            const LevelSet& ls = *sets[int(res.rowScheme[size_t(r)])];
            double alpha =
                fitAlphaView(GroupView::contiguous(row, cols), ls, 8);
            res.rowAlpha[size_t(r)] = float(alpha);
            projectRunLs(row, out + size_t(r) * cols, cols,
                         ls.projector(), alpha, 1.0 / alpha);
        }
        return res;
    }

    // PerGroup: fit one joint alpha per scheme group over an index
    // view of its rows (no gather copy), then project the group's
    // rows in parallel. The index view walks elements in the same
    // order as the reference's gathered copy, so the chunked fit
    // sums are bit-identical to quantizeMatrixRef.
    for (QuantScheme s : {QuantScheme::Fixed, QuantScheme::Sp2,
                          QuantScheme::Pow2}) {
        std::vector<uint32_t> rl;
        for (size_t r = 0; r < rows; ++r) {
            if (res.rowScheme[r] == s)
                rl.push_back(uint32_t(r));
        }
        if (rl.empty())
            continue;
        const LevelSet& ls = *sets[int(s)];
        double alpha = fitAlphaView(
            GroupView::rowList(w, cols, rl.data(), rl.size()), ls, 8);
        double invAlpha = 1.0 / alpha;
        LevelProjector lp = ls.projector();
        #pragma omp parallel for schedule(static) \
            if (rl.size() > 1 && !inOmpParallel())
        for (long i = 0; i < long(rl.size()); ++i) {
            size_t r = rl[size_t(i)];
            res.rowAlpha[r] = float(alpha);
            projectRunLs(w + r * cols, out + r * cols, cols, lp, alpha,
                         invAlpha);
        }
    }
    return res;
}

MatrixQuantResult
quantizeMatrixBiased(const float* w, float* u, float* z, size_t rows,
                     size_t cols, const QConfig& cfg, uint64_t rng_seed)
{
    MIXQ_ASSERT(rows > 0 && cols > 0, "empty matrix");
    MIXQ_ASSERT(z != w && z != u, "z must not alias w or u");
    MatrixQuantResult res =
        initMatrixResult(w, u, rows, cols, cfg, rng_seed);

    const LevelSet* sets[3] = {};
    for (QuantScheme s : res.rowScheme) {
        const LevelSet*& p = sets[int(s)];
        if (!p)
            p = &levelSet(s, cfg.bits);
    }

    if (cfg.granularity == Granularity::PerRow) {
        // One worker per row, as in quantizeMatrix; the fused
        // projection run writes that row's z and u slices, which no
        // other worker touches.
        #pragma omp parallel for schedule(static) \
            if (rows > 1 && !inOmpParallel())
        for (long r = 0; r < long(rows); ++r) {
            size_t off = size_t(r) * cols;
            const LevelSet& ls = *sets[int(res.rowScheme[size_t(r)])];
            double alpha = fitAlphaView(
                GroupView::contiguous(w + off, cols, u + off), ls, 8);
            res.rowAlpha[size_t(r)] = float(alpha);
            projectRunLsBiasedDual(w + off, u + off, z + off, cols,
                                   ls.projector(), alpha, 1.0 / alpha);
        }
        return res;
    }

    // PerGroup: joint alpha per scheme group over the biased index
    // view, then the group's rows projected (and their dual slices
    // updated) in parallel.
    for (QuantScheme s : {QuantScheme::Fixed, QuantScheme::Sp2,
                          QuantScheme::Pow2}) {
        std::vector<uint32_t> rl;
        for (size_t r = 0; r < rows; ++r) {
            if (res.rowScheme[r] == s)
                rl.push_back(uint32_t(r));
        }
        if (rl.empty())
            continue;
        const LevelSet& ls = *sets[int(s)];
        double alpha = fitAlphaView(
            GroupView::rowList(w, cols, rl.data(), rl.size(), u), ls,
            8);
        double invAlpha = 1.0 / alpha;
        LevelProjector lp = ls.projector();
        #pragma omp parallel for schedule(static) \
            if (rl.size() > 1 && !inOmpParallel())
        for (long i = 0; i < long(rl.size()); ++i) {
            size_t r = rl[size_t(i)];
            size_t off = r * cols;
            res.rowAlpha[r] = float(alpha);
            projectRunLsBiasedDual(w + off, u + off, z + off, cols, lp,
                                   alpha, invAlpha);
        }
    }
    return res;
}

MatrixQuantResult
quantizeMatrixRef(const float* w, float* out, size_t rows, size_t cols,
                  const QConfig& cfg, uint64_t rng_seed)
{
    MIXQ_ASSERT(rows > 0 && cols > 0, "empty matrix");
    MatrixQuantResult res =
        initMatrixResult(w, nullptr, rows, cols, cfg, rng_seed);

    std::vector<double> fixed_mags = fixedMagnitudes(cfg.bits);
    std::vector<double> sp2_mags = sp2Magnitudes(cfg.bits);
    std::vector<double> pow2_mags = pow2Magnitudes(cfg.bits);
    auto mags_for = [&](QuantScheme s) -> std::span<const double> {
        switch (s) {
          case QuantScheme::Fixed: return fixed_mags;
          case QuantScheme::Sp2:   return sp2_mags;
          case QuantScheme::Pow2:  return pow2_mags;
          default: panic("row scheme must be concrete");
        }
    };

    if (cfg.granularity == Granularity::PerRow) {
        for (size_t r = 0; r < rows; ++r) {
            std::span<const float> row(w + r * cols, cols);
            auto mags = mags_for(res.rowScheme[r]);
            double alpha = fitAlpha(row, mags);
            res.rowAlpha[r] = float(alpha);
            for (size_t c = 0; c < cols; ++c)
                out[r * cols + c] =
                    float(projectValue(row[c], mags, alpha));
        }
        return res;
    }

    // PerGroup: gather each scheme group, fit a joint alpha, project.
    for (QuantScheme s : {QuantScheme::Fixed, QuantScheme::Sp2,
                          QuantScheme::Pow2}) {
        std::vector<float> group;
        for (size_t r = 0; r < rows; ++r) {
            if (res.rowScheme[r] == s)
                group.insert(group.end(), w + r * cols,
                             w + (r + 1) * cols);
        }
        if (group.empty())
            continue;
        auto mags = mags_for(s);
        double alpha = fitAlpha(group, mags);
        for (size_t r = 0; r < rows; ++r) {
            if (res.rowScheme[r] != s)
                continue;
            res.rowAlpha[r] = float(alpha);
            for (size_t c = 0; c < cols; ++c)
                out[r * cols + c] =
                    float(projectValue(w[r * cols + c], mags, alpha));
        }
    }
    return res;
}

double
quantMse(std::span<const float> a, std::span<const float> b)
{
    MIXQ_ASSERT(a.size() == b.size(), "quantMse size mismatch");
    if (a.empty())
        return 0.0;
    double s = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        double d = double(a[i]) - double(b[i]);
        s += d * d;
    }
    return s / double(a.size());
}

} // namespace mixq
