#include "quant/quantizer.hh"

#include <algorithm>
#include <cmath>

#include "quant/partition.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace mixq {

namespace {

/** Nearest magnitude (by absolute distance) in a sorted set. */
double
nearestMag(double t, std::span<const double> mags)
{
    auto it = std::lower_bound(mags.begin(), mags.end(), t);
    if (it == mags.end())
        return mags.back();
    if (it == mags.begin())
        return mags.front();
    double hi = *it;
    double lo = *(it - 1);
    return (t - lo) <= (hi - t) ? lo : hi;
}

} // namespace

double
projectValue(double x, std::span<const double> mags, double alpha)
{
    MIXQ_ASSERT(alpha > 0.0, "projectValue: non-positive alpha");
    double t = std::fabs(x) / alpha;
    t = std::min(t, 1.0); // Eq. (3) clip
    double q = nearestMag(t, mags);
    return (x < 0.0 ? -1.0 : 1.0) * alpha * q;
}

double
fitAlpha(std::span<const float> w, std::span<const double> mags, int iters)
{
    double amax = maxAbs(w);
    if (amax == 0.0)
        return 1.0;
    double alpha = amax;
    for (int i = 0; i < iters; ++i) {
        double num = 0.0;
        double den = 0.0;
        for (float x : w) {
            double t = std::min(double(std::fabs(x)) / alpha, 1.0);
            double q = nearestMag(t, mags);
            num += std::fabs(double(x)) * q;
            den += q * q;
        }
        if (den == 0.0) {
            // alpha so large everything collapsed to the zero level
            alpha *= 0.5;
            continue;
        }
        double next = num / den;
        if (std::fabs(next - alpha) <= 1e-7 * alpha) {
            alpha = next;
            break;
        }
        alpha = next;
    }
    return std::max(alpha, 1e-12);
}

double
quantizeGroup(std::span<const float> w, std::span<float> out,
              QuantScheme scheme, int bits)
{
    MIXQ_ASSERT(w.size() == out.size(), "quantizeGroup size mismatch");
    std::vector<double> mags = magnitudes(scheme, bits);
    double alpha = fitAlpha(w, mags);
    for (size_t i = 0; i < w.size(); ++i)
        out[i] = float(projectValue(w[i], mags, alpha));
    return alpha;
}

MatrixQuantResult
quantizeMatrix(const float* w, float* out, size_t rows, size_t cols,
               const QConfig& cfg, uint64_t rng_seed)
{
    MIXQ_ASSERT(rows > 0 && cols > 0, "empty matrix");
    MatrixQuantResult res;
    res.rowScheme.assign(rows, cfg.scheme);
    res.rowAlpha.assign(rows, 1.0f);

    if (cfg.scheme == QuantScheme::Mixed) {
        PartitionResult part =
            partitionRows(w, rows, cols, cfg.prSp2, cfg.policy, rng_seed);
        res.rowScheme = std::move(part.rowScheme);
        res.threshold = part.threshold;
        res.numSp2 = part.numSp2;
    }

    std::vector<double> fixed_mags = fixedMagnitudes(cfg.bits);
    std::vector<double> sp2_mags = sp2Magnitudes(cfg.bits);
    std::vector<double> pow2_mags = pow2Magnitudes(cfg.bits);
    auto mags_for = [&](QuantScheme s) -> std::span<const double> {
        switch (s) {
          case QuantScheme::Fixed: return fixed_mags;
          case QuantScheme::Sp2:   return sp2_mags;
          case QuantScheme::Pow2:  return pow2_mags;
          default: panic("row scheme must be concrete");
        }
    };

    if (cfg.granularity == Granularity::PerRow) {
        for (size_t r = 0; r < rows; ++r) {
            std::span<const float> row(w + r * cols, cols);
            auto mags = mags_for(res.rowScheme[r]);
            double alpha = fitAlpha(row, mags);
            res.rowAlpha[r] = float(alpha);
            for (size_t c = 0; c < cols; ++c)
                out[r * cols + c] =
                    float(projectValue(row[c], mags, alpha));
        }
        return res;
    }

    // PerGroup: gather each scheme group, fit a joint alpha, project.
    for (QuantScheme s : {QuantScheme::Fixed, QuantScheme::Sp2,
                          QuantScheme::Pow2}) {
        std::vector<float> group;
        for (size_t r = 0; r < rows; ++r) {
            if (res.rowScheme[r] == s)
                group.insert(group.end(), w + r * cols,
                             w + (r + 1) * cols);
        }
        if (group.empty())
            continue;
        auto mags = mags_for(s);
        double alpha = fitAlpha(group, mags);
        for (size_t r = 0; r < rows; ++r) {
            if (res.rowScheme[r] != s)
                continue;
            res.rowAlpha[r] = float(alpha);
            for (size_t c = 0; c < cols; ++c)
                out[r * cols + c] =
                    float(projectValue(w[r * cols + c], mags, alpha));
        }
    }
    return res;
}

double
quantMse(std::span<const float> a, std::span<const float> b)
{
    MIXQ_ASSERT(a.size() == b.size(), "quantMse size mismatch");
    if (a.empty())
        return 0.0;
    double s = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        double d = double(a[i]) - double(b[i]);
        s += d * d;
    }
    return s / double(a.size());
}

} // namespace mixq
