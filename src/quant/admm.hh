/**
 * @file
 * ADMM state for quantization-aware training (Algorithm 1/2). One
 * AdmmState is kept per quantized weight tensor; each epoch the dual
 * variables are refreshed with the projection of W + U, and each batch
 * the penalty gradient rho * (W - Z + U) is added to the weight
 * gradient, steering W toward the quantization constraint set.
 *
 * Both per-step operations come in a *fused* form — the training hot
 * path — and a retained reference form the fused kernels are tested
 * against:
 *
 *  - epochUpdate() hands W, U and Z to a fused projector (in practice
 *    quant/quantizer's quantizeMatrixBiased) that assembles W + U on
 *    the fly, projects, and updates the scaled dual in one parallel
 *    pass with no matrix-sized scratch; epochUpdateRef() is the
 *    obvious two-pass implementation (materialize wu, project, walk
 *    again for U) and, driven by matching projectors, is
 *    bit-identical.
 *  - addPenaltyGradAndPenalty() fuses the per-batch penalty-gradient
 *    accumulation and the penalty sum into one chunk-parallel pass
 *    whose per-chunk partials merge in a fixed tree order
 *    (bit-identical across OMP_NUM_THREADS); addPenaltyGrad() and
 *    penalty() are the retained serial references.
 */

#ifndef MIXQ_QUANT_ADMM_HH
#define MIXQ_QUANT_ADMM_HH

#include <functional>
#include <span>
#include <vector>

namespace mixq {

/**
 * Dual/auxiliary variables of the ADMM splitting for one tensor.
 * The projection operator is supplied by the caller so that the same
 * state drives Fixed, P2, SP2 and MSQ (with its per-epoch partition).
 */
class AdmmState
{
  public:
    /** proj: (input weights, output projected weights), equal size. */
    using ProjectFn = std::function<void(std::span<const float>,
                                         std::span<float>)>;

    /**
     * Fused epoch-update projector: given (W, U, Z) of equal size,
     * write Z = proj(W + U) and update U = W - Z + U in place —
     * quantizeMatrixBiased wrapped over one parameter's matrix view.
     */
    using BiasedProjectFn = std::function<void(
        std::span<const float>, std::span<float>, std::span<float>)>;

    AdmmState() = default;

    /** Initialize Z = proj(W), U = 0 for an n-element tensor. */
    void init(std::span<const float> w, const ProjectFn& proj,
              double rho);

    /**
     * Restore serialized state (checkpoint load): overwrite Z and U
     * with saved values of equal size and reset rho. Replaces init()
     * for a state whose training history lives in a checkpoint.
     */
    void restore(std::span<const float> z, std::span<const float> u,
                 double rho);

    /**
     * Fused per-epoch dual update: the projector receives (W, U, Z)
     * and performs Z = proj(W + U); U = W - Z + U in one pass. This
     * method allocates nothing; with a quantizeMatrixBiased-backed
     * projector the whole update is one fused parallel pass,
     * bit-identical to epochUpdateRef with the matching plain
     * projector.
     */
    void epochUpdate(std::span<const float> w,
                     const BiasedProjectFn& proj);

    /**
     * Retained two-pass reference of the epoch update: materialize
     * wu = W + U, Z = proj(wu), then U = W - Z + U in a second walk.
     * Kept as the specification epochUpdate is tested and benchmarked
     * against.
     */
    void epochUpdateRef(std::span<const float> w,
                        const ProjectFn& proj);

    /**
     * Fused per-batch penalty pass: add rho * (W - Z + U) into
     * @p grad and return the penalty rho/2 * ||W - Z + U||^2, both
     * computed in one chunk-parallel walk. The penalty sum is formed
     * per deterministic element chunk and merged by the fixed
     * reduction tree, so the value is bit-identical across
     * OMP_NUM_THREADS (it differs from the serial penalty() at
     * rounding level only).
     */
    double addPenaltyGradAndPenalty(std::span<const float> w,
                                    std::span<float> grad) const;

    /** Add rho * (W - Z + U) into an existing gradient (retained
        serial reference of the fused pass's gradient half). */
    void addPenaltyGrad(std::span<const float> w,
                        std::span<float> grad) const;

    /** The penalty term rho/2 * ||W - Z + U||^2 (retained serial
        reference of the fused pass's penalty half). */
    double penalty(std::span<const float> w) const;

    /** Auxiliary variable Z (the current projected target). */
    std::span<const float> z() const { return z_; }
    /** Scaled dual variable U. */
    std::span<const float> u() const { return u_; }
    double rho() const { return rho_; }
    bool initialized() const { return !z_.empty(); }

  private:
    std::vector<float> z_;
    std::vector<float> u_;
    double rho_ = 1e-3;
};

} // namespace mixq

#endif // MIXQ_QUANT_ADMM_HH
