/**
 * @file
 * ADMM state for quantization-aware training (Algorithm 1/2). One
 * AdmmState is kept per quantized weight tensor; each epoch the dual
 * variables are refreshed with the projection of W + U, and each batch
 * the penalty gradient rho * (W - Z + U) is added to the weight
 * gradient, steering W toward the quantization constraint set.
 */

#ifndef MIXQ_QUANT_ADMM_HH
#define MIXQ_QUANT_ADMM_HH

#include <functional>
#include <span>
#include <vector>

namespace mixq {

/**
 * Dual/auxiliary variables of the ADMM splitting for one tensor.
 * The projection operator is supplied by the caller so that the same
 * state drives Fixed, P2, SP2 and MSQ (with its per-epoch partition).
 */
class AdmmState
{
  public:
    /** proj: (input weights, output projected weights), equal size. */
    using ProjectFn = std::function<void(std::span<const float>,
                                         std::span<float>)>;

    AdmmState() = default;

    /** Initialize Z = proj(W), U = 0 for an n-element tensor. */
    void init(std::span<const float> w, const ProjectFn& proj,
              double rho);

    /** Per-epoch dual update: Z = proj(W + U); U = W - Z + U. */
    void epochUpdate(std::span<const float> w, const ProjectFn& proj);

    /** Add rho * (W - Z + U) into an existing gradient. */
    void addPenaltyGrad(std::span<const float> w,
                        std::span<float> grad) const;

    /** The penalty term rho/2 * ||W - Z + U||^2 (for loss reporting). */
    double penalty(std::span<const float> w) const;

    /** Auxiliary variable Z (the current projected target). */
    std::span<const float> z() const { return z_; }
    /** Scaled dual variable U. */
    std::span<const float> u() const { return u_; }
    double rho() const { return rho_; }
    bool initialized() const { return !z_.empty(); }

  private:
    std::vector<float> z_;
    std::vector<float> u_;
    double rho_ = 1e-3;
};

} // namespace mixq

#endif // MIXQ_QUANT_ADMM_HH
