#include "baselines/ste_qat.hh"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "nn/loss.hh"
#include "nn/optim.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace mixq {

void
WeightProjector::attach(const std::vector<Param*>& params)
{
    params_.clear();
    for (Param* p : params) {
        if (p->quantizable())
            params_.push_back(p);
    }
    MIXQ_ASSERT(!params_.empty(), "projector: nothing to quantize");
}

void
WeightProjector::epochBegin(int epoch, int total_epochs)
{
    epoch_ = epoch;
    totalEpochs_ = std::max(total_epochs, 1);
}

void
steQatTrain(Module& model, const LabeledImages& train,
            const TrainCfg& cfg, WeightProjector& proj, int act_bits)
{
    proj.attach(model.params());
    model.setActQuant(act_bits, true);

    Sgd sgd(model.params(), cfg.lr, cfg.momentum, cfg.weightDecay);
    Rng rng(cfg.seed);
    std::vector<size_t> order(train.size());
    std::iota(order.begin(), order.end(), 0);

    std::vector<Tensor> latents;
    auto save_and_project = [&]() {
        latents.clear();
        for (Param* p : model.params()) {
            if (!p->quantizable())
                continue;
            latents.push_back(p->w);
            proj.project(*p);
            p->noteUpdated();
        }
    };
    auto restore = [&]() {
        size_t i = 0;
        for (Param* p : model.params()) {
            if (!p->quantizable())
                continue;
            p->w = latents[i++];
            p->noteUpdated();
        }
    };

    size_t item = train.images.size() / train.images.dim(0);
    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        proj.epochBegin(epoch, cfg.epochs);
        sgd.setLr(cfg.cosine ? cosineLr(cfg.lr, epoch, cfg.epochs)
                             : stepLr(cfg.lr, epoch, cfg.stepEvery));
        rng.shuffle(order);
        for (size_t b0 = 0; b0 < train.size(); b0 += cfg.batch) {
            size_t b1 = std::min(b0 + cfg.batch, train.size());
            size_t bn = b1 - b0;
            std::vector<size_t> shape = train.images.shape();
            shape[0] = bn;
            Tensor x(shape);
            std::vector<int> y(bn);
            for (size_t i = 0; i < bn; ++i) {
                size_t src = order[b0 + i];
                std::memcpy(x.data() + i * item,
                            train.images.data() + src * item,
                            item * sizeof(float));
                y[i] = train.labels[src];
            }

            sgd.zeroGrad();
            save_and_project();
            Tensor logits = model.forward(x, true);
            Tensor dlogits;
            softmaxCrossEntropy(logits, y, dlogits);
            model.backward(dlogits);
            restore();
            sgd.step();
        }
    }
    // Deployable model: hard-project the trained latents.
    for (Param* p : model.params()) {
        if (p->quantizable()) {
            proj.project(*p);
            p->noteUpdated();
        }
    }
}

} // namespace mixq
