#include "baselines/methods.hh"

#include <algorithm>
#include <cmath>

#include "quant/quantizer.hh"
#include "quant/scheme.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace mixq {

namespace {

/** Uniform symmetric projection with L = 2^(m-1)-1 magnitudes. */
void
uniformProject(Param& p, double alpha, int bits)
{
    double levels = double((1 << (bits - 1)) - 1);
    for (size_t i = 0; i < p.w.size(); ++i) {
        double t = std::clamp(double(p.w[i]) / alpha, -1.0, 1.0);
        p.w[i] = float(std::nearbyint(t * levels) / levels * alpha);
    }
}

/** Closed-form alternating MSE fit of a uniform step (LSQ-style),
    on the cached Fixed level set (no per-call magnitude rebuild). */
double
fitUniformAlpha(const Param& p, int bits)
{
    return fitAlpha(p.w.span(), levelSet(QuantScheme::Fixed, bits));
}

} // namespace

// --------------------------------------------------------------- DoReFa

void
DorefaProjector::project(Param& p)
{
    // t = tanh(w) / max|tanh(w)| in [-1, 1], quantized uniformly.
    double tmax = 0.0;
    for (size_t i = 0; i < p.w.size(); ++i)
        tmax = std::max(tmax, std::fabs(std::tanh(double(p.w[i]))));
    if (tmax == 0.0)
        return;
    // Keep the pre-projection magnitude so deeper nets don't collapse.
    double scale = maxAbs(p.w.span());
    double levels = double((1 << (bits_ - 1)) - 1);
    for (size_t i = 0; i < p.w.size(); ++i) {
        double t = std::tanh(double(p.w[i])) / tmax;
        double q = std::nearbyint(t * levels) / levels;
        p.w[i] = float(q * scale);
    }
}

// ------------------------------------------------------------------ LSQ

void
LsqProjector::attach(const std::vector<Param*>& params)
{
    WeightProjector::attach(params);
    step_.assign(params_.size(), 0.0);
    refit();
}

void
LsqProjector::epochBegin(int epoch, int total)
{
    WeightProjector::epochBegin(epoch, total);
    refit();
}

void
LsqProjector::refit()
{
    for (size_t i = 0; i < params_.size(); ++i)
        step_[i] = fitUniformAlpha(*params_[i], bits_);
}

void
LsqProjector::project(Param& p)
{
    for (size_t i = 0; i < params_.size(); ++i) {
        if (params_[i] == &p) {
            uniformProject(p, step_[i], bits_);
            return;
        }
    }
    panic("LSQ: unknown parameter");
}

// ------------------------------------------------------------------ DSQ

void
DsqProjector::project(Param& p)
{
    double alpha = maxAbs(p.w.span());
    if (alpha == 0.0)
        return;
    // Soft-to-hard annealing: blend toward the hard quantizer.
    double lambda = 0.5 + 0.5 * double(epoch_ + 1) /
                              double(totalEpochs_);
    lambda = std::min(lambda, 1.0);
    double levels = double((1 << (bits_ - 1)) - 1);
    for (size_t i = 0; i < p.w.size(); ++i) {
        double t = std::clamp(double(p.w[i]) / alpha, -1.0, 1.0);
        double hard = std::nearbyint(t * levels) / levels * alpha;
        p.w[i] = float(lambda * hard + (1.0 - lambda) * double(p.w[i]));
    }
}

// ----------------------------------------------------------------- uL2Q

void
Ul2qProjector::attach(const std::vector<Param*>& params)
{
    WeightProjector::attach(params);
    alpha_.clear();
    for (Param* p : params_) {
        // lambda* sigma for a zero-mean Gaussian: computed here
        // directly by the alternating MSE fit on the *initial*
        // distribution, then frozen (the method's data-free scale).
        alpha_.push_back(fitUniformAlpha(*p, bits_));
    }
}

void
Ul2qProjector::project(Param& p)
{
    for (size_t i = 0; i < params_.size(); ++i) {
        if (params_[i] == &p) {
            uniformProject(p, alpha_[i], bits_);
            return;
        }
    }
    panic("uL2Q: unknown parameter");
}

// ------------------------------------------------------------------ QIL

void
QilProjector::attach(const std::vector<Param*>& params)
{
    WeightProjector::attach(params);
    alpha_.assign(params_.size(), 0.0);
    prune_.assign(params_.size(), 0.0);
    refit();
}

void
QilProjector::epochBegin(int epoch, int total)
{
    WeightProjector::epochBegin(epoch, total);
    refit();
}

void
QilProjector::refit()
{
    for (size_t i = 0; i < params_.size(); ++i) {
        const Param& p = *params_[i];
        alpha_[i] = fitUniformAlpha(p, bits_);
        // Pruning point: a small fraction of the clip range; the
        // interval tightens a little over training (QIL's learned
        // interval typically shrinks).
        double frac = 0.05 + 0.05 * double(epoch_) /
                                 double(totalEpochs_);
        prune_[i] = frac * alpha_[i];
    }
}

void
QilProjector::project(Param& p)
{
    for (size_t i = 0; i < params_.size(); ++i) {
        if (params_[i] != &p)
            continue;
        double a = alpha_[i], pr = prune_[i];
        double levels = double((1 << (bits_ - 1)) - 1);
        for (size_t j = 0; j < p.w.size(); ++j) {
            double x = p.w[j];
            double ax = std::fabs(x);
            if (ax <= pr) {
                p.w[j] = 0.0f;
                continue;
            }
            // Map [pr, a] onto the uniform grid over [0, a].
            double t = std::clamp((ax - pr) / (a - pr), 0.0, 1.0);
            double q = std::max(1.0, std::nearbyint(t * levels)) /
                       levels * a;
            p.w[j] = float(x < 0 ? -q : q);
        }
        return;
    }
    panic("QIL: unknown parameter");
}

// -------------------------------------------------------------- LQ-Nets

void
LqNetsProjector::attach(const std::vector<Param*>& params)
{
    WeightProjector::attach(params);
    size_t nb = size_t(bits_ - 1);
    basis_.assign(params_.size(), std::vector<double>(nb));
    levelCache_.assign(params_.size(), {});
    for (size_t i = 0; i < params_.size(); ++i) {
        // Power-of-two initialized basis (the paper's init).
        double a = maxAbs(params_[i]->w.span());
        if (a == 0.0)
            a = 1.0;
        for (size_t j = 0; j < nb; ++j)
            basis_[i][j] = a / double(1 << (j + 1));
    }
    refit();
}

void
LqNetsProjector::epochBegin(int epoch, int total)
{
    WeightProjector::epochBegin(epoch, total);
    refit();
}

void
LqNetsProjector::refit()
{
    size_t nb = size_t(bits_ - 1);
    size_t combos = size_t(1) << nb;
    for (size_t pi = 0; pi < params_.size(); ++pi) {
        const Param& p = *params_[pi];
        std::vector<double>& v = basis_[pi];
        // Alternate assignment and least squares a few rounds.
        for (int round = 0; round < 3; ++round) {
            // Levels for the current basis.
            std::vector<double> levels(combos);
            for (size_t c = 0; c < combos; ++c) {
                double s = 0.0;
                for (size_t j = 0; j < nb; ++j)
                    s += ((c >> j) & 1 ? 1.0 : -1.0) * v[j];
                levels[c] = s;
            }
            // Assignment + normal equations (B^T B) v = B^T w.
            std::vector<double> btb(nb * nb, 0.0), btw(nb, 0.0);
            for (size_t i = 0; i < p.w.size(); ++i) {
                double w = p.w[i];
                size_t best = 0;
                double bd = 1e30;
                for (size_t c = 0; c < combos; ++c) {
                    double d = std::fabs(levels[c] - w);
                    if (d < bd) {
                        bd = d;
                        best = c;
                    }
                }
                double b[8];
                for (size_t j = 0; j < nb; ++j)
                    b[j] = (best >> j) & 1 ? 1.0 : -1.0;
                for (size_t r = 0; r < nb; ++r) {
                    btw[r] += b[r] * w;
                    for (size_t c2 = 0; c2 < nb; ++c2)
                        btb[r * nb + c2] += b[r] * b[c2];
                }
            }
            // Solve the small SPD system by Gaussian elimination.
            std::vector<double> a = btb, x = btw;
            for (size_t col = 0; col < nb; ++col) {
                size_t piv = col;
                for (size_t r = col + 1; r < nb; ++r) {
                    if (std::fabs(a[r * nb + col]) >
                        std::fabs(a[piv * nb + col]))
                        piv = r;
                }
                if (std::fabs(a[piv * nb + col]) < 1e-12)
                    continue;
                for (size_t c2 = 0; c2 < nb; ++c2)
                    std::swap(a[col * nb + c2], a[piv * nb + c2]);
                std::swap(x[col], x[piv]);
                for (size_t r = 0; r < nb; ++r) {
                    if (r == col)
                        continue;
                    double f = a[r * nb + col] / a[col * nb + col];
                    for (size_t c2 = 0; c2 < nb; ++c2)
                        a[r * nb + c2] -= f * a[col * nb + c2];
                    x[r] -= f * x[col];
                }
            }
            for (size_t j = 0; j < nb; ++j) {
                if (std::fabs(a[j * nb + j]) > 1e-12)
                    v[j] = x[j] / a[j * nb + j];
            }
        }
        // Cache the final level set, sorted for projection.
        std::vector<double> levels(combos);
        for (size_t c = 0; c < combos; ++c) {
            double s = 0.0;
            for (size_t j = 0; j < nb; ++j)
                s += ((c >> j) & 1 ? 1.0 : -1.0) * v[j];
            levels[c] = s;
        }
        std::sort(levels.begin(), levels.end());
        levelCache_[pi] = std::move(levels);
    }
}

void
LqNetsProjector::project(Param& p)
{
    for (size_t pi = 0; pi < params_.size(); ++pi) {
        if (params_[pi] != &p)
            continue;
        const std::vector<double>& levels = levelCache_[pi];
        for (size_t i = 0; i < p.w.size(); ++i) {
            double w = p.w[i];
            auto it = std::lower_bound(levels.begin(), levels.end(),
                                       w);
            double best;
            if (it == levels.end()) {
                best = levels.back();
            } else if (it == levels.begin()) {
                best = levels.front();
            } else {
                double hi = *it, lo = *(it - 1);
                best = (w - lo) <= (hi - w) ? lo : hi;
            }
            p.w[i] = float(best);
        }
        return;
    }
    panic("LQ-Nets: unknown parameter");
}

} // namespace mixq
