/**
 * @file
 * Simplified re-implementations of the comparison methods of the
 * paper's Tables III/IV. Each captures the method's defining weight
 * projection; training-side details that need custom autograd (PACT's
 * learned clip gradient, LSQ's step-size gradient, DSQ's evolving
 * soft function) are replaced by closed-form or annealed equivalents.
 * The simplifications are documented per class and in DESIGN.md.
 */

#ifndef MIXQ_BASELINES_METHODS_HH
#define MIXQ_BASELINES_METHODS_HH

#include <vector>

#include "baselines/ste_qat.hh"

namespace mixq {

/**
 * DoReFa-Net: weights pass through tanh, are normalized by the
 * maximum magnitude, linearly quantized in [0, 1] and mapped back to
 * [-1, 1]; a per-tensor scale keeps the magnitude (gradient flows
 * straight through).
 */
class DorefaProjector : public WeightProjector
{
  public:
    explicit DorefaProjector(int bits) : bits_(bits) {}
    std::string name() const override { return "Dorefa"; }
    void project(Param& p) override;

  private:
    int bits_;
};

/**
 * PACT: DoReFa-style weights plus a learnable activation clip. The
 * clip's task-loss gradient is replaced by the EMA-calibrated clip of
 * ActFakeQuant (same role, simpler estimator).
 */
class PactProjector : public DorefaProjector
{
  public:
    explicit PactProjector(int bits) : DorefaProjector(bits) {}
    std::string name() const override { return "PACT"; }
};

/**
 * LSQ: symmetric uniform quantizer with a learned step size. The
 * gradient-learned step is replaced by a per-epoch closed-form MSE
 * refit (alternating assignment / least squares).
 */
class LsqProjector : public WeightProjector
{
  public:
    explicit LsqProjector(int bits) : bits_(bits) {}
    std::string name() const override { return "LSQ"; }
    void attach(const std::vector<Param*>& params) override;
    void epochBegin(int epoch, int total) override;
    void project(Param& p) override;

  private:
    void refit();
    int bits_;
    std::vector<double> step_; //!< one step size per tensor
};

/**
 * DSQ: differentiable soft quantization. The annealed soft-to-hard
 * schedule is kept (blend factor ramps across epochs); the tanh
 * soft cell is approximated by linear blending.
 */
class DsqProjector : public WeightProjector
{
  public:
    explicit DsqProjector(int bits) : bits_(bits) {}
    std::string name() const override { return "DSQ"; }
    void project(Param& p) override;

  private:
    int bits_;
};

/**
 * muL2Q: linear symmetric quantization whose scale is derived from
 * the weight distribution once at attach time (lambda* sigma rule)
 * and then frozen — the defining "distribution-driven, data-free
 * scale" property.
 */
class Ul2qProjector : public WeightProjector
{
  public:
    explicit Ul2qProjector(int bits) : bits_(bits) {}
    std::string name() const override { return "uL2Q"; }
    void attach(const std::vector<Param*>& params) override;
    void project(Param& p) override;

  private:
    int bits_;
    std::vector<double> alpha_;
};

/**
 * QIL: quantization interval learning. The task-loss-trained interval
 * (center/width transformer) is replaced by a per-epoch refit of a
 * clipping interval [p, alpha]: weights below the pruning point p
 * quantize to zero, the rest map uniformly onto [p, alpha] — the
 * method's defining joint pruning+clipping interval.
 */
class QilProjector : public WeightProjector
{
  public:
    explicit QilProjector(int bits) : bits_(bits) {}
    std::string name() const override { return "QIL"; }
    void attach(const std::vector<Param*>& params) override;
    void epochBegin(int epoch, int total) override;
    void project(Param& p) override;

  private:
    void refit();
    int bits_;
    std::vector<double> alpha_; //!< clip point per tensor
    std::vector<double> prune_; //!< pruning point per tensor
};

/**
 * LQ-Nets: quantizer with a learned basis v (m-1 coefficients);
 * levels are all +/- sign combinations sum(b_i v_i). The basis is
 * refit each epoch by alternating nearest-level assignment and a
 * 3x3 (for 4 bits) least-squares solve.
 */
class LqNetsProjector : public WeightProjector
{
  public:
    explicit LqNetsProjector(int bits) : bits_(bits) {}
    std::string name() const override { return "LQ-NETS"; }
    void attach(const std::vector<Param*>& params) override;
    void epochBegin(int epoch, int total) override;
    void project(Param& p) override;

  private:
    void refit();
    int bits_;
    std::vector<std::vector<double>> basis_; //!< per tensor, m-1 coefs
    std::vector<std::vector<double>> levelCache_;
};

} // namespace mixq

#endif // MIXQ_BASELINES_METHODS_HH
