/**
 * @file
 * Shared quantization-aware fine-tuning loop for the comparator
 * methods of Tables III/IV. Unlike the paper's ADMM (Algorithm 1),
 * these methods fake-quantize the weights in the forward pass and
 * pass gradients straight through to the latent weights (STE): per
 * batch the latent weights are saved, projected in place, the batch
 * runs, and the latent values are restored before the optimizer step.
 */

#ifndef MIXQ_BASELINES_STE_QAT_HH
#define MIXQ_BASELINES_STE_QAT_HH

#include <string>
#include <vector>

#include "nn/trainer.hh"

namespace mixq {

/** Per-method weight projection strategy. */
class WeightProjector
{
  public:
    virtual ~WeightProjector() = default;

    /** Method name as used in the comparison tables. */
    virtual std::string name() const = 0;

    /** Called once with the quantizable parameters. */
    virtual void attach(const std::vector<Param*>& params);

    /** Called at the start of each epoch (for annealing/refits). */
    virtual void epochBegin(int epoch, int total_epochs);

    /** Project one parameter tensor in place (latent -> quantized). */
    virtual void project(Param& p) = 0;

  protected:
    std::vector<Param*> params_;
    int epoch_ = 0;
    int totalEpochs_ = 1;
};

/**
 * STE fine-tuning: quantize-forward-backward-restore per batch, with
 * activation fake-quantization enabled at @p act_bits. Ends with the
 * weights hard-projected (deployable model).
 */
void steQatTrain(Module& model, const LabeledImages& train,
                 const TrainCfg& cfg, WeightProjector& proj,
                 int act_bits);

} // namespace mixq

#endif // MIXQ_BASELINES_STE_QAT_HH
