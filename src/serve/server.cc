#include "serve/server.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "serial/deploy.hh"
#include "serve/executor.hh"
#include "serve/fault.hh"
#include "util/logging.hh"

namespace mixq {

namespace {

void
atomicMax(std::atomic<size_t>& a, size_t v)
{
    size_t cur = a.load(std::memory_order_relaxed);
    while (cur < v &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed))
        ;
}

std::exception_ptr
serveError(ServeError::Code code, const char* msg)
{
    return std::make_exception_ptr(ServeError(code, msg));
}

} // namespace

BatchServer::BatchServer(std::vector<Module*> replicas,
                         BatchTraits traits, ServeOptions opt)
    : replicas_(std::move(replicas)), traits_(std::move(traits)),
      opt_(opt)
{
    MIXQ_ASSERT(!replicas_.empty(), "serve: no model replicas");
    MIXQ_ASSERT(opt_.maxBatch >= 1, "serve: maxBatch must be >= 1");
    MIXQ_ASSERT(traits_.batchAxis < traits_.itemShape.size() &&
                    traits_.itemShape[traits_.batchAxis] == 1,
                "serve: itemShape must have extent 1 on batchAxis");
    MIXQ_ASSERT(traits_.batchAxis <= 1,
                "serve: batchAxis must be 0 (NCHW) or 1 (TNC)");
    MIXQ_ASSERT(opt_.maxQueueItems == 0 ||
                    opt_.maxQueueItems >= opt_.maxBatch,
                "serve: maxQueueItems must be 0 (unbounded) or >= "
                "maxBatch — else a full-size request can never be "
                "admitted");
    if (opt_.planArena) {
        std::vector<size_t> ws = traits_.itemShape;
        ws[traits_.batchAxis] = opt_.maxBatch;
        plan_ = planServeForward(*replicas_[0], ws);
    }
    liveWorkers_ = replicas_.size();
    workers_.reserve(replicas_.size());
    for (size_t i = 0; i < replicas_.size(); ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

BatchServer::BatchServer(Module& model, size_t replicas,
                         const BatchTraits& traits,
                         const ServeOptions& opt)
    : planned_(true), sharedModel_(&model), traits_(traits), opt_(opt)
{
    MIXQ_ASSERT(replicas >= 1, "serve: need at least one replica");
    MIXQ_ASSERT(opt_.maxBatch >= 1, "serve: maxBatch must be >= 1");
    MIXQ_ASSERT(traits_.batchAxis < traits_.itemShape.size() &&
                    traits_.itemShape[traits_.batchAxis] == 1,
                "serve: itemShape must have extent 1 on batchAxis");
    MIXQ_ASSERT(traits_.batchAxis <= 1,
                "serve: batchAxis must be 0 (NCHW) or 1 (TNC)");
    MIXQ_ASSERT(opt_.maxQueueItems == 0 ||
                    opt_.maxQueueItems >= opt_.maxBatch,
                "serve: maxQueueItems must be 0 (unbounded) or >= "
                "maxBatch — else a full-size request can never be "
                "admitted");
    // Built sequentially on this thread: the first executor packs the
    // shared model's weight panels (PackedQMat/PackedMat ensure), the
    // rest find them current and pack nothing — one weight copy for
    // all replicas.
    execs_.reserve(replicas);
    for (size_t i = 0; i < replicas; ++i)
        execs_.push_back(std::make_unique<PlanExecutor>(
            model, traits_.itemShape, traits_.batchAxis,
            opt_.maxBatch));
    plan_ = execs_[0]->plan();
    arenaCapacity_.store(execs_[0]->slabBytes(),
                         std::memory_order_relaxed);
    arenaHighWater_.store(plan_.peakBytes, std::memory_order_relaxed);
    scratchBytes_.store(execs_[0]->scratchBytes(),
                        std::memory_order_relaxed);
    liveWorkers_ = replicas;
    workers_.reserve(replicas);
    for (size_t i = 0; i < replicas; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

BatchServer::~BatchServer()
{
    stop(true);
}

SubmitResult
BatchServer::submit(Tensor x, long deadlineUs)
{
    std::promise<Tensor> p;
    SubmitResult res;
    res.future = p.get_future();

    const std::vector<size_t>& is = traits_.itemShape;
    std::string err;
    size_t items = 0;
    if (x.ndim() != is.size()) {
        err = "request rank does not match the server's item shape";
    } else {
        items = x.dim(traits_.batchAxis);
        for (size_t i = 0; i < is.size() && err.empty(); ++i)
            if (i != traits_.batchAxis && x.dim(i) != is[i])
                err = "request dims do not match the item shape";
        if (err.empty() && items == 0)
            err = "empty request";
        if (err.empty() && items > opt_.maxBatch)
            err = "request items exceed maxBatch";
    }
    if (!err.empty()) {
        res.status = ServeStatus::Rejected;
        p.set_exception(std::make_exception_ptr(
            std::invalid_argument("mixq serve: " + err)));
        return res;
    }

    Request r;
    r.x = std::move(x);
    r.items = items;
    if (deadlineUs > 0) {
        r.hasDeadline = true;
        r.expiry = std::chrono::steady_clock::now() +
                   std::chrono::microseconds(deadlineUs);
    }

    {
        std::unique_lock<std::mutex> lk(mu_);
        if (stopping_ || dead_) {
            const char* msg = dead_
                                  ? "mixq serve: no live workers"
                                  : "mixq serve: submit after stop";
            lk.unlock();
            res.status = ServeStatus::Rejected;
            p.set_exception(
                serveError(ServeError::Code::Stopped, msg));
            return res;
        }

        if (opt_.maxQueueItems > 0 &&
            queuedItems_ + items > opt_.maxQueueItems) {
            switch (opt_.overload) {
            case OverloadPolicy::Block:
                // Backpressure: park the producer until workers make
                // room. stop()/worker death releases it with a
                // rejection rather than hanging it forever.
                roomCv_.wait(lk, [&] {
                    return stopping_ || dead_ ||
                           queuedItems_ + items <= opt_.maxQueueItems;
                });
                if (stopping_ || dead_) {
                    const char* msg =
                        dead_ ? "mixq serve: no live workers"
                              : "mixq serve: submit after stop";
                    lk.unlock();
                    res.status = ServeStatus::Rejected;
                    p.set_exception(
                        serveError(ServeError::Code::Stopped, msg));
                    return res;
                }
                break;
            case OverloadPolicy::Shed:
                // Freshest-first: evict from the queue head (the
                // oldest requests — the ones a deadline would reap
                // next anyway) until the newcomer fits. The ctor
                // guarantees maxQueueItems >= maxBatch >= items, so
                // an empty queue always has room.
                while (queuedItems_ + items > opt_.maxQueueItems &&
                       !queue_.empty()) {
                    Request victim = std::move(queue_.front());
                    queue_.pop_front();
                    queuedItems_ -= victim.items;
                    shed_.fetch_add(1, std::memory_order_relaxed);
                    victim.result.set_exception(serveError(
                        ServeError::Code::Shed,
                        "mixq serve: request shed under overload"));
                }
                break;
            case OverloadPolicy::FailFast:
                shed_.fetch_add(1, std::memory_order_relaxed);
                lk.unlock();
                res.status = ServeStatus::Shed;
                p.set_exception(serveError(
                    ServeError::Code::Shed,
                    "mixq serve: queue full — request shed"));
                return res;
            }
        }

        r.result = std::move(p);
        queue_.push_back(std::move(r));
        queuedItems_ += items;
        accepted_.fetch_add(1, std::memory_order_relaxed);
        atomicMax(queuePeakItems_, queuedItems_);
    }
    cv_.notify_one();
    res.status = ServeStatus::Accepted;
    return res;
}

void
BatchServer::stop(bool drain)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (!stopping_) {
            stopping_ = true;
            drain_ = drain;
        }
    }
    cv_.notify_all();
    roomCv_.notify_all();
    pauseCv_.notify_all();
    {
        std::lock_guard<std::mutex> jl(joinMu_);
        for (std::thread& t : workers_)
            if (t.joinable())
                t.join();
    }
    std::deque<Request> leftovers;
    {
        std::lock_guard<std::mutex> lk(mu_);
        leftovers.swap(queue_);
        queuedItems_ = 0;
    }
    for (Request& r : leftovers) {
        failed_.fetch_add(1, std::memory_order_relaxed);
        r.result.set_exception(serveError(
            ServeError::Code::Stopped,
            "mixq serve: server stopped before request ran"));
    }
}

LoadResult
BatchServer::reloadArtifact(const std::string& path)
{
    std::lock_guard<std::mutex> rl(reloadMu_);
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stopping_ || dead_)
            return {LoadStatus::Unavailable,
                    "mixq serve: reload refused — server is not "
                    "serving"};
    }

    // Stage read-only while traffic keeps flowing: decode + validate
    // everything, touch nothing. Any failure returns here with the
    // old weights still serving.
    Module& probe = planned_ ? *sharedModel_ : *replicas_[0];
    DeployStage stage;
    LoadResult r = stageDeployArtifact(path, probe, stage);
    if (!r.ok())
        return r;

    // Quiesce: park every live worker between batches, then install
    // the staged panels. Workers never observe a half-swapped model —
    // a batch runs entirely on the old weights or entirely on the
    // new ones.
    std::unique_lock<std::mutex> lk(mu_);
    pauseRequested_ = true;
    cv_.notify_all();
    pauseCv_.wait(lk, [&] {
        return pausedWorkers_ == liveWorkers_ || stopping_;
    });
    if (planned_) {
        stage.apply(*sharedModel_);
        // The executors staged per-layer eval constants (BN's frozen
        // affine, pack versions) at construction — re-stage them
        // against the swapped model while everyone is parked.
        for (auto& exec : execs_)
            exec->restage();
    } else {
        for (Module* m : replicas_)
            stage.apply(*m);
    }
    reloadGen_.fetch_add(1, std::memory_order_relaxed);
    pauseRequested_ = false;
    lk.unlock();
    cv_.notify_all();
    return {};
}

BatchServer::Stats
BatchServer::stats() const
{
    Stats s;
    s.requests = doneRequests_.load(std::memory_order_relaxed);
    s.items = doneItems_.load(std::memory_order_relaxed);
    s.batches = doneBatches_.load(std::memory_order_relaxed);
    s.arenaCapacity = arenaCapacity_.load(std::memory_order_relaxed);
    s.planPeakBytes = plan_.peakBytes;
    s.arenaHighWater =
        arenaHighWater_.load(std::memory_order_relaxed);
    s.arenaOverflows =
        arenaOverflows_.load(std::memory_order_relaxed);
    s.scratchBytes = scratchBytes_.load(std::memory_order_relaxed);
    s.accepted = accepted_.load(std::memory_order_relaxed);
    s.shed = shed_.load(std::memory_order_relaxed);
    s.expired = expired_.load(std::memory_order_relaxed);
    s.failed = failed_.load(std::memory_order_relaxed);
    s.faults = faults_.load(std::memory_order_relaxed);
    s.queuePeakItems =
        queuePeakItems_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lk(mu_);
        s.workersAlive = liveWorkers_;
    }
    return s;
}

bool
BatchServer::nextBatch(std::vector<Request>& batch, size_t& items)
{
    std::unique_lock<std::mutex> lk(mu_);

    auto isExpired = [](const Request& r) {
        return r.hasDeadline &&
               std::chrono::steady_clock::now() >= r.expiry;
    };
    // Settle an expired queue head: its future fails with Expired,
    // its items leave the admission budget.
    auto dropExpiredFront = [&] {
        Request victim = std::move(queue_.front());
        queue_.pop_front();
        queuedItems_ -= victim.items;
        expired_.fetch_add(1, std::memory_order_relaxed);
        roomCv_.notify_all();
        victim.result.set_exception(serveError(
            ServeError::Code::Expired,
            "mixq serve: request deadline expired before serving"));
    };

    for (;;) {
        cv_.wait(lk, [&] {
            return stopping_ || pauseRequested_ || !queue_.empty();
        });
        if (pauseRequested_ && !stopping_) {
            // reloadArtifact() wants the model to itself: park here
            // between batches until the swap is done.
            ++pausedWorkers_;
            pauseCv_.notify_all();
            cv_.wait(lk,
                     [&] { return !pauseRequested_ || stopping_; });
            --pausedWorkers_;
            pauseCv_.notify_all();
            continue;
        }
        while (!queue_.empty() && isExpired(queue_.front()))
            dropExpiredFront();
        if (queue_.empty()) {
            if (stopping_)
                return false; // nothing left (or drained)
            continue;         // heads all expired; wait for more
        }
        if (stopping_ && !drain_)
            return false; // stop() fails the leftovers
        break;
    }

    items = queue_.front().items;
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
    queuedItems_ -= items;
    roomCv_.notify_all();

    if (opt_.deadlineUs > 0 && items < opt_.maxBatch) {
        auto dl = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(opt_.deadlineUs);
        bool timedOut = false;
        for (;;) {
            // FIFO coalesce: adjacent requests that fit. A head that
            // does not fit ships the batch as-is — no reordering
            // past it. Expired heads are reaped, not gathered.
            for (;;) {
                if (queue_.empty())
                    break;
                if (isExpired(queue_.front())) {
                    dropExpiredFront();
                    continue;
                }
                size_t fi = queue_.front().items;
                if (items + fi > opt_.maxBatch)
                    break;
                items += fi;
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
                queuedItems_ -= fi;
                roomCv_.notify_all();
            }
            if (items >= opt_.maxBatch || !queue_.empty() ||
                stopping_ || pauseRequested_ || timedOut)
                break;
            timedOut =
                cv_.wait_until(lk, dl) == std::cv_status::timeout;
        }
    }
    return true;
}

void
BatchServer::workerLoop(size_t worker)
{
#ifdef _OPENMP
    // omp_set_num_threads is a per-thread ICV: setting it on the
    // constructing thread would not affect this worker.
    if (opt_.ompThreads > 0)
        omp_set_num_threads(opt_.ompThreads);
#endif
    bool abnormal = false;
    try {
        if (planned_)
            plannedWorkerBody(worker);
        else
            replicaWorkerBody(worker);
    } catch (...) {
        // Permanent worker death: warmup failure or an injected
        // kill. The batch (if any) already settled its futures; the
        // exit bookkeeping below keeps the rest of the server
        // serving — or sweeps the queue when this was the last one.
        abnormal = true;
    }
    workerExit(abnormal);
}

void
BatchServer::workerExit(bool abnormal)
{
    std::deque<Request> orphans;
    {
        std::lock_guard<std::mutex> lk(mu_);
        MIXQ_ASSERT(liveWorkers_ > 0, "serve: worker exit underflow");
        --liveWorkers_;
        if (abnormal && liveWorkers_ == 0 && !stopping_) {
            // Last worker died with the server still open: nothing
            // will ever drain the queue, so fail it now and refuse
            // everything after — futures must settle, not hang.
            dead_ = true;
            orphans.swap(queue_);
            queuedItems_ = 0;
        }
    }
    cv_.notify_all();
    roomCv_.notify_all();
    pauseCv_.notify_all();
    for (Request& r : orphans) {
        failed_.fetch_add(1, std::memory_order_relaxed);
        r.result.set_exception(serveError(
            ServeError::Code::WorkerFault,
            "mixq serve: every worker died — request cannot be "
            "served"));
    }
}

void
BatchServer::replicaWorkerBody(size_t worker)
{
    Module& model = *replicas_[worker];
    std::vector<size_t> ws = traits_.itemShape;
    ws[traits_.batchAxis] = opt_.maxBatch;

    // Warmup contract (serve/arena.hh): grow every layer-internal
    // scratch container to its max-batch capacity on the real heap
    // before the first scoped forward. Two passes reach the fixed
    // point (first sizes, second verifies), the third measures the
    // steady-state transient footprint for arena sizing. A warmup
    // failure (real OOM or the injected one) is a permanent worker
    // death — it propagates to workerLoop.
    faultOnWarmup();
    size_t measured = 0;
    {
        Tensor wx(ws); // zeros: id 0 is valid for embedding models
        model.forward(wx, false);
        model.forward(wx, false);
        ScopedHeapAllocCount m;
        Tensor y = model.forward(wx, false);
        measured = m.bytes();
    }
    size_t cap = opt_.arenaBytes;
    cap = std::max(cap, 2 * measured + (size_t(64) << 10));
    cap = std::max(cap, plan_.peakBytes + (size_t(64) << 10));
    Arena arena(cap);
    if (worker == 0)
        arenaCapacity_.store(cap, std::memory_order_relaxed);

    size_t batchesDone = 0;
    uint64_t myGen = reloadGen_.load(std::memory_order_relaxed);
    for (;;) {
        std::vector<Request> batch;
        size_t items = 0;
        if (!nextBatch(batch, items))
            break;
        uint64_t gen = reloadGen_.load(std::memory_order_relaxed);
        if (gen != myGen) {
            // Weights were hot-swapped: give the zero-alloc steady-
            // state assertion its settling grace again (fresh panels
            // may lazily repack on first touch).
            myGen = gen;
            batchesDone = 0;
        }
        uint64_t seq = batchSeq_.fetch_add(1, std::memory_order_relaxed);
        if (!runBatch(model, arena, batch, items, batchesDone, seq))
            throw WorkerKillFault();
        ++batchesDone;
    }
}

void
BatchServer::plannedWorkerBody(size_t worker)
{
    PlanExecutor& exec = *execs_[worker];

    // Warmup: the slab is already pre-faulted and every serve scratch
    // ctor-sized, but this thread's lazily-grown state — the GEMM
    // backend's thread_local packing buffers, the OpenMP runtime's
    // team — must reach steady capacity before the Debug zero-alloc
    // window opens. Two max-batch runs on zeroed input (id 0 is a
    // valid token for the embedding models) get there. The input
    // buffer's slab range is recycled by later buffers (liveness
    // packing), so each run re-zeroes it — the per-batch gatherInto
    // plays that role in steady state.
    faultOnWarmup();
    std::memset(exec.inputData(), 0, exec.inputBytes());
    exec.run(opt_.maxBatch);
    std::memset(exec.inputData(), 0, exec.inputBytes());
    exec.run(opt_.maxBatch);

    size_t batchesDone = 0;
    uint64_t myGen = reloadGen_.load(std::memory_order_relaxed);
    for (;;) {
        std::vector<Request> batch;
        size_t items = 0;
        if (!nextBatch(batch, items))
            break;
        uint64_t gen = reloadGen_.load(std::memory_order_relaxed);
        if (gen != myGen) {
            myGen = gen;
            batchesDone = 0;
        }
        uint64_t seq = batchSeq_.fetch_add(1, std::memory_order_relaxed);
        if (!runBatchPlanned(exec, batch, items, batchesDone, seq))
            throw WorkerKillFault();
        ++batchesDone;
    }
}

void
BatchServer::failBatch(std::vector<Request>& batch,
                       std::exception_ptr e)
{
    for (Request& r : batch) {
        try {
            r.result.set_exception(e);
        } catch (const std::future_error&) {
            // already satisfied by a partial scatter
        }
    }
}

bool
BatchServer::runBatch(Module& model, Arena& arena,
                      std::vector<Request>& batch, size_t items,
                      size_t batchesDone, uint64_t seq)
{
    (void)batchesDone;
    bool keepRunning = true;
    try {
        faultOnBatch(seq);
        Tensor xb, yb;
#ifndef NDEBUG
        const size_t overflowsBefore = arena.overflowCount();
#endif
        {
            ArenaScope scope(arena);
#ifndef NDEBUG
            ScopedHeapAllocCount heap;
#endif
            xb = gather(batch, items);
            yb = model.forward(xb, false);
#ifndef NDEBUG
            // Steady state: every transient lives in the arena. The
            // first batches may still settle promise plumbing; an
            // arena overflow falls back to the heap legitimately.
            if (batchesDone >= 2 &&
                arena.overflowCount() == overflowsBefore)
                MIXQ_ASSERT(
                    heap.count() == 0,
                    "serve: steady-state forward allocated on the "
                    "heap — a layer grew scratch outside warmup");
#endif
        }
        // Responses are deep copies on the real heap: they outlive
        // this batch's arena region. yb stays readable until reset.
        scatter(yb, items, batch);
        xb = Tensor(); // arena-backed; the frees are no-ops
        yb = Tensor();
        arena.reset();
        doneItems_.fetch_add(items, std::memory_order_relaxed);
        doneRequests_.fetch_add(batch.size(),
                                std::memory_order_relaxed);
    } catch (const WorkerKillFault&) {
        // Permanent death: fail this batch, then tell the loop to
        // retire this worker. Survivors keep draining the queue.
        faults_.fetch_add(1, std::memory_order_relaxed);
        failed_.fetch_add(batch.size(), std::memory_order_relaxed);
        failBatch(batch, std::current_exception());
        arena.reset();
        keepRunning = false;
    } catch (...) {
        // Contained fault: only this batch's futures fail; the
        // worker and the model replica keep serving.
        faults_.fetch_add(1, std::memory_order_relaxed);
        failed_.fetch_add(batch.size(), std::memory_order_relaxed);
        failBatch(batch, std::current_exception());
        arena.reset();
    }
    atomicMax(arenaHighWater_, arena.highWater());
    atomicMax(arenaOverflows_, arena.overflowCount());
    doneBatches_.fetch_add(1, std::memory_order_relaxed);
    return keepRunning;
}

bool
BatchServer::runBatchPlanned(PlanExecutor& exec,
                             std::vector<Request>& batch,
                             size_t items, size_t batchesDone,
                             uint64_t seq)
{
    (void)batchesDone;
    bool keepRunning = true;
    try {
        faultOnBatch(seq);
#ifndef NDEBUG
        const uint64_t arenaBefore = arenaAllocCount();
        ScopedHeapAllocCount heap;
#endif
        gatherInto(batch, items, exec.inputData());
        exec.run(items);
#ifndef NDEBUG
        // The executed plan's contract is stronger than the arena
        // path's: a steady-state batch touches neither the heap nor
        // any bump arena — every activation lands at its planned
        // slab offset and all scratch was ctor-sized. The first
        // batches may still settle promise plumbing.
        if (batchesDone >= 2) {
            MIXQ_ASSERT(
                heap.count() == 0,
                "serve: steady-state planned batch allocated on the "
                "heap — a layer grew scratch outside prepareServe");
            MIXQ_ASSERT(
                arenaAllocCount() == arenaBefore,
                "serve: planned batch took a bump-arena allocation — "
                "activations must come from the plan slab");
        }
#endif
        // Responses are deep copies: the slab's buffers are reused
        // verbatim by the next batch.
        scatterRaw(exec.outputData(), exec.outputShape(items), items,
                   batch);
        doneItems_.fetch_add(items, std::memory_order_relaxed);
        doneRequests_.fetch_add(batch.size(),
                                std::memory_order_relaxed);
    } catch (const WorkerKillFault&) {
        faults_.fetch_add(1, std::memory_order_relaxed);
        failed_.fetch_add(batch.size(), std::memory_order_relaxed);
        failBatch(batch, std::current_exception());
        keepRunning = false;
    } catch (...) {
        faults_.fetch_add(1, std::memory_order_relaxed);
        failed_.fetch_add(batch.size(), std::memory_order_relaxed);
        failBatch(batch, std::current_exception());
    }
    doneBatches_.fetch_add(1, std::memory_order_relaxed);
    return keepRunning;
}

Tensor
BatchServer::gather(const std::vector<Request>& batch,
                    size_t items) const
{
    std::vector<size_t> bs = traits_.itemShape;
    bs[traits_.batchAxis] = items;
    Tensor xb(bs);
    gatherInto(batch, items, xb.data());
    return xb;
}

void
BatchServer::gatherInto(const std::vector<Request>& batch,
                        size_t items, float* dst) const
{
    if (traits_.batchAxis == 0) {
        const size_t itemElems = shapeSize(traits_.itemShape);
        size_t off = 0;
        for (const Request& r : batch) {
            std::copy_n(r.x.data(), r.items * itemElems,
                        dst + off * itemElems);
            off += r.items;
        }
    } else { // axis 1: [T, N, ...] — interleave per timestep
        const size_t t = traits_.itemShape[0];
        size_t inner = 1;
        for (size_t i = 2; i < traits_.itemShape.size(); ++i)
            inner *= traits_.itemShape[i];
        size_t off = 0;
        for (const Request& r : batch) {
            for (size_t tt = 0; tt < t; ++tt)
                std::copy_n(r.x.data() + tt * r.items * inner,
                            r.items * inner,
                            dst + (tt * items + off) * inner);
            off += r.items;
        }
    }
}

void
BatchServer::scatter(const Tensor& yb, size_t items,
                     std::vector<Request>& batch) const
{
    scatterRaw(yb.data(), yb.shape(), items, batch);
}

void
BatchServer::scatterRaw(const float* yb,
                        const std::vector<size_t>& ys, size_t items,
                        std::vector<Request>& batch) const
{
    const size_t total = shapeSize(ys);
    std::vector<Tensor> outs;
    outs.reserve(batch.size());
    if (traits_.timeMajorOut) {
        // yb rows are [T*B, C] grouped by timestep; a request's rows
        // are t*k + i for its k items.
        const size_t t = traits_.itemShape[0];
        MIXQ_ASSERT(ys[0] == t * items,
                    "serve: time-major output row count mismatch");
        const size_t cols = total / (t * items);
        size_t off = 0;
        for (const Request& r : batch) {
            Tensor o({t * r.items, cols});
            for (size_t tt = 0; tt < t; ++tt)
                std::copy_n(yb + (tt * items + off) * cols,
                            r.items * cols,
                            o.data() + tt * r.items * cols);
            outs.push_back(std::move(o));
            off += r.items;
        }
    } else {
        MIXQ_ASSERT(ys[0] == items,
                    "serve: output row count mismatch");
        const size_t rowElems = total / items;
        const std::vector<size_t> tail(ys.begin() + 1, ys.end());
        size_t off = 0;
        for (const Request& r : batch) {
            std::vector<size_t> os;
            os.push_back(r.items);
            os.insert(os.end(), tail.begin(), tail.end());
            Tensor o(std::move(os));
            std::copy_n(yb + off * rowElems, r.items * rowElems,
                        o.data());
            outs.push_back(std::move(o));
            off += r.items;
        }
    }
    for (size_t i = 0; i < batch.size(); ++i)
        batch[i].result.set_value(std::move(outs[i]));
}

} // namespace mixq
