/**
 * @file
 * Ahead-of-time shape inference and liveness-based arena planning
 * for the serving runtime. planServeForward() walks a model's named
 * module tree with a symbolic input shape, records every activation
 * tensor the eval forward will materialize (its shape, the step that
 * defines it, the last step that reads it), assigns each buffer an
 * offset in a single arena block by greedy first-fit over the
 * liveness intervals, and reports the resulting peak — the analytic
 * lower bound the server checks its arena capacity against. The walk
 * also lowers every GEMM-bearing step to the compiler layer's
 * LayerSpec form, so the same plan drives the FPGA timing simulator
 * (compiler/runner.hh simulateNetwork) for deploy-side estimates.
 *
 * The planner understands the repo's model zoo: Sequential chains,
 * BasicBlock / InvertedResidual (residual inputs stay live until the
 * add), the leaf layers, and the RNN task models (LstmLm, GruTagger,
 * LstmClassifier). Folded BatchNorm layers (serve/bn_fold.hh) plan
 * as a pass-through copy. Layer-internal scratch (packed panels,
 * im2col buffers) is persistent member state sized during warmup,
 * not arena-planned — the plan covers the per-call transient
 * activations.
 */

#ifndef MIXQ_SERVE_PLANNER_HH
#define MIXQ_SERVE_PLANNER_HH

#include <string>
#include <vector>

#include "compiler/layer_spec.hh"
#include "nn/module.hh"

namespace mixq {

/** One planned activation buffer with its liveness and placement. */
struct PlanBuffer
{
    std::string name;          //!< producing step (dotted path)
    std::vector<size_t> shape; //!< tensor shape
    size_t bytes = 0;          //!< float32 payload bytes
    size_t def = 0;            //!< producing step index
    size_t lastUse = 0;        //!< last consuming step index
    size_t offset = 0;         //!< assigned arena offset
};

/**
 * One executable step of the planned forward. Layer steps run a leaf
 * module's forwardServe from buffer @p in into buffer @p out;
 * ResidualAdd replicates the blocks' in-place `h.add(s)` (out += in);
 * SliceLast copies the last timestep of a [T, N, H] buffer into an
 * [N, H] buffer (LstmClassifier's pre-head slice). The step list is
 * what makes the plan an executed contract (serve/executor.hh) rather
 * than an arena-sizing hint.
 */
struct PlanStep
{
    enum class Kind { Layer, ResidualAdd, SliceLast };

    Kind kind = Kind::Layer;
    Module* mod = nullptr; //!< leaf to run (Layer steps only)
    size_t in = 0;         //!< input buffer index
    size_t out = 0;        //!< output buffer index
};

/** The full ahead-of-time plan for one (model, input shape) pair. */
struct ServePlan
{
    std::vector<PlanBuffer> buffers; //!< buffers[0] is the input
    std::vector<PlanStep> steps;     //!< executable forward recipe
    std::vector<size_t> outShape;    //!< forward output shape
    size_t outIndex = 0;             //!< buffer index of the output
    size_t peakBytes = 0;            //!< extent of the offset layout
    NetworkSpec net;                 //!< GEMM-form view (simulator)

    /**
     * Check the offset assignment: any two buffers whose liveness
     * intervals overlap must occupy disjoint byte ranges, and every
     * buffer must end within peakBytes. Returns false and fills
     * @p why on the first violation.
     */
    bool validate(std::string* why = nullptr) const;
};

/**
 * Greedy liveness-aware placement: buffers sorted by size
 * (descending, stable) are first-fit packed against already-placed
 * buffers with overlapping lifetimes, offsets 64-byte aligned.
 * Returns the layout extent (the plan's peakBytes). Deterministic —
 * replanning the same model and shape is byte-stable.
 */
size_t assignArenaOffsets(std::vector<PlanBuffer>& bufs);

/**
 * Plan one eval forward of @p root at @p inShape (the max-batch
 * shape the server will run). Panics on a module the planner does
 * not model — extending it is deliberate, not silent.
 */
ServePlan planServeForward(Module& root,
                           const std::vector<size_t>& inShape);

} // namespace mixq

#endif // MIXQ_SERVE_PLANNER_HH
