/**
 * @file
 * Deterministic fault injection for the serving and serialization
 * layers. A FaultPlan arms a small set of named failure triggers —
 * throw inside a worker forward at batch k, kill a worker thread
 * permanently, stall a worker, fail an allocation during warmup,
 * corrupt a record file's bytes as they are read, or fail a record
 * write — and the hook points compiled into BatchServer and the
 * record container consult it. With no plan armed every hook is a
 * single relaxed atomic load, so the hooks stay compiled into every
 * build type and the chaos tests (tests/serve_fault_test.cc) exercise
 * the exact binaries CI ships; defining MIXQ_NO_FAULT_INJECTION
 * compiles them out entirely for a paranoid production build.
 *
 * The injections are deterministic by construction: triggers fire on
 * exact batch / record indices drawn from monotonic counters, never
 * on timers or randomness, so a chaos run is reproducible and its
 * surviving outputs can be bit-compared against a fault-free run.
 *
 * Arming is test-scoped: armFaultPlan() installs the plan globally,
 * disarmFaultPlan() removes it. Arm/disarm must not race hook
 * execution (tests arm before standing the server up and disarm
 * after stopping it); the hooks themselves are safe to call from any
 * number of worker threads concurrently.
 */

#ifndef MIXQ_SERVE_FAULT_HH
#define MIXQ_SERVE_FAULT_HH

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace mixq {

/** Deterministic fault triggers; -1 / 0 values are "never fire". */
struct FaultPlan
{
    /** Throw FaultInjected from the worker forward at batch k. */
    long throwInForwardAtBatch = -1;
    /** Kill the worker thread serving batch k (permanent death;
        its batch fails, survivors drain the queue). */
    long killWorkerAtBatch = -1;
    /** Sleep this long before every forward (slow-worker stall —
        the deterministic way to make offered load exceed capacity). */
    long stallEveryBatchUs = 0;
    /** One-shot stall: sleep stallUs before forward of batch k. */
    long stallAtBatch = -1;
    long stallUs = 0;
    /** Throw std::bad_alloc from the worker's warmup. */
    bool failWarmupAlloc = false;
    /** Flip one byte of a record file's payload as it is read
        (drives the reader's checksum-mismatch path). */
    bool corruptOnRead = false;
    /** Throw FaultInjected before writing record k of a stream. */
    long failWriteAtRecord = -1;
};

/** The structured error every injected serving fault throws. */
class FaultInjected : public std::runtime_error
{
  public:
    explicit FaultInjected(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

/**
 * The injected "this worker is dead" fault. Distinct from
 * FaultInjected so the server can tell a contained batch failure
 * (fail the batch, keep serving) from a permanent worker death
 * (fail the batch, retire the worker, let survivors drain).
 */
class WorkerKillFault : public FaultInjected
{
  public:
    WorkerKillFault() : FaultInjected("injected worker death") {}
};

/** Install @p plan globally (see file comment for the race rules). */
void armFaultPlan(const FaultPlan& plan);

/** Remove the armed plan; hooks go back to no-ops. */
void disarmFaultPlan();

/** Whether a plan is currently armed. */
bool faultPlanArmed();

// ------------------------------------------------------- hook points
// Called by the serving/serialization code; no-ops when disarmed.

/**
 * Worker-forward hook, called with the server's monotonic batch
 * sequence number before the batch runs: may stall, throw
 * FaultInjected, or throw WorkerKillFault per the armed plan.
 */
void faultOnBatch(uint64_t batchIndex);

/** Warmup hook: throws std::bad_alloc when failWarmupAlloc is set. */
void faultOnWarmup();

/** Record-reader hook: corrupts @p fileBytes in place (one byte in
    the record region) when corruptOnRead is set. */
void faultOnRecordFileRead(std::vector<uint8_t>& fileBytes);

/** Record-writer hook, called with the index of the record about to
    be written: throws FaultInjected at failWriteAtRecord. */
void faultOnRecordWrite(uint64_t recordIndex);

} // namespace mixq

#endif // MIXQ_SERVE_FAULT_HH
