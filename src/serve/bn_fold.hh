/**
 * @file
 * Inference-only Conv+BN folding. At deployment the BatchNorm eval
 * affine is a frozen per-channel function of the running statistics,
 * so it fuses into the preceding convolution's epilogue: the conv
 * applies BatchNorm2d's exact elementwise formula right after its
 * rescale/bias pass and the BN layer degrades to an identity. One
 * fewer full activation-tensor walk (and one fewer arena-lived
 * buffer) per conv block, with bit-identical outputs — the epilogue
 * replicates the BN eval operation order per element, it does not
 * refactor the scales.
 *
 * The rewrite mutates the live module tree (no graph copy): it pairs
 * every Conv2d that is *immediately* followed by a BatchNorm2d in
 * its parent's children() order. Depthwise convolutions keep their
 * BN (no epilogue path there yet). Folding a model whose training
 * would continue is an error caught by BatchNorm2d itself: a
 * training forward through a folded BN panics.
 */

#ifndef MIXQ_SERVE_BN_FOLD_HH
#define MIXQ_SERVE_BN_FOLD_HH

#include <cstddef>

#include "nn/module.hh"

namespace mixq {

/**
 * Fold every (Conv2d -> BatchNorm2d) adjacent pair under @p root
 * into the conv's eval epilogue and switch those BN layers to
 * folded-identity mode. Returns the number of pairs folded.
 * Idempotent: already-folded pairs are skipped.
 */
size_t foldBatchNormForEval(Module& root);

/** Undo foldBatchNormForEval() (test/AB-comparison helper). */
size_t unfoldBatchNormForEval(Module& root);

} // namespace mixq

#endif // MIXQ_SERVE_BN_FOLD_HH
