#include "serve/executor.hh"

#include <cstdlib>
#include <cstring>

#include "util/logging.hh"

namespace mixq {

namespace {

constexpr size_t kSlabAlign = 64;

size_t alignUp(size_t v, size_t a)
{
    return (v + a - 1) / a * a;
}

} // namespace

PlanExecutor::PlanExecutor(Module& root,
                           const std::vector<size_t>& itemShape,
                           size_t batchAxis, size_t maxItems)
    : maxItems_(maxItems)
{
    MIXQ_ASSERT(maxItems >= 1, "PlanExecutor: maxItems must be >= 1");
    MIXQ_ASSERT(batchAxis < itemShape.size() &&
                    itemShape[batchAxis] == 1,
                "PlanExecutor: itemShape must carry a unit batch axis");

    unit_ = planServeForward(root, itemShape);
    if (maxItems_ == 1) {
        plan_ = unit_;
    } else {
        std::vector<size_t> ws = itemShape;
        ws[batchAxis] = maxItems_;
        plan_ = planServeForward(root, ws);
    }
    MIXQ_ASSERT(plan_.buffers.size() == unit_.buffers.size() &&
                    plan_.steps.size() == unit_.steps.size() &&
                    plan_.outIndex == unit_.outIndex,
                "PlanExecutor: unit and max-batch plans diverge "
                "structurally");

    // One slab covers the whole plan; memset pre-faults every page so
    // steady-state runs never take a soft page fault either.
    slabBytes_ = alignUp(plan_.peakBytes, kSlabAlign);
    MIXQ_ASSERT(slabBytes_ > 0, "PlanExecutor: empty plan");
    slab_ = static_cast<float*>(
        std::aligned_alloc(kSlabAlign, slabBytes_));
    MIXQ_ASSERT(slab_ != nullptr, "PlanExecutor: slab allocation failed");
    std::memset(slab_, 0, slabBytes_);

    // Resolve each plan step to its serve lowering and size its
    // scratch at the maximum batch. prepareServe also packs weight
    // panels (idempotent per weight version — a second executor over
    // the same model reuses the first one's packs).
    steps_.reserve(plan_.steps.size());
    for (size_t si = 0; si < plan_.steps.size(); ++si) {
        const PlanStep& ps = plan_.steps[si];
        const PlanStep& us = unit_.steps[si];
        MIXQ_ASSERT(ps.kind == us.kind && ps.mod == us.mod &&
                        ps.in == us.in && ps.out == us.out,
                    "PlanExecutor: unit and max-batch plans diverge "
                    "structurally");
        StepExec se;
        se.mod = ps.mod;
        const std::vector<size_t>& inMax = plan_.buffers[ps.in].shape;
        switch (ps.kind) {
        case PlanStep::Kind::ResidualAdd:
            se.op = Op::ResidualAdd;
            break;
        case PlanStep::Kind::SliceLast:
            se.op = Op::SliceLast;
            break;
        case PlanStep::Kind::Layer:
            if (auto* ln = dynamic_cast<Linear*>(ps.mod)) {
                se.op = Op::Linear;
                se.lin = std::make_unique<LinearServeScratch>();
                ln->prepareServe(*se.lin,
                                 shapeSize(inMax) / ln->inFeatures());
            } else if (auto* cv = dynamic_cast<Conv2d*>(ps.mod)) {
                se.op = Op::Conv;
                se.conv = std::make_unique<ConvServeScratch>();
                cv->prepareServe(*se.conv, inMax);
            } else if (auto* dw = dynamic_cast<DwConv2d*>(ps.mod)) {
                se.op = Op::DwConv;
                se.conv = std::make_unique<ConvServeScratch>();
                dw->prepareServe(*se.conv, inMax);
            } else if (auto* bn = dynamic_cast<BatchNorm2d*>(ps.mod)) {
                se.op = Op::Bn;
                se.bn = std::make_unique<BnServeScratch>();
                bn->prepareServe(*se.bn);
            } else if (dynamic_cast<ReLU*>(ps.mod) != nullptr) {
                se.op = Op::Relu;
            } else if (dynamic_cast<MaxPool2d*>(ps.mod) != nullptr) {
                se.op = Op::MaxPool;
            } else if (dynamic_cast<GlobalAvgPool*>(ps.mod) !=
                       nullptr) {
                se.op = Op::Gap;
            } else if (dynamic_cast<Flatten*>(ps.mod) != nullptr) {
                se.op = Op::Flatten;
            } else if (dynamic_cast<Embedding*>(ps.mod) != nullptr) {
                se.op = Op::Embedding;
            } else if (auto* lstm = dynamic_cast<Lstm*>(ps.mod)) {
                se.op = Op::Lstm;
                se.rnn = std::make_unique<RnnServeScratch>();
                lstm->prepareServe(*se.rnn, inMax[1]);
            } else if (auto* gru = dynamic_cast<Gru*>(ps.mod)) {
                se.op = Op::Gru;
                se.rnn = std::make_unique<RnnServeScratch>();
                gru->prepareServe(*se.rnn, inMax[1]);
            } else {
                panic("PlanExecutor: plan step has no serve lowering "
                      "— planner and executor disagree");
            }
            break;
        }
        steps_.push_back(std::move(se));
    }

    // Prebuild every (batch size, step) view pair so run() touches
    // no heap: the views carry slab pointers at the max-batch plan's
    // offsets and the affinely interpolated runtime shapes.
    viewsByN_.resize(maxItems_ + 1);
    for (size_t n = 1; n <= maxItems_; ++n) {
        std::vector<StepViews>& vs = viewsByN_[n];
        vs.resize(plan_.steps.size());
        for (size_t si = 0; si < plan_.steps.size(); ++si) {
            const PlanStep& ps = plan_.steps[si];
            vs[si].in = TensorView{buf(ps.in), runtimeShape(ps.in, n)};
            vs[si].out =
                TensorView{buf(ps.out), runtimeShape(ps.out, n)};
        }
    }
}

PlanExecutor::~PlanExecutor()
{
    std::free(slab_);
}

void
PlanExecutor::restage()
{
    for (size_t si = 0; si < plan_.steps.size(); ++si) {
        const PlanStep& ps = plan_.steps[si];
        StepExec& se = steps_[si];
        const std::vector<size_t>& inMax = plan_.buffers[ps.in].shape;
        switch (se.op) {
        case Op::Linear: {
            auto* ln = static_cast<Linear*>(se.mod);
            ln->prepareServe(*se.lin,
                             shapeSize(inMax) / ln->inFeatures());
            break;
        }
        case Op::Conv:
            static_cast<Conv2d*>(se.mod)->prepareServe(*se.conv,
                                                       inMax);
            break;
        case Op::DwConv:
            static_cast<DwConv2d*>(se.mod)->prepareServe(*se.conv,
                                                         inMax);
            break;
        case Op::Bn:
            static_cast<BatchNorm2d*>(se.mod)->prepareServe(*se.bn);
            break;
        case Op::Lstm:
            static_cast<Lstm*>(se.mod)->prepareServe(*se.rnn,
                                                     inMax[1]);
            break;
        case Op::Gru:
            static_cast<Gru*>(se.mod)->prepareServe(*se.rnn,
                                                    inMax[1]);
            break;
        default:
            break; // stateless steps stage nothing
        }
    }
}

std::vector<size_t> PlanExecutor::runtimeShape(size_t bufIdx,
                                               size_t n) const
{
    const std::vector<size_t>& u = unit_.buffers[bufIdx].shape;
    const std::vector<size_t>& m = plan_.buffers[bufIdx].shape;
    MIXQ_ASSERT(u.size() == m.size(),
                "PlanExecutor: buffer rank differs between plans");
    std::vector<size_t> s(u.size());
    for (size_t d = 0; d < u.size(); ++d) {
        if (u[d] == m[d]) {
            s[d] = u[d];
            continue;
        }
        // Batch-carrying dimension: dim(n) must be affine in n for
        // the fixed max-batch offsets to hold every intermediate
        // batch. True for every modeled layer (batch axes pass
        // through untouched); asserted, not assumed.
        MIXQ_ASSERT(m[d] > u[d] && maxItems_ > 1 &&
                        (m[d] - u[d]) % (maxItems_ - 1) == 0,
                    "PlanExecutor: buffer dimension is not affine in "
                    "the item count");
        s[d] = u[d] + (m[d] - u[d]) / (maxItems_ - 1) * (n - 1);
    }
    return s;
}

size_t PlanExecutor::scratchBytes() const
{
    size_t total = 0;
    for (const StepExec& se : steps_) {
        if (se.lin)
            total += se.lin->bytes();
        if (se.conv)
            total += se.conv->bytes();
        if (se.bn)
            total += se.bn->bytes();
        if (se.rnn)
            total += se.rnn->bytes();
    }
    return total;
}

void PlanExecutor::run(size_t items)
{
    MIXQ_ASSERT(items >= 1 && items <= maxItems_,
                "PlanExecutor::run: batch exceeds the planned maximum");
    const std::vector<StepViews>& vs = viewsByN_[items];
    for (size_t si = 0; si < steps_.size(); ++si) {
        const StepExec& se = steps_[si];
        const TensorView& x = vs[si].in;
        const TensorView& y = vs[si].out;
        switch (se.op) {
        case Op::Linear:
            static_cast<const Linear*>(se.mod)->forwardServe(x, y,
                                                             *se.lin);
            break;
        case Op::Conv:
            static_cast<const Conv2d*>(se.mod)->forwardServe(x, y,
                                                             *se.conv);
            break;
        case Op::DwConv:
            static_cast<const DwConv2d*>(se.mod)->forwardServe(
                x, y, *se.conv);
            break;
        case Op::Bn:
            static_cast<const BatchNorm2d*>(se.mod)->forwardServe(
                x, y, *se.bn);
            break;
        case Op::Relu:
            static_cast<const ReLU*>(se.mod)->forwardServe(x, y);
            break;
        case Op::MaxPool:
            static_cast<const MaxPool2d*>(se.mod)->forwardServe(x, y);
            break;
        case Op::Gap:
            static_cast<const GlobalAvgPool*>(se.mod)->forwardServe(x,
                                                                    y);
            break;
        case Op::Flatten:
            // Flatten's eval forward is a copy + reshape; the view
            // already carries the flattened shape.
            std::memcpy(y.data, x.data, x.size() * sizeof(float));
            break;
        case Op::Embedding:
            static_cast<const Embedding*>(se.mod)->forwardServe(x, y);
            break;
        case Op::Lstm:
            static_cast<const Lstm*>(se.mod)->forwardServe(x, y,
                                                           *se.rnn);
            break;
        case Op::Gru:
            static_cast<const Gru*>(se.mod)->forwardServe(x, y,
                                                          *se.rnn);
            break;
        case Op::ResidualAdd: {
            // Replicates the blocks' in-place `h.add(s)`.
            const size_t len = y.size();
            MIXQ_ASSERT(x.size() == len,
                        "PlanExecutor: residual shape mismatch");
            float* dst = y.data;
            const float* src = x.data;
            for (size_t i = 0; i < len; ++i)
                dst[i] += src[i];
            break;
        }
        case Op::SliceLast: {
            // Last timestep of a [T, N, H] buffer into [N, H].
            const size_t t = x.dim(0);
            const size_t nn = x.dim(1);
            const size_t h = x.dim(2);
            std::memcpy(y.data, x.data + (t - 1) * nn * h,
                        nn * h * sizeof(float));
            break;
        }
        }
    }
}

} // namespace mixq
