#include "serve/planner.hh"

#include <algorithm>
#include <numeric>
#include <typeinfo>

#include "nn/blocks.hh"
#include "nn/layers.hh"
#include "nn/rnn.hh"
#include "nn/rnn_models.hh"
#include "util/logging.hh"

namespace mixq {

namespace {

constexpr size_t kPlanAlign = 64;

size_t
alignUp(size_t v, size_t a)
{
    return (v + a - 1) & ~(a - 1);
}

struct Ctx
{
    ServePlan plan;
};

size_t
emit(Ctx& c, std::string name, std::vector<size_t> shape)
{
    PlanBuffer b;
    b.name = std::move(name);
    b.bytes = shapeSize(shape) * sizeof(float);
    b.shape = std::move(shape);
    b.def = c.plan.buffers.size();
    b.lastUse = b.def;
    c.plan.buffers.push_back(std::move(b));
    return c.plan.buffers.size() - 1;
}

void
use(Ctx& c, size_t idx, size_t consumer)
{
    PlanBuffer& b = c.plan.buffers[idx];
    if (consumer > b.lastUse)
        b.lastUse = consumer;
}

void
step(Ctx& c, PlanStep::Kind kind, Module* mod, size_t in, size_t out)
{
    PlanStep s;
    s.kind = kind;
    s.mod = mod;
    s.in = in;
    s.out = out;
    c.plan.steps.push_back(s);
}

size_t
convOutDim(size_t h, size_t k, size_t s, size_t p)
{
    return (h + 2 * p - k) / s + 1;
}

std::string
joinPath(const std::string& a, const std::string& b)
{
    return a.empty() ? b : a + "." + b;
}

size_t walk(Ctx& c, Module& m, const std::string& path, size_t in);

/** Chain a composite's named children in order. */
size_t
walkChain(Ctx& c, Module& m, const std::string& path, size_t in)
{
    size_t h = in;
    for (const NamedChild& nc : m.namedChildren())
        h = walk(c, *nc.mod, joinPath(path, nc.name), h);
    return h;
}

Module*
childByName(Module& m, const std::string& name)
{
    for (const NamedChild& nc : m.namedChildren())
        if (nc.name == name)
            return nc.mod;
    return nullptr;
}

size_t
walkNamed(Ctx& c, Module& m, const std::string& path,
          const char* name, size_t in)
{
    Module* k = childByName(m, name);
    MIXQ_ASSERT(k != nullptr, std::string("planner: missing child ") +
                                  name);
    return walk(c, *k, joinPath(path, name), in);
}

size_t
walk(Ctx& c, Module& m, const std::string& path, size_t in)
{
    const std::vector<size_t> shape = c.plan.buffers[in].shape;

    if (auto* bb = dynamic_cast<BasicBlock*>(&m)) {
        size_t h = in;
        for (const char* n : {"conv1", "bn1", "relu1", "conv2", "bn2"})
            h = walkNamed(c, *bb, path, n, h);
        size_t s = in;
        if (childByName(*bb, "downConv")) {
            s = walkNamed(c, *bb, path, "downConv", in);
            s = walkNamed(c, *bb, path, "downBn", s);
        }
        // h.add(s) runs in place right before reluOut: the shortcut
        // buffer stays live until reluOut's output is defined.
        use(c, s, c.plan.buffers.size());
        step(c, PlanStep::Kind::ResidualAdd, nullptr, s, h);
        return walkNamed(c, *bb, path, "reluOut", h);
    }
    if (auto* ir = dynamic_cast<InvertedResidual*>(&m)) {
        size_t h = walkChain(c, *ir, path, in);
        // Skip connection (stride 1, equal channels): in-place add
        // into the bn3 output keeps the block input live until then.
        if (c.plan.buffers[h].shape == shape) {
            use(c, in, c.plan.buffers[h].def);
            step(c, PlanStep::Kind::ResidualAdd, nullptr, in, h);
        }
        return h;
    }
    if (auto* lc = dynamic_cast<LstmClassifier*>(&m)) {
        MIXQ_ASSERT(shape.size() == 2, "planner: LstmClassifier input");
        size_t h = in;
        for (const NamedChild& nc : lc->namedChildren()) {
            if (nc.name == "head")
                break;
            h = walk(c, *nc.mod, joinPath(path, nc.name), h);
        }
        // Last-timestep slice [N, H] feeds the head.
        const std::vector<size_t>& hs = c.plan.buffers[h].shape;
        size_t last = emit(c, joinPath(path, "last"), {hs[1], hs[2]});
        use(c, h, last);
        step(c, PlanStep::Kind::SliceLast, nullptr, h, last);
        return walkNamed(c, *lc, path, "head", last);
    }
    if (dynamic_cast<LstmLm*>(&m) || dynamic_cast<GruTagger*>(&m) ||
        dynamic_cast<Sequential*>(&m)) {
        // Pure chains; the pre-head reshape is in place (no buffer)
        // and the Linear leaf collapses leading dims itself.
        return walkChain(c, m, path, in);
    }

    if (auto* cv = dynamic_cast<Conv2d*>(&m)) {
        MIXQ_ASSERT(shape.size() == 4 && shape[1] == cv->inChannels(),
                    "planner: Conv2d input shape");
        size_t oh = convOutDim(shape[2], cv->kernel(), cv->stride(),
                               cv->pad());
        size_t ow = convOutDim(shape[3], cv->kernel(), cv->stride(),
                               cv->pad());
        size_t out = emit(c, path,
                          {shape[0], cv->outChannels(), oh, ow});
        use(c, in, out);
        step(c, PlanStep::Kind::Layer, &m, in, out);
        LayerSpec ls;
        ls.name = path;
        ls.kind = LayerKind::Conv;
        ls.m = shape[0] * oh * ow;
        ls.k = cv->inChannels() * cv->kernel() * cv->kernel();
        ls.n = cv->outChannels();
        c.plan.net.layers.push_back(ls);
        return out;
    }
    if (auto* dw = dynamic_cast<DwConv2d*>(&m)) {
        MIXQ_ASSERT(shape.size() == 4 && shape[1] == dw->channels(),
                    "planner: DwConv2d input shape");
        size_t oh = convOutDim(shape[2], dw->kernel(), dw->stride(),
                               dw->pad());
        size_t ow = convOutDim(shape[3], dw->kernel(), dw->stride(),
                               dw->pad());
        size_t out = emit(c, path,
                          {shape[0], dw->channels(), oh, ow});
        use(c, in, out);
        step(c, PlanStep::Kind::Layer, &m, in, out);
        LayerSpec ls;
        ls.name = path;
        ls.kind = LayerKind::DwConv;
        ls.m = shape[0] * oh * ow;
        ls.k = dw->kernel() * dw->kernel();
        ls.n = dw->channels();
        c.plan.net.layers.push_back(ls);
        return out;
    }
    if (dynamic_cast<BatchNorm2d*>(&m) || dynamic_cast<ReLU*>(&m)) {
        // Elementwise; folded BN still passes through as a copy.
        size_t out = emit(c, path, shape);
        use(c, in, out);
        step(c, PlanStep::Kind::Layer, &m, in, out);
        return out;
    }
    if (auto* mp = dynamic_cast<MaxPool2d*>(&m)) {
        MIXQ_ASSERT(shape.size() == 4, "planner: MaxPool2d input");
        size_t out = emit(c, path,
                          {shape[0], shape[1],
                           shape[2] / mp->window(),
                           shape[3] / mp->window()});
        use(c, in, out);
        step(c, PlanStep::Kind::Layer, &m, in, out);
        return out;
    }
    if (dynamic_cast<GlobalAvgPool*>(&m)) {
        MIXQ_ASSERT(shape.size() == 4, "planner: GlobalAvgPool input");
        size_t out = emit(c, path, {shape[0], shape[1]});
        use(c, in, out);
        step(c, PlanStep::Kind::Layer, &m, in, out);
        return out;
    }
    if (dynamic_cast<Flatten*>(&m)) {
        size_t out = emit(
            c, path,
            {shape[0], shapeSize(shape) / shape[0]});
        use(c, in, out);
        step(c, PlanStep::Kind::Layer, &m, in, out);
        return out;
    }
    if (auto* ln = dynamic_cast<Linear*>(&m)) {
        MIXQ_ASSERT(!shape.empty() &&
                        shape.back() == ln->inFeatures(),
                    "planner: Linear input shape");
        size_t rows = shapeSize(shape) / shape.back();
        size_t out = emit(c, path, {rows, ln->outFeatures()});
        use(c, in, out);
        step(c, PlanStep::Kind::Layer, &m, in, out);
        LayerSpec ls;
        ls.name = path;
        ls.kind = LayerKind::Linear;
        ls.m = rows;
        ls.k = ln->inFeatures();
        ls.n = ln->outFeatures();
        c.plan.net.layers.push_back(ls);
        return out;
    }
    if (auto* e = dynamic_cast<Embedding*>(&m)) {
        MIXQ_ASSERT(shape.size() == 2, "planner: Embedding input");
        size_t out = emit(c, path, {shape[0], shape[1], e->dim()});
        use(c, in, out);
        step(c, PlanStep::Kind::Layer, &m, in, out);
        return out;
    }
    if (auto* l = dynamic_cast<Lstm*>(&m)) {
        MIXQ_ASSERT(shape.size() == 3, "planner: Lstm input");
        size_t out =
            emit(c, path, {shape[0], shape[1], l->hidden()});
        use(c, in, out);
        step(c, PlanStep::Kind::Layer, &m, in, out);
        c.plan.net.layers.push_back(rnnInputGemm(
            path + ".wx", shape[2], 4 * l->hidden(), shape[0],
            shape[1]));
        c.plan.net.layers.push_back(rnnRecurrentGemm(
            path + ".wh", l->hidden(), 4 * l->hidden(), shape[0],
            shape[1]));
        return out;
    }
    if (auto* g = dynamic_cast<Gru*>(&m)) {
        MIXQ_ASSERT(shape.size() == 3, "planner: Gru input");
        size_t out =
            emit(c, path, {shape[0], shape[1], g->hidden()});
        use(c, in, out);
        step(c, PlanStep::Kind::Layer, &m, in, out);
        c.plan.net.layers.push_back(rnnInputGemm(
            path + ".wx", shape[2], 3 * g->hidden(), shape[0],
            shape[1]));
        c.plan.net.layers.push_back(rnnRecurrentGemm(
            path + ".wh", g->hidden(), 3 * g->hidden(), shape[0],
            shape[1]));
        return out;
    }

    panic(std::string("planner: unmodeled module type ") +
          typeid(m).name() + " at '" + (path.empty() ? "." : path) +
          "' — add a shape-transfer rule to serve/planner.cc");
}

bool
timeOverlap(const PlanBuffer& a, const PlanBuffer& b)
{
    return a.def <= b.lastUse && b.def <= a.lastUse;
}

} // namespace

size_t
assignArenaOffsets(std::vector<PlanBuffer>& bufs)
{
    std::vector<size_t> order(bufs.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return bufs[a].bytes > bufs[b].bytes;
                     });
    std::vector<size_t> placed;
    size_t extent = 0;
    for (size_t i : order) {
        PlanBuffer& b = bufs[i];
        // Byte ranges of already-placed buffers alive at the same
        // time, sorted by offset; first-fit below/between them.
        std::vector<std::pair<size_t, size_t>> busy;
        for (size_t j : placed)
            if (timeOverlap(b, bufs[j]))
                busy.emplace_back(bufs[j].offset,
                                  bufs[j].offset + bufs[j].bytes);
        std::sort(busy.begin(), busy.end());
        size_t off = 0;
        for (const auto& [s, e] : busy) {
            if (off + b.bytes <= s)
                break;
            if (e > off)
                off = alignUp(e, kPlanAlign);
        }
        b.offset = off;
        extent = std::max(extent, off + b.bytes);
        placed.push_back(i);
    }
    return alignUp(extent, kPlanAlign);
}

bool
ServePlan::validate(std::string* why) const
{
    for (size_t i = 0; i < buffers.size(); ++i) {
        const PlanBuffer& a = buffers[i];
        if (a.offset + a.bytes > peakBytes) {
            if (why)
                *why = "buffer '" + a.name +
                       "' ends past the plan's peakBytes";
            return false;
        }
        if (a.lastUse < a.def) {
            if (why)
                *why = "buffer '" + a.name +
                       "' has lastUse before def";
            return false;
        }
        for (size_t j = i + 1; j < buffers.size(); ++j) {
            const PlanBuffer& b = buffers[j];
            if (!timeOverlap(a, b))
                continue;
            bool disjoint = a.offset + a.bytes <= b.offset ||
                            b.offset + b.bytes <= a.offset;
            if (!disjoint) {
                if (why)
                    *why = "live buffers '" + a.name + "' and '" +
                           b.name + "' overlap in the arena";
                return false;
            }
        }
    }
    return true;
}

ServePlan
planServeForward(Module& root, const std::vector<size_t>& inShape)
{
    MIXQ_ASSERT(!inShape.empty() && shapeSize(inShape) > 0,
                "planner: empty input shape");
    Ctx c;
    c.plan.net.name = "serve";
    size_t inBuf = emit(c, "input", inShape);
    size_t outBuf = walk(c, root, "", inBuf);
    c.plan.outShape = c.plan.buffers[outBuf].shape;
    c.plan.outIndex = outBuf;
    c.plan.peakBytes = assignArenaOffsets(c.plan.buffers);
    std::string why;
    MIXQ_ASSERT(c.plan.validate(&why),
                "planner: invalid arena plan: " + why);
    return c.plan;
}

} // namespace mixq
