#include "serve/bn_fold.hh"

#include <cmath>
#include <vector>

#include "nn/layers.hh"

namespace mixq {

namespace {

size_t
foldUnder(Module& m, bool fold)
{
    size_t n = 0;
    std::vector<Module*> kids = m.children();
    for (size_t i = 0; i + 1 < kids.size(); ++i) {
        auto* conv = dynamic_cast<Conv2d*>(kids[i]);
        auto* bn = dynamic_cast<BatchNorm2d*>(kids[i + 1]);
        if (!conv || !bn || conv->outChannels() != bn->channels())
            continue;
        if (fold) {
            if (conv->bnEvalFolded())
                continue;
            size_t ch = bn->channels();
            std::vector<float> mean(ch), istd(ch), g(ch), b(ch);
            for (size_t c = 0; c < ch; ++c) {
                // Same constant computation as BatchNorm2d eval:
                // stats promoted to double, 1/sqrt in double, one
                // rounding to float.
                mean[c] = bn->runningMean()[c];
                istd[c] = float(
                    1.0 / std::sqrt(double(bn->runningVar()[c]) +
                                    bn->eps()));
                g[c] = bn->gamma()[c];
                b[c] = bn->beta()[c];
            }
            conv->setBnEvalEpilogue(std::move(mean), std::move(istd),
                                    std::move(g), std::move(b));
            bn->setFoldedEval(true);
            ++n;
        } else if (conv->bnEvalFolded()) {
            conv->clearBnEvalEpilogue();
            bn->setFoldedEval(false);
            ++n;
        }
    }
    for (Module* k : kids)
        n += foldUnder(*k, fold);
    return n;
}

} // namespace

size_t
foldBatchNormForEval(Module& root)
{
    return foldUnder(root, true);
}

size_t
unfoldBatchNormForEval(Module& root)
{
    return foldUnder(root, false);
}

} // namespace mixq
