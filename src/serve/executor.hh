/**
 * @file
 * Plan execution: run a model's eval forward as the recorded step
 * list of its ServePlan, writing every activation into one pre-
 * faulted slab at the planner's precomputed offsets. A PlanExecutor
 * is the per-replica half of the serving split — it owns the slab
 * and every layer's mutable serve scratch (sized once, at the plan's
 * maximum batch), while the model it executes stays immutable and
 * replica-shared: packed weight panels, folded BN and float weights
 * are read concurrently by any number of executors, so n replicas
 * cost one model plus n plans.
 *
 * Steady-state run() calls allocate nothing — not from the heap and
 * not from a bump arena: activations land at fixed offsets that are
 * stable across requests, and per-step scratch was pre-sized by
 * prepareServe. Variable batch sizes are handled without replanning
 * by planning twice (unit batch and maximum batch) and interpolating
 * every buffer dimension affinely in the item count; the walk is
 * deterministic, so the two plans are structurally identical and the
 * interpolation is exact (asserted).
 *
 * Construction and run() are single-threaded from the caller's view
 * (one worker thread per replica); the layer forwards open their own
 * OpenMP regions exactly as the scope-path eval forward does, so
 * outputs are bit-identical to Module::forward(x, false) at every
 * thread count.
 */

#ifndef MIXQ_SERVE_EXECUTOR_HH
#define MIXQ_SERVE_EXECUTOR_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "nn/layers.hh"
#include "nn/rnn.hh"
#include "serve/planner.hh"

namespace mixq {

/** Executes one ServePlan against a shared, immutable model. */
class PlanExecutor
{
  public:
    /**
     * Plan @p root at @p itemShape (a single item: the batch axis
     * @p batchAxis must be 1) and at the same shape with the batch
     * axis widened to @p maxItems, allocate and pre-fault the slab,
     * and size every step's scratch for the maximum batch. Packs
     * weight panels via the layers' prepareServe — idempotent per
     * weight version, so building a second executor over the same
     * model packs nothing and shares the first one's panels.
     */
    PlanExecutor(Module& root, const std::vector<size_t>& itemShape,
                 size_t batchAxis, size_t maxItems);
    ~PlanExecutor();
    PlanExecutor(const PlanExecutor&) = delete;
    PlanExecutor& operator=(const PlanExecutor&) = delete;

    /**
     * Execute the plan for @p items (1 <= items <= maxItems). The
     * caller has written the input into inputData() in the runtime
     * input shape; the output lands at outputData(). Allocation-free
     * in steady state (first call included — scratch is ctor-sized).
     */
    void run(size_t items);

    /** Slab address of the input buffer (gather target). */
    float* inputData() { return buf(0); }
    /** Slab address of the output buffer (scatter source). */
    const float* outputData() const { return buf(plan_.outIndex); }
    /** Byte size of the input buffer at the maximum batch. */
    size_t inputBytes() const { return plan_.buffers[0].bytes; }
    /** Runtime shape of the input buffer for @p items. */
    std::vector<size_t> inputShape(size_t items) const
    {
        return runtimeShape(0, items);
    }
    /** Runtime shape of the output buffer for @p items. */
    std::vector<size_t> outputShape(size_t items) const
    {
        return runtimeShape(plan_.outIndex, items);
    }

    /**
     * Re-run every step's prepareServe against the model's current
     * state. Needed after a hot weight swap (BatchServer::
     * reloadArtifact): prepareServe stages per-layer eval constants —
     * BatchNorm's frozen running-stat affine, panel packs keyed by
     * weight version — that would otherwise keep serving the old
     * model. Shapes are unchanged, so scratch never regrows; must not
     * race run() (the server calls it with every worker quiesced).
     */
    void restage();

    /** The executed (maximum-batch) plan. */
    const ServePlan& plan() const { return plan_; }
    size_t maxItems() const { return maxItems_; }
    /** Allocated slab size (the plan's peak, page-rounded up). */
    size_t slabBytes() const { return slabBytes_; }
    /** Total bytes of this replica's per-step serve scratch. */
    size_t scratchBytes() const;

  private:
    /** Resolved step: the plan step plus its serve lowering. */
    enum class Op
    {
        Linear,
        Conv,
        DwConv,
        Bn,
        Relu,
        MaxPool,
        Gap,
        Flatten,
        Embedding,
        Lstm,
        Gru,
        ResidualAdd,
        SliceLast
    };

    struct StepExec
    {
        Op op = Op::ResidualAdd;
        Module* mod = nullptr;
        std::unique_ptr<LinearServeScratch> lin;
        std::unique_ptr<ConvServeScratch> conv;
        std::unique_ptr<BnServeScratch> bn;
        std::unique_ptr<RnnServeScratch> rnn;
    };

    /** Prebuilt input/output views of one step at one batch size. */
    struct StepViews
    {
        TensorView in, out;
    };

    float* buf(size_t i) const
    {
        return slab_ + plan_.buffers[i].offset / sizeof(float);
    }
    std::vector<size_t> runtimeShape(size_t bufIdx, size_t n) const;

    ServePlan unit_; //!< plan at batch 1 (shape interpolation anchor)
    ServePlan plan_; //!< plan at maxItems (offsets, scratch sizing)
    size_t maxItems_ = 1;
    float* slab_ = nullptr;
    size_t slabBytes_ = 0;
    std::vector<StepExec> steps_;
    std::vector<std::vector<StepViews>> viewsByN_; //!< [items][step]
};

} // namespace mixq

#endif // MIXQ_SERVE_EXECUTOR_HH
