/**
 * @file
 * Steady-state allocation control for the serving runtime. An Arena
 * is one malloc'd block carved by bump allocation; an ArenaScope
 * redirects every operator-new on the *current thread* into an arena
 * for its lifetime, so a warmed-up forward pass allocates all of its
 * transient tensors and scratch out of the block and the matching
 * deletes become no-ops (the block is recycled wholesale by
 * Arena::reset() between batches).
 *
 * The redirect is deliberately thread-scoped: OpenMP worker threads
 * inside a parallel region keep their normal heap, so the arena is
 * single-owner and needs no synchronization. Per-thread counters
 * (heapAllocCount / arenaAllocCount) are maintained unconditionally;
 * ScopedHeapAllocCount reads them so tests — and the server's
 * Debug-build self-check — can assert that a steady-state forward
 * performs zero real-heap allocations on the calling thread.
 *
 * The operator new/delete replacements live in arena.cc; linking any
 * serve/ symbol pulls them into the binary. Deletes of pointers
 * inside a live arena are ignored (a global registry of arena ranges
 * makes that check lock-free), everything else routes to malloc/free
 * as usual, so binaries that never enter an ArenaScope behave
 * exactly as before.
 *
 * Contract for arena-backed execution: any container that may *grow*
 * during a scoped call must have reached steady-state capacity
 * beforehand (run the same shape unscoped first — the server's
 * warmup does exactly that). A buffer grown under the scope would
 * live in arena memory past reset() and dangle.
 */

#ifndef MIXQ_SERVE_ARENA_HH
#define MIXQ_SERVE_ARENA_HH

#include <cstddef>
#include <cstdint>

namespace mixq {

/** One contiguous block, bump-allocated, recycled by reset(). */
class Arena
{
  public:
    explicit Arena(size_t capacityBytes);
    ~Arena();
    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    /**
     * Bump-allocate @p bytes at @p align, or null when the remaining
     * capacity does not fit (the caller falls back to the heap).
     * Only the owning thread may call this (see file comment).
     */
    void* alloc(size_t bytes, size_t align);

    /** Whether @p p points into this arena's block. */
    bool contains(const void* p) const;

    /**
     * Recycle the whole block: every pointer handed out since the
     * last reset becomes invalid. The caller must ensure none are
     * still reachable (the server drops its batch tensors first).
     */
    void reset();

    size_t capacity() const { return cap_; }
    size_t used() const { return off_; }
    /** Largest used() ever observed (across resets). */
    size_t highWater() const { return hw_; }
    /** Allocations served from the block since construction. */
    uint64_t allocCount() const { return allocs_; }
    /** Allocations that did not fit and spilled to the heap. */
    uint64_t overflowCount() const { return overflows_; }
    void noteOverflow() { ++overflows_; }

  private:
    char* base_ = nullptr;
    size_t cap_ = 0;
    size_t off_ = 0;
    size_t hw_ = 0;
    uint64_t allocs_ = 0;
    uint64_t overflows_ = 0;
    int slot_ = -1; //!< registry slot for the delete-side range check
};

/**
 * RAII thread-local redirect: while alive, operator new on this
 * thread bump-allocates from @p a (heap fallback on overflow).
 * Nests; restores the previous redirect on destruction.
 */
class ArenaScope
{
  public:
    explicit ArenaScope(Arena& a);
    ~ArenaScope();
    ArenaScope(const ArenaScope&) = delete;
    ArenaScope& operator=(const ArenaScope&) = delete;

  private:
    Arena* prev_;
};

/** Monotonic count of real-heap operator-new calls on this thread. */
uint64_t heapAllocCount();
/** Total bytes those heap allocations requested. */
uint64_t heapAllocBytes();
/** Monotonic count of arena-served operator-new calls on this thread. */
uint64_t arenaAllocCount();

/**
 * Reads the thread's allocation counters on construction; count()
 * and bytes() report real-heap allocations since then. This is the
 * "scoped allocation counter" of the zero-allocation tests and of
 * the server's Debug steady-state assert — arena-served allocations
 * are by design not counted.
 */
class ScopedHeapAllocCount
{
  public:
    ScopedHeapAllocCount()
        : c0_(heapAllocCount()), b0_(heapAllocBytes())
    {
    }

    uint64_t count() const { return heapAllocCount() - c0_; }
    uint64_t bytes() const { return heapAllocBytes() - b0_; }

  private:
    uint64_t c0_, b0_;
};

} // namespace mixq

#endif // MIXQ_SERVE_ARENA_HH
