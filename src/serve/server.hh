/**
 * @file
 * Batched inference server runtime. BatchServer owns a small pool of
 * worker threads, each bound to one model replica; callers submit()
 * single- or multi-item request tensors and get a future for the
 * per-request output slice. Workers pull from one shared FIFO queue
 * and coalesce adjacent requests into a batch of up to
 * ServeOptions::maxBatch items, waiting at most deadlineUs for the
 * batch to fill — the classic dynamic-batching latency/throughput
 * trade. Coalescing never reorders: the queue head that does not fit
 * ships the batch (a request is one unit; items of one request are
 * never split across batches).
 *
 * Two execution modes share the queue/coalescing front end:
 *
 * Replica mode (legacy): each worker owns a full model replica and
 * runs its steady-state forwards inside an ArenaScope
 * (serve/arena.hh): warmup sizes all layer-internal scratch at the
 * max-batch shape on the real heap, the arena is sized from the
 * measured transient footprint and the ahead-of-time plan
 * (serve/planner.hh), and from then on each batch's activations are
 * bump-allocated and released with one pointer reset. In Debug
 * builds the worker asserts the steady state allocates nothing on
 * the calling thread's heap.
 *
 * Planned mode (shared model): the plan is *executed*, not just a
 * sizing hint. One immutable model is shared by every worker; each
 * worker owns only a PlanExecutor (serve/executor.hh) — a pre-
 * faulted slab plus per-step serve scratch — and gathers requests
 * straight into the slab's input buffer, runs the recorded step
 * list at the planner's fixed offsets, and scatters from the output
 * buffer. Steady state allocates nothing at all: no heap *and* no
 * bump-pointer traffic (Debug builds assert both), and activation
 * addresses are stable across requests. n replicas cost one model
 * plus n plans.
 *
 * Batch composition does not change results: the Int backend's
 * integer accumulation is per output column and every float epilogue
 * is per-element, so a request served alone is bit-identical to the
 * same request inside any coalesced batch (tests/serve_test.cc locks
 * this in).
 *
 * Failure model (see ARCHITECTURE.md "Failure model" for the full
 * contract): every future submit() hands out settles exactly once —
 * with the output tensor or with a structured error — no matter what
 * faults the server absorbs. Admission control bounds queue memory
 * (ServeOptions::maxQueueItems + OverloadPolicy); per-request
 * deadlines expire requests that waited too long; a worker forward
 * that throws fails only its own batch's futures and the worker
 * keeps serving; a worker that dies permanently leaves the survivors
 * draining the queue, and when the last worker dies every queued and
 * future request fails instead of hanging. reloadArtifact() swaps in
 * a new deploy artifact between batches — a damaged artifact is
 * refused with the old model still serving.
 */

#ifndef MIXQ_SERVE_SERVER_HH
#define MIXQ_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "nn/module.hh"
#include "serial/record_io.hh"
#include "serve/arena.hh"
#include "serve/planner.hh"

namespace mixq {

class PlanExecutor;

/**
 * What submit() does when accepting a request would push the queue
 * past ServeOptions::maxQueueItems.
 */
enum class OverloadPolicy
{
    /** Block the producer until the queue has room (backpressure). */
    Block,
    /** Accept the new request and shed the *oldest* queued requests
        to make room — their futures fail with ServeError::Shed
        immediately. Freshest-first under overload. */
    Shed,
    /** Refuse the new request: its future fails with
        ServeError::Shed immediately, the queue is untouched. */
    FailFast,
};

/** Admission outcome of one submit() call. */
enum class ServeStatus
{
    Accepted, //!< queued; the future settles when served (or on a
              //!< later fault/expiry/stop)
    Shed,     //!< refused by the overload policy; the future already
              //!< holds ServeError::Shed
    Rejected, //!< invalid request or server not accepting (stopped /
              //!< all workers dead); the future already holds the
              //!< error
};

/**
 * The structured error a request future fails with when the server —
 * not the model — is the reason. code() tells the caller what
 * happened without string matching.
 */
class ServeError : public std::runtime_error
{
  public:
    enum class Code
    {
        Shed,        //!< dropped by the overload policy
        Expired,     //!< per-request deadline passed before serving
        Stopped,     //!< server stopped (or never had live workers)
        WorkerFault, //!< the serving worker failed
    };

    ServeError(Code code, const std::string& what)
        : std::runtime_error(what), code_(code)
    {
    }

    Code code() const { return code_; }

  private:
    Code code_;
};

/** Tuning knobs of a BatchServer. */
struct ServeOptions
{
    size_t maxBatch = 8;   //!< max coalesced items per forward
    long deadlineUs = 1000; //!< max wait for a batch to fill; 0 =
                            //!< never coalesce (batch of one request)
    size_t arenaBytes = 0; //!< arena capacity floor; 0 = sized from
                           //!< warmup measurement and the plan
    int ompThreads = 0;    //!< omp_set_num_threads per worker; 0 =
                           //!< inherit the environment
    bool planArena = true; //!< run the ahead-of-time planner
    size_t maxQueueItems = 0; //!< admission bound on queued items;
                              //!< 0 = unbounded (no admission
                              //!< control). Must be >= maxBatch.
    OverloadPolicy overload = OverloadPolicy::Block; //!< what to do
                                                     //!< at the bound
};

/**
 * How request items map onto the model's input/output tensors.
 * itemShape is the full input shape of a single item (batch dim 1):
 * {1, C, H, W} for the CNNs (batchAxis 0), {T, 1} / {T, 1, F} for
 * the sequence models (batchAxis 1). timeMajorOut marks models whose
 * output rows are [T*N, ...] grouped by timestep (LstmLm, GruTagger);
 * off it is [N, ...] grouped by item.
 */
struct BatchTraits
{
    std::vector<size_t> itemShape;
    size_t batchAxis = 0;
    bool timeMajorOut = false;
};

/** Admission status plus the future for the request's output. The
    future is valid in every case; non-Accepted futures already hold
    their error. */
struct SubmitResult
{
    ServeStatus status = ServeStatus::Rejected;
    std::future<Tensor> future;

    bool accepted() const { return status == ServeStatus::Accepted; }
};

/** Dynamic-batching inference server over per-worker model replicas. */
class BatchServer
{
  public:
    /** Running totals and sizing facts (test/bench introspection). */
    struct Stats
    {
        size_t requests = 0; //!< requests served successfully
        size_t items = 0;    //!< items served successfully
        size_t batches = 0;  //!< forwards attempted
        size_t arenaCapacity = 0;  //!< worker 0's arena / slab size
        size_t planPeakBytes = 0;  //!< planner's analytic peak
        size_t arenaHighWater = 0; //!< worker 0's observed peak
        size_t arenaOverflows = 0; //!< heap-fallback allocations
        size_t scratchBytes = 0;   //!< worker 0's per-replica serve
                                   //!< scratch (planned mode only)
        size_t accepted = 0; //!< requests admitted to the queue
        size_t shed = 0;     //!< requests dropped by overload policy
        size_t expired = 0;  //!< requests dropped past their deadline
        size_t failed = 0;   //!< requests failed by worker faults /
                             //!< worker death
        size_t faults = 0;   //!< worker forwards that threw
        size_t queuePeakItems = 0; //!< max items ever queued at once
        size_t workersAlive = 0;   //!< workers currently serving
    };

    /**
     * Spawn one worker thread per replica. Replicas must be distinct
     * Module trees of identical architecture and weights, already
     * switched to the serving backend — layer forward passes use
     * member scratch, so a replica must never be shared between
     * workers. The server does not own the replicas.
     */
    BatchServer(std::vector<Module*> replicas, BatchTraits traits,
                ServeOptions opt);

    /**
     * Plan-executed shared-model mode: spawn @p replicas workers over
     * ONE immutable @p model. Each worker owns only a PlanExecutor
     * (activation slab + per-step serve scratch); the model — packed
     * weight panels, folded BN, float weights — is read concurrently
     * by all of them, so n replicas cost one model plus n plans. The
     * model must already be switched to its serving backend and must
     * not be mutated while the server runs (reloadArtifact() is the
     * one sanctioned mutation — it quiesces the workers first).
     * Steady-state batches allocate nothing (no heap, no arena; Debug
     * builds assert both) and are bit-identical to replica-mode
     * serving. ServeOptions::arenaBytes and planArena are ignored
     * here.
     */
    BatchServer(Module& model, size_t replicas,
                const BatchTraits& traits, const ServeOptions& opt);

    /** stop(true): drain the queue, then join the workers. */
    ~BatchServer();

    BatchServer(const BatchServer&) = delete;
    BatchServer& operator=(const BatchServer&) = delete;

    /**
     * Enqueue one request of one or more items (dim batchAxis is the
     * item count; every other dim must match itemShape). The future
     * resolves to this request's output slice — bit-identical to
     * running the request alone.
     *
     * Admission is governed by ServeOptions::maxQueueItems and the
     * overload policy; the returned status says what happened. Shape
     * errors and oversize requests (items > maxBatch) return Rejected
     * with std::invalid_argument on the future; submission after
     * stop() — or after every worker died — deterministically returns
     * Rejected with ServeError::Stopped, never enqueues, never
     * blocks.
     *
     * @p deadlineUs > 0 gives the request a deadline: if it is still
     * queued when the deadline passes, the coalescer drops it before
     * gathering and its future fails with ServeError::Expired. 0 (the
     * default) never expires.
     */
    SubmitResult submit(Tensor x, long deadlineUs = 0);

    /**
     * Stop the server. drain == true serves every queued request
     * first; drain == false stops after in-flight batches and fails
     * the remaining futures with ServeError::Stopped. Idempotent;
     * subsequent submit() calls are rejected.
     */
    void stop(bool drain = true);

    /**
     * Hot-swap the served weights from a deploy artifact: stage the
     * artifact read-only against the serving model (concurrent
     * batches keep running), then quiesce every worker between
     * batches, apply the staged panels to every replica, and resume.
     * Accepted requests straddling the swap are never lost — they
     * serve either the old or the new weights, whole batches at a
     * time. On any failure (damaged / mismatched file, stopped
     * server) returns the failure class with the old weights still
     * serving, untouched. Serializes with concurrent reloads.
     */
    LoadResult reloadArtifact(const std::string& path);

    Stats stats() const;

    /** The ahead-of-time plan ({} when planArena was off). */
    const ServePlan& plan() const { return plan_; }

  private:
    struct Request
    {
        Tensor x;
        size_t items = 0;
        std::promise<Tensor> result;
        bool hasDeadline = false;
        std::chrono::steady_clock::time_point expiry{};
    };

    void workerLoop(size_t worker);
    /** Replica / planned serving loops; return normally on shutdown,
        throw on permanent worker death. */
    void replicaWorkerBody(size_t worker);
    void plannedWorkerBody(size_t worker);
    /** Worker bookkeeping on exit; sweeps the queue when the last
        worker dies abnormally. */
    void workerExit(bool abnormal);
    /** Dequeue + coalesce the next batch; false = shut down. Drops
        expired requests instead of gathering them. */
    bool nextBatch(std::vector<Request>& batch, size_t& items);
    /** Fail every future of @p batch with @p e (tolerates futures a
        partial scatter already satisfied). */
    static void failBatch(std::vector<Request>& batch,
                          std::exception_ptr e);
    /** Run one batch; false = this worker must die (injected worker
        death). Either way every future of @p batch settles. */
    bool runBatch(Module& model, Arena& arena,
                  std::vector<Request>& batch, size_t items,
                  size_t batchesDone, uint64_t seq);
    bool runBatchPlanned(PlanExecutor& exec,
                         std::vector<Request>& batch, size_t items,
                         size_t batchesDone, uint64_t seq);
    Tensor gather(const std::vector<Request>& batch,
                  size_t items) const;
    /** Gather straight into a planned input buffer (no Tensor). */
    void gatherInto(const std::vector<Request>& batch, size_t items,
                    float* dst) const;
    void scatter(const Tensor& yb, size_t items,
                 std::vector<Request>& batch) const;
    /** Scatter from a raw output of shape @p ys (planned mode; the
        Tensor overload delegates here). */
    void scatterRaw(const float* yb, const std::vector<size_t>& ys,
                    size_t items, std::vector<Request>& batch) const;

    std::vector<Module*> replicas_;
    bool planned_ = false;
    Module* sharedModel_ = nullptr; //!< planned mode's one model
    std::vector<std::unique_ptr<PlanExecutor>> execs_;
    BatchTraits traits_;
    ServeOptions opt_;
    ServePlan plan_;

    mutable std::mutex mu_;
    std::condition_variable cv_;     //!< queue / pause / stop wakeups
    std::condition_variable roomCv_; //!< Block producers wait here
    std::condition_variable pauseCv_; //!< reload waits for quiescence
    std::deque<Request> queue_;
    size_t queuedItems_ = 0; //!< items in queue_ (admission bound)
    bool stopping_ = false;
    bool drain_ = true;
    bool dead_ = false; //!< every worker died abnormally
    bool pauseRequested_ = false; //!< reload wants workers parked
    size_t pausedWorkers_ = 0;
    size_t liveWorkers_ = 0;
    std::mutex joinMu_;   //!< serializes the join in stop()
    std::mutex reloadMu_; //!< serializes reloadArtifact() calls
    std::vector<std::thread> workers_;

    std::atomic<size_t> doneRequests_{0};
    std::atomic<size_t> doneItems_{0};
    std::atomic<size_t> doneBatches_{0};
    std::atomic<size_t> arenaCapacity_{0};
    std::atomic<size_t> arenaHighWater_{0};
    std::atomic<size_t> arenaOverflows_{0};
    std::atomic<size_t> scratchBytes_{0};
    std::atomic<size_t> accepted_{0};
    std::atomic<size_t> shed_{0};
    std::atomic<size_t> expired_{0};
    std::atomic<size_t> failed_{0};
    std::atomic<size_t> faults_{0};
    std::atomic<size_t> queuePeakItems_{0};
    std::atomic<uint64_t> batchSeq_{0}; //!< global batch numbering
                                        //!< (fault-plan triggers)
    std::atomic<uint64_t> reloadGen_{0}; //!< bumped per hot-swap
                                         //!< (resets workers' steady-
                                         //!< state assertion grace)
};

} // namespace mixq

#endif // MIXQ_SERVE_SERVER_HH
