/**
 * @file
 * Batched inference server runtime. BatchServer owns a small pool of
 * worker threads, each bound to one model replica; callers submit()
 * single- or multi-item request tensors and get a future for the
 * per-request output slice. Workers pull from one shared FIFO queue
 * and coalesce adjacent requests into a batch of up to
 * ServeOptions::maxBatch items, waiting at most deadlineUs for the
 * batch to fill — the classic dynamic-batching latency/throughput
 * trade. Coalescing never reorders: the queue head that does not fit
 * ships the batch (a request is one unit; items of one request are
 * never split across batches).
 *
 * Two execution modes share the queue/coalescing front end:
 *
 * Replica mode (legacy): each worker owns a full model replica and
 * runs its steady-state forwards inside an ArenaScope
 * (serve/arena.hh): warmup sizes all layer-internal scratch at the
 * max-batch shape on the real heap, the arena is sized from the
 * measured transient footprint and the ahead-of-time plan
 * (serve/planner.hh), and from then on each batch's activations are
 * bump-allocated and released with one pointer reset. In Debug
 * builds the worker asserts the steady state allocates nothing on
 * the calling thread's heap.
 *
 * Planned mode (shared model): the plan is *executed*, not just a
 * sizing hint. One immutable model is shared by every worker; each
 * worker owns only a PlanExecutor (serve/executor.hh) — a pre-
 * faulted slab plus per-step serve scratch — and gathers requests
 * straight into the slab's input buffer, runs the recorded step
 * list at the planner's fixed offsets, and scatters from the output
 * buffer. Steady state allocates nothing at all: no heap *and* no
 * bump-pointer traffic (Debug builds assert both), and activation
 * addresses are stable across requests. n replicas cost one model
 * plus n plans.
 *
 * Batch composition does not change results: the Int backend's
 * integer accumulation is per output column and every float epilogue
 * is per-element, so a request served alone is bit-identical to the
 * same request inside any coalesced batch (tests/serve_test.cc locks
 * this in).
 */

#ifndef MIXQ_SERVE_SERVER_HH
#define MIXQ_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "nn/module.hh"
#include "serve/arena.hh"
#include "serve/planner.hh"

namespace mixq {

class PlanExecutor;

/** Tuning knobs of a BatchServer. */
struct ServeOptions
{
    size_t maxBatch = 8;   //!< max coalesced items per forward
    long deadlineUs = 1000; //!< max wait for a batch to fill; 0 =
                            //!< never coalesce (batch of one request)
    size_t arenaBytes = 0; //!< arena capacity floor; 0 = sized from
                           //!< warmup measurement and the plan
    int ompThreads = 0;    //!< omp_set_num_threads per worker; 0 =
                           //!< inherit the environment
    bool planArena = true; //!< run the ahead-of-time planner
};

/**
 * How request items map onto the model's input/output tensors.
 * itemShape is the full input shape of a single item (batch dim 1):
 * {1, C, H, W} for the CNNs (batchAxis 0), {T, 1} / {T, 1, F} for
 * the sequence models (batchAxis 1). timeMajorOut marks models whose
 * output rows are [T*N, ...] grouped by timestep (LstmLm, GruTagger);
 * off it is [N, ...] grouped by item.
 */
struct BatchTraits
{
    std::vector<size_t> itemShape;
    size_t batchAxis = 0;
    bool timeMajorOut = false;
};

/** Dynamic-batching inference server over per-worker model replicas. */
class BatchServer
{
  public:
    /** Running totals and sizing facts (test/bench introspection). */
    struct Stats
    {
        size_t requests = 0; //!< requests completed
        size_t items = 0;    //!< items completed
        size_t batches = 0;  //!< forwards executed
        size_t arenaCapacity = 0;  //!< worker 0's arena / slab size
        size_t planPeakBytes = 0;  //!< planner's analytic peak
        size_t arenaHighWater = 0; //!< worker 0's observed peak
        size_t arenaOverflows = 0; //!< heap-fallback allocations
        size_t scratchBytes = 0;   //!< worker 0's per-replica serve
                                   //!< scratch (planned mode only)
    };

    /**
     * Spawn one worker thread per replica. Replicas must be distinct
     * Module trees of identical architecture and weights, already
     * switched to the serving backend — layer forward passes use
     * member scratch, so a replica must never be shared between
     * workers. The server does not own the replicas.
     */
    BatchServer(std::vector<Module*> replicas, BatchTraits traits,
                ServeOptions opt);

    /**
     * Plan-executed shared-model mode: spawn @p replicas workers over
     * ONE immutable @p model. Each worker owns only a PlanExecutor
     * (activation slab + per-step serve scratch); the model — packed
     * weight panels, folded BN, float weights — is read concurrently
     * by all of them, so n replicas cost one model plus n plans. The
     * model must already be switched to its serving backend and must
     * not be mutated while the server runs. Steady-state batches
     * allocate nothing (no heap, no arena; Debug builds assert both)
     * and are bit-identical to replica-mode serving.
     * ServeOptions::arenaBytes and planArena are ignored here.
     */
    BatchServer(Module& model, size_t replicas,
                const BatchTraits& traits, const ServeOptions& opt);

    /** stop(true): drain the queue, then join the workers. */
    ~BatchServer();

    BatchServer(const BatchServer&) = delete;
    BatchServer& operator=(const BatchServer&) = delete;

    /**
     * Enqueue one request of one or more items (dim batchAxis is the
     * item count; every other dim must match itemShape). The future
     * resolves to this request's output slice — bit-identical to
     * running the request alone. Shape errors, oversize requests
     * (items > maxBatch) and submission after stop() resolve the
     * future to an exception instead of enqueueing.
     */
    std::future<Tensor> submit(Tensor x);

    /**
     * Stop the server. drain == true serves every queued request
     * first; drain == false stops after in-flight batches and fails
     * the remaining futures with std::runtime_error. Idempotent;
     * subsequent submit() calls are rejected.
     */
    void stop(bool drain = true);

    Stats stats() const;

    /** The ahead-of-time plan ({} when planArena was off). */
    const ServePlan& plan() const { return plan_; }

  private:
    struct Request
    {
        Tensor x;
        size_t items = 0;
        std::promise<Tensor> result;
    };

    void workerLoop(size_t worker);
    void plannedWorkerLoop(size_t worker);
    /** Dequeue + coalesce the next batch; false = shut down. */
    bool nextBatch(std::vector<Request>& batch, size_t& items);
    void runBatch(Module& model, Arena& arena,
                  std::vector<Request>& batch, size_t items,
                  size_t batchesDone);
    void runBatchPlanned(PlanExecutor& exec,
                         std::vector<Request>& batch, size_t items,
                         size_t batchesDone);
    Tensor gather(const std::vector<Request>& batch,
                  size_t items) const;
    /** Gather straight into a planned input buffer (no Tensor). */
    void gatherInto(const std::vector<Request>& batch, size_t items,
                    float* dst) const;
    void scatter(const Tensor& yb, size_t items,
                 std::vector<Request>& batch) const;
    /** Scatter from a raw output of shape @p ys (planned mode; the
        Tensor overload delegates here). */
    void scatterRaw(const float* yb, const std::vector<size_t>& ys,
                    size_t items, std::vector<Request>& batch) const;

    std::vector<Module*> replicas_;
    bool planned_ = false;
    std::vector<std::unique_ptr<PlanExecutor>> execs_;
    BatchTraits traits_;
    ServeOptions opt_;
    ServePlan plan_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Request> queue_;
    bool stopping_ = false;
    bool drain_ = true;
    std::mutex joinMu_; //!< serializes the join in stop()
    std::vector<std::thread> workers_;

    std::atomic<size_t> doneRequests_{0};
    std::atomic<size_t> doneItems_{0};
    std::atomic<size_t> doneBatches_{0};
    std::atomic<size_t> arenaCapacity_{0};
    std::atomic<size_t> arenaHighWater_{0};
    std::atomic<size_t> arenaOverflows_{0};
    std::atomic<size_t> scratchBytes_{0};
};

} // namespace mixq

#endif // MIXQ_SERVE_SERVER_HH
