#include "serve/fault.hh"

#include <atomic>
#include <chrono>
#include <new>
#include <thread>

namespace mixq {

#ifndef MIXQ_NO_FAULT_INJECTION

namespace {

// Armed is the fast-path gate: every hook loads it once and returns
// when clear. The plan itself is only read while armed, and arming
// is test-scoped (no concurrent arm vs hook execution), so the plan
// needs no lock of its own.
std::atomic<bool> gArmed{false};
FaultPlan gPlan;

} // namespace

void
armFaultPlan(const FaultPlan& plan)
{
    gPlan = plan;
    gArmed.store(true, std::memory_order_release);
}

void
disarmFaultPlan()
{
    gArmed.store(false, std::memory_order_release);
}

bool
faultPlanArmed()
{
    return gArmed.load(std::memory_order_acquire);
}

void
faultOnBatch(uint64_t batchIndex)
{
    if (!gArmed.load(std::memory_order_acquire))
        return;
    long k = long(batchIndex);
    if (gPlan.stallEveryBatchUs > 0)
        std::this_thread::sleep_for(
            std::chrono::microseconds(gPlan.stallEveryBatchUs));
    if (gPlan.stallAtBatch == k && gPlan.stallUs > 0)
        std::this_thread::sleep_for(
            std::chrono::microseconds(gPlan.stallUs));
    if (gPlan.killWorkerAtBatch == k)
        throw WorkerKillFault();
    if (gPlan.throwInForwardAtBatch == k)
        throw FaultInjected("injected forward fault at batch " +
                            std::to_string(k));
}

void
faultOnWarmup()
{
    if (!gArmed.load(std::memory_order_acquire))
        return;
    if (gPlan.failWarmupAlloc)
        throw std::bad_alloc();
}

void
faultOnRecordFileRead(std::vector<uint8_t>& fileBytes)
{
    if (!gArmed.load(std::memory_order_acquire))
        return;
    // Flip one bit of the last payload byte: the file stays
    // structurally parseable, so the reader's checksum verification
    // is what must catch it.
    if (gPlan.corruptOnRead && !fileBytes.empty())
        fileBytes.back() ^= 0x01;
}

void
faultOnRecordWrite(uint64_t recordIndex)
{
    if (!gArmed.load(std::memory_order_acquire))
        return;
    if (gPlan.failWriteAtRecord == long(recordIndex))
        throw FaultInjected("injected write failure at record " +
                            std::to_string(recordIndex));
}

#else // MIXQ_NO_FAULT_INJECTION

void
armFaultPlan(const FaultPlan&)
{
}

void
disarmFaultPlan()
{
}

bool
faultPlanArmed()
{
    return false;
}

void
faultOnBatch(uint64_t)
{
}

void
faultOnWarmup()
{
}

void
faultOnRecordFileRead(std::vector<uint8_t>&)
{
}

void
faultOnRecordWrite(uint64_t)
{
}

#endif // MIXQ_NO_FAULT_INJECTION

} // namespace mixq
