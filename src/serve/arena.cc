#include "serve/arena.hh"

#include <atomic>
#include <cstdlib>
#include <new>

#include "util/logging.hh"

namespace mixq {

namespace {

/**
 * Registry of live arena ranges, consulted by operator delete to
 * decide whether a pointer is arena-backed (free becomes a no-op) or
 * heap-backed (free as usual). Lock-free: the delete path is on
 * every deallocation in the binary, so it must cost one atomic load
 * when no arena exists and a short scan otherwise.
 */
constexpr int kMaxArenas = 64;
std::atomic<char*> gArenaBase[kMaxArenas];
std::atomic<size_t> gArenaSize[kMaxArenas];
std::atomic<int> gLiveArenas{0};

thread_local Arena* tlsArena = nullptr;
thread_local uint64_t tlsHeapAllocs = 0;
thread_local uint64_t tlsHeapBytes = 0;
thread_local uint64_t tlsArenaAllocs = 0;

bool
inAnyArena(const void* p)
{
    if (gLiveArenas.load(std::memory_order_acquire) == 0)
        return false;
    const char* c = static_cast<const char*>(p);
    for (int i = 0; i < kMaxArenas; ++i) {
        char* b = gArenaBase[i].load(std::memory_order_acquire);
        if (b && c >= b &&
            c < b + gArenaSize[i].load(std::memory_order_relaxed))
            return true;
    }
    return false;
}

void*
heapAlloc(size_t n, size_t align) noexcept
{
    ++tlsHeapAllocs;
    tlsHeapBytes += n;
    if (align > alignof(std::max_align_t)) {
        void* p = nullptr;
        if (posix_memalign(&p, align, n) != 0)
            return nullptr;
        return p;
    }
    return std::malloc(n);
}

void*
allocImpl(size_t n, size_t align) noexcept
{
    if (n == 0)
        n = 1;
    if (Arena* a = tlsArena) {
        if (void* p = a->alloc(n, align)) {
            ++tlsArenaAllocs;
            return p;
        }
        a->noteOverflow();
    }
    return heapAlloc(n, align);
}

void
freeImpl(void* p) noexcept
{
    if (!p)
        return;
    if (inAnyArena(p))
        return; // reclaimed wholesale by Arena::reset()
    std::free(p);
}

} // namespace

Arena::Arena(size_t capacityBytes) : cap_(capacityBytes)
{
    MIXQ_ASSERT(capacityBytes > 0, "Arena: zero capacity");
    // Direct malloc, not operator new: the block itself must live on
    // the real heap and never count as a tracked allocation.
    base_ = static_cast<char*>(std::malloc(cap_));
    MIXQ_ASSERT(base_ != nullptr, "Arena: block allocation failed");
    for (int i = 0; i < kMaxArenas; ++i) {
        char* expect = nullptr;
        gArenaSize[i].store(cap_, std::memory_order_relaxed);
        if (gArenaBase[i].compare_exchange_strong(
                expect, base_, std::memory_order_release)) {
            slot_ = i;
            break;
        }
    }
    MIXQ_ASSERT(slot_ >= 0, "Arena: registry full");
    gLiveArenas.fetch_add(1, std::memory_order_release);
}

Arena::~Arena()
{
    gArenaBase[slot_].store(nullptr, std::memory_order_release);
    gLiveArenas.fetch_sub(1, std::memory_order_release);
    std::free(base_);
}

void*
Arena::alloc(size_t bytes, size_t align)
{
    // Align the address, not just the offset — the malloc'd base is
    // only max_align_t-aligned, requests may want more (e.g. 64).
    uintptr_t cur = uintptr_t(base_) + off_;
    uintptr_t aligned = (cur + (align - 1)) & ~uintptr_t(align - 1);
    size_t off = off_ + size_t(aligned - cur);
    if (off + bytes > cap_)
        return nullptr;
    void* p = base_ + off;
    off_ = off + bytes;
    if (off_ > hw_)
        hw_ = off_;
    ++allocs_;
    return p;
}

bool
Arena::contains(const void* p) const
{
    const char* c = static_cast<const char*>(p);
    return c >= base_ && c < base_ + cap_;
}

void
Arena::reset()
{
    off_ = 0;
}

ArenaScope::ArenaScope(Arena& a) : prev_(tlsArena)
{
    tlsArena = &a;
}

ArenaScope::~ArenaScope()
{
    tlsArena = prev_;
}

uint64_t
heapAllocCount()
{
    return tlsHeapAllocs;
}

uint64_t
heapAllocBytes()
{
    return tlsHeapBytes;
}

uint64_t
arenaAllocCount()
{
    return tlsArenaAllocs;
}

} // namespace mixq

// ------------------------------------------------------------------
// Global operator new/delete replacements. Every form forwards to
// allocImpl/freeImpl above; delete routes arena pointers to a no-op.
// These live in the same translation unit as the Arena machinery, so
// only binaries that reference serve/ symbols get them linked in.
// ------------------------------------------------------------------

void*
operator new(std::size_t n)
{
    void* p = mixq::allocImpl(n, alignof(std::max_align_t));
    if (!p)
        throw std::bad_alloc();
    return p;
}

void*
operator new[](std::size_t n)
{
    void* p = mixq::allocImpl(n, alignof(std::max_align_t));
    if (!p)
        throw std::bad_alloc();
    return p;
}

void*
operator new(std::size_t n, const std::nothrow_t&) noexcept
{
    return mixq::allocImpl(n, alignof(std::max_align_t));
}

void*
operator new[](std::size_t n, const std::nothrow_t&) noexcept
{
    return mixq::allocImpl(n, alignof(std::max_align_t));
}

void*
operator new(std::size_t n, std::align_val_t al)
{
    void* p = mixq::allocImpl(n, static_cast<std::size_t>(al));
    if (!p)
        throw std::bad_alloc();
    return p;
}

void*
operator new[](std::size_t n, std::align_val_t al)
{
    void* p = mixq::allocImpl(n, static_cast<std::size_t>(al));
    if (!p)
        throw std::bad_alloc();
    return p;
}

void*
operator new(std::size_t n, std::align_val_t al,
             const std::nothrow_t&) noexcept
{
    return mixq::allocImpl(n, static_cast<std::size_t>(al));
}

void*
operator new[](std::size_t n, std::align_val_t al,
               const std::nothrow_t&) noexcept
{
    return mixq::allocImpl(n, static_cast<std::size_t>(al));
}

void
operator delete(void* p) noexcept
{
    mixq::freeImpl(p);
}

void
operator delete[](void* p) noexcept
{
    mixq::freeImpl(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    mixq::freeImpl(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    mixq::freeImpl(p);
}

void
operator delete(void* p, std::align_val_t) noexcept
{
    mixq::freeImpl(p);
}

void
operator delete[](void* p, std::align_val_t) noexcept
{
    mixq::freeImpl(p);
}

void
operator delete(void* p, std::size_t, std::align_val_t) noexcept
{
    mixq::freeImpl(p);
}

void
operator delete[](void* p, std::size_t, std::align_val_t) noexcept
{
    mixq::freeImpl(p);
}

void
operator delete(void* p, const std::nothrow_t&) noexcept
{
    mixq::freeImpl(p);
}

void
operator delete[](void* p, const std::nothrow_t&) noexcept
{
    mixq::freeImpl(p);
}
