/**
 * @file
 * Versioned binary record streams — the container format shared by
 * the model checkpoint (serial/checkpoint.hh) and the deploy
 * artifact (serial/deploy.hh).
 *
 * Layout: an 8-byte magic, a u32 format version, a u64 record count
 * and a u64 FNV-1a checksum of the record region (both patched on
 * close), followed by the records. Each record is
 *
 *   u32 name length | name bytes | u8 dtype | u8 rank |
 *   u64 dims[rank]  | u64 payload bytes | payload
 *
 * Names are the dotted paths of the named state tree (nn/module.hh)
 * under a short kind prefix ("param/blocks.0.conv1.w"), which makes
 * every record self-identifying: loading matches records to a
 * structurally equal model by path, never by position.
 *
 * Crash-safe writes: a RecordWriter streams into "<path>.tmp" and
 * close() flushes, fsyncs and atomically renames it over the final
 * path. A writer that dies mid-stream — process kill, injected write
 * failure, an exception unwinding past the writer — never leaves a
 * half-written file at the final path, and re-saving over an
 * existing artifact can never clobber the old one with a torn file.
 * Committing is explicit: a destructed-but-never-closed writer
 * discards its temp file instead of publishing a truncated stream.
 *
 * File errors come in two flavors. The fatal()ing entry points
 * (RecordFile's public constructor, used by the load*() loaders)
 * treat every problem — missing, foreign magic, unsupported version,
 * truncation, checksum mismatch — as a user-correctable abort with a
 * message naming the file and the problem. The recoverable entry
 * point RecordFile::tryOpen() reports the same problems as a typed
 * LoadResult instead, so a serving process can refuse a damaged
 * artifact and keep running (serial/deploy.hh tryLoadDeployArtifact,
 * serve/server.hh reloadArtifact).
 */

#ifndef MIXQ_SERIAL_RECORD_IO_HH
#define MIXQ_SERIAL_RECORD_IO_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace mixq {

/**
 * Precise failure class of a recoverable load. The file classes
 * (OpenFailed..Corrupt) mirror the container validation order;
 * Mismatch means a structurally valid file that does not describe
 * this model; WriteFailed is the writer-side counterpart;
 * Unavailable means the operation could not be attempted at all
 * (e.g. a hot reload on a stopped server).
 */
enum class LoadStatus
{
    Ok = 0,
    OpenFailed,       //!< missing / unreadable path
    Foreign,          //!< magic does not match (not this format)
    VersionMismatch,  //!< format version this build does not read
    Truncated,        //!< record walk ran out of bytes
    ChecksumMismatch, //!< structurally intact, bytes damaged
    Corrupt,          //!< structurally inconsistent record content
    Mismatch,         //!< valid file for a different model
    WriteFailed,      //!< write-side failure (injected or real)
    Unavailable,      //!< operation refused before touching the file
};

/** Stable lowercase name of @p s ("checksum-mismatch"). */
const char* loadStatusName(LoadStatus s);

/** Outcome of a tryLoad or tryOpen call: a status and, when not Ok,
    the message the fatal path would have printed. */
struct LoadResult
{
    LoadStatus status = LoadStatus::Ok;
    std::string message;

    bool ok() const { return status == LoadStatus::Ok; }
};

/**
 * Internal transport of recoverable load/save failures: thrown by
 * the parsing/decoding layers, caught at the tryLoad*() boundary and
 * converted to a LoadResult (or re-raised as fatal() by the strict
 * loaders). Carries the precise LoadStatus class.
 */
class RecordLoadError : public std::runtime_error
{
  public:
    RecordLoadError(LoadStatus status, const std::string& msg)
        : std::runtime_error(msg), status_(status)
    {
    }

    LoadStatus status() const { return status_; }

  private:
    LoadStatus status_;
};

/** Element type of one record's payload. */
enum class RecDType : uint8_t
{
    F32 = 0,
    F64 = 1,
    U8 = 2,
};

/** One named record read back from a stream. */
struct Record
{
    std::string name;
    RecDType dtype = RecDType::U8;
    std::vector<uint64_t> shape;
    std::vector<uint8_t> bytes;

    /** Element count implied by the shape (1 for rank 0). */
    size_t elems() const;

    std::span<const float> f32() const;
    std::span<const double> f64() const;
    std::span<const uint8_t> u8() const { return bytes; }
};

/**
 * Streaming writer. Records append in call order into "<path>.tmp";
 * close() patches the record count and checksum into the header,
 * flushes, fsyncs and atomically renames the temp file onto @p path
 * — the commit point. A writer destroyed without close() abandons
 * the temp file (crash semantics: nothing is published). Write
 * failures (disk full, unwritable path) are fatal(); an injected
 * write fault (serve/fault.hh) throws instead so tests can observe
 * the untouched final path.
 */
class RecordWriter
{
  public:
    /** @p magic must be exactly 8 bytes. */
    RecordWriter(const std::string& path, const char* magic,
                 uint32_t version);
    ~RecordWriter();

    RecordWriter(const RecordWriter&) = delete;
    RecordWriter& operator=(const RecordWriter&) = delete;

    /** Append one record; @p data is elems(shape) elements of dtype. */
    void add(const std::string& name, RecDType dtype,
             std::span<const uint64_t> shape, const void* data,
             size_t dataBytes);

    void addF32(const std::string& name,
                std::span<const uint64_t> shape,
                std::span<const float> v);
    void addF64(const std::string& name,
                std::span<const uint64_t> shape,
                std::span<const double> v);
    void addU8(const std::string& name,
               std::span<const uint64_t> shape,
               std::span<const uint8_t> v);

    /** Patch the header, flush and rename onto the final path
        (idempotent). This is the only call that publishes the file. */
    void close();

    /** Discard the stream: delete the temp file, leave the final
        path untouched (idempotent; the destructor's default). */
    void abandon();

    /** The temp path records stream into before close(). */
    const std::string& tempPath() const { return tmpPath_; }

  private:
    void put(const void* data, size_t n);

    std::string path_;
    std::string tmpPath_;
    std::FILE* f_ = nullptr;
    uint64_t count_ = 0;
    uint64_t checksum_;
};

/**
 * Whole-file reader: opens, validates magic/version/structure/
 * checksum and holds every record in memory for by-name lookup. The
 * public constructor fatal()s on any problem; tryOpen() reports the
 * failure class in a LoadResult instead and returns null.
 */
class RecordFile
{
  public:
    /** @p kind names the format in error messages ("checkpoint"). */
    RecordFile(const std::string& path, const char* magic,
               uint32_t version, const std::string& kind);

    /**
     * Recoverable open: returns the parsed file, or null with @p err
     * holding the precise failure class and the message the fatal
     * path would have printed. Never aborts the process.
     */
    static std::unique_ptr<RecordFile> tryOpen(const std::string& path,
                                               const char* magic,
                                               uint32_t version,
                                               const std::string& kind,
                                               LoadResult& err);

    const std::vector<Record>& records() const { return recs_; }

    /** Find by name; null when absent. */
    const Record* find(const std::string& name) const;

    /** Find by name; throws RecordLoadError(Mismatch) when absent
        (fatal() at the strict loader boundary). */
    const Record& require(const std::string& name) const;

    const std::string& path() const { return path_; }

  private:
    RecordFile() = default;

    /** Read + validate @p path; throws RecordLoadError. */
    void parse(const std::string& path, const char* magic,
               uint32_t version, const std::string& kind);

    std::string path_;
    std::vector<Record> recs_;
};

} // namespace mixq

#endif // MIXQ_SERIAL_RECORD_IO_HH
