/**
 * @file
 * Versioned binary record streams — the container format shared by
 * the model checkpoint (serial/checkpoint.hh) and the deploy
 * artifact (serial/deploy.hh).
 *
 * Layout: an 8-byte magic, a u32 format version, a u64 record count
 * and a u64 FNV-1a checksum of the record region (both patched on
 * close), followed by the records. Each record is
 *
 *   u32 name length | name bytes | u8 dtype | u8 rank |
 *   u64 dims[rank]  | u64 payload bytes | payload
 *
 * Names are the dotted paths of the named state tree (nn/module.hh)
 * under a short kind prefix ("param/blocks.0.conv1.w"), which makes
 * every record self-identifying: loading matches records to a
 * structurally equal model by path, never by position.
 *
 * All file errors — missing, foreign magic, unsupported version,
 * truncation, checksum mismatch — are user-correctable and go
 * through fatal() with a message naming the file and the problem.
 */

#ifndef MIXQ_SERIAL_RECORD_IO_HH
#define MIXQ_SERIAL_RECORD_IO_HH

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

namespace mixq {

/** Element type of one record's payload. */
enum class RecDType : uint8_t
{
    F32 = 0,
    F64 = 1,
    U8 = 2,
};

/** One named record read back from a stream. */
struct Record
{
    std::string name;
    RecDType dtype = RecDType::U8;
    std::vector<uint64_t> shape;
    std::vector<uint8_t> bytes;

    /** Element count implied by the shape (1 for rank 0). */
    size_t elems() const;

    std::span<const float> f32() const;
    std::span<const double> f64() const;
    std::span<const uint8_t> u8() const { return bytes; }
};

/**
 * Streaming writer. Records append in call order; close() (or the
 * destructor) patches the record count and checksum into the header.
 * Write failures (disk full, unwritable path) are fatal().
 */
class RecordWriter
{
  public:
    /** @p magic must be exactly 8 bytes. */
    RecordWriter(const std::string& path, const char* magic,
                 uint32_t version);
    ~RecordWriter();

    RecordWriter(const RecordWriter&) = delete;
    RecordWriter& operator=(const RecordWriter&) = delete;

    /** Append one record; @p data is elems(shape) elements of dtype. */
    void add(const std::string& name, RecDType dtype,
             std::span<const uint64_t> shape, const void* data,
             size_t dataBytes);

    void addF32(const std::string& name,
                std::span<const uint64_t> shape,
                std::span<const float> v);
    void addF64(const std::string& name,
                std::span<const uint64_t> shape,
                std::span<const double> v);
    void addU8(const std::string& name,
               std::span<const uint64_t> shape,
               std::span<const uint8_t> v);

    /** Patch the header and close the file (idempotent). */
    void close();

  private:
    void put(const void* data, size_t n);

    std::string path_;
    std::FILE* f_ = nullptr;
    uint64_t count_ = 0;
    uint64_t checksum_;
};

/**
 * Whole-file reader: opens, validates magic/version/structure/
 * checksum (fatal() on any mismatch) and holds every record in
 * memory for by-name lookup.
 */
class RecordFile
{
  public:
    /** @p kind names the format in error messages ("checkpoint"). */
    RecordFile(const std::string& path, const char* magic,
               uint32_t version, const std::string& kind);

    const std::vector<Record>& records() const { return recs_; }

    /** Find by name; null when absent. */
    const Record* find(const std::string& name) const;

    /** Find by name; fatal() with the file path when absent. */
    const Record& require(const std::string& name) const;

    const std::string& path() const { return path_; }

  private:
    std::string path_;
    std::vector<Record> recs_;
};

} // namespace mixq

#endif // MIXQ_SERIAL_RECORD_IO_HH
