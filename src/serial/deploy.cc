#include "serial/deploy.hh"

#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "infer/qpack.hh"
#include "nn/layers.hh"
#include "nn/rnn.hh"
#include "quant/sp2_codec.hh"
#include "serial/record_io.hh"
#include "serial/state_records.hh"
#include "util/logging.hh"

namespace mixq {

namespace {

constexpr const char* kMagic = "MIXQDEPL";
constexpr uint32_t kVersion = 1;
constexpr const char* kKind = "deploy artifact";

/*
 * One "qw/<param path>" record packs a quantized weight matrix as
 *
 *   u32 rows | u32 cols | u32 bits
 *   scheme bitmap, ceil(rows/8) bytes (bit r set = SP2 row)
 *   f32 rowAlpha[rows]
 *   rows x rowBytes code bytes, rowBytes = ceil(cols * bits / 8)
 *
 * Each element is one `bits`-wide little-endian field per column,
 * rows byte-aligned: MSB = sign (1 = negative), low bits-1 bits =
 * the SP2 magnitude index (Sp2Codec::intMagnitudes order) or the
 * Fixed level magnitude |k|. At 4 bits that is 4 bits per weight
 * plus one f32 scale per row — the artifact-vs-checkpoint size
 * budget the CI check pins.
 */

void
putField(std::vector<uint8_t>& buf, size_t base, size_t idx, int bits,
         uint32_t field)
{
    size_t ofs = idx * size_t(bits);
    size_t byte = base + (ofs >> 3);
    int shift = int(ofs & 7);
    buf[byte] |= uint8_t((field << shift) & 0xffu);
    if (shift + bits > 8)
        buf[byte + 1] |= uint8_t(field >> (8 - shift));
}

uint32_t
getField(std::span<const uint8_t> buf, size_t base, size_t idx,
         int bits)
{
    size_t ofs = idx * size_t(bits);
    size_t byte = base + (ofs >> 3);
    int shift = int(ofs & 7);
    uint32_t v = uint32_t(buf[byte]) >> shift;
    if (shift + bits > 8)
        v |= uint32_t(buf[byte + 1]) << (8 - shift);
    return v & ((1u << bits) - 1);
}

std::vector<uint8_t>
packPayload(const PackedQMat& pk)
{
    size_t rows = pk.rows(), cols = pk.cols();
    int bits = pk.bits();
    Sp2Codec codec(bits);
    size_t bitmapBytes = (rows + 7) / 8;
    size_t rowBytes = (cols * size_t(bits) + 7) / 8;
    std::vector<uint8_t> out(
        12 + bitmapBytes + 4 * rows + rows * rowBytes, 0);

    uint32_t hdr[3] = {uint32_t(rows), uint32_t(cols),
                       uint32_t(bits)};
    std::memcpy(out.data(), hdr, sizeof(hdr));
    std::vector<float> alpha(rows);
    for (size_t r = 0; r < rows; ++r)
        alpha[r] = pk.rowAlpha(r);
    std::memcpy(out.data() + 12 + bitmapBytes, alpha.data(),
                4 * rows);

    const uint32_t signBit = 1u << (bits - 1);
    size_t codesBase = 12 + bitmapBytes + 4 * rows;
    for (size_t r = 0; r < rows; ++r) {
        bool sp2row = pk.rowScheme(r) == QuantScheme::Sp2;
        if (sp2row)
            out[12 + (r >> 3)] |= uint8_t(1u << (r & 7));
        size_t base = codesBase + r * rowBytes;
        for (size_t c = 0; c < cols; ++c) {
            uint32_t field;
            if (sp2row) {
                const Sp2Code& code = pk.sp2Codes()[r * cols + c];
                uint32_t idx = uint32_t(
                    codec.magnitudeIndex(code.intMagnitude()));
                MIXQ_ASSERT(idx < signBit,
                            "deploy: SP2 magnitude index overflows "
                            "the code field");
                field = idx | (code.sign < 0 ? signBit : 0u);
            } else {
                int32_t k = pk.fixedCodes()[r * cols + c];
                uint32_t mag = uint32_t(k < 0 ? -k : k);
                MIXQ_ASSERT(mag < signBit,
                            "deploy: fixed level overflows the code "
                            "field");
                field = mag | (k < 0 ? signBit : 0u);
            }
            putField(out, base, c, bits, field);
        }
    }
    return out;
}

PackedQMat
decodePayload(const RecordFile& f, const Record& r, size_t wantRows,
              size_t wantCols)
{
    auto corrupt = [&](const std::string& why) {
        throw RecordLoadError(LoadStatus::Corrupt,
                              f.path() + ": record \"" + r.name +
                                  "\" " + why +
                                  " — the deploy artifact file is "
                                  "corrupted");
    };
    std::span<const uint8_t> b = r.u8();
    if (r.dtype != RecDType::U8 || b.size() < 12)
        corrupt("is not a packed weight record");
    uint32_t hdr[3];
    std::memcpy(hdr, b.data(), sizeof(hdr));
    size_t rows = hdr[0], cols = hdr[1];
    int bits = int(hdr[2]);
    if (bits < 2 || bits > 8)
        corrupt("holds an unsupported bit width");
    if (rows != wantRows || cols != wantCols)
        throw RecordLoadError(
            LoadStatus::Mismatch,
            f.path() + ": record \"" + r.name + "\" packs a " +
                std::to_string(rows) + "x" + std::to_string(cols) +
                " matrix but the model expects " +
                std::to_string(wantRows) + "x" +
                std::to_string(wantCols) +
                " — the file does not match this model");
    size_t bitmapBytes = (rows + 7) / 8;
    size_t rowBytes = (cols * size_t(bits) + 7) / 8;
    if (b.size() != 12 + bitmapBytes + 4 * rows + rows * rowBytes)
        corrupt("has a payload size inconsistent with its header");

    Sp2Codec codec(bits);
    const size_t numMags = codec.intMagnitudes().size();
    std::vector<QuantScheme> scheme(rows);
    std::vector<float> alpha(rows);
    std::memcpy(alpha.data(), b.data() + 12 + bitmapBytes, 4 * rows);
    std::vector<Sp2Code> sp2(rows * cols);
    std::vector<int8_t> fixed(rows * cols, 0);

    const uint32_t signBit = 1u << (bits - 1);
    size_t codesBase = 12 + bitmapBytes + 4 * rows;
    for (size_t row = 0; row < rows; ++row) {
        bool sp2row = (b[12 + (row >> 3)] >> (row & 7)) & 1u;
        scheme[row] = sp2row ? QuantScheme::Sp2 : QuantScheme::Fixed;
        size_t base = codesBase + row * rowBytes;
        for (size_t c = 0; c < cols; ++c) {
            uint32_t field = getField(b, base, c, bits);
            uint32_t mag = field & (signBit - 1);
            bool neg = (field & signBit) != 0;
            // The writer encodes zero with a clear sign bit (the
            // canonical codes have no negative zero), so a set bit on
            // a zero magnitude can only be damage.
            if (neg && mag == 0)
                corrupt("encodes a negative zero weight");
            if (sp2row) {
                if (mag >= numMags)
                    corrupt("holds an SP2 magnitude index outside "
                            "the codec's table");
                Sp2Code code = codec.codeForMagnitude(mag);
                if (neg)
                    code.sign = -1;
                sp2[row * cols + c] = code;
            } else {
                fixed[row * cols + c] =
                    int8_t(neg ? -int32_t(mag) : int32_t(mag));
            }
        }
    }
    PackedQMat pk;
    pk.loadFromCodes(rows, cols, bits, scheme, alpha, sp2, fixed);
    return pk;
}

/** The module's own Param with the given leaf name, or null. */
Param*
ownParam(Module& m, const char* name)
{
    std::vector<Param*> own;
    m.ownParams(own);
    for (Param* p : own)
        if (p->name == name)
            return p;
    return nullptr;
}

} // namespace

void
saveDeployArtifact(const std::string& path, Module& model,
                   const QatContext& qat)
{
    if (!qat.finalized())
        fatal("deploy artifact requires a finalized QAT context — "
              "weights must be hard-projected before export");
    if (qat.config().scheme == QuantScheme::Pow2)
        fatal("Pow2 weights have no packed integer deploy form");

    RecordWriter w(path, kMagic, kVersion);
    std::vector<NamedParam> named = namedParams(model);
    std::unordered_map<const Param*, std::string> pathOf;
    for (const NamedParam& np : named)
        pathOf[np.p] = np.path;
    std::unordered_map<const Param*, const QatContext::Entry*> entryOf;
    for (const QatContext::Entry& e : qat.entries())
        entryOf[e.p] = &e;
    std::unordered_set<const Param*> packedParams;
    const int bits = qat.config().bits;

    auto addPacked = [&](Param& p) {
        auto it = entryOf.find(&p);
        if (it == entryOf.end())
            fatal("parameter \"" + pathOf[&p] + "\" was not "
                  "quantized by the given QAT context — cannot "
                  "export its packed codes");
        const QatContext::Entry& e = *it->second;
        // Encode through the same pack the in-process backend runs
        // on: the saved codes are byte for byte the codes a live
        // session would execute, which is what makes the served
        // forward bit-identical.
        PackedQMat pk;
        pk.ensure(p.w.data(), p.qRows, p.qCols, p.version,
                  e.proj.rowScheme, e.proj.rowAlpha, bits);
        std::vector<uint8_t> payload = packPayload(pk);
        uint64_t n = payload.size();
        w.addU8("qw/" + pathOf[&p], {&n, 1}, payload);
        packedParams.insert(&p);
    };
    auto requireCalibrated = [&](const ActFakeQuant& q,
                                 const std::string& mp) {
        if (!q.enabled() || !q.calibrated())
            fatal("activation quantizer of \"" + mp + "\" is not "
                  "calibrated — run a calibration forward pass "
                  "before exporting the deploy artifact");
    };

    forEachNamedModule(model, [&](const std::string& mp, Module& m) {
        if (auto* l = dynamic_cast<Linear*>(&m)) {
            Param* p = ownParam(m, "linear.w");
            if (p && p->quantizable()) {
                requireCalibrated(l->actQuant(), mp);
                addPacked(*p);
            }
        } else if (auto* c = dynamic_cast<Conv2d*>(&m)) {
            Param* p = ownParam(m, "conv.w");
            if (p && p->quantizable()) {
                requireCalibrated(c->actQuant(), mp);
                addPacked(*p);
            }
        } else if (auto* d = dynamic_cast<DwConv2d*>(&m)) {
            Param* p = ownParam(m, "dwconv.w");
            if (p && p->quantizable()) {
                requireCalibrated(d->actQuant(), mp);
                addPacked(*p);
            }
        } else if (auto* ls = dynamic_cast<Lstm*>(&m)) {
            requireCalibrated(ls->inputQuant(), mp);
            requireCalibrated(ls->hiddenQuant(), mp);
            addPacked(*ownParam(m, "lstm.wx"));
            addPacked(*ownParam(m, "lstm.wh"));
        } else if (auto* g = dynamic_cast<Gru*>(&m)) {
            requireCalibrated(g->inputQuant(), mp);
            requireCalibrated(g->hiddenQuant(), mp);
            addPacked(*ownParam(m, "gru.wx"));
            addPacked(*ownParam(m, "gru.wh"));
        }
    });
    MIXQ_ASSERT(!packedParams.empty(),
                "saveDeployArtifact: model has no int-capable "
                "quantized weights");

    // Float-served leftovers: biases, BN affine params, embeddings.
    for (const NamedParam& np : named) {
        if (packedParams.count(np.p))
            continue;
        std::vector<uint64_t> shape = recShape(np.p->w);
        w.addF32("f/" + np.path, shape,
                 {np.p->w.data(), np.p->w.size()});
    }

    addStateRecords(w, model);
    w.close();
}

LoadResult
stageDeployArtifact(const std::string& path, Module& model,
                    DeployStage& out)
{
    DeployStage stage;
    LoadResult err;
    stage.file_ = RecordFile::tryOpen(path, kMagic, kVersion, kKind,
                                      err);
    if (!stage.file_)
        return err;
    const RecordFile& f = *stage.file_;

    try {
        std::vector<NamedParam> named = namedParams(model);
        std::unordered_map<const Param*, std::string> pathOf;
        for (const NamedParam& np : named)
            pathOf[np.p] = np.path;
        std::unordered_set<const Param*> packedParams;

        // Decode every packed matrix into the stage, validating
        // against the model's shapes — no layer is touched.
        auto decodeFor = [&](Param& p) -> const PackedQMat& {
            const std::string& pp = pathOf[&p];
            const Record& r = f.require("qw/" + pp);
            PackedQMat pk = decodePayload(f, r, p.qRows, p.qCols);
            packedParams.insert(&p);
            return stage.packs_.emplace(pp, std::move(pk))
                .first->second;
        };
        auto checkRnnBits = [&](const PackedQMat& wx,
                                const PackedQMat& wh,
                                const char* kindName,
                                const std::string& mp) {
            if (wx.bits() != wh.bits())
                throw RecordLoadError(
                    LoadStatus::Mismatch,
                    f.path() + ": " + kindName + " \"" + mp +
                        "\" packs its input and recurrent matrices "
                        "at different bit widths — the file does not "
                        "match this model");
        };

        forEachNamedModule(model, [&](const std::string& mp,
                                      Module& m) {
            if (dynamic_cast<Linear*>(&m)) {
                Param* p = ownParam(m, "linear.w");
                if (p && p->quantizable())
                    decodeFor(*p);
            } else if (dynamic_cast<Conv2d*>(&m)) {
                Param* p = ownParam(m, "conv.w");
                if (p && p->quantizable())
                    decodeFor(*p);
            } else if (dynamic_cast<DwConv2d*>(&m)) {
                Param* p = ownParam(m, "dwconv.w");
                if (p && p->quantizable())
                    decodeFor(*p);
            } else if (dynamic_cast<Lstm*>(&m)) {
                const PackedQMat& wx = decodeFor(*ownParam(m, "lstm.wx"));
                const PackedQMat& wh = decodeFor(*ownParam(m, "lstm.wh"));
                checkRnnBits(wx, wh, "LSTM", mp);
            } else if (dynamic_cast<Gru*>(&m)) {
                const PackedQMat& wx = decodeFor(*ownParam(m, "gru.wx"));
                const PackedQMat& wh = decodeFor(*ownParam(m, "gru.wh"));
                checkRnnBits(wx, wh, "GRU", mp);
            }
        });

        // Strict record accounting both ways, mirroring the
        // checkpoint loader: leftover qw/ or f/ records mean a
        // different model.
        size_t qwRecs = 0, fRecs = 0;
        for (const Record& r : f.records()) {
            if (r.name.rfind("qw/", 0) == 0)
                ++qwRecs;
            else if (r.name.rfind("f/", 0) == 0)
                ++fRecs;
        }
        if (qwRecs != stage.packs_.size())
            throw RecordLoadError(
                LoadStatus::Mismatch,
                f.path() + ": artifact packs " +
                    std::to_string(qwRecs) +
                    " weight matrices but the model adopts " +
                    std::to_string(stage.packs_.size()) +
                    " — the file does not match this model");
        if (fRecs != named.size() - packedParams.size())
            throw RecordLoadError(
                LoadStatus::Mismatch,
                f.path() + ": artifact holds " + std::to_string(fRecs) +
                    " float tensors but the model expects " +
                    std::to_string(named.size() - packedParams.size()) +
                    " — the file does not match this model");

        // Validate the float-served tensors and the state records
        // without writing them; apply() restores them for real.
        for (const NamedParam& np : named) {
            if (packedParams.count(np.p))
                continue;
            const Record& r = f.require("f/" + np.path);
            recCheckElems(f, r, np.p->w.size());
            recF32(f, r);
        }
        checkStateRecords(f, model);
    } catch (const RecordLoadError& e) {
        return {e.status(), e.what()};
    }

    out = std::move(stage);
    return {};
}

size_t
DeployStage::apply(Module& model) const
{
    MIXQ_ASSERT(staged(), "DeployStage::apply on an empty stage");
    const RecordFile& f = *file_;
    std::vector<NamedParam> named = namedParams(model);
    std::unordered_map<const Param*, std::string> pathOf;
    for (const NamedParam& np : named)
        pathOf[np.p] = np.path;
    std::unordered_set<const Param*> packedParams;
    size_t adopted = 0;

    // Each target gets its own copy of the staged panels: replicas
    // applied from one stage stay independently owned.
    auto packFor = [&](Param& p) {
        auto it = packs_.find(pathOf[&p]);
        MIXQ_ASSERT(it != packs_.end(),
                    "DeployStage::apply: model does not match the "
                    "staged artifact");
        packedParams.insert(&p);
        ++adopted;
        return it->second;
    };

    forEachNamedModule(model, [&](const std::string&, Module& m) {
        if (auto* l = dynamic_cast<Linear*>(&m)) {
            Param* p = ownParam(m, "linear.w");
            if (p && p->quantizable()) {
                PackedQMat pk = packFor(*p);
                int bits = pk.bits();
                l->adoptDeployedWeights(std::move(pk), bits);
            }
        } else if (auto* c = dynamic_cast<Conv2d*>(&m)) {
            Param* p = ownParam(m, "conv.w");
            if (p && p->quantizable()) {
                PackedQMat pk = packFor(*p);
                int bits = pk.bits();
                c->adoptDeployedWeights(std::move(pk), bits);
            }
        } else if (auto* d = dynamic_cast<DwConv2d*>(&m)) {
            Param* p = ownParam(m, "dwconv.w");
            if (p && p->quantizable()) {
                PackedQMat pk = packFor(*p);
                int bits = pk.bits();
                d->adoptDeployedWeights(std::move(pk), bits);
            }
        } else if (auto* ls = dynamic_cast<Lstm*>(&m)) {
            PackedQMat wx = packFor(*ownParam(m, "lstm.wx"));
            PackedQMat wh = packFor(*ownParam(m, "lstm.wh"));
            int bits = wx.bits();
            ls->adoptDeployedWeights(std::move(wx), std::move(wh),
                                     bits);
        } else if (auto* g = dynamic_cast<Gru*>(&m)) {
            PackedQMat wx = packFor(*ownParam(m, "gru.wx"));
            PackedQMat wh = packFor(*ownParam(m, "gru.wh"));
            int bits = wx.bits();
            g->adoptDeployedWeights(std::move(wx), std::move(wh),
                                    bits);
        }
    });

    for (const NamedParam& np : named) {
        if (packedParams.count(np.p))
            continue;
        const Record& r = f.require("f/" + np.path);
        recCheckElems(f, r, np.p->w.size());
        std::span<const float> v = recF32(f, r);
        std::memcpy(np.p->w.data(), v.data(),
                    v.size() * sizeof(float));
        np.p->noteUpdated();
    }

    restoreStateRecords(f, model);
    return adopted;
}

LoadResult
tryLoadDeployArtifact(const std::string& path, Module& model,
                      size_t& adopted)
{
    DeployStage stage;
    LoadResult r = stageDeployArtifact(path, model, stage);
    if (!r.ok())
        return r;
    adopted = stage.apply(model);
    return {};
}

size_t
loadDeployArtifact(const std::string& path, Module& model)
{
    size_t adopted = 0;
    LoadResult r = tryLoadDeployArtifact(path, model, adopted);
    if (!r.ok())
        fatal(r.message);
    return adopted;
}

} // namespace mixq
