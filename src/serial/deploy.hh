/**
 * @file
 * Deploy artifacts ("MIXQDEPL"): the inference-only counterpart of
 * the training checkpoint. Every int-capable quantized weight matrix
 * (Linear, Conv2d and DwConv2d weights, LSTM/GRU input and recurrent
 * matrices) is stored as its *canonical integer codes*, bit-packed
 * to the quantization width — a 4-bit matrix costs about 4 bits per
 * weight plus one f32 scale per row — alongside the float state the
 * integer backend still serves from (biases, BatchNorm constants,
 * embeddings) and every activation quantizer's calibration.
 *
 * Loading adopts the codes straight into locked PackedQMat panels
 * (infer/qpack.hh loadFromCodes) via the layers' adoptDeployedWeights
 * hooks: the process never holds float weights, a QatContext, or the
 * quantizer — and because the panels are a pure function of the
 * codes, the served integer forward is bit-identical to the
 * in-process backend the codes were saved from. Records are keyed on
 * named-state-tree paths, so the serving binary only rebuilds the
 * architecture (see examples/serve_artifact.cpp).
 *
 * Loading is two-phase. The *stage* phase (stageDeployArtifact) reads
 * the file, decodes every packed matrix and runs every validation the
 * load performs — touching only the file, never the model. The
 * *apply* phase (DeployStage::apply) installs the staged panels and
 * float state; after a successful stage it cannot fail. This is the
 * all-or-nothing guarantee the serving hot-swap relies on: a damaged
 * or mismatched artifact is rejected at stage time with the model —
 * and the traffic it is serving — completely untouched
 * (serve/server.hh reloadArtifact). One stage can apply to several
 * structurally identical replicas; each gets its own copy of the
 * panels.
 */

#ifndef MIXQ_SERIAL_DEPLOY_HH
#define MIXQ_SERIAL_DEPLOY_HH

#include <map>
#include <memory>
#include <string>

#include "infer/qpack.hh"
#include "nn/module.hh"
#include "nn/trainer.hh"
#include "serial/record_io.hh"

namespace mixq {

/**
 * Write the deploy artifact of @p model to @p path. @p qat must be
 * finalized (weights hard-projected) and attached to this model's
 * parameters; every int-capable layer's activation quantizer must be
 * calibrated and enabled, since the integer backend rescales against
 * those clip ranges. Pow2 configurations have no packed integer form
 * and are rejected. The file appears at @p path atomically (see
 * RecordWriter): a writer killed mid-save leaves any previous
 * artifact at @p path intact.
 */
void saveDeployArtifact(const std::string& path, Module& model,
                        const QatContext& qat);

/**
 * A fully decoded and validated deploy artifact, ready to install.
 * Produced by stageDeployArtifact(); holds the decoded PackedQMat
 * panels and the parsed record file, shares nothing with any model.
 */
class DeployStage
{
  public:
    DeployStage() = default;
    DeployStage(DeployStage&&) = default;
    DeployStage& operator=(DeployStage&&) = default;

    /** Whether a stage succeeded into this object. */
    bool staged() const { return file_ != nullptr; }

    /** Number of packed weight matrices the artifact carries. */
    size_t adopted() const { return packs_.size(); }

    /**
     * Install the staged artifact into @p model: adopt a copy of
     * every packed panel, copy the float-served tensors, restore the
     * activation calibrations. @p model must be structurally
     * identical to the model the stage validated against (replicas
     * qualify). Cannot fail after a successful stage. Returns the
     * number of weight matrices adopted.
     */
    size_t apply(Module& model) const;

  private:
    friend LoadResult stageDeployArtifact(const std::string& path,
                                          Module& model,
                                          DeployStage& out);

    std::unique_ptr<RecordFile> file_;
    /** Decoded panels keyed by parameter path. */
    std::map<std::string, PackedQMat> packs_;
};

/**
 * Stage a deploy artifact against @p model: open, decode and validate
 * everything apply() will need, without modifying @p model. On
 * success fills @p out and returns Ok; on failure returns the precise
 * class (open-failed / foreign / version-mismatch / truncated /
 * checksum-mismatch / corrupt / mismatch) with the message
 * loadDeployArtifact() would have aborted with, and @p model is
 * untouched. Never aborts the process.
 */
LoadResult stageDeployArtifact(const std::string& path, Module& model,
                               DeployStage& out);

/**
 * Recoverable load: stage + apply. On failure @p model is untouched
 * and keeps serving whatever it held. @p adopted receives the number
 * of weight matrices adopted on success.
 */
LoadResult tryLoadDeployArtifact(const std::string& path, Module& model,
                                 size_t& adopted);

/**
 * Restore @p model for integer serving from a deploy artifact: adopt
 * every packed weight matrix into its layer's locked PackedQMat,
 * load the float-served state, and restore activation calibrations.
 * The model must be structurally identical to the saved one; any
 * mismatch or file damage is fatal() with a message naming the file
 * and the offending record. Returns the number of weight matrices
 * adopted. After this the model's int-capable layers run the integer
 * backend unconditionally; float forward of those layers no longer
 * exists in the process.
 */
size_t loadDeployArtifact(const std::string& path, Module& model);

} // namespace mixq

#endif // MIXQ_SERIAL_DEPLOY_HH
