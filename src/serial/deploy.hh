/**
 * @file
 * Deploy artifacts ("MIXQDEPL"): the inference-only counterpart of
 * the training checkpoint. Every int-capable quantized weight matrix
 * (Linear, Conv2d and DwConv2d weights, LSTM/GRU input and recurrent
 * matrices) is stored as its *canonical integer codes*, bit-packed
 * to the quantization width — a 4-bit matrix costs about 4 bits per
 * weight plus one f32 scale per row — alongside the float state the
 * integer backend still serves from (biases, BatchNorm constants,
 * embeddings) and every activation quantizer's calibration.
 *
 * Loading adopts the codes straight into locked PackedQMat panels
 * (infer/qpack.hh loadFromCodes) via the layers' adoptDeployedWeights
 * hooks: the process never holds float weights, a QatContext, or the
 * quantizer — and because the panels are a pure function of the
 * codes, the served integer forward is bit-identical to the
 * in-process backend the codes were saved from. Records are keyed on
 * named-state-tree paths, so the serving binary only rebuilds the
 * architecture (see examples/serve_artifact.cpp).
 */

#ifndef MIXQ_SERIAL_DEPLOY_HH
#define MIXQ_SERIAL_DEPLOY_HH

#include <string>

#include "nn/module.hh"
#include "nn/trainer.hh"

namespace mixq {

/**
 * Write the deploy artifact of @p model to @p path. @p qat must be
 * finalized (weights hard-projected) and attached to this model's
 * parameters; every int-capable layer's activation quantizer must be
 * calibrated and enabled, since the integer backend rescales against
 * those clip ranges. Pow2 configurations have no packed integer form
 * and are rejected.
 */
void saveDeployArtifact(const std::string& path, Module& model,
                        const QatContext& qat);

/**
 * Restore @p model for integer serving from a deploy artifact: adopt
 * every packed weight matrix into its layer's locked PackedQMat,
 * load the float-served state, and restore activation calibrations.
 * The model must be structurally identical to the saved one; any
 * mismatch or file damage is fatal() with a message naming the file
 * and the offending record. Returns the number of weight matrices
 * adopted. After this the model's int-capable layers run the integer
 * backend unconditionally; float forward of those layers no longer
 * exists in the process.
 */
size_t loadDeployArtifact(const std::string& path, Module& model);

} // namespace mixq

#endif // MIXQ_SERIAL_DEPLOY_HH
