#include "serial/state_records.hh"

#include "nn/layers.hh"
#include "nn/rnn.hh"
#include "util/logging.hh"

namespace mixq {

namespace {

/** One activation-quantizer calibration record: F64
    [bits, enabled, calibrated, alpha]. */
void
addActq(RecordWriter& w, const std::string& name,
        const ActFakeQuant& q)
{
    double v[4] = {double(q.bits()), q.enabled() ? 1.0 : 0.0,
                   q.calibrated() ? 1.0 : 0.0, q.alpha()};
    uint64_t four = 4;
    w.addF64(name, {&four, 1}, v);
}

struct ActqState
{
    int bits;
    bool enabled, calibrated;
    double alpha;
};

ActqState
readActq(const RecordFile& f, const std::string& name)
{
    const Record& r = f.require(name);
    std::span<const double> v = recF64(f, r, 4);
    return {int(v[0]), v[1] != 0.0, v[2] != 0.0, v[3]};
}

} // namespace

std::vector<uint64_t>
recShape(const Tensor& t)
{
    std::vector<uint64_t> s;
    for (size_t d : t.shape())
        s.push_back(uint64_t(d));
    return s;
}

std::span<const float>
recF32(const RecordFile& f, const Record& r)
{
    if (r.dtype != RecDType::F32)
        throw RecordLoadError(LoadStatus::Mismatch,
                              f.path() + ": record \"" + r.name +
                                  "\" has the wrong dtype — the file "
                                  "does not match this model");
    return r.f32();
}

std::span<const double>
recF64(const RecordFile& f, const Record& r, size_t elems)
{
    if (r.dtype != RecDType::F64 || r.elems() != elems)
        throw RecordLoadError(LoadStatus::Mismatch,
                              f.path() + ": record \"" + r.name +
                                  "\" has the wrong dtype or size — "
                                  "the file does not match this model");
    return r.f64();
}

void
recCheckElems(const RecordFile& f, const Record& r, size_t elems)
{
    if (r.elems() != elems)
        throw RecordLoadError(
            LoadStatus::Mismatch,
            f.path() + ": record \"" + r.name + "\" holds " +
                std::to_string(r.elems()) + " elements but the model "
                                            "expects " +
                std::to_string(elems) +
                " — the file does not match this model");
}

void
addStateRecords(RecordWriter& w, Module& model)
{
    forEachNamedModule(model, [&](const std::string& mp, Module& m) {
        if (auto* bn = dynamic_cast<BatchNorm2d*>(&m)) {
            uint64_t ch = bn->runningMean().size();
            w.addF32("bn/" + mp + ".mean", {&ch, 1},
                     {bn->runningMean().data(), size_t(ch)});
            w.addF32("bn/" + mp + ".var", {&ch, 1},
                     {bn->runningVar().data(), size_t(ch)});
        } else if (auto* l = dynamic_cast<Linear*>(&m)) {
            addActq(w, "actq/" + mp, l->actQuant());
        } else if (auto* c = dynamic_cast<Conv2d*>(&m)) {
            addActq(w, "actq/" + mp, c->actQuant());
        } else if (auto* d = dynamic_cast<DwConv2d*>(&m)) {
            addActq(w, "actq/" + mp, d->actQuant());
        } else if (auto* ls = dynamic_cast<Lstm*>(&m)) {
            addActq(w, "actq/" + mp + ".x", ls->inputQuant());
            addActq(w, "actq/" + mp + ".h", ls->hiddenQuant());
        } else if (auto* g = dynamic_cast<Gru*>(&m)) {
            addActq(w, "actq/" + mp + ".x", g->inputQuant());
            addActq(w, "actq/" + mp + ".h", g->hiddenQuant());
        }
    });
}

void
checkStateRecords(const RecordFile& f, Module& model)
{
    // Same walk as restoreStateRecords, reads only: every require()
    // and shape/dtype check fires here, none of the restore calls do.
    // A deploy stage runs this so apply can restore unconditionally.
    forEachNamedModule(model, [&](const std::string& mp, Module& m) {
        if (auto* bn = dynamic_cast<BatchNorm2d*>(&m)) {
            const Record& rm = f.require("bn/" + mp + ".mean");
            const Record& rv = f.require("bn/" + mp + ".var");
            recCheckElems(f, rm, bn->runningMean().size());
            recCheckElems(f, rv, bn->runningVar().size());
            recF32(f, rm);
            recF32(f, rv);
        } else if (dynamic_cast<Linear*>(&m) ||
                   dynamic_cast<Conv2d*>(&m) ||
                   dynamic_cast<DwConv2d*>(&m)) {
            readActq(f, "actq/" + mp);
        } else if (dynamic_cast<Lstm*>(&m) ||
                   dynamic_cast<Gru*>(&m)) {
            ActqState sx = readActq(f, "actq/" + mp + ".x");
            ActqState sh = readActq(f, "actq/" + mp + ".h");
            if (sx.bits != sh.bits)
                throw RecordLoadError(
                    LoadStatus::Mismatch,
                    f.path() + ": RNN cell \"" + mp + "\" has "
                    "mismatched x/h quantizer widths — the file is "
                    "corrupted or does not match this model");
        }
    });
}

void
restoreStateRecords(const RecordFile& f, Module& model)
{
    forEachNamedModule(model, [&](const std::string& mp, Module& m) {
        if (auto* bn = dynamic_cast<BatchNorm2d*>(&m)) {
            const Record& rm = f.require("bn/" + mp + ".mean");
            const Record& rv = f.require("bn/" + mp + ".var");
            recCheckElems(f, rm, bn->runningMean().size());
            recCheckElems(f, rv, bn->runningVar().size());
            bn->restoreRunningStats(recF32(f, rm), recF32(f, rv));
        } else if (dynamic_cast<Linear*>(&m) ||
                   dynamic_cast<Conv2d*>(&m) ||
                   dynamic_cast<DwConv2d*>(&m)) {
            ActqState s = readActq(f, "actq/" + mp);
            m.configureOwnActQuant(s.bits, s.enabled);
            ActFakeQuant* q = nullptr;
            if (auto* l = dynamic_cast<Linear*>(&m))
                q = &l->actQuant();
            else if (auto* c = dynamic_cast<Conv2d*>(&m))
                q = &c->actQuant();
            else
                q = &dynamic_cast<DwConv2d&>(m).actQuant();
            q->restore(s.enabled, s.calibrated, s.alpha);
        } else if (dynamic_cast<Lstm*>(&m) ||
                   dynamic_cast<Gru*>(&m)) {
            ActqState sx = readActq(f, "actq/" + mp + ".x");
            ActqState sh = readActq(f, "actq/" + mp + ".h");
            if (sx.bits != sh.bits)
                throw RecordLoadError(
                    LoadStatus::Mismatch,
                    f.path() + ": RNN cell \"" + mp + "\" has "
                    "mismatched x/h quantizer widths — the file is "
                    "corrupted or does not match this model");
            m.configureOwnActQuant(sx.bits, sx.enabled);
            if (auto* ls = dynamic_cast<Lstm*>(&m)) {
                ls->inputQuant().restore(sx.enabled, sx.calibrated,
                                         sx.alpha);
                ls->hiddenQuant().restore(sh.enabled, sh.calibrated,
                                          sh.alpha);
            } else {
                auto& g = dynamic_cast<Gru&>(m);
                g.inputQuant().restore(sx.enabled, sx.calibrated,
                                       sx.alpha);
                g.hiddenQuant().restore(sh.enabled, sh.calibrated,
                                        sh.alpha);
            }
        }
    });
}

} // namespace mixq
