/**
 * @file
 * Shared record encodings of the serialization layer: the helpers
 * checkpoint (serial/checkpoint.hh) and deploy artifact
 * (serial/deploy.hh) writers/loaders have in common — dtype/shape
 * validation that fatal()s with the offending record's name, and the
 * "bn/<path>.mean|.var" + "actq/<path>[.x|.h]" record walks for
 * BatchNorm running statistics and activation-quantizer calibrations.
 * Both formats emit these records identically, so a model restored
 * from either serves activations against the same clip ranges.
 */

#ifndef MIXQ_SERIAL_STATE_RECORDS_HH
#define MIXQ_SERIAL_STATE_RECORDS_HH

#include <span>
#include <string>
#include <vector>

#include "nn/module.hh"
#include "serial/record_io.hh"

namespace mixq {

/** Tensor shape as the u64 dims a record header stores. */
std::vector<uint64_t> recShape(const Tensor& t);

/**
 * Payload accessors that validate against the *model*: a structurally
 * valid file for a different architecture is a user mistake, so a
 * dtype or element-count mismatch throws RecordLoadError(Mismatch)
 * naming the record, never an assert. The strict load*() entry points
 * convert that to fatal(); the tryLoad*() ones to a LoadResult.
 */
std::span<const float> recF32(const RecordFile& f, const Record& r);
std::span<const double> recF64(const RecordFile& f, const Record& r,
                               size_t elems);
void recCheckElems(const RecordFile& f, const Record& r, size_t elems);

/**
 * Append the BatchNorm running statistics and every activation
 * quantizer's calibration ([bits, enabled, calibrated, alpha] per
 * site; RNN cells save their input/hidden pair as ".x"/".h") for
 * every module in @p model's named tree.
 */
void addStateRecords(RecordWriter& w, Module& model);

/**
 * Read-only validation pass over what addStateRecords() saved: runs
 * every require() and dtype/shape check restoreStateRecords() would,
 * without touching the model. Throws RecordLoadError on any problem;
 * after it returns, restoreStateRecords() on the same file and model
 * cannot fail — the stage half of a stage/apply deploy load.
 */
void checkStateRecords(const RecordFile& f, Module& model);

/**
 * Restore what addStateRecords() saved: running statistics via
 * BatchNorm2d::restoreRunningStats and quantizer calibrations via
 * configureOwnActQuant + ActFakeQuant::restore. Missing or mismatched
 * records throw RecordLoadError.
 */
void restoreStateRecords(const RecordFile& f, Module& model);

} // namespace mixq

#endif // MIXQ_SERIAL_STATE_RECORDS_HH
