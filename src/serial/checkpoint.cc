#include "serial/checkpoint.hh"

#include <cstring>
#include <unordered_map>

#include "nn/optim.hh"
#include "serial/record_io.hh"
#include "serial/state_records.hh"
#include "util/logging.hh"

namespace mixq {

namespace {

constexpr const char* kMagic = "MIXQCKPT";
constexpr uint32_t kVersion = 1;
constexpr const char* kKind = "checkpoint";

} // namespace

void
saveCheckpoint(const std::string& path, Module& model,
               const QatContext* qat, const Sgd* opt)
{
    RecordWriter w(path, kMagic, kVersion);
    std::vector<NamedParam> named = namedParams(model);
    std::unordered_map<const Param*, std::string> pathOf;
    for (const NamedParam& np : named)
        pathOf[np.p] = np.path;

    for (const NamedParam& np : named) {
        std::vector<uint64_t> shape = recShape(np.p->w);
        w.addF32("param/" + np.path, shape,
                 {np.p->w.data(), np.p->w.size()});
    }

    addStateRecords(w, model);

    if (opt) {
        const std::vector<Param*>& ps = opt->params();
        for (size_t i = 0; i < ps.size(); ++i) {
            auto it = pathOf.find(ps[i]);
            MIXQ_ASSERT(it != pathOf.end(),
                        "saveCheckpoint: optimizer tracks a parameter "
                        "outside this model");
            const Tensor& v = opt->velocity(i);
            std::vector<uint64_t> shape = recShape(v);
            w.addF32("opt/" + it->second + ".v", shape,
                     {v.data(), v.size()});
        }
    }

    if (qat) {
        const QConfig& c = qat->config();
        double cfg[9] = {double(int(c.scheme)), double(c.bits),
                         c.prSp2, double(int(c.policy)),
                         double(int(c.granularity)),
                         c.quantizeActivations ? 1.0 : 0.0,
                         double(c.actBits), c.rho,
                         qat->finalized() ? 1.0 : 0.0};
        uint64_t nine = 9;
        w.addF64("qat/config", {&nine, 1}, cfg);

        for (const QatContext::Entry& e : qat->entries()) {
            auto it = pathOf.find(e.p);
            MIXQ_ASSERT(it != pathOf.end(),
                        "saveCheckpoint: QAT context is attached to a "
                        "parameter outside this model");
            MIXQ_ASSERT(e.admm.initialized(),
                        "saveCheckpoint: QAT context was never "
                        "attached (no ADMM state to save)");
            MIXQ_ASSERT(e.proj.rowScheme.size() == e.p->qRows &&
                            e.proj.rowAlpha.size() == e.p->qRows,
                        "saveCheckpoint: projection metadata does not "
                        "cover every row");
            const std::string& pp = it->second;
            uint64_t n = e.p->w.size();
            uint64_t rows = e.p->qRows;
            w.addF32("qat/" + pp + ".z", {&n, 1}, e.admm.z());
            w.addF32("qat/" + pp + ".u", {&n, 1}, e.admm.u());
            w.addF32("qat/" + pp + ".alpha", {&rows, 1},
                     e.proj.rowAlpha);
            std::vector<uint8_t> sch(e.proj.rowScheme.size());
            for (size_t i = 0; i < sch.size(); ++i)
                sch[i] = uint8_t(int(e.proj.rowScheme[i]));
            w.addU8("qat/" + pp + ".scheme", {&rows, 1}, sch);
            double meta[2] = {e.proj.threshold,
                              double(e.proj.numSp2)};
            uint64_t two = 2;
            w.addF64("qat/" + pp + ".meta", {&two, 1}, meta);
        }
    }
    w.close();
}

namespace {

/** The load body; throws RecordLoadError on any mismatch. */
CheckpointLoadResult
loadCheckpointFrom(const RecordFile& f, Module& model)
{
    CheckpointLoadResult res;
    std::vector<NamedParam> named = namedParams(model);

    // Strict both ways: every model param needs a record, and a file
    // with leftover param records was written from a different
    // architecture — catch that instead of silently ignoring it.
    size_t paramRecs = 0;
    for (const Record& r : f.records())
        if (r.name.rfind("param/", 0) == 0)
            ++paramRecs;
    if (paramRecs != named.size())
        throw RecordLoadError(
            LoadStatus::Mismatch,
            f.path() + ": checkpoint holds " +
                std::to_string(paramRecs) + " parameters but the model "
                                            "has " +
                std::to_string(named.size()) +
                " — the file does not match this model");

    for (const NamedParam& np : named) {
        const Record& r = f.require("param/" + np.path);
        recCheckElems(f, r, np.p->w.size());
        std::span<const float> v = recF32(f, r);
        std::memcpy(np.p->w.data(), v.data(),
                    v.size() * sizeof(float));
        np.p->noteUpdated();
    }
    res.paramsLoaded = named.size();

    restoreStateRecords(f, model);

    // Optimizer momentum ("opt/<path>.v"): optional, additive —
    // checkpoints written without an optimizer simply have none.
    for (const Record& r : f.records()) {
        if (r.name.rfind("opt/", 0) != 0 ||
            r.name.size() < 6 ||
            r.name.compare(r.name.size() - 2, 2, ".v") != 0)
            continue;
        std::string ppath =
            r.name.substr(4, r.name.size() - 6);
        Param* p = findParam(model, ppath);
        if (!p)
            throw RecordLoadError(LoadStatus::Mismatch,
                                  f.path() + ": record \"" + r.name +
                                      "\" names a parameter this model "
                                      "does not have");
        recCheckElems(f, r, p->w.size());
        std::span<const float> v = recF32(f, r);
        res.velocities.emplace_back(
            std::move(ppath), std::vector<float>(v.begin(), v.end()));
    }

    if (const Record* rc = f.find("qat/config")) {
        std::span<const double> v = recF64(f, *rc, 9);
        int scheme = int(v[0]), policy = int(v[3]), gran = int(v[4]);
        if (scheme < 0 || scheme > int(QuantScheme::Mixed) ||
            policy < 0 || policy > int(PartitionPolicy::Inverted) ||
            gran < 0 || gran > int(Granularity::PerRow))
            throw RecordLoadError(
                LoadStatus::Corrupt,
                f.path() + ": qat/config holds out-of-range enum "
                "values — the checkpoint file is corrupted");
        QConfig c;
        c.scheme = QuantScheme(scheme);
        c.bits = int(v[1]);
        c.prSp2 = v[2];
        c.policy = PartitionPolicy(policy);
        c.granularity = Granularity(gran);
        c.quantizeActivations = v[5] != 0.0;
        c.actBits = int(v[6]);
        c.rho = v[7];

        auto qat = std::make_unique<QatContext>(c);
        qat->attachForRestore(model.params());
        for (const NamedParam& np : named) {
            if (!np.p->quantizable())
                continue;
            const Record& rz = f.require("qat/" + np.path + ".z");
            const Record& ru = f.require("qat/" + np.path + ".u");
            const Record& ra = f.require("qat/" + np.path + ".alpha");
            const Record& rs = f.require("qat/" + np.path + ".scheme");
            const Record& rm = f.require("qat/" + np.path + ".meta");
            recCheckElems(f, rz, np.p->w.size());
            recCheckElems(f, ru, np.p->w.size());
            recCheckElems(f, ra, np.p->qRows);
            recCheckElems(f, rs, np.p->qRows);

            MatrixQuantResult proj;
            std::span<const float> alpha = recF32(f, ra);
            proj.rowAlpha.assign(alpha.begin(), alpha.end());
            proj.rowScheme.resize(rs.elems());
            for (size_t i = 0; i < rs.elems(); ++i) {
                uint8_t s = rs.u8()[i];
                if (s > uint8_t(QuantScheme::Mixed))
                    throw RecordLoadError(
                        LoadStatus::Corrupt,
                        f.path() + ": record \"" + rs.name +
                            "\" holds an unknown scheme code — the "
                            "checkpoint file is corrupted");
                proj.rowScheme[i] = QuantScheme(s);
            }
            std::span<const double> meta = recF64(f, rm, 2);
            proj.threshold = meta[0];
            proj.numSp2 = size_t(meta[1]);
            qat->restoreEntryState(np.p, recF32(f, rz), recF32(f, ru),
                                   std::move(proj));
        }
        qat->setFinalized(v[8] != 0.0);
        res.qat = std::move(qat);
    }
    return res;
}

} // namespace

LoadResult
tryLoadCheckpoint(const std::string& path, Module& model,
                  CheckpointLoadResult& out)
{
    LoadResult err;
    std::unique_ptr<RecordFile> f =
        RecordFile::tryOpen(path, kMagic, kVersion, kKind, err);
    if (!f)
        return err;
    try {
        out = loadCheckpointFrom(*f, model);
    } catch (const RecordLoadError& e) {
        return {e.status(), e.what()};
    }
    return {};
}

CheckpointLoadResult
loadCheckpoint(const std::string& path, Module& model)
{
    CheckpointLoadResult res;
    LoadResult r = tryLoadCheckpoint(path, model, res);
    if (!r.ok())
        fatal(r.message);
    return res;
}

size_t
restoreOptimizerState(const CheckpointLoadResult& res, Module& model,
                      Sgd& sgd)
{
    const std::vector<Param*>& ps = sgd.params();
    std::unordered_map<const Param*, size_t> slotOf;
    for (size_t i = 0; i < ps.size(); ++i)
        slotOf[ps[i]] = i;

    size_t restored = 0;
    for (const auto& [ppath, v] : res.velocities) {
        Param* p = findParam(model, ppath);
        if (!p)
            fatal("restoreOptimizerState: checkpoint velocity \"" +
                  ppath + "\" names a parameter this model does not "
                  "have");
        auto it = slotOf.find(p);
        if (it == slotOf.end())
            fatal("restoreOptimizerState: the optimizer does not "
                  "track parameter \"" + ppath + "\"");
        Tensor& vel = sgd.velocity(it->second);
        if (vel.size() != v.size())
            fatal("restoreOptimizerState: velocity \"" + ppath +
                  "\" holds " + std::to_string(v.size()) +
                  " elements, the parameter has " +
                  std::to_string(vel.size()));
        std::memcpy(vel.data(), v.data(), v.size() * sizeof(float));
        ++restored;
    }
    return restored;
}

} // namespace mixq
