#include "serial/record_io.hh"

#include <cstdio>
#include <cstring>

#ifdef __unix__
#include <unistd.h>
#endif

#include "serve/fault.hh"
#include "util/logging.hh"

namespace mixq {

namespace {

constexpr size_t kMagicLen = 8;
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

// Header: magic | u32 version | u64 count | u64 checksum. Count and
// checksum are patched at close, so their offsets are fixed.
constexpr long kCountOfs = long(kMagicLen) + 4;
constexpr long kChecksumOfs = kCountOfs + 8;

uint64_t
fnv1a(uint64_t h, const void* data, size_t n)
{
    const uint8_t* p = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

size_t
dtypeSize(RecDType t)
{
    switch (t) {
    case RecDType::F32:
        return 4;
    case RecDType::F64:
        return 8;
    case RecDType::U8:
        return 1;
    }
    panic("record: unknown dtype");
}

} // namespace

const char*
loadStatusName(LoadStatus s)
{
    switch (s) {
    case LoadStatus::Ok:
        return "ok";
    case LoadStatus::OpenFailed:
        return "open-failed";
    case LoadStatus::Foreign:
        return "foreign";
    case LoadStatus::VersionMismatch:
        return "version-mismatch";
    case LoadStatus::Truncated:
        return "truncated";
    case LoadStatus::ChecksumMismatch:
        return "checksum-mismatch";
    case LoadStatus::Corrupt:
        return "corrupt";
    case LoadStatus::Mismatch:
        return "mismatch";
    case LoadStatus::WriteFailed:
        return "write-failed";
    case LoadStatus::Unavailable:
        return "unavailable";
    }
    panic("record: unknown load status");
}

size_t
Record::elems() const
{
    size_t n = 1;
    for (uint64_t d : shape)
        n *= size_t(d);
    return n;
}

std::span<const float>
Record::f32() const
{
    MIXQ_ASSERT(dtype == RecDType::F32, "record is not f32");
    return {reinterpret_cast<const float*>(bytes.data()),
            bytes.size() / 4};
}

std::span<const double>
Record::f64() const
{
    MIXQ_ASSERT(dtype == RecDType::F64, "record is not f64");
    return {reinterpret_cast<const double*>(bytes.data()),
            bytes.size() / 8};
}

// ---------------------------------------------------------- RecordWriter

RecordWriter::RecordWriter(const std::string& path, const char* magic,
                           uint32_t version)
    : path_(path), tmpPath_(path + ".tmp"), checksum_(kFnvOffset)
{
    MIXQ_ASSERT(std::strlen(magic) == kMagicLen,
                "record magic must be 8 bytes");
    // Stream into a sibling temp file; close() renames it onto the
    // final path. A same-directory temp keeps the rename atomic
    // (same filesystem) and means a crash leaves the old artifact —
    // if any — untouched at the final path.
    f_ = std::fopen(tmpPath_.c_str(), "wb");
    if (!f_)
        fatal("cannot open " + tmpPath_ + " for writing");
    if (std::fwrite(magic, 1, kMagicLen, f_) != kMagicLen)
        fatal("write failed on " + tmpPath_);
    uint32_t v = version;
    uint64_t zero = 0;
    put(&v, sizeof(v));
    put(&zero, sizeof(zero)); // record count, patched in close()
    put(&zero, sizeof(zero)); // checksum, patched in close()
}

RecordWriter::~RecordWriter()
{
    abandon();
}

void
RecordWriter::put(const void* data, size_t n)
{
    if (std::fwrite(data, 1, n, f_) != n)
        fatal("write failed on " + tmpPath_);
}

void
RecordWriter::add(const std::string& name, RecDType dtype,
                  std::span<const uint64_t> shape, const void* data,
                  size_t dataBytes)
{
    MIXQ_ASSERT(f_ != nullptr, "record writer already closed");
    faultOnRecordWrite(count_);
    size_t elems = 1;
    for (uint64_t d : shape)
        elems *= size_t(d);
    MIXQ_ASSERT(dataBytes == elems * dtypeSize(dtype),
                "record payload does not match its shape");

    // The checksum covers the record region byte for byte, in file
    // order — any truncation or flip after the header breaks it.
    auto emit = [&](const void* p, size_t n) {
        checksum_ = fnv1a(checksum_, p, n);
        put(p, n);
    };
    uint32_t nameLen = uint32_t(name.size());
    uint8_t dt = uint8_t(dtype);
    uint8_t rank = uint8_t(shape.size());
    uint64_t payload = dataBytes;
    emit(&nameLen, sizeof(nameLen));
    emit(name.data(), name.size());
    emit(&dt, sizeof(dt));
    emit(&rank, sizeof(rank));
    for (uint64_t d : shape)
        emit(&d, sizeof(d));
    emit(&payload, sizeof(payload));
    emit(data, dataBytes);
    ++count_;
}

void
RecordWriter::addF32(const std::string& name,
                     std::span<const uint64_t> shape,
                     std::span<const float> v)
{
    add(name, RecDType::F32, shape, v.data(), v.size_bytes());
}

void
RecordWriter::addF64(const std::string& name,
                     std::span<const uint64_t> shape,
                     std::span<const double> v)
{
    add(name, RecDType::F64, shape, v.data(), v.size_bytes());
}

void
RecordWriter::addU8(const std::string& name,
                    std::span<const uint64_t> shape,
                    std::span<const uint8_t> v)
{
    add(name, RecDType::U8, shape, v.data(), v.size_bytes());
}

void
RecordWriter::close()
{
    if (!f_)
        return;
    if (std::fseek(f_, kCountOfs, SEEK_SET) != 0)
        fatal("seek failed on " + tmpPath_);
    put(&count_, sizeof(count_));
    put(&checksum_, sizeof(checksum_));
    // Commit point: everything the rename publishes must be durable
    // first, or a crash after the rename could still expose a torn
    // file through the final path.
    if (std::fflush(f_) != 0)
        fatal("flush failed on " + tmpPath_);
#ifdef __unix__
    ::fsync(::fileno(f_));
#endif
    if (std::fclose(f_) != 0)
        fatal("close failed on " + tmpPath_);
    f_ = nullptr;
    if (std::rename(tmpPath_.c_str(), path_.c_str()) != 0)
        fatal("cannot rename " + tmpPath_ + " to " + path_);
}

void
RecordWriter::abandon()
{
    if (!f_)
        return;
    std::fclose(f_);
    f_ = nullptr;
    std::remove(tmpPath_.c_str());
}

// ------------------------------------------------------------ RecordFile

RecordFile::RecordFile(const std::string& path, const char* magic,
                       uint32_t version, const std::string& kind)
{
    try {
        parse(path, magic, version, kind);
    } catch (const RecordLoadError& e) {
        fatal(e.what());
    }
}

std::unique_ptr<RecordFile>
RecordFile::tryOpen(const std::string& path, const char* magic,
                    uint32_t version, const std::string& kind,
                    LoadResult& err)
{
    std::unique_ptr<RecordFile> rf(new RecordFile());
    try {
        rf->parse(path, magic, version, kind);
    } catch (const RecordLoadError& e) {
        err = {e.status(), e.what()};
        return nullptr;
    }
    err = {};
    return rf;
}

void
RecordFile::parse(const std::string& path, const char* magic,
                  uint32_t version, const std::string& kind)
{
    MIXQ_ASSERT(std::strlen(magic) == kMagicLen,
                "record magic must be 8 bytes");
    path_ = path;
    recs_.clear();

    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw RecordLoadError(LoadStatus::OpenFailed,
                              "cannot open " + path);
    std::fseek(f, 0, SEEK_END);
    long fsize = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<uint8_t> buf;
    buf.resize(size_t(fsize));
    if (std::fread(buf.data(), 1, buf.size(), f) != buf.size()) {
        std::fclose(f);
        throw RecordLoadError(LoadStatus::OpenFailed,
                              "read failed on " + path);
    }
    std::fclose(f);
    faultOnRecordFileRead(buf);

    if (buf.size() < kMagicLen + 4 + 8 + 8 ||
        std::memcmp(buf.data(), magic, kMagicLen) != 0)
        throw RecordLoadError(LoadStatus::Foreign,
                              path + " is not a mixq " + kind + " file");
    uint32_t v;
    std::memcpy(&v, buf.data() + kMagicLen, 4);
    if (v != version)
        throw RecordLoadError(
            LoadStatus::VersionMismatch,
            path + ": unsupported " + kind + " format version " +
                std::to_string(v) + " (this build reads version " +
                std::to_string(version) + ")");
    uint64_t count, checksum;
    std::memcpy(&count, buf.data() + kCountOfs, 8);
    std::memcpy(&checksum, buf.data() + kChecksumOfs, 8);

    // Parse before checksumming: a cut-off file then reports
    // "truncated" (the record walk runs out of bytes) while a
    // bit-flip in a structurally intact file reports "checksum
    // mismatch" below.
    size_t pos = size_t(kChecksumOfs) + 8;
    const size_t regionStart = pos;

    auto need = [&](size_t n) {
        if (buf.size() - pos < n)
            throw RecordLoadError(LoadStatus::Truncated,
                                  path + ": truncated " + kind +
                                      " file");
    };
    for (uint64_t r = 0; r < count; ++r) {
        Record rec;
        need(4);
        uint32_t nameLen;
        std::memcpy(&nameLen, buf.data() + pos, 4);
        pos += 4;
        need(nameLen);
        rec.name.assign(reinterpret_cast<const char*>(buf.data() + pos),
                        nameLen);
        pos += nameLen;
        need(2);
        uint8_t dt = buf[pos++];
        uint8_t rank = buf[pos++];
        if (dt > uint8_t(RecDType::U8))
            throw RecordLoadError(LoadStatus::Corrupt,
                                  path + ": unknown record dtype — the " +
                                      kind + " file is corrupted");
        rec.dtype = RecDType(dt);
        need(size_t(rank) * 8);
        rec.shape.resize(rank);
        std::memcpy(rec.shape.data(), buf.data() + pos,
                    size_t(rank) * 8);
        pos += size_t(rank) * 8;
        need(8);
        uint64_t payload;
        std::memcpy(&payload, buf.data() + pos, 8);
        pos += 8;
        if (payload != rec.elems() * dtypeSize(rec.dtype))
            throw RecordLoadError(
                LoadStatus::Corrupt,
                path + ": record payload does not match its shape — "
                       "the " +
                    kind + " file is corrupted");
        need(size_t(payload));
        rec.bytes.assign(buf.data() + pos, buf.data() + pos + payload);
        pos += size_t(payload);
        recs_.push_back(std::move(rec));
    }
    if (pos != buf.size())
        throw RecordLoadError(LoadStatus::Corrupt,
                              path +
                                  ": trailing bytes after the last "
                                  "record — the " +
                                  kind + " file is corrupted");

    uint64_t h = fnv1a(kFnvOffset, buf.data() + regionStart,
                       buf.size() - regionStart);
    if (h != checksum)
        throw RecordLoadError(LoadStatus::ChecksumMismatch,
                              path + ": checksum mismatch — the " +
                                  kind + " file is corrupted");
}

const Record*
RecordFile::find(const std::string& name) const
{
    for (const Record& r : recs_)
        if (r.name == name)
            return &r;
    return nullptr;
}

const Record&
RecordFile::require(const std::string& name) const
{
    const Record* r = find(name);
    if (!r)
        throw RecordLoadError(LoadStatus::Mismatch,
                              path_ + ": missing record \"" + name +
                                  "\" — the file does not match this "
                                  "model");
    return *r;
}

} // namespace mixq
