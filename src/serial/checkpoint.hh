/**
 * @file
 * Full-precision training checkpoints ("MIXQCKPT"): every Param
 * tensor, the BatchNorm running statistics, every activation
 * quantizer's calibration and — when a QatContext is handed in — the
 * complete ADMM state (QConfig, per-parameter Z/U, the latest
 * projection metadata). A load therefore warm-restarts training
 * exactly: trainClassifier() resumed from a checkpoint reproduces the
 * loss trajectory of the uninterrupted run bit for bit.
 *
 * Records are keyed on named-state-tree paths (nn/module.hh), so the
 * loading process only needs to build a structurally equal model; the
 * checkpoint carries no architecture. For the inference-only
 * counterpart that ships bit-packed codes instead of floats, see
 * serial/deploy.hh.
 */

#ifndef MIXQ_SERIAL_CHECKPOINT_HH
#define MIXQ_SERIAL_CHECKPOINT_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/module.hh"
#include "nn/trainer.hh"
#include "serial/record_io.hh"

namespace mixq {

class Sgd;

/**
 * Write a checkpoint of @p model to @p path. With @p qat non-null the
 * context's QConfig and per-parameter ADMM state are included, so the
 * restored run can keep training mid-ADMM; the context must be
 * attached to this model's parameters. With @p opt non-null the
 * optimizer's momentum velocities are included as "opt/<path>.v"
 * records — without them a resumed run restarts every velocity from
 * zero and the loss trajectory diverges from the uninterrupted run
 * (tests/serial_test.cc pins both directions).
 */
void saveCheckpoint(const std::string& path, Module& model,
                    const QatContext* qat = nullptr,
                    const Sgd* opt = nullptr);

/** What loadCheckpoint() restored. */
struct CheckpointLoadResult
{
    /** Number of Param tensors overwritten from the file. */
    size_t paramsLoaded = 0;
    /**
     * Reconstructed QAT context (null when the checkpoint was saved
     * without one): attached to @p model's parameters with Z/U and
     * projection state restored from the file — hand it straight back
     * to trainClassifier() to resume.
     */
    std::unique_ptr<QatContext> qat;
    /**
     * Momentum velocities keyed by parameter path (empty when the
     * checkpoint was saved without an optimizer). Feed them into a
     * freshly built Sgd with restoreOptimizerState().
     */
    std::vector<std::pair<std::string, std::vector<float>>> velocities;
};

/**
 * Copy the loaded velocities into @p sgd (which must track
 * @p model's parameters). Returns the number of buffers restored;
 * fatal() on a path or size that does not match the model/optimizer.
 */
size_t restoreOptimizerState(const CheckpointLoadResult& res,
                             Module& model, Sgd& sgd);

/**
 * Restore @p model (and its quant state) from a checkpoint written by
 * saveCheckpoint(). The model must be structurally identical to the
 * saved one; any mismatch — missing or extra parameters, different
 * shapes, a foreign/corrupted/truncated file — is fatal() with a
 * message naming the file and the offending record.
 */
CheckpointLoadResult loadCheckpoint(const std::string& path,
                                    Module& model);

/**
 * Recoverable variant: on success fills @p out and returns Ok; on
 * any failure returns the precise class (open-failed / foreign /
 * version-mismatch / truncated / checksum-mismatch / corrupt /
 * mismatch) with the message loadCheckpoint() would have aborted
 * with. Never aborts the process.
 *
 * Weaker guarantee than the deploy loader: parameter tensors are
 * restored as records validate, so on a Mismatch failure @p model may
 * be partially overwritten — reload a known-good checkpoint before
 * using it. (File-level failures are detected before any restore
 * touches the model.) Checkpoints are a training-time format; the
 * serve-time hot-swap path uses deploy artifacts, whose loader is
 * all-or-nothing.
 */
LoadResult tryLoadCheckpoint(const std::string& path, Module& model,
                             CheckpointLoadResult& out);

} // namespace mixq

#endif // MIXQ_SERIAL_CHECKPOINT_HH
