#include "util/rng.hh"

#include "util/logging.hh"

namespace mixq {

double
Rng::uniform(double lo, double hi)
{
    std::uniform_real_distribution<double> d(lo, hi);
    return d(gen_);
}

double
Rng::normal(double mean, double stddev)
{
    std::normal_distribution<double> d(mean, stddev);
    return d(gen_);
}

int64_t
Rng::randint(int64_t lo, int64_t hi)
{
    MIXQ_ASSERT(lo <= hi, "randint: empty range");
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(gen_);
}

bool
Rng::bernoulli(double p)
{
    std::bernoulli_distribution d(p);
    return d(gen_);
}

size_t
Rng::categorical(const std::vector<double>& weights)
{
    MIXQ_ASSERT(!weights.empty(), "categorical: no weights");
    std::discrete_distribution<size_t> d(weights.begin(), weights.end());
    return d(gen_);
}

void
Rng::shuffle(std::vector<size_t>& idx)
{
    for (size_t i = idx.size(); i > 1; --i) {
        size_t j = static_cast<size_t>(randint(0, int64_t(i) - 1));
        std::swap(idx[i - 1], idx[j]);
    }
}

} // namespace mixq
