/**
 * @file
 * Small statistics helpers shared by the quantizer (row variances,
 * alpha fitting) and the benches (histograms over weight values).
 */

#ifndef MIXQ_UTIL_STATS_HH
#define MIXQ_UTIL_STATS_HH

#include <cstddef>
#include <span>
#include <vector>

namespace mixq {

/** Arithmetic mean; 0 for an empty span. */
double mean(std::span<const float> xs);

/** Population variance (divide by N); 0 for fewer than 1 element. */
double variance(std::span<const float> xs);

/** Maximum absolute value; 0 for an empty span. */
double maxAbs(std::span<const float> xs);

/**
 * p-th percentile (0..100) by linear interpolation over the sorted
 * sample. The input is copied; the span is not modified.
 */
double percentile(std::span<const float> xs, double p);

/** Fixed-width histogram over [lo, hi] with the given bin count. */
struct Histogram
{
    double lo = 0.0;            //!< inclusive lower edge
    double hi = 1.0;            //!< inclusive upper edge
    std::vector<size_t> bins;   //!< per-bin counts
    size_t total = 0;           //!< number of accumulated samples

    Histogram(double lo, double hi, size_t n_bins);

    /** Accumulate one sample (clamped to [lo, hi]). */
    void add(double x);

    /** Bin center for bin i. */
    double center(size_t i) const;

    /** Fraction of samples in bin i (0 when empty). */
    double frac(size_t i) const;
};

} // namespace mixq

#endif // MIXQ_UTIL_STATS_HH
