/**
 * @file
 * Status and error reporting helpers, following the gem5 discipline:
 * inform()/warn() for status, fatal() for user-correctable errors,
 * panic() for internal invariant violations (bugs in this library).
 */

#ifndef MIXQ_UTIL_LOGGING_HH
#define MIXQ_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace mixq {

/** Print an informational message to stderr ("info: ..."). */
void inform(const std::string& msg);

/** Print a warning message to stderr ("warn: ..."). */
void warn(const std::string& msg);

/**
 * Abort because of a user-correctable error (bad configuration,
 * invalid argument values). Prints the message and exits with
 * status 1; never returns.
 */
[[noreturn]] void fatal(const std::string& msg);

/**
 * Abort because an internal invariant is broken — a bug in mixq
 * itself, regardless of user input. Prints the message and calls
 * std::abort(); never returns.
 */
[[noreturn]] void panic(const std::string& msg);

/**
 * Check an internal invariant; calls panic() with the location and
 * message when the condition is false. Active in all build types —
 * these guards protect simulator state, not hot loops.
 */
#define MIXQ_ASSERT(cond, msg)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            std::ostringstream oss_;                                    \
            oss_ << __FILE__ << ":" << __LINE__ << ": " << (msg);       \
            ::mixq::panic(oss_.str());                                  \
        }                                                               \
    } while (0)

} // namespace mixq

#endif // MIXQ_UTIL_LOGGING_HH
