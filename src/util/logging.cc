#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace mixq {

void
inform(const std::string& msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warn(const std::string& msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
fatal(const std::string& msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const std::string& msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace mixq
