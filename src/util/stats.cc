#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace mixq {

double
mean(std::span<const float> xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (float x : xs)
        s += x;
    return s / double(xs.size());
}

double
variance(std::span<const float> xs)
{
    if (xs.empty())
        return 0.0;
    double m = mean(xs);
    double s = 0.0;
    for (float x : xs)
        s += (x - m) * (x - m);
    return s / double(xs.size());
}

double
maxAbs(std::span<const float> xs)
{
    double m = 0.0;
    for (float x : xs)
        m = std::max(m, double(std::fabs(x)));
    return m;
}

double
percentile(std::span<const float> xs, double p)
{
    MIXQ_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
    if (xs.empty())
        return 0.0;
    std::vector<float> v(xs.begin(), xs.end());
    std::sort(v.begin(), v.end());
    if (v.size() == 1)
        return v[0];
    double rank = p / 100.0 * double(v.size() - 1);
    size_t lo_i = size_t(std::floor(rank));
    size_t hi_i = std::min(lo_i + 1, v.size() - 1);
    double w = rank - double(lo_i);
    return v[lo_i] * (1.0 - w) + v[hi_i] * w;
}

Histogram::Histogram(double lo, double hi, size_t n_bins)
    : lo(lo), hi(hi), bins(n_bins, 0)
{
    MIXQ_ASSERT(hi > lo && n_bins > 0, "bad histogram spec");
}

void
Histogram::add(double x)
{
    double t = (x - lo) / (hi - lo);
    t = std::clamp(t, 0.0, 1.0);
    size_t i = std::min(size_t(t * double(bins.size())), bins.size() - 1);
    ++bins[i];
    ++total;
}

double
Histogram::center(size_t i) const
{
    double w = (hi - lo) / double(bins.size());
    return lo + (double(i) + 0.5) * w;
}

double
Histogram::frac(size_t i) const
{
    return total == 0 ? 0.0 : double(bins[i]) / double(total);
}

} // namespace mixq
