/**
 * @file
 * Seeded random number generation. Every stochastic component in the
 * library draws from an explicitly seeded Rng so experiments are
 * bit-reproducible run to run.
 */

#ifndef MIXQ_UTIL_RNG_HH
#define MIXQ_UTIL_RNG_HH

#include <cstdint>
#include <random>
#include <vector>

namespace mixq {

/**
 * Thin wrapper over std::mt19937 with the draw helpers used across
 * the library. Copyable; copies advance independently.
 */
class Rng
{
  public:
    /** Construct with an explicit seed (default arbitrary constant). */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : gen_(seed) {}

    /** Uniform real in [lo, hi). */
    double uniform(double lo = 0.0, double hi = 1.0);

    /** Normal with given mean and standard deviation. */
    double normal(double mean = 0.0, double stddev = 1.0);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t randint(int64_t lo, int64_t hi);

    /** Bernoulli draw with probability p of true. */
    bool bernoulli(double p);

    /** Draw an index in [0, weights.size()) proportional to weights. */
    size_t categorical(const std::vector<double>& weights);

    /** Fisher-Yates shuffle of an index vector. */
    void shuffle(std::vector<size_t>& idx);

    /** Access the underlying engine (for std distributions). */
    std::mt19937_64& engine() { return gen_; }

  private:
    std::mt19937_64 gen_;
};

} // namespace mixq

#endif // MIXQ_UTIL_RNG_HH
