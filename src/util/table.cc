#include "util/table.hh"

#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace mixq {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    MIXQ_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    MIXQ_ASSERT(cells.size() == headers_.size(),
                "row arity mismatches header");
    rows_.push_back(std::move(cells));
}

void
Table::addRule()
{
    rows_.emplace_back(); // empty row encodes a rule
}

std::string
Table::str() const
{
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto rule = [&]() {
        std::string s = "+";
        for (size_t c = 0; c < width.size(); ++c)
            s += std::string(width[c] + 2, '-') + "+";
        return s + "\n";
    };
    auto line = [&](const std::vector<std::string>& cells) {
        std::string s = "|";
        for (size_t c = 0; c < width.size(); ++c) {
            const std::string& v = c < cells.size() ? cells[c] : "";
            s += " " + v + std::string(width[c] - v.size(), ' ') + " |";
        }
        return s + "\n";
    };

    std::string out = rule() + line(headers_) + rule();
    for (const auto& row : rows_) {
        out += row.empty() ? rule() : line(row);
    }
    out += rule();
    return out;
}

void
Table::print(const std::string& title) const
{
    if (!title.empty())
        std::printf("%s\n", title.c_str());
    std::printf("%s", str().c_str());
}

std::string
Table::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
Table::withDelta(double v, double delta, int decimals)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%.*f (%+.*f)", decimals, v,
                  decimals, delta);
    return buf;
}

std::string
Table::integer(long long v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", v);
    return buf;
}

std::string
Table::pct(double frac, int decimals)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, frac * 100.0);
    return buf;
}

} // namespace mixq
