/**
 * @file
 * Fixed-width ASCII table printer. Every bench binary prints its
 * reproduction of a paper table through this class so the stdout
 * output reads like the paper's own tables.
 */

#ifndef MIXQ_UTIL_TABLE_HH
#define MIXQ_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace mixq {

/**
 * Accumulates rows of string cells and renders them with aligned
 * columns, a header rule, and an optional title. Numeric helpers
 * format with a fixed precision so table columns stay aligned.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a full row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator rule between row groups. */
    void addRule();

    /** Render to a string (also see print()). */
    std::string str() const;

    /** Render to stdout with an optional title line. */
    void print(const std::string& title = "") const;

    /** Format a double with fixed decimals. */
    static std::string num(double v, int decimals = 2);

    /** Format "v (+/-d)" in the paper's accuracy-delta style. */
    static std::string withDelta(double v, double delta, int decimals = 2);

    /** Format an integer with no decorations. */
    static std::string integer(long long v);

    /** Format a percentage "xx.x%". */
    static std::string pct(double frac, int decimals = 1);

  private:
    std::vector<std::string> headers_;
    /** Rows; an empty vector encodes a separator rule. */
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mixq

#endif // MIXQ_UTIL_TABLE_HH
