/**
 * @file
 * Train-once half of the train-once / serve-many pair. Trains a
 * MiniResNet with MSQ quantization-aware training (Algorithm 1/2),
 * then writes three files:
 *
 *   mixq_msq_ckpt.bin   — full float checkpoint (weights, BN stats,
 *                         activation calibrations, ADMM state) for
 *                         warm-restarting training;
 *   mixq_msq_deploy.bin — bit-packed deploy artifact: 4-bit integer
 *                         codes + per-row scales, loadable without
 *                         any float weights or QatContext;
 *   mixq_msq_probe.bin  — a probe batch and this process's integer
 *                         backend outputs on it, so a serving process
 *                         can prove bit-identical execution.
 *
 * Run serve_artifact afterwards from the same directory (or pass the
 * shared directory to both):
 *
 *   ./build/examples/train_export  [dir]
 *   ./build/examples/serve_artifact [dir]
 */

#include <cstdio>
#include <cstring>

#include "data/synth_images.hh"
#include "infer/session.hh"
#include "nn/models.hh"
#include "nn/trainer.hh"
#include "serial/checkpoint.hh"
#include "serial/deploy.hh"
#include "serial/record_io.hh"
#include "util/rng.hh"

using namespace mixq;

namespace {

long
fileBytes(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f)
        return -1;
    std::fseek(f, 0, SEEK_END);
    long n = std::ftell(f);
    std::fclose(f);
    return n;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string dir = argc > 1 ? argv[1] : ".";
    LabeledImages train = makeImageDataset(ImageTask::Easy, 400, 1);

    std::printf("training MiniResNet with MSQ QAT on %s...\n",
                imageTaskName(ImageTask::Easy));
    Rng rng(7);
    auto model = makeMiniResNet(train.numClasses, rng, 8);
    QConfig qcfg; // paper defaults: 4-bit MSQ, SP2:Fixed = 2:1
    QatContext qat(qcfg);
    qat.attach(model->params());
    TrainCfg cfg;
    cfg.epochs = 4;
    cfg.lr = 0.05;
    trainClassifier(*model, train, cfg, &qat);
    double acc = evalClassifier(*model, train);
    std::printf("trained; top-1 on the training set %.2f%%\n",
                acc * 100);

    const std::string ckpt = dir + "/mixq_msq_ckpt.bin";
    const std::string artifact = dir + "/mixq_msq_deploy.bin";
    const std::string probe = dir + "/mixq_msq_probe.bin";
    saveCheckpoint(ckpt, *model, &qat);
    saveDeployArtifact(artifact, *model, qat);

    // Probe: a small batch plus this process's Int-backend outputs.
    // serve_artifact replays it from the artifact alone and compares
    // byte for byte.
    InferenceSession sess(*model, &qat, InferBackend::Int);
    LabeledImages probeSet = makeImageDataset(ImageTask::Easy, 8, 3);
    Tensor y = sess.run(probeSet.images);
    {
        RecordWriter w(probe, "MIXQPROB", 1);
        double meta[1] = {double(train.numClasses)};
        uint64_t one = 1;
        w.addF64("probe/classes", {&one, 1}, meta);
        std::vector<uint64_t> xs, ys;
        for (size_t d : probeSet.images.shape())
            xs.push_back(d);
        for (size_t d : y.shape())
            ys.push_back(d);
        w.addF32("probe/input", xs,
                 {probeSet.images.data(), probeSet.images.size()});
        w.addF32("probe/output", ys, {y.data(), y.size()});
        w.close();
    }

    long cb = fileBytes(ckpt), ab = fileBytes(artifact);
    std::printf("wrote %s (%ld bytes)\n", ckpt.c_str(), cb);
    std::printf("wrote %s (%ld bytes, %.1fx smaller)\n",
                artifact.c_str(), ab, double(cb) / double(ab));
    std::printf("wrote %s\n", probe.c_str());
    return 0;
}
