/**
 * @file
 * Serve-many half of the train-once / serve-many pair. This process
 * never sees float weights, a quantizer, or a QatContext: it builds
 * the MiniResNet architecture fresh (random init), adopts the
 * bit-packed deploy artifact straight into locked integer panels
 * (InferenceSession's artifact constructor), and replays the probe
 * batch saved by train_export — the outputs must match the training
 * process's integer backend bit for bit. Exits nonzero on any
 * mismatch, so the CI round-trip step can gate on it.
 *
 *   ./build/examples/train_export  [dir]
 *   ./build/examples/serve_artifact [dir]
 */

#include <cstdio>
#include <cstring>

#include "infer/session.hh"
#include "nn/models.hh"
#include "serial/record_io.hh"
#include "util/rng.hh"

using namespace mixq;

int
main(int argc, char** argv)
{
    std::string dir = argc > 1 ? argv[1] : ".";
    const std::string artifact = dir + "/mixq_msq_deploy.bin";
    const std::string probe = dir + "/mixq_msq_probe.bin";

    RecordFile pf(probe, "MIXQPROB", 1, "probe");
    size_t classes = size_t(pf.require("probe/classes").f64()[0]);
    const Record& rx = pf.require("probe/input");
    const Record& ry = pf.require("probe/output");

    // Fresh architecture, arbitrary init — every served value comes
    // from the artifact.
    Rng rng(12345);
    auto model = makeMiniResNet(classes, rng, 8);
    InferenceSession sess(*model, artifact);
    std::printf("adopted %zu packed weight matrices from %s\n",
                sess.layersSwitched(), artifact.c_str());

    std::vector<size_t> xshape(rx.shape.begin(), rx.shape.end());
    Tensor x(xshape);
    std::memcpy(x.data(), rx.f32().data(),
                rx.f32().size() * sizeof(float));
    Tensor y = sess.run(x);

    std::span<const float> want = ry.f32();
    if (y.size() != want.size()) {
        std::printf("FAIL: output shape differs (%zu vs %zu)\n",
                    y.size(), want.size());
        return 1;
    }
    size_t bad = 0;
    for (size_t i = 0; i < want.size(); ++i)
        if (std::memcmp(y.data() + i, &want[i], sizeof(float)) != 0)
            ++bad;
    if (bad) {
        std::printf("FAIL: %zu of %zu outputs differ from the "
                    "training process's integer backend\n",
                    bad, want.size());
        return 1;
    }
    std::printf("OK: %zu outputs bit-identical to the training "
                "process's integer backend\n", want.size());
    return 0;
}
