/**
 * @file
 * Domain example: recurrent networks (the paper's Table VI). Trains
 * a word-level LSTM language model on the synthetic Markov corpus
 * and MSQ-quantizes it, reporting validation perplexity before and
 * after — the PTB experiment at miniature scale.
 *
 * Build & run:  ./build/examples/rnn_quantization
 */

#include <cstdio>

#include "data/synth_seq.hh"
#include "metrics/seq_metrics.hh"
#include "nn/loss.hh"
#include "nn/optim.hh"
#include "nn/rnn_models.hh"
#include "nn/trainer.hh"
#include "util/rng.hh"

using namespace mixq;

namespace {

double
epoch(LstmLm& lm, const std::vector<LmBatch>& batches, Sgd& sgd,
      QatContext* qat)
{
    double loss = 0.0;
    for (const LmBatch& b : batches) {
        sgd.zeroGrad();
        Tensor logits = lm.forward(b.input, b.t, b.n, true);
        Tensor d;
        loss += softmaxCrossEntropy(logits, b.target, d);
        lm.backward(d);
        if (qat)
            loss += qat->addPenaltyGradsAndPenalty();
        sgd.step();
    }
    return loss / double(batches.size());
}

double
valPerplexity(LstmLm& lm, const std::vector<LmBatch>& batches)
{
    double nll = 0.0;
    size_t tokens = 0;
    for (const LmBatch& b : batches) {
        Tensor logits = lm.forward(b.input, b.t, b.n, false);
        Tensor d;
        nll += softmaxCrossEntropy(logits, b.target, d) *
               double(b.target.size());
        tokens += b.target.size();
    }
    return perplexity(nll, tokens);
}

} // namespace

int
main()
{
    const size_t vocab = 32;
    LmCorpus train_c = makeLmCorpus(vocab, 20000, 1);
    LmCorpus valid_c = makeLmCorpus(vocab, 6000, 2);
    auto train = makeLmBatches(train_c, 16, 8);
    auto valid = makeLmBatches(valid_c, 16, 8);

    Rng rng(3);
    LstmLm lm(vocab, 16, 48, 2, rng);
    std::printf("training 2-layer LSTM LM (vocab %zu)...\n", vocab);
    Sgd sgd(lm.params(), 0.5, 0.9, 1e-5);
    for (int e = 0; e < 8; ++e) {
        sgd.setLr(cosineLr(0.5, e, 8));
        double loss = epoch(lm, train, sgd, nullptr);
        std::printf("  epoch %d: train loss %.3f, valid PPL %.2f\n",
                    e, loss, valPerplexity(lm, valid));
    }
    double fp_ppl = valPerplexity(lm, valid);

    std::printf("\nMSQ 4-bit fine-tuning (gate matrices partitioned "
                "by row variance)...\n");
    QConfig qcfg;
    qcfg.scheme = QuantScheme::Mixed;
    qcfg.prSp2 = 2.0 / 3.0;
    QatContext qat(qcfg);
    qat.attach(lm.params());
    lm.setActQuant(4, true);
    Sgd fsgd(lm.params(), 0.1, 0.9, 1e-5);
    for (int e = 0; e < 5; ++e) {
        fsgd.setLr(cosineLr(0.1, e, 5));
        qat.epochUpdate();
        epoch(lm, train, fsgd, &qat);
    }
    qat.finalize();
    double q_ppl = valPerplexity(lm, valid);

    std::printf("\nvalidation perplexity: FP32 %.2f -> MSQ 4-bit "
                "%.2f (paper PTB: 110.89 -> 112.72)\n", fp_ppl,
                q_ppl);
    for (const auto& e : qat.entries()) {
        std::printf("  %-10s rows=%3zu sp2=%3zu (theta=%.2e)\n",
                    e.p->name.c_str(), e.p->qRows, e.proj.numSp2,
                    e.proj.threshold);
    }
    return 0;
}
