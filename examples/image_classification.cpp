/**
 * @file
 * Domain example: image classification (the workload of the paper's
 * Table II). Trains a MiniResNet on the synthetic CIFAR-10 stand-in,
 * then quantizes it three ways — P2, Fixed and MSQ — using the
 * ADMM-based training of Algorithm 1/2, and reports the accuracy
 * ladder.
 *
 * Build & run:  ./build/examples/image_classification
 */

#include <cstdio>

#include "data/synth_images.hh"
#include "infer/session.hh"
#include "nn/models.hh"
#include "nn/trainer.hh"
#include "util/rng.hh"
#include "util/table.hh"

using namespace mixq;

int
main()
{
    std::printf("training MiniResNet on %s...\n",
                imageTaskName(ImageTask::Easy));
    LabeledImages train = makeImageDataset(ImageTask::Easy, 600, 1);
    LabeledImages test = makeImageDataset(ImageTask::Easy, 300, 2);

    Rng rng(7);
    auto model = makeMiniResNet(train.numClasses, rng, 8);
    TrainCfg pre;
    pre.epochs = 8;
    pre.lr = 0.1;
    pre.verbose = true;
    trainClassifier(*model, train, pre);
    double fp = evalClassifier(*model, test);
    std::printf("FP32 baseline accuracy: %.2f%%\n\n", fp * 100);

    Table t({"Scheme", "Top-1 (%)", "vs FP32"});
    t.addRow({"FP32", Table::num(fp * 100, 2), "-"});

    struct Cfg { const char* label; QuantScheme s; double pr; };
    const Cfg cfgs[] = {
        {"P2 4-bit", QuantScheme::Pow2, 0.0},
        {"Fixed 4-bit", QuantScheme::Fixed, 0.0},
        {"MSQ 4-bit (2:1)", QuantScheme::Mixed, 2.0 / 3.0},
    };
    for (const Cfg& c : cfgs) {
        // Re-init an identical model and copy the pretrained weights
        // (every scheme fine-tunes from the same starting point).
        Rng r2(7);
        auto m2 = makeMiniResNet(train.numClasses, r2, 8);
        auto src = model->params();
        auto dst = m2->params();
        for (size_t i = 0; i < src.size(); ++i)
            dst[i]->w = src[i]->w;

        QConfig qcfg;
        qcfg.scheme = c.s;
        qcfg.prSp2 = c.pr;
        QatContext qat(qcfg);
        qat.attach(m2->params());
        TrainCfg fin;
        fin.epochs = 5;
        fin.lr = 0.02;
        trainClassifier(*m2, train, fin, &qat);
        double acc = evalClassifier(*m2, test);
        char delta[32];
        std::snprintf(delta, sizeof(delta), "%+.2f",
                      (acc - fp) * 100);
        t.addRow({c.label, Table::num(acc * 100, 2), delta});

        // Deploy the MSQ model: run the identical trained network
        // through all three inference backends. Int executes the
        // real shift-add integer pipeline (src/infer) and should
        // track the fake-quant eval accuracy to rescale rounding.
        if (c.s == QuantScheme::Mixed) {
            Table bt({"Backend", "Top-1 (%)"});
            InferenceSession sess(*m2, &qat, InferBackend::Float);
            const struct { const char* label; InferBackend b; }
            backends[] = {
                {"Float (proj. weights)", InferBackend::Float},
                {"FakeQuant (QAT eval)", InferBackend::FakeQuant},
                {"Int (shift-add)", InferBackend::Int},
            };
            for (const auto& be : backends) {
                sess.setBackend(be.b);
                double a = evalClassifier(*m2, test);
                bt.addRow({be.label, Table::num(a * 100, 2)});
            }
            bt.print("\nMSQ deploy backends (InferenceSession):");
        }
    }
    t.print("quantization ladder (ADMM fine-tuning, Algorithm 1/2):");
    std::printf("\nExpected shape: P2 loses the most; MSQ tracks "
                "Fixed while mapping 2/3 of each layer's rows onto "
                "the FPGA's LUT fabric; the Int backend matches "
                "FakeQuant through real integer arithmetic.\n");
    return 0;
}
