/**
 * @file
 * Quickstart: the MSQ pipeline on a single weight matrix in under a
 * minute of reading.
 *
 *   1. make some "trained" weights whose rows have mixed statistics;
 *   2. run Algorithm 2's variance partition + projection (MSQ);
 *   3. encode each row into its hardware format (DSP integers or
 *      SP2 shift pairs);
 *   4. run the result on the simulated heterogeneous accelerator and
 *      check it against plain integer math.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "compiler/runner.hh"
#include "quant/quantizer.hh"
#include "quant/sp2_codec.hh"
#include "util/rng.hh"

using namespace mixq;

int
main()
{
    // --- 1. A 12x64 weight matrix: half the rows tight Gaussian
    //        (SP2-friendly), half wide uniform (fixed-friendly).
    const size_t rows = 12, cols = 64;
    Rng rng(42);
    std::vector<float> w(rows * cols);
    for (size_t r = 0; r < rows; ++r) {
        for (size_t c = 0; c < cols; ++c) {
            w[r * cols + c] = r % 2 == 0
                ? float(rng.normal(0.0, 0.05))
                : float(rng.uniform(-0.4, 0.4));
        }
    }

    // --- 2. MSQ projection at 4 bits, SP2:Fixed = 2:1.
    QConfig cfg;
    cfg.scheme = QuantScheme::Mixed;
    cfg.bits = 4;
    cfg.prSp2 = QConfig::fractionFromRatio(2, 1);
    std::vector<float> wq(w.size());
    MatrixQuantResult res =
        quantizeMatrix(w.data(), wq.data(), rows, cols, cfg);
    std::printf("partitioned %zu rows: %zu -> SP2, %zu -> fixed "
                "(variance threshold %.2e)\n",
                rows, res.numSp2, rows - res.numSp2, res.threshold);
    for (size_t r = 0; r < rows; ++r) {
        std::printf("  row %2zu: %-5s alpha=%.4f\n", r,
                    toString(res.rowScheme[r]).c_str(),
                    res.rowAlpha[r]);
    }

    // --- 3. Hardware encodings + a quantized activation vector.
    Sp2Codec codec(cfg.bits);
    QuantizedGemm q;
    q.m = 3;
    q.k = cols;
    std::vector<size_t> frows, srows;
    for (size_t r = 0; r < rows; ++r)
        (res.rowScheme[r] == QuantScheme::Sp2 ? srows : frows)
            .push_back(r);
    q.nf = frows.size();
    q.ns = srows.size();
    for (size_t r : frows)
        for (size_t c = 0; c < cols; ++c)
            q.wF.push_back(int8_t(encodeFixed(wq[r * cols + c],
                                              res.rowAlpha[r],
                                              cfg.bits)));
    for (size_t r : srows)
        for (size_t c = 0; c < cols; ++c)
            q.wS.push_back(codec.encode(wq[r * cols + c],
                                        res.rowAlpha[r]));
    q.acts.resize(q.m * q.k);
    for (int8_t& a : q.acts)
        a = int8_t(rng.randint(0, 15)); // 4-bit unsigned activations

    // --- 4. Simulate on the optimal XC7Z020 design point and verify.
    const DesignPoint& dp = designPointByName("D1-3");
    RunStats stats;
    std::vector<int32_t> out = runGemmFunctional(q, dp, &stats);
    std::vector<int32_t> ref = referenceGemmInt(q);
    size_t mismatches = 0;
    for (size_t i = 0; i < out.size(); ++i)
        mismatches += out[i] != ref[i];
    std::printf("\nsimulated on %s (%s SP2:fixed lanes): %zu cycles, "
                "%zu instructions\n",
                dp.name.c_str(), dp.ratioLabel().c_str(),
                size_t(stats.cycles), stats.instructions);
    std::printf("bit-exact vs reference integer GEMM: %s\n",
                mismatches == 0 ? "yes" : "NO");
    return mismatches == 0 ? 0 : 1;
}
