/**
 * @file
 * Domain example: the full FPGA-centric co-design loop of the paper
 * (Sections V-VI) on a device of your choice —
 *
 *   characterize device -> design point (DSP pinned, LUT budget)
 *       -> partition ratio PR_SP2
 *       -> MSQ quantization training (Algorithm 2)
 *       -> deploy: simulate the published ResNet-18 shapes on the
 *          design point and report throughput/latency.
 *
 * Build & run:  ./build/examples/codesign_flow [device]
 *               (default XC7Z045; try XC7Z020 or XCZU5CG)
 */

#include <cstdio>
#include <string>

#include "compiler/model_zoo.hh"
#include "compiler/runner.hh"
#include "data/synth_images.hh"
#include "fpga/characterize.hh"
#include "nn/models.hh"
#include "nn/trainer.hh"
#include "util/rng.hh"

using namespace mixq;

int
main(int argc, char** argv)
{
    std::string dev_name = argc > 1 ? argv[1] : "XC7Z045";
    const FpgaDevice& dev = deviceByName(dev_name);

    // --- Step 1: resource characterization (Section V-A).
    size_t bat = dev.luts > 100000 ? 4 : 1;
    DesignPoint dp = characterize(dev, bat, 16);
    ResourceUsage use = estimateResources(dp, dev);
    ResourceUtil util = utilization(use, dev);
    std::printf("device %s: %zu LUT, %zu DSP\n", dev.name.c_str(),
                dev.luts, dev.dsps);
    std::printf("characterized design: Bat=%zu Blkin=%zu "
                "Blkout=%zu(fixed)+%zu(SP2), ratio %s\n",
                dp.bat, dp.blkIn, dp.blkFixed, dp.blkSp2,
                dp.ratioLabel().c_str());
    std::printf("estimated LUT %.0f (%.0f%%), DSP %.0f (%.0f%%), "
                "peak %.1f GOPS\n\n", use.luts, util.lut * 100,
                use.dsps, util.dsp * 100, dp.peakGops());

    // --- Step 2: MSQ training with the hardware-derived ratio.
    double pr = dp.sp2Fraction();
    std::printf("training MSQ model with PR_SP2 = %.3f "
                "(Algorithm 2)...\n", pr);
    LabeledImages train = makeImageDataset(ImageTask::Easy, 500, 3);
    LabeledImages test = makeImageDataset(ImageTask::Easy, 250, 4);
    Rng rng(9);
    auto model = makeMiniResNet(train.numClasses, rng, 8);
    TrainCfg pre;
    pre.epochs = 7;
    pre.lr = 0.1;
    trainClassifier(*model, train, pre);
    double fp = evalClassifier(*model, test);

    QConfig qcfg;
    qcfg.scheme = pr > 0.0 ? QuantScheme::Mixed : QuantScheme::Fixed;
    qcfg.prSp2 = pr;
    QatContext qat(qcfg);
    qat.attach(model->params());
    TrainCfg fin;
    fin.epochs = 4;
    fin.lr = 0.02;
    trainClassifier(*model, train, fin, &qat);
    double acc = evalClassifier(*model, test);
    std::printf("accuracy: FP32 %.2f%% -> MSQ 4-bit %.2f%% "
                "(%+.2f)\n\n", fp * 100, acc * 100,
                (acc - fp) * 100);

    // --- Step 3: deployment throughput on the published shapes.
    NetworkPerf perf = simulateNetwork(resnet18Spec(), dp);
    DesignPoint dsp_only = dp;
    dsp_only.blkSp2 = 0;
    NetworkPerf base = simulateNetwork(resnet18Spec(), dsp_only);
    std::printf("ResNet-18 (224x224) on %s:\n", dev.name.c_str());
    std::printf("  DSP-only  : %7.1f GOPS, %6.1f ms/image\n",
                base.gops, base.latencyMs);
    std::printf("  MSQ design: %7.1f GOPS, %6.1f ms/image "
                "(%.2fx speedup, %.0f%% PE utilization)\n",
                perf.gops, perf.latencyMs, perf.gops / base.gops,
                perf.peUtil * 100);
    return 0;
}
