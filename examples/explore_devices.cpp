/**
 * @file
 * Domain example: design-space exploration across the whole device
 * table (the Fig. 2 -> Section V-A pipeline, beyond the two boards
 * the paper evaluates). For every device: characterize, estimate
 * resources, and simulate ResNet-18 — showing how the optimal
 * SP2 share follows the LUT/DSP ratio.
 *
 * Build & run:  ./build/examples/explore_devices
 */

#include <cstdio>

#include "compiler/model_zoo.hh"
#include "compiler/runner.hh"
#include "fpga/characterize.hh"
#include "util/table.hh"

using namespace mixq;

int
main()
{
    std::printf("design-space exploration: optimal MSQ design per "
                "device, ResNet-18 throughput\n\n");
    Table t({"Device", "LUT/DSP", "Bat", "Ratio (fixed:SP2)",
             "PR_SP2", "Peak GOPS", "ResNet-18 GOPS", "Speedup vs "
             "DSP-only"});
    for (const FpgaDevice& dev : allDevices()) {
        if (dev.name == "XCZU3EG")
            continue; // same silicon as XCZU3CG
        size_t bat = dev.luts > 100000 ? 4 : 1;
        DesignPoint dp = characterize(dev, bat, 16);
        NetworkPerf perf = simulateNetwork(resnet18Spec(), dp);
        DesignPoint base = dp;
        base.blkSp2 = 0;
        NetworkPerf bperf = simulateNetwork(resnet18Spec(), base);
        t.addRow({dev.name, Table::num(dev.lutPerDsp(), 1),
                  Table::integer(long(bat)), dp.ratioLabel(),
                  Table::num(dp.sp2Fraction(), 2),
                  Table::num(dp.peakGops(), 1),
                  Table::num(perf.gops, 1),
                  Table::num(perf.gops / bperf.gops, 2) + "x"});
    }
    t.print();
    std::printf("\nReading: LUT-rich parts (Zynq-7000, ~240 LUT/DSP) "
                "sustain SP2 shares of 1:1.5-1:2 and gain >2x; "
                "DSP-rich UltraScale+ parts saturate their LUT "
                "budget early and gain less — exactly the paper's "
                "motivation for deriving PR_SP2 from the device.\n");
    return 0;
}
