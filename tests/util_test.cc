/** @file Unit tests for src/util. */

#include <gtest/gtest.h>

#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace mixq {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 50; ++i) {
        if (a.randint(0, 1000) == b.randint(0, 1000))
            ++same;
    }
    EXPECT_LT(same, 10);
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniform(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, RandintInclusiveBounds)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.randint(3, 5);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 5);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments)
{
    Rng rng(11);
    double s = 0.0, s2 = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double v = rng.normal(1.0, 2.0);
        s += v;
        s2 += v * v;
    }
    double mean = s / n;
    double var = s2 / n - mean * mean;
    EXPECT_NEAR(mean, 1.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, CategoricalFollowsWeights)
{
    Rng rng(13);
    std::vector<double> w = {1.0, 0.0, 3.0};
    size_t counts[3] = {0, 0, 0};
    for (int i = 0; i < 4000; ++i)
        ++counts[rng.categorical(w)];
    EXPECT_EQ(counts[1], 0u);
    EXPECT_GT(counts[2], counts[0]);
}

TEST(Rng, ShufflePermutes)
{
    Rng rng(17);
    std::vector<size_t> idx = {0, 1, 2, 3, 4, 5, 6, 7};
    std::vector<size_t> orig = idx;
    rng.shuffle(idx);
    std::vector<size_t> sorted = idx;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, orig);
}

TEST(Stats, MeanVariance)
{
    std::vector<float> xs = {1.0f, 2.0f, 3.0f, 4.0f};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
    EXPECT_DOUBLE_EQ(variance(xs), 1.25);
}

TEST(Stats, EmptySpans)
{
    std::vector<float> xs;
    EXPECT_DOUBLE_EQ(mean(xs), 0.0);
    EXPECT_DOUBLE_EQ(variance(xs), 0.0);
    EXPECT_DOUBLE_EQ(maxAbs(xs), 0.0);
}

TEST(Stats, MaxAbs)
{
    std::vector<float> xs = {-3.0f, 2.0f, 1.0f};
    EXPECT_DOUBLE_EQ(maxAbs(xs), 3.0);
}

TEST(Stats, PercentileInterpolates)
{
    std::vector<float> xs = {0.0f, 10.0f};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
}

TEST(Stats, HistogramBinsAndFractions)
{
    Histogram h(0.0, 1.0, 4);
    h.add(0.1);
    h.add(0.1);
    h.add(0.9);
    h.add(2.0); // clamped into the last bin
    EXPECT_EQ(h.total, 4u);
    EXPECT_EQ(h.bins[0], 2u);
    EXPECT_EQ(h.bins[3], 2u);
    EXPECT_DOUBLE_EQ(h.frac(0), 0.5);
    EXPECT_DOUBLE_EQ(h.center(0), 0.125);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"a", "bb"});
    t.addRow({"1", "2"});
    t.addRule();
    t.addRow({"333", "4"});
    std::string s = t.str();
    EXPECT_NE(s.find("| a   | bb |"), std::string::npos);
    EXPECT_NE(s.find("| 333 | 4  |"), std::string::npos);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::withDelta(92.5, -0.3, 1), "92.5 (-0.3)");
    EXPECT_EQ(Table::withDelta(92.5, 0.3, 1), "92.5 (+0.3)");
    EXPECT_EQ(Table::integer(42), "42");
    EXPECT_EQ(Table::pct(0.725, 1), "72.5%");
}

} // namespace
} // namespace mixq
