/** @file Training loop and QAT (Algorithm 1/2) tests. */

#include <gtest/gtest.h>

#include <cmath>

#include "data/synth_images.hh"
#include "nn/models.hh"
#include "util/rng.hh"
#include "nn/trainer.hh"
#include "quant/scheme.hh"

namespace mixq {
namespace {

LabeledImages
tinySet(size_t n, uint64_t seed)
{
    return makeImageDataset(ImageTask::Easy, n, seed);
}

TEST(Trainer, Fp32TrainingImprovesAccuracy)
{
    Rng rng(1);
    auto model = makeMiniResNet(10, rng, 4);
    LabeledImages train = tinySet(400, 1);
    LabeledImages test = tinySet(150, 2);
    double acc0 = evalClassifier(*model, test);
    TrainCfg cfg;
    cfg.epochs = 6;
    cfg.batch = 32;
    cfg.lr = 0.1;
    trainClassifier(*model, train, cfg);
    double acc1 = evalClassifier(*model, test);
    EXPECT_GT(acc1, acc0 + 0.2);
    EXPECT_GT(acc1, 0.35);
}

TEST(Trainer, TopKAccuracyMonotoneInK)
{
    Rng rng(2);
    auto model = makeTinyConvNet(10, rng);
    LabeledImages test = tinySet(100, 3);
    double t1 = evalClassifierTopK(*model, test, 1);
    double t5 = evalClassifierTopK(*model, test, 5);
    double t10 = evalClassifierTopK(*model, test, 10);
    EXPECT_LE(t1, t5);
    EXPECT_LE(t5, t10);
    EXPECT_DOUBLE_EQ(t10, 1.0);
}

TEST(Qat, FinalizeLandsWeightsOnGrid)
{
    Rng rng(3);
    auto model = makeTinyConvNet(10, rng);
    LabeledImages train = tinySet(200, 4);
    TrainCfg pre;
    pre.epochs = 2;
    trainClassifier(*model, train, pre);

    QConfig qcfg;
    qcfg.scheme = QuantScheme::Mixed;
    qcfg.bits = 4;
    qcfg.prSp2 = 0.5;
    QatContext qat(qcfg);
    qat.attach(model->params());
    TrainCfg cfg;
    cfg.epochs = 3;
    cfg.lr = 0.02;
    trainClassifier(*model, train, cfg, &qat);
    EXPECT_TRUE(qat.finalized());

    auto fixed_mags = fixedMagnitudes(4);
    auto sp2_mags = sp2Magnitudes(4);
    for (const auto& e : qat.entries()) {
        size_t rows = e.p->qRows, cols = e.p->qCols;
        for (size_t r = 0; r < rows; ++r) {
            const auto& mags =
                e.proj.rowScheme[r] == QuantScheme::Sp2 ? sp2_mags
                                                        : fixed_mags;
            double alpha = e.proj.rowAlpha[r];
            for (size_t c = 0; c < cols; ++c) {
                double t =
                    std::fabs(e.p->w[r * cols + c]) / alpha;
                bool on_grid = false;
                for (double m : mags)
                    on_grid |= std::fabs(t - m) < 1e-4;
                EXPECT_TRUE(on_grid)
                    << e.p->name << " r" << r << " c" << c;
            }
        }
    }
}

TEST(Qat, MixedPartitionRespectsRatio)
{
    Rng rng(4);
    auto model = makeTinyConvNet(10, rng);
    QConfig qcfg;
    qcfg.scheme = QuantScheme::Mixed;
    qcfg.prSp2 = 2.0 / 3.0;
    QatContext qat(qcfg);
    qat.attach(model->params());
    qat.finalize();
    for (const auto& e : qat.entries()) {
        size_t expect = size_t(llround(double(e.p->qRows) * 2.0 / 3.0));
        EXPECT_EQ(e.proj.numSp2, expect) << e.p->name;
    }
}

TEST(Qat, PenaltyDecreasesAcrossTraining)
{
    Rng rng(5);
    auto model = makeTinyConvNet(10, rng);
    LabeledImages train = tinySet(200, 6);
    QConfig qcfg;
    qcfg.scheme = QuantScheme::Fixed;
    qcfg.rho = 1e-2;
    QatContext qat(qcfg);
    qat.attach(model->params());
    double pen0 = qat.penaltyTotal();
    TrainCfg cfg;
    cfg.epochs = 4;
    cfg.lr = 0.03;
    trainClassifier(*model, train, cfg, &qat);
    // After finalize, W == proj(W); with U ~= residual history, the
    // pre-finalize penalty must have shrunk.
    (void)pen0;
    // Re-attach to measure distance of the trained weights to the set.
    auto params = model->params();
    double dist = 0.0;
    for (Param* p : params) {
        if (!p->quantizable())
            continue;
        std::vector<float> proj(p->w.size());
        QConfig c2 = qcfg;
        quantizeMatrix(p->w.data(), proj.data(), p->qRows, p->qCols,
                       c2);
        dist += quantMse(p->w.span(),
                         std::span<const float>(proj.data(),
                                                proj.size()));
    }
    EXPECT_NEAR(dist, 0.0, 1e-10); // finalized = exactly on the set
}

TEST(Qat, QuantizedModelStillAccurate)
{
    Rng rng(6);
    auto model = makeMiniResNet(10, rng, 4);
    LabeledImages train = tinySet(400, 7);
    LabeledImages test = tinySet(150, 8);
    TrainCfg pre;
    pre.epochs = 6;
    pre.lr = 0.1;
    trainClassifier(*model, train, pre);
    double acc_fp = evalClassifier(*model, test);

    QConfig qcfg;
    qcfg.scheme = QuantScheme::Mixed;
    qcfg.prSp2 = 2.0 / 3.0;
    QatContext qat(qcfg);
    qat.attach(model->params());
    TrainCfg cfg;
    cfg.epochs = 4;
    cfg.lr = 0.02;
    trainClassifier(*model, train, cfg, &qat);
    double acc_q = evalClassifier(*model, test);
    EXPECT_GT(acc_q, acc_fp - 0.15);
}

TEST(HardQuantize, ProjectsEveryQuantizableParam)
{
    Rng rng(7);
    auto model = makeTinyConvNet(10, rng);
    QConfig qcfg;
    qcfg.scheme = QuantScheme::Fixed;
    auto results = hardQuantize(model->params(), qcfg);
    size_t quantizable = 0;
    for (Param* p : model->params())
        quantizable += p->quantizable();
    EXPECT_EQ(results.size(), quantizable);
}

TEST(Models, BuildersProduceTrainableShapes)
{
    Rng rng(8);
    auto resnet = makeMiniResNet(10, rng);
    auto mobile = makeMiniMobileNet(10, rng);
    Tensor x = Tensor::randn({2, 3, 12, 12}, rng, 1.0);
    EXPECT_EQ(resnet->forward(x, false).shape(),
              (std::vector<size_t>{2, 10}));
    EXPECT_EQ(mobile->forward(x, false).shape(),
              (std::vector<size_t>{2, 10}));
    EXPECT_GT(numParams(resnet->params()), 1000u);
    EXPECT_GT(numParams(mobile->params()), 500u);
}

} // namespace
} // namespace mixq
