/** @file GEMM lowering tests: plans, channel splits, token wiring. */

#include <gtest/gtest.h>

#include <map>

#include "compiler/tiler.hh"
#include "fpga/design_point.hh"

namespace mixq {
namespace {

TEST(SplitChannels, ProportionalToLanes)
{
    const DesignPoint& d23 = designPointByName("D2-3"); // 16:32
    auto [nf, ns] = splitChannels(d23, 96);
    EXPECT_EQ(nf, 32u);
    EXPECT_EQ(ns, 64u);
}

TEST(SplitChannels, DspOnlyDesignGetsEverything)
{
    const DesignPoint& d11 = designPointByName("D1-1");
    auto [nf, ns] = splitChannels(d11, 100);
    EXPECT_EQ(nf, 100u);
    EXPECT_EQ(ns, 0u);
}

TEST(SplitChannels, TinyLayerKeepsFixedCoreBusy)
{
    const DesignPoint& d23 = designPointByName("D2-3");
    auto [nf, ns] = splitChannels(d23, 1);
    EXPECT_EQ(nf + ns, 1u);
    EXPECT_GE(nf, 1u);
}

TEST(PlanGemm, TileCounts)
{
    const DesignPoint& dp = designPointByName("D1-3"); // 1/16/16/24
    GemmTilePlan p = planGemm(dp, 100, 27, 26, 38, 0);
    EXPECT_EQ(p.mTiles, 100u);     // bat = 1
    EXPECT_EQ(p.kTiles, 2u);       // ceil(27/16)
    EXPECT_EQ(p.nfTiles, 2u);      // ceil(26/16)
    EXPECT_EQ(p.nsTiles, 2u);      // ceil(38/24)
    EXPECT_EQ(p.nTiles, 2u);
    EXPECT_EQ(p.mGroup, 1u);       // functional
}

TEST(PlanGemm, MGroupBoundsInstructionCount)
{
    const DesignPoint& dp = designPointByName("D2-3");
    GemmTilePlan p = planGemm(dp, 100000, 512, 300, 600, 4096);
    Program prog = emitGemm(dp, p);
    EXPECT_LE(prog.totalInstructions(), 4096u * 2);
    EXPECT_GT(p.mGroup, 1u);
}

TEST(PlanGemm, CoreImbalanceShowsInTileCounts)
{
    // All channels on SP2 with a small fixed share: nTiles follows
    // the slower core (the paper's under-utilization argument).
    const DesignPoint& dp = designPointByName("D2-2"); // 16:16
    GemmTilePlan p = planGemm(dp, 64, 64, 8, 120, 0);
    EXPECT_EQ(p.nfTiles, 1u);
    EXPECT_EQ(p.nsTiles, 8u);
    EXPECT_EQ(p.nTiles, 8u);
}

TEST(EmitGemm, TokenPushesCoverPops)
{
    const DesignPoint& dp = designPointByName("D1-3");
    GemmTilePlan p = planGemm(dp, 40, 50, 20, 30, 0);
    Program prog = emitGemm(dp, p);
    std::map<Sem, long> balance;
    auto tally = [&](const std::vector<Instruction>& q) {
        for (const Instruction& i : q) {
            for (const TokenOp& t : i.pushes)
                balance[t.sem] += t.count;
            for (const TokenOp& t : i.pops)
                balance[t.sem] -= t.count;
        }
    };
    tally(prog.load);
    tally(prog.compute);
    tally(prog.store);
    for (const auto& [sem, b] : balance)
        EXPECT_GE(b, 0) << toString(sem);
    // Every ALU'd tile is stored exactly once.
    EXPECT_EQ(balance[Sem::C2S], 0);
}

TEST(EmitGemm, QueueStructure)
{
    const DesignPoint& dp = designPointByName("D1-2"); // 16:16
    GemmTilePlan p = planGemm(dp, 4, 16, 16, 16, 0);
    Program prog = emitGemm(dp, p);
    // nTiles = 1: loads = wgtF + wgtS + 4 input groups.
    EXPECT_EQ(prog.load.size(), 6u);
    // compute = (gemm + alu) per m tile; store = 1 per m tile.
    EXPECT_EQ(prog.compute.size(), 8u);
    EXPECT_EQ(prog.store.size(), 4u);
}

TEST(EmitGemm, FirstGemmWaitsForWeights)
{
    const DesignPoint& dp = designPointByName("D1-2");
    GemmTilePlan p = planGemm(dp, 4, 16, 16, 16, 0);
    Program prog = emitGemm(dp, p);
    const Instruction& g0 = prog.compute[0];
    ASSERT_EQ(g0.pops.size(), 1u);
    EXPECT_EQ(g0.pops[0].sem, Sem::L2C);
    EXPECT_EQ(g0.pops[0].count, 3u); // wgtF + wgtS + input
    const Instruction& g1 = prog.compute[2];
    EXPECT_EQ(g1.pops[0].count, 1u); // only its input
}

TEST(EmitGemm, SkipsIdleCoreLoads)
{
    const DesignPoint& dp = designPointByName("D2-2");
    // Fixed core runs out of tiles after 1; SP2 needs 4.
    GemmTilePlan p = planGemm(dp, 8, 16, 16, 64, 0);
    Program prog = emitGemm(dp, p);
    size_t wf_loads = 0, ws_loads = 0;
    for (const Instruction& i : prog.load) {
        wf_loads += i.op == Opcode::Load && i.buf == BufKind::WgtFixed;
        ws_loads += i.op == Opcode::Load && i.buf == BufKind::WgtSp2;
    }
    EXPECT_EQ(wf_loads, 1u);
    EXPECT_EQ(ws_loads, 4u);
}

TEST(EmitGemm, BufferFootprintsMatchPlan)
{
    const DesignPoint& dp = designPointByName("D1-3");
    GemmTilePlan p = planGemm(dp, 16, 64, 16, 24, 0);
    Program prog = emitGemm(dp, p);
    for (const Instruction& i : prog.load) {
        if (i.op != Opcode::Load)
            continue;
        size_t cap = i.buf == BufKind::Input ? p.inputBufRows()
                                             : p.wgtBufRows();
        EXPECT_LE(i.sramRow + i.rows, cap);
    }
}

} // namespace
} // namespace mixq
