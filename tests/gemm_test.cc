/** @file GEMM kernel, backend-dispatch, and im2col/col2im tests. */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "nn/gemm.hh"
#include "nn/gemm_backend.hh"
#include "util/rng.hh"

namespace mixq {
namespace {

std::vector<float>
randVec(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (float& x : v)
        x = float(rng.normal(0.0, 1.0));
    return v;
}

void
naiveGemm(const float* a, const float* b, float* c, size_t m, size_t n,
          size_t k, bool ta, bool tb)
{
    for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < n; ++j) {
            double s = 0.0;
            for (size_t p = 0; p < k; ++p) {
                float av = ta ? a[p * m + i] : a[i * k + p];
                float bv = tb ? b[j * k + p] : b[p * n + j];
                s += double(av) * double(bv);
            }
            c[i * n + j] = float(s);
        }
    }
}

TEST(Gemm, MatchesNaive)
{
    size_t m = 7, n = 5, k = 9;
    auto a = randVec(m * k, 1);
    auto b = randVec(k * n, 2);
    std::vector<float> c1(m * n), c2(m * n);
    gemm(a.data(), b.data(), c1.data(), m, n, k);
    naiveGemm(a.data(), b.data(), c2.data(), m, n, k, false, false);
    for (size_t i = 0; i < c1.size(); ++i)
        EXPECT_NEAR(c1[i], c2[i], 1e-4);
}

TEST(Gemm, BTransposedMatchesNaive)
{
    size_t m = 4, n = 6, k = 8;
    auto a = randVec(m * k, 3);
    auto b = randVec(n * k, 4);
    std::vector<float> c1(m * n), c2(m * n);
    gemmBT(a.data(), b.data(), c1.data(), m, n, k);
    naiveGemm(a.data(), b.data(), c2.data(), m, n, k, false, true);
    for (size_t i = 0; i < c1.size(); ++i)
        EXPECT_NEAR(c1[i], c2[i], 1e-4);
}

TEST(Gemm, ATransposedAccumulates)
{
    size_t m = 5, n = 4, k = 6;
    auto a = randVec(k * m, 5);
    auto b = randVec(k * n, 6);
    std::vector<float> c1(m * n, 1.0f), c2(m * n);
    gemmATAcc(a.data(), b.data(), c1.data(), m, n, k);
    naiveGemm(a.data(), b.data(), c2.data(), m, n, k, true, false);
    for (size_t i = 0; i < c1.size(); ++i)
        EXPECT_NEAR(c1[i], c2[i] + 1.0f, 1e-4);
}

TEST(Gemm, LargeSizeTriggersParallelPath)
{
    size_t m = 64, n = 48, k = 32; // above the OpenMP threshold
    auto a = randVec(m * k, 7);
    auto b = randVec(k * n, 8);
    std::vector<float> c1(m * n), c2(m * n);
    gemm(a.data(), b.data(), c1.data(), m, n, k);
    naiveGemm(a.data(), b.data(), c2.data(), m, n, k, false, false);
    for (size_t i = 0; i < c1.size(); ++i)
        EXPECT_NEAR(c1[i], c2[i], 1e-3);
}

// ------------------------------------------------------------------
// Backend dispatch and blocked-vs-naive equivalence.
// ------------------------------------------------------------------

// Shapes chosen to cross every dispatch regime: square, skinny in m
// (below kGemmMR), skinny in n (below kGemmNR), fat/tall rectangles,
// tile-edge remainders, and sizes straddling kGemmBlockThreshold.
struct Shape
{
    size_t m, n, k;
};

const Shape kShapes[] = {
    {1, 1, 1},      {3, 17, 5},    {6, 16, 256},  {7, 17, 33},
    {2, 300, 80},   {300, 2, 80},  {64, 64, 4},   {13, 150, 40},
    {150, 13, 40},  {96, 96, 96},  {25, 25, 27},  {26, 26, 26},
    {61, 127, 253},
};

void
expectNear(const std::vector<float>& got, const std::vector<float>& want)
{
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
        double tol = 1e-4 * (1.0 + std::fabs(double(want[i])));
        EXPECT_NEAR(got[i], want[i], tol) << "index " << i;
    }
}

TEST(GemmBackend, DispatchRules)
{
    ASSERT_EQ(forcedGemmKernel(), GemmKernel::Auto);
    // Exactly at the threshold stays naive; one past it goes blocked.
    // 16384 = 32*32*16.
    EXPECT_EQ(chooseGemmKernel(32, 32, 16), GemmKernel::Naive);
    EXPECT_EQ(chooseGemmKernel(32, 32, 17), GemmKernel::Blocked);
    // Row-skinny shapes stay naive no matter the volume; column-
    // skinny ones go blocked (measured faster there).
    EXPECT_EQ(chooseGemmKernel(kGemmMR - 1, 512, 512),
              GemmKernel::Naive);
    EXPECT_EQ(chooseGemmKernel(512, kGemmNR - 1, 512),
              GemmKernel::Blocked);
    EXPECT_EQ(chooseGemmKernel(kGemmMR, kGemmNR, 512),
              GemmKernel::Blocked);
    // Forcing overrides the heuristic.
    setGemmKernel(GemmKernel::Blocked);
    EXPECT_EQ(activeGemmKernel(1, 1, 1), GemmKernel::Blocked);
    setGemmKernel(GemmKernel::Auto);
    EXPECT_EQ(activeGemmKernel(1, 1, 1), GemmKernel::Naive);
}

TEST(GemmBackend, BlockedMatchesNaive)
{
    uint64_t seed = 100;
    for (const Shape& s : kShapes) {
        auto a = randVec(s.m * s.k, seed++);
        auto b = randVec(s.k * s.n, seed++);
        auto init = randVec(s.m * s.n, seed++);
        std::vector<float> c1 = init, c2 = init;
        gemmNaiveAcc(a.data(), b.data(), c1.data(), s.m, s.n, s.k);
        gemmBlockedAcc(a.data(), b.data(), c2.data(), s.m, s.n, s.k);
        expectNear(c2, c1);
    }
}

TEST(GemmBackend, BlockedBTMatchesNaive)
{
    uint64_t seed = 200;
    for (const Shape& s : kShapes) {
        auto a = randVec(s.m * s.k, seed++);
        auto b = randVec(s.n * s.k, seed++);
        auto init = randVec(s.m * s.n, seed++);
        std::vector<float> c1 = init, c2 = init;
        gemmNaiveBTAcc(a.data(), b.data(), c1.data(), s.m, s.n, s.k);
        gemmBlockedBTAcc(a.data(), b.data(), c2.data(), s.m, s.n, s.k);
        expectNear(c2, c1);
    }
}

TEST(GemmBackend, BlockedATMatchesNaive)
{
    uint64_t seed = 300;
    for (const Shape& s : kShapes) {
        auto a = randVec(s.k * s.m, seed++);
        auto b = randVec(s.k * s.n, seed++);
        auto init = randVec(s.m * s.n, seed++);
        std::vector<float> c1 = init, c2 = init;
        gemmNaiveATAcc(a.data(), b.data(), c1.data(), s.m, s.n, s.k);
        gemmBlockedATAcc(a.data(), b.data(), c2.data(), s.m, s.n, s.k);
        expectNear(c2, c1);
    }
}

TEST(GemmBackend, DispatchedEntryPointsMatchForcedKernels)
{
    // The public gemm() must give the same answer whichever kernel
    // the dispatcher lands on, including just past the threshold.
    size_t m = 32, n = 32, k = 17;
    auto a = randVec(m * k, 400);
    auto b = randVec(k * n, 401);
    std::vector<float> cAuto(m * n), cNaive(m * n), cBlocked(m * n);
    setGemmKernel(GemmKernel::Auto);
    gemm(a.data(), b.data(), cAuto.data(), m, n, k);
    setGemmKernel(GemmKernel::Naive);
    gemm(a.data(), b.data(), cNaive.data(), m, n, k);
    setGemmKernel(GemmKernel::Blocked);
    gemm(a.data(), b.data(), cBlocked.data(), m, n, k);
    setGemmKernel(GemmKernel::Auto);
    expectNear(cNaive, cAuto);
    expectNear(cBlocked, cAuto);
}

TEST(GemmBackend, LargeBlockedCrossesEveryBlockBoundary)
{
    // Big enough that MC/KC/NC all wrap with remainders: exercises
    // panel repacking and edge tiles in one shot.
    size_t m = 80, n = 1040, k = 260;
    auto a = randVec(m * k, 500);
    auto b = randVec(k * n, 501);
    std::vector<float> c1(m * n, 0.0f), c2(m * n, 0.0f);
    gemmNaiveAcc(a.data(), b.data(), c1.data(), m, n, k);
    gemmBlockedAcc(a.data(), b.data(), c2.data(), m, n, k);
    expectNear(c2, c1);
}

TEST(GemmBackend, BlockedMatchesNaiveMultiThreaded)
{
    // The blocked driver packs B on the calling thread and reads the
    // panel from OpenMP workers; this regressed once when the packed
    // buffer was resolved per-thread. Force >1 threads so the test
    // bites even when CI sets OMP_NUM_THREADS=1 or the machine
    // reports one core. m spans 5 row blocks (MC = 72) so dynamic
    // scheduling can't hand every chunk to the master thread — a
    // non-master worker is all but guaranteed to run one.
#ifdef _OPENMP
    int prev = omp_get_max_threads();
    omp_set_num_threads(4);
#endif
    size_t m = 300, n = 1040, k = 260;
    auto a = randVec(m * k, 600);
    auto b = randVec(k * n, 601);
    std::vector<float> c1(m * n, 0.0f), c2(m * n, 0.0f);
    gemmNaiveAcc(a.data(), b.data(), c1.data(), m, n, k);
    gemmBlockedAcc(a.data(), b.data(), c2.data(), m, n, k);
#ifdef _OPENMP
    omp_set_num_threads(prev);
#endif
    expectNear(c2, c1);
}

// ------------------------------------------------------------------
// Pre-packed weight plans (PackedMat).
// ------------------------------------------------------------------

TEST(GemmPacked, PackedBMatchesNaiveAcrossShapes)
{
    // Both storage orientations of op(B), against the naive kernels
    // as ground truth, across the same dispatch-regime shapes as the
    // blocked tests (the packed path falls back to naive below the
    // dispatch threshold, so both regimes are covered).
    uint64_t seed = 700;
    for (const Shape& s : kShapes) {
        auto a = randVec(s.m * s.k, seed++);
        auto b = randVec(s.k * s.n, seed++);
        auto init = randVec(s.m * s.n, seed++);

        std::vector<float> c1 = init, c2 = init;
        gemmNaiveAcc(a.data(), b.data(), c1.data(), s.m, s.n, s.k);
        PackedMat plain;
        plain.ensureB(b.data(), s.k, s.n, false, 1);
        gemmPackedBAcc(a.data(), plain, c2.data(), s.m, s.n, s.k);
        expectNear(c2, c1);

        auto bt = randVec(s.n * s.k, seed++); // stored [N x K]
        std::vector<float> c3 = init, c4 = init;
        gemmNaiveBTAcc(a.data(), bt.data(), c3.data(), s.m, s.n, s.k);
        PackedMat transposed;
        transposed.ensureB(bt.data(), s.k, s.n, true, 1);
        gemmPackedBAcc(a.data(), transposed, c4.data(), s.m, s.n,
                       s.k);
        expectNear(c4, c3);
    }
}

TEST(GemmPacked, PackedAMatchesNaiveAcrossShapes)
{
    uint64_t seed = 800;
    for (const Shape& s : kShapes) {
        auto b = randVec(s.k * s.n, seed++);
        auto init = randVec(s.m * s.n, seed++);

        auto a = randVec(s.m * s.k, seed++);
        std::vector<float> c1 = init, c2 = init;
        gemmNaiveAcc(a.data(), b.data(), c1.data(), s.m, s.n, s.k);
        PackedMat plain;
        plain.ensureA(a.data(), s.m, s.k, false, 1);
        gemmPackedAAcc(plain, b.data(), c2.data(), s.m, s.n, s.k);
        expectNear(c2, c1);

        auto at = randVec(s.k * s.m, seed++); // stored [K x M]
        std::vector<float> c3 = init, c4 = init;
        gemmNaiveATAcc(at.data(), b.data(), c3.data(), s.m, s.n, s.k);
        PackedMat transposed;
        transposed.ensureA(at.data(), s.m, s.k, true, 1);
        gemmPackedAAcc(transposed, b.data(), c4.data(), s.m, s.n,
                       s.k);
        expectNear(c4, c3);
    }
}

TEST(GemmPacked, RelaxedDispatchRules)
{
    // Pre-packed plans drop the per-call skinny-m rule: with the
    // pack already paid, only sub-threshold volumes fall back to
    // naive. 16384 = 32*32*16.
    ASSERT_EQ(forcedGemmKernel(), GemmKernel::Auto);
    EXPECT_EQ(activePackedGemmKernel(32, 32, 16), GemmKernel::Naive);
    EXPECT_EQ(activePackedGemmKernel(32, 32, 17), GemmKernel::Blocked);
    // The shape the per-call path sends to naive because of m alone
    // stays blocked through a plan.
    EXPECT_EQ(activeGemmKernel(kGemmMR - 1, 512, 512),
              GemmKernel::Naive);
    EXPECT_EQ(activePackedGemmKernel(kGemmMR - 1, 512, 512),
              GemmKernel::Blocked);
    // Forcing still overrides.
    setGemmKernel(GemmKernel::Naive);
    EXPECT_EQ(activePackedGemmKernel(kGemmMR - 1, 512, 512),
              GemmKernel::Naive);
    setGemmKernel(GemmKernel::Auto);
}

TEST(GemmPacked, MatchesServicingKernelBitExact)
{
    // The packed-path contract: bit-identical to whichever kernel
    // activePackedGemmKernel() picks — the naive kernel below the
    // volume threshold, the blocked kernel above it (including
    // skinny-m shapes the *per-call* path would send to naive: the
    // plan shares the blocked sweep/panel layout exactly).
    struct Case
    {
        size_t m, n, k;
    };
    const Case cases[] = {
        {4, 8, 16},      // sub-threshold: naive regime
        {61, 300, 270},  // blocked regime
        {4, 1024, 256},  // skinny-m, relaxed onto the blocked kernel
    };
    uint64_t seed = 900;
    for (const Case& s : cases) {
        SCOPED_TRACE(testing::Message()
                     << s.m << "x" << s.n << "x" << s.k);
        auto a = randVec(s.m * s.k, seed++);
        auto bt = randVec(s.n * s.k, seed++);
        std::vector<float> c1(s.m * s.n, 0.0f), c2(s.m * s.n);
        if (activePackedGemmKernel(s.m, s.n, s.k) == GemmKernel::Naive)
            gemmNaiveBTAcc(a.data(), bt.data(), c1.data(), s.m, s.n,
                           s.k);
        else
            gemmBlockedBTAcc(a.data(), bt.data(), c1.data(), s.m, s.n,
                             s.k);
        PackedMat plan;
        plan.ensureB(bt.data(), s.k, s.n, true, 1);
        gemmPackedB(a.data(), plan, c2.data(), s.m, s.n, s.k);
        for (size_t i = 0; i < c1.size(); ++i)
            ASSERT_EQ(c1[i], c2[i]) << "index " << i;
    }
}

TEST(GemmPacked, EnsureRepacksOnlyOnVersionChange)
{
    // Force the blocked path so results come from the packed panels
    // (the naive fallback reads the live source and would mask
    // staleness).
    setGemmKernel(GemmKernel::Blocked);
    size_t m = 8, n = 32, k = 16;
    auto a = randVec(m * k, 1000);
    auto b = randVec(k * n, 1001);

    PackedMat plan;
    plan.ensureB(b.data(), k, n, false, 1);
    EXPECT_EQ(plan.packCount(), 1u);
    std::vector<float> before(m * n, 0.0f);
    gemmPackedBAcc(a.data(), plan, before.data(), m, n, k);

    // Mutate the source without bumping the version: ensure() is a
    // no-op and the plan keeps serving the old weights. This is the
    // documented contract, not a bug — Param::noteUpdated() is what
    // turns a mutation into a repack.
    for (float& v : b)
        v += 1.0f;
    plan.ensureB(b.data(), k, n, false, 1);
    EXPECT_EQ(plan.packCount(), 1u);
    std::vector<float> stale(m * n, 0.0f);
    gemmPackedBAcc(a.data(), plan, stale.data(), m, n, k);
    expectNear(stale, before);

    // Bump the version: repacks, and the result tracks the update.
    plan.ensureB(b.data(), k, n, false, 2);
    EXPECT_EQ(plan.packCount(), 2u);
    std::vector<float> fresh(m * n, 0.0f);
    std::vector<float> want(m * n, 0.0f);
    gemmPackedBAcc(a.data(), plan, fresh.data(), m, n, k);
    gemmNaiveAcc(a.data(), b.data(), want.data(), m, n, k);
    setGemmKernel(GemmKernel::Auto);
    expectNear(fresh, want);

    // Unchanged version again: still no repack.
    plan.ensureB(b.data(), k, n, false, 2);
    EXPECT_EQ(plan.packCount(), 2u);
}

TEST(ConvOut, Formula)
{
    EXPECT_EQ(convOut(12, 3, 1, 1), 12u);
    EXPECT_EQ(convOut(12, 3, 2, 1), 6u);
    EXPECT_EQ(convOut(7, 1, 1, 0), 7u);
    EXPECT_EQ(convOut(224, 7, 2, 3), 112u);
}

TEST(ConvOutDeath, RejectsKernelLargerThanPaddedInput)
{
    // (in + 2*pad - kernel) is computed in size_t: before the guard,
    // kernel > in + 2*pad wrapped to a huge output size instead of
    // failing. OpenMP worker threads may already exist, so use the
    // threadsafe death-test style.
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(convOut(3, 8, 1, 1), "kernel exceeds padded input");
    EXPECT_DEATH(convOut(5, 4, 0, 0), "stride must be positive");
}

TEST(Im2col, IdentityKernel)
{
    // 1x1 kernel, no pad: columns equal the image.
    auto img = randVec(2 * 3 * 3, 9);
    std::vector<float> cols(2 * 9);
    im2col(img.data(), 2, 3, 3, 1, 1, 1, 0, cols.data());
    for (size_t i = 0; i < img.size(); ++i)
        EXPECT_FLOAT_EQ(cols[i], img[i]);
}

TEST(Im2col, PaddingProducesZeros)
{
    std::vector<float> img(1 * 2 * 2, 1.0f);
    std::vector<float> cols(9 * 4);
    im2col(img.data(), 1, 2, 2, 3, 3, 1, 1, cols.data());
    // Top-left kernel tap at output (0,0) reads padded zero.
    EXPECT_FLOAT_EQ(cols[0], 0.0f);
    // Center tap (row 4) equals the image.
    EXPECT_FLOAT_EQ(cols[4 * 4 + 0], 1.0f);
}

TEST(Im2colCol2im, AdjointProperty)
{
    // <im2col(x), y> == <x, col2im(y)> — the transforms are adjoint,
    // which is exactly what conv backward relies on.
    size_t c = 2, h = 5, w = 4, kh = 3, kw = 3, stride = 2, pad = 1;
    size_t oh = convOut(h, kh, stride, pad);
    size_t ow = convOut(w, kw, stride, pad);
    auto x = randVec(c * h * w, 10);
    auto y = randVec(c * kh * kw * oh * ow, 11);

    std::vector<float> cols(c * kh * kw * oh * ow);
    im2col(x.data(), c, h, w, kh, kw, stride, pad, cols.data());
    double lhs = 0.0;
    for (size_t i = 0; i < cols.size(); ++i)
        lhs += double(cols[i]) * double(y[i]);

    std::vector<float> back(c * h * w, 0.0f);
    col2im(y.data(), c, h, w, kh, kw, stride, pad, back.data());
    double rhs = 0.0;
    for (size_t i = 0; i < back.size(); ++i)
        rhs += double(back[i]) * double(x[i]);

    EXPECT_NEAR(lhs, rhs, 1e-3);
}

// ------------------------------------------------------------------
// Tree-shaped gradient merge: treeReduceParts/treeReduceAcc must
// realize exactly the fixed stride-doubling summation tree — the
// property the bit-identical-across-thread-counts layer tests stand
// on — for every partial count, not just powers of two.
// ------------------------------------------------------------------

/** Serial reference of the fixed tree order (no OpenMP). */
std::vector<float>
serialTreeSum(std::vector<std::vector<float>> parts, size_t len)
{
    for (size_t stride = 1; stride < parts.size(); stride *= 2)
        for (size_t i = 0; i + stride < parts.size(); i += 2 * stride)
            for (size_t j = 0; j < len; ++j)
                parts[i][j] += parts[i + stride][j];
    return parts[0];
}

TEST(TreeReduce, MatchesFixedTreeOrderForEveryCount)
{
    const size_t len = 97; // odd, not a multiple of any vector width
    for (size_t count = 1; count <= 33; ++count) {
        std::vector<std::vector<float>> parts(count);
        for (size_t i = 0; i < count; ++i)
            parts[i] = randVec(len, 1000 + count * 64 + i);
        std::vector<float> want = serialTreeSum(parts, len);

        std::vector<float*> ptrs(count);
        for (size_t i = 0; i < count; ++i)
            ptrs[i] = parts[i].data();
        std::vector<float> dst = randVec(len, 7);
        std::vector<float> wantDst(dst);
        for (size_t j = 0; j < len; ++j)
            wantDst[j] += want[j];

        treeReduceAcc(ptrs.data(), count, len, dst.data());
        for (size_t j = 0; j < len; ++j) {
            ASSERT_EQ(parts[0][j], want[j])
                << "count " << count << " index " << j;
            ASSERT_EQ(dst[j], wantDst[j])
                << "count " << count << " index " << j;
        }
    }
}

TEST(TreeReduce, EmptyInputIsNoOp)
{
    std::vector<float> dst = randVec(16, 8);
    std::vector<float> want(dst);
    treeReduceAcc(nullptr, 0, 16, dst.data());
    for (size_t j = 0; j < want.size(); ++j)
        EXPECT_EQ(dst[j], want[j]) << "index " << j;
}

TEST(TreeReduce, BitIdenticalAcrossThreadCounts)
{
#ifndef _OPENMP
    GTEST_SKIP() << "built without OpenMP";
#else
    // Big enough that the pair loop's parallel clause engages.
    const size_t len = 8192;
    const size_t count = 9;
    auto make = [&] {
        std::vector<std::vector<float>> parts(count);
        for (size_t i = 0; i < count; ++i)
            parts[i] = randVec(len, 9000 + i);
        return parts;
    };
    int prev = omp_get_max_threads();
    omp_set_num_threads(1);
    auto p1 = make();
    std::vector<float*> ptrs1(count);
    for (size_t i = 0; i < count; ++i)
        ptrs1[i] = p1[i].data();
    treeReduceParts(ptrs1.data(), count, len);

    omp_set_num_threads(4);
    auto p4 = make();
    std::vector<float*> ptrs4(count);
    for (size_t i = 0; i < count; ++i)
        ptrs4[i] = p4[i].data();
    treeReduceParts(ptrs4.data(), count, len);
    omp_set_num_threads(prev);

    for (size_t j = 0; j < len; ++j)
        ASSERT_EQ(p1[0][j], p4[0][j]) << "index " << j;
#endif
}

} // namespace
} // namespace mixq
