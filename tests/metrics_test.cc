/** @file mAP, edit distance / PER and perplexity tests. */

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/map.hh"
#include "metrics/seq_metrics.hh"

namespace mixq {
namespace {

TEST(Iou, KnownCases)
{
    // Identical boxes.
    EXPECT_DOUBLE_EQ(iou(0, 0, 1, 1, 0, 0, 1, 1), 1.0);
    // Disjoint boxes.
    EXPECT_DOUBLE_EQ(iou(0, 0, 1, 1, 2, 2, 3, 3), 0.0);
    // Half overlap: inter 0.5, union 1.5.
    EXPECT_NEAR(iou(0, 0, 1, 1, 0.5, 0, 1.5, 1), 1.0 / 3.0, 1e-9);
}

DetBox
det(float x1, float y1, float x2, float y2, float score, int cls,
    int img)
{
    return DetBox{x1, y1, x2, y2, score, cls, img};
}

GtBox
gt(float x1, float y1, float x2, float y2, int cls, int img)
{
    return GtBox{x1, y1, x2, y2, cls, img};
}

TEST(Ap, PerfectDetections)
{
    std::vector<GtBox> gts = {gt(0, 0, 1, 1, 0, 0),
                              gt(2, 2, 3, 3, 0, 0)};
    std::vector<DetBox> dets = {det(0, 0, 1, 1, 0.9f, 0, 0),
                                det(2, 2, 3, 3, 0.8f, 0, 0)};
    EXPECT_DOUBLE_EQ(averagePrecision(dets, gts, 0.5), 1.0);
}

TEST(Ap, MissedGroundTruthHalvesRecall)
{
    std::vector<GtBox> gts = {gt(0, 0, 1, 1, 0, 0),
                              gt(2, 2, 3, 3, 0, 0)};
    std::vector<DetBox> dets = {det(0, 0, 1, 1, 0.9f, 0, 0)};
    EXPECT_DOUBLE_EQ(averagePrecision(dets, gts, 0.5), 0.5);
}

TEST(Ap, DuplicateDetectionIsFalsePositive)
{
    std::vector<GtBox> gts = {gt(0, 0, 1, 1, 0, 0)};
    std::vector<DetBox> dets = {det(0, 0, 1, 1, 0.9f, 0, 0),
                                det(0.01f, 0, 1.01f, 1, 0.8f, 0, 0)};
    // First matches (AP contribution complete at recall 1), second is
    // a duplicate FP after full recall -> AP stays 1.
    EXPECT_DOUBLE_EQ(averagePrecision(dets, gts, 0.5), 1.0);
}

TEST(Ap, LowConfidenceCorrectAfterFalsePositive)
{
    std::vector<GtBox> gts = {gt(0, 0, 1, 1, 0, 0)};
    std::vector<DetBox> dets = {det(5, 5, 6, 6, 0.9f, 0, 0),
                                det(0, 0, 1, 1, 0.8f, 0, 0)};
    // Precision at the match is 1/2.
    EXPECT_DOUBLE_EQ(averagePrecision(dets, gts, 0.5), 0.5);
}

TEST(Ap, WrongImageDoesNotMatch)
{
    std::vector<GtBox> gts = {gt(0, 0, 1, 1, 0, 0)};
    std::vector<DetBox> dets = {det(0, 0, 1, 1, 0.9f, 0, 1)};
    EXPECT_DOUBLE_EQ(averagePrecision(dets, gts, 0.5), 0.0);
}

TEST(MeanAp, AveragesOverPresentClassesOnly)
{
    std::vector<GtBox> gts = {gt(0, 0, 1, 1, 0, 0),
                              gt(2, 2, 3, 3, 1, 0)};
    std::vector<DetBox> dets = {det(0, 0, 1, 1, 0.9f, 0, 0)};
    // Class 0 AP = 1, class 1 AP = 0, class 2 absent.
    EXPECT_DOUBLE_EQ(meanAp(dets, gts, 3, 0.5), 0.5);
}

TEST(MeanApRange, TightBoxesDegradeWithThreshold)
{
    // A detection with IoU ~0.7 counts at 0.5 but not at 0.9.
    std::vector<GtBox> gts = {gt(0, 0, 1.0f, 1.0f, 0, 0)};
    std::vector<DetBox> dets = {det(0, 0, 0.85f, 0.85f, 0.9f, 0, 0)};
    double map50 = meanAp(dets, gts, 1, 0.5);
    double map_range = meanApRange(dets, gts, 1);
    EXPECT_DOUBLE_EQ(map50, 1.0);
    EXPECT_LT(map_range, map50);
    EXPECT_GT(map_range, 0.0);
}

TEST(EditDistance, Cases)
{
    EXPECT_EQ(editDistance({}, {}), 0u);
    EXPECT_EQ(editDistance({1, 2, 3}, {1, 2, 3}), 0u);
    EXPECT_EQ(editDistance({1, 2, 3}, {1, 3}), 1u);      // deletion
    EXPECT_EQ(editDistance({1, 3}, {1, 2, 3}), 1u);      // insertion
    EXPECT_EQ(editDistance({1, 2, 3}, {1, 9, 3}), 1u);   // substitution
    EXPECT_EQ(editDistance({1, 2}, {3, 4}), 2u);
    EXPECT_EQ(editDistance({}, {1, 2, 3}), 3u);
}

TEST(CollapseRuns, MergesConsecutive)
{
    EXPECT_EQ(collapseRuns({1, 1, 2, 2, 2, 1}),
              (std::vector<int>{1, 2, 1}));
    EXPECT_EQ(collapseRuns({}), (std::vector<int>{}));
    EXPECT_EQ(collapseRuns({5}), (std::vector<int>{5}));
}

TEST(Per, PerfectHypothesisIsZero)
{
    std::vector<std::vector<int>> refs = {{1, 2, 3}};
    EXPECT_DOUBLE_EQ(phonemeErrorRate(refs, refs), 0.0);
}

TEST(Per, NormalizedByReferenceLength)
{
    std::vector<std::vector<int>> refs = {{1, 2, 3, 4}};
    std::vector<std::vector<int>> hyps = {{1, 2}};
    EXPECT_DOUBLE_EQ(phonemeErrorRate(refs, hyps), 0.5);
}

TEST(Perplexity, UniformModel)
{
    // NLL per token = log(V) -> PPL = V.
    size_t v = 32, tokens = 100;
    double nll = double(tokens) * std::log(double(v));
    EXPECT_NEAR(perplexity(nll, tokens), double(v), 1e-9);
}

TEST(Perplexity, PerfectModel)
{
    EXPECT_DOUBLE_EQ(perplexity(0.0, 10), 1.0);
}

} // namespace
} // namespace mixq
