/**
 * @file
 * Thread-count invariance of the integer inference backend. The int
 * pipeline is integer accumulation plus per-element rescale — no
 * float reductions — so its outputs must be *bit-identical* across
 * OMP_NUM_THREADS, not merely close: the whole QAT-calibrate ->
 * hard-quantize -> packed-int-eval pipeline is re-run fresh per
 * thread count on a CNN (MiniResNet) and on RNN task models, and
 * every output compared with ==. Also pins pack -> run -> repack
 * byte-idempotence of the packed panels (the deploy image must not
 * depend on execution history).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "infer/qkernels.hh"
#include "infer/qpack.hh"
#include "infer/session.hh"
#include "nn/models.hh"
#include "nn/rnn_models.hh"
#include "nn/trainer.hh"
#include "quant/quantizer.hh"
#include "util/rng.hh"

namespace mixq {
namespace {

void
expectBitEqual(const std::vector<std::vector<float>>& got,
               const std::vector<std::vector<float>>& base)
{
    ASSERT_EQ(got.size(), base.size());
    for (size_t v = 0; v < base.size(); ++v) {
        ASSERT_EQ(got[v].size(), base[v].size());
        for (size_t i = 0; i < base[v].size(); ++i)
            ASSERT_EQ(got[v][i], base[v][i])
                << "vector " << v << " index " << i;
    }
}

template <class RunFn>
void
runAcrossThreadCounts(RunFn&& runOnce)
{
#ifndef _OPENMP
    GTEST_SKIP() << "built without OpenMP";
#else
    int prev = omp_get_max_threads();
    omp_set_num_threads(1);
    auto base = runOnce();
    for (int threads : {4, 8}) {
        omp_set_num_threads(threads);
        auto got = runOnce();
        SCOPED_TRACE(testing::Message() << "threads=" << threads);
        expectBitEqual(got, base);
    }
    omp_set_num_threads(prev);
#endif
}

TEST(InferMt, MiniResNetIntBackendBitIdenticalAcrossThreadCounts)
{
    for (size_t n : {size_t(3), size_t(8)}) {
        SCOPED_TRACE(testing::Message() << "batch=" << n);
        Rng dataRng(900 + n);
        Tensor x = Tensor::randn({n, 3, 12, 12}, dataRng, 1.0);
        for (float& v : x.span())
            v = v < 0.0f ? -v : v;

        auto runOnce = [&] {
            Rng rng(41);
            auto model = makeMiniResNet(4, rng);
            QConfig cfg;
            QatContext qat(cfg);
            qat.attach(model->params());
            model->setActQuant(cfg.actBits, true);
            model->forward(x, true); // calibrate
            qat.finalize();

            InferenceSession sess(*model, &qat, InferBackend::Int);
            Tensor y = sess.run(x);
            Tensor y2 = sess.run(x); // reused packed plans
            std::vector<std::vector<float>> out;
            out.emplace_back(y.data(), y.data() + y.size());
            out.emplace_back(y2.data(), y2.data() + y2.size());
            return out;
        };
        runAcrossThreadCounts(runOnce);
    }
}

TEST(InferMt, LstmLmIntBackendBitIdenticalAcrossThreadCounts)
{
    size_t vocab = 20, t = 6;
    for (size_t n : {size_t(3), size_t(8), size_t(13)}) {
        SCOPED_TRACE(testing::Message() << "batch=" << n);
        Rng dataRng(910 + n);
        std::vector<int> ids(t * n);
        for (int& id : ids)
            id = int(dataRng.uniform(0.0, double(vocab) - 0.001));

        auto runOnce = [&] {
            Rng rng(43);
            LstmLm lm(vocab, 10, 16, 2, rng);
            QConfig cfg;
            QatContext qat(cfg);
            qat.attach(lm.params());
            lm.setActQuant(cfg.actBits, true);
            lm.forward(ids, t, n, true); // calibrate
            qat.finalize();

            applyInferBackend(lm, InferBackend::Int, &qat);
            Tensor y = lm.forward(ids, t, n, false);
            std::vector<std::vector<float>> out;
            out.emplace_back(y.data(), y.data() + y.size());
            return out;
        };
        runAcrossThreadCounts(runOnce);
    }
}

TEST(InferMt, GruTaggerIntBackendBitIdenticalAcrossThreadCounts)
{
    size_t feat = 12, t = 6;
    for (size_t n : {size_t(3), size_t(8), size_t(13)}) {
        SCOPED_TRACE(testing::Message() << "batch=" << n);
        Rng dataRng(920 + n);
        Tensor x = Tensor::randn({t, n, feat}, dataRng, 1.0);

        auto runOnce = [&] {
            Rng rng(44);
            GruTagger tagger(feat, 16, 2, 5, rng);
            QConfig cfg;
            QatContext qat(cfg);
            qat.attach(tagger.params());
            tagger.setActQuant(cfg.actBits, true);
            tagger.forward(x, true); // calibrate
            qat.finalize();

            applyInferBackend(tagger, InferBackend::Int, &qat);
            Tensor y = tagger.forward(x, false);
            std::vector<std::vector<float>> out;
            out.emplace_back(y.data(), y.data() + y.size());
            return out;
        };
        runAcrossThreadCounts(runOnce);
    }
}

// ------------------------------------------------------------------
// Pack idempotence: packing the same projected weights twice — with
// a qgemm run in between — must produce byte-identical canonical
// codes and execution panels, and the plan must not repack on reuse.
// ------------------------------------------------------------------

template <class T>
void
expectBytesEqual(std::span<const T> a, std::span<const T> b)
{
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(T)),
              0);
}

TEST(InferMt, PackRunRepackIsByteIdentical)
{
    Rng rng(45);
    size_t rows = 14, cols = 18, m = 6;
    std::vector<float> w(rows * cols), q(rows * cols);
    for (float& x : w)
        x = float(rng.normal(0.0, 0.4));
    QConfig cfg; // Mixed, 4-bit, per-row
    MatrixQuantResult res =
        quantizeMatrix(w.data(), q.data(), rows, cols, cfg);

    PackedQMat a;
    a.ensure(q.data(), rows, cols, 1, res.rowScheme, res.rowAlpha,
             cfg.bits);

    // Run the kernel between the two packs.
    std::vector<int32_t> actsT(cols * m, 3);
    std::vector<int32_t> acc(rows * m);
    qgemm(a, actsT.data(), m, acc.data());

    a.ensure(q.data(), rows, cols, 1, res.rowScheme, res.rowAlpha,
             cfg.bits);
    EXPECT_EQ(a.packCount(), 1u) << "reuse must not repack";

    PackedQMat b;
    b.ensure(q.data(), rows, cols, 1, res.rowScheme, res.rowAlpha,
             cfg.bits);

    expectBytesEqual(a.sp2Codes(), b.sp2Codes());
    expectBytesEqual(a.fixedCodes(), b.fixedCodes());
    expectBytesEqual(a.shift1(), b.shift1());
    expectBytesEqual(a.shift2(), b.shift2());
    expectBytesEqual(a.mask1(), b.mask1());
    expectBytesEqual(a.mask2(), b.mask2());
    expectBytesEqual(a.signMask(), b.signMask());

    std::vector<int32_t> acc2(rows * m);
    qgemm(b, actsT.data(), m, acc2.data());
    ASSERT_EQ(acc, acc2);
}

} // namespace
} // namespace mixq
