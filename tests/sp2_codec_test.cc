/** @file SP2/fixed integer codec tests — the Table I arithmetic. */

#include <gtest/gtest.h>

#include <cmath>

#include "quant/quantizer.hh"
#include "quant/sp2_codec.hh"
#include "util/rng.hh"

namespace mixq {
namespace {

class CodecBits : public ::testing::TestWithParam<int>
{
};

TEST_P(CodecBits, RoundTripEveryLevel)
{
    int m = GetParam();
    Sp2Codec codec(m);
    auto mags = sp2Magnitudes(m);
    float alpha = 0.43f;
    for (double v : mags) {
        for (double sign : {1.0, -1.0}) {
            if (v == 0.0 && sign < 0)
                continue;
            float x = float(sign * v * alpha);
            Sp2Code code = codec.encode(x, alpha);
            EXPECT_NEAR(codec.decode(code, alpha), x, 1e-6);
        }
    }
}

TEST_P(CodecBits, ApplyMatchesIntegerMultiplication)
{
    int m = GetParam();
    Sp2Codec codec(m);
    auto mags = sp2Magnitudes(m);
    for (double v : mags) {
        Sp2Code code = codec.encode(float(v), 1.0f);
        for (int32_t act : {0, 1, 3, 7, 15, 100}) {
            int32_t expect =
                int32_t(llround(v * double(1 << codec.denomLog2()))) *
                act;
            EXPECT_EQ(code.apply(act), expect) << "level " << v;
        }
        Sp2Code neg = code;
        neg.sign = -1;
        EXPECT_EQ(neg.apply(5), -code.apply(5));
    }
}

TEST_P(CodecBits, ShiftBoundsPerTableI)
{
    // Table I: shifts up to 2^m1 - 2 bits.
    int m = GetParam();
    Sp2Split sp = sp2Split(m);
    Sp2Codec codec(m);
    EXPECT_EQ(codec.maxShift1(), (1 << sp.m1) - 2);
    auto mags = sp2Magnitudes(m);
    for (double v : mags) {
        Sp2Code c = codec.encode(float(v), 1.0f);
        EXPECT_LE(int(c.j1), codec.maxShift1());
        EXPECT_LE(int(c.j2), codec.maxShift2());
    }
}

TEST_P(CodecBits, IntMagnitudesMatchLevelSet)
{
    int m = GetParam();
    Sp2Codec codec(m);
    auto mags = sp2Magnitudes(m);
    ASSERT_EQ(codec.intMagnitudes().size(), mags.size());
    for (size_t i = 0; i < mags.size(); ++i) {
        EXPECT_DOUBLE_EQ(double(codec.intMagnitudes()[i]) /
                             double(1 << codec.denomLog2()),
                         mags[i]);
    }
}

TEST_P(CodecBits, LevelSetEncodeMatchesRefEncoder)
{
    // encode() routes through the cached LevelSet boundary search;
    // encodeRef() is the retained llround + lower_bound reference.
    // They must agree bit for bit on every representable value —
    // every level, both signs, several alphas (including ones whose
    // float32 dequantization rounds t = value/alpha off the exact
    // grid point).
    int m = GetParam();
    Sp2Codec codec(m);
    auto mags = sp2Magnitudes(m);
    for (float alpha : {1.0f, 0.43f, 0.07361f, 2.625f}) {
        for (double v : mags) {
            for (double sign : {1.0, -1.0}) {
                float x = float(sign * v * double(alpha));
                Sp2Code fast = codec.encode(x, alpha);
                Sp2Code ref = codec.encodeRef(x, alpha);
                EXPECT_EQ(fast, ref)
                    << "alpha " << alpha << " level " << v
                    << " sign " << sign;
            }
        }
    }
}

TEST(Sp2Codec, LevelSetEncodeMatchesRefOnQuantizedWeights)
{
    Rng rng(21);
    std::vector<float> w(2048), q(2048);
    for (float& x : w)
        x = float(rng.normal(0.0, 0.3));
    double alpha = quantizeGroup(w, q, QuantScheme::Sp2, 4);
    Sp2Codec codec(4);
    for (float v : q)
        EXPECT_EQ(codec.encode(v, float(alpha)),
                  codec.encodeRef(v, float(alpha)));
}

INSTANTIATE_TEST_SUITE_P(BitSweep, CodecBits,
                         ::testing::Values(3, 4, 5, 6, 7, 8));

TEST(Sp2Code, ZeroCode)
{
    Sp2Code z;
    EXPECT_EQ(z.intMagnitude(), 0);
    EXPECT_EQ(z.apply(123), 0);
}

TEST(Sp2Codec, FourBitDenominator)
{
    Sp2Codec codec(4);
    EXPECT_EQ(codec.denomLog2(), 3); // K1 = 2^2 - 1
    // Integer magnitudes: {0,1,2,4,5,6,8} * alpha / 8.
    std::vector<int32_t> expect = {0, 1, 2, 4, 5, 6, 8};
    EXPECT_EQ(codec.intMagnitudes(), expect);
}

TEST(FixedCodec, RoundTripAllLevels)
{
    float alpha = 1.7f;
    for (int bits : {2, 3, 4, 5, 8}) {
        int levels = (1 << (bits - 1)) - 1;
        for (int k = -levels; k <= levels; ++k) {
            float v = float(double(k) / levels * alpha);
            EXPECT_EQ(encodeFixed(v, alpha, bits), k);
            EXPECT_NEAR(decodeFixed(k, alpha, bits), v, 1e-6);
        }
    }
}

// ------------------------------------------------------------------
// Round-trip property tests with randomized scales: for every
// representable level, encode -> decode -> encode must be stable (the
// same code back, including the encodeRef tie rule), at alphas drawn
// log-uniform across the range fitAlpha can produce (it clamps at
// 1e-12) plus fixed extremes. These pin the 0.02 SP2 grid-tolerance
// margin and the magnitude-scaled encodeFixed tolerance — the latter
// used to be a fixed 1e-3, which rejected legitimate float32-rounded
// grid values at bits >= 14.
// ------------------------------------------------------------------

TEST(CodecProperty, Sp2RoundTripStableAtRandomAlphas)
{
    Rng rng(77);
    for (int bits = 2; bits <= 8; ++bits) {
        SCOPED_TRACE(testing::Message() << "bits=" << bits);
        Sp2Codec codec(bits);
        auto mags = sp2Magnitudes(bits);
        std::vector<float> alphas = {1e-12f, 1e-6f, 1.0f, 1e4f};
        for (int i = 0; i < 12; ++i)
            alphas.push_back(
                float(std::exp(rng.uniform(std::log(1e-10),
                                           std::log(1e3)))));
        for (float alpha : alphas) {
            SCOPED_TRACE(testing::Message() << "alpha=" << alpha);
            for (double v : mags) {
                for (double sign : {1.0, -1.0}) {
                    if (v == 0.0 && sign < 0)
                        continue;
                    float x = float(sign * v * double(alpha));
                    Sp2Code c1 = codec.encode(x, alpha);
                    float d = codec.decode(c1, alpha);
                    Sp2Code c2 = codec.encode(d, alpha);
                    EXPECT_EQ(c1, c2) << "level " << v;
                    EXPECT_EQ(codec.encodeRef(x, alpha), c1)
                        << "level " << v;
                    EXPECT_EQ(codec.decode(c2, alpha), d)
                        << "level " << v;
                }
            }
        }
    }
}

TEST(CodecProperty, FixedRoundTripStableAtRandomAlphas)
{
    Rng rng(78);
    for (int bits = 2; bits <= 16; ++bits) {
        SCOPED_TRACE(testing::Message() << "bits=" << bits);
        int levels = (1 << (bits - 1)) - 1;
        std::vector<float> alphas = {1e-12f, 1e-6f, 1.0f, 1e4f};
        for (int i = 0; i < 8; ++i)
            alphas.push_back(
                float(std::exp(rng.uniform(std::log(1e-10),
                                           std::log(1e3)))));
        // Every level up to 8 bits; corner + random codes above
        // (the worst float32 rounding sits at large |k|).
        std::vector<int> ks = {0, 1, 2, levels / 2, levels - 1,
                               levels};
        if (bits <= 8) {
            ks.clear();
            for (int k = 0; k <= levels; ++k)
                ks.push_back(k);
        } else {
            for (int i = 0; i < 32; ++i)
                ks.push_back(int(rng.uniform(0.0, double(levels))));
        }
        for (float alpha : alphas) {
            SCOPED_TRACE(testing::Message() << "alpha=" << alpha);
            for (int k : ks) {
                for (int sign : {1, -1}) {
                    if (k == 0 && sign < 0)
                        continue;
                    int sk = sign * k;
                    float v = float(double(sk) / double(levels) *
                                    double(alpha));
                    EXPECT_EQ(encodeFixed(v, alpha, bits), sk)
                        << "k=" << sk;
                    float d = decodeFixed(sk, alpha, bits);
                    EXPECT_EQ(encodeFixed(d, alpha, bits), sk)
                        << "k=" << sk;
                }
            }
        }
    }
}

TEST(Codec, QuantizeThenEncodeConsistent)
{
    // End-to-end: project random weights with the SP2 quantizer and
    // verify every output encodes.
    Rng rng(9);
    std::vector<float> w(512), out(512);
    for (float& x : w)
        x = float(rng.normal(0.0, 0.3));
    double alpha = quantizeGroup(w, out, QuantScheme::Sp2, 4);
    Sp2Codec codec(4);
    for (float q : out) {
        Sp2Code code = codec.encode(q, float(alpha));
        EXPECT_NEAR(codec.decode(code, float(alpha)), q, 1e-5);
    }
}

} // namespace
} // namespace mixq
