/** @file LSTM/GRU BPTT and Embedding tests. */

#include <gtest/gtest.h>

#include "grad_check.hh"
#include "nn/rnn.hh"
#include "nn/rnn_models.hh"

namespace mixq {
namespace {

TEST(Lstm, ForwardShapeAndRange)
{
    Rng rng(1);
    Lstm lstm(3, 4, rng);
    Tensor x = Tensor::randn({5, 2, 3}, rng, 1.0);
    Tensor h = lstm.forward(x, false);
    EXPECT_EQ(h.shape(), (std::vector<size_t>{5, 2, 4}));
    for (size_t i = 0; i < h.size(); ++i) {
        EXPECT_LE(h[i], 1.0f);  // o * tanh(c) bounded
        EXPECT_GE(h[i], -1.0f);
    }
}

TEST(Lstm, Gradients)
{
    Rng rng(2);
    Lstm lstm(3, 4, rng);
    Tensor x = Tensor::randn({4, 2, 3}, rng, 1.0);
    checkGradients(lstm, x, 1e-3, 4e-2);
}

TEST(Lstm, SingleStepGradients)
{
    Rng rng(3);
    Lstm lstm(2, 3, rng);
    Tensor x = Tensor::randn({1, 2, 2}, rng, 1.0);
    checkGradients(lstm, x, 1e-3, 3e-2);
}

TEST(Gru, ForwardShape)
{
    Rng rng(4);
    Gru gru(3, 5, rng);
    Tensor x = Tensor::randn({4, 2, 3}, rng, 1.0);
    Tensor h = gru.forward(x, false);
    EXPECT_EQ(h.shape(), (std::vector<size_t>{4, 2, 5}));
}

TEST(Gru, Gradients)
{
    Rng rng(5);
    Gru gru(3, 4, rng);
    Tensor x = Tensor::randn({4, 2, 3}, rng, 1.0);
    checkGradients(gru, x, 1e-3, 4e-2);
}

TEST(Rnn, QuantizableGateMatrices)
{
    Rng rng(6);
    Lstm lstm(3, 4, rng);
    auto ps = lstm.params();
    ASSERT_EQ(ps.size(), 3u);
    EXPECT_EQ(ps[0]->qRows, 16u); // 4H
    EXPECT_EQ(ps[0]->qCols, 3u);
    EXPECT_EQ(ps[1]->qRows, 16u);
    EXPECT_EQ(ps[1]->qCols, 4u);
    EXPECT_FALSE(ps[2]->quantizable());
}

TEST(Embedding, LookupAndScatterGrad)
{
    Rng rng(7);
    Embedding emb(5, 3, rng);
    std::vector<int> ids = {1, 4, 1, 0}; // T=2, N=2
    Tensor y = emb.forward(ids, 2, 2);
    EXPECT_EQ(y.shape(), (std::vector<size_t>{2, 2, 3}));

    Tensor g = Tensor::full(y.shape(), 1.0f);
    emb.backward(g);
    std::vector<Param*> ps;
    emb.ownParams(ps);
    // Token 1 appears twice: grad 2 per dim; token 2 never: grad 0.
    EXPECT_FLOAT_EQ(ps[0]->grad[1 * 3 + 0], 2.0f);
    EXPECT_FLOAT_EQ(ps[0]->grad[2 * 3 + 0], 0.0f);
    EXPECT_FLOAT_EQ(ps[0]->grad[4 * 3 + 2], 1.0f);
}

TEST(LstmLm, ForwardBackwardShapes)
{
    Rng rng(8);
    LstmLm lm(10, 4, 6, 2, rng);
    std::vector<int> ids(3 * 2, 1);
    Tensor logits = lm.forward(ids, 3, 2, true);
    EXPECT_EQ(logits.shape(), (std::vector<size_t>{6, 10}));
    Tensor d = Tensor::randn(logits.shape(), rng, 0.1);
    lm.backward(d); // must not crash; grads accumulate
    bool any = false;
    for (Param* p : lm.params())
        for (size_t i = 0; i < p->grad.size(); ++i)
            any |= p->grad[i] != 0.0f;
    EXPECT_TRUE(any);
}

TEST(GruTagger, FrameLogits)
{
    Rng rng(9);
    GruTagger tagger(5, 6, 1, 4, rng);
    Tensor x = Tensor::randn({3, 2, 5}, rng, 1.0);
    Tensor logits = tagger.forward(x, true);
    EXPECT_EQ(logits.shape(), (std::vector<size_t>{6, 4}));
    Tensor d = Tensor::randn(logits.shape(), rng, 0.1);
    tagger.backward(d);
}

TEST(LstmClassifier, LastStepLogits)
{
    Rng rng(10);
    LstmClassifier cls(8, 4, 5, 1, 2, rng);
    std::vector<int> ids(4 * 3, 2);
    Tensor logits = cls.forward(ids, 4, 3, true);
    EXPECT_EQ(logits.shape(), (std::vector<size_t>{3, 2}));
    Tensor d = Tensor::randn(logits.shape(), rng, 0.1);
    cls.backward(d);
}

TEST(Rnn, ActQuantTogglesWithoutBreakingForward)
{
    Rng rng(11);
    Lstm lstm(3, 4, rng);
    Tensor x = Tensor::randn({3, 2, 3}, rng, 1.0);
    Tensor h0 = lstm.forward(x, true);
    lstm.configureOwnActQuant(4, true);
    Tensor h1 = lstm.forward(x, true);
    EXPECT_EQ(h0.shape(), h1.shape());
    // Quantized forward differs (coarse activations).
    double diff = 0.0;
    for (size_t i = 0; i < h0.size(); ++i)
        diff += std::fabs(h0[i] - h1[i]);
    EXPECT_GT(diff, 0.0);
}

} // namespace
} // namespace mixq
