/** @file Functional equivalence (simulator vs reference) and
 *  network-level timing sanity (Tables VII/VIII shapes). */

#include <gtest/gtest.h>

#include "compiler/model_zoo.hh"
#include "compiler/runner.hh"
#include "quant/quantizer.hh"
#include "util/rng.hh"

namespace mixq {
namespace {

QuantizedGemm
randomProblem(size_t m, size_t k, size_t nf, size_t ns, uint64_t seed)
{
    Rng rng(seed);
    Sp2Codec codec(4);
    QuantizedGemm q;
    q.m = m;
    q.k = k;
    q.nf = nf;
    q.ns = ns;
    q.acts.resize(m * k);
    for (int8_t& a : q.acts)
        a = int8_t(rng.randint(0, 15)); // 4-bit unsigned
    q.wF.resize(nf * k);
    for (int8_t& w : q.wF)
        w = int8_t(rng.randint(-7, 7)); // 4-bit sign-magnitude
    q.wS.resize(ns * k);
    const auto& mags = codec.intMagnitudes();
    for (Sp2Code& w : q.wS) {
        double v = double(mags[size_t(
                       rng.randint(0, int64_t(mags.size()) - 1))]) /
                   8.0;
        w = codec.encode(float(rng.bernoulli(0.5) ? v : -v), 1.0f);
    }
    return q;
}

struct Case
{
    const char* dp;
    size_t m, k, nf, ns;
};

class FunctionalEquiv : public ::testing::TestWithParam<Case>
{
};

TEST_P(FunctionalEquiv, SimulatorMatchesReferenceExactly)
{
    Case c = GetParam();
    const DesignPoint& dp = designPointByName(c.dp);
    QuantizedGemm q = randomProblem(c.m, c.k, c.nf, c.ns,
                                    c.m * 31 + c.k);
    std::vector<int32_t> ref = referenceGemmInt(q);
    RunStats stats;
    std::vector<int32_t> sim = runGemmFunctional(q, dp, &stats);
    ASSERT_EQ(ref.size(), sim.size());
    for (size_t i = 0; i < ref.size(); ++i)
        EXPECT_EQ(ref[i], sim[i]) << "element " << i;
    EXPECT_GT(stats.cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FunctionalEquiv,
    ::testing::Values(
        // Exact-tile shapes.
        Case{"D1-2", 4, 16, 16, 16},
        // Ragged in every dimension.
        Case{"D1-3", 7, 27, 13, 29}, Case{"D1-3", 1, 5, 3, 50},
        // Multi-batch design, ragged m.
        Case{"D2-2", 10, 40, 20, 20}, Case{"D2-3", 9, 33, 11, 22},
        // One-sided problems.
        Case{"D1-1", 6, 20, 24, 0}, Case{"D2-3", 5, 16, 0, 48},
        // Larger reduction crossing several k tiles.
        Case{"D2-3", 8, 100, 17, 35}));

TEST(FunctionalEquiv, DequantizedResultTracksFloatGemm)
{
    // Quantize a float problem, run it on the simulator, dequantize,
    // and compare to the float GEMM of the quantized operands.
    Rng rng(77);
    size_t m = 6, k = 32, n = 12;
    std::vector<float> x(m * k), w(n * k);
    for (float& v : x)
        v = float(rng.uniform(0.0, 1.0));
    for (float& v : w)
        v = float(rng.normal(0.0, 0.2));

    // Weight quantization: MSQ with half rows SP2.
    QConfig cfg;
    cfg.scheme = QuantScheme::Mixed;
    cfg.prSp2 = 0.5;
    std::vector<float> wq(w.size());
    auto res = quantizeMatrix(w.data(), wq.data(), n, k, cfg);

    // Activation quantization: 4-bit unsigned with alpha_a = 1.
    double act_scale = 15.0;
    QuantizedGemm q;
    q.m = m;
    q.k = k;
    std::vector<size_t> fixed_rows, sp2_rows;
    for (size_t r = 0; r < n; ++r) {
        (res.rowScheme[r] == QuantScheme::Sp2 ? sp2_rows : fixed_rows)
            .push_back(r);
    }
    q.nf = fixed_rows.size();
    q.ns = sp2_rows.size();
    q.acts.resize(m * k);
    std::vector<float> xq(m * k);
    for (size_t i = 0; i < m * k; ++i) {
        int v = int(std::nearbyint(std::min(x[i], 1.0f) * act_scale));
        q.acts[i] = int8_t(v);
        xq[i] = float(v) / float(act_scale);
    }
    Sp2Codec codec(4);
    for (size_t r : fixed_rows) {
        for (size_t j = 0; j < k; ++j)
            q.wF.push_back(int8_t(encodeFixed(wq[r * k + j],
                                              res.rowAlpha[r], 4)));
    }
    for (size_t r : sp2_rows) {
        for (size_t j = 0; j < k; ++j)
            q.wS.push_back(codec.encode(wq[r * k + j],
                                        res.rowAlpha[r]));
    }

    std::vector<int32_t> sim =
        runGemmFunctional(q, designPointByName("D1-3"));

    // Dequantize and compare row by row against float math.
    for (size_t i = 0; i < m; ++i) {
        for (size_t c = 0; c < q.nf + q.ns; ++c) {
            size_t r = c < q.nf ? fixed_rows[c]
                                : sp2_rows[c - q.nf];
            double w_scale = c < q.nf
                ? double(res.rowAlpha[r]) / 7.0
                : double(res.rowAlpha[r]) / 8.0;
            double deq = double(sim[i * (q.nf + q.ns) + c]) *
                         w_scale / act_scale;
            double expect = 0.0;
            for (size_t j = 0; j < k; ++j)
                expect += double(xq[i * k + j]) *
                          double(wq[r * k + j]);
            EXPECT_NEAR(deq, expect, 1e-3) << i << "," << c;
        }
    }
}

TEST(SimulateNetwork, ThroughputBelowPeakAboveFloor)
{
    NetworkSpec net = resnet18Spec();
    for (const DesignPoint& dp : paperDesignPoints()) {
        NetworkPerf perf = simulateNetwork(net, dp);
        EXPECT_LT(perf.gops, dp.peakGops()) << dp.name;
        EXPECT_GT(perf.peUtil, 0.25) << dp.name;
        EXPECT_GT(perf.latencyMs, 0.0);
    }
}

TEST(SimulateNetwork, Sp2CoreSpeedsUpResNet)
{
    // The paper's headline: the optimal heterogeneous design beats
    // the DSP-only design by >= 2x on each device.
    NetworkSpec net = resnet18Spec();
    double g11 = simulateNetwork(net, designPointByName("D1-1")).gops;
    double g13 = simulateNetwork(net, designPointByName("D1-3")).gops;
    double g21 = simulateNetwork(net, designPointByName("D2-1")).gops;
    double g23 = simulateNetwork(net, designPointByName("D2-3")).gops;
    EXPECT_GT(g13 / g11, 1.8);
    EXPECT_GT(g23 / g21, 1.8);
}

TEST(ModelZoo, OpCountsMatchPublishedNumbers)
{
    // 2x MACs, in GOP per inference.
    EXPECT_NEAR(resnet18Spec().ops() / 1e9, 3.6, 0.4);
    EXPECT_NEAR(mobilenetV2Spec().ops() / 1e9, 0.6, 0.12);
    EXPECT_NEAR(yolov3Spec(320).ops() / 1e9, 39.0, 6.0);
    // 640 is ~4x the 320 cost.
    EXPECT_NEAR(yolov3Spec(640).ops() / yolov3Spec(320).ops(), 4.0,
                0.3);
}

TEST(ModelZoo, RnnSpecsHaveRecurrentLayers)
{
    for (const NetworkSpec& net : {lstmPtbSpec(), gruTimitSpec(),
                                   lstmImdbSpec()}) {
        bool has_repeat = false;
        for (const LayerSpec& l : net.layers)
            has_repeat |= l.repeat > 1;
        EXPECT_TRUE(has_repeat) << net.name;
        EXPECT_GT(net.ops(), 0.0);
    }
}

TEST(SimulateNetwork, DepthwiseLayersHurtMobileNetUtilization)
{
    const DesignPoint& dp = designPointByName("D2-3");
    NetworkPerf rn = simulateNetwork(resnet18Spec(), dp);
    NetworkPerf mb = simulateNetwork(mobilenetV2Spec(), dp);
    EXPECT_LT(mb.peUtil, rn.peUtil);
}

TEST(SimulateNetwork, PerLayerCyclesSumToTotal)
{
    NetworkPerf perf = simulateNetwork(mobilenetV2Spec(),
                                       designPointByName("D1-2"));
    uint64_t sum = 0;
    for (const LayerPerf& l : perf.layers)
        sum += l.cycles;
    EXPECT_EQ(sum, perf.cycles);
}

} // namespace
} // namespace mixq
