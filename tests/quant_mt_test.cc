/**
 * @file
 * Bit-exactness and thread-invariance matrix for the cached-LevelSet
 * quantization kernels. Two guarantees are pinned:
 *
 *  1. The kernel path (LevelSet projection, fused fitAlpha,
 *     quantizeMatrix) is *bit-identical* to the retained scalar
 *     reference (projectValue / the mags-span fitAlpha overload /
 *     quantizeMatrixRef) on randomized matrices across every scheme,
 *     bit width in {2..8} and granularity — including inputs placed
 *     exactly on the assignment thresholds, where the lo-on-tie rule
 *     decides.
 *
 *  2. quantizeMatrix and fitAlpha return bit-identical results for
 *     OMP_NUM_THREADS in {1, 4, 8}: the fit accumulates per-chunk
 *     partials over deterministicBatchChunks boundaries merged in a
 *     fixed tree order, and row/group projection gives each worker
 *     whole rows, so no float operation order depends on the thread
 *     count.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "quant/quantizer.hh"
#include "util/rng.hh"

namespace mixq {
namespace {

const QuantScheme kConcrete[] = {QuantScheme::Fixed, QuantScheme::Pow2,
                                 QuantScheme::Sp2};
const QuantScheme kAll[] = {QuantScheme::Fixed, QuantScheme::Pow2,
                            QuantScheme::Sp2, QuantScheme::Mixed};

std::vector<float>
randWeights(size_t n, uint64_t seed, double sigma = 0.3)
{
    Rng rng(seed);
    std::vector<float> w(n);
    for (float& x : w)
        x = float(rng.normal(0.0, sigma));
    return w;
}

void
expectBitEqual(const std::vector<float>& got,
               const std::vector<float>& want, const char* what)
{
    ASSERT_EQ(got.size(), want.size()) << what;
    for (size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(got[i], want[i]) << what << " index " << i;
}

// ------------------------------------------------------------------
// Kernel vs retained scalar reference, bit for bit.
// ------------------------------------------------------------------

TEST(QuantBitExact, ProjectorMatchesReferenceOnRandomValues)
{
    Rng rng(11);
    for (QuantScheme s : kConcrete) {
        for (int bits = 2; bits <= 8; ++bits) {
            const LevelSet& ls = levelSet(s, bits);
            std::vector<double> mags(ls.mags().begin(),
                                     ls.mags().end());
            for (int i = 0; i < 2000; ++i) {
                double x = rng.normal(0.0, 0.5);
                double alpha = rng.uniform(0.05, 2.0);
                double fast = ls.projectValue(x, alpha);
                double ref = projectValue(x, mags, alpha);
                ASSERT_EQ(fast, ref)
                    << toString(s) << " bits=" << bits << " x=" << x
                    << " alpha=" << alpha;
            }
        }
    }
}

TEST(QuantBitExact, ProjectorMatchesReferenceAtMidpointTies)
{
    // The decisive inputs: t exactly on every assignment threshold
    // (and one ulp to either side), plus the arithmetic midpoints
    // where the lo-on-tie rule fires. alpha = 1 keeps t == |x|
    // exact, so these values reach the comparison unchanged.
    for (QuantScheme s : kConcrete) {
        for (int bits = 2; bits <= 8; ++bits) {
            const LevelSet& ls = levelSet(s, bits);
            std::vector<double> mags(ls.mags().begin(),
                                     ls.mags().end());
            auto check = [&](double t) {
                for (double x : {t, -t}) {
                    double fast = ls.projectValue(x, 1.0);
                    double ref = projectValue(x, mags, 1.0);
                    ASSERT_EQ(fast, ref)
                        << toString(s) << " bits=" << bits
                        << " x=" << x;
                }
            };
            for (size_t i = 0; i < ls.boundaries().size(); ++i) {
                double b = ls.boundaries()[i];
                check(b);
                check(std::nextafter(b, 0.0));
                check(std::nextafter(b, 2.0));
                check((mags[i] + mags[i + 1]) / 2.0);
            }
        }
    }
}

TEST(QuantBitExact, ProjectorMatchesReferenceOnNonFiniteValues)
{
    // NaN weights (diverged training) and infinities must take the
    // same path as the scalar reference in every projector mode —
    // bits=8 Fixed reaches the Uniform closed-form guess, whose
    // float-to-integer conversion would be UB on NaN without its
    // finite gate. The reference maps NaN to the zero magnitude.
    double bad[] = {std::nan(""), -std::nan(""),
                    std::numeric_limits<double>::infinity(),
                    -std::numeric_limits<double>::infinity()};
    for (QuantScheme s : kConcrete) {
        for (int bits = 2; bits <= 8; ++bits) {
            const LevelSet& ls = levelSet(s, bits);
            std::vector<double> mags(ls.mags().begin(),
                                     ls.mags().end());
            for (double x : bad) {
                double fast = ls.projectValue(x, 0.7);
                double ref = projectValue(x, mags, 0.7);
                ASSERT_EQ(std::isnan(fast), std::isnan(ref));
                if (!std::isnan(ref))
                    ASSERT_EQ(fast, ref)
                        << toString(s) << " bits=" << bits
                        << " x=" << x;
            }
        }
    }
}

TEST(QuantBitExact, FitAlphaMatchesReference)
{
    for (QuantScheme s : kConcrete) {
        for (int bits = 2; bits <= 8; ++bits) {
            const LevelSet& ls = levelSet(s, bits);
            std::vector<double> mags(ls.mags().begin(),
                                     ls.mags().end());
            // Sizes on both sides of the single-chunk threshold.
            for (size_t n : {7u, 576u, 5000u, 40000u}) {
                auto w = randWeights(n, 31 * n + size_t(s) + bits);
                double fast = fitAlpha(w, ls);
                double ref = fitAlpha(w, mags);
                ASSERT_EQ(fast, ref) << toString(s) << " bits=" << bits
                                     << " n=" << n;
            }
        }
    }
}

TEST(QuantBitExact, QuantizeMatrixMatchesReferenceEverywhere)
{
    for (QuantScheme s : kAll) {
        for (int bits = 2; bits <= 8; ++bits) {
            for (Granularity g :
                 {Granularity::PerRow, Granularity::PerGroup}) {
                QConfig cfg;
                cfg.scheme = s;
                cfg.bits = bits;
                cfg.granularity = g;
                size_t rows = 29, cols = 173; // ragged on purpose
                auto w = randWeights(rows * cols,
                                     1000 + size_t(s) * 64 +
                                         size_t(bits) * 8 + size_t(g));
                std::vector<float> fast(w.size()), ref(w.size());
                auto rf = quantizeMatrix(w.data(), fast.data(), rows,
                                         cols, cfg);
                auto rr = quantizeMatrixRef(w.data(), ref.data(), rows,
                                            cols, cfg);
                SCOPED_TRACE(testing::Message()
                             << toString(s) << " bits=" << bits
                             << " gran=" << int(g));
                expectBitEqual(fast, ref, "projected weights");
                expectBitEqual(rf.rowAlpha, rr.rowAlpha, "row alpha");
                ASSERT_EQ(rf.rowScheme, rr.rowScheme);
                ASSERT_EQ(rf.numSp2, rr.numSp2);
            }
        }
    }
}

TEST(QuantBitExact, QuantizeGroupOnCachedSetMatchesReference)
{
    for (QuantScheme s : kConcrete) {
        auto w = randWeights(4096, 77 + size_t(s));
        std::vector<float> fast(w.size()), ref(w.size());
        double af = quantizeGroup(w, fast, s, 4);
        std::vector<double> mags = magnitudes(s, 4);
        double ar = fitAlpha(std::span<const float>(w), mags);
        for (size_t i = 0; i < w.size(); ++i)
            ref[i] = float(projectValue(w[i], mags, ar));
        ASSERT_EQ(af, ar) << toString(s);
        expectBitEqual(fast, ref, "group projection");
    }
}

// ------------------------------------------------------------------
// Thread-count invariance matrix.
// ------------------------------------------------------------------

#ifdef _OPENMP

/** Run fn at 1, 4 and 8 threads; all results must be bit-equal. */
template <class Fn>
void
checkThreadInvariance(Fn&& fn)
{
    int prev = omp_get_max_threads();
    omp_set_num_threads(1);
    auto base = fn();
    for (int threads : {4, 8}) {
        omp_set_num_threads(threads);
        auto got = fn();
        SCOPED_TRACE(testing::Message() << "threads=" << threads);
        ASSERT_EQ(got.first.size(), base.first.size());
        for (size_t i = 0; i < base.first.size(); ++i)
            ASSERT_EQ(got.first[i], base.first[i]) << "out " << i;
        ASSERT_EQ(got.second, base.second);
    }
    omp_set_num_threads(prev);
}

TEST(QuantMtMatrix, QuantizeMatrixBitIdenticalAcrossThreadCounts)
{
    // Ragged row counts (not divisible by 4 or 8) and both
    // granularities; Mixed exercises the partition + both groups.
    for (QuantScheme s : kAll) {
        for (Granularity g :
             {Granularity::PerRow, Granularity::PerGroup}) {
            size_t rows = 37, cols = 576;
            auto w = randWeights(rows * cols, 500 + size_t(s));
            SCOPED_TRACE(testing::Message()
                         << toString(s) << " gran=" << int(g));
            checkThreadInvariance([&] {
                QConfig cfg;
                cfg.scheme = s;
                cfg.granularity = g;
                std::vector<float> out(w.size());
                auto res = quantizeMatrix(w.data(), out.data(), rows,
                                          cols, cfg);
                return std::make_pair(std::move(out), res.rowAlpha);
            });
        }
    }
}

TEST(QuantMtMatrix, FitAlphaBitIdenticalAcrossThreadCounts)
{
    // Sizes that land on 1, several, and the maximum chunk count.
    for (size_t n : {576u, 40000u, 400000u}) {
        auto w = randWeights(n, 900 + n);
        const LevelSet& ls = levelSet(QuantScheme::Sp2, 4);
        SCOPED_TRACE(testing::Message() << "n=" << n);
        checkThreadInvariance([&] {
            std::vector<float> alpha(1, float(fitAlpha(w, ls)));
            return std::make_pair(std::move(alpha), 0);
        });
    }
}

#endif // _OPENMP

} // namespace
} // namespace mixq
