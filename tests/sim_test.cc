/** @file GEMM cores, ISA and accelerator engine tests. */

#include <gtest/gtest.h>

#include "quant/sp2_codec.hh"
#include "sim/accelerator.hh"
#include "sim/gemm_core.hh"
#include "util/rng.hh"

namespace mixq {
namespace {

DesignPoint
smallDp(size_t bat, size_t blk_in, size_t bf, size_t bs)
{
    DesignPoint dp;
    dp.name = "test";
    dp.device = "XC7Z020";
    dp.bat = bat;
    dp.blkIn = blk_in;
    dp.blkFixed = bf;
    dp.blkSp2 = bs;
    return dp;
}

TEST(GemmFixedCore, SingleStepMatchesManual)
{
    GemmFixedCore core(1, 2, 2);
    int8_t w[4] = {1, -2, 3, 4}; // [out=2][in=2]
    int8_t a[2] = {5, 6};
    core.step(w, a);
    EXPECT_EQ(core.acc()[0], 5 - 12);
    EXPECT_EQ(core.acc()[1], 15 + 24);
    core.step(w, a); // accumulates
    EXPECT_EQ(core.acc()[0], 2 * (5 - 12));
    core.clear();
    EXPECT_EQ(core.acc()[0], 0);
}

TEST(GemmSp2Core, StepMatchesCodecSemantics)
{
    Sp2Codec codec(4);
    GemmSp2Core core(1, 2, 1);
    // Weight levels 0.625 (= 5/8) and 0.25 (= 2/8).
    Sp2Code w[2] = {codec.encode(0.625f, 1.0f),
                    codec.encode(-0.25f, 1.0f)};
    int8_t a[2] = {8, 4};
    core.step(w, a);
    // (5 * 8) + (-2 * 4) with the x8 denominator.
    EXPECT_EQ(core.acc()[0], 40 - 8);
}

/**
 * Randomized cross-check of the two heterogeneous cores: encode
 * random SP2-level weights through Sp2Codec, run the LUT core's
 * shift-shift-add datapath and the DSP core's MAC datapath on the
 * same activation tiles, and demand equal accumulators when the DSP
 * core is fed the decoded integer magnitudes. This pins the "no
 * multiply on the weight path" contract of sim/gemm_core.hh: the
 * shift-add core computes exactly sum(sign * (2^j1 + 2^j2) * act),
 * nothing approximated.
 */
TEST(GemmCores, Sp2ShiftAddMatchesFixedMacOnDecodedMagnitudes)
{
    Rng rng(17);
    for (int round = 0; round < 20; ++round) {
        size_t bat = size_t(rng.randint(1, 4));
        size_t blkIn = size_t(rng.randint(1, 16));
        size_t blkOut = size_t(rng.randint(1, 16));
        Sp2Codec codec(4);
        const auto& mags = codec.intMagnitudes();
        double denom = double(1 << codec.denomLog2());

        std::vector<Sp2Code> wS(blkOut * blkIn);
        std::vector<int8_t> wF(blkOut * blkIn);
        for (size_t i = 0; i < wS.size(); ++i) {
            int32_t mag = mags[size_t(
                rng.randint(0, int64_t(mags.size()) - 1))];
            int32_t sign = rng.bernoulli(0.5) ? 1 : -1;
            ASSERT_LE(mag, 127) << "magnitude must fit the DSP lane";
            wS[i] = codec.encode(float(sign * mag / denom), 1.0f);
            ASSERT_EQ(wS[i].intMagnitude(), mag);
            wF[i] = int8_t(sign * mag);
        }

        GemmSp2Core sp2(bat, blkIn, blkOut);
        GemmFixedCore fixed(bat, blkIn, blkOut);
        size_t steps = size_t(rng.randint(1, 5));
        std::vector<int8_t> acts(bat * blkIn);
        for (size_t s = 0; s < steps; ++s) {
            for (int8_t& v : acts)
                v = int8_t(rng.randint(0, 15));
            sp2.step(wS.data(), acts.data());
            fixed.step(wF.data(), acts.data());
        }
        ASSERT_EQ(sp2.acc().size(), fixed.acc().size());
        for (size_t i = 0; i < sp2.acc().size(); ++i)
            ASSERT_EQ(sp2.acc()[i], fixed.acc()[i])
                << "round " << round << " lane " << i;
    }
}

TEST(GemmSp2Core, BatchLanesIndependent)
{
    Sp2Codec codec(4);
    GemmSp2Core core(2, 1, 1);
    Sp2Code w[1] = {codec.encode(1.0f, 1.0f)}; // = 8/8
    int8_t a[2] = {3, 7};
    core.step(w, a);
    EXPECT_EQ(core.acc()[0], 24);
    EXPECT_EQ(core.acc()[1], 56);
}

TEST(Isa, InstructionPrinter)
{
    Instruction ld;
    ld.op = Opcode::Load;
    ld.buf = BufKind::WgtSp2;
    ld.rows = 3;
    ld.pushes.push_back({Sem::L2C, 1});
    std::string s = ld.str();
    EXPECT_NE(s.find("LOAD"), std::string::npos);
    EXPECT_NE(s.find("push(l2c,1)"), std::string::npos);
}

TEST(Accelerator, EmptyProgramZeroCycles)
{
    AccelConfig cfg;
    cfg.dp = smallDp(1, 4, 4, 4);
    cfg.functional = false;
    Accelerator acc(cfg);
    RunStats st = acc.run(Program{});
    EXPECT_EQ(st.cycles, 0u);
}

TEST(Accelerator, GemmCyclesFormula)
{
    AccelConfig cfg;
    cfg.dp = smallDp(1, 4, 4, 0);
    cfg.functional = false;
    cfg.gemmPipeFill = 4;
    Accelerator acc(cfg);
    Program prog;
    Instruction gm;
    gm.op = Opcode::Gemm;
    gm.kTiles = 10;
    gm.groups = 3;
    prog.compute.push_back(gm);
    RunStats st = acc.run(prog);
    EXPECT_EQ(st.cycles, 4u + 30u);
}

TEST(Accelerator, LoadCyclesIncludeLatencyAndBandwidth)
{
    AccelConfig cfg;
    cfg.dp = smallDp(1, 16, 4, 0); // input row = 16 acts = 8 bytes
    cfg.functional = false;
    cfg.dramBytesPerCycle = 8;
    cfg.dramLatencyCycles = 30;
    Accelerator acc(cfg);
    Program prog;
    Instruction ld;
    ld.op = Opcode::Load;
    ld.buf = BufKind::Input;
    ld.rows = 10;
    prog.load.push_back(ld);
    RunStats st = acc.run(prog);
    EXPECT_EQ(st.cycles, 30u + 10u); // 80 bytes / 8 B/cy
    EXPECT_EQ(st.dramBytesRead, 80u);
}

TEST(Accelerator, TokensSerializeDependentWork)
{
    AccelConfig cfg;
    cfg.dp = smallDp(1, 16, 4, 0);
    cfg.functional = false;
    cfg.dramLatencyCycles = 100;
    Accelerator acc(cfg);
    Program prog;
    Instruction ld;
    ld.op = Opcode::Load;
    ld.buf = BufKind::Input;
    ld.rows = 1;
    ld.pushes.push_back({Sem::L2C, 1});
    prog.load.push_back(ld);
    Instruction gm;
    gm.op = Opcode::Gemm;
    gm.kTiles = 1;
    gm.pops.push_back({Sem::L2C, 1});
    prog.compute.push_back(gm);
    RunStats st = acc.run(prog);
    // Compute cannot start before the load completes.
    EXPECT_GE(st.cycles, 101u + cfg.gemmPipeFill);
}

TEST(Accelerator, IndependentQueuesOverlap)
{
    AccelConfig cfg;
    cfg.dp = smallDp(1, 16, 4, 0);
    cfg.functional = false;
    cfg.dramLatencyCycles = 50;
    Accelerator acc(cfg);
    Program prog;
    Instruction ld;
    ld.op = Opcode::Load;
    ld.buf = BufKind::Input;
    ld.rows = 1;
    prog.load.push_back(ld);
    Instruction gm;
    gm.op = Opcode::Gemm;
    gm.kTiles = 40;
    prog.compute.push_back(gm);
    RunStats st = acc.run(prog);
    // No tokens: the two run concurrently.
    EXPECT_EQ(st.cycles,
              std::max<uint64_t>(st.loadBusy, st.computeBusy));
}

TEST(Accelerator, DoubleBufferingPipelines)
{
    // Two load+gemm pairs with tokens: total << serial sum because
    // the second load overlaps the first GEMM.
    AccelConfig cfg;
    cfg.dp = smallDp(1, 16, 4, 0);
    cfg.functional = false;
    cfg.dramLatencyCycles = 100;
    cfg.gemmPipeFill = 0;
    Accelerator acc(cfg);
    Program prog;
    for (int i = 0; i < 2; ++i) {
        Instruction ld;
        ld.op = Opcode::Load;
        ld.buf = BufKind::Input;
        ld.rows = 1;
        ld.sramRow = uint32_t(i);
        ld.pushes.push_back({Sem::L2C, 1});
        prog.load.push_back(ld);
        Instruction gm;
        gm.op = Opcode::Gemm;
        gm.kTiles = 100;
        gm.pops.push_back({Sem::L2C, 1});
        prog.compute.push_back(gm);
    }
    RunStats st = acc.run(prog);
    uint64_t load1 = 100 + 1; // latency + 1 row
    // Serial would be ~2*(101+100); pipelined is ~101+2*100+eps.
    EXPECT_LT(st.cycles, 2 * (load1 + 100));
    EXPECT_GE(st.cycles, load1 + 200);
}

TEST(AcceleratorDeath, UnresolvedTokenDeadlocks)
{
    AccelConfig cfg;
    cfg.dp = smallDp(1, 4, 4, 0);
    cfg.functional = false;
    Accelerator acc(cfg);
    Program prog;
    Instruction gm;
    gm.op = Opcode::Gemm;
    gm.kTiles = 1;
    gm.pops.push_back({Sem::L2C, 1}); // never pushed
    prog.compute.push_back(gm);
    EXPECT_DEATH(acc.run(prog), "deadlock");
}

TEST(Accelerator, AluCyclesScaleWithGroups)
{
    AccelConfig cfg;
    cfg.dp = smallDp(4, 16, 16, 32);
    cfg.functional = false;
    Accelerator acc(cfg);
    Program prog;
    Instruction alu;
    alu.op = Opcode::Alu;
    alu.groups = 5; // fused drain: one issue cycle per group
    prog.compute.push_back(alu);
    RunStats st = acc.run(prog);
    EXPECT_EQ(st.cycles, 5u);
}

} // namespace
} // namespace mixq
