/** @file GEMM cores, ISA and accelerator engine tests. */

#include <gtest/gtest.h>

#include "quant/sp2_codec.hh"
#include "sim/accelerator.hh"
#include "util/rng.hh"

namespace mixq {
namespace {

DesignPoint
smallDp(size_t bat, size_t blk_in, size_t bf, size_t bs)
{
    DesignPoint dp;
    dp.name = "test";
    dp.device = "XC7Z020";
    dp.bat = bat;
    dp.blkIn = blk_in;
    dp.blkFixed = bf;
    dp.blkSp2 = bs;
    return dp;
}

TEST(GemmFixedCore, SingleStepMatchesManual)
{
    GemmFixedCore core(1, 2, 2);
    int8_t w[4] = {1, -2, 3, 4}; // [out=2][in=2]
    int8_t a[2] = {5, 6};
    core.step(w, a);
    EXPECT_EQ(core.acc()[0], 5 - 12);
    EXPECT_EQ(core.acc()[1], 15 + 24);
    core.step(w, a); // accumulates
    EXPECT_EQ(core.acc()[0], 2 * (5 - 12));
    core.clear();
    EXPECT_EQ(core.acc()[0], 0);
}

TEST(GemmSp2Core, StepMatchesCodecSemantics)
{
    Sp2Codec codec(4);
    GemmSp2Core core(1, 2, 1);
    // Weight levels 0.625 (= 5/8) and 0.25 (= 2/8).
    Sp2Code w[2] = {codec.encode(0.625f, 1.0f),
                    codec.encode(-0.25f, 1.0f)};
    int8_t a[2] = {8, 4};
    core.step(w, a);
    // (5 * 8) + (-2 * 4) with the x8 denominator.
    EXPECT_EQ(core.acc()[0], 40 - 8);
}

TEST(GemmSp2Core, BatchLanesIndependent)
{
    Sp2Codec codec(4);
    GemmSp2Core core(2, 1, 1);
    Sp2Code w[1] = {codec.encode(1.0f, 1.0f)}; // = 8/8
    int8_t a[2] = {3, 7};
    core.step(w, a);
    EXPECT_EQ(core.acc()[0], 24);
    EXPECT_EQ(core.acc()[1], 56);
}

TEST(Isa, InstructionPrinter)
{
    Instruction ld;
    ld.op = Opcode::Load;
    ld.buf = BufKind::WgtSp2;
    ld.rows = 3;
    ld.pushes.push_back({Sem::L2C, 1});
    std::string s = ld.str();
    EXPECT_NE(s.find("LOAD"), std::string::npos);
    EXPECT_NE(s.find("push(l2c,1)"), std::string::npos);
}

TEST(Accelerator, EmptyProgramZeroCycles)
{
    AccelConfig cfg;
    cfg.dp = smallDp(1, 4, 4, 4);
    cfg.functional = false;
    Accelerator acc(cfg);
    RunStats st = acc.run(Program{});
    EXPECT_EQ(st.cycles, 0u);
}

TEST(Accelerator, GemmCyclesFormula)
{
    AccelConfig cfg;
    cfg.dp = smallDp(1, 4, 4, 0);
    cfg.functional = false;
    cfg.gemmPipeFill = 4;
    Accelerator acc(cfg);
    Program prog;
    Instruction gm;
    gm.op = Opcode::Gemm;
    gm.kTiles = 10;
    gm.groups = 3;
    prog.compute.push_back(gm);
    RunStats st = acc.run(prog);
    EXPECT_EQ(st.cycles, 4u + 30u);
}

TEST(Accelerator, LoadCyclesIncludeLatencyAndBandwidth)
{
    AccelConfig cfg;
    cfg.dp = smallDp(1, 16, 4, 0); // input row = 16 acts = 8 bytes
    cfg.functional = false;
    cfg.dramBytesPerCycle = 8;
    cfg.dramLatencyCycles = 30;
    Accelerator acc(cfg);
    Program prog;
    Instruction ld;
    ld.op = Opcode::Load;
    ld.buf = BufKind::Input;
    ld.rows = 10;
    prog.load.push_back(ld);
    RunStats st = acc.run(prog);
    EXPECT_EQ(st.cycles, 30u + 10u); // 80 bytes / 8 B/cy
    EXPECT_EQ(st.dramBytesRead, 80u);
}

TEST(Accelerator, TokensSerializeDependentWork)
{
    AccelConfig cfg;
    cfg.dp = smallDp(1, 16, 4, 0);
    cfg.functional = false;
    cfg.dramLatencyCycles = 100;
    Accelerator acc(cfg);
    Program prog;
    Instruction ld;
    ld.op = Opcode::Load;
    ld.buf = BufKind::Input;
    ld.rows = 1;
    ld.pushes.push_back({Sem::L2C, 1});
    prog.load.push_back(ld);
    Instruction gm;
    gm.op = Opcode::Gemm;
    gm.kTiles = 1;
    gm.pops.push_back({Sem::L2C, 1});
    prog.compute.push_back(gm);
    RunStats st = acc.run(prog);
    // Compute cannot start before the load completes.
    EXPECT_GE(st.cycles, 101u + cfg.gemmPipeFill);
}

TEST(Accelerator, IndependentQueuesOverlap)
{
    AccelConfig cfg;
    cfg.dp = smallDp(1, 16, 4, 0);
    cfg.functional = false;
    cfg.dramLatencyCycles = 50;
    Accelerator acc(cfg);
    Program prog;
    Instruction ld;
    ld.op = Opcode::Load;
    ld.buf = BufKind::Input;
    ld.rows = 1;
    prog.load.push_back(ld);
    Instruction gm;
    gm.op = Opcode::Gemm;
    gm.kTiles = 40;
    prog.compute.push_back(gm);
    RunStats st = acc.run(prog);
    // No tokens: the two run concurrently.
    EXPECT_EQ(st.cycles,
              std::max<uint64_t>(st.loadBusy, st.computeBusy));
}

TEST(Accelerator, DoubleBufferingPipelines)
{
    // Two load+gemm pairs with tokens: total << serial sum because
    // the second load overlaps the first GEMM.
    AccelConfig cfg;
    cfg.dp = smallDp(1, 16, 4, 0);
    cfg.functional = false;
    cfg.dramLatencyCycles = 100;
    cfg.gemmPipeFill = 0;
    Accelerator acc(cfg);
    Program prog;
    for (int i = 0; i < 2; ++i) {
        Instruction ld;
        ld.op = Opcode::Load;
        ld.buf = BufKind::Input;
        ld.rows = 1;
        ld.sramRow = uint32_t(i);
        ld.pushes.push_back({Sem::L2C, 1});
        prog.load.push_back(ld);
        Instruction gm;
        gm.op = Opcode::Gemm;
        gm.kTiles = 100;
        gm.pops.push_back({Sem::L2C, 1});
        prog.compute.push_back(gm);
    }
    RunStats st = acc.run(prog);
    uint64_t load1 = 100 + 1; // latency + 1 row
    // Serial would be ~2*(101+100); pipelined is ~101+2*100+eps.
    EXPECT_LT(st.cycles, 2 * (load1 + 100));
    EXPECT_GE(st.cycles, load1 + 200);
}

TEST(AcceleratorDeath, UnresolvedTokenDeadlocks)
{
    AccelConfig cfg;
    cfg.dp = smallDp(1, 4, 4, 0);
    cfg.functional = false;
    Accelerator acc(cfg);
    Program prog;
    Instruction gm;
    gm.op = Opcode::Gemm;
    gm.kTiles = 1;
    gm.pops.push_back({Sem::L2C, 1}); // never pushed
    prog.compute.push_back(gm);
    EXPECT_DEATH(acc.run(prog), "deadlock");
}

TEST(Accelerator, AluCyclesScaleWithGroups)
{
    AccelConfig cfg;
    cfg.dp = smallDp(4, 16, 16, 32);
    cfg.functional = false;
    Accelerator acc(cfg);
    Program prog;
    Instruction alu;
    alu.op = Opcode::Alu;
    alu.groups = 5; // fused drain: one issue cycle per group
    prog.compute.push_back(alu);
    RunStats st = acc.run(prog);
    EXPECT_EQ(st.cycles, 5u);
}

} // namespace
} // namespace mixq
