/**
 * @file
 * Differential tests of the integer inference backend (src/infer/):
 * the packed shift-add/MAC microkernels against the simulator cores
 * (bit-exact int32 accumulators — both sides are specifications of
 * the same datapath), the packed layers against their fake-quant
 * float forwards (tolerance — same math, different summation), and
 * the compiler bridge that feeds packed panels through
 * referenceGemmInt/runGemmFunctional. Edge cases ride the same
 * harness: all-zero rows, alpha extremes, and the j = -1 zero-term
 * SP2 codes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "compiler/runner.hh"
#include "fpga/design_point.hh"
#include "infer/qkernels.hh"
#include "infer/qpack.hh"
#include "infer/session.hh"
#include "nn/layers.hh"
#include "nn/models.hh"
#include "nn/rnn.hh"
#include "nn/trainer.hh"
#include "quant/quantizer.hh"
#include "sim/gemm_core.hh"
#include "util/rng.hh"

namespace mixq {
namespace {

/** Random unsigned activation codes in the 4-bit range [0, 15] —
 *  int8-safe and overflow-safe against 8-bit SP2 magnitudes. */
std::vector<int8_t>
randomActCodes(size_t n, Rng& rng)
{
    std::vector<int8_t> a(n);
    for (int8_t& v : a)
        v = int8_t(rng.uniform(0.0, 15.999));
    return a;
}

/** Widen int8 codes to the int32 lanes qgemm consumes. */
std::vector<int32_t>
widen(const std::vector<int8_t>& a)
{
    return std::vector<int32_t>(a.begin(), a.end());
}

/**
 * Reference accumulators via the simulator cores, one single-row
 * core per packed row: SP2 rows through GemmSp2Core (shift-add
 * datapath), Fixed rows through GemmFixedCore (MAC datapath).
 * Returns [rows x m] to match qgemm's layout.
 */
std::vector<int32_t>
simAccumulators(const PackedQMat& w, const std::vector<int8_t>& acts,
                size_t m)
{
    size_t cols = w.cols();
    std::vector<int32_t> acc(w.rows() * m);
    for (size_t r = 0; r < w.rows(); ++r) {
        if (w.rowScheme(r) == QuantScheme::Sp2) {
            GemmSp2Core core(m, cols, 1);
            core.step(w.sp2Codes().data() + r * cols, acts.data());
            for (size_t b = 0; b < m; ++b)
                acc[r * m + b] = core.acc()[b];
        } else {
            GemmFixedCore core(m, cols, 1);
            core.step(w.fixedCodes().data() + r * cols, acts.data());
            for (size_t b = 0; b < m; ++b)
                acc[r * m + b] = core.acc()[b];
        }
    }
    return acc;
}

/** qgemm accumulators for int8 acts laid out [m x cols]. */
std::vector<int32_t>
packedAccumulators(const PackedQMat& w,
                   const std::vector<int8_t>& acts, size_t m)
{
    size_t cols = w.cols();
    std::vector<int32_t> a32 = widen(acts);
    std::vector<int32_t> actsT(cols * m);
    transposeInt32(a32.data(), actsT.data(), m, cols);
    std::vector<int32_t> acc(w.rows() * m);
    qgemm(w, actsT.data(), m, acc.data());
    return acc;
}

void
expectNearRel(const Tensor& got, const Tensor& want, double tol)
{
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
        double t = tol * (1.0 + std::fabs(double(want[i])));
        ASSERT_NEAR(got[i], want[i], t) << "index " << i;
    }
}

// ------------------------------------------------------------------
// Microkernel vs simulator cores: bit-exact int32 accumulators over
// the full schemes x bits x granularity matrix. The weights are real
// quantizer output (quantizeMatrix), so the packed codes face the
// exact values deployment faces.
// ------------------------------------------------------------------

TEST(InferDiff, QgemmMatchesSimCoresAcrossSchemesBitsGranularity)
{
    Rng rng(11);
    size_t rows = 12, cols = 20, m = 7;
    for (QuantScheme scheme :
         {QuantScheme::Sp2, QuantScheme::Fixed, QuantScheme::Mixed}) {
        for (int bits = 2; bits <= 8; ++bits) {
            for (Granularity g :
                 {Granularity::PerRow, Granularity::PerGroup}) {
                SCOPED_TRACE(testing::Message()
                             << toString(scheme) << " bits=" << bits
                             << " perRow="
                             << (g == Granularity::PerRow));
                std::vector<float> w(rows * cols), q(rows * cols);
                for (float& x : w)
                    x = float(rng.normal(0.0, 0.4));
                QConfig cfg;
                cfg.scheme = scheme;
                cfg.bits = bits;
                cfg.granularity = g;
                MatrixQuantResult res = quantizeMatrix(
                    w.data(), q.data(), rows, cols, cfg);

                PackedQMat pack;
                pack.ensure(q.data(), rows, cols, 1, res.rowScheme,
                            res.rowAlpha, bits);
                if (scheme == QuantScheme::Mixed) {
                    EXPECT_EQ(pack.numSp2(), res.numSp2);
                    EXPECT_GT(pack.numSp2(), 0u);
                    EXPECT_LT(pack.numSp2(), rows);
                }

                std::vector<int8_t> acts =
                    randomActCodes(m * cols, rng);
                std::vector<int32_t> want =
                    simAccumulators(pack, acts, m);
                std::vector<int32_t> got =
                    packedAccumulators(pack, acts, m);
                ASSERT_EQ(got, want);
            }
        }
    }
}

// ------------------------------------------------------------------
// Edge cases through the same harness: all-zero rows (fitAlpha's 1.0
// fallback), alpha extremes at both ends of the clamp range, and the
// j = -1 zero-term codes (absent second term / all-absent zero code).
// ------------------------------------------------------------------

TEST(InferDiff, ZeroRowsAlphaExtremesAndZeroTermCodes)
{
    Rng rng(12);
    size_t cols = 16, m = 5;
    Sp2Codec codec(4);

    // Hand-built rows: codes times per-row alphas spanning the
    // fitAlpha clamp floor up to a large scale.
    std::vector<float> alphas = {1e-12f, 1e-6f, 1.0f, 1e4f, 1.0f,
                                 1.0f};
    std::vector<QuantScheme> schemes = {
        QuantScheme::Sp2,   QuantScheme::Sp2,  QuantScheme::Sp2,
        QuantScheme::Fixed, QuantScheme::Sp2,  QuantScheme::Fixed};
    size_t rows = schemes.size();
    std::vector<float> w(rows * cols, 0.0f);
    auto mags = sp2Magnitudes(4);
    for (size_t r = 0; r < 4; ++r) { // rows 4, 5 stay all-zero
        for (size_t j = 0; j < cols; ++j) {
            if (schemes[r] == QuantScheme::Sp2) {
                double v = mags[size_t(rng.uniform(
                    0.0, double(mags.size()) - 0.001))];
                double s = rng.bernoulli(0.5) ? 1.0 : -1.0;
                w[r * cols + j] = float(s * v * double(alphas[r]));
            } else {
                int k = int(rng.uniform(-7.999, 7.999));
                w[r * cols + j] =
                    float(double(k) / 7.0 * double(alphas[r]));
            }
        }
    }

    PackedQMat pack;
    pack.ensure(w.data(), rows, cols, 1, schemes, alphas, 4);

    // The zero-term expansion must appear: zero codes (both j = -1)
    // from the all-zero rows, and at least one single-term code
    // (j2 = -1, j1 >= 0) among the power-of-two magnitudes.
    bool sawZeroCode = false, sawSingleTerm = false;
    for (const Sp2Code& c : pack.sp2Codes()) {
        if (c.j1 < 0 && c.j2 < 0)
            sawZeroCode = true;
        if (c.j1 >= 0 && c.j2 < 0)
            sawSingleTerm = true;
    }
    EXPECT_TRUE(sawZeroCode);
    EXPECT_TRUE(sawSingleTerm);

    std::vector<int8_t> acts = randomActCodes(m * cols, rng);
    std::vector<int32_t> want = simAccumulators(pack, acts, m);
    std::vector<int32_t> got = packedAccumulators(pack, acts, m);
    ASSERT_EQ(got, want);

    // All-zero rows accumulate exactly zero on both paths.
    for (size_t r = 4; r < 6; ++r)
        for (size_t b = 0; b < m; ++b)
            EXPECT_EQ(got[r * m + b], 0) << "row " << r;
}

// ------------------------------------------------------------------
// Pack lifecycle: ensure() is O(1) on unchanged inputs and repacks
// on a version bump.
// ------------------------------------------------------------------

TEST(InferPack, EnsureReusesUntilVersionBump)
{
    Rng rng(13);
    size_t rows = 6, cols = 8;
    std::vector<float> w(rows * cols), q(rows * cols);
    for (float& x : w)
        x = float(rng.normal(0.0, 0.4));
    QConfig cfg;
    MatrixQuantResult res =
        quantizeMatrix(w.data(), q.data(), rows, cols, cfg);

    PackedQMat pack;
    pack.ensure(q.data(), rows, cols, 1, res.rowScheme, res.rowAlpha,
                cfg.bits);
    EXPECT_EQ(pack.packCount(), 1u);
    pack.ensure(q.data(), rows, cols, 1, res.rowScheme, res.rowAlpha,
                cfg.bits);
    EXPECT_EQ(pack.packCount(), 1u);
    pack.ensure(q.data(), rows, cols, 2, res.rowScheme, res.rowAlpha,
                cfg.bits);
    EXPECT_EQ(pack.packCount(), 2u);
}

// ------------------------------------------------------------------
// Layer-level differential: the int backend's eval forward against
// the fake-quant float eval forward on the same calibrated layer.
// The integer path is exact accumulation + one rescale; the float
// path sums float products — they agree to rounding tolerance.
// ------------------------------------------------------------------

TEST(InferDiff, LinearIntForwardMatchesFloatEval)
{
    for (QuantScheme scheme :
         {QuantScheme::Sp2, QuantScheme::Fixed, QuantScheme::Mixed}) {
        SCOPED_TRACE(toString(scheme));
        Rng rng(21);
        size_t in = 24, out = 18, n = 9;
        Linear lin(in, out, rng, /*bias=*/true);
        lin.configureOwnActQuant(4, true);
        Tensor x = Tensor::randn({n, in}, rng, 1.0);
        for (float& v : x.span())
        v = std::fabs(v);
        lin.forward(x, true); // calibrate the activation quantizer

        QConfig cfg;
        cfg.scheme = scheme;
        MatrixQuantResult res = quantizeMatrix(
            lin.weight().w.data(), lin.weight().w.data(), out, in,
            cfg);
        lin.weight().noteUpdated();

        Tensor want = lin.forward(x, false); // fake-quant float path
        lin.enableIntInference(res, cfg.bits);
        Tensor got = lin.forward(x, false); // packed int path
        ASSERT_TRUE(lin.intInferenceEnabled());
        EXPECT_EQ(lin.packedQWeights().packCount(), 1u);
        expectNearRel(got, want, 5e-5);

        // Backend toggles switch cleanly back.
        lin.disableIntInference();
        Tensor back = lin.forward(x, false);
        for (size_t i = 0; i < back.size(); ++i)
            ASSERT_EQ(back[i], want[i]);
    }
}

TEST(InferDiff, Conv2dIntForwardMatchesFloatEval)
{
    Rng rng(22);
    size_t n = 3;
    Conv2d conv(3, 10, 3, 1, 1, rng, /*bias=*/true);
    conv.configureOwnActQuant(4, true);
    Tensor x = Tensor::randn({n, 3, 9, 9}, rng, 1.0);
    for (float& v : x.span())
        v = std::fabs(v);
    conv.forward(x, true);

    QConfig cfg; // Mixed, 4-bit, per-row — the paper default
    MatrixQuantResult res = quantizeMatrix(
        conv.weight().w.data(), conv.weight().w.data(), 10, 3 * 3 * 3,
        cfg);
    conv.weight().noteUpdated();

    Tensor want = conv.forward(x, false);
    conv.enableIntInference(res, cfg.bits);
    Tensor got = conv.forward(x, false);
    expectNearRel(got, want, 5e-5);
}

TEST(InferDiff, DwConv2dIntForwardMatchesFloatEval)
{
    Rng rng(26);
    size_t n = 3, ch = 6;
    DwConv2d dw(ch, 3, 1, 1, rng);
    dw.configureOwnActQuant(4, true);
    Tensor x = Tensor::randn({n, ch, 9, 9}, rng, 1.0);
    for (float& v : x.span())
        v = std::fabs(v);
    dw.forward(x, true); // calibrate

    QConfig cfg; // Mixed, 4-bit, per-row: one row per channel kernel
    MatrixQuantResult res = quantizeMatrix(
        dw.weight().w.data(), dw.weight().w.data(), ch, 3 * 3, cfg);
    dw.weight().noteUpdated();

    Tensor want = dw.forward(x, false); // fake-quant float path
    dw.enableIntInference(res, cfg.bits);
    Tensor got = dw.forward(x, false); // packed shift-add path
    ASSERT_TRUE(dw.intInferenceEnabled());
    EXPECT_EQ(dw.packedQWeights().packCount(), 1u);
    expectNearRel(got, want, 5e-5);

    // Backend toggles switch cleanly back.
    dw.disableIntInference();
    Tensor back = dw.forward(x, false);
    for (size_t i = 0; i < back.size(); ++i)
        ASSERT_EQ(back[i], want[i]);
}

TEST(InferDiff, LstmIntForwardMatchesFloatEval)
{
    Rng rng(23);
    size_t i = 12, h = 16, t = 5, n = 8;
    Lstm lstm(i, h, rng);
    lstm.configureOwnActQuant(4, true);
    Tensor x = Tensor::randn({t, n, i}, rng, 1.0);
    lstm.forward(x, true);

    QConfig cfg;
    MatrixQuantResult rwx = quantizeMatrix(
        lstm.wxParam().w.data(), lstm.wxParam().w.data(), 4 * h, i,
        cfg);
    lstm.wxParam().noteUpdated();
    MatrixQuantResult rwh = quantizeMatrix(
        lstm.whParam().w.data(), lstm.whParam().w.data(), 4 * h, h,
        cfg);
    lstm.whParam().noteUpdated();

    Tensor want = lstm.forward(x, false);
    lstm.enableIntInference(rwx, rwh, cfg.bits);
    Tensor got = lstm.forward(x, false);
    // Recurrent tolerance: per-step rounding differences are
    // re-absorbed by the hidden-state quantizer, so drift stays
    // bounded rather than compounding.
    expectNearRel(got, want, 2e-3);
}

TEST(InferDiff, GruIntForwardMatchesFloatEval)
{
    Rng rng(24);
    size_t i = 12, h = 16, t = 5, n = 8;
    Gru gru(i, h, rng);
    gru.configureOwnActQuant(4, true);
    Tensor x = Tensor::randn({t, n, i}, rng, 1.0);
    gru.forward(x, true);

    QConfig cfg;
    MatrixQuantResult rwx = quantizeMatrix(
        gru.wxParam().w.data(), gru.wxParam().w.data(), 3 * h, i,
        cfg);
    gru.wxParam().noteUpdated();
    MatrixQuantResult rwh = quantizeMatrix(
        gru.whParam().w.data(), gru.whParam().w.data(), 3 * h, h,
        cfg);
    gru.whParam().noteUpdated();

    Tensor want = gru.forward(x, false);
    gru.enableIntInference(rwx, rwh, cfg.bits);
    Tensor got = gru.forward(x, false);
    expectNearRel(got, want, 2e-3);
}

// ------------------------------------------------------------------
// Session-level: a QAT-finalized model routed through all three
// backends by InferenceSession. FakeQuant must reproduce the plain
// eval forward exactly; Int must track it to tolerance; Float must
// differ from FakeQuant only by the activation quantizers.
// ------------------------------------------------------------------

TEST(InferSession, BackendsAgreeOnFinalizedModel)
{
    Rng rng(25);
    auto model = makeTinyConvNet(4, rng);
    QConfig cfg;
    QatContext qat(cfg);
    qat.attach(model->params());
    model->setActQuant(cfg.actBits, true);

    Tensor x = Tensor::randn({4, 3, 12, 12}, rng, 1.0);
    for (float& v : x.span())
        v = std::fabs(v);
    model->forward(x, true); // calibrate activation quantizers
    qat.finalize();

    Tensor evalRef = model->forward(x, false);

    InferenceSession sess(*model, &qat, InferBackend::FakeQuant);
    EXPECT_GT(sess.layersSwitched(), 0u);
    Tensor fq = sess.run(x);
    ASSERT_EQ(fq.size(), evalRef.size());
    for (size_t j = 0; j < fq.size(); ++j)
        ASSERT_EQ(fq[j], evalRef[j]) << "index " << j;

    sess.setBackend(InferBackend::Int);
    Tensor iq = sess.run(x);
    expectNearRel(iq, fq, 2e-3);

    sess.setBackend(InferBackend::Float);
    Tensor fl = sess.run(x);
    ASSERT_EQ(fl.size(), fq.size());

    sess.setBackend(InferBackend::FakeQuant);
    Tensor fq2 = sess.run(x);
    for (size_t j = 0; j < fq2.size(); ++j)
        ASSERT_EQ(fq2[j], fq[j]) << "index " << j;
}

// ------------------------------------------------------------------
// Compiler bridge: the packed panels fed through the simulator's
// functional path. referenceGemmInt and runGemmFunctional are
// already pinned to each other (runner_test); here the packed qgemm
// accumulators must equal both, modulo the fixed-first permutation.
// ------------------------------------------------------------------

TEST(InferDiff, PackedPanelsMatchRunnerFunctionalPath)
{
    Rng rng(26);
    size_t rows = 10, cols = 12, m = 4;
    std::vector<float> w(rows * cols), q(rows * cols);
    for (float& x : w)
        x = float(rng.normal(0.0, 0.4));
    QConfig cfg; // Mixed
    MatrixQuantResult res =
        quantizeMatrix(w.data(), q.data(), rows, cols, cfg);
    PackedQMat pack;
    pack.ensure(q.data(), rows, cols, 1, res.rowScheme, res.rowAlpha,
                cfg.bits);

    std::vector<int8_t> acts = randomActCodes(m * cols, rng);
    std::vector<size_t> rowOrder;
    QuantizedGemm qg = packedToQuantizedGemm(pack, acts, m, rowOrder);
    ASSERT_EQ(rowOrder.size(), rows);
    EXPECT_EQ(qg.ns, pack.numSp2());
    EXPECT_EQ(qg.nf + qg.ns, rows);

    std::vector<int32_t> ref = referenceGemmInt(qg);
    std::vector<int32_t> sim =
        runGemmFunctional(qg, designPointByName("D1-3"));
    ASSERT_EQ(ref, sim);

    std::vector<int32_t> acc = packedAccumulators(pack, acts, m);
    for (size_t b = 0; b < m; ++b)
        for (size_t c = 0; c < rows; ++c)
            ASSERT_EQ(ref[b * rows + c], acc[rowOrder[c] * m + b])
                << "batch " << b << " column " << c;
}

} // namespace
} // namespace mixq
