/**
 * @file
 * Chaos matrix for the serving fault-tolerance layer (serve/fault.hh
 * drives deterministic injections; see ARCHITECTURE.md "Failure
 * model"). Every test pins the same two invariants: (1) every future
 * submit() ever handed out settles — with the output or a structured
 * error — no matter which fault fires, and the process never aborts;
 * (2) once the fault is behind us, a healthy request's output is
 * bit-identical to a fault-free run. The matrix: a worker forward
 * that throws (batch fails, worker survives), a worker killed
 * permanently (survivor drains; last death fails everything instead
 * of hanging), a warmup allocation failure, per-request deadline
 * expiry under a stalled worker, and hot reload refusing a damaged or
 * mismatched artifact while a good one swaps in.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "infer/session.hh"
#include "nn/models.hh"
#include "nn/trainer.hh"
#include "serial/deploy.hh"
#include "serve/fault.hh"
#include "serve/server.hh"
#include "util/rng.hh"

namespace mixq {
namespace {

void
expectBitEqual(const Tensor& got, const Tensor& ref)
{
    ASSERT_EQ(got.shape(), ref.shape());
    for (size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(got[i], ref[i]) << "index " << i;
}

/** Contiguous item slice of a batch-axis-0 tensor [N, ...]. */
Tensor
sliceAxis0(const Tensor& x, size_t off, size_t k)
{
    std::vector<size_t> s = x.shape();
    s[0] = k;
    Tensor o(std::move(s));
    size_t row = x.size() / x.dim(0);
    std::copy_n(x.data() + off * row, k * row, o.data());
    return o;
}

/** QAT-calibrate @p model on @p x and switch it to the Int backend. */
void
toIntBackend(Module& model, const Tensor& x)
{
    QConfig cfg;
    QatContext qat(cfg);
    qat.attach(model.params());
    model.setActQuant(cfg.actBits, true);
    model.forward(x, true); // calibrate
    qat.finalize();
    applyInferBackend(model, InferBackend::Int, &qat);
}

Tensor
cnnData(uint64_t seed = 81)
{
    Rng rng(seed);
    Tensor x = Tensor::randn({8, 3, 12, 12}, rng, 1.0);
    for (float& v : x.span())
        v = v < 0.0f ? -v : v;
    return x;
}

BatchTraits
cnnTraits()
{
    BatchTraits traits;
    traits.itemShape = {1, 3, 12, 12};
    return traits;
}

/** A MiniResNet on the Int backend, deterministic in @p seed. */
std::unique_ptr<Module>
intResNet(uint64_t seed, const Tensor& calib, size_t base = 8)
{
    Rng rng(seed);
    auto model = makeMiniResNet(4, rng, base);
    toIntBackend(*model, calib);
    return model;
}

std::string
tmpPath(const std::string& name)
{
    return testing::TempDir() + "mixq_fault_" + name;
}

/** Calibrate a fresh MiniResNet(seed) and write its deploy artifact. */
std::string
writeArtifact(const std::string& name, uint64_t seed,
              const Tensor& calib, size_t base = 8)
{
    Rng rng(seed);
    auto model = makeMiniResNet(4, rng, base);
    QConfig cfg;
    QatContext qat(cfg);
    qat.attach(model->params());
    model->setActQuant(cfg.actBits, true);
    model->forward(calib, true);
    qat.finalize();
    applyInferBackend(*model, InferBackend::Int, &qat);
    const std::string path = tmpPath(name);
    saveDeployArtifact(path, *model, qat);
    return path;
}

/** The ServeError code a settled-with-error future carries. */
ServeError::Code
errorCode(std::future<Tensor>& f)
{
    try {
        f.get();
    } catch (const ServeError& e) {
        return e.code();
    } catch (const std::exception& e) {
        ADD_FAILURE() << "expected ServeError, got: " << e.what();
        return ServeError::Code::Stopped;
    }
    ADD_FAILURE() << "future resolved with a value, expected an error";
    return ServeError::Code::Stopped;
}

/** Disarms on scope exit so a failing ASSERT cannot leak an armed
    plan into the next test. */
struct ArmedPlan
{
    explicit ArmedPlan(const FaultPlan& p) { armFaultPlan(p); }
    ~ArmedPlan() { disarmFaultPlan(); }
};

TEST(ServeFault, ForwardThrowFailsOnlyItsBatchAndWorkerKeepsServing)
{
    Tensor x = cnnData();
    auto model = intResNet(82, x);
    std::vector<Tensor> refs;
    for (size_t i = 0; i < 6; ++i)
        refs.push_back(model->forward(sliceAxis0(x, i, 1), false));

    FaultPlan plan;
    plan.throwInForwardAtBatch = 2;
    ArmedPlan armed(plan);

    ServeOptions opt;
    opt.deadlineUs = 0; // one request per batch: request i = batch i
    BatchServer server(std::vector<Module*>{model.get()}, cnnTraits(),
                       opt);

    // Serve sequentially so the global batch sequence is the request
    // index. Batch 2 must fail with the injected error; every other
    // batch — including the ones after the fault — must be
    // bit-identical to the fault-free forward.
    for (size_t i = 0; i < 6; ++i) {
        SubmitResult r = server.submit(sliceAxis0(x, i, 1));
        ASSERT_EQ(r.status, ServeStatus::Accepted) << "request " << i;
        if (i == 2) {
            EXPECT_THROW(r.future.get(), FaultInjected);
        } else {
            Tensor got = r.future.get();
            expectBitEqual(got, refs[i]);
        }
    }

    // The worker surviving the fault is observable: it still serves,
    // bit-identically (stats are read after stop() joins it — the
    // success counters trail the futures settling).
    SubmitResult after = server.submit(sliceAxis0(x, 0, 1));
    ASSERT_EQ(after.status, ServeStatus::Accepted)
        << "a contained fault must not retire the worker";
    expectBitEqual(after.future.get(), refs[0]);
    server.stop(true);

    BatchServer::Stats st = server.stats();
    EXPECT_EQ(st.faults, 1u);
    EXPECT_EQ(st.failed, 1u);
    EXPECT_EQ(st.requests, 6u);
}

TEST(ServeFault, KilledWorkerLeavesSurvivorDrainingTheQueue)
{
    Tensor x = cnnData();
    auto replicaA = intResNet(82, x);
    auto replicaB = intResNet(82, x); // same seed: identical weights
    std::vector<Tensor> refs;
    for (size_t i = 0; i < 8; ++i)
        refs.push_back(replicaA->forward(sliceAxis0(x, i, 1), false));

    FaultPlan plan;
    plan.killWorkerAtBatch = 1;
    ArmedPlan armed(plan);

    ServeOptions opt;
    opt.deadlineUs = 0;
    BatchServer server(
        std::vector<Module*>{replicaA.get(), replicaB.get()},
        cnnTraits(), opt);

    // Burst-submit; exactly one batch draws sequence number 1 and its
    // worker dies serving it. Whichever worker that was, the other
    // must drain everything else.
    std::vector<std::future<Tensor>> futs;
    for (size_t i = 0; i < 8; ++i) {
        SubmitResult r = server.submit(sliceAxis0(x, i, 1));
        ASSERT_EQ(r.status, ServeStatus::Accepted);
        futs.push_back(std::move(r.future));
    }

    size_t killed = 0, served = 0;
    for (size_t i = 0; i < futs.size(); ++i) {
        try {
            Tensor got = futs[i].get();
            expectBitEqual(got, refs[i]);
            ++served;
        } catch (const FaultInjected&) {
            ++killed;
        }
    }
    EXPECT_EQ(killed, 1u);
    EXPECT_EQ(served, 7u);

    // The survivor still serves, bit-identically.
    SubmitResult after = server.submit(sliceAxis0(x, 0, 1));
    ASSERT_EQ(after.status, ServeStatus::Accepted);
    expectBitEqual(after.future.get(), refs[0]);

    // The dead worker's exit bookkeeping may trail its batch's future
    // by an instant — poll for it rather than racing it.
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (server.stats().workersAlive != 1 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(server.stats().workersAlive, 1u);
    server.stop(true);
    EXPECT_EQ(server.stats().faults, 1u);
}

TEST(ServeFault, LastWorkerDeathFailsEverythingInsteadOfHanging)
{
    Tensor x = cnnData();
    auto model = intResNet(82, x);

    FaultPlan plan;
    plan.killWorkerAtBatch = 0;
    ArmedPlan armed(plan);

    ServeOptions opt;
    opt.deadlineUs = 0;
    BatchServer server(std::vector<Module*>{model.get()}, cnnTraits(),
                       opt);

    std::vector<std::future<Tensor>> futs;
    for (size_t i = 0; i < 5; ++i)
        futs.push_back(server.submit(sliceAxis0(x, i, 1)).future);

    // Every future settles: one with the injected death, the rest
    // with a structured server error — never a hang.
    size_t killed = 0, orphaned = 0;
    for (auto& f : futs) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(60)),
                  std::future_status::ready)
            << "a future failed to settle after the last worker died";
        try {
            f.get();
            FAIL() << "no worker was alive to produce a value";
        } catch (const WorkerKillFault&) {
            ++killed;
        } catch (const ServeError& e) {
            EXPECT_TRUE(e.code() == ServeError::Code::WorkerFault ||
                        e.code() == ServeError::Code::Stopped);
            ++orphaned;
        }
    }
    EXPECT_EQ(killed, 1u);
    EXPECT_EQ(orphaned, 4u);
    EXPECT_EQ(server.stats().workersAlive, 0u);

    // Submission after total death is a deterministic rejection.
    SubmitResult r = server.submit(sliceAxis0(x, 0, 1));
    EXPECT_EQ(r.status, ServeStatus::Rejected);
    EXPECT_EQ(errorCode(r.future), ServeError::Code::Stopped);

    server.stop(true); // must return, not hang on dead workers
}

TEST(ServeFault, WarmupAllocationFailureRetiresTheWorkerCleanly)
{
    Tensor x = cnnData();
    auto model = intResNet(82, x);

    FaultPlan plan;
    plan.failWarmupAlloc = true;
    ArmedPlan armed(plan);

    ServeOptions opt;
    opt.deadlineUs = 0;
    BatchServer server(std::vector<Module*>{model.get()}, cnnTraits(),
                       opt);

    // The worker dies in warmup before serving anything. Wait for the
    // death to be observed, then check the server degrades to
    // deterministic rejection instead of aborting or hanging.
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (server.stats().workersAlive != 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(server.stats().workersAlive, 0u);

    SubmitResult r = server.submit(sliceAxis0(x, 0, 1));
    EXPECT_EQ(r.status, ServeStatus::Rejected);
    EXPECT_EQ(errorCode(r.future), ServeError::Code::Stopped);
    server.stop(true);
}

TEST(ServeFault, DeadlineExpiryDropsQueuedRequestsBeforeGathering)
{
    Tensor x = cnnData();
    auto model = intResNet(82, x);
    std::vector<Tensor> refs;
    for (size_t i = 0; i < 6; ++i)
        refs.push_back(model->forward(sliceAxis0(x, i, 1), false));

    ServeOptions opt;
    opt.deadlineUs = 0;
    BatchServer server(std::vector<Module*>{model.get()}, cnnTraits(),
                       opt);

    // Warm the server fault-free so the stall below is the only thing
    // slowing it down.
    expectBitEqual(server.submit(sliceAxis0(x, 0, 1)).future.get(),
                   refs[0]);

    // A 50ms stall per batch against 1ms request deadlines: whatever
    // is still queued when the worker comes back must be dropped as
    // expired, not gathered late.
    FaultPlan plan;
    plan.stallEveryBatchUs = 50'000;
    {
        ArmedPlan armed(plan);
        std::vector<std::future<Tensor>> futs;
        for (size_t i = 0; i < 6; ++i) {
            SubmitResult r = server.submit(sliceAxis0(x, i, 1), 1'000);
            ASSERT_EQ(r.status, ServeStatus::Accepted);
            futs.push_back(std::move(r.future));
        }
        size_t served = 0, expired = 0;
        for (size_t i = 0; i < futs.size(); ++i) {
            try {
                Tensor got = futs[i].get();
                expectBitEqual(got, refs[i]);
                ++served;
            } catch (const ServeError& e) {
                EXPECT_EQ(e.code(), ServeError::Code::Expired);
                ++expired;
            }
        }
        EXPECT_EQ(served + expired, 6u);
        EXPECT_GE(expired, 1u);
        EXPECT_EQ(server.stats().expired, expired);
    }

    // Fault gone, no deadline: healthy and bit-identical again.
    expectBitEqual(server.submit(sliceAxis0(x, 1, 1)).future.get(),
                   refs[1]);
    server.stop(true);
}

TEST(ServeFault, ReloadRefusesDamagedArtifactAndSwapsGoodOne)
{
    Tensor x = cnnData();
    const std::string artifactA = writeArtifact("reload_a.bin", 82, x);
    const std::string artifactB = writeArtifact("reload_b.bin", 97, x);
    const std::string artifactSmall =
        writeArtifact("reload_small.bin", 82, x, 4);

    // References: what models A and B answer when run directly.
    auto modelA = intResNet(82, x);
    auto modelB = intResNet(97, x);
    Tensor req = sliceAxis0(x, 2, 1);
    Tensor refA = modelA->forward(req, false);
    Tensor refB = modelB->forward(req, false);
    ASSERT_NE(std::memcmp(refA.data(), refB.data(),
                     refA.size() * sizeof(float)),
              0)
        << "fixture models must disagree for the swap to be visible";

    // Serve from a model that got its weights from artifact A.
    Rng rng(7);
    auto serving = makeMiniResNet(4, rng);
    loadDeployArtifact(artifactA, *serving);
    ServeOptions opt;
    opt.deadlineUs = 0;
    BatchServer server(std::vector<Module*>{serving.get()},
                       cnnTraits(), opt);
    expectBitEqual(server.submit(Tensor(req)).future.get(), refA);

    // Damaged file: precise failure class, old weights keep serving.
    {
        FaultPlan plan;
        plan.corruptOnRead = true;
        ArmedPlan armed(plan);
        LoadResult r = server.reloadArtifact(artifactA);
        EXPECT_EQ(r.status, LoadStatus::ChecksumMismatch)
            << r.message;
    }
    expectBitEqual(server.submit(Tensor(req)).future.get(), refA);

    // Wrong architecture: refused as a mismatch, still serving A.
    LoadResult mism = server.reloadArtifact(artifactSmall);
    EXPECT_EQ(mism.status, LoadStatus::Mismatch) << mism.message;
    expectBitEqual(server.submit(Tensor(req)).future.get(), refA);

    // Missing path: refused before touching the model.
    LoadResult miss = server.reloadArtifact(tmpPath("no_such.bin"));
    EXPECT_EQ(miss.status, LoadStatus::OpenFailed);

    // Good artifact: the swap takes and answers are model B's, bit
    // for bit.
    LoadResult ok = server.reloadArtifact(artifactB);
    EXPECT_TRUE(ok.ok()) << ok.message;
    expectBitEqual(server.submit(Tensor(req)).future.get(), refB);

    server.stop(true);
    for (const std::string& p : {artifactA, artifactB, artifactSmall})
        std::remove(p.c_str());
}

TEST(ServeFault, ReloadSwapsUnderPlannedSharedModelMode)
{
    Tensor x = cnnData();
    const std::string artifactB =
        writeArtifact("reload_planned_b.bin", 97, x);
    auto modelB = intResNet(97, x);
    Tensor req = sliceAxis0(x, 3, 1);
    Tensor refB = modelB->forward(req, false);

    auto serving = intResNet(82, x);
    Tensor refA = serving->forward(req, false);

    ServeOptions opt;
    opt.deadlineUs = 0;
    BatchServer server(*serving, size_t(2), cnnTraits(), opt);
    expectBitEqual(server.submit(Tensor(req)).future.get(), refA);

    LoadResult ok = server.reloadArtifact(artifactB);
    EXPECT_TRUE(ok.ok()) << ok.message;
    // Both workers must observe the swapped panels.
    for (int i = 0; i < 4; ++i)
        expectBitEqual(server.submit(Tensor(req)).future.get(), refB);

    server.stop(true);
    std::remove(artifactB.c_str());
}

} // namespace
} // namespace mixq
