/**
 * @file
 * Batched inference server tests. The heart is batching invariance:
 * the Int backend's integer accumulation is per output column and
 * every float epilogue is per-element, so a request served alone must
 * be *bit-identical* to the same request inside any coalesced batch —
 * checked for the CNN (MiniResNet, batch axis 0) and both time-major
 * sequence models (LstmLm, GruTagger, batch axis 1) across worker
 * OMP thread counts. Around it: concurrency (ragged producers, no
 * lost or duplicated responses), shutdown mid-flight (every future
 * settles), the deadline=0 degenerate case (one request per batch),
 * request validation, and inference-only Conv+BN folding
 * (serve/bn_fold.hh) staying bit-identical on the Int backend.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "infer/session.hh"
#include "nn/models.hh"
#include "nn/rnn_models.hh"
#include "nn/trainer.hh"
#include "serve/bn_fold.hh"
#include "serve/server.hh"
#include "util/rng.hh"

namespace mixq {
namespace {

void
expectBitEqual(const Tensor& got, const Tensor& ref)
{
    ASSERT_EQ(got.shape(), ref.shape());
    for (size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(got[i], ref[i]) << "index " << i;
}

/** Contiguous item slice of a batch-axis-0 tensor [N, ...]. */
Tensor
sliceAxis0(const Tensor& x, size_t off, size_t k)
{
    std::vector<size_t> s = x.shape();
    s[0] = k;
    Tensor o(std::move(s));
    size_t row = x.size() / x.dim(0);
    std::copy_n(x.data() + off * row, k * row, o.data());
    return o;
}

/** Item-column slice of a batch-axis-1 tensor [T, N, ...]. */
Tensor
sliceAxis1(const Tensor& x, size_t off, size_t k)
{
    std::vector<size_t> s = x.shape();
    s[1] = k;
    Tensor o(std::move(s));
    size_t t = x.dim(0), n = x.dim(1);
    size_t inner = x.size() / (t * n);
    for (size_t tt = 0; tt < t; ++tt)
        std::copy_n(x.data() + (tt * n + off) * inner, k * inner,
                    o.data() + tt * k * inner);
    return o;
}

/** QAT-calibrate @p model on @p x and switch it to the Int backend. */
void
toIntBackend(Module& model, const Tensor& x)
{
    QConfig cfg;
    QatContext qat(cfg);
    qat.attach(model.params());
    model.setActQuant(cfg.actBits, true);
    model.forward(x, true); // calibrate
    qat.finalize();
    applyInferBackend(model, InferBackend::Int, &qat);
}

/**
 * Serve every composition of @p data through a fresh one-worker
 * server and require each response bit-identical to the same request
 * run alone (@p refs, computed by direct forwards). Compositions are
 * sized to sum to maxBatch so the worker coalesces them into one
 * forward (a slow machine may split them — invariance must hold
 * either way). With @p planned the server runs the shared-model
 * plan-execution path instead of the replica/arena path — the
 * references are still direct (scope-path) forwards, so this is also
 * the planned-vs-scope bit-equality check.
 */
void
checkCompositions(Module& model, const BatchTraits& traits,
                  const Tensor& data, int ompThreads,
                  const std::vector<std::vector<size_t>>& comps,
                  bool planned = false)
{
    auto slice = traits.batchAxis == 0 ? sliceAxis0 : sliceAxis1;
    for (const std::vector<size_t>& comp : comps) {
        size_t total = 0;
        for (size_t k : comp)
            total += k;

        std::vector<Tensor> reqs, refs;
        size_t off = 0;
        for (size_t k : comp) {
            reqs.push_back(slice(data, off, k));
            refs.push_back(model.forward(reqs.back(), false));
            off += k;
        }

        ServeOptions opt;
        opt.maxBatch = total;
        opt.deadlineUs = 2'000'000; // settled by the batch filling
        opt.ompThreads = ompThreads;
        std::unique_ptr<BatchServer> server;
        if (planned)
            server = std::make_unique<BatchServer>(model, size_t(1),
                                                   traits, opt);
        else
            server = std::make_unique<BatchServer>(
                std::vector<Module*>{&model}, traits, opt);
        std::vector<std::future<Tensor>> futs;
        for (Tensor& r : reqs)
            futs.push_back(server->submit(std::move(r)).future);
        for (size_t i = 0; i < futs.size(); ++i) {
            SCOPED_TRACE(testing::Message()
                         << "request " << i << " of " << comp.size()
                         << ", threads " << ompThreads << ", planned "
                         << planned);
            Tensor got = futs[i].get();
            expectBitEqual(got, refs[i]);
        }
        server->stop(true);
        BatchServer::Stats st = server->stats();
        EXPECT_EQ(st.requests, comp.size());
        EXPECT_EQ(st.items, total);
        EXPECT_EQ(st.arenaOverflows, 0u);
        if (planned) {
            EXPECT_GT(st.planPeakBytes, 0u);
            EXPECT_GE(st.arenaCapacity, st.planPeakBytes);
            EXPECT_GT(st.scratchBytes, 0u);
        }
    }
}

std::vector<int>
threadCounts()
{
#ifdef _OPENMP
    return {1, 4, 8};
#else
    return {0};
#endif
}

const std::vector<std::vector<size_t>> kComps = {
    {1, 1},                     // pair of singles
    {3, 1, 2, 1},               // ragged batch of 7
    {1, 1, 1, 1, 1, 1, 1, 1},   // full batch of 8 singles
};

TEST(ServeBatching, MiniResNetRequestInvariantToCoalescing)
{
    Rng dataRng(81);
    Tensor x = Tensor::randn({8, 3, 12, 12}, dataRng, 1.0);
    for (float& v : x.span())
        v = v < 0.0f ? -v : v;

    for (int threads : threadCounts()) {
#ifdef _OPENMP
        omp_set_num_threads(threads); // for the reference forwards
#endif
        Rng rng(82);
        auto model = makeMiniResNet(4, rng);
        toIntBackend(*model, x);

        BatchTraits traits;
        traits.itemShape = {1, 3, 12, 12};
        for (bool planned : {false, true})
            checkCompositions(*model, traits, x, threads, kComps,
                              planned);
    }
}

TEST(ServeBatching, LstmLmRequestInvariantToCoalescing)
{
    size_t vocab = 20, t = 6;
    Rng dataRng(83);
    Tensor x({t, 8});
    for (float& v : x.span())
        v = float(int(dataRng.uniform(0.0, double(vocab) - 0.001)));

    for (int threads : threadCounts()) {
#ifdef _OPENMP
        omp_set_num_threads(threads);
#endif
        Rng rng(84);
        LstmLm lm(vocab, 10, 16, 2, rng);
        toIntBackend(lm, x);

        BatchTraits traits;
        traits.itemShape = {t, 1};
        traits.batchAxis = 1;
        traits.timeMajorOut = true;
        for (bool planned : {false, true})
            checkCompositions(lm, traits, x, threads, kComps,
                              planned);
    }
}

TEST(ServeBatching, GruTaggerRequestInvariantToCoalescing)
{
    size_t feat = 12, t = 6;
    Rng dataRng(85);
    Tensor x = Tensor::randn({t, 8, feat}, dataRng, 1.0);

    for (int threads : threadCounts()) {
#ifdef _OPENMP
        omp_set_num_threads(threads);
#endif
        Rng rng(86);
        GruTagger tagger(feat, 16, 2, 5, rng);
        toIntBackend(tagger, x);

        BatchTraits traits;
        traits.itemShape = {t, 1, feat};
        traits.batchAxis = 1;
        traits.timeMajorOut = true;
        for (bool planned : {false, true})
            checkCompositions(tagger, traits, x, threads, kComps,
                              planned);
    }
}

TEST(ServeConcurrency, RaggedProducersAllSettleCorrectly)
{
    Rng dataRng(87);
    Tensor pool = Tensor::randn({16, 3, 12, 12}, dataRng, 1.0);
    for (float& v : pool.span())
        v = v < 0.0f ? -v : v;

    Rng rng(88);
    auto model = makeMiniResNet(4, rng);
    toIntBackend(*model, pool);

    // Pre-compute the alone-served reference of every request the
    // producers will send (the model belongs to the worker once the
    // server is up).
    constexpr size_t kProducers = 4, kPerProducer = 12;
    std::vector<std::vector<Tensor>> reqs(kProducers);
    std::vector<std::vector<Tensor>> refs(kProducers);
    for (size_t p = 0; p < kProducers; ++p) {
        for (size_t i = 0; i < kPerProducer; ++i) {
            size_t k = 1 + (p + i) % 3; // ragged 1..3
            size_t off = (3 * i + p) % (16 - k);
            reqs[p].push_back(sliceAxis0(pool, off, k));
            refs[p].push_back(
                model->forward(reqs[p].back(), false));
        }
    }

    ServeOptions opt;
    opt.maxBatch = 8;
    opt.deadlineUs = 300;
    BatchServer server({model.get()},
                       BatchTraits{{1, 3, 12, 12}, 0, false}, opt);

    std::vector<std::vector<std::future<Tensor>>> futs(kProducers);
    std::vector<std::thread> producers;
    for (size_t p = 0; p < kProducers; ++p)
        producers.emplace_back([&, p] {
            for (size_t i = 0; i < kPerProducer; ++i)
                futs[p].push_back(
                    server.submit(std::move(reqs[p][i])).future);
        });
    for (std::thread& t : producers)
        t.join();

    size_t totalItems = 0;
    for (size_t p = 0; p < kProducers; ++p)
        for (size_t i = 0; i < kPerProducer; ++i) {
            SCOPED_TRACE(testing::Message()
                         << "producer " << p << " request " << i);
            ASSERT_EQ(futs[p][i].wait_for(std::chrono::seconds(30)),
                      std::future_status::ready)
                << "lost response";
            Tensor got = futs[p][i].get();
            expectBitEqual(got, refs[p][i]);
            totalItems += got.dim(0);
        }

    server.stop(true);
    BatchServer::Stats st = server.stats();
    EXPECT_EQ(st.requests, kProducers * kPerProducer);
    EXPECT_EQ(st.items, totalItems);
    EXPECT_GE(st.batches, 1u);
    EXPECT_LE(st.batches, st.requests);
}

TEST(ServeShutdown, StopMidFlightSettlesEveryFuture)
{
    Rng dataRng(89);
    Tensor x = Tensor::randn({1, 3, 12, 12}, dataRng, 1.0);
    Rng rng(90);
    auto model = makeMiniResNet(4, rng);
    toIntBackend(*model, x);

    ServeOptions opt;
    opt.maxBatch = 4;
    opt.deadlineUs = 50'000; // keep requests queued at stop time
    BatchServer server({model.get()},
                       BatchTraits{{1, 3, 12, 12}, 0, false}, opt);

    std::vector<std::future<Tensor>> futs;
    for (int i = 0; i < 40; ++i)
        futs.push_back(server.submit(sliceAxis0(x, 0, 1)).future);
    server.stop(/*drain=*/false);

    size_t served = 0, rejected = 0;
    for (size_t i = 0; i < futs.size(); ++i) {
        // stop() joined the workers, so every future must already be
        // settled — a zero-wait poll is the no-hang guard.
        ASSERT_EQ(futs[i].wait_for(std::chrono::seconds(0)),
                  std::future_status::ready)
            << "future " << i << " left hanging";
        try {
            Tensor got = futs[i].get();
            EXPECT_EQ(got.dim(0), 1u);
            ++served;
        } catch (const std::runtime_error&) {
            ++rejected;
        }
    }
    EXPECT_EQ(served + rejected, futs.size());

    // Submissions after stop are rejected, not enqueued.
    std::future<Tensor> late = server.submit(sliceAxis0(x, 0, 1)).future;
    EXPECT_THROW(late.get(), std::runtime_error);
}

TEST(ServeShutdown, SubmitVsStopHammerIsDeterministic)
{
    // Producers race submit() against stop(): whatever interleaving
    // the scheduler picks, each submit must come back with a coherent
    // verdict — Accepted (the future settles with a value or a
    // structured stop error) or Rejected (the future already failed,
    // nothing was enqueued) — and nothing may hang, crash, or settle
    // twice. Several rounds shake out different interleavings.
    Rng dataRng(101);
    Tensor x = Tensor::randn({1, 3, 12, 12}, dataRng, 1.0);
    Rng rng(102);
    auto model = makeMiniResNet(4, rng);
    toIntBackend(*model, x);

    constexpr size_t kProducers = 4;
    constexpr size_t kPerProducer = 25;
    for (int round = 0; round < 3; ++round) {
        ServeOptions opt;
        opt.maxBatch = 4;
        opt.deadlineUs = 200;
        BatchServer server({model.get()},
                           BatchTraits{{1, 3, 12, 12}, 0, false}, opt);

        std::vector<std::vector<SubmitResult>> results(kProducers);
        std::vector<std::thread> producers;
        for (size_t p = 0; p < kProducers; ++p)
            producers.emplace_back([&, p] {
                for (size_t i = 0; i < kPerProducer; ++i)
                    results[p].push_back(
                        server.submit(sliceAxis0(x, 0, 1)));
            });
        // Stop mid-burst, racing the producers.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(1 + round * 2));
        server.stop(/*drain=*/false);
        for (std::thread& t : producers)
            t.join();

        size_t served = 0, stopped = 0, rejected = 0;
        for (size_t p = 0; p < kProducers; ++p)
            for (size_t i = 0; i < results[p].size(); ++i) {
                SubmitResult& r = results[p][i];
                SCOPED_TRACE(testing::Message()
                             << "round " << round << " producer " << p
                             << " request " << i);
                ASSERT_EQ(r.future.wait_for(std::chrono::seconds(30)),
                          std::future_status::ready)
                    << "future left hanging across stop()";
                try {
                    Tensor got = r.future.get();
                    EXPECT_EQ(r.status, ServeStatus::Accepted);
                    EXPECT_EQ(got.dim(0), 1u);
                    ++served;
                } catch (const ServeError& e) {
                    EXPECT_EQ(e.code(), ServeError::Code::Stopped);
                    (r.status == ServeStatus::Rejected ? rejected
                                                       : stopped)++;
                }
            }
        EXPECT_EQ(served + stopped + rejected,
                  kProducers * kPerProducer);
        BatchServer::Stats st = server.stats();
        EXPECT_EQ(st.requests, served);
        EXPECT_EQ(st.accepted, served + stopped);
    }
}

TEST(ServeDeadline, ZeroDeadlineServesOneRequestPerBatch)
{
    Rng dataRng(91);
    Tensor x = Tensor::randn({2, 3, 12, 12}, dataRng, 1.0);
    Rng rng(92);
    auto model = makeMiniResNet(4, rng);
    toIntBackend(*model, x);

    ServeOptions opt;
    opt.maxBatch = 8;
    opt.deadlineUs = 0; // degenerate: never coalesce
    BatchServer server({model.get()},
                       BatchTraits{{1, 3, 12, 12}, 0, false}, opt);

    std::vector<std::future<Tensor>> futs;
    for (int i = 0; i < 6; ++i)
        futs.push_back(server.submit(sliceAxis0(x, i % 2, 1)).future);
    for (std::future<Tensor>& f : futs)
        f.get();
    server.stop(true);

    BatchServer::Stats st = server.stats();
    EXPECT_EQ(st.requests, 6u);
    EXPECT_EQ(st.batches, 6u) << "deadline 0 must not coalesce";
}

TEST(ServeValidation, BadRequestsFailTheirFutureOnly)
{
    Rng dataRng(93);
    Tensor x = Tensor::randn({1, 3, 12, 12}, dataRng, 1.0);
    Rng rng(94);
    auto model = makeMiniResNet(4, rng);
    toIntBackend(*model, x);

    ServeOptions opt;
    opt.maxBatch = 4;
    BatchServer server({model.get()},
                       BatchTraits{{1, 3, 12, 12}, 0, false}, opt);

    EXPECT_THROW(
        server.submit(Tensor({1, 3, 10, 10})).future.get(), // wrong dims
        std::invalid_argument);
    EXPECT_THROW(
        server.submit(Tensor({3, 12, 12})).future.get(), // wrong rank
        std::invalid_argument);
    EXPECT_THROW(
        server.submit(Tensor({5, 3, 12, 12})).future.get(), // > maxBatch
        std::invalid_argument);

    // The server still serves good requests afterwards.
    Tensor got = server.submit(sliceAxis0(x, 0, 1)).future.get();
    EXPECT_EQ(got.dim(0), 1u);
    server.stop(true);
}

// ------------------------------------------------------------------
// Conv+BN folding: the fold replicates BatchNorm2d's eval arithmetic
// per element inside the conv epilogue, so outputs stay bit-identical
// on every backend; unfolding restores the original graph.
// ------------------------------------------------------------------

TEST(ServeBnFold, FoldIsBitIdenticalOnIntAndFakeQuant)
{
    Rng dataRng(95);
    Tensor x = Tensor::randn({5, 3, 12, 12}, dataRng, 1.0);
    for (float& v : x.span())
        v = v < 0.0f ? -v : v;

    Rng rng(96);
    auto model = makeMiniResNet(4, rng);
    // Give the BN layers non-trivial running stats before folding.
    model->forward(x, true);
    QConfig cfg;
    QatContext qat(cfg);
    qat.attach(model->params());
    model->setActQuant(cfg.actBits, true);
    model->forward(x, true); // calibrate
    qat.finalize();

    InferenceSession sess(*model, &qat, InferBackend::Int);
    Tensor intRef = sess.run(x);
    sess.setBackend(InferBackend::FakeQuant);
    Tensor fqRef = sess.run(x);
    sess.setBackend(InferBackend::Int);

    size_t folded = foldBatchNormForEval(*model);
    EXPECT_GT(folded, 0u);
    EXPECT_EQ(foldBatchNormForEval(*model), 0u) << "must be idempotent";

    Tensor intFolded = sess.run(x);
    expectBitEqual(intFolded, intRef);

    sess.setBackend(InferBackend::FakeQuant);
    Tensor fqFolded = sess.run(x);
    ASSERT_EQ(fqFolded.shape(), fqRef.shape());
    for (size_t i = 0; i < fqRef.size(); ++i)
        ASSERT_NEAR(fqFolded[i], fqRef[i], 1e-5f) << "index " << i;

    size_t unfolded = unfoldBatchNormForEval(*model);
    EXPECT_EQ(unfolded, folded);
    Tensor fqBack = sess.run(x);
    expectBitEqual(fqBack, fqRef);
    sess.setBackend(InferBackend::Int);
    Tensor intBack = sess.run(x);
    expectBitEqual(intBack, intRef);
}

TEST(ServeBnFold, FoldedModelServesBitIdentically)
{
    Rng dataRng(97);
    Tensor x = Tensor::randn({8, 3, 12, 12}, dataRng, 1.0);
    for (float& v : x.span())
        v = v < 0.0f ? -v : v;

    Rng rng(98);
    auto model = makeMiniResNet(4, rng);
    toIntBackend(*model, x);
    ASSERT_GT(foldBatchNormForEval(*model), 0u);

    BatchTraits traits;
    traits.itemShape = {1, 3, 12, 12};
    for (bool planned : {false, true})
        checkCompositions(*model, traits, x, 0, {{3, 1, 2, 1}},
                          planned);
}

TEST(ServePlanned, TwoReplicasOverOneModelServeConcurrently)
{
    Rng dataRng(99);
    Tensor pool = Tensor::randn({16, 3, 12, 12}, dataRng, 1.0);
    for (float& v : pool.span())
        v = v < 0.0f ? -v : v;

    Rng rng(100);
    auto model = makeMiniResNet(4, rng);
    toIntBackend(*model, pool);

    std::vector<Tensor> reqs, refs;
    for (size_t i = 0; i < 24; ++i) {
        size_t k = 1 + i % 3;
        size_t off = (5 * i) % (16 - k);
        reqs.push_back(sliceAxis0(pool, off, k));
        refs.push_back(model->forward(reqs.back(), false));
    }

    // Two planned workers share the one model; both read its packed
    // panels concurrently while owning private slabs and scratch.
    ServeOptions opt;
    opt.maxBatch = 4;
    opt.deadlineUs = 200;
    BatchServer server(*model, 2, BatchTraits{{1, 3, 12, 12}, 0, false},
                       opt);
    std::vector<std::future<Tensor>> futs;
    for (Tensor& r : reqs)
        futs.push_back(server.submit(std::move(r)).future);
    for (size_t i = 0; i < futs.size(); ++i) {
        SCOPED_TRACE(testing::Message() << "request " << i);
        Tensor got = futs[i].get();
        expectBitEqual(got, refs[i]);
    }
    server.stop(true);
    BatchServer::Stats st = server.stats();
    EXPECT_EQ(st.requests, reqs.size());
    EXPECT_EQ(st.arenaOverflows, 0u);
}

} // namespace
} // namespace mixq
