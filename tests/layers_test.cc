/** @file Gradient and behaviour tests for the CNN layers and blocks. */

#include <gtest/gtest.h>

#include "grad_check.hh"
#include "nn/blocks.hh"
#include "nn/layers.hh"

namespace mixq {
namespace {

TEST(Linear, ForwardShapeAndBias)
{
    Rng rng(1);
    Linear fc(3, 2, rng, true);
    Tensor x = Tensor::randn({4, 3}, rng, 1.0);
    Tensor y = fc.forward(x, false);
    EXPECT_EQ(y.shape(), (std::vector<size_t>{4, 2}));
}

TEST(Linear, Gradients)
{
    Rng rng(2);
    Linear fc(5, 3, rng, true);
    Tensor x = Tensor::randn({4, 5}, rng, 1.0);
    checkGradients(fc, x);
}

TEST(Linear, QuantizableParamView)
{
    Rng rng(3);
    Linear fc(5, 3, rng, true);
    auto ps = fc.params();
    ASSERT_EQ(ps.size(), 2u);
    EXPECT_EQ(ps[0]->qRows, 3u);
    EXPECT_EQ(ps[0]->qCols, 5u);
    EXPECT_FALSE(ps[1]->quantizable()); // bias
}

TEST(Conv2d, ForwardShape)
{
    Rng rng(4);
    Conv2d conv(3, 8, 3, 2, 1, rng);
    Tensor x = Tensor::randn({2, 3, 8, 8}, rng, 1.0);
    Tensor y = conv.forward(x, false);
    EXPECT_EQ(y.shape(), (std::vector<size_t>{2, 8, 4, 4}));
}

TEST(Conv2d, MatchesDirectConvolution)
{
    Rng rng(5);
    Conv2d conv(1, 1, 3, 1, 0, rng, true);
    // Fixed small kernel / image: compare with a hand computation.
    Param& w = conv.weight();
    for (size_t i = 0; i < 9; ++i)
        w.w[i] = float(i + 1);
    Tensor x({1, 1, 3, 3});
    for (size_t i = 0; i < 9; ++i)
        x[i] = 1.0f;
    Tensor y = conv.forward(x, false);
    ASSERT_EQ(y.size(), 1u);
    EXPECT_FLOAT_EQ(y[0], 45.0f); // sum of 1..9
}

TEST(Conv2d, Gradients)
{
    Rng rng(6);
    Conv2d conv(2, 3, 3, 1, 1, rng, true);
    Tensor x = Tensor::randn({2, 2, 5, 5}, rng, 1.0);
    checkGradients(conv, x);
}

TEST(Conv2d, StridedGradients)
{
    Rng rng(7);
    Conv2d conv(2, 4, 3, 2, 1, rng);
    Tensor x = Tensor::randn({1, 2, 6, 6}, rng, 1.0);
    checkGradients(conv, x);
}

TEST(DwConv2d, ChannelsStayIndependent)
{
    Rng rng(8);
    DwConv2d dw(2, 3, 1, 1, rng);
    Tensor x({1, 2, 4, 4});
    // Only channel 0 is non-zero.
    for (size_t i = 0; i < 16; ++i)
        x[i] = 1.0f;
    Tensor y = dw.forward(x, false);
    double ch1 = 0.0;
    for (size_t i = 16; i < 32; ++i)
        ch1 += std::fabs(y[i]);
    EXPECT_DOUBLE_EQ(ch1, 0.0);
}

TEST(DwConv2d, Gradients)
{
    Rng rng(9);
    DwConv2d dw(3, 3, 1, 1, rng);
    Tensor x = Tensor::randn({2, 3, 5, 5}, rng, 1.0);
    checkGradients(dw, x);
}

TEST(BatchNorm2d, NormalizesTrainBatch)
{
    Rng rng(10);
    BatchNorm2d bn(2);
    Tensor x = Tensor::randn({8, 2, 4, 4}, rng, 3.0);
    Tensor y = bn.forward(x, true);
    // Per-channel mean ~0, var ~1.
    for (size_t c = 0; c < 2; ++c) {
        double s = 0.0, s2 = 0.0;
        size_t cnt = 0;
        for (size_t n = 0; n < 8; ++n) {
            for (size_t p = 0; p < 16; ++p) {
                double v = y.at4(n, c, p / 4, p % 4);
                s += v;
                s2 += v * v;
                ++cnt;
            }
        }
        EXPECT_NEAR(s / cnt, 0.0, 1e-4);
        EXPECT_NEAR(s2 / cnt, 1.0, 1e-2);
    }
}

TEST(BatchNorm2d, EvalUsesRunningStats)
{
    Rng rng(11);
    BatchNorm2d bn(1);
    Tensor x = Tensor::full({4, 1, 2, 2}, 2.0f);
    for (int i = 0; i < 100; ++i)
        bn.forward(x, true);
    Tensor y = bn.forward(x, false);
    // Running mean approaches 2, var approaches 0 -> y ~ 0.
    EXPECT_NEAR(y[0], 0.0f, 0.2f);
}

TEST(BatchNorm2d, Gradients)
{
    Rng rng(12);
    BatchNorm2d bn(3);
    Tensor x = Tensor::randn({4, 3, 3, 3}, rng, 1.0);
    checkGradients(bn, x, 1e-3, 3e-2);
}

TEST(ReLU, ForwardBackwardMasks)
{
    ReLU relu;
    Tensor x({4});
    x[0] = -1.0f; x[1] = 0.5f; x[2] = 0.0f; x[3] = 2.0f;
    Tensor y = relu.forward(x, true);
    EXPECT_FLOAT_EQ(y[0], 0.0f);
    EXPECT_FLOAT_EQ(y[1], 0.5f);
    Tensor g = Tensor::full({4}, 1.0f);
    Tensor gx = relu.backward(g);
    EXPECT_FLOAT_EQ(gx[0], 0.0f);
    EXPECT_FLOAT_EQ(gx[1], 1.0f);
    EXPECT_FLOAT_EQ(gx[3], 1.0f);
}

TEST(ReLU6, CapsAndMasks)
{
    ReLU relu6(6.0);
    Tensor x({3});
    x[0] = 3.0f; x[1] = 7.0f; x[2] = -1.0f;
    Tensor y = relu6.forward(x, true);
    EXPECT_FLOAT_EQ(y[1], 6.0f);
    Tensor g = Tensor::full({3}, 1.0f);
    Tensor gx = relu6.backward(g);
    EXPECT_FLOAT_EQ(gx[0], 1.0f);
    EXPECT_FLOAT_EQ(gx[1], 0.0f); // capped region
    EXPECT_FLOAT_EQ(gx[2], 0.0f);
}

TEST(MaxPool2d, ForwardAndGradRouting)
{
    MaxPool2d pool(2);
    Tensor x({1, 1, 2, 2});
    x[0] = 1.0f; x[1] = 4.0f; x[2] = 2.0f; x[3] = 3.0f;
    Tensor y = pool.forward(x, true);
    ASSERT_EQ(y.size(), 1u);
    EXPECT_FLOAT_EQ(y[0], 4.0f);
    Tensor g = Tensor::full({1, 1, 1, 1}, 5.0f);
    Tensor gx = pool.backward(g);
    EXPECT_FLOAT_EQ(gx[1], 5.0f);
    EXPECT_FLOAT_EQ(gx[0], 0.0f);
}

TEST(GlobalAvgPool, ForwardBackward)
{
    GlobalAvgPool gap;
    Tensor x = Tensor::full({2, 3, 2, 2}, 2.0f);
    Tensor y = gap.forward(x, true);
    EXPECT_EQ(y.shape(), (std::vector<size_t>{2, 3}));
    EXPECT_FLOAT_EQ(y[0], 2.0f);
    Tensor g = Tensor::full({2, 3}, 4.0f);
    Tensor gx = gap.backward(g);
    EXPECT_FLOAT_EQ(gx[0], 1.0f); // 4 / plane(4)
}

TEST(Flatten, RoundTrip)
{
    Flatten fl;
    Rng rng(13);
    Tensor x = Tensor::randn({2, 3, 2, 2}, rng, 1.0);
    Tensor y = fl.forward(x, true);
    EXPECT_EQ(y.shape(), (std::vector<size_t>{2, 12}));
    Tensor gx = fl.backward(y);
    EXPECT_EQ(gx.shape(), x.shape());
}

TEST(BasicBlock, IdentityShortcutGradients)
{
    Rng rng(14);
    BasicBlock blk(4, 4, 1, rng);
    Tensor x = Tensor::randn({2, 4, 4, 4}, rng, 1.0);
    checkGradients(blk, x, 1e-3, 4e-2);
}

TEST(BasicBlock, ProjectionShortcutShapeAndGradients)
{
    Rng rng(15);
    BasicBlock blk(3, 6, 2, rng);
    Tensor x = Tensor::randn({2, 3, 6, 6}, rng, 1.0);
    Tensor y = blk.forward(x, true);
    EXPECT_EQ(y.shape(), (std::vector<size_t>{2, 6, 3, 3}));
    checkGradients(blk, x, 1e-3, 4e-2);
}

TEST(InvertedResidual, SkipConditions)
{
    Rng rng(16);
    InvertedResidual a(4, 4, 2, 1, rng);
    InvertedResidual b(4, 8, 2, 1, rng);
    InvertedResidual c(4, 4, 2, 2, rng);
    EXPECT_TRUE(a.hasSkip());
    EXPECT_FALSE(b.hasSkip());
    EXPECT_FALSE(c.hasSkip());
}

TEST(InvertedResidual, Gradients)
{
    Rng rng(17);
    InvertedResidual blk(3, 3, 2, 1, rng);
    Tensor x = Tensor::randn({2, 3, 4, 4}, rng, 1.0);
    checkGradients(blk, x, 1e-3, 4e-2);
}

TEST(Sequential, ChainsAndCollectsParams)
{
    Rng rng(18);
    Sequential net;
    net.add(std::make_unique<Conv2d>(1, 2, 3, 1, 1, rng, true));
    net.add(std::make_unique<ReLU>());
    net.add(std::make_unique<GlobalAvgPool>());
    net.add(std::make_unique<Linear>(2, 3, rng, true));
    Tensor x = Tensor::randn({2, 1, 4, 4}, rng, 1.0);
    Tensor y = net.forward(x, true);
    EXPECT_EQ(y.shape(), (std::vector<size_t>{2, 3}));
    EXPECT_EQ(net.params().size(), 4u);
    checkGradients(net, x);
}

} // namespace
} // namespace mixq
