/**
 * @file
 * End-to-end thread-count determinism of the training step. Every
 * stage of a QAT epoch is individually deterministic across
 * OMP_NUM_THREADS — deterministic batch gather, GEMM-backed layer
 * forward/backward, chunked BatchNorm statistics, the fused
 * row-parallel loss, the fused ADMM penalty and epoch-update passes,
 * and the elementwise-parallel SGD step — so a whole
 * trainClassifier() run must be *bit-identical* at 1, 4 and 8
 * threads: final weights, the ADMM Z/U state, the per-epoch loss
 * trajectory, and the projection metadata. This is the integration
 * pin on top of the per-stage matrices in tests/quant_mt_test.cc,
 * tests/layers_mt_test.cc and tests/rnn_mt_test.cc.
 *
 * Also here: the evalClassifierTopK tie-handling unit test ("better
 * < k": ties with the true class never count against it).
 */

#include <gtest/gtest.h>

#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "data/synth_images.hh"
#include "nn/layers.hh"
#include "nn/models.hh"
#include "nn/trainer.hh"
#include "util/rng.hh"

namespace mixq {
namespace {

/** Everything a QAT training run produces that must be reproducible. */
struct RunResult
{
    std::vector<std::vector<float>> weights;
    std::vector<std::vector<float>> z;
    std::vector<std::vector<float>> u;
    std::vector<std::vector<float>> rowAlpha;
    std::vector<double> epochLoss;
};

RunResult
runQatTraining(Granularity gran)
{
    Rng rng(77);
    auto model = makeMiniResNet(10, rng, /*base=*/4);
    LabeledImages train = makeImageDataset(ImageTask::Easy, 48, 5);

    QConfig qcfg;
    qcfg.scheme = QuantScheme::Mixed;
    qcfg.bits = 4;
    qcfg.granularity = gran;
    QatContext qat(qcfg);
    qat.attach(model->params());

    RunResult res;
    TrainCfg cfg;
    cfg.epochs = 2;
    cfg.batch = 16;
    cfg.lr = 0.05;
    cfg.epochLoss = &res.epochLoss;
    trainClassifier(*model, train, cfg, &qat);

    for (Param* p : model->params())
        res.weights.emplace_back(p->w.data(),
                                 p->w.data() + p->w.size());
    for (const QatContext::Entry& e : qat.entries()) {
        res.z.emplace_back(e.admm.z().begin(), e.admm.z().end());
        res.u.emplace_back(e.admm.u().begin(), e.admm.u().end());
        res.rowAlpha.push_back(e.proj.rowAlpha);
    }
    return res;
}

void
expectBitIdentical(const std::vector<std::vector<float>>& got,
                   const std::vector<std::vector<float>>& want,
                   const char* what)
{
    ASSERT_EQ(got.size(), want.size()) << what;
    for (size_t v = 0; v < want.size(); ++v) {
        ASSERT_EQ(got[v].size(), want[v].size()) << what << " " << v;
        for (size_t i = 0; i < want[v].size(); ++i)
            ASSERT_EQ(got[v][i], want[v][i])
                << what << " tensor " << v << " index " << i;
    }
}

class TrainerMtGranularity
    : public ::testing::TestWithParam<Granularity>
{
};

TEST_P(TrainerMtGranularity, QatTrainingBitIdenticalAcrossThreadCounts)
{
#ifndef _OPENMP
    GTEST_SKIP() << "built without OpenMP";
#else
    Granularity gran = GetParam();
    int prev = omp_get_max_threads();
    omp_set_num_threads(1);
    RunResult base = runQatTraining(gran);
    ASSERT_EQ(base.epochLoss.size(), 2u);

    for (int threads : {4, 8}) {
        omp_set_num_threads(threads);
        SCOPED_TRACE(testing::Message() << "threads=" << threads);
        RunResult got = runQatTraining(gran);
        expectBitIdentical(got.weights, base.weights, "weights");
        expectBitIdentical(got.z, base.z, "admm z");
        expectBitIdentical(got.u, base.u, "admm u");
        expectBitIdentical(got.rowAlpha, base.rowAlpha, "rowAlpha");
        ASSERT_EQ(got.epochLoss.size(), base.epochLoss.size());
        for (size_t e = 0; e < base.epochLoss.size(); ++e)
            ASSERT_EQ(got.epochLoss[e], base.epochLoss[e])
                << "epoch " << e;
    }
    omp_set_num_threads(prev);
#endif
}

INSTANTIATE_TEST_SUITE_P(Granularities, TrainerMtGranularity,
                         ::testing::Values(Granularity::PerRow,
                                           Granularity::PerGroup));

// ------------------------------------------------------------------
// evalClassifierTopK counts strictly-better classes ("better < k"),
// so a class tied with the truth never pushes it out of the top k.
// A Flatten model turns [N, C, 1, 1] images directly into logits,
// making the rows exactly controllable.
// ------------------------------------------------------------------

TEST(EvalTopK, TieHandlingCountsStrictlyBetterOnly)
{
    const size_t n = 4, c = 4;
    LabeledImages data;
    data.images = Tensor({n, c, 1, 1});
    data.numClasses = c;
    auto setRow = [&](size_t i, std::vector<float> row, int label) {
        for (size_t j = 0; j < c; ++j)
            data.images[i * c + j] = row[j];
        data.labels.push_back(label);
    };
    // truth 3.0, nothing better, ties below truth irrelevant.
    setRow(0, {3.0f, 1.0f, 1.0f, 0.0f}, 0);
    // truth 1.0 tied with class 0 at the top: better == 0, so the
    // tie does not cost top-1.
    setRow(1, {1.0f, 1.0f, 0.0f, 0.0f}, 1);
    // truth 1.0, one strictly better (2.0), one tie: better == 1 —
    // out of top-1, inside top-2.
    setRow(2, {2.0f, 1.0f, 1.0f, 0.0f}, 1);
    // truth 0.0, three strictly better: only top-4 catches it.
    setRow(3, {2.0f, 1.0f, 1.0f, 0.0f}, 3);

    Flatten model;
    EXPECT_DOUBLE_EQ(evalClassifierTopK(model, data, 1), 0.5);
    EXPECT_DOUBLE_EQ(evalClassifierTopK(model, data, 2), 0.75);
    EXPECT_DOUBLE_EQ(evalClassifierTopK(model, data, 3), 0.75);
    EXPECT_DOUBLE_EQ(evalClassifierTopK(model, data, 4), 1.0);
    EXPECT_DOUBLE_EQ(evalClassifier(model, data), 0.5); // top-1 alias
}

} // namespace
} // namespace mixq
