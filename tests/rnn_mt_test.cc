/**
 * @file
 * Many-core determinism matrix for the batch-parallel RNN training
 * path. The batch chunking (deterministicBatchChunks) and the
 * tree-shaped weight-gradient merge (treeReduceAcc) are pure
 * functions of the problem shape, so LSTM/GRU forward outputs, input
 * gradients and — the headline claim — weight gradients must be
 * *bit-identical* across OMP_NUM_THREADS, including ragged batches
 * (smaller than, equal to, and not divisible by the thread count).
 * A fresh layer is built per run so plan caches and activation-quant
 * EMA state cannot leak between thread counts.
 *
 * Also here: tolerance-level equivalence between the batch-parallel
 * path and the PR 2 serial path (they differ only in float summation
 * order), and the guarantee under enabled activation quantizers
 * (frozen-alpha workers + deterministic calibration replay).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "nn/rnn.hh"
#include "util/rng.hh"

namespace mixq {
namespace {

/** Everything one forward+backward produces. */
struct RunResult
{
    std::vector<float> y;
    std::vector<float> gx;
    std::vector<std::vector<float>> grads;
};

/** Build a fresh module, run forward+backward, snapshot outputs. */
RunResult
runOnce(const std::function<std::unique_ptr<Module>()>& make,
        const Tensor& x, const Tensor& gy)
{
    std::unique_ptr<Module> mod = make();
    Tensor y = mod->forward(x, true);
    Tensor gx = mod->backward(gy);
    RunResult r;
    r.y.assign(y.data(), y.data() + y.size());
    r.gx.assign(gx.data(), gx.data() + gx.size());
    for (Param* p : mod->params())
        r.grads.emplace_back(p->grad.data(),
                             p->grad.data() + p->grad.size());
    return r;
}

void
expectBitEqual(const std::vector<float>& got,
               const std::vector<float>& want, const char* what)
{
    ASSERT_EQ(got.size(), want.size()) << what;
    for (size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(got[i], want[i]) << what << " index " << i;
}

/**
 * Run the module factory at OMP_NUM_THREADS in {1, 4, 8} and demand
 * bitwise-identical forward outputs, input gradients and parameter
 * gradients from every thread count.
 */
void
checkThreadCountInvariance(
    const std::function<std::unique_ptr<Module>()>& make,
    const Tensor& x, const Tensor& gy)
{
#ifndef _OPENMP
    GTEST_SKIP() << "built without OpenMP";
#else
    int prev = omp_get_max_threads();
    omp_set_num_threads(1);
    RunResult base = runOnce(make, x, gy);
    for (int threads : {4, 8}) {
        omp_set_num_threads(threads);
        RunResult got = runOnce(make, x, gy);
        SCOPED_TRACE(testing::Message() << "threads=" << threads);
        expectBitEqual(got.y, base.y, "forward output");
        expectBitEqual(got.gx, base.gx, "input grad");
        ASSERT_EQ(got.grads.size(), base.grads.size());
        for (size_t p = 0; p < base.grads.size(); ++p) {
            SCOPED_TRACE(testing::Message() << "param " << p);
            expectBitEqual(got.grads[p], base.grads[p], "weight grad");
        }
    }
    omp_set_num_threads(prev);
#endif
}

// h=64 keeps the gate GEMMs (m >= kGemmMR chunks against 4H=256 /
// 3H=192 columns) in the blocked/packed dispatch regime. Batch sizes:
// 3 < both thread counts (single chunk, serial sweep), 8 == one
// thread count, 13 and 20 divisible by neither thread count and
// split into ragged chunks ({7, 6} and {7, 7, 6}).
const size_t kBatches[] = {3, 8, 13, 20};

TEST(RnnMtMatrix, LstmBitIdenticalAcrossThreadCounts)
{
    for (size_t n : kBatches) {
        SCOPED_TRACE(testing::Message() << "batch=" << n);
        Rng dataRng(100 + n);
        Tensor x = Tensor::randn({6, n, 32}, dataRng, 1.0);
        Tensor gy = Tensor::randn({6, n, 64}, dataRng, 1.0);
        checkThreadCountInvariance(
            [] {
                Rng rng(11);
                return std::make_unique<Lstm>(32, 64, rng);
            },
            x, gy);
    }
}

TEST(RnnMtMatrix, GruBitIdenticalAcrossThreadCounts)
{
    for (size_t n : kBatches) {
        SCOPED_TRACE(testing::Message() << "batch=" << n);
        Rng dataRng(200 + n);
        Tensor x = Tensor::randn({6, n, 32}, dataRng, 1.0);
        Tensor gy = Tensor::randn({6, n, 64}, dataRng, 1.0);
        checkThreadCountInvariance(
            [] {
                Rng rng(12);
                return std::make_unique<Gru>(32, 64, rng);
            },
            x, gy);
    }
}

TEST(RnnMtMatrix, LstmQuantizedBitIdenticalAcrossThreadCounts)
{
    // Enabled activation quantizers bring the frozen-alpha worker
    // path plus the orchestrator's calibration replay into play.
    Rng dataRng(42);
    Tensor x = Tensor::randn({6, 13, 32}, dataRng, 1.0);
    Tensor gy = Tensor::randn({6, 13, 64}, dataRng, 1.0);
    checkThreadCountInvariance(
        [] {
            Rng rng(13);
            auto lstm = std::make_unique<Lstm>(32, 64, rng);
            lstm->setActQuant(4, true);
            return lstm;
        },
        x, gy);
}

TEST(RnnMtMatrix, GruQuantizedBitIdenticalAcrossThreadCounts)
{
    Rng dataRng(43);
    Tensor x = Tensor::randn({6, 13, 32}, dataRng, 1.0);
    Tensor gy = Tensor::randn({6, 13, 64}, dataRng, 1.0);
    checkThreadCountInvariance(
        [] {
            Rng rng(14);
            auto gru = std::make_unique<Gru>(32, 64, rng);
            gru->setActQuant(4, true);
            return gru;
        },
        x, gy);
}

// ------------------------------------------------------------------
// Batch-parallel vs serial: same math, different float summation
// order (per-chunk partials + tree merge vs one running sum), so the
// two paths must agree to rounding tolerance.
// ------------------------------------------------------------------

void
expectNearVec(const std::vector<float>& got,
              const std::vector<float>& want, double tol,
              const char* what)
{
    ASSERT_EQ(got.size(), want.size()) << what;
    for (size_t i = 0; i < got.size(); ++i) {
        double t = tol * (1.0 + std::fabs(double(want[i])));
        EXPECT_NEAR(got[i], want[i], t) << what << " index " << i;
    }
}

void
checkParallelMatchesSerial(
    const std::function<std::unique_ptr<Module>()>& make,
    const Tensor& x, const Tensor& gy, double tol = 1e-3)
{
    ASSERT_TRUE(rnnBatchParallel()) << "default should be parallel";
    setRnnBatchParallel(false);
    RunResult serial = runOnce(make, x, gy);
    setRnnBatchParallel(true);
    RunResult par = runOnce(make, x, gy);
    expectNearVec(par.y, serial.y, tol, "forward output");
    expectNearVec(par.gx, serial.gx, tol, "input grad");
    ASSERT_EQ(par.grads.size(), serial.grads.size());
    for (size_t p = 0; p < serial.grads.size(); ++p) {
        SCOPED_TRACE(testing::Message() << "param " << p);
        expectNearVec(par.grads[p], serial.grads[p], tol,
                      "weight grad");
    }
}

TEST(RnnBatchParallel, LstmMatchesSerialPath)
{
    Rng dataRng(51);
    Tensor x = Tensor::randn({6, 13, 32}, dataRng, 1.0);
    Tensor gy = Tensor::randn({6, 13, 64}, dataRng, 1.0);
    checkParallelMatchesSerial(
        [] {
            Rng rng(15);
            return std::make_unique<Lstm>(32, 64, rng);
        },
        x, gy);
}

TEST(RnnBatchParallel, GruMatchesSerialPath)
{
    Rng dataRng(52);
    Tensor x = Tensor::randn({6, 13, 32}, dataRng, 1.0);
    Tensor gy = Tensor::randn({6, 13, 64}, dataRng, 1.0);
    checkParallelMatchesSerial(
        [] {
            Rng rng(16);
            return std::make_unique<Gru>(32, 64, rng);
        },
        x, gy);
}

} // namespace
} // namespace mixq
