/** @file Synthetic dataset generators. */

#include <gtest/gtest.h>

#include "data/synth_detect.hh"
#include "data/synth_images.hh"
#include <cmath>

#include "data/synth_seq.hh"

namespace mixq {
namespace {

TEST(SynthImages, ShapesAndLabelRanges)
{
    for (ImageTask task : {ImageTask::Easy, ImageTask::Mid,
                           ImageTask::Hard}) {
        ImageTaskSpec spec = imageTaskSpec(task);
        LabeledImages d = makeImageDataset(task, 50, 1);
        EXPECT_EQ(d.images.shape(),
                  (std::vector<size_t>{50, 3, spec.imgSize,
                                       spec.imgSize}));
        EXPECT_EQ(d.numClasses, spec.classes);
        for (int y : d.labels) {
            EXPECT_GE(y, 0);
            EXPECT_LT(size_t(y), spec.classes);
        }
    }
}

TEST(SynthImages, PixelsInUnitRange)
{
    LabeledImages d = makeImageDataset(ImageTask::Hard, 20, 2);
    for (size_t i = 0; i < d.images.size(); ++i) {
        EXPECT_GE(d.images[i], 0.0f);
        EXPECT_LE(d.images[i], 1.0f);
    }
}

TEST(SynthImages, DeterministicInSeed)
{
    LabeledImages a = makeImageDataset(ImageTask::Easy, 10, 5);
    LabeledImages b = makeImageDataset(ImageTask::Easy, 10, 5);
    EXPECT_EQ(a.labels, b.labels);
    for (size_t i = 0; i < a.images.size(); ++i)
        EXPECT_FLOAT_EQ(a.images[i], b.images[i]);
}

TEST(SynthImages, DifferentSeedsDiffer)
{
    LabeledImages a = makeImageDataset(ImageTask::Easy, 30, 5);
    LabeledImages b = makeImageDataset(ImageTask::Easy, 30, 6);
    EXPECT_NE(a.labels, b.labels);
}

TEST(SynthImages, ClassesAreSeparableByPixels)
{
    // Two samples of a class should correlate more with each other
    // than with another class, on average — the CNN has signal.
    LabeledImages d = makeImageDataset(ImageTask::Easy, 400, 7);
    size_t item = d.images.size() / 400;
    auto corr = [&](size_t i, size_t j) {
        double s = 0.0;
        for (size_t p = 0; p < item; ++p)
            s += double(d.images[i * item + p]) *
                 double(d.images[j * item + p]);
        return s;
    };
    double same = 0.0, diff = 0.0;
    size_t ns = 0, nd = 0;
    for (size_t i = 0; i < 60; ++i) {
        for (size_t j = i + 1; j < 60; ++j) {
            if (d.labels[i] == d.labels[j]) {
                same += corr(i, j);
                ++ns;
            } else {
                diff += corr(i, j);
                ++nd;
            }
        }
    }
    ASSERT_GT(ns, 0u);
    ASSERT_GT(nd, 0u);
    EXPECT_GT(same / double(ns), diff / double(nd));
}

TEST(SynthDetect, BoxesInsideImage)
{
    DetectDataset d = makeDetectDataset(30, 32, 3);
    EXPECT_EQ(d.size(), 30u);
    for (const auto& boxes : d.boxes) {
        EXPECT_GE(boxes.size(), 1u);
        EXPECT_LE(boxes.size(), 3u);
        for (const ObjBox& b : boxes) {
            EXPECT_GE(b.cx - b.w / 2, -1e-5f);
            EXPECT_LE(b.cx + b.w / 2, 1.0f + 1e-5f);
            EXPECT_GE(b.cls, 0);
            EXPECT_LT(b.cls, 3);
        }
    }
}

TEST(SynthDetect, ObjectsBrighterThanBackground)
{
    DetectDataset d = makeDetectDataset(5, 32, 4);
    const ObjBox& b = d.boxes[0][0];
    size_t cx = size_t(b.cx * 32), cy = size_t(b.cy * 32);
    double obj = 0.0;
    for (size_t c = 0; c < 3; ++c)
        obj += d.images.at4(0, c, cy, cx);
    EXPECT_GT(obj, 3 * 0.25);
}

TEST(LmCorpus, TokensInVocab)
{
    LmCorpus c = makeLmCorpus(16, 5000, 1);
    EXPECT_EQ(c.tokens.size(), 5000u);
    for (int t : c.tokens) {
        EXPECT_GE(t, 0);
        EXPECT_LT(t, 16);
    }
}

TEST(LmCorpus, MarkovStructureIsLearnable)
{
    // The chain is peaked: the empirical entropy of successors given
    // the previous two tokens must be far below log(vocab).
    LmCorpus c = makeLmCorpus(16, 20000, 2);
    std::vector<std::vector<size_t>> counts(16 * 16,
                                            std::vector<size_t>(16, 0));
    for (size_t i = 2; i < c.tokens.size(); ++i)
        ++counts[size_t(c.tokens[i - 2]) * 16 +
                 size_t(c.tokens[i - 1])][size_t(c.tokens[i])];
    double h = 0.0;
    size_t total = 0;
    for (const auto& row : counts) {
        size_t rs = 0;
        for (size_t v : row)
            rs += v;
        if (rs < 20)
            continue;
        for (size_t v : row) {
            if (v == 0)
                continue;
            double p = double(v) / double(rs);
            h -= double(v) * std::log2(p);
        }
        total += rs;
    }
    ASSERT_GT(total, 0u);
    EXPECT_LT(h / double(total), 3.2); // << log2(16) = 4
}

TEST(LmBatches, TargetIsNextToken)
{
    LmCorpus c = makeLmCorpus(16, 4000, 3);
    auto batches = makeLmBatches(c, 8, 4);
    ASSERT_FALSE(batches.empty());
    size_t stream_len = c.tokens.size() / 4;
    const LmBatch& b = batches[0];
    for (size_t s = 0; s + 1 < b.t; ++s) {
        for (size_t j = 0; j < b.n; ++j)
            EXPECT_EQ(b.target[s * b.n + j], b.input[(s + 1) * b.n + j]);
    }
    EXPECT_EQ(b.input[0], c.tokens[0]);
    EXPECT_EQ(b.input[1], c.tokens[stream_len]);
}

TEST(PhonemeDataset, ShapesAndFrameCoherence)
{
    PhonemeDataset d = makePhonemeDataset(3, 20, 4, 8, 12, 5);
    ASSERT_EQ(d.features.size(), 3u);
    EXPECT_EQ(d.features[0].shape(), (std::vector<size_t>{20, 4, 12}));
    // Phonemes persist 2-4 frames (runs can merge when the same
    // phoneme is drawn twice), so most frames repeat their
    // predecessor: repeat fraction must be well above the i.i.d.
    // baseline of 1/8.
    size_t repeats = 0, total = 0;
    for (size_t j = 0; j < 4; ++j) {
        for (size_t s = 1; s < 20; ++s) {
            repeats += d.labels[0][s * 4 + j] ==
                       d.labels[0][(s - 1) * 4 + j];
            ++total;
        }
    }
    EXPECT_GT(double(repeats) / double(total), 0.4);
    for (int y : d.labels[0]) {
        EXPECT_GE(y, 0);
        EXPECT_LT(y, 8);
    }
}

TEST(SentimentDataset, LabelsMatchWeightedScore)
{
    SentimentDataset d = makeSentimentDataset(2, 12, 8, 12, 6);
    size_t third = 12 / 3;
    for (size_t b = 0; b < d.seqs.size(); ++b) {
        for (size_t j = 0; j < d.n; ++j) {
            double score = 0.0;
            for (size_t s = 0; s < d.t; ++s) {
                int tok = d.seqs[b][s * d.n + j];
                double w = 0.5 + double(s) / double(d.t);
                if (tok < int(third))
                    score += w;
                else if (tok < int(2 * third))
                    score -= w;
            }
            EXPECT_EQ(d.labels[b][j], score >= 0.0 ? 1 : 0);
        }
    }
}

} // namespace
} // namespace mixq
