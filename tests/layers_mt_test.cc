/**
 * @file
 * Multi-threaded backward-pass equivalence for the layers whose
 * backward runs GEMMs inside (or under) OpenMP parallel regions:
 * Conv2d, Lstm, Gru. The PR 1 thread-local packing bug was only
 * caught at the gemm level — these tests pin OMP_NUM_THREADS-style
 * thread counts at the layer level so a regression in how layers
 * drive the backend (shared plans read from workers, per-chunk
 * scratch, gradient merge order) is caught where it bites.
 *
 * Since the deterministic tree-merge of per-chunk weight-gradient
 * partials (nn/gemm_backend.hh treeReduceAcc), gradients are not
 * just close but *bit-identical* across thread counts — the Conv2d
 * matrix test below asserts exactly that, and tests/rnn_mt_test.cc
 * does the same for the batch-parallel LSTM/GRU path.
 *
 * Also: layer-level invalidation correctness for the pre-packed
 * weight plans — after an in-place weight update plus
 * Param::noteUpdated(), forward must track the new weights.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "nn/gemm.hh"
#include "nn/layers.hh"
#include "nn/rnn.hh"
#include "util/rng.hh"

namespace mixq {
namespace {

/** Snapshot of all parameter gradients of a module. */
std::vector<std::vector<float>>
gradSnapshot(Module& mod)
{
    std::vector<std::vector<float>> out;
    for (Param* p : mod.params())
        out.emplace_back(p->grad.data(),
                         p->grad.data() + p->grad.size());
    return out;
}

void
expectNearVec(const std::vector<float>& got,
              const std::vector<float>& want, double tol)
{
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
        double t = tol * (1.0 + std::fabs(double(want[i])));
        EXPECT_NEAR(got[i], want[i], t) << "index " << i;
    }
}

/**
 * Run forward+backward at 1 thread and at @p threads threads and
 * compare the input gradient and every parameter gradient. Reuses
 * one module instance across the runs (so stale per-layer state
 * would be caught); the tolerance comparison dates from when merge
 * order was thread-dependent and stays as a looser cross-check next
 * to the bit-exact fresh-instance matrix tests.
 */
void
checkBackwardThreadEquivalence(Module& mod, const Tensor& x,
                               int threads, double tol = 1e-3)
{
#ifndef _OPENMP
    GTEST_SKIP() << "built without OpenMP";
#else
    Rng rng(77);
    Tensor y = mod.forward(x, true);
    Tensor gy = Tensor::randn(y.shape(), rng, 1.0);

    int prev = omp_get_max_threads();
    omp_set_num_threads(1);
    for (Param* p : mod.params())
        p->zeroGrad();
    mod.forward(x, true);
    Tensor gx1 = mod.backward(gy);
    auto grads1 = gradSnapshot(mod);

    omp_set_num_threads(threads);
    for (Param* p : mod.params())
        p->zeroGrad();
    mod.forward(x, true);
    Tensor gx4 = mod.backward(gy);
    auto grads4 = gradSnapshot(mod);
    omp_set_num_threads(prev);

    ASSERT_EQ(gx1.size(), gx4.size());
    for (size_t i = 0; i < gx1.size(); ++i) {
        double t = tol * (1.0 + std::fabs(double(gx1[i])));
        EXPECT_NEAR(gx4[i], gx1[i], t) << "gx index " << i;
    }
    ASSERT_EQ(grads1.size(), grads4.size());
    for (size_t i = 0; i < grads1.size(); ++i)
        expectNearVec(grads4[i], grads1[i], tol);
#endif
}

TEST(LayersMt, Conv2dBackwardMatchesSingleThread)
{
    Rng rng(1);
    // Big enough that the conv GEMMs clear the blocked-dispatch
    // threshold: ckk = 3*3*3 = 27, ohow = 144, outCh = 16.
    Conv2d conv(3, 16, 3, 1, 1, rng, /*bias=*/true);
    Tensor x = Tensor::randn({4, 3, 12, 12}, rng, 1.0);
    checkBackwardThreadEquivalence(conv, x, 4);
}

TEST(LayersMt, LstmBackwardMatchesSingleThread)
{
    Rng rng(2);
    // n=8 >= kGemmMR and n * 4h * h = 8*256*64 clears the threshold,
    // so the gate GEMMs run the blocked/packed path.
    Lstm lstm(32, 64, rng);
    Tensor x = Tensor::randn({6, 8, 32}, rng, 1.0);
    checkBackwardThreadEquivalence(lstm, x, 4);
}

TEST(LayersMt, GruBackwardMatchesSingleThread)
{
    Rng rng(3);
    Gru gru(32, 64, rng);
    Tensor x = Tensor::randn({6, 8, 32}, rng, 1.0);
    checkBackwardThreadEquivalence(gru, x, 4);
}

// ------------------------------------------------------------------
// Bitwise determinism matrix: Conv2d backward chunks the batch by
// deterministicBatchChunks and tree-merges per-chunk weight-gradient
// partials, so forward outputs AND weight gradients must be
// bit-identical across OMP_NUM_THREADS — including batches smaller
// than, equal to, and not divisible by the thread count. Fresh layer
// per run so plan caches cannot leak between thread counts.
// ------------------------------------------------------------------

TEST(LayersMt, Conv2dBitIdenticalAcrossThreadCounts)
{
#ifndef _OPENMP
    GTEST_SKIP() << "built without OpenMP";
#else
    for (size_t n : {size_t(3), size_t(8), size_t(13)}) {
        SCOPED_TRACE(testing::Message() << "batch=" << n);
        Rng dataRng(300 + n);
        Tensor x = Tensor::randn({n, 3, 12, 12}, dataRng, 1.0);
        Tensor gy = Tensor::randn({n, 16, 12, 12}, dataRng, 1.0);

        auto runOnce = [&] {
            Rng rng(21);
            Conv2d conv(3, 16, 3, 1, 1, rng, /*bias=*/true);
            Tensor y = conv.forward(x, true);
            Tensor gx = conv.backward(gy);
            std::vector<std::vector<float>> out;
            out.emplace_back(y.data(), y.data() + y.size());
            out.emplace_back(gx.data(), gx.data() + gx.size());
            for (Param* p : conv.params())
                out.emplace_back(p->grad.data(),
                                 p->grad.data() + p->grad.size());
            return out;
        };

        int prev = omp_get_max_threads();
        omp_set_num_threads(1);
        auto base = runOnce();
        for (int threads : {4, 8}) {
            omp_set_num_threads(threads);
            auto got = runOnce();
            SCOPED_TRACE(testing::Message() << "threads=" << threads);
            ASSERT_EQ(got.size(), base.size());
            for (size_t v = 0; v < base.size(); ++v) {
                ASSERT_EQ(got[v].size(), base[v].size());
                for (size_t i = 0; i < base[v].size(); ++i)
                    ASSERT_EQ(got[v][i], base[v][i])
                        << "vector " << v << " index " << i;
            }
        }
        omp_set_num_threads(prev);
    }
#endif
}

// ------------------------------------------------------------------
// DwConv2d backward: batch-chunked kernel-gradient partials merged
// through the fixed reduction tree (same scheme as Conv2d), so
// forward outputs, input gradients and the kernel gradient must be
// bit-identical across OMP_NUM_THREADS, ragged batches included.
// ------------------------------------------------------------------

TEST(LayersMt, DwConv2dBitIdenticalAcrossThreadCounts)
{
#ifndef _OPENMP
    GTEST_SKIP() << "built without OpenMP";
#else
    for (size_t n : {size_t(3), size_t(8), size_t(13)}) {
        SCOPED_TRACE(testing::Message() << "batch=" << n);
        Rng dataRng(500 + n);
        Tensor x = Tensor::randn({n, 6, 9, 9}, dataRng, 1.0);
        Tensor gy = Tensor::randn({n, 6, 9, 9}, dataRng, 1.0);

        auto runOnce = [&] {
            Rng rng(23);
            DwConv2d dw(6, 3, 1, 1, rng);
            Tensor y = dw.forward(x, true);
            Tensor gx = dw.backward(gy);
            std::vector<std::vector<float>> out;
            out.emplace_back(y.data(), y.data() + y.size());
            out.emplace_back(gx.data(), gx.data() + gx.size());
            for (Param* p : dw.params())
                out.emplace_back(p->grad.data(),
                                 p->grad.data() + p->grad.size());
            return out;
        };

        int prev = omp_get_max_threads();
        omp_set_num_threads(1);
        auto base = runOnce();
        for (int threads : {4, 8}) {
            omp_set_num_threads(threads);
            auto got = runOnce();
            SCOPED_TRACE(testing::Message() << "threads=" << threads);
            ASSERT_EQ(got.size(), base.size());
            for (size_t v = 0; v < base.size(); ++v) {
                ASSERT_EQ(got[v].size(), base[v].size());
                for (size_t i = 0; i < base[v].size(); ++i)
                    ASSERT_EQ(got[v][i], base[v][i])
                        << "vector " << v << " index " << i;
            }
        }
        omp_set_num_threads(prev);
    }
#endif
}

// ------------------------------------------------------------------
// Linear bias gradient: accumulated over deterministic batch chunks
// and tree-merged (nn/layers.cc), and the forward bias add runs
// row-parallel — outputs and all gradients must be bit-identical
// across OMP_NUM_THREADS.
// ------------------------------------------------------------------

TEST(LayersMt, LinearBiasGradBitIdenticalAcrossThreadCounts)
{
#ifndef _OPENMP
    GTEST_SKIP() << "built without OpenMP";
#else
    for (size_t n : {size_t(3), size_t(8), size_t(13)}) {
        SCOPED_TRACE(testing::Message() << "batch=" << n);
        Rng dataRng(600 + n);
        Tensor x = Tensor::randn({n, 48}, dataRng, 1.0);
        Tensor gy = Tensor::randn({n, 32}, dataRng, 1.0);

        auto runOnce = [&] {
            Rng rng(25);
            Linear lin(48, 32, rng, /*bias=*/true);
            Tensor y = lin.forward(x, true);
            Tensor gx = lin.backward(gy);
            std::vector<std::vector<float>> out;
            out.emplace_back(y.data(), y.data() + y.size());
            out.emplace_back(gx.data(), gx.data() + gx.size());
            for (Param* p : lin.params())
                out.emplace_back(p->grad.data(),
                                 p->grad.data() + p->grad.size());
            return out;
        };

        int prev = omp_get_max_threads();
        omp_set_num_threads(1);
        auto base = runOnce();
        for (int threads : {4, 8}) {
            omp_set_num_threads(threads);
            auto got = runOnce();
            SCOPED_TRACE(testing::Message() << "threads=" << threads);
            ASSERT_EQ(got.size(), base.size());
            for (size_t v = 0; v < base.size(); ++v) {
                ASSERT_EQ(got[v].size(), base[v].size());
                for (size_t i = 0; i < base[v].size(); ++i)
                    ASSERT_EQ(got[v][i], base[v][i])
                        << "vector " << v << " index " << i;
            }
        }
        omp_set_num_threads(prev);
    }
#endif
}

// ------------------------------------------------------------------
// BatchNorm2d: the batch statistics are accumulated per fixed batch
// chunk and tree-merged (nn/layers.cc bnChunkedReduce), so forward
// outputs, running statistics, backward input gradients and the
// gamma/beta gradients must all be bit-identical across
// OMP_NUM_THREADS — including ragged batches.
// ------------------------------------------------------------------

TEST(LayersMt, BatchNormBitIdenticalAcrossThreadCounts)
{
#ifndef _OPENMP
    GTEST_SKIP() << "built without OpenMP";
#else
    for (size_t n : {size_t(3), size_t(8), size_t(13)}) {
        SCOPED_TRACE(testing::Message() << "batch=" << n);
        Rng dataRng(400 + n);
        Tensor x = Tensor::randn({n, 6, 7, 7}, dataRng, 2.0);
        Tensor gy = Tensor::randn({n, 6, 7, 7}, dataRng, 1.0);

        auto runOnce = [&] {
            BatchNorm2d bn(6);
            Tensor y = bn.forward(x, true);
            Tensor gx = bn.backward(gy);
            Tensor ye = bn.forward(x, false); // eval path too
            std::vector<std::vector<float>> out;
            out.emplace_back(y.data(), y.data() + y.size());
            out.emplace_back(gx.data(), gx.data() + gx.size());
            out.emplace_back(ye.data(), ye.data() + ye.size());
            const Tensor& rm = bn.runningMean();
            const Tensor& rv = bn.runningVar();
            out.emplace_back(rm.data(), rm.data() + rm.size());
            out.emplace_back(rv.data(), rv.data() + rv.size());
            for (Param* p : bn.params())
                out.emplace_back(p->grad.data(),
                                 p->grad.data() + p->grad.size());
            return out;
        };

        int prev = omp_get_max_threads();
        omp_set_num_threads(1);
        auto base = runOnce();
        for (int threads : {4, 8}) {
            omp_set_num_threads(threads);
            auto got = runOnce();
            SCOPED_TRACE(testing::Message() << "threads=" << threads);
            ASSERT_EQ(got.size(), base.size());
            for (size_t v = 0; v < base.size(); ++v) {
                ASSERT_EQ(got[v].size(), base[v].size());
                for (size_t i = 0; i < base[v].size(); ++i)
                    ASSERT_EQ(got[v][i], base[v][i])
                        << "vector " << v << " index " << i;
            }
        }
        omp_set_num_threads(prev);
    }
#endif
}

// ------------------------------------------------------------------
// Plan invalidation at the layer level: an in-place weight rewrite
// plus noteUpdated() must be visible in the next forward.
// ------------------------------------------------------------------

TEST(LayersPlanInvalidation, LinearForwardTracksWeightUpdate)
{
    Rng rng(4);
    size_t batch = 8, in = 96, out = 64; // blocked-dispatch regime
    Linear lin(in, out, rng, /*bias=*/false);
    Tensor x = Tensor::randn({batch, in}, rng, 1.0);
    lin.forward(x, false); // packs the plan from the initial weights

    Param& w = lin.weight();
    for (size_t i = 0; i < w.w.size(); ++i)
        w.w[i] = float(rng.normal(0.0, 1.0));
    w.noteUpdated();

    Tensor y = lin.forward(x, false);
    std::vector<float> want(batch * out, 0.0f);
    gemmNaiveBTAcc(x.data(), w.w.data(), want.data(), batch, out, in);
    for (size_t i = 0; i < want.size(); ++i) {
        double tol = 1e-4 * (1.0 + std::fabs(double(want[i])));
        EXPECT_NEAR(y[i], want[i], tol) << "index " << i;
    }
}

TEST(LayersPlanInvalidation, Conv2dForwardTracksWeightUpdate)
{
    Rng rng(5);
    Conv2d conv(3, 16, 3, 1, 1, rng, /*bias=*/false);
    Tensor x = Tensor::randn({2, 3, 10, 10}, rng, 1.0);
    conv.forward(x, false);

    Param& w = conv.weight();
    for (size_t i = 0; i < w.w.size(); ++i)
        w.w[i] = float(rng.normal(0.0, 1.0));
    w.noteUpdated();
    Tensor y = conv.forward(x, false);

    // Reference: a fresh layer given the same weights has no stale
    // plan to serve.
    Rng rng2(5);
    Conv2d ref(3, 16, 3, 1, 1, rng2, /*bias=*/false);
    Param& wr = ref.weight();
    for (size_t i = 0; i < wr.w.size(); ++i)
        wr.w[i] = w.w[i];
    Tensor ywant = ref.forward(x, false);

    ASSERT_EQ(y.size(), ywant.size());
    for (size_t i = 0; i < y.size(); ++i)
        EXPECT_EQ(y[i], ywant[i]) << "index " << i;
}

TEST(LayersPlanInvalidation, LstmForwardTracksWeightUpdate)
{
    Rng rng(6);
    Lstm lstm(32, 64, rng);
    Tensor x = Tensor::randn({4, 8, 32}, rng, 1.0);
    lstm.forward(x, false);

    std::vector<Param*> ps = lstm.params();
    for (Param* p : ps) {
        for (size_t i = 0; i < p->w.size(); ++i)
            p->w[i] = float(rng.normal(0.0, 0.2));
        p->noteUpdated();
    }
    Tensor y = lstm.forward(x, false);

    Rng rng2(6);
    Lstm ref(32, 64, rng2);
    std::vector<Param*> rs = ref.params();
    ASSERT_EQ(ps.size(), rs.size());
    for (size_t j = 0; j < ps.size(); ++j)
        for (size_t i = 0; i < ps[j]->w.size(); ++i)
            rs[j]->w[i] = ps[j]->w[i];
    Tensor ywant = ref.forward(x, false);

    ASSERT_EQ(y.size(), ywant.size());
    for (size_t i = 0; i < y.size(); ++i)
        EXPECT_EQ(y[i], ywant[i]) << "index " << i;
}

} // namespace
} // namespace mixq
