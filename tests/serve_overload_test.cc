/**
 * @file
 * Admission control under sustained overload (S3 of the failure
 * model). A deterministic per-batch stall (serve/fault.hh) pins the
 * worker's capacity far below an open-loop producer's offered load —
 * the producer submits as fast as it can, several times what the
 * worker drains — and each OverloadPolicy must keep the queue inside
 * ServeOptions::maxQueueItems (bounded queue memory, checked via the
 * queuePeakItems high-water mark), account every request exactly once
 * (served + shed == offered, nothing lost, nothing duplicated), and
 * keep every *served* response bit-identical to a fault-free direct
 * forward — load shedding must never corrupt the requests that do get
 * through.
 */

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "infer/session.hh"
#include "nn/models.hh"
#include "nn/trainer.hh"
#include "serve/fault.hh"
#include "serve/server.hh"
#include "util/rng.hh"

namespace mixq {
namespace {

void
expectBitEqual(const Tensor& got, const Tensor& ref)
{
    ASSERT_EQ(got.shape(), ref.shape());
    for (size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(got[i], ref[i]) << "index " << i;
}

/** Contiguous item slice of a batch-axis-0 tensor [N, ...]. */
Tensor
sliceAxis0(const Tensor& x, size_t off, size_t k)
{
    std::vector<size_t> s = x.shape();
    s[0] = k;
    Tensor o(std::move(s));
    size_t row = x.size() / x.dim(0);
    std::copy_n(x.data() + off * row, k * row, o.data());
    return o;
}

/** QAT-calibrate @p model on @p x and switch it to the Int backend. */
void
toIntBackend(Module& model, const Tensor& x)
{
    QConfig cfg;
    QatContext qat(cfg);
    qat.attach(model.params());
    model.setActQuant(cfg.actBits, true);
    model.forward(x, true); // calibrate
    qat.finalize();
    applyInferBackend(model, InferBackend::Int, &qat);
}

constexpr size_t kOffered = 60;
constexpr size_t kQueueBound = 8;

struct OverloadRun
{
    size_t acceptedStatus = 0; //!< submits that returned Accepted
    size_t shedStatus = 0;     //!< submits that returned Shed
    size_t served = 0;         //!< futures that resolved with a value
    size_t shedFutures = 0;    //!< futures failed ServeError::Shed
    BatchServer::Stats stats;
};

/**
 * Open-loop burst of kOffered single-item requests against a
 * one-worker server whose every batch is stalled 5ms — offered load
 * is orders of magnitude past capacity, far beyond the 3x the goodput
 * gate uses. Served responses are bit-checked against @p refs
 * (request i carries data slice i % 8); every future must settle.
 */
OverloadRun
runOverload(OverloadPolicy policy)
{
    Rng dataRng(81);
    Tensor x = Tensor::randn({8, 3, 12, 12}, dataRng, 1.0);
    for (float& v : x.span())
        v = v < 0.0f ? -v : v;
    Rng rng(82);
    auto model = makeMiniResNet(4, rng);
    toIntBackend(*model, x);
    std::vector<Tensor> refs;
    for (size_t i = 0; i < 8; ++i)
        refs.push_back(model->forward(sliceAxis0(x, i, 1), false));

    FaultPlan plan;
    plan.stallEveryBatchUs = 5'000;
    armFaultPlan(plan);

    OverloadRun run;
    {
        BatchTraits traits;
        traits.itemShape = {1, 3, 12, 12};
        ServeOptions opt;
        opt.deadlineUs = 0; // one request per batch
        opt.maxQueueItems = kQueueBound;
        opt.overload = policy;
        BatchServer server(std::vector<Module*>{model.get()}, traits,
                           opt);

        std::vector<std::future<Tensor>> futs;
        for (size_t i = 0; i < kOffered; ++i) {
            SubmitResult r = server.submit(sliceAxis0(x, i % 8, 1));
            if (r.status == ServeStatus::Accepted)
                ++run.acceptedStatus;
            else if (r.status == ServeStatus::Shed)
                ++run.shedStatus;
            else
                ADD_FAILURE() << "submit " << i << " rejected";
            futs.push_back(std::move(r.future));
        }

        for (size_t i = 0; i < futs.size(); ++i) {
            try {
                Tensor got = futs[i].get();
                expectBitEqual(got, refs[i % 8]);
                ++run.served;
            } catch (const ServeError& e) {
                EXPECT_EQ(e.code(), ServeError::Code::Shed)
                    << "request " << i << ": " << e.what();
                ++run.shedFutures;
            }
        }
        server.stop(true);
        run.stats = server.stats();
    }
    disarmFaultPlan();

    // Universal accounting: every request settled exactly once, the
    // queue never outgrew its bound, and the server's own counters
    // agree with what the producer observed.
    EXPECT_EQ(run.served + run.shedFutures, kOffered);
    EXPECT_LE(run.stats.queuePeakItems, kQueueBound);
    EXPECT_GT(run.stats.queuePeakItems, 0u);
    EXPECT_EQ(run.stats.requests, run.served);
    EXPECT_EQ(run.stats.shed, run.shedFutures);
    EXPECT_EQ(run.stats.expired, 0u);
    EXPECT_EQ(run.stats.faults, 0u);
    return run;
}

TEST(ServeOverload, BlockPolicyBackpressuresAndServesEverything)
{
    OverloadRun run = runOverload(OverloadPolicy::Block);
    // Backpressure: the producer stalls instead of anything dropping.
    EXPECT_EQ(run.acceptedStatus, kOffered);
    EXPECT_EQ(run.served, kOffered);
    EXPECT_EQ(run.shedStatus, 0u);
    EXPECT_EQ(run.shedFutures, 0u);
}

TEST(ServeOverload, ShedPolicyAdmitsFreshAndDropsOldest)
{
    OverloadRun run = runOverload(OverloadPolicy::Shed);
    // Every submit is admitted; the queue makes room by failing the
    // oldest waiters. At this load shedding must actually happen.
    EXPECT_EQ(run.acceptedStatus, kOffered);
    EXPECT_EQ(run.shedStatus, 0u);
    EXPECT_GE(run.shedFutures, 1u);
    EXPECT_GE(run.served, 1u);
}

TEST(ServeOverload, FailFastPolicyRefusesAtTheDoor)
{
    OverloadRun run = runOverload(OverloadPolicy::FailFast);
    // Refused submits report Shed synchronously; accepted ones are
    // all served (nothing is evicted once queued).
    EXPECT_EQ(run.acceptedStatus + run.shedStatus, kOffered);
    EXPECT_GE(run.shedStatus, 1u);
    EXPECT_EQ(run.served, run.acceptedStatus);
    EXPECT_EQ(run.shedFutures, run.shedStatus);
    EXPECT_EQ(run.stats.accepted, run.acceptedStatus);
}

} // namespace
} // namespace mixq
