/** @file Algorithm 2 row-partitioner tests. */

#include <gtest/gtest.h>

#include "quant/partition.hh"
#include "util/rng.hh"

namespace mixq {
namespace {

/** Build a matrix whose row r has stddev proportional to (r+1). */
std::vector<float>
gradedMatrix(size_t rows, size_t cols, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> w(rows * cols);
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            w[r * cols + c] =
                float(rng.normal(0.0, 0.01 * double(r + 1)));
    return w;
}

TEST(Partition, FractionRounding)
{
    auto w = gradedMatrix(10, 32, 1);
    EXPECT_EQ(partitionRows(w.data(), 10, 32, 0.5).numSp2, 5u);
    EXPECT_EQ(partitionRows(w.data(), 10, 32, 0.0).numSp2, 0u);
    EXPECT_EQ(partitionRows(w.data(), 10, 32, 1.0).numSp2, 10u);
    EXPECT_EQ(partitionRows(w.data(), 10, 32, 2.0 / 3.0).numSp2, 7u);
}

TEST(Partition, VariancePolicyPicksLowVarianceRows)
{
    auto w = gradedMatrix(12, 256, 2);
    auto res = partitionRows(w.data(), 12, 256, 0.5,
                             PartitionPolicy::Variance);
    // The 6 lowest-variance rows are (statistically) rows 0..5.
    for (size_t r = 0; r < 6; ++r)
        EXPECT_EQ(res.rowScheme[r], QuantScheme::Sp2) << r;
    for (size_t r = 6; r < 12; ++r)
        EXPECT_EQ(res.rowScheme[r], QuantScheme::Fixed) << r;
}

TEST(Partition, ThresholdSeparatesGroups)
{
    auto w = gradedMatrix(12, 256, 3);
    auto res = partitionRows(w.data(), 12, 256, 0.5,
                             PartitionPolicy::Variance);
    for (size_t r = 0; r < 12; ++r) {
        if (res.rowScheme[r] == QuantScheme::Sp2)
            EXPECT_LT(res.rowVariance[r], res.threshold);
        else
            EXPECT_GE(res.rowVariance[r], res.threshold);
    }
}

TEST(Partition, InvertedPolicyPicksHighVarianceRows)
{
    auto w = gradedMatrix(12, 256, 4);
    auto res = partitionRows(w.data(), 12, 256, 0.5,
                             PartitionPolicy::Inverted);
    for (size_t r = 6; r < 12; ++r)
        EXPECT_EQ(res.rowScheme[r], QuantScheme::Sp2) << r;
}

TEST(Partition, RandomPolicyIsSeedDeterministic)
{
    auto w = gradedMatrix(16, 32, 5);
    auto a = partitionRows(w.data(), 16, 32, 0.5,
                           PartitionPolicy::Random, 7);
    auto b = partitionRows(w.data(), 16, 32, 0.5,
                           PartitionPolicy::Random, 7);
    auto c = partitionRows(w.data(), 16, 32, 0.5,
                           PartitionPolicy::Random, 8);
    EXPECT_EQ(a.rowScheme, b.rowScheme);
    EXPECT_EQ(a.numSp2, c.numSp2);
}

TEST(Partition, RowVariancesMatchDefinition)
{
    std::vector<float> w = {1.0f, 1.0f, 1.0f, 1.0f,   // var 0
                            0.0f, 2.0f, 0.0f, 2.0f};  // var 1
    auto res = partitionRows(w.data(), 2, 4, 0.5);
    EXPECT_DOUBLE_EQ(res.rowVariance[0], 0.0);
    EXPECT_DOUBLE_EQ(res.rowVariance[1], 1.0);
    EXPECT_EQ(res.rowScheme[0], QuantScheme::Sp2);
    EXPECT_EQ(res.rowScheme[1], QuantScheme::Fixed);
}

class PartitionFraction : public ::testing::TestWithParam<double>
{
};

TEST_P(PartitionFraction, ExactCounts)
{
    double pr = GetParam();
    auto w = gradedMatrix(24, 16, 6);
    auto res = partitionRows(w.data(), 24, 16, pr);
    EXPECT_EQ(res.numSp2, size_t(llround(pr * 24.0)));
}

INSTANTIATE_TEST_SUITE_P(Fractions, PartitionFraction,
                         ::testing::Values(0.0, 0.25, 1.0 / 3.0, 0.5,
                                           0.6, 2.0 / 3.0, 0.75, 1.0));

} // namespace
} // namespace mixq
