/** @file Comparator method (Tables III/IV) projector tests. */

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/methods.hh"
#include "data/synth_images.hh"
#include "nn/models.hh"
#include "util/rng.hh"
#include "quant/quantizer.hh"
#include "util/stats.hh"

namespace mixq {
namespace {

Param
randomParam(size_t rows, size_t cols, uint64_t seed, double sigma = 0.3)
{
    Rng rng(seed);
    return Param("w", Tensor::randn({rows, cols}, rng, sigma), rows,
                 cols);
}

/** Count distinct values in a tensor (grid cardinality proxy). */
size_t
distinctValues(const Tensor& t)
{
    std::vector<float> v(t.data(), t.data() + t.size());
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return v.size();
}

TEST(Dorefa, ProjectsToAtMostGridCardinality)
{
    Param p = randomParam(8, 32, 1);
    DorefaProjector proj(4);
    proj.attach({&p});
    proj.project(p);
    EXPECT_LE(distinctValues(p.w), 15u); // 2^4 - 1 signed levels
}

TEST(Dorefa, PreservesSigns)
{
    Param p = randomParam(4, 16, 2);
    std::vector<float> before(p.w.data(), p.w.data() + p.w.size());
    DorefaProjector proj(4);
    proj.attach({&p});
    proj.project(p);
    for (size_t i = 0; i < p.w.size(); ++i) {
        if (std::fabs(before[i]) > 0.05f)
            EXPECT_GE(before[i] * p.w[i], 0.0f) << i;
    }
}

TEST(Lsq, RefitReducesMse)
{
    Param p = randomParam(8, 64, 3);
    std::vector<float> latent(p.w.data(), p.w.data() + p.w.size());
    LsqProjector proj(4);
    proj.attach({&p});
    proj.project(p);
    double mse_fit = quantMse(
        latent, std::span<const float>(p.w.data(), p.w.size()));

    // Compare to a crude max-abs step.
    Param q("q", Tensor({8, 64}, latent), 8, 64);
    double amax = maxAbs(std::span<const float>(latent));
    double levels = 7.0;
    for (size_t i = 0; i < q.w.size(); ++i) {
        double t = std::clamp(double(latent[i]) / amax, -1.0, 1.0);
        q.w[i] = float(std::nearbyint(t * levels) / levels * amax);
    }
    double mse_max = quantMse(
        latent, std::span<const float>(q.w.data(), q.w.size()));
    EXPECT_LE(mse_fit, mse_max + 1e-9);
}

TEST(Dsq, AnnealsTowardHardQuantization)
{
    Param p = randomParam(4, 64, 4);
    std::vector<float> latent(p.w.data(), p.w.data() + p.w.size());
    DsqProjector proj(4);
    proj.attach({&p});

    proj.epochBegin(0, 10);
    proj.project(p);
    size_t early = distinctValues(p.w);

    // Restore latent and project at the final epoch.
    std::copy(latent.begin(), latent.end(), p.w.data());
    proj.epochBegin(9, 10);
    proj.project(p);
    size_t late = distinctValues(p.w);
    EXPECT_LE(late, 15u);     // fully hard at the end
    EXPECT_GE(early, late);   // soft blend keeps more values early
}

TEST(Ul2q, ScaleFrozenAtAttach)
{
    Param p = randomParam(4, 64, 5, 0.1);
    Ul2qProjector proj(4);
    proj.attach({&p});
    proj.project(p);
    std::vector<float> first(p.w.data(), p.w.data() + p.w.size());
    // Rescale the latent weights; the frozen alpha now clips hard.
    for (size_t i = 0; i < p.w.size(); ++i)
        p.w[i] = first[i] * 10.0f;
    proj.project(p);
    double m = maxAbs(p.w.span());
    double m_first = maxAbs(std::span<const float>(first));
    EXPECT_NEAR(m, m_first, 1e-4); // clipped to the original range
}

TEST(LqNets, LevelsAreSignedBasisCombinations)
{
    Param p = randomParam(4, 64, 6);
    LqNetsProjector proj(4);
    proj.attach({&p});
    proj.project(p);
    EXPECT_LE(distinctValues(p.w), 8u); // 2^(m-1) combos
}

TEST(LqNets, BasisFitBeatsPow2InitOnGaussian)
{
    Param p = randomParam(8, 128, 7);
    std::vector<float> latent(p.w.data(), p.w.data() + p.w.size());
    LqNetsProjector proj(4);
    proj.attach({&p});
    proj.project(p);
    double mse_fit = quantMse(
        latent, std::span<const float>(p.w.data(), p.w.size()));
    EXPECT_GT(mse_fit, 0.0);
    EXPECT_LT(mse_fit, 0.02); // sane fit on sigma = 0.3 weights
}

TEST(SteQat, TrainsAndEndsQuantized)
{
    Rng rng(8);
    auto model = makeTinyConvNet(10, rng);
    LabeledImages train = makeImageDataset(ImageTask::Easy, 200, 9);
    TrainCfg cfg;
    cfg.epochs = 2;
    cfg.lr = 0.02;
    DorefaProjector proj(4);
    steQatTrain(*model, train, cfg, proj, 4);
    for (Param* p : model->params()) {
        if (!p->quantizable())
            continue;
        EXPECT_LE(distinctValues(p->w), 15u) << p->name;
    }
}

TEST(SteQat, AccuracyRemainsAboveChance)
{
    Rng rng(9);
    auto model = makeMiniResNet(10, rng, 4);
    LabeledImages train = makeImageDataset(ImageTask::Easy, 400, 10);
    LabeledImages test = makeImageDataset(ImageTask::Easy, 150, 11);
    TrainCfg pre;
    pre.epochs = 6;
    pre.lr = 0.1;
    trainClassifier(*model, train, pre);
    TrainCfg cfg;
    cfg.epochs = 3;
    cfg.lr = 0.02;
    LsqProjector proj(4);
    steQatTrain(*model, train, cfg, proj, 4);
    EXPECT_GT(evalClassifier(*model, test), 0.25);
}

TEST(Projectors, Names)
{
    EXPECT_EQ(DorefaProjector(4).name(), "Dorefa");
    EXPECT_EQ(PactProjector(4).name(), "PACT");
    EXPECT_EQ(LsqProjector(4).name(), "LSQ");
    EXPECT_EQ(DsqProjector(4).name(), "DSQ");
    EXPECT_EQ(Ul2qProjector(4).name(), "uL2Q");
    EXPECT_EQ(LqNetsProjector(4).name(), "LQ-NETS");
}

} // namespace
} // namespace mixq
