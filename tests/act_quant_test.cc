/** @file Activation fake-quantization (STE) tests. */

#include <gtest/gtest.h>

#include <cmath>

#include "quant/act_quant.hh"

namespace mixq {
namespace {

TEST(ActQuant, DisabledIsPassThrough)
{
    ActFakeQuant q(4, false);
    std::vector<float> x = {0.1f, 0.7f, 2.0f};
    std::vector<float> orig = x;
    q.forward(x);
    EXPECT_EQ(x, orig);
}

TEST(ActQuant, UnsignedGrid)
{
    ActFakeQuant q(4, false);
    q.setEnabled(true);
    std::vector<float> calib = {1.0f};
    q.forward(calib); // sets alpha = 1
    std::vector<float> x = {0.0f, 0.5f, 1.0f, -0.3f, 2.0f};
    q.forward(x);
    double alpha = q.alpha();
    double levels = 15.0;
    for (float v : x) {
        EXPECT_GE(v, 0.0f);
        EXPECT_LE(double(v), alpha + 1e-6);
        double t = double(v) / alpha * levels;
        EXPECT_NEAR(t, std::nearbyint(t), 1e-4);
    }
}

TEST(ActQuant, SignedGridSymmetric)
{
    ActFakeQuant q(4, true);
    q.setEnabled(true);
    std::vector<float> x = {-1.0f, -0.3f, 0.3f, 1.0f};
    q.forward(x);
    EXPECT_FLOAT_EQ(x[0], -x[3]);
    EXPECT_FLOAT_EQ(x[1], -x[2]);
}

TEST(ActQuant, EmaTracksRange)
{
    ActFakeQuant q(4, false);
    q.setEnabled(true);
    std::vector<float> big = {10.0f};
    q.forward(big);
    double a0 = q.alpha();
    for (int i = 0; i < 50; ++i) {
        std::vector<float> small = {1.0f};
        q.forward(small);
    }
    EXPECT_LT(q.alpha(), a0);
    EXPECT_GT(q.alpha(), 1.0);
}

TEST(ActQuant, SteMaskZeroesOutOfRange)
{
    ActFakeQuant q(4, false);
    q.setEnabled(true);
    std::vector<float> calib = {1.0f};
    q.forward(calib);
    std::vector<float> x_pre = {-0.5f, 0.5f, 1.5f};
    std::vector<float> grad = {1.0f, 1.0f, 1.0f};
    q.backwardSte(x_pre, grad);
    EXPECT_FLOAT_EQ(grad[0], 0.0f); // below range
    EXPECT_FLOAT_EQ(grad[1], 1.0f); // inside
    EXPECT_FLOAT_EQ(grad[2], 0.0f); // clipped
}

TEST(ActQuant, SignedSteMaskKeepsNegatives)
{
    ActFakeQuant q(4, true);
    q.setEnabled(true);
    std::vector<float> calib = {1.0f};
    q.forward(calib);
    std::vector<float> x_pre = {-0.5f, -1.5f};
    std::vector<float> grad = {1.0f, 1.0f};
    q.backwardSte(x_pre, grad);
    EXPECT_FLOAT_EQ(grad[0], 1.0f);
    EXPECT_FLOAT_EQ(grad[1], 0.0f);
}

TEST(ActQuant, ZeroBatchDoesNotCalibrate)
{
    ActFakeQuant q(4, false);
    q.setEnabled(true);
    std::vector<float> zeros(8, 0.0f);
    q.forward(zeros);
    for (float v : zeros)
        EXPECT_FLOAT_EQ(v, 0.0f);
}

} // namespace
} // namespace mixq
