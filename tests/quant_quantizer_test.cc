/** @file Projection and alpha-fitting tests (Eqs. 2/3/5, Section III). */

#include <gtest/gtest.h>

#include <cmath>

#include "quant/quantizer.hh"
#include "util/rng.hh"

namespace mixq {
namespace {

TEST(Project, NearestLevelAndClip)
{
    std::vector<double> mags = {0.0, 0.5, 1.0};
    EXPECT_DOUBLE_EQ(projectValue(0.1, mags, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(projectValue(0.3, mags, 1.0), 0.5);
    EXPECT_DOUBLE_EQ(projectValue(0.8, mags, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(projectValue(5.0, mags, 1.0), 1.0);   // clip
    EXPECT_DOUBLE_EQ(projectValue(-0.8, mags, 1.0), -1.0); // sign
    EXPECT_DOUBLE_EQ(projectValue(-9.0, mags, 2.0), -2.0); // alpha
}

TEST(Project, Idempotent)
{
    auto mags = fixedMagnitudes(4);
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        double x = rng.normal(0.0, 0.5);
        double q1 = projectValue(x, mags, 0.7);
        double q2 = projectValue(q1, mags, 0.7);
        EXPECT_NEAR(q1, q2, 1e-12);
    }
}

TEST(Project, ErrorBoundedByHalfStep)
{
    auto mags = fixedMagnitudes(4);
    double alpha = 1.0;
    double step = alpha / 7.0; // level spacing
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        double x = rng.uniform(-1.0, 1.0);
        double q = projectValue(x, mags, alpha);
        EXPECT_LE(std::fabs(x - q), step / 2 + 1e-12);
    }
}

TEST(FitAlpha, RecoversScaleOfOnGridData)
{
    // Weights already on alpha * levels: the fit must find ~alpha.
    auto mags = fixedMagnitudes(4);
    double alpha = 0.37;
    std::vector<float> w;
    for (double m : mags) {
        w.push_back(float(alpha * m));
        w.push_back(float(-alpha * m));
    }
    double fit = fitAlpha(w, mags);
    EXPECT_NEAR(fit, alpha, 1e-3);
}

TEST(FitAlpha, AllZeros)
{
    std::vector<float> w(16, 0.0f);
    EXPECT_DOUBLE_EQ(fitAlpha(w, fixedMagnitudes(4)), 1.0);
}

TEST(FitAlpha, ImprovesOverMaxAbsInit)
{
    // With a heavy outlier, the fitted alpha should beat alpha =
    // max|w| in mean squared error.
    Rng rng(11);
    std::vector<float> w;
    for (int i = 0; i < 500; ++i)
        w.push_back(float(rng.normal(0.0, 0.1)));
    w.push_back(2.0f); // outlier
    auto mags = fixedMagnitudes(4);
    double a_fit = fitAlpha(w, mags);
    double a_max = 2.0;
    auto mse_at = [&](double a) {
        double s = 0.0;
        for (float x : w) {
            double q = projectValue(x, mags, a);
            s += (x - q) * (x - q);
        }
        return s / double(w.size());
    };
    EXPECT_LT(mse_at(a_fit), mse_at(a_max));
}

TEST(QuantizeGroup, OutputOnGrid)
{
    Rng rng(17);
    std::vector<float> w(128), out(128);
    for (float& x : w)
        x = float(rng.normal(0.0, 0.3));
    double alpha = quantizeGroup(w, out, QuantScheme::Sp2, 4);
    auto mags = sp2Magnitudes(4);
    for (float q : out) {
        double t = std::fabs(q) / alpha;
        bool on_grid = false;
        for (double m : mags)
            on_grid |= std::fabs(t - m) < 1e-6;
        EXPECT_TRUE(on_grid) << q;
    }
}

TEST(SchemeError, Sp2BeatsPow2OnGaussian)
{
    // The central claim of Section III: on Gaussian weights at 4
    // bits, SP2's quantization error is well below P2's and close to
    // fixed-point.
    Rng rng(23);
    std::vector<float> w(4096);
    for (float& x : w)
        x = float(rng.normal(0.0, 0.25));
    auto mse_for = [&](QuantScheme s) {
        std::vector<float> out(w.size());
        quantizeGroup(w, out, s, 4);
        return quantMse(w, out);
    };
    double mse_p2 = mse_for(QuantScheme::Pow2);
    double mse_sp2 = mse_for(QuantScheme::Sp2);
    double mse_fx = mse_for(QuantScheme::Fixed);
    EXPECT_LT(mse_sp2, mse_p2);
    EXPECT_LT(mse_sp2, 2.0 * mse_fx);
}

TEST(SchemeError, FixedBestOnUniform)
{
    Rng rng(29);
    std::vector<float> w(4096);
    for (float& x : w)
        x = float(rng.uniform(-0.5, 0.5));
    auto mse_for = [&](QuantScheme s) {
        std::vector<float> out(w.size());
        quantizeGroup(w, out, s, 4);
        return quantMse(w, out);
    };
    EXPECT_LT(mse_for(QuantScheme::Fixed),
              mse_for(QuantScheme::Pow2));
}

class QuantizeMatrixTest : public ::testing::TestWithParam<QuantScheme>
{
};

TEST_P(QuantizeMatrixTest, SingleSchemeAssignsAllRows)
{
    QConfig cfg;
    cfg.scheme = GetParam();
    cfg.bits = 4;
    Rng rng(31);
    size_t rows = 8, cols = 16;
    std::vector<float> w(rows * cols), out(rows * cols);
    for (float& x : w)
        x = float(rng.normal(0.0, 0.2));
    auto res = quantizeMatrix(w.data(), out.data(), rows, cols, cfg);
    for (QuantScheme s : res.rowScheme)
        EXPECT_EQ(s, cfg.scheme);
    for (float a : res.rowAlpha)
        EXPECT_GT(a, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Schemes, QuantizeMatrixTest,
                         ::testing::Values(QuantScheme::Fixed,
                                           QuantScheme::Pow2,
                                           QuantScheme::Sp2));

TEST(QuantizeMatrix, MixedPartitionCounts)
{
    QConfig cfg;
    cfg.scheme = QuantScheme::Mixed;
    cfg.prSp2 = 2.0 / 3.0;
    Rng rng(37);
    size_t rows = 9, cols = 32;
    std::vector<float> w(rows * cols), out(rows * cols);
    for (float& x : w)
        x = float(rng.normal(0.0, 0.2));
    auto res = quantizeMatrix(w.data(), out.data(), rows, cols, cfg);
    EXPECT_EQ(res.numSp2, 6u); // round(9 * 2/3)
    size_t n_sp2 = 0;
    for (QuantScheme s : res.rowScheme)
        n_sp2 += s == QuantScheme::Sp2;
    EXPECT_EQ(n_sp2, 6u);
}

TEST(QuantizeMatrix, PerRowGranularityGivesRowAlphas)
{
    QConfig cfg;
    cfg.scheme = QuantScheme::Fixed;
    cfg.granularity = Granularity::PerRow;
    Rng rng(41);
    size_t rows = 4, cols = 64;
    std::vector<float> w(rows * cols), out(rows * cols);
    // Rows with very different scales.
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            w[r * cols + c] =
                float(rng.normal(0.0, 0.05 * double(r + 1)));
    auto res = quantizeMatrix(w.data(), out.data(), rows, cols, cfg);
    EXPECT_LT(res.rowAlpha[0], res.rowAlpha[3]);
}

TEST(QuantizeMatrix, PerRowBeatsPerLayerOnHeterogeneousRows)
{
    Rng rng(43);
    size_t rows = 8, cols = 64;
    std::vector<float> w(rows * cols);
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            w[r * cols + c] =
                float(rng.normal(0.0, r < 4 ? 0.02 : 0.4));
    QConfig cfg;
    cfg.scheme = QuantScheme::Fixed;
    std::vector<float> out1(w.size()), out2(w.size());
    cfg.granularity = Granularity::PerGroup;
    quantizeMatrix(w.data(), out1.data(), rows, cols, cfg);
    cfg.granularity = Granularity::PerRow;
    quantizeMatrix(w.data(), out2.data(), rows, cols, cfg);
    EXPECT_LT(quantMse(w, out2), quantMse(w, out1));
}

TEST(QuantizeMatrix, MixedMseNotWorseThanWorstSingle)
{
    Rng rng(47);
    size_t rows = 16, cols = 64;
    std::vector<float> w(rows * cols);
    // Half the rows Gaussian-tight, half uniform-wide (the paper's
    // motivating weight heterogeneity).
    for (size_t r = 0; r < rows; ++r) {
        for (size_t c = 0; c < cols; ++c) {
            w[r * cols + c] = r % 2 == 0
                ? float(rng.normal(0.0, 0.05))
                : float(rng.uniform(-0.4, 0.4));
        }
    }
    auto mse_for = [&](QuantScheme s, double pr) {
        QConfig cfg;
        cfg.scheme = s;
        cfg.prSp2 = pr;
        std::vector<float> out(w.size());
        quantizeMatrix(w.data(), out.data(), rows, cols, cfg);
        return quantMse(w, out);
    };
    double mixed = mse_for(QuantScheme::Mixed, 0.5);
    double p2 = mse_for(QuantScheme::Pow2, 0.0);
    EXPECT_LT(mixed, p2);
}

TEST(QuantMse, ZeroForIdentical)
{
    std::vector<float> a = {1.0f, 2.0f};
    EXPECT_DOUBLE_EQ(quantMse(a, a), 0.0);
}

} // namespace
} // namespace mixq
