/** @file Level-set properties of the three quantization schemes. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "quant/scheme.hh"

namespace mixq {
namespace {

class LevelBits : public ::testing::TestWithParam<int>
{
};

TEST_P(LevelBits, FixedCardinality)
{
    int m = GetParam();
    // 2^(m-1) magnitudes including zero -> 2^m - 1 signed levels.
    EXPECT_EQ(fixedMagnitudes(m).size(), size_t(1) << (m - 1));
    EXPECT_EQ(signedLevels(QuantScheme::Fixed, m).size(),
              (size_t(1) << m) - 1);
}

TEST_P(LevelBits, Pow2Cardinality)
{
    int m = GetParam();
    EXPECT_EQ(pow2Magnitudes(m).size(), size_t(1) << (m - 1));
    EXPECT_EQ(signedLevels(QuantScheme::Pow2, m).size(),
              (size_t(1) << m) - 1);
}

TEST_P(LevelBits, AllSchemesSortedUniqueInUnitRange)
{
    int m = GetParam();
    for (QuantScheme s : {QuantScheme::Fixed, QuantScheme::Pow2,
                          QuantScheme::Sp2}) {
        auto mags = magnitudes(s, m);
        EXPECT_TRUE(std::is_sorted(mags.begin(), mags.end()));
        EXPECT_EQ(std::adjacent_find(mags.begin(), mags.end()),
                  mags.end());
        EXPECT_DOUBLE_EQ(mags.front(), 0.0);
        EXPECT_LE(mags.back(), 1.0);
        EXPECT_GT(mags.back(), 0.0);
    }
}

TEST_P(LevelBits, SignedLevelsSymmetric)
{
    int m = GetParam();
    for (QuantScheme s : {QuantScheme::Fixed, QuantScheme::Pow2,
                          QuantScheme::Sp2}) {
        auto levels = signedLevels(s, m);
        for (double v : levels) {
            EXPECT_NE(std::find_if(levels.begin(), levels.end(),
                                   [v](double u) {
                                       return std::fabs(u + v) <
                                              1e-15;
                                   }),
                      levels.end());
        }
    }
}

TEST_P(LevelBits, Sp2LevelsAreSumsOfTwoPowersOfTwo)
{
    int m = GetParam();
    Sp2Split sp = sp2Split(m);
    auto mags = sp2Magnitudes(m);
    for (double v : mags) {
        bool ok = false;
        for (int k1 = 0; k1 <= (1 << sp.m1) - 1 && !ok; ++k1) {
            for (int k2 = 0; k2 <= (1 << sp.m2) - 1 && !ok; ++k2) {
                double q1 = k1 == 0 ? 0.0 : std::ldexp(1.0, -k1);
                double q2 = k2 == 0 ? 0.0 : std::ldexp(1.0, -k2);
                ok = std::fabs(q1 + q2 - v) < 1e-15;
            }
        }
        EXPECT_TRUE(ok) << "level " << v << " at m=" << m;
    }
}

TEST_P(LevelBits, Sp2CardinalityAtMostNominal)
{
    int m = GetParam();
    // Eq. (8) nominally promises 2^m - 1 signed levels; collisions
    // (0 + 1/2 == 1/2 + 0) can only reduce the count (DESIGN.md).
    auto levels = signedLevels(QuantScheme::Sp2, m);
    EXPECT_LE(levels.size(), (size_t(1) << m) - 1);
    // Collisions shrink the set but never below ~3/4 of 2^(m-1)
    // (observed: m=7 keeps 59 of the nominal 127 signed levels).
    EXPECT_GE(levels.size(), (size_t(1) << (m - 1)) * 3 / 4);
}

INSTANTIATE_TEST_SUITE_P(BitSweep, LevelBits,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8));

TEST(Levels, FourBitFixedValues)
{
    auto mags = fixedMagnitudes(4);
    ASSERT_EQ(mags.size(), 8u);
    for (int k = 0; k < 8; ++k)
        EXPECT_DOUBLE_EQ(mags[size_t(k)], k / 7.0);
}

TEST(Levels, FourBitPow2Values)
{
    // Eq. (4): {0} + {1, 1/2, ..., 1/64}.
    auto mags = pow2Magnitudes(4);
    ASSERT_EQ(mags.size(), 8u);
    EXPECT_DOUBLE_EQ(mags[0], 0.0);
    EXPECT_DOUBLE_EQ(mags[1], 1.0 / 64.0);
    EXPECT_DOUBLE_EQ(mags[7], 1.0);
}

TEST(Levels, FourBitSp2Values)
{
    // m1=2, m2=1: q1 in {0,1/8,1/4,1/2}, q2 in {0,1/2}; the sum set
    // collides at 1/2, leaving 7 distinct magnitudes.
    auto mags = sp2Magnitudes(4);
    std::vector<double> expect = {0.0, 0.125, 0.25, 0.5,
                                  0.625, 0.75, 1.0};
    ASSERT_EQ(mags.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_DOUBLE_EQ(mags[i], expect[i]);
}

TEST(Levels, Sp2SplitRules)
{
    for (int m = 2; m <= 8; ++m) {
        Sp2Split sp = sp2Split(m);
        EXPECT_EQ(sp.m1 + sp.m2 + 1, m);
        EXPECT_GE(sp.m1, sp.m2);
        EXPECT_LE(sp.m1 - sp.m2, 1);
    }
}

TEST(Levels, Pow2TailGapIsLargerThanSp2)
{
    // The paper's Fig. 1 argument: P2 has a huge gap below 1.0
    // (1 -> 1/2), SP2's top gap is much smaller (1 -> 3/4).
    auto p2 = pow2Magnitudes(4);
    auto sp2 = sp2Magnitudes(4);
    double p2_gap = p2.back() - p2[p2.size() - 2];
    double sp2_gap = sp2.back() - sp2[sp2.size() - 2];
    EXPECT_DOUBLE_EQ(p2_gap, 0.5);
    EXPECT_DOUBLE_EQ(sp2_gap, 0.25);
}

TEST(Levels, SchemeNames)
{
    EXPECT_EQ(toString(QuantScheme::Fixed), "Fixed");
    EXPECT_EQ(toString(QuantScheme::Pow2), "P2");
    EXPECT_EQ(toString(QuantScheme::Sp2), "SP2");
    EXPECT_EQ(toString(QuantScheme::Mixed), "MSQ");
}

TEST(Levels, RatioHelper)
{
    EXPECT_DOUBLE_EQ(QConfig::fractionFromRatio(2.0, 1.0), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(QConfig::fractionFromRatio(1.0, 1.0), 0.5);
    EXPECT_DOUBLE_EQ(QConfig::fractionFromRatio(0.0, 1.0), 0.0);
}

TEST(LevelSetCache, RegistryReturnsOneSharedInstance)
{
    const LevelSet& a = levelSet(QuantScheme::Sp2, 4);
    const LevelSet& b = levelSet(QuantScheme::Sp2, 4);
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &levelSet(QuantScheme::Sp2, 5));
    EXPECT_NE(&a, &levelSet(QuantScheme::Pow2, 4));
}

TEST(LevelSetCache, MagnitudesAndFloatCopiesMatchBuilders)
{
    for (QuantScheme s : {QuantScheme::Fixed, QuantScheme::Pow2,
                          QuantScheme::Sp2}) {
        for (int bits = 2; bits <= 8; ++bits) {
            const LevelSet& ls = levelSet(s, bits);
            auto want = magnitudes(s, bits);
            ASSERT_EQ(ls.mags().size(), want.size());
            ASSERT_EQ(ls.magsF().size(), want.size());
            for (size_t i = 0; i < want.size(); ++i) {
                EXPECT_EQ(ls.mags()[i], want[i]);
                EXPECT_EQ(ls.magsF()[i], float(want[i]));
            }
        }
    }
}

TEST(LevelSetCache, BoundariesSeparateTheirIntervals)
{
    // b[i] lies in (mags[i], mags[i+1]] and is the first t assigned
    // upward: t = b[i] projects to mags[i+1], one ulp below to
    // mags[i]. This is the lo-on-tie rule as an exact threshold.
    for (QuantScheme s : {QuantScheme::Fixed, QuantScheme::Pow2,
                          QuantScheme::Sp2}) {
        for (int bits = 2; bits <= 8; ++bits) {
            const LevelSet& ls = levelSet(s, bits);
            auto mags = ls.mags();
            auto bnd = ls.boundaries();
            ASSERT_EQ(bnd.size(), mags.size() - 1);
            for (size_t i = 0; i < bnd.size(); ++i) {
                EXPECT_GT(bnd[i], mags[i]);
                EXPECT_LE(bnd[i], mags[i + 1]);
                EXPECT_EQ(ls.nearestMag(bnd[i]), mags[i + 1]);
                EXPECT_EQ(ls.nearestMag(std::nextafter(bnd[i], 0.0)),
                          mags[i]);
            }
        }
    }
}

} // namespace
} // namespace mixq
