/** @file Loss functions, SGD and LR schedules. */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.hh"
#include "nn/optim.hh"
#include "util/rng.hh"

namespace mixq {
namespace {

TEST(Softmax, RowsSumToOne)
{
    Rng rng(1);
    Tensor logits = Tensor::randn({4, 7}, rng, 2.0);
    Tensor p = softmax(logits);
    for (size_t i = 0; i < 4; ++i) {
        double s = 0.0;
        for (size_t j = 0; j < 7; ++j)
            s += p.at2(i, j);
        EXPECT_NEAR(s, 1.0, 1e-6);
    }
}

TEST(CrossEntropy, KnownValue)
{
    Tensor logits({1, 2});
    logits[0] = 0.0f;
    logits[1] = 0.0f;
    Tensor d;
    double loss = softmaxCrossEntropy(logits, {0}, d);
    EXPECT_NEAR(loss, std::log(2.0), 1e-6);
    EXPECT_NEAR(d[0], -0.5, 1e-6);
    EXPECT_NEAR(d[1], 0.5, 1e-6);
}

TEST(CrossEntropy, GradientMatchesFiniteDifference)
{
    Rng rng(2);
    Tensor logits = Tensor::randn({3, 5}, rng, 1.0);
    std::vector<int> y = {1, 4, 0};
    Tensor d;
    softmaxCrossEntropy(logits, y, d);
    double eps = 1e-4;
    for (size_t i = 0; i < logits.size(); i += 3) {
        Tensor lp = logits;
        lp[i] += float(eps);
        Tensor tmp;
        double up = softmaxCrossEntropy(lp, y, tmp);
        lp[i] -= float(2 * eps);
        double dn = softmaxCrossEntropy(lp, y, tmp);
        EXPECT_NEAR(d[i], (up - dn) / (2 * eps), 1e-3);
    }
}

TEST(CrossEntropy, IgnoreIndexSkipsRows)
{
    Tensor logits({2, 2});
    logits[0] = 5.0f; // row 0 ignored
    Tensor d;
    double loss = softmaxCrossEntropy(logits, {-1, 0}, d, -1);
    EXPECT_NEAR(loss, std::log(2.0), 1e-6);
    EXPECT_FLOAT_EQ(d[0], 0.0f);
    EXPECT_FLOAT_EQ(d[1], 0.0f);
}

TEST(Mse, ValueAndGradient)
{
    Tensor a({2}), b({2});
    a[0] = 1.0f; a[1] = 3.0f;
    b[0] = 0.0f; b[1] = 1.0f;
    Tensor d;
    double loss = mseLoss(a, b, d);
    EXPECT_NEAR(loss, (1.0 + 4.0) / 2.0, 1e-6);
    EXPECT_NEAR(d[0], 2.0 * 1.0 / 2.0, 1e-6);
    EXPECT_NEAR(d[1], 2.0 * 2.0 / 2.0, 1e-6);
}

TEST(Sigmoid, StableAtExtremes)
{
    EXPECT_NEAR(sigmoidf(0.0f), 0.5f, 1e-6);
    EXPECT_NEAR(sigmoidf(100.0f), 1.0f, 1e-6);
    EXPECT_NEAR(sigmoidf(-100.0f), 0.0f, 1e-6);
}

TEST(Sgd, PlainStep)
{
    Param p("w", Tensor::full({1}, 1.0f));
    p.grad[0] = 0.5f;
    Sgd sgd({&p}, 0.1, 0.0, 0.0);
    sgd.step();
    EXPECT_NEAR(p.w[0], 1.0f - 0.1f * 0.5f, 1e-6);
}

TEST(Sgd, MomentumAccumulates)
{
    Param p("w", Tensor::full({1}, 0.0f));
    Sgd sgd({&p}, 1.0, 0.5, 0.0);
    p.grad[0] = 1.0f;
    sgd.step(); // v = -1, w = -1
    EXPECT_NEAR(p.w[0], -1.0f, 1e-6);
    p.grad[0] = 1.0f;
    sgd.step(); // v = -0.5 - 1 = -1.5, w = -2.5
    EXPECT_NEAR(p.w[0], -2.5f, 1e-6);
}

TEST(Sgd, WeightDecayRespectsFlag)
{
    Param decay("a", Tensor::full({1}, 1.0f));
    Param nodecay("b", Tensor::full({1}, 1.0f), 0, 0, false);
    Sgd sgd({&decay, &nodecay}, 0.1, 0.0, 1.0);
    sgd.step(); // grads are zero; only decay acts
    EXPECT_NEAR(decay.w[0], 0.9f, 1e-6);
    EXPECT_NEAR(nodecay.w[0], 1.0f, 1e-6);
}

TEST(Sgd, ZeroGrad)
{
    Param p("w", Tensor::full({2}, 1.0f));
    p.grad.fill(3.0f);
    Sgd sgd({&p}, 0.1);
    sgd.zeroGrad();
    EXPECT_FLOAT_EQ(p.grad[0], 0.0f);
}

TEST(Schedules, CosineEndpoints)
{
    EXPECT_NEAR(cosineLr(1.0, 0, 10), 1.0, 1e-9);
    EXPECT_NEAR(cosineLr(1.0, 5, 10), 0.5, 1e-9);
    EXPECT_LT(cosineLr(1.0, 9, 10), 0.05);
}

TEST(Schedules, StepDecay)
{
    EXPECT_NEAR(stepLr(1.0, 0, 10), 1.0, 1e-12);
    EXPECT_NEAR(stepLr(1.0, 10, 10), 0.1, 1e-12);
    EXPECT_NEAR(stepLr(1.0, 25, 10), 0.01, 1e-12);
}

TEST(Sgd, MinimizesQuadratic)
{
    // w* = 3 for L = (w-3)^2 / 2.
    Param p("w", Tensor::full({1}, 0.0f));
    Sgd sgd({&p}, 0.1, 0.9, 0.0);
    for (int i = 0; i < 200; ++i) {
        sgd.zeroGrad();
        p.grad[0] = p.w[0] - 3.0f;
        sgd.step();
    }
    EXPECT_NEAR(p.w[0], 3.0f, 1e-2);
}

} // namespace
} // namespace mixq
